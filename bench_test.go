// Package exist_bench exposes every paper artifact as a Go benchmark: one
// bench per table and figure (see the per-experiment index in DESIGN.md).
// Each benchmark executes the corresponding experiment in quick mode and
// reports its headline metrics; run the cmd/existbench tool for the
// full-fidelity tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig13
package exist_bench

import (
	"testing"

	"exist/internal/experiments"
)

// runExperiment executes one registered experiment b.N times, reporting
// its headline metrics from the final run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range res.SortedMetrics() {
		b.ReportMetric(res.Metrics[name], name)
	}
}

// Motivation artifacts (§2).

func BenchmarkFig03a(b *testing.B) { runExperiment(b, "fig03a") }
func BenchmarkFig03b(b *testing.B) { runExperiment(b, "fig03b") }
func BenchmarkFig04(b *testing.B)  { runExperiment(b, "fig04") }
func BenchmarkFig05(b *testing.B)  { runExperiment(b, "fig05") }
func BenchmarkFig08(b *testing.B)  { runExperiment(b, "fig08") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }

// Efficiency artifacts (§5.2).

func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkTab03(b *testing.B) { runExperiment(b, "tab03") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkTab04(b *testing.B) { runExperiment(b, "tab04") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }

// Effectiveness artifacts (§5.3).

func BenchmarkFig18(b *testing.B)              { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)              { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)              { runExperiment(b, "fig20") }
func BenchmarkAccuracyBenchmarks(b *testing.B) { runExperiment(b, "acc-bench") }

// Case study artifacts (§5.4) and the functionality matrix.

func BenchmarkFig21(b *testing.B)     { runExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)     { runExperiment(b, "fig22") }
func BenchmarkTab05(b *testing.B)     { runExperiment(b, "tab05") }
func BenchmarkCaseStudy(b *testing.B) { runExperiment(b, "casestudy") }

// Ablations of the DESIGN.md design choices.

func BenchmarkAblationControlOps(b *testing.B) { runExperiment(b, "ablation-control") }
func BenchmarkAblationDropPolicy(b *testing.B) { runExperiment(b, "ablation-drop") }
func BenchmarkAblationHotSwap(b *testing.B)    { runExperiment(b, "ablation-hotswap") }

// Robustness extension: control-plane resilience under injected faults.

func BenchmarkResilience(b *testing.B) { runExperiment(b, "resilience") }

// Chaos extension: replicated controllers with leader election under
// crash/partition/gray-failure storms at fleet scale.

func BenchmarkChaos(b *testing.B) { runExperiment(b, "chaos") }

// Data-path extension: v2 wire-format compression and batched uploads.

func BenchmarkDatapath(b *testing.B) { runExperiment(b, "datapath") }

// Scale-out extension: sharded API server and range-leased reconciliation.

func BenchmarkCtrlPlane(b *testing.B) { runExperiment(b, "ctrlplane") }
