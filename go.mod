module exist

go 1.22
