package tracer

import (
	"fmt"

	"exist/internal/core"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// EXIST adapts core's controller/session lifecycle to the Backend
// interface so scheme sweeps, the cluster, and the daemon drive EXIST the
// same way they drive the baselines. Attach opens an HRT-bounded session;
// the window closes itself, so Stop is a no-op, and the harvest accessors
// (SpaceMB, MSROps, Session) read the closed session's result.
type EXIST struct {
	opts Options
	sess *core.Session
	res  *trace.Session
	err  error
}

// newEXIST builds an unattached EXIST backend.
func newEXIST(o Options) *EXIST { return &EXIST{opts: o} }

// Name implements Backend.
func (e *EXIST) Name() string { return "EXIST" }

// Attach implements Backend: it creates a controller on the machine and
// opens one session on the target for the configured period.
func (e *EXIST) Attach(m *sched.Machine, target *sched.Process) error {
	ctrl := core.NewController(m)
	c := core.DefaultConfig()
	c.Period = e.opts.Period
	if e.opts.Scale > 0 {
		c.Scale = e.opts.Scale
	}
	c.Seed = e.opts.Seed
	if e.opts.Mem != nil {
		c.Mem = *e.opts.Mem
	}
	if e.opts.Ctl != 0 {
		c.Ctl = e.opts.Ctl
	}
	c.SessionID, c.Node = e.opts.SessionID, e.opts.Node
	s, err := ctrl.Trace(target, c)
	if err != nil {
		return fmt.Errorf("EXIST trace: %w", err)
	}
	e.sess = s
	return nil
}

// Stop implements Backend. The session's high-resolution timer closes the
// window; Stop only resolves the result so the harvest accessors work.
func (e *EXIST) Stop(simtime.Time) {
	if e.sess == nil || e.res != nil || e.err != nil {
		return
	}
	res, err := e.sess.Result()
	if err != nil {
		e.err = fmt.Errorf("EXIST result: %w", err)
		return
	}
	e.res = res
}

// Err implements ErrBackend: a session whose window had not closed when
// the run ended surfaces here.
func (e *EXIST) Err() error { return e.err }

// SpaceMB implements Backend.
func (e *EXIST) SpaceMB() float64 {
	if e.res == nil {
		return 0
	}
	return e.res.SpaceMB()
}

// MSROps implements MSRBackend.
func (e *EXIST) MSROps() int64 {
	if e.sess == nil {
		return 0
	}
	return e.sess.Stats.MSROps
}

// Session implements SessionBackend (the workload label is already on the
// session).
func (e *EXIST) Session(string) *trace.Session { return e.res }

// CoreSession exposes the underlying core session for callers that need
// plan or control-path detail (the daemon's UMA report, cluster tests).
func (e *EXIST) CoreSession() *core.Session { return e.sess }
