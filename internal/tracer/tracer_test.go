package tracer

import (
	"strings"
	"testing"

	"exist/internal/baselines"
)

// Compile-time compliance table: every implementation behind the registry
// satisfies Backend, and each capability extension is claimed by exactly
// the backends the harvest logic expects.
var (
	_ Backend = baselines.Oracle{}
	_ Backend = (*baselines.StaSam)(nil)
	_ Backend = (*baselines.EBPF)(nil)
	_ Backend = (*baselines.NHT)(nil)
	_ Backend = (*EXIST)(nil)

	_ SessionBackend = (*baselines.NHT)(nil)
	_ SessionBackend = (*EXIST)(nil)
	_ MSRBackend     = (*baselines.NHT)(nil)
	_ MSRBackend     = (*EXIST)(nil)
	_ ErrBackend     = (*EXIST)(nil)
)

func TestRegistryNames(t *testing.T) {
	want := []string{"EXIST", "NHT", "Oracle", "StaSam", "eBPF"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	have := map[string]bool{}
	for _, n := range got {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("backend %q not registered (have %v)", n, got)
		}
	}
}

func TestNewResolvesEveryRegisteredName(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b == nil {
			t.Fatalf("New(%q) returned nil backend", name)
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q; registry name and backend name must agree", name, b.Name())
		}
	}
}

func TestNewUnknownBackend(t *testing.T) {
	_, err := New("no-such-scheme", Options{})
	if err == nil {
		t.Fatal("New on an unknown name must fail")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") || !strings.Contains(err.Error(), "EXIST") {
		t.Errorf("error should name the missing backend and list candidates: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(what string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", what)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() {
		Register("EXIST", func(Options) Backend { return nil })
	})
	mustPanic("empty name", func() {
		Register("", func(Options) Backend { return nil })
	})
	mustPanic("nil factory", func() {
		Register("nil-factory", nil)
	})
}

// NHT is the only baseline that consumes Options; check the wiring.
func TestNHTFactoryOptions(t *testing.T) {
	b, err := New("NHT", Options{Scale: 0.25, FilterTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	n := b.(*baselines.NHT)
	if n.Scale != 0.25 {
		t.Errorf("NHT scale = %v, want 0.25", n.Scale)
	}
	if !n.FilterTarget {
		t.Error("NHT FilterTarget option not wired through")
	}
	b, err = New("NHT", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := b.(*baselines.NHT).Scale; s != 1 {
		t.Errorf("NHT default scale = %v, want 1", s)
	}
}
