// Package tracer defines the pluggable tracer-backend abstraction every
// node-level consumer builds on: the Backend interface (the shape shared
// by EXIST and the paper's comparison baselines) and a named registry that
// maps scheme names — "Oracle", "EXIST", "StaSam", "eBPF", "NHT" — to
// factories. The experiments' scheme sweeps, the cluster control plane,
// the existd daemon, and the examples all instantiate tracing through this
// registry, so a node behaves identically no matter which layer drives it,
// and a new backend becomes available to all of them by registering here.
//
// Layering (DESIGN.md §3): tracer sits above core and baselines and below
// node; nothing below this package knows scheme names.
package tracer

import (
	"fmt"
	"sort"

	"exist/internal/baselines"
	"exist/internal/memalloc"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// Backend is one tracing scheme attached to a machine for a window. It is
// the same contract as baselines.Scheme; EXIST itself satisfies it through
// the adapter in exist.go.
type Backend interface {
	// Name returns the scheme's registry/table name.
	Name() string
	// Attach installs the scheme's hooks on the machine, tracing target
	// (some schemes ignore the target and observe system-wide).
	Attach(m *sched.Machine, target *sched.Process) error
	// Stop deactivates the scheme's hooks. Backends whose window closes
	// itself (EXIST's HRT) treat this as a no-op.
	Stop(now simtime.Time)
	// SpaceMB reports the trace storage consumed, in real MB.
	SpaceMB() float64
}

// SessionBackend is implemented by backends that capture a decodable
// trace.Session (EXIST, NHT). Valid after the window has closed.
type SessionBackend interface {
	Backend
	Session(workload string) *trace.Session
}

// MSRBackend is implemented by backends that count control MSR operations
// (EXIST, NHT) — the ablation tables' currency.
type MSRBackend interface {
	Backend
	MSROps() int64
}

// ErrBackend is implemented by backends whose harvest can fail after the
// fact (EXIST's session result). Err reports the deferred failure.
type ErrBackend interface {
	Backend
	Err() error
}

// Options parameterizes one backend instantiation. Backends ignore fields
// they have no use for.
type Options struct {
	// Period is the tracing window (EXIST: the HRT-bounded session).
	Period simtime.Duration
	// Scale is the space/execution scale (see trace.SpaceScale); 0 means 1.
	Scale float64
	// Seed drives backend randomness (EXIST's coreset sampler).
	Seed uint64
	// Mem overrides EXIST's memory-allocator configuration (nil: the
	// deployment default).
	Mem *memalloc.Config
	// Ctl overrides EXIST's PT control configuration (0: ipt.DefaultCtl).
	Ctl uint64
	// SessionID and Node label EXIST sessions for the cluster pipeline.
	SessionID, Node string
	// FilterTarget restricts NHT collection to the target via the CR3
	// filter (the accuracy reference) while still paying full-system
	// control costs.
	FilterTarget bool
}

// Factory builds one backend instance for a run.
type Factory func(Options) Backend

// registry maps scheme names to factories.
var registry = map[string]Factory{}

// Register adds a backend factory under a unique name. It panics on
// duplicates: scheme names are load-bearing identifiers in experiment
// tables and cluster requests.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("tracer: empty registration")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("tracer: backend %q registered twice", name))
	}
	registry[name] = f
}

// New instantiates a registered backend.
func New(name string, o Options) (Backend, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tracer: unknown backend %q (use one of %v)", name, Names())
	}
	return f(o), nil
}

// Names lists registered backends in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("Oracle", func(Options) Backend { return baselines.Oracle{} })
	Register("StaSam", func(Options) Backend { return baselines.NewStaSam() })
	Register("eBPF", func(Options) Backend { return baselines.NewEBPF() })
	Register("NHT", func(o Options) Backend {
		scale := o.Scale
		if scale <= 0 {
			scale = 1
		}
		n := baselines.NewNHT(scale)
		n.FilterTarget = o.FilterTarget
		return n
	})
	Register("EXIST", func(o Options) Backend { return newEXIST(o) })
}
