// Package baselines implements the comparison tracing schemes of the
// paper's evaluation (Table 2) over the same simulated substrate EXIST
// runs on:
//
//   - Oracle: normal execution without tracing.
//   - StaSam: statistical sampling (perf record -a -F 3999) — a 4 kHz
//     per-core interrupt whose handler unwinds a stack and appends an
//     event record.
//   - EBPF: tracepoint tracing (bpftrace sys_enter) — a probe program on
//     every syscall, system-wide.
//   - NHT: native hardware tracing (perf record -e intel_pt) — tracers on
//     every core with no CR3 filter, control MSR operations at every
//     context switch, and continuous hauling of the AUX buffer to its
//     output file while the workload runs.
//
// Each scheme attaches through the same scheduler hook points EXIST uses,
// so overhead differences come only from what the schemes do — the paper's
// comparison, reproduced structurally.
package baselines

import (
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// Scheme is a tracing scheme attached to a machine for a window.
type Scheme interface {
	// Name returns the scheme's table name.
	Name() string
	// Attach installs the scheme's hooks on the machine, tracing target
	// (some schemes ignore the target and observe system-wide).
	Attach(m *sched.Machine, target *sched.Process) error
	// Stop deactivates the scheme's hooks.
	Stop(now simtime.Time)
	// SpaceMB reports the trace storage consumed so far, in real MB.
	SpaceMB() float64
}

// Oracle is the no-tracing reference.
type Oracle struct{}

// Name implements Scheme.
func (Oracle) Name() string { return "Oracle" }

// Attach implements Scheme (no hooks).
func (Oracle) Attach(*sched.Machine, *sched.Process) error { return nil }

// Stop implements Scheme.
func (Oracle) Stop(simtime.Time) {}

// SpaceMB implements Scheme.
func (Oracle) SpaceMB() float64 { return 0 }

// StaSam models statistical sampling: perf record -a -F <freq>.
type StaSam struct {
	// FreqHz is the per-core sampling frequency (the paper uses 3999).
	FreqHz float64
	// SampleBytes is the on-disk size of one sample record with its
	// callchain (perf.data records run a few hundred bytes).
	SampleBytes float64

	active  bool
	samples float64
}

// NewStaSam returns the paper's configuration.
func NewStaSam() *StaSam { return &StaSam{FreqHz: 3999, SampleBytes: 550} }

// Name implements Scheme.
func (s *StaSam) Name() string { return "StaSam" }

// Attach implements Scheme: a stall on every execution segment equal to
// the expected number of sampling interrupts times the handler cost.
func (s *StaSam) Attach(m *sched.Machine, _ *sched.Process) error {
	s.active = true
	cost := m.Cfg.Cost
	m.StallHooks = append(m.StallHooks, func(_ *sched.Core, _ simtime.Time, dur simtime.Duration) simtime.Duration {
		if !s.active {
			return 0
		}
		n := dur.Seconds() * s.FreqHz
		s.samples += n
		return simtime.Duration(n * float64(cost.Interrupt+cost.SampleHandler))
	})
	return nil
}

// Stop implements Scheme.
func (s *StaSam) Stop(simtime.Time) { s.active = false }

// SpaceMB implements Scheme.
func (s *StaSam) SpaceMB() float64 { return s.samples * s.SampleBytes / (1 << 20) }

// Samples returns the expected sample count so far.
func (s *StaSam) Samples() float64 { return s.samples }

// EBPF models bpftrace attached to the sys_enter tracepoint.
type EBPF struct {
	// EventBytes is the per-event output record size.
	EventBytes float64
	// PerturbFrac is the system-wide execution stall imposed by the
	// bpftrace userspace side (map draining, output formatting, ring
	// consumption) competing for the shared cores — the reason eBPF
	// tracing hurts even syscall-light workloads in shared nodes
	// (Figure 13's ~4% on SPEC).
	PerturbFrac float64

	active bool
	events int64
}

// NewEBPF returns the paper's configuration.
func NewEBPF() *EBPF { return &EBPF{EventBytes: 16, PerturbFrac: 0.035} }

// Name implements Scheme.
func (e *EBPF) Name() string { return "eBPF" }

// Attach implements Scheme: a probe cost on every syscall, system-wide
// (tracepoint programs see every process), plus the userspace
// perturbation stall.
func (e *EBPF) Attach(m *sched.Machine, _ *sched.Process) error {
	e.active = true
	cost := m.Cfg.Cost
	m.SyscallHooks = append(m.SyscallHooks, func(sched.SyscallEvent) simtime.Duration {
		if !e.active {
			return 0
		}
		e.events++
		return cost.SyscallProbe
	})
	m.StallHooks = append(m.StallHooks, func(_ *sched.Core, _ simtime.Time, dur simtime.Duration) simtime.Duration {
		if !e.active {
			return 0
		}
		return simtime.Duration(float64(dur) * e.PerturbFrac)
	})
	return nil
}

// Stop implements Scheme.
func (e *EBPF) Stop(simtime.Time) { e.active = false }

// SpaceMB implements Scheme.
func (e *EBPF) SpaceMB() float64 { return float64(e.events) * e.EventBytes / (1 << 20) }

// Events returns the probe hit count.
func (e *EBPF) Events() int64 { return e.events }

// NHT models native hardware tracing: perf record -e intel_pt. Every
// core's tracer runs with no CR3 filter (full-system coverage), per-switch
// sideband processing reprograms the control MSR with tracing disabled,
// and the AUX buffer is hauled to the output file continuously.
type NHT struct {
	// RingBytes is each core's AUX ring capacity in real bytes.
	RingBytes int64
	// Scale is the run's execution scale: the fraction of the real branch
	// rate the workload models materialize. Analytic (efficiency) runs
	// produce full-rate trace volume, so they use 1; walker (accuracy)
	// runs use the slow-motion factor their WalkerExec was built with.
	Scale float64
	// CollectTarget, when non-nil after Attach, restricts *collection*
	// to the target via the CR3 filter while still paying full-system
	// control costs. The paper's accuracy reference uses this; the
	// efficiency runs use nil (trace everything).
	FilterTarget bool

	m          *sched.Machine
	bus        *kernel.MSRBus
	active     bool
	rings      []*ipt.ToPA
	hauledByte []int64
	log        kernel.SwitchLog
	target     *sched.Process
	start      simtime.Time
}

// NewNHT returns a full-system configuration at the given space scale.
func NewNHT(scale float64) *NHT {
	return &NHT{RingBytes: 4 << 30, Scale: scale}
}

// Name implements Scheme.
func (n *NHT) Name() string { return "NHT" }

// Attach implements Scheme.
func (n *NHT) Attach(m *sched.Machine, target *sched.Process) error {
	n.m = m
	n.target = target
	n.bus = kernel.NewMSRBus(m.Cfg.Cost)
	n.active = true
	n.start = m.Eng.Now()
	ctl := ipt.DefaultCtl() &^ ipt.CtlCR3Filter
	cr3 := uint64(0)
	if n.FilterTarget && target != nil {
		ctl |= ipt.CtlCR3Filter
		cr3 = target.CR3
	}
	// The ring wraps, so its capacity does not bound the space accounting
	// (Written counts all accepted bytes); cap the simulated allocation.
	ringSim := trace.ScaleBytes(n.RingBytes, n.Scale)
	if ringSim > 16<<20 {
		ringSim = 16 << 20
	}
	for _, c := range m.Cores {
		ring := ipt.NewToPA([]int{ringSim}, true)
		d, err := n.bus.ConfigureOutput(c.Tracer, ring, cr3)
		if err != nil {
			return err
		}
		c.KernelNS += d
		d, err = n.bus.Enable(m.Eng.Now(), c.Tracer, ctl)
		if err != nil {
			return err
		}
		c.KernelNS += d
		n.rings = append(n.rings, ring)
		n.hauledByte = append(n.hauledByte, 0)
	}
	// Per-switch sideband: conventional control reprograms the tracer
	// with tracing disabled at every context switch, plus the perf
	// user/kernel round trip for the sideband record.
	m.SwitchHooks = append(m.SwitchHooks, func(ev sched.SwitchEvent) simtime.Duration {
		if !n.active {
			return 0
		}
		tr := ev.Core.Tracer
		var cost simtime.Duration
		d, _ := n.bus.Disable(ev.Now, tr)
		cost += d
		d, _ = n.bus.Enable(ev.Now+cost, tr, ctl)
		cost += d
		cost += 2 * m.Cfg.Cost.ModeSwitch
		if n.target != nil {
			if ev.Prev != nil && ev.Prev.Proc == n.target {
				n.log.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
					PID: int32(n.target.PID), TID: int32(ev.Prev.TID), Op: kernel.OpOut})
			}
			if ev.Next != nil && ev.Next.Proc == n.target {
				n.log.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
					PID: int32(n.target.PID), TID: int32(ev.Next.TID), Op: kernel.OpIn})
			}
		}
		return cost
	})
	// Continuous AUX hauling: whatever the tracer produced during a
	// segment is copied out while the workload runs.
	m.StallHooks = append(m.StallHooks, func(c *sched.Core, _ simtime.Time, _ simtime.Duration) simtime.Duration {
		if !n.active {
			return 0
		}
		produced := c.Tracer.Stats.Bytes - n.hauledByte[c.ID]
		n.hauledByte[c.ID] = c.Tracer.Stats.Bytes
		mb := trace.UnscaleMB(produced, n.Scale)
		return simtime.Duration(mb * float64(m.Cfg.Cost.TraceHaulPerMB))
	})
	return nil
}

// Stop implements Scheme: disable all tracers.
func (n *NHT) Stop(now simtime.Time) {
	if !n.active {
		return
	}
	n.active = false
	for _, c := range n.m.Cores {
		if c.Tracer.Enabled() {
			d, _ := n.bus.Disable(now, c.Tracer)
			c.KernelNS += d
		}
		c.Tracer.Flush()
	}
}

// SpaceMB implements Scheme: time-proportional total trace volume.
func (n *NHT) SpaceMB() float64 {
	var written int64
	for _, r := range n.rings {
		written += r.Written()
	}
	return trace.UnscaleMB(written, n.Scale)
}

// Session exports the captured window as a trace.Session (the exhaustive
// reference the accuracy comparison decodes). Valid after Stop.
func (n *NHT) Session(workload string) *trace.Session {
	s := &trace.Session{
		ID:       "nht",
		Workload: workload,
		Start:    n.start,
		End:      n.m.Eng.Now(),
		Scale:    n.Scale,
		Switches: n.log,
	}
	if n.target != nil {
		s.PID = int32(n.target.PID)
	}
	for i, c := range n.m.Cores {
		s.Cores = append(s.Cores, trace.CoreTrace{
			Core:    c.ID,
			Data:    n.rings[i].Bytes(),
			Wrapped: n.rings[i].Wrapped(),
		})
	}
	return s
}

// MSROps reports control operations issued (for the ablation tables).
func (n *NHT) MSROps() int64 { return n.bus.Ops }
