package baselines

import (
	"testing"

	"exist/internal/binary"
	"exist/internal/decode"
	"exist/internal/kernel"
	"exist/internal/metrics"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// computeRun runs a 2-thread compute workload (plus co-located noise)
// under the given scheme for 1 s and returns useful cycles and the scheme.
func computeRun(t *testing.T, mk func() Scheme) (int64, Scheme) {
	t.Helper()
	cfg := sched.DefaultConfig()
	cfg.Cores = 4
	cfg.HTSiblings = false
	cfg.Seed = 5
	m := sched.NewMachine(cfg)
	target := m.AddProcess("t", nil, sched.CPUSet, []int{0, 1})
	var threads []*sched.Thread
	for i := 0; i < 2; i++ {
		threads = append(threads, m.SpawnThread(target, sched.NewAnalyticExec(
			xrand.SplitN(3, "w", i), cfg.Cost, 2_900_000, []float64{1, 1}, 35, 0.2, 1.5)))
	}
	noise := m.AddProcess("n", nil, sched.CPUSet, []int{0, 1})
	for i := 0; i < 2; i++ {
		m.SpawnThread(noise, sched.NewAnalyticExec(
			xrand.SplitN(4, "n", i), cfg.Cost, 2_900_000, []float64{1, 1}, 35, 0.2, 1.5))
	}
	s := mk()
	if err := s.Attach(m, target); err != nil {
		t.Fatal(err)
	}
	m.Run(1 * simtime.Second)
	s.Stop(m.Eng.Now())
	var cycles int64
	for _, th := range threads {
		cycles += th.Stats.Cycles
	}
	return cycles, s
}

func TestOracleIsFree(t *testing.T) {
	a, _ := computeRun(t, func() Scheme { return Oracle{} })
	b, _ := computeRun(t, func() Scheme { return Oracle{} })
	if a != b {
		t.Fatal("oracle runs must be deterministic")
	}
	if (Oracle{}).SpaceMB() != 0 || (Oracle{}).Name() != "Oracle" {
		t.Fatal("oracle surface wrong")
	}
}

func TestStaSamOverheadMagnitude(t *testing.T) {
	base, _ := computeRun(t, func() Scheme { return Oracle{} })
	with, s := computeRun(t, func() Scheme { return NewStaSam() })
	over := float64(base)/float64(with) - 1
	// 3999 Hz × ~7.8µs handler+interrupt ≈ 3.1% single-digit overhead.
	if over < 0.015 || over > 0.06 {
		t.Fatalf("StaSam overhead = %.4f, want single-digit (~3%%)", over)
	}
	ss := s.(*StaSam)
	if ss.Samples() == 0 || ss.SpaceMB() <= 0 {
		t.Fatal("StaSam accounting missing")
	}
}

func TestStaSamStopsSampling(t *testing.T) {
	_, s := computeRun(t, func() Scheme { return NewStaSam() })
	ss := s.(*StaSam)
	before := ss.Samples()
	// Stopped scheme must not accumulate further (no machine to run, but
	// the hook path is checked directly).
	ss.Stop(0)
	if ss.Samples() != before {
		t.Fatal("Stop changed counters")
	}
}

func TestEBPFCostScalesWithSyscalls(t *testing.T) {
	base, _ := computeRun(t, func() Scheme { return Oracle{} })
	with, s := computeRun(t, func() Scheme { return NewEBPF() })
	eb := s.(*EBPF)
	if eb.Events() == 0 {
		t.Fatal("eBPF saw no syscalls")
	}
	over := float64(base)/float64(with) - 1
	if over <= 0 {
		t.Fatalf("eBPF overhead = %.4f, must be positive", over)
	}
	if eb.SpaceMB() <= 0 {
		t.Fatal("eBPF space missing")
	}
}

func TestNHTHeaviestAndSpaceTimeProportional(t *testing.T) {
	base, _ := computeRun(t, func() Scheme { return Oracle{} })
	withNHT, sN := computeRun(t, func() Scheme { return NewNHT(1) })
	withSam, _ := computeRun(t, func() Scheme { return NewStaSam() })
	nhtOver := float64(base)/float64(withNHT) - 1
	samOver := float64(base)/float64(withSam) - 1
	if nhtOver <= samOver {
		t.Fatalf("NHT (%.4f) must cost more than StaSam (%.4f)", nhtOver, samOver)
	}
	if nhtOver > 0.25 {
		t.Fatalf("NHT overhead %.4f implausibly high", nhtOver)
	}
	n := sN.(*NHT)
	if n.SpaceMB() <= 0 {
		t.Fatal("NHT space missing")
	}
	if n.MSROps() < 1000 {
		t.Fatalf("NHT must issue per-switch MSR ops, got %d", n.MSROps())
	}
}

func TestNHTReferenceSessionDecodes(t *testing.T) {
	cfg := sched.DefaultConfig()
	cfg.Cores = 2
	cfg.HTSiblings = false
	cfg.Seed = 7
	cfg.Timeslice = 1 * simtime.Millisecond
	m := sched.NewMachine(cfg)
	prog := binary.Synthesize(binary.DefaultSpec("ref", 9))
	target := m.AddProcess("ref", prog, sched.CPUShare, m.AllCores())
	m.SpawnThread(target, sched.NewWalkerExec(prog, xrand.New(1), cfg.Cost, 1e-4))
	m.SpawnThread(target, sched.NewWalkerExec(prog, xrand.New(2), cfg.Cost, 1e-4))

	gt := trace.NewGroundTruth(prog, 0, 300*simtime.Millisecond)
	m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
		if th.Proc == target {
			gt.Record(int32(th.TID), now, ev)
		}
	}
	n := NewNHT(1) // unscaled: walker traffic is tiny at 1e-4 speed
	n.FilterTarget = true
	if err := n.Attach(m, target); err != nil {
		t.Fatal(err)
	}
	m.Run(300 * simtime.Millisecond)
	n.Stop(m.Eng.Now())
	sess := n.Session("ref")
	rec := decode.Decode(sess, prog)
	score := metrics.PathAccuracy(gt.ByThread, rec.ByThread)
	if score.Truth == 0 {
		t.Fatal("no ground truth")
	}
	// NHT is the exhaustive reference: near-complete reconstruction.
	if score.Accuracy < 0.95 {
		t.Fatalf("NHT reference accuracy = %.3f (errors: %d)", score.Accuracy, len(rec.Errors))
	}
}

func TestNHTStopDisablesAllTracers(t *testing.T) {
	cfg := sched.DefaultConfig()
	cfg.Cores = 4
	cfg.Seed = 8
	m := sched.NewMachine(cfg)
	p := m.AddProcess("x", nil, sched.CPUShare, m.AllCores())
	m.SpawnThread(p, sched.NewAnalyticExec(xrand.New(1), cfg.Cost, 1_000_000, []float64{1}, 35, 0.2, 1.5))
	n := NewNHT(1)
	if err := n.Attach(m, p); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * simtime.Millisecond)
	n.Stop(m.Eng.Now())
	for _, c := range m.Cores {
		if c.Tracer.Enabled() {
			t.Fatalf("core %d tracer left enabled", c.ID)
		}
	}
	// Sidecar must contain only target records.
	for _, r := range n.log.Records {
		if r.PID != int32(p.PID) {
			t.Fatalf("foreign record %+v", r)
		}
	}
	_ = kernel.RecordSize
}
