package spec

import (
	"embed"
	"sort"
	"strings"
)

// bundled holds the named scenarios shipped with the binary: ready-made
// documents for smoke tests, demos and the scenario experiment. Traces
// referenced by bundled documents (replay CSVs) are embedded alongside
// them and resolved automatically by LoadBuiltin.
//
//go:embed builtin/*.yaml builtin/*.csv
var bundled embed.FS

// BuiltinNames lists the bundled scenario names in sorted order.
func BuiltinNames() []string {
	entries, err := bundled.ReadDir("builtin")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".yaml"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// LoadBuiltin parses a bundled scenario by name, resolving any replay
// trace against the embedded files.
func LoadBuiltin(name string) (*Document, error) {
	path := "builtin/" + name + ".yaml"
	data, err := bundled.ReadFile(path)
	if err != nil {
		return nil, errf(path, 0, "", "no bundled scenario %q (have: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	doc, err := Parse(path, data)
	if err != nil {
		return nil, err
	}
	if err := doc.ResolveReplay(func(p string) ([]byte, error) {
		return bundled.ReadFile("builtin/" + p)
	}); err != nil {
		return nil, err
	}
	return doc, nil
}
