package spec

import (
	"math"
	"strings"
	"testing"

	"exist/internal/simtime"
)

func scenarioFor(t *testing.T, body string) *Scenario {
	t.Helper()
	doc, err := Parse("arr.yaml", []byte("version: 1\nscenario:\n"+body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return doc.Scenario
}

// TestArrivalsDeterministic compiles the same scenario twice and from a
// value copy; the schedules must be identical event for event.
func TestArrivalsDeterministic(t *testing.T) {
	sc := scenarioFor(t, `  duration_s: 3
  aggregate_rate: 500
  clients:
    - id: web
      rate_fraction: 0.5
      arrival: {process: gamma-bursty, cv: 2.5}
    - id: api
      rate_fraction: 0.3
      arrival: {process: weibull, cv: 1.5}
    - id: batch
      rate_fraction: 0.2
      arrival: {process: constant}
  envelope: {kind: diurnal, period_s: 1, amplitude: 0.6}
`)
	a, err := sc.Arrivals(42, 1)
	if err != nil {
		t.Fatalf("Arrivals: %v", err)
	}
	b, err := sc.Arrivals(42, 1)
	if err != nil {
		t.Fatalf("Arrivals: %v", err)
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d", i)
		}
	}
	// A different seed must give a different schedule.
	c, err := sc.Arrivals(43, 1)
	if err != nil {
		t.Fatalf("Arrivals: %v", err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seed 42 and 43 compiled to identical schedules")
	}
}

// TestArrivalsRates checks each process hits its configured mean rate
// within sampling tolerance.
func TestArrivalsRates(t *testing.T) {
	for _, proc := range []string{"poisson", "gamma-bursty", "weibull", "constant"} {
		arrival := "{process: " + proc + "}"
		if proc == ProcGamma || proc == ProcWeibull {
			arrival = "{process: " + proc + ", cv: 2}"
		}
		sc := scenarioFor(t, `  duration_s: 20
  aggregate_rate: 1000
  clients:
    - id: only
      rate_fraction: 1
      arrival: `+arrival+"\n")
		events, err := sc.Arrivals(7, 1)
		if err != nil {
			t.Fatalf("%s: %v", proc, err)
		}
		got := float64(len(events)) / 20
		if got < 900 || got > 1100 {
			t.Errorf("%s: rate = %.0f req/s, want ~1000", proc, got)
		}
	}
}

// TestArrivalsFlashCrowd checks the flash window actually multiplies the
// local rate.
func TestArrivalsFlashCrowd(t *testing.T) {
	sc := scenarioFor(t, `  duration_s: 10
  aggregate_rate: 400
  clients:
    - id: only
      rate_fraction: 1
  envelope: {kind: flash-crowd, at_s: 4, dur_s: 2, factor: 3}
`)
	events, err := sc.Arrivals(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	var inWindow, outside int
	for _, e := range events {
		s := float64(e.At) / float64(simtime.Second)
		if s >= 4 && s < 6 {
			inWindow++
		} else {
			outside++
		}
	}
	inRate := float64(inWindow) / 2
	outRate := float64(outside) / 8
	if inRate < 2*outRate {
		t.Errorf("flash window rate %.0f not ≫ baseline %.0f", inRate, outRate)
	}
}

// TestArrivalsRateScale checks rateScale maps the aggregate rate down.
func TestArrivalsRateScale(t *testing.T) {
	sc := scenarioFor(t, `  duration_s: 10
  aggregate_rate: 1000
  clients:
    - id: only
      rate_fraction: 1
`)
	events, err := sc.Arrivals(3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(len(events)) / 10; got < 5 || got > 16 {
		t.Errorf("scaled rate = %.1f req/s, want ~10", got)
	}
}

// TestArrivalsCap rejects schedules beyond the arrival bound instead of
// allocating them.
func TestArrivalsCap(t *testing.T) {
	sc := scenarioFor(t, `  duration_s: 10000
  aggregate_rate: 10000000
  clients:
    - id: only
      rate_fraction: 1
`)
	_, err := sc.Arrivals(1, 1)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want arrival-cap error", err)
	}
}

// TestReplayArrivals maps trace rows to client indices in time order.
func TestReplayArrivals(t *testing.T) {
	sc := scenarioFor(t, `  duration_s: 1
  clients:
    - id: a
    - id: b
  replay: {csv: inline.csv}
`)
	rows, err := ParseTrace("inline.csv", []byte("t_ms,client\n# comment\n5,b\n1.5,a\n\n2,a\n"))
	if err != nil {
		t.Fatal(err)
	}
	sc.Replay.Rows = rows
	events, err := sc.Arrivals(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []ArrivalEvent{
		{At: simtime.Time(1.5 * float64(simtime.Millisecond)), Client: 0},
		{At: 2 * simtime.Millisecond, Client: 0},
		{At: 5 * simtime.Millisecond, Client: 1},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}

	sc.Replay.Rows = []ReplayRow{{TMS: 1, Client: "ghost"}}
	if _, err := sc.Arrivals(0, 1); err == nil || !strings.Contains(err.Error(), "unknown client") {
		t.Errorf("unknown client: err = %v", err)
	}
	sc.Replay.Rows = []ReplayRow{{TMS: -1, Client: "a"}}
	if _, err := sc.Arrivals(0, 1); err == nil || !strings.Contains(err.Error(), "negative timestamp") {
		t.Errorf("negative timestamp: err = %v", err)
	}
}

// TestParseTraceErrors covers malformed trace rows.
func TestParseTraceErrors(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"nocomma\n", "expected"},
		{"abc,web\n", "bad timestamp"},
		{"1,\n", "missing client id"},
	} {
		if _, err := ParseTrace("t.csv", []byte(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseTrace(%q) err = %v, want %q", c.in, err, c.want)
		}
	}
}

// TestWeibullShape inverts representative CVs back through the Weibull
// CV relation.
func TestWeibullShape(t *testing.T) {
	for _, cv := range []float64{0.5, 1, 2, 4} {
		k := weibullShape(cv)
		g1 := math.Gamma(1 + 1/k)
		got := math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
		if math.Abs(got-cv) > 1e-6 {
			t.Errorf("weibullShape(%g) = %g, round-trips to cv %g", cv, k, got)
		}
	}
}

// TestResolveReplay loads the trace through the provided reader exactly
// once and records rows on the scenario.
func TestResolveReplay(t *testing.T) {
	doc, err := Parse("r.yaml", []byte(`version: 1
scenario:
  duration_s: 1
  clients:
    - id: a
  replay: {csv: trace.csv}
`))
	if err != nil {
		t.Fatal(err)
	}
	err = doc.ResolveReplay(func(path string) ([]byte, error) {
		if path != "trace.csv" {
			t.Errorf("read %q, want trace.csv", path)
		}
		return []byte("1,a\n2,a\n"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Scenario.Replay.Rows) != 2 {
		t.Fatalf("rows = %+v", doc.Scenario.Replay.Rows)
	}
}
