package spec

import (
	"reflect"
	"testing"
)

func TestBuiltinNames(t *testing.T) {
	want := []string{"diurnal", "flash-crowd", "replay"}
	if got := BuiltinNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("BuiltinNames() = %v, want %v", got, want)
	}
}

// TestLoadBuiltins parses every bundled scenario and compiles its arrival
// schedule, so a malformed bundled document fails in tests rather than at
// first use.
func TestLoadBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		doc, err := LoadBuiltin(name)
		if err != nil {
			t.Fatalf("LoadBuiltin(%q): %v", name, err)
		}
		if doc.Name != name {
			t.Errorf("%s: document name %q does not match file name", name, doc.Name)
		}
		if doc.Desc == "" {
			t.Errorf("%s: bundled scenario needs a desc for -list", name)
		}
		if doc.Scenario == nil {
			t.Fatalf("%s: bundled document has no scenario", name)
		}
		arr, err := doc.Scenario.Arrivals(doc.Seed, 1.0/100)
		if err != nil {
			t.Fatalf("%s: Arrivals: %v", name, err)
		}
		if len(arr) == 0 {
			t.Errorf("%s: compiled schedule is empty", name)
		}
		if doc.Scenario.Replay != nil && len(doc.Scenario.Replay.Rows) == 0 {
			t.Errorf("%s: replay trace did not resolve", name)
		}
	}
	if _, err := LoadBuiltin("no-such"); err == nil {
		t.Fatal("expected error for unknown bundled scenario")
	}
}
