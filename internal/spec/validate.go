package spec

import "math"

// Validate checks a decoded document's semantic invariants: positive
// distribution parameters, rate fractions summing to ~1, known enum
// values, and well-formed mixes. Parse calls it; loaders that assemble
// documents programmatically can call it directly.
func (doc *Document) Validate() error {
	if doc.Version != 1 {
		return errf(doc.Src, 0, "version", "unsupported spec version %d (this build understands version 1)", doc.Version)
	}
	seen := map[string]bool{}
	for i, p := range doc.Profiles {
		path := profilePath(i, p.Name)
		if p.Name == "" {
			return errf(doc.Src, p.Line, path, "profile needs a name")
		}
		if seen[p.Name] {
			return errf(doc.Src, p.Line, path, "duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if err := doc.validateProfile(p, path); err != nil {
			return err
		}
	}
	if doc.Scenario != nil {
		if err := doc.validateScenario(doc.Scenario); err != nil {
			return err
		}
	}
	return nil
}

func profilePath(i int, name string) string {
	if name != "" {
		return "profiles." + name
	}
	return "profiles[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

func (doc *Document) validateProfile(p Profile, path string) error {
	switch p.Class {
	case "", "compute", "online", "cloud":
	default:
		return errf(doc.Src, p.Line, path, "unknown class %q (want compute, online or cloud)", p.Class)
	}
	switch p.Mode {
	case "", "cpuset", "cpushare":
	default:
		return errf(doc.Src, p.Line, path, "unknown mode %q (want cpuset or cpushare)", p.Mode)
	}
	pos := func(name string, v *float64) error {
		if v != nil && (!(*v > 0) || math.IsInf(*v, 0)) {
			return errf(doc.Src, p.Line, path, "%s must be positive, got %g", name, *v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    *float64
	}{
		{"branch_per_kcycle", p.BranchPerKCycle},
		{"ipc", p.IPC},
	} {
		if err := pos(c.name, c.v); err != nil {
			return err
		}
	}
	if p.IndirectFrac != nil && !(*p.IndirectFrac >= 0 && *p.IndirectFrac <= 1) {
		return errf(doc.Src, p.Line, path, "indirect_frac must be in [0, 1], got %g", *p.IndirectFrac)
	}
	if p.MeanCyclesPerSyscall != nil && *p.MeanCyclesPerSyscall < 0 {
		return errf(doc.Src, p.Line, path, "mean_cycles_per_syscall must not be negative")
	}
	for _, c := range []struct {
		name string
		v    *int
	}{
		{"threads", p.Threads}, {"cores_wanted", p.CoresWanted},
		{"priority", p.Priority}, {"past_issues", p.PastIssues},
		{"funcs", p.Funcs}, {"avg_block_cycles", p.AvgBlockCycles},
	} {
		if c.v != nil && *c.v < 0 {
			return errf(doc.Src, p.Line, path, "%s must not be negative, got %d", c.name, *c.v)
		}
	}
	if err := doc.validateWeights(p.Syscalls, p.Line, path+".syscalls"); err != nil {
		return err
	}
	if err := doc.validateWeights(p.Categories, p.Line, path+".categories"); err != nil {
		return err
	}
	if p.MemClassMix != nil && len(p.MemClassMix) != 3 {
		return errf(doc.Src, p.Line, path, "mem_class_mix needs exactly 3 weights, got %d", len(p.MemClassMix))
	}
	if p.MemWidthMix != nil && len(p.MemWidthMix) != 4 {
		return errf(doc.Src, p.Line, path, "mem_width_mix needs exactly 4 weights, got %d", len(p.MemWidthMix))
	}
	for _, mix := range [][]float64{p.MemClassMix, p.MemWidthMix} {
		for _, w := range mix {
			if w < 0 || math.IsNaN(w) {
				return errf(doc.Src, p.Line, path, "mix weights must not be negative")
			}
		}
	}
	return nil
}

func (doc *Document) validateWeights(m map[string]float64, line int, path string) error {
	for name, w := range m {
		if w < 0 || math.IsNaN(w) {
			return errf(doc.Src, line, path, "%s: weight must not be negative, got %g", name, w)
		}
	}
	return nil
}

// posFinite reports whether v is a positive finite number. The negations
// below are deliberate: a plain v <= 0 lets NaN through (every comparison
// with NaN is false), and a NaN rate or duration would hang arrival
// compilation.
func posFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

func (doc *Document) validateScenario(sc *Scenario) error {
	src := doc.Src
	if !posFinite(sc.DurationS) {
		return errf(src, 0, "scenario", "duration_s must be positive and finite, got %g", sc.DurationS)
	}
	ids := map[string]bool{}
	for i, c := range sc.Clients {
		path := "scenario.clients[" + itoa(i) + "]"
		if c.ID == "" {
			return errf(src, c.Line, path, "client needs an id")
		}
		if ids[c.ID] {
			return errf(src, c.Line, path, "duplicate client id %q", c.ID)
		}
		ids[c.ID] = true
		switch c.SLOClass {
		case "", "besteffort":
		case "latency":
			if !posFinite(c.SLOMs) {
				return errf(src, c.Line, path, "slo_class latency needs a positive slo_ms")
			}
		default:
			return errf(src, c.Line, path, "unknown slo_class %q (want latency or besteffort)", c.SLOClass)
		}
		switch c.Arrival.Process {
		case "", ProcPoisson, ProcConstant:
		case ProcGamma, ProcWeibull:
			if !posFinite(c.Arrival.CV) {
				return errf(src, c.Line, path, "arrival process %q needs a positive cv", c.Arrival.Process)
			}
		default:
			return errf(src, c.Line, path,
				"unknown arrival process %q (want poisson, gamma-bursty, weibull or constant)", c.Arrival.Process)
		}
		if c.Arrival.CV != 0 && !posFinite(c.Arrival.CV) {
			return errf(src, c.Line, path, "arrival cv must be positive and finite, got %g", c.Arrival.CV)
		}
	}
	if sc.Replay != nil {
		if sc.Replay.CSV == "" {
			return errf(src, sc.Replay.Line, "scenario.replay", "replay needs a csv path")
		}
		if len(sc.Clients) == 0 {
			return errf(src, sc.Replay.Line, "scenario.replay", "replay needs clients declaring the trace's client ids")
		}
	} else if len(sc.Clients) > 0 {
		if !posFinite(sc.AggregateRate) {
			return errf(src, 0, "scenario", "aggregate_rate must be positive and finite, got %g", sc.AggregateRate)
		}
		var sum float64
		for i, c := range sc.Clients {
			if !posFinite(c.RateFraction) {
				return errf(src, c.Line, "scenario.clients["+itoa(i)+"]",
					"rate_fraction must be positive, got %g", c.RateFraction)
			}
			sum += c.RateFraction
		}
		if math.Abs(sum-1) > 1e-6 {
			return errf(src, 0, "scenario.clients", "rate fractions must sum to 1, got %g", sum)
		}
	}
	if e := sc.Envelope; e != nil {
		path := "scenario.envelope"
		switch e.Kind {
		case "", EnvConstant:
		case EnvDiurnal:
			if !posFinite(e.PeriodS) {
				return errf(src, e.Line, path, "diurnal envelope needs a positive period_s")
			}
			if !(e.Amplitude >= 0 && e.Amplitude < 1) {
				return errf(src, e.Line, path, "diurnal amplitude must be in [0, 1), got %g", e.Amplitude)
			}
		case EnvFlash:
			if !posFinite(e.Factor) {
				return errf(src, e.Line, path, "flash-crowd envelope needs a positive factor")
			}
			if !posFinite(e.DurS) {
				return errf(src, e.Line, path, "flash-crowd envelope needs a positive dur_s")
			}
			if !(e.AtS >= 0) || math.IsInf(e.AtS, 0) {
				return errf(src, e.Line, path, "flash-crowd at_s must not be negative")
			}
		case EnvRamp:
			if !posFinite(e.From) || !posFinite(e.To) {
				return errf(src, e.Line, path, "ramp envelope needs positive from and to")
			}
		default:
			return errf(src, e.Line, path,
				"unknown envelope kind %q (want constant, diurnal, flash-crowd or ramp)", e.Kind)
		}
	}
	if f := sc.Faults; f != nil {
		path := "scenario.faults"
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"put_fail", f.PutFail}, {"insert_fail", f.InsertFail},
			{"session_loss", f.SessionLoss}, {"corrupt", f.Corrupt},
			{"truncate", f.Truncate}, {"stall", f.Stall},
		} {
			if !(c.v >= 0 && c.v <= 1) {
				return errf(src, 0, path, "%s must be a probability in [0, 1], got %g", c.name, c.v)
			}
		}
		if !(f.CrashMTBFS >= 0) || !(f.CrashDowntimeS >= 0) {
			return errf(src, 0, path, "crash timings must not be negative")
		}
	}
	if c := sc.Cluster; c != nil {
		if c.Nodes < 0 || c.CoresPerNode < 0 || c.Replicas < 0 || c.Shards < 0 || c.Requests < 0 {
			return errf(src, 0, "scenario.cluster", "cluster sizes must not be negative")
		}
	}
	return nil
}
