package spec

import "testing"

// FuzzParseSpec throws arbitrary bytes at the document parser. Both
// syntaxes (JSON and the YAML subset) must reject malformed input with a
// positioned error — never a panic, hang, or unbounded allocation. When
// a document does parse, compiling its arrival schedule must stay inside
// the maxArrivals bound, so a hostile rate/duration pair cannot allocate
// past the cap.
//
// Run with: go test -fuzz=FuzzParseSpec ./internal/spec
// The checked-in corpus under testdata/fuzz seeds both syntaxes and the
// whole field surface (profiles, clients, envelopes, replay, faults),
// plus hostile shapes (deep flow nesting, duplicate keys, huge numbers).
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte("version: 1\nname: t\nprofiles:\n  - name: a\n    ipc: 1.5\n"))
	f.Add([]byte(`{"version": 1, "profiles": [{"name": "a"}]}`))
	f.Add([]byte("version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 10\n  clients:\n    - id: a\n      rate_fraction: 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse("fuzz.yaml", data)
		if err != nil {
			return
		}
		if doc.Scenario == nil {
			return
		}
		events, err := doc.Scenario.Arrivals(doc.Seed, 1)
		if err != nil {
			return
		}
		if len(events) > maxArrivals {
			t.Fatalf("schedule of %d events exceeds the %d cap", len(events), maxArrivals)
		}
	})
}
