package spec

import (
	"strings"
	"testing"
)

// validDoc is a fully-populated document every validation case mutates
// from; it must itself parse cleanly.
const validDoc = `version: 1
name: valid
seed: 7
profiles:
  - name: app
    class: cloud
    mode: cpushare
    ipc: 1.2
    indirect_frac: 0.1
    threads: 4
    syscalls: {read: 1}
    mem_class_mix: [0.5, 0.3, 0.2]
    mem_width_mix: [0.25, 0.25, 0.25, 0.25]
scenario:
  duration_s: 5
  aggregate_rate: 200
  app: app
  clients:
    - id: web
      rate_fraction: 0.6
      slo_class: latency
      slo_ms: 20
      arrival: {process: gamma-bursty, cv: 2}
    - id: batch
      rate_fraction: 0.4
      slo_class: besteffort
  envelope:
    kind: diurnal
    period_s: 2
    amplitude: 0.4
  node:
    cores: 8
    seed: 11
    co_runners:
      - {profile: xz, seed_offset: 3}
  cluster: {nodes: 4, cores_per_node: 8, replicas: 3, shards: 8, requests: 100}
  faults: {put_fail: 0.01, crash_mtbf_s: 10, crash_downtime_s: 1}
`

func TestValidDocParses(t *testing.T) {
	if _, err := Parse("valid.yaml", []byte(validDoc)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

// TestValidationErrors covers every semantic error path with the precise
// message it must produce.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad version", "version: 2\n", "unsupported spec version 2"},
		{"missing profile name", "version: 1\nprofiles:\n  - class: cloud\n", "profile needs a name"},
		{"duplicate profile", "version: 1\nprofiles:\n  - name: a\n  - name: a\n", `duplicate profile "a"`},
		{"unknown class", "version: 1\nprofiles:\n  - name: a\n    class: gpu\n", `unknown class "gpu"`},
		{"unknown mode", "version: 1\nprofiles:\n  - name: a\n    mode: pinned\n", `unknown mode "pinned"`},
		{"zero ipc", "version: 1\nprofiles:\n  - name: a\n    ipc: 0\n", "ipc must be positive, got 0"},
		{"negative branch density", "version: 1\nprofiles:\n  - name: a\n    branch_per_kcycle: -4\n",
			"branch_per_kcycle must be positive, got -4"},
		{"indirect_frac range", "version: 1\nprofiles:\n  - name: a\n    indirect_frac: 1.5\n",
			"indirect_frac must be in [0, 1], got 1.5"},
		{"negative threads", "version: 1\nprofiles:\n  - name: a\n    threads: -2\n",
			"threads must not be negative, got -2"},
		{"negative syscall weight", "version: 1\nprofiles:\n  - name: a\n    syscalls: {read: -1}\n",
			"weight must not be negative, got -1"},
		{"mem_class_mix arity", "version: 1\nprofiles:\n  - name: a\n    mem_class_mix: [1, 2]\n",
			"mem_class_mix needs exactly 3 weights, got 2"},
		{"mem_width_mix arity", "version: 1\nprofiles:\n  - name: a\n    mem_width_mix: [1, 2, 3, 4, 5]\n",
			"mem_width_mix needs exactly 4 weights, got 5"},
		{"zero duration", "version: 1\nscenario:\n  duration_s: 0\n", "duration_s must be positive"},
		{"missing client id", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - rate_fraction: 1\n",
			"client needs an id"},
		{"duplicate client id", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 0.5\n    - id: a\n      rate_fraction: 0.5\n",
			`duplicate client id "a"`},
		{"latency without slo_ms", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n      slo_class: latency\n",
			"slo_class latency needs a positive slo_ms"},
		{"unknown slo class", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n      slo_class: gold\n",
			`unknown slo_class "gold"`},
		{"gamma without cv", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n      arrival: {process: gamma-bursty}\n",
			`arrival process "gamma-bursty" needs a positive cv`},
		{"unknown process", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n      arrival: {process: pareto}\n",
			`unknown arrival process "pareto"`},
		{"replay without csv", "version: 1\nscenario:\n  duration_s: 1\n  clients:\n    - id: a\n  replay: {}\n",
			"replay needs a csv path"},
		{"replay without clients", "version: 1\nscenario:\n  duration_s: 1\n  replay: {csv: t.csv}\n",
			"replay needs clients"},
		{"zero aggregate rate", "version: 1\nscenario:\n  duration_s: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n",
			"aggregate_rate must be positive and finite, got 0"},
		{"zero rate fraction", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n",
			"rate_fraction must be positive, got 0"},
		{"fractions sum", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 0.5\n    - id: b\n      rate_fraction: 0.4\n",
			"rate fractions must sum to 1, got 0.9"},
		{"diurnal without period", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: diurnal, amplitude: 0.5}\n",
			"diurnal envelope needs a positive period_s"},
		{"diurnal amplitude", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: diurnal, period_s: 1, amplitude: 1}\n",
			"diurnal amplitude must be in [0, 1), got 1"},
		{"flash without factor", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: flash-crowd, dur_s: 1}\n",
			"flash-crowd envelope needs a positive factor"},
		{"flash without dur", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: flash-crowd, factor: 3}\n",
			"flash-crowd envelope needs a positive dur_s"},
		{"flash negative at", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: flash-crowd, factor: 3, dur_s: 1, at_s: -1}\n",
			"flash-crowd at_s must not be negative"},
		{"ramp zero from", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: ramp, from: 0, to: 2}\n",
			"ramp envelope needs positive from and to"},
		{"unknown envelope", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: sawtooth}\n",
			`unknown envelope kind "sawtooth"`},
		{"fault probability", "version: 1\nscenario:\n  duration_s: 1\n  faults: {put_fail: 1.5}\n",
			"put_fail must be a probability in [0, 1], got 1.5"},
		{"negative crash timing", "version: 1\nscenario:\n  duration_s: 1\n  faults: {crash_mtbf_s: -1}\n",
			"crash timings must not be negative"},
		{"negative cluster size", "version: 1\nscenario:\n  duration_s: 1\n  cluster: {nodes: -1}\n",
			"cluster sizes must not be negative"},
		// NaN never compares true, so naive v <= 0 guards would admit it
		// and hang arrival compilation; these must all be rejected.
		{"nan duration", "version: 1\nscenario:\n  duration_s: nan\n", "duration_s must be positive"},
		{"inf duration", "version: 1\nscenario:\n  duration_s: inf\n", "duration_s must be positive"},
		{"nan rate", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: nan\n  clients:\n    - id: a\n      rate_fraction: 1\n",
			"aggregate_rate must be positive"},
		{"nan fraction", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: nan\n",
			"rate_fraction must be positive"},
		{"nan cv", "version: 1\nscenario:\n  duration_s: 1\n  aggregate_rate: 1\n  clients:\n    - id: a\n      rate_fraction: 1\n      arrival: {process: gamma-bursty, cv: nan}\n",
			"needs a positive cv"},
		{"nan amplitude", "version: 1\nscenario:\n  duration_s: 1\n  envelope: {kind: diurnal, period_s: 1, amplitude: nan}\n",
			"diurnal amplitude must be in [0, 1)"},
		{"nan ipc", "version: 1\nprofiles:\n  - name: a\n    ipc: nan\n", "ipc must be positive"},
		{"nan fault", "version: 1\nscenario:\n  duration_s: 1\n  faults: {stall: nan}\n",
			"stall must be a probability in [0, 1]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("v.yaml", []byte(c.doc))
			if err == nil {
				t.Fatalf("document accepted, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}
