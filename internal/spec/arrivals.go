package spec

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"exist/internal/simtime"
	"exist/internal/xrand"
)

// ArrivalEvent is one compiled request arrival.
type ArrivalEvent struct {
	// At is the arrival time from scenario start.
	At simtime.Time
	// Client indexes Scenario.Clients.
	Client int
}

// maxArrivals bounds a compiled schedule; documents requesting more are
// configuration errors (and fuzz inputs shouldn't allocate unbounded).
const maxArrivals = 2_000_000

// Dur returns the scenario window as a simtime duration.
func (sc *Scenario) Dur() simtime.Duration {
	return simtime.Duration(sc.DurationS * float64(simtime.Second))
}

// Arrivals compiles the scenario into its deterministic arrival schedule.
// Every client draws inter-arrival gaps from its own xrand stream keyed by
// seed and the client id — never run order or wall clock — and the merged
// schedule is ordered by (time, client index), so the result is identical
// at any parallelism. rateScale maps the cluster-wide aggregate rate onto
// the consumer's capacity (e.g. 1/service.DeploymentWidth for one
// simulated instance); replayed traces are returned as recorded.
func (sc *Scenario) Arrivals(seed uint64, rateScale float64) ([]ArrivalEvent, error) {
	if sc.Replay != nil {
		return sc.replayArrivals()
	}
	dur := sc.DurationS
	peak := sc.Envelope.peak(dur)
	var out []ArrivalEvent
	for ci, c := range sc.Clients {
		rate := sc.AggregateRate * c.RateFraction * rateScale
		if rate <= 0 {
			continue
		}
		rng := xrand.Split(seed, "spec/arrivals/"+c.ID)
		meanGap := 1 / (rate * peak) // seconds, at the envelope's peak rate
		if float64(len(out))+dur/meanGap > maxArrivals {
			return nil, errf(sc.srcName(), c.Line, "scenario.clients."+c.ID,
				"schedule exceeds %d arrivals; lower the rate or shorten the scenario", maxArrivals)
		}
		t := 0.0
		for {
			if c.Arrival.Process == ProcConstant {
				// Deterministic spacing follows the envelope directly: the
				// local gap is the reciprocal of the instantaneous rate.
				f := sc.Envelope.factor(t, dur)
				if f <= 0 {
					f = 1e-9
				}
				t += 1 / (rate * f)
				if t >= dur {
					break
				}
				out = append(out, ArrivalEvent{At: toSimTime(t), Client: ci})
				continue
			}
			t += c.Arrival.gap(rng, meanGap)
			if t >= dur {
				break
			}
			// Lewis-Shedler thinning: candidates arrive at the peak rate
			// and survive with probability envelope(t)/peak.
			if f := sc.Envelope.factor(t, dur); f < peak && !rng.Bool(f/peak) {
				continue
			}
			out = append(out, ArrivalEvent{At: toSimTime(t), Client: ci})
			if len(out) > maxArrivals {
				return nil, errf(sc.srcName(), c.Line, "scenario.clients."+c.ID,
					"schedule exceeds %d arrivals; lower the rate or shorten the scenario", maxArrivals)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Client < out[j].Client
	})
	return out, nil
}

// srcName labels arrival-compilation errors; the scenario doesn't carry
// its document, so errors use a generic source.
func (sc *Scenario) srcName() string { return "scenario" }

func toSimTime(seconds float64) simtime.Time {
	return simtime.Time(seconds * float64(simtime.Second))
}

// gap draws one inter-arrival gap (seconds) with the given mean.
func (a Arrival) gap(rng *xrand.Rand, mean float64) float64 {
	const minGap = 1e-9
	var g float64
	switch a.Process {
	case ProcGamma:
		// Gamma renewal gaps: shape k = 1/cv^2 keeps the mean while the
		// variance tracks the requested burstiness.
		k := 1 / (a.CV * a.CV)
		g = rng.Gamma(k, mean/k)
	case ProcWeibull:
		k := weibullShape(a.CV)
		g = rng.Weibull(k, mean/math.Gamma(1+1/k))
	default: // poisson
		g = rng.Exp(mean)
	}
	if g < minGap {
		g = minGap
	}
	return g
}

// weibullShape inverts the Weibull CV relation
// cv^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1 for the shape k by bisection.
func weibullShape(cv float64) float64 {
	cvOf := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		return math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
	}
	lo, hi := 0.05, 50.0 // cvOf is decreasing: cv(0.05) huge, cv(50) tiny
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if cvOf(mid) > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// peak is the envelope's maximum rate multiplier over the window.
func (e *Envelope) peak(durS float64) float64 {
	if e == nil {
		return 1
	}
	switch e.Kind {
	case EnvDiurnal:
		return 1 + e.Amplitude
	case EnvFlash:
		return math.Max(1, e.Factor)
	case EnvRamp:
		return math.Max(e.From, e.To)
	default:
		return 1
	}
}

// factor is the envelope's rate multiplier at time t (seconds).
func (e *Envelope) factor(t, durS float64) float64 {
	if e == nil {
		return 1
	}
	switch e.Kind {
	case EnvDiurnal:
		return 1 + e.Amplitude*math.Sin(2*math.Pi*t/e.PeriodS)
	case EnvFlash:
		if t >= e.AtS && t < e.AtS+e.DurS {
			return e.Factor
		}
		return 1
	case EnvRamp:
		if durS <= 0 {
			return e.From
		}
		return e.From + (e.To-e.From)*(t/durS)
	default:
		return 1
	}
}

// replayArrivals maps the resolved trace rows onto client indices.
func (sc *Scenario) replayArrivals() ([]ArrivalEvent, error) {
	idx := make(map[string]int, len(sc.Clients))
	for i, c := range sc.Clients {
		idx[c.ID] = i
	}
	out := make([]ArrivalEvent, 0, len(sc.Replay.Rows))
	for i, row := range sc.Replay.Rows {
		ci, ok := idx[row.Client]
		if !ok {
			return nil, errf(sc.srcName(), sc.Replay.Line, "scenario.replay",
				"trace row %d names unknown client %q", i+1, row.Client)
		}
		if row.TMS < 0 {
			return nil, errf(sc.srcName(), sc.Replay.Line, "scenario.replay",
				"trace row %d has a negative timestamp", i+1)
		}
		out = append(out, ArrivalEvent{At: simtime.Time(row.TMS * float64(simtime.Millisecond)), Client: ci})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// ParseTrace parses a "t_ms,client" CSV arrival trace. A first line
// "t_ms,client" is treated as a header and skipped.
func ParseTrace(name string, data []byte) ([]ReplayRow, error) {
	var rows []ReplayRow
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i == 0 && strings.EqualFold(line, "t_ms,client") {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			return nil, errf(name, i+1, "", "expected \"t_ms,client\", got %q", line)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(line[:comma]), 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, errf(name, i+1, "", "bad timestamp %q", line[:comma])
		}
		client := strings.TrimSpace(line[comma+1:])
		if client == "" {
			return nil, errf(name, i+1, "", "missing client id")
		}
		rows = append(rows, ReplayRow{TMS: t, Client: client})
		if len(rows) > maxArrivals {
			return nil, errf(name, i+1, "", "trace exceeds %d rows", maxArrivals)
		}
	}
	return rows, nil
}

// ResolveReplay loads the scenario's replay trace, if any, through
// readFile (typically os.ReadFile relative to the document, or an
// embedded FS for bundled scenarios).
func (doc *Document) ResolveReplay(readFile func(string) ([]byte, error)) error {
	sc := doc.Scenario
	if sc == nil || sc.Replay == nil || len(sc.Replay.Rows) > 0 {
		return nil
	}
	data, err := readFile(sc.Replay.CSV)
	if err != nil {
		return errf(doc.Src, sc.Replay.Line, "scenario.replay", "loading trace: %v", err)
	}
	rows, err := ParseTrace(sc.Replay.CSV, data)
	if err != nil {
		return err
	}
	sc.Replay.Rows = rows
	return nil
}
