package spec

import (
	"strings"
	"testing"
)

// TestParseYAMLDocument exercises the YAML-subset features the embedded
// and example documents rely on: nested maps, block lists with inline
// maps, flow lists and maps, comments, quoted strings, underscore digit
// separators, and bare scalars containing flow punctuation.
func TestParseYAMLDocument(t *testing.T) {
	doc, err := Parse("t.yaml", []byte(`# leading comment
version: 1
name: demo
desc: A demo (with, commas) and: trailing punctuation
seed: 12_345
profiles:
  - name: base
    abstract: true
    class: online
    ipc: 1.5
    syscalls: {read: 1, write: 2.5}
    mem_class_mix: [0.5, 0.25, 0.25]
  - name: child
    base: base
    desc: "quoted: value # not a comment"
    threads: 8 # trailing comment
scenario:
  duration_s: 2
  aggregate_rate: 100
  app: child
  clients:
    - id: web
      rate_fraction: 0.75
      slo_class: latency
      slo_ms: 10
      arrival: {process: gamma-bursty, cv: 2}
    - id: batch
      rate_fraction: 0.25
  envelope:
    kind: diurnal
    period_s: 1
    amplitude: 0.5
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Version != 1 || doc.Name != "demo" || doc.Seed != 12345 {
		t.Errorf("header = %d %q %d", doc.Version, doc.Name, doc.Seed)
	}
	if want := "A demo (with, commas) and: trailing punctuation"; doc.Desc != want {
		t.Errorf("desc = %q, want %q", doc.Desc, want)
	}
	if len(doc.Profiles) != 2 {
		t.Fatalf("profiles = %d, want 2", len(doc.Profiles))
	}
	base := doc.Profiles[0]
	if !base.Abstract || base.Class != "online" || *base.IPC != 1.5 {
		t.Errorf("base = %+v", base)
	}
	if base.Syscalls["write"] != 2.5 || len(base.MemClassMix) != 3 {
		t.Errorf("base maps = %v %v", base.Syscalls, base.MemClassMix)
	}
	child := doc.Profiles[1]
	if child.Base != "base" || *child.Threads != 8 {
		t.Errorf("child = %+v", child)
	}
	if want := "quoted: value # not a comment"; child.Desc != want {
		t.Errorf("child desc = %q", child.Desc)
	}
	sc := doc.Scenario
	if sc == nil || len(sc.Clients) != 2 {
		t.Fatalf("scenario = %+v", sc)
	}
	if sc.Clients[0].Arrival.Process != ProcGamma || sc.Clients[0].Arrival.CV != 2 {
		t.Errorf("client arrival = %+v", sc.Clients[0].Arrival)
	}
	if sc.Envelope.Kind != EnvDiurnal || sc.Envelope.Amplitude != 0.5 {
		t.Errorf("envelope = %+v", sc.Envelope)
	}
}

// TestParseJSONDocument checks the JSON path produces the same document
// as the equivalent YAML.
func TestParseJSONDocument(t *testing.T) {
	y, err := Parse("t.yaml", []byte(`version: 1
name: j
profiles:
  - name: p
    ipc: 2
    syscalls: {read: 1}
`))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	j, err := Parse("t.json", []byte(`{
  "version": 1,
  "name": "j",
  "profiles": [{"name": "p", "ipc": 2, "syscalls": {"read": 1}}]
}`))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if j.Name != y.Name || len(j.Profiles) != len(y.Profiles) ||
		*j.Profiles[0].IPC != *y.Profiles[0].IPC ||
		j.Profiles[0].Syscalls["read"] != y.Profiles[0].Syscalls["read"] {
		t.Errorf("json %+v != yaml %+v", j, y)
	}
}

// TestParseErrors is the table of malformed inputs; each must fail with
// an error naming the offending position or field, never panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"tab indent", "version: 1\nprofiles:\n\t- name: x\n", "tab"},
		{"unterminated quote", "version: 1\nname: \"oops\n", "unterminated string"},
		{"unterminated flow list", "version: 1\nprofiles: [\n", "unterminated"},
		{"duplicate yaml key", "version: 1\nname: a\nname: b\n", "duplicate key"},
		{"duplicate json key", `{"version": 1, "name": "a", "name": "b"}`, "duplicate key"},
		{"json trailing garbage", `{"version": 1} {}`, "trailing"},
		{"list under scalar", "version: 1\nname:\n  nope: 1\n", ""},
		{"unknown top field", "version: 1\nprofile:\n  - name: x\n", `unknown field "profile" (did you mean "profiles"?)`},
		{"unknown profile field", "version: 1\nprofiles:\n  - name: x\n    trheads: 2\n", `did you mean "threads"?`},
		{"string where number", "version: 1\nprofiles:\n  - name: x\n    ipc: fast\n", "expected a number"},
		{"float where int", "version: 1\nprofiles:\n  - name: x\n    threads: 1.5\n", "expected an integer"},
		{"negative seed", "version: 1\nseed: -3\n", "unsigned"},
		{"profiles not list", "version: 1\nprofiles: 3\n", "expected a list"},
		{"syscalls not map", "version: 1\nprofiles:\n  - name: x\n    syscalls: 3\n", "mapping"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad.yaml", []byte(c.in))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

// TestParseErrorHasLine checks errors carry usable source positions.
func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("pos.yaml", []byte("version: 1\nprofiles:\n  - name: x\n    bogus: 2\n"))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "pos.yaml:4") {
		t.Errorf("error %q does not name pos.yaml:4", err)
	}
}
