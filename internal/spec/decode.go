package spec

import (
	"math"
	"strconv"
	"strings"
)

// decodeDocument converts a value tree into a Document, rejecting unknown
// fields with their source position and a nearest-field suggestion.
func decodeDocument(src string, v *value) (*Document, error) {
	d := &decoder{src: src}
	if v.kind != kMap {
		return nil, errf(src, v.line, "", "document must be a mapping, got %s", v.kind)
	}
	doc := &Document{Src: src}
	err := d.fields(v, "", map[string]func(*value) error{
		"version":  func(f *value) error { return d.intAt(f, "version", &doc.Version) },
		"name":     func(f *value) error { return d.strAt(f, "name", &doc.Name) },
		"desc":     func(f *value) error { return d.strAt(f, "desc", &doc.Desc) },
		"seed":     func(f *value) error { return d.uintAt(f, "seed", &doc.Seed) },
		"profiles": func(f *value) error { return d.profiles(f, &doc.Profiles) },
		"scenario": func(f *value) error {
			sc, err := d.scenario(f)
			doc.Scenario = sc
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// decoder carries the source name through the per-struct decode helpers.
type decoder struct {
	src string
}

// fields walks a mapping's entries through the given per-key handlers and
// rejects keys that have no handler.
func (d *decoder) fields(v *value, path string, handlers map[string]func(*value) error) error {
	if v.kind != kMap {
		return errf(d.src, v.line, path, "expected a mapping, got %s", v.kind)
	}
	for _, e := range v.m {
		h, ok := handlers[e.key]
		if !ok {
			known := make([]string, 0, len(handlers))
			for k := range handlers {
				known = append(known, k)
			}
			msg := "unknown field " + strconv.Quote(e.key)
			if s := nearest(e.key, known); s != "" {
				msg += " (did you mean " + strconv.Quote(s) + "?)"
			}
			return errf(d.src, e.line, path, "%s", msg)
		}
		if err := h(e.val); err != nil {
			return err
		}
	}
	return nil
}

func (d *decoder) strAt(v *value, path string, out *string) error {
	if v.kind != kStr {
		return errf(d.src, v.line, path, "expected a string, got %s", v.kind)
	}
	*out = v.str
	return nil
}

func (d *decoder) boolAt(v *value, path string, out *bool) error {
	if v.kind != kBool {
		return errf(d.src, v.line, path, "expected true or false, got %s", v.kind)
	}
	*out = v.b
	return nil
}

func (d *decoder) floatAt(v *value, path string, out *float64) error {
	if v.kind != kNum {
		return errf(d.src, v.line, path, "expected a number, got %s", v.kind)
	}
	*out = v.num
	return nil
}

func (d *decoder) intAt(v *value, path string, out *int) error {
	var i64 int64
	if err := d.int64At(v, path, &i64); err != nil {
		return err
	}
	*out = int(i64)
	return nil
}

func (d *decoder) int64At(v *value, path string, out *int64) error {
	if v.kind != kNum {
		return errf(d.src, v.line, path, "expected an integer, got %s", v.kind)
	}
	if v.num != math.Trunc(v.num) {
		return errf(d.src, v.line, path, "expected an integer, got %s", v.raw)
	}
	*out = int64(v.num)
	return nil
}

// uintAt parses an unsigned 64-bit integer from the scalar's source text,
// so seeds above 2^53 survive exactly.
func (d *decoder) uintAt(v *value, path string, out *uint64) error {
	if v.kind != kNum {
		return errf(d.src, v.line, path, "expected an unsigned integer, got %s", v.kind)
	}
	u, err := strconv.ParseUint(strings.ReplaceAll(v.raw, "_", ""), 10, 64)
	if err != nil {
		return errf(d.src, v.line, path, "expected an unsigned integer, got %s", v.raw)
	}
	*out = u
	return nil
}

func (d *decoder) floatList(v *value, path string, out *[]float64) error {
	if v.kind != kList {
		return errf(d.src, v.line, path, "expected a list of numbers, got %s", v.kind)
	}
	vals := make([]float64, len(v.l))
	for i, it := range v.l {
		if it.kind != kNum {
			return errf(d.src, it.line, path, "expected a number, got %s", it.kind)
		}
		vals[i] = it.num
	}
	*out = vals
	return nil
}

func (d *decoder) intList(v *value, path string, out *[]int) error {
	if v.kind != kList {
		return errf(d.src, v.line, path, "expected a list of integers, got %s", v.kind)
	}
	vals := make([]int, len(v.l))
	for i, it := range v.l {
		if err := d.intAt(it, path, &vals[i]); err != nil {
			return err
		}
	}
	*out = vals
	return nil
}

// weightMap decodes a {name: weight} mapping.
func (d *decoder) weightMap(v *value, path string) (map[string]float64, error) {
	if v.kind != kMap {
		return nil, errf(d.src, v.line, path, "expected a {name: weight} mapping, got %s", v.kind)
	}
	out := make(map[string]float64, len(v.m))
	for _, e := range v.m {
		if e.val.kind != kNum {
			return nil, errf(d.src, e.val.line, path, "%s: expected a number, got %s", e.key, e.val.kind)
		}
		out[e.key] = e.val.num
	}
	return out, nil
}

func (d *decoder) profiles(v *value, out *[]Profile) error {
	if v.kind != kList {
		return errf(d.src, v.line, "profiles", "expected a list, got %s", v.kind)
	}
	for i, it := range v.l {
		path := "profiles[" + strconv.Itoa(i) + "]"
		p, err := d.profile(it, path)
		if err != nil {
			return err
		}
		*out = append(*out, p)
	}
	return nil
}

func (d *decoder) profile(v *value, path string) (Profile, error) {
	p := Profile{Line: v.line}
	fptr := func(out **float64) func(*value) error {
		return func(f *value) error {
			var x float64
			if err := d.floatAt(f, path, &x); err != nil {
				return err
			}
			*out = &x
			return nil
		}
	}
	iptr := func(out **int) func(*value) error {
		return func(f *value) error {
			var x int
			if err := d.intAt(f, path, &x); err != nil {
				return err
			}
			*out = &x
			return nil
		}
	}
	err := d.fields(v, path, map[string]func(*value) error{
		"name":     func(f *value) error { return d.strAt(f, path, &p.Name) },
		"desc":     func(f *value) error { return d.strAt(f, path, &p.Desc) },
		"base":     func(f *value) error { return d.strAt(f, path, &p.Base) },
		"abstract": func(f *value) error { return d.boolAt(f, path, &p.Abstract) },
		"class":    func(f *value) error { return d.strAt(f, path, &p.Class) },
		"mode":     func(f *value) error { return d.strAt(f, path, &p.Mode) },

		"branch_per_kcycle": fptr(&p.BranchPerKCycle),
		"indirect_frac":     fptr(&p.IndirectFrac),
		"ipc":               fptr(&p.IPC),
		"mean_cycles_per_syscall": func(f *value) error {
			var x int64
			if err := d.int64At(f, path, &x); err != nil {
				return err
			}
			p.MeanCyclesPerSyscall = &x
			return nil
		},
		"syscalls": func(f *value) error {
			m, err := d.weightMap(f, path+".syscalls")
			p.Syscalls = m
			return err
		},
		"threads":      iptr(&p.Threads),
		"cores_wanted": iptr(&p.CoresWanted),

		"branch_miss_per_kinsn": fptr(&p.BranchMissPerKInsn),
		"l1_miss_per_kinsn":     fptr(&p.L1MissPerKInsn),
		"llc_miss_per_kinsn":    fptr(&p.LLCMissPerKInsn),

		"priority":    iptr(&p.Priority),
		"past_issues": iptr(&p.PastIssues),

		"funcs":            iptr(&p.Funcs),
		"avg_block_cycles": iptr(&p.AvgBlockCycles),
		"categories": func(f *value) error {
			m, err := d.weightMap(f, path+".categories")
			p.Categories = m
			return err
		},
		"mem_class_mix": func(f *value) error { return d.floatList(f, path+".mem_class_mix", &p.MemClassMix) },
		"mem_width_mix": func(f *value) error { return d.floatList(f, path+".mem_width_mix", &p.MemWidthMix) },
	})
	return p, err
}

func (d *decoder) scenario(v *value) (*Scenario, error) {
	sc := &Scenario{}
	err := d.fields(v, "scenario", map[string]func(*value) error{
		"duration_s":     func(f *value) error { return d.floatAt(f, "scenario.duration_s", &sc.DurationS) },
		"aggregate_rate": func(f *value) error { return d.floatAt(f, "scenario.aggregate_rate", &sc.AggregateRate) },
		"app":            func(f *value) error { return d.strAt(f, "scenario.app", &sc.App) },
		"clients": func(f *value) error {
			if f.kind != kList {
				return errf(d.src, f.line, "scenario.clients", "expected a list, got %s", f.kind)
			}
			for i, it := range f.l {
				c, err := d.client(it, "scenario.clients["+strconv.Itoa(i)+"]")
				if err != nil {
					return err
				}
				sc.Clients = append(sc.Clients, c)
			}
			return nil
		},
		"envelope": func(f *value) error {
			e, err := d.envelope(f)
			sc.Envelope = e
			return err
		},
		"replay": func(f *value) error {
			r := &Replay{Line: f.line}
			err := d.fields(f, "scenario.replay", map[string]func(*value) error{
				"csv": func(g *value) error { return d.strAt(g, "scenario.replay.csv", &r.CSV) },
			})
			sc.Replay = r
			return err
		},
		"node": func(f *value) error {
			n, err := d.placement(f)
			sc.Node = n
			return err
		},
		"cluster": func(f *value) error {
			c := &Cluster{}
			err := d.fields(f, "scenario.cluster", map[string]func(*value) error{
				"nodes":          func(g *value) error { return d.intAt(g, "scenario.cluster.nodes", &c.Nodes) },
				"cores_per_node": func(g *value) error { return d.intAt(g, "scenario.cluster.cores_per_node", &c.CoresPerNode) },
				"replicas":       func(g *value) error { return d.intAt(g, "scenario.cluster.replicas", &c.Replicas) },
				"shards":         func(g *value) error { return d.intAt(g, "scenario.cluster.shards", &c.Shards) },
				"requests":       func(g *value) error { return d.intAt(g, "scenario.cluster.requests", &c.Requests) },
			})
			sc.Cluster = c
			return err
		},
		"faults": func(f *value) error {
			fs := &Faults{}
			p := "scenario.faults"
			err := d.fields(f, p, map[string]func(*value) error{
				"seed":             func(g *value) error { return d.uintAt(g, p, &fs.Seed) },
				"put_fail":         func(g *value) error { return d.floatAt(g, p, &fs.PutFail) },
				"insert_fail":      func(g *value) error { return d.floatAt(g, p, &fs.InsertFail) },
				"session_loss":     func(g *value) error { return d.floatAt(g, p, &fs.SessionLoss) },
				"corrupt":          func(g *value) error { return d.floatAt(g, p, &fs.Corrupt) },
				"truncate":         func(g *value) error { return d.floatAt(g, p, &fs.Truncate) },
				"stall":            func(g *value) error { return d.floatAt(g, p, &fs.Stall) },
				"crash_mtbf_s":     func(g *value) error { return d.floatAt(g, p, &fs.CrashMTBFS) },
				"crash_downtime_s": func(g *value) error { return d.floatAt(g, p, &fs.CrashDowntimeS) },
			})
			sc.Faults = fs
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

func (d *decoder) client(v *value, path string) (Client, error) {
	c := Client{Line: v.line}
	err := d.fields(v, path, map[string]func(*value) error{
		"id":            func(f *value) error { return d.strAt(f, path+".id", &c.ID) },
		"rate_fraction": func(f *value) error { return d.floatAt(f, path+".rate_fraction", &c.RateFraction) },
		"slo_class":     func(f *value) error { return d.strAt(f, path+".slo_class", &c.SLOClass) },
		"slo_ms":        func(f *value) error { return d.floatAt(f, path+".slo_ms", &c.SLOMs) },
		"arrival": func(f *value) error {
			return d.fields(f, path+".arrival", map[string]func(*value) error{
				"process": func(g *value) error { return d.strAt(g, path+".arrival.process", &c.Arrival.Process) },
				"cv":      func(g *value) error { return d.floatAt(g, path+".arrival.cv", &c.Arrival.CV) },
			})
		},
	})
	return c, err
}

func (d *decoder) envelope(v *value) (*Envelope, error) {
	e := &Envelope{Line: v.line}
	p := "scenario.envelope"
	err := d.fields(v, p, map[string]func(*value) error{
		"kind":      func(f *value) error { return d.strAt(f, p+".kind", &e.Kind) },
		"period_s":  func(f *value) error { return d.floatAt(f, p+".period_s", &e.PeriodS) },
		"amplitude": func(f *value) error { return d.floatAt(f, p+".amplitude", &e.Amplitude) },
		"at_s":      func(f *value) error { return d.floatAt(f, p+".at_s", &e.AtS) },
		"dur_s":     func(f *value) error { return d.floatAt(f, p+".dur_s", &e.DurS) },
		"factor":    func(f *value) error { return d.floatAt(f, p+".factor", &e.Factor) },
		"from":      func(f *value) error { return d.floatAt(f, p+".from", &e.From) },
		"to":        func(f *value) error { return d.floatAt(f, p+".to", &e.To) },
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

func (d *decoder) placement(v *value) (*Placement, error) {
	n := &Placement{}
	p := "scenario.node"
	err := d.fields(v, p, map[string]func(*value) error{
		"cores":        func(f *value) error { return d.intAt(f, p+".cores", &n.Cores) },
		"ht":           func(f *value) error { return d.boolAt(f, p+".ht", &n.HT) },
		"threads":      func(f *value) error { return d.intAt(f, p+".threads", &n.Threads) },
		"target_cores": func(f *value) error { return d.intList(f, p+".target_cores", &n.TargetCores) },
		"seed":         func(f *value) error { return d.uintAt(f, p+".seed", &n.Seed) },
		"collect_switch_periods": func(f *value) error {
			return d.boolAt(f, p+".collect_switch_periods", &n.CollectSwitchPeriods)
		},
		"co_runners": func(f *value) error {
			if f.kind != kList {
				return errf(d.src, f.line, p+".co_runners", "expected a list, got %s", f.kind)
			}
			for i, it := range f.l {
				cp := p + ".co_runners[" + strconv.Itoa(i) + "]"
				var co CoRunner
				err := d.fields(it, cp, map[string]func(*value) error{
					"profile":     func(g *value) error { return d.strAt(g, cp+".profile", &co.Profile) },
					"cores":       func(g *value) error { return d.intList(g, cp+".cores", &co.Cores) },
					"seed_offset": func(g *value) error { return d.uintAt(g, cp+".seed_offset", &co.SeedOffset) },
				})
				if err != nil {
					return err
				}
				n.CoRunners = append(n.CoRunners, co)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// nearest returns the candidate with the smallest edit distance from key,
// when that distance is small enough to be a plausible typo.
func nearest(key string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if d := editDistance(key, c); d < bestDist || (d == bestDist && best != "" && c < best) {
			if d < bestDist {
				best, bestDist = c, d
			} else if c < best {
				best = c
			}
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
