// Package spec defines the versioned scenario specification — the one
// declarative source all simulated traffic compiles out of. A document
// (JSON or a YAML subset, parsed with no dependencies beyond the standard
// library) names workload profiles and, optionally, a traffic scenario:
// clients with rate fractions and arrival processes, a rate envelope over
// time, SLO classes, node placement with co-runners, a cluster section
// with fault-schedule hooks, and a CSV replay mode for recorded arrival
// traces.
//
// The package is a leaf: it knows nothing of the workload, node, or
// cluster packages. Those compile spec structures into their own types
// (workload.CompileProfiles, node.SpecFromPlacement, cluster.ConfigFromSpec),
// so the dependency arrow points from the runtime layers to the DSL —
// experiments consume compiled scenarios instead of constructing traffic
// imperatively.
//
// Determinism contract: arrival schedules derive exclusively from
// internal/xrand streams keyed by the document seed and client ids —
// never wall clock, map order, or run order — so a document compiles to
// the identical schedule on every run at any parallelism.
package spec

// Document is one parsed scenario specification.
type Document struct {
	// Version is the spec format version (must be 1).
	Version int
	// Name identifies the document (bundled scenarios list it).
	Name string
	// Desc is a one-line description.
	Desc string
	// Seed drives all randomness derived from the document. Zero is a
	// valid seed; consumers typically fold their own seed in.
	Seed uint64
	// Profiles defines or overrides named workload profiles.
	Profiles []Profile
	// Scenario describes traffic; nil for profile-only documents.
	Scenario *Scenario

	// Src is the document name given to Parse (for error context).
	Src string
}

// Profile is a declarative workload profile. Optional fields are pointers:
// nil means "inherit from Base" (or the zero default when Base is empty),
// mirroring how the hand-written Table 1 constructors derived variants
// from a shared base value.
type Profile struct {
	// Name is the profile identifier (pb, mc, Search1, ...).
	Name string
	// Desc is the human description.
	Desc string
	// Base names a profile (earlier in this document, or from the compile
	// context) whose resolved fields seed this one.
	Base string
	// Abstract marks a template profile that is only a Base for others
	// and is not emitted.
	Abstract bool
	// Class is "compute", "online" or "cloud".
	Class string
	// Mode is "cpuset" or "cpushare".
	Mode string

	BranchPerKCycle      *float64
	IndirectFrac         *float64
	IPC                  *float64
	MeanCyclesPerSyscall *int64
	// Syscalls weights syscall classes by mnemonic (read, write, sendto,
	// recvfrom, futex, epoll_wait, nanosleep, sched_yield).
	Syscalls    map[string]float64
	Threads     *int
	CoresWanted *int

	BranchMissPerKInsn *float64
	L1MissPerKInsn     *float64
	LLCMissPerKInsn    *float64

	Priority   *int
	PastIssues *int

	Funcs          *int
	AvgBlockCycles *int
	// Categories weights function categories by name (GENERAL, MEM_JE,
	// MEM_TC, MEM_ALLOC, MEM_FREE, MEM_COPY, MEM_SET, MEM_CMP, MEM_MOVE,
	// SYNC_ATOMIC, SYNC_SPINLOCK, SYNC_MUTEX, SYNC_CAS, KERNEL_SCHE,
	// KERNEL_IRQ, KERNEL_NET).
	Categories map[string]float64
	// MemClassMix weights the three memory operand classes.
	MemClassMix []float64
	// MemWidthMix weights the four operand widths.
	MemWidthMix []float64

	// Line is the profile's source line (for error context).
	Line int
}

// Scenario describes a traffic pattern end to end.
type Scenario struct {
	// DurationS is the traffic window in simulated seconds.
	DurationS float64
	// AggregateRate is the cluster-wide request rate in requests/second,
	// split across clients by RateFraction. (Consumers map it onto one
	// instance with service.InstanceRate.)
	AggregateRate float64
	// App names the profile under trace.
	App string
	// Clients are the named traffic sources.
	Clients []Client
	// Envelope shapes the rate over time (nil: constant).
	Envelope *Envelope
	// Replay substitutes a recorded arrival trace for generated traffic.
	Replay *Replay
	// Node places the app (and antagonists) on one machine.
	Node *Placement
	// Cluster sizes the distributed run (nil: no cluster phase).
	Cluster *Cluster
	// Faults injects failures into the cluster phase.
	Faults *Faults
}

// Client is one named traffic source.
type Client struct {
	// ID keys the client's xrand stream; it must be unique.
	ID string
	// RateFraction is this client's share of the aggregate rate; the
	// fractions must sum to ~1 (unless the scenario replays a trace).
	RateFraction float64
	// SLOClass is "latency" (SLOMs applies) or "besteffort".
	SLOClass string
	// SLOMs is the response-time objective in milliseconds.
	SLOMs float64
	// Arrival selects the inter-arrival process.
	Arrival Arrival

	// Line is the client's source line.
	Line int
}

// Arrival selects a client's inter-arrival process.
type Arrival struct {
	// Process is "poisson", "gamma-bursty", "weibull" or "constant".
	Process string
	// CV is the inter-arrival coefficient of variation for gamma-bursty
	// and weibull (>1: burstier than Poisson).
	CV float64
}

// Arrival process names.
const (
	ProcPoisson  = "poisson"
	ProcGamma    = "gamma-bursty"
	ProcWeibull  = "weibull"
	ProcConstant = "constant"
)

// Envelope modulates the aggregate rate over the scenario window.
type Envelope struct {
	// Kind is "constant", "diurnal", "flash-crowd" or "ramp".
	Kind string
	// PeriodS is the diurnal sine period in seconds.
	PeriodS float64
	// Amplitude is the diurnal modulation depth in [0, 1).
	Amplitude float64
	// AtS/DurS bound the flash-crowd step, which multiplies the rate by
	// Factor inside [AtS, AtS+DurS).
	AtS, DurS float64
	// Factor is the flash-crowd step multiplier.
	Factor float64
	// From/To are the ramp's start and end rate multipliers.
	From, To float64

	// Line is the envelope's source line.
	Line int
}

// Envelope kinds.
const (
	EnvConstant = "constant"
	EnvDiurnal  = "diurnal"
	EnvFlash    = "flash-crowd"
	EnvRamp     = "ramp"
)

// Replay substitutes a recorded arrival trace for generated arrivals.
type Replay struct {
	// CSV is the trace path, resolved relative to the document by the
	// loader (see ResolveReplay). Rows are "t_ms,client".
	CSV string
	// Rows is the resolved trace.
	Rows []ReplayRow

	// Line is the replay's source line.
	Line int
}

// ReplayRow is one recorded arrival.
type ReplayRow struct {
	// TMS is the arrival time in milliseconds from scenario start.
	TMS float64
	// Client is the client ID the arrival belongs to.
	Client string
}

// Placement describes the single-node arrangement: the traced app plus
// co-located antagonists.
type Placement struct {
	// Cores is the machine's core count (0: the node default).
	Cores int
	// HT enables hyperthread sibling pairs.
	HT bool
	// Threads overrides the app's thread count (0: profile default).
	Threads int
	// TargetCores pins the app to specific cores.
	TargetCores []int
	// Seed is the machine seed (consumers fold their own seed in).
	Seed uint64
	// CollectSwitchPeriods records context-switch period samples.
	CollectSwitchPeriods bool
	// CoRunners are co-located antagonist workloads.
	CoRunners []CoRunner
}

// CoRunner places one antagonist profile.
type CoRunner struct {
	// Profile names the antagonist's workload profile.
	Profile string
	// Cores pins it to specific cores (nil: profile provisioning).
	Cores []int
	// SeedOffset offsets the machine seed for this antagonist's streams.
	SeedOffset uint64
}

// Cluster sizes the distributed phase of a scenario.
type Cluster struct {
	// Nodes is the cluster size (0: default).
	Nodes int
	// CoresPerNode sizes each machine (0: default).
	CoresPerNode int
	// Replicas is the control-plane replica count (0: default).
	Replicas int
	// Shards is the API-server store shard count for range-leased
	// reconciliation (0: default, single shard).
	Shards int
	// Requests is the number of trace requests to issue (0: default).
	Requests int
}

// Faults configures fault injection for the cluster phase. Probabilities
// are per-decision; durations are seconds of simulated time.
type Faults struct {
	Seed           uint64
	PutFail        float64
	InsertFail     float64
	SessionLoss    float64
	Corrupt        float64
	Truncate       float64
	Stall          float64
	CrashMTBFS     float64
	CrashDowntimeS float64
}

// Parse parses and validates a document. name labels error messages
// (conventionally the file path).
func Parse(name string, data []byte) (*Document, error) {
	tree, err := parseTree(name, data)
	if err != nil {
		return nil, err
	}
	doc, err := decodeDocument(name, tree)
	if err != nil {
		return nil, err
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}
