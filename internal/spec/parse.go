package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// kind is a value tree node's type.
type kind uint8

const (
	kNull kind = iota
	kBool
	kNum
	kStr
	kMap
	kList
)

func (k kind) String() string {
	switch k {
	case kNull:
		return "null"
	case kBool:
		return "bool"
	case kNum:
		return "number"
	case kStr:
		return "string"
	case kMap:
		return "mapping"
	case kList:
		return "list"
	}
	return "?"
}

// value is one node of the parsed document tree. Scalars keep their source
// text (raw) so integers decode exactly and error messages can quote the
// input; every node carries its 1-based source line for error context.
type value struct {
	kind kind
	line int
	b    bool
	num  float64
	raw  string
	str  string
	m    []entry
	l    []*value
}

// entry is one key of a mapping, in document order.
type entry struct {
	key  string
	line int
	val  *value
}

// get returns the value for key, or nil.
func (v *value) get(key string) *value {
	for i := range v.m {
		if v.m[i].key == key {
			return v.m[i].val
		}
	}
	return nil
}

// Error is a parse or validation failure tied to a source location.
type Error struct {
	// Src is the document name (file path or logical name).
	Src string
	// Line is the 1-based source line (0 when unknown).
	Line int
	// Path locates the offending field (e.g. "profiles[2].ipc").
	Path string
	// Msg describes the failure.
	Msg string
}

func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(e.Src)
	if e.Line > 0 {
		fmt.Fprintf(&b, ":%d", e.Line)
	}
	b.WriteString(": ")
	if e.Path != "" {
		b.WriteString(e.Path)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// errf builds an *Error for a document position.
func errf(src string, line int, path, format string, args ...any) error {
	return &Error{Src: src, Line: line, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// parseTree parses data — JSON when the first non-space byte is '{',
// otherwise the YAML subset — into a value tree.
func parseTree(src string, data []byte) (*value, error) {
	for _, c := range data {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return parseJSONTree(src, data)
		}
		break
	}
	return parseYAMLTree(src, data)
}

// --- JSON ---

// parseJSONTree builds the value tree from JSON, mapping byte offsets back
// to source lines for error context.
func parseJSONTree(src string, data []byte) (*value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	lineAt := func() int {
		off := dec.InputOffset()
		line := 1
		for i := int64(0); i < off && i < int64(len(data)); i++ {
			if data[i] == '\n' {
				line++
			}
		}
		return line
	}
	v, err := parseJSONValue(src, dec, lineAt)
	if err != nil {
		return nil, err
	}
	if tok, err := dec.Token(); err != io.EOF {
		return nil, errf(src, lineAt(), "", "trailing content after document: %v", tok)
	}
	return v, nil
}

func parseJSONValue(src string, dec *json.Decoder, lineAt func() int) (*value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, errf(src, lineAt(), "", "invalid JSON: %v", err)
	}
	line := lineAt()
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			v := &value{kind: kMap, line: line}
			for dec.More() {
				ktok, err := dec.Token()
				if err != nil {
					return nil, errf(src, lineAt(), "", "invalid JSON: %v", err)
				}
				key, _ := ktok.(string)
				kline := lineAt()
				child, err := parseJSONValue(src, dec, lineAt)
				if err != nil {
					return nil, err
				}
				for _, e := range v.m {
					if e.key == key {
						return nil, errf(src, kline, "", "duplicate key %q", key)
					}
				}
				v.m = append(v.m, entry{key: key, line: kline, val: child})
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, errf(src, lineAt(), "", "invalid JSON: %v", err)
			}
			return v, nil
		case '[':
			v := &value{kind: kList, line: line}
			for dec.More() {
				child, err := parseJSONValue(src, dec, lineAt)
				if err != nil {
					return nil, err
				}
				v.l = append(v.l, child)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, errf(src, lineAt(), "", "invalid JSON: %v", err)
			}
			return v, nil
		}
		return nil, errf(src, line, "", "unexpected delimiter %v", t)
	case string:
		return &value{kind: kStr, line: line, str: t, raw: t}, nil
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return nil, errf(src, line, "", "bad number %q", t.String())
		}
		return &value{kind: kNum, line: line, num: f, raw: t.String()}, nil
	case bool:
		return &value{kind: kBool, line: line, b: t}, nil
	case nil:
		return &value{kind: kNull, line: line}, nil
	}
	return nil, errf(src, line, "", "unexpected token %v", tok)
}

// --- YAML subset ---
//
// The subset: indentation-scoped mappings and "- " lists, scalars
// (null/~, true/false, numbers with optional _ digit separators, bare and
// quoted strings), flow lists [a, b] and flow maps {k: v}, and '#'
// comments. No anchors, tags, multi-documents, or multi-line scalars.

// yline is one preprocessed source line.
type yline struct {
	indent int
	text   string
	num    int
}

type yparser struct {
	src   string
	lines []yline
	pos   int
}

func parseYAMLTree(src string, data []byte) (*value, error) {
	p := &yparser{src: src}
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, errf(src, num, "", "tab indentation is not supported (use spaces)")
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \r")
		if text == "" {
			continue
		}
		p.lines = append(p.lines, yline{indent: indent, text: text, num: num})
	}
	if len(p.lines) == 0 {
		return nil, errf(src, 0, "", "empty document")
	}
	if p.lines[0].indent != 0 {
		return nil, errf(src, p.lines[0].num, "", "top-level content must not be indented")
	}
	v, err := p.parseNode(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, errf(src, p.lines[p.pos].num, "", "unexpected content after document")
	}
	return v, nil
}

// stripComment removes a trailing "#..." comment that is outside quotes.
// A '#' only starts a comment at the beginning of the content or after a
// space, per YAML.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseNode parses the block starting at the current line, whose indent
// defines the block's scope.
func (p *yparser) parseNode(minIndent int) (*value, error) {
	ln := p.lines[p.pos]
	if ln.indent < minIndent {
		return nil, errf(p.src, ln.num, "", "internal: block under-indented")
	}
	if isListItem(ln.text) {
		return p.parseList(ln.indent)
	}
	return p.parseMap(ln.indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yparser) parseMap(indent int) (*value, error) {
	v := &value{kind: kMap, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, errf(p.src, ln.num, "", "unexpected indentation")
		}
		if isListItem(ln.text) {
			return nil, errf(p.src, ln.num, "", "unexpected list item in mapping")
		}
		key, rest, err := splitKey(ln.text)
		if err != nil {
			return nil, errf(p.src, ln.num, "", "%v", err)
		}
		for _, e := range v.m {
			if e.key == key {
				return nil, errf(p.src, ln.num, "", "duplicate key %q", key)
			}
		}
		p.pos++
		var child *value
		if rest != "" {
			child, err = parseScalar(p.src, rest, ln.num)
			if err != nil {
				return nil, err
			}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			child, err = p.parseNode(indent + 1)
			if err != nil {
				return nil, err
			}
		} else {
			child = &value{kind: kNull, line: ln.num}
		}
		v.m = append(v.m, entry{key: key, line: ln.num, val: child})
	}
	return v, nil
}

func (p *yparser) parseList(indent int) (*value, error) {
	v := &value{kind: kList, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, errf(p.src, ln.num, "", "unexpected indentation")
		}
		if !isListItem(ln.text) {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				v.l = append(v.l, &value{kind: kNull, line: ln.num})
				continue
			}
			child, err := p.parseNode(indent + 1)
			if err != nil {
				return nil, err
			}
			v.l = append(v.l, child)
			continue
		}
		if _, _, err := splitKey(rest); err == nil && rest[0] != '[' && rest[0] != '{' {
			// "- key: ..." starts an inline mapping: re-scope this line to
			// the item's column and let parseMap collect the item's
			// remaining keys from the following deeper lines.
			p.lines[p.pos] = yline{indent: indent + 2, text: rest, num: ln.num}
			child, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			v.l = append(v.l, child)
			continue
		}
		p.pos++
		child, err := parseScalar(p.src, rest, ln.num)
		if err != nil {
			return nil, err
		}
		v.l = append(v.l, child)
	}
	return v, nil
}

// splitKey splits "key: rest" (or "key:") at the first top-level colon
// followed by a space or end of line.
func splitKey(text string) (key, rest string, err error) {
	depth := 0
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case '"', '\'':
			return "", "", fmt.Errorf("quoted keys are not supported")
		case ':':
			if depth > 0 {
				continue
			}
			if i+1 < len(text) && text[i+1] != ' ' {
				return "", "", fmt.Errorf("missing space after ':' in %q", text)
			}
			key = strings.TrimSpace(text[:i])
			if key == "" {
				return "", "", fmt.Errorf("empty key in %q", text)
			}
			return key, strings.TrimSpace(text[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("expected \"key: value\" in %q", text)
}

// parseScalar parses a scalar or flow collection occupying one line. A
// block-level bare scalar spans the whole line (descriptions may contain
// commas and brackets); only inside flow collections do ,/]/} terminate.
func parseScalar(src, text string, line int) (*value, error) {
	switch text[0] {
	case '[', '{', '"', '\'':
		v, n, err := parseFlow(src, text, line)
		if err != nil {
			return nil, err
		}
		if rest := strings.TrimSpace(text[n:]); rest != "" {
			return nil, errf(src, line, "", "trailing content %q after value", rest)
		}
		return v, nil
	}
	return scalarFromToken(text, line), nil
}

// parseFlow parses one value starting at the beginning of text and returns
// how many bytes it consumed. Flow lists/maps recurse.
func parseFlow(src, text string, line int) (*value, int, error) {
	text0 := text
	switch {
	case strings.HasPrefix(text, "["):
		v := &value{kind: kList, line: line}
		rest := strings.TrimLeft(text[1:], " ")
		for {
			if rest == "" {
				return nil, 0, errf(src, line, "", "unterminated flow list")
			}
			if rest[0] == ']' {
				rest = rest[1:]
				break
			}
			child, n, err := parseFlow(src, rest, line)
			if err != nil {
				return nil, 0, err
			}
			v.l = append(v.l, child)
			rest = strings.TrimLeft(rest[n:], " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
			} else if !strings.HasPrefix(rest, "]") {
				return nil, 0, errf(src, line, "", "expected ',' or ']' in flow list")
			}
		}
		return v, len(text0) - len(rest), nil
	case strings.HasPrefix(text, "{"):
		v := &value{kind: kMap, line: line}
		rest := strings.TrimLeft(text[1:], " ")
		for {
			if rest == "" {
				return nil, 0, errf(src, line, "", "unterminated flow mapping")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			ci := strings.IndexByte(rest, ':')
			if ci <= 0 {
				return nil, 0, errf(src, line, "", "expected \"key: value\" in flow mapping")
			}
			key := strings.TrimSpace(rest[:ci])
			rest = strings.TrimLeft(rest[ci+1:], " ")
			child, n, err := parseFlow(src, rest, line)
			if err != nil {
				return nil, 0, err
			}
			for _, e := range v.m {
				if e.key == key {
					return nil, 0, errf(src, line, "", "duplicate key %q", key)
				}
			}
			v.m = append(v.m, entry{key: key, line: line, val: child})
			rest = strings.TrimLeft(rest[n:], " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
			} else if !strings.HasPrefix(rest, "}") {
				return nil, 0, errf(src, line, "", "expected ',' or '}' in flow mapping")
			}
		}
		return v, len(text0) - len(rest), nil
	case strings.HasPrefix(text, "\""):
		end := -1
		for i := 1; i < len(text); i++ {
			if text[i] == '\\' {
				i++
				continue
			}
			if text[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, 0, errf(src, line, "", "unterminated string")
		}
		s, err := strconv.Unquote(text[:end+1])
		if err != nil {
			return nil, 0, errf(src, line, "", "bad string %s: %v", text[:end+1], err)
		}
		return &value{kind: kStr, line: line, str: s, raw: text[:end+1]}, end + 1, nil
	case strings.HasPrefix(text, "'"):
		end := strings.IndexByte(text[1:], '\'')
		if end < 0 {
			return nil, 0, errf(src, line, "", "unterminated string")
		}
		return &value{kind: kStr, line: line, str: text[1 : end+1], raw: text[:end+2]}, end + 2, nil
	}
	// Bare scalar: up to a flow delimiter.
	end := len(text)
	for i := 0; i < len(text); i++ {
		if c := text[i]; c == ',' || c == ']' || c == '}' {
			end = i
			break
		}
	}
	tok := strings.TrimSpace(text[:end])
	if tok == "" {
		return nil, 0, errf(src, line, "", "empty value")
	}
	return scalarFromToken(tok, line), end, nil
}

// scalarFromToken interprets a bare scalar token.
func scalarFromToken(tok string, line int) *value {
	switch tok {
	case "null", "~":
		return &value{kind: kNull, line: line, raw: tok}
	case "true":
		return &value{kind: kBool, line: line, b: true, raw: tok}
	case "false":
		return &value{kind: kBool, line: line, b: false, raw: tok}
	}
	if f, ok := parseNumber(tok); ok {
		return &value{kind: kNum, line: line, num: f, raw: tok}
	}
	return &value{kind: kStr, line: line, str: tok, raw: tok}
}

// parseNumber parses a decimal number, allowing '_' separators between
// digits (120_000_000) as in Go literals.
func parseNumber(tok string) (float64, bool) {
	clean := tok
	if strings.ContainsRune(tok, '_') {
		var b strings.Builder
		for i := 0; i < len(tok); i++ {
			if tok[i] == '_' {
				if i == 0 || i == len(tok)-1 || !isDigit(tok[i-1]) || !isDigit(tok[i+1]) {
					return 0, false
				}
				continue
			}
			b.WriteByte(tok[i])
		}
		clean = b.String()
	}
	f, err := strconv.ParseFloat(clean, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
