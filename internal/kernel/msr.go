package kernel

import (
	"exist/internal/cpu"
	"exist/internal/ipt"
	"exist/internal/simtime"
)

// MSRBus performs the model-specific-register control operations on PT
// tracers and accounts their cost. Every operation returns the kernel time
// it consumed on the executing core — the caller (a tracing scheme's
// sched_switch hook or control path) charges that time to the core, which
// is precisely how control-operation overhead reaches the workload.
//
// The bus also counts operations, because the paper's central claim is a
// reduction in operation *count*: from O(#context switches) under
// conventional control to O(#cores) under EXIST's OTC.
type MSRBus struct {
	// Cost provides the per-operation prices.
	Cost cpu.Model
	// Ops counts every MSR write issued.
	Ops int64
	// Errors counts faulted operations (attempts to reconfigure an
	// enabled tracer); a nonzero count in a run indicates a scheme bug.
	Errors int64
}

// NewMSRBus returns a bus using the given cost model.
func NewMSRBus(cost cpu.Model) *MSRBus { return &MSRBus{Cost: cost} }

// write performs one WRMSR-equivalent and returns its cost.
func (b *MSRBus) write(err error) (simtime.Duration, error) {
	b.Ops++
	if err != nil {
		b.Errors++
	}
	return b.Cost.MSRWrite, err
}

// Enable sets TraceEn with the given configuration. One MSR write.
func (b *MSRBus) Enable(now simtime.Time, tr *ipt.Tracer, ctl uint64) (simtime.Duration, error) {
	return b.write(tr.WriteCtl(now, ctl|ipt.CtlTraceEn))
}

// Disable clears TraceEn, preserving configuration bits. One MSR write.
func (b *MSRBus) Disable(now simtime.Time, tr *ipt.Tracer) (simtime.Duration, error) {
	return b.write(tr.WriteCtl(now, tr.Ctl()&^ipt.CtlTraceEn))
}

// ConfigureOutput points a disabled tracer at an output chain and sets its
// CR3 filter. Two MSR writes (OUTPUT_BASE/MASK count as one programmed
// pair here, CR3_MATCH as the other).
func (b *MSRBus) ConfigureOutput(tr *ipt.Tracer, out *ipt.ToPA, cr3 uint64) (simtime.Duration, error) {
	d1, err := b.write(tr.SetOutput(out))
	if err != nil {
		return d1, err
	}
	d2, err := b.write(tr.SetCR3Match(cr3))
	return d1 + d2, err
}

// SwapOutputHot repoints an enabled tracer in one register write — the
// §6.1 "hot switching" hardware extension that does not exist on shipping
// parts. The ablation benchmarks use it to quantify how much of the
// conventional per-thread design's cost is the disable/enable dance alone.
func (b *MSRBus) SwapOutputHot(now simtime.Time, tr *ipt.Tracer, out *ipt.ToPA) simtime.Duration {
	b.Ops++
	tr.SwapOutputHot(now, out)
	return b.Cost.MSRWrite
}

// SwapOutput repoints an *enabled* tracer to a different buffer: the
// conventional per-thread-buffer dance at every context switch. Because the
// hardware only accepts output changes with TraceEn clear, this costs a
// full disable + reprogram + enable — three MSR writes. This is the
// operation whose elimination gives EXIST its headline efficiency.
func (b *MSRBus) SwapOutput(now simtime.Time, tr *ipt.Tracer, out *ipt.ToPA, cr3 uint64) (simtime.Duration, error) {
	ctl := tr.Ctl()
	wasEnabled := tr.Enabled()
	var total simtime.Duration
	if wasEnabled {
		d, err := b.Disable(now, tr)
		total += d
		if err != nil {
			return total, err
		}
	}
	d, err := b.write(tr.SetOutput(out))
	total += d
	if err != nil {
		return total, err
	}
	d, err = b.write(tr.SetCR3Match(cr3))
	total += d
	if err != nil {
		return total, err
	}
	if wasEnabled {
		d, err = b.Enable(now+total, tr, ctl)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
