package kernel

import (
	"encoding/binary"
	"fmt"

	"exist/internal/simtime"
)

// SwitchOp is the operation field of a five-tuple switch record.
type SwitchOp uint8

const (
	// OpIn: the thread was scheduled onto the CPU.
	OpIn SwitchOp = iota
	// OpOut: the thread was scheduled off the CPU.
	OpOut
)

// String returns "in" or "out".
func (o SwitchOp) String() string {
	if o == OpIn {
		return "in"
	}
	return "out"
}

// SwitchRecord is the five-tuple [Timestamp, CPUID, ProcessID, ThreadID,
// Operation] that EXIST's kernel hooker appends at every sched_switch of a
// traced process (§3.3). Records let the decoder attribute per-core packet
// streams to threads, which PT alone cannot do for threads sharing a CR3.
type SwitchRecord struct {
	TS  simtime.Time
	CPU int32
	PID int32
	TID int32
	Op  SwitchOp
}

// RecordSize is the paper's stated per-record footprint: 24 bytes.
const RecordSize = 24

// AppendBinary appends the 24-byte wire encoding of the record.
func (r SwitchRecord) AppendBinary(dst []byte) []byte {
	var b [RecordSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(r.TS))
	binary.LittleEndian.PutUint32(b[8:], uint32(r.CPU))
	binary.LittleEndian.PutUint32(b[12:], uint32(r.PID))
	binary.LittleEndian.PutUint32(b[16:], uint32(r.TID))
	b[20] = byte(r.Op)
	return append(dst, b[:]...)
}

// DecodeSwitchRecord parses one 24-byte record.
func DecodeSwitchRecord(b []byte) (SwitchRecord, error) {
	if len(b) < RecordSize {
		return SwitchRecord{}, fmt.Errorf("kernel: switch record truncated (%d bytes)", len(b))
	}
	return SwitchRecord{
		TS:  simtime.Time(binary.LittleEndian.Uint64(b[0:])),
		CPU: int32(binary.LittleEndian.Uint32(b[8:])),
		PID: int32(binary.LittleEndian.Uint32(b[12:])),
		TID: int32(binary.LittleEndian.Uint32(b[16:])),
		Op:  SwitchOp(b[20]),
	}, nil
}

// SwitchLog accumulates five-tuple records for one tracing session.
type SwitchLog struct {
	// Records holds the records in arrival order.
	Records []SwitchRecord
}

// Add appends a record.
func (l *SwitchLog) Add(r SwitchRecord) { l.Records = append(l.Records, r) }

// Bytes returns the wire encoding of the whole log.
func (l *SwitchLog) Bytes() []byte {
	out := make([]byte, 0, len(l.Records)*RecordSize)
	for _, r := range l.Records {
		out = r.AppendBinary(out)
	}
	return out
}

// SizeBytes returns the log's memory footprint.
func (l *SwitchLog) SizeBytes() int64 { return int64(len(l.Records)) * RecordSize }

// DecodeSwitchLog parses a wire-encoded log.
func DecodeSwitchLog(b []byte) (*SwitchLog, error) {
	if len(b)%RecordSize != 0 {
		return nil, fmt.Errorf("kernel: switch log length %d not a record multiple", len(b))
	}
	l := &SwitchLog{}
	for off := 0; off < len(b); off += RecordSize {
		r, err := DecodeSwitchRecord(b[off:])
		if err != nil {
			return nil, err
		}
		l.Add(r)
	}
	return l, nil
}

// HRT is a one-shot high-resolution timer: EXIST's tracing facility arms
// one to bound the tracing period (§3.2), so a hung controller can never
// leave tracers running forever.
type HRT struct {
	ev *simtime.Event
}

// ArmHRT schedules fn at now+d on the engine and returns the timer along
// with the arming cost to charge.
func ArmHRT(eng *simtime.Engine, d simtime.Duration, armCost simtime.Duration, fn func(now simtime.Time)) (*HRT, simtime.Duration) {
	return &HRT{ev: eng.After(d, fn)}, armCost
}

// Cancel disarms the timer if still pending.
func (h *HRT) Cancel() {
	if h.ev != nil {
		h.ev.Cancel()
	}
}

// Pending reports whether the timer is still armed.
func (h *HRT) Pending() bool { return h.ev != nil && h.ev.Pending() }
