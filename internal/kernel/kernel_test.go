package kernel

import (
	"testing"
	"testing/quick"

	"exist/internal/cpu"
	"exist/internal/ipt"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

func TestDefaultSyscallTable(t *testing.T) {
	tbl := DefaultSyscallTable()
	if len(tbl) != int(NumSyscallClasses) {
		t.Fatalf("table has %d entries, want %d", len(tbl), NumSyscallClasses)
	}
	for i, s := range tbl {
		if s.Name == "" {
			t.Errorf("class %d unnamed", i)
		}
		if s.Cost <= 0 {
			t.Errorf("class %d (%s) has non-positive cost", i, s.Name)
		}
		if s.BlockProb < 0 || s.BlockProb > 1 {
			t.Errorf("class %d (%s) block prob %v", i, s.Name, s.BlockProb)
		}
		if s.BlockProb > 0 && s.BlockMean <= 0 {
			t.Errorf("class %d (%s) blocks but has no duration", i, s.Name)
		}
	}
	// The case-study syscall must block for a long time.
	if tbl[SysFileWriteSlow].BlockMean < 100*simtime.Millisecond {
		t.Error("sync-log write should block on the order of hundreds of ms")
	}
}

func TestBlockDuration(t *testing.T) {
	rng := xrand.New(1)
	s := SyscallSpec{BlockMean: 100 * simtime.Microsecond}
	var sum simtime.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := s.BlockDuration(rng)
		if d < 0 {
			t.Fatal("negative block duration")
		}
		sum += d
	}
	mean := float64(sum) / n
	if mean < 90000 || mean > 110000 {
		t.Errorf("mean block duration %vns, want ~100000ns", mean)
	}
	if (SyscallSpec{}).BlockDuration(rng) != 0 {
		t.Error("zero-mean spec should not block")
	}
}

// newConfiguredTracer returns a tracer with output+filter programmed.
func newConfiguredTracer(t *testing.T, bus *MSRBus) *ipt.Tracer {
	t.Helper()
	tr := ipt.NewTracer(0)
	if _, err := bus.ConfigureOutput(tr, ipt.NewSingleToPA(1<<16), 0x42); err != nil {
		t.Fatal(err)
	}
	tr.ContextSwitch(0, 0x42, 0x400000)
	return tr
}

func TestMSRBusEnableDisable(t *testing.T) {
	bus := NewMSRBus(cpu.Default())
	tr := newConfiguredTracer(t, bus)
	opsAfterConfig := bus.Ops

	d, err := bus.Enable(10, tr, ipt.DefaultCtl())
	if err != nil || d != bus.Cost.MSRWrite {
		t.Fatalf("Enable: d=%v err=%v", d, err)
	}
	if !tr.Enabled() {
		t.Fatal("tracer not enabled")
	}
	d, err = bus.Disable(20, tr)
	if err != nil || d != bus.Cost.MSRWrite {
		t.Fatalf("Disable: d=%v err=%v", d, err)
	}
	if tr.Enabled() {
		t.Fatal("tracer still enabled")
	}
	if bus.Ops != opsAfterConfig+2 {
		t.Fatalf("ops = %d, want %d", bus.Ops, opsAfterConfig+2)
	}
	if bus.Errors != 0 {
		t.Fatalf("unexpected MSR errors: %d", bus.Errors)
	}
}

func TestMSRBusSwapOutputCostsThreeWritesPlusConfig(t *testing.T) {
	bus := NewMSRBus(cpu.Default())
	tr := newConfiguredTracer(t, bus)
	if _, err := bus.Enable(0, tr, ipt.DefaultCtl()); err != nil {
		t.Fatal(err)
	}
	opsBefore := bus.Ops
	d, err := bus.SwapOutput(10, tr, ipt.NewSingleToPA(1<<16), 0x43)
	if err != nil {
		t.Fatal(err)
	}
	// disable + output + cr3 + enable = 4 writes; the point is it is
	// several serializing MSR operations, not one.
	writes := bus.Ops - opsBefore
	if writes != 4 {
		t.Fatalf("SwapOutput issued %d writes, want 4", writes)
	}
	if d != simtime.Duration(writes)*bus.Cost.MSRWrite {
		t.Fatalf("SwapOutput cost %v, want %v", d, simtime.Duration(writes)*bus.Cost.MSRWrite)
	}
	if !tr.Enabled() {
		t.Fatal("tracer must be re-enabled after swap")
	}
}

func TestMSRBusFaultCounting(t *testing.T) {
	bus := NewMSRBus(cpu.Default())
	tr := newConfiguredTracer(t, bus)
	if _, err := bus.Enable(0, tr, ipt.DefaultCtl()); err != nil {
		t.Fatal(err)
	}
	// Direct reconfiguration while enabled must fault and be counted.
	if _, err := bus.ConfigureOutput(tr, ipt.NewSingleToPA(8), 0x99); err == nil {
		t.Fatal("ConfigureOutput on enabled tracer must fault")
	}
	if bus.Errors == 0 {
		t.Fatal("fault not counted")
	}
}

func TestSwitchRecordRoundTrip(t *testing.T) {
	f := func(ts int64, cpuID, pid, tid int32, opBit bool) bool {
		op := OpIn
		if opBit {
			op = OpOut
		}
		r := SwitchRecord{TS: simtime.Time(ts), CPU: cpuID, PID: pid, TID: tid, Op: op}
		b := r.AppendBinary(nil)
		if len(b) != RecordSize {
			return false
		}
		got, err := DecodeSwitchRecord(b)
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchLogRoundTrip(t *testing.T) {
	l := &SwitchLog{}
	for i := 0; i < 10; i++ {
		l.Add(SwitchRecord{TS: simtime.Time(i * 100), CPU: int32(i % 4), PID: 7, TID: int32(i), Op: SwitchOp(i % 2)})
	}
	if l.SizeBytes() != 240 {
		t.Fatalf("size = %d, want 240", l.SizeBytes())
	}
	got, err := DecodeSwitchLog(l.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(l.Records) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(l.Records))
	}
	for i := range l.Records {
		if got.Records[i] != l.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDecodeSwitchLogRejectsBadLength(t *testing.T) {
	if _, err := DecodeSwitchLog(make([]byte, 25)); err == nil {
		t.Fatal("expected error for misaligned log")
	}
	if _, err := DecodeSwitchRecord(make([]byte, 5)); err == nil {
		t.Fatal("expected error for short record")
	}
}

func TestHRT(t *testing.T) {
	eng := simtime.NewEngine()
	fired := simtime.Time(-1)
	h, cost := ArmHRT(eng, 500*simtime.Microsecond, 300, func(now simtime.Time) { fired = now })
	if cost != 300 {
		t.Fatalf("arm cost = %v, want 300", cost)
	}
	if !h.Pending() {
		t.Fatal("timer should be pending")
	}
	eng.Run()
	if fired != 500*simtime.Microsecond {
		t.Fatalf("fired at %v, want 500µs", fired)
	}
	if h.Pending() {
		t.Fatal("timer should have fired")
	}
}

func TestHRTCancel(t *testing.T) {
	eng := simtime.NewEngine()
	fired := false
	h, _ := ArmHRT(eng, 100, 0, func(simtime.Time) { fired = true })
	h.Cancel()
	eng.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}
