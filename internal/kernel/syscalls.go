// Package kernel models the thin slice of the operating system that
// intra-service tracing interacts with: the syscall table (costs and
// blocking behaviour), composite MSR control operations with their charged
// costs, high-resolution timers, and the 24-byte five-tuple context-switch
// records EXIST's kernel hooker emits at the sched_switch tracepoint.
package kernel

import (
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// SyscallClass indexes the syscall table. Workload binaries tag their
// syscall sites with a class (binary.Block.SyscallClass); the scheduler
// looks the class up here to charge kernel time and decide blocking.
type SyscallClass = uint8

// The syscall classes the workload models use.
const (
	SysRead SyscallClass = iota
	SysWrite
	SysNetSend
	SysNetRecv
	SysFutex
	SysPoll
	SysNanosleep
	SysSchedYield
	SysFileWriteSlow // pathological synchronous write blocked on disk (the §5.4 case study)
	NumSyscallClasses
)

// SyscallSpec describes one syscall class.
type SyscallSpec struct {
	// Name is the syscall mnemonic used in decoded reports.
	Name string
	// Cost is the in-kernel service time charged to the core.
	Cost simtime.Duration
	// BlockProb is the probability the caller blocks (I/O wait) instead
	// of returning immediately.
	BlockProb float64
	// BlockMean is the mean block duration when the caller blocks.
	BlockMean simtime.Duration
}

// BlockDuration draws a block duration for one invocation (exponential
// around the mean).
func (s SyscallSpec) BlockDuration(rng *xrand.Rand) simtime.Duration {
	if s.BlockMean <= 0 {
		return 0
	}
	return simtime.Duration(rng.Exp(float64(s.BlockMean)))
}

// DefaultSyscallTable returns the standard class table. Values follow the
// usual Linux magnitudes: fast path syscalls run in a few hundred
// nanoseconds to a couple of microseconds of kernel time; network receive
// and poll block while waiting for traffic; futex blocks under contention.
func DefaultSyscallTable() []SyscallSpec {
	t := make([]SyscallSpec, NumSyscallClasses)
	t[SysRead] = SyscallSpec{Name: "read", Cost: 1200 * simtime.Nanosecond, BlockProb: 0.15, BlockMean: 60 * simtime.Microsecond}
	t[SysWrite] = SyscallSpec{Name: "write", Cost: 1400 * simtime.Nanosecond, BlockProb: 0.05, BlockMean: 80 * simtime.Microsecond}
	t[SysNetSend] = SyscallSpec{Name: "sendto", Cost: 2500 * simtime.Nanosecond, BlockProb: 0.02, BlockMean: 50 * simtime.Microsecond}
	t[SysNetRecv] = SyscallSpec{Name: "recvfrom", Cost: 2200 * simtime.Nanosecond, BlockProb: 0.5, BlockMean: 150 * simtime.Microsecond}
	t[SysFutex] = SyscallSpec{Name: "futex", Cost: 900 * simtime.Nanosecond, BlockProb: 0.35, BlockMean: 40 * simtime.Microsecond}
	t[SysPoll] = SyscallSpec{Name: "epoll_wait", Cost: 1800 * simtime.Nanosecond, BlockProb: 0.6, BlockMean: 200 * simtime.Microsecond}
	t[SysNanosleep] = SyscallSpec{Name: "nanosleep", Cost: 800 * simtime.Nanosecond, BlockProb: 1.0, BlockMean: 2 * simtime.Millisecond}
	t[SysSchedYield] = SyscallSpec{Name: "sched_yield", Cost: 600 * simtime.Nanosecond}
	t[SysFileWriteSlow] = SyscallSpec{Name: "write(sync-log)", Cost: 2 * simtime.Microsecond, BlockProb: 0.9, BlockMean: 900 * simtime.Millisecond}
	return t
}
