// Package xrand provides the deterministic random-number utilities used by
// every simulated substrate: splittable seeded streams and the handful of
// distributions the workload and service models need.
//
// Determinism contract: a Rand constructed with the same seed always yields
// the same sequence, and Split derives independent child streams from a
// parent seed and a label, so adding a new consumer of randomness in one
// module never perturbs the draws seen by another.
package xrand

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random stream. It wraps the stdlib PCG generator
// with the distribution helpers the simulators need. The underlying PCG is
// kept alongside the *rand.Rand so a stream can be reseeded in place (see
// Reseed): neither rand.Rand nor the distribution methods used here carry
// state beyond the source, so reseeding the PCG fully resets the stream.
type Rand struct {
	src *rand.Rand
	pcg *rand.PCG
}

// New returns a stream seeded with seed.
func New(seed uint64) *Rand {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Rand{src: rand.New(pcg), pcg: pcg}
}

// Reseed resets the stream in place to the exact state New(seed) would
// produce, without allocating. Hot paths that cycle one pooled Rand through
// many per-entity streams (one request after another) use this instead of
// constructing a fresh Rand per entity.
func (r *Rand) Reseed(seed uint64) {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// fnv-64a parameters, matching hash/fnv.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 folds the eight little-endian bytes of v into an fnv-64a hash.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// fnvString folds a string into an fnv-64a hash.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// splitSeed is the derivation behind Split: fnv-64a over the parent seed's
// little-endian bytes followed by the label.
func splitSeed(seed uint64, label string) uint64 {
	return fnvString(fnvUint64(fnvOffset64, seed), label)
}

// splitSeedN is the derivation behind SplitN: splitSeed extended with the
// index's little-endian bytes.
func splitSeedN(seed uint64, label string, n int) uint64 {
	return fnvUint64(splitSeed(seed, label), uint64(n))
}

// Split derives an independent child stream from seed and a label. Streams
// derived with different labels are statistically independent, and the
// derivation is stable across runs.
func Split(seed uint64, label string) *Rand {
	return New(splitSeed(seed, label))
}

// SplitN derives an independent child stream from seed, a label, and an
// index, for per-entity streams (per core, per thread, per node, ...).
func SplitN(seed uint64, label string, n int) *Rand {
	return New(splitSeedN(seed, label, n))
}

// ReseedSplitN resets the stream in place to the exact state
// SplitN(seed, label, n) would produce, without allocating.
func (r *Rand) ReseedSplitN(seed uint64, label string, n int) {
	r.Reseed(splitSeedN(seed, label, n))
}

// SplitHash is an incrementally built Split label hash. It lets a caller
// that would otherwise concatenate strings into a Split label ("a/"+b+
// "#"+strconv.Itoa(n)) hash the pieces in place instead: appending the
// same bytes piecewise yields the same derived seed as hashing the
// concatenated label, so BeginSplit(...).String(...).Int(...) is the
// allocation-free twin of Split(seed, label).
type SplitHash uint64

// BeginSplit starts a label hash over the parent seed, equivalent to
// Split's derivation before any label bytes.
func BeginSplit(seed uint64) SplitHash {
	return SplitHash(fnvUint64(fnvOffset64, seed))
}

// String folds label bytes into the hash.
func (h SplitHash) String(s string) SplitHash {
	return SplitHash(fnvString(uint64(h), s))
}

// Int folds the decimal representation of n into the hash — the same
// bytes fmt.Sprintf("%d", n) would contribute to a concatenated label.
func (h SplitHash) Int(n int64) SplitHash {
	var buf [20]byte
	i := len(buf)
	u := uint64(n)
	neg := n < 0
	if neg {
		u = uint64(-n)
	}
	for {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	g := uint64(h)
	for ; i < len(buf); i++ {
		g ^= uint64(buf[i])
		g *= fnvPrime64
	}
	return SplitHash(g)
}

// ReseedSplit resets the stream in place to the state Split would produce
// for the label accumulated in h.
func (r *Rand) ReseedSplit(h SplitHash) {
	r.Reseed(uint64(h))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64N(n int64) int64 { return r.src.Int64N(n) }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value parameterized by the
// mean and coefficient of variation (stddev/mean) of the *resulting*
// distribution. Log-normal service times are the standard model for
// request processing in datacenter services.
func (r *Rand) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.src.NormFloat64()*math.Sqrt(sigma2) + mu)
}

// LogNormalParams converts a (mean, cv) log-normal parameterization to the
// underlying (mu, sigma), producing bit-identical draws when the result is
// fed to LogNormalMS: the two functions together are the precomputed form
// of LogNormal for hot paths that draw from a fixed distribution many
// times. mean must be positive.
func LogNormalParams(mean, cv float64) (mu, sigma float64) {
	sigma2 := math.Log(1 + cv*cv)
	return math.Log(mean) - sigma2/2, math.Sqrt(sigma2)
}

// LogNormalMS returns a log-normally distributed value from precomputed
// (mu, sigma); see LogNormalParams.
func (r *Rand) LogNormalMS(mu, sigma float64) float64 {
	return math.Exp(r.src.NormFloat64()*sigma + mu)
}

// Pareto returns a bounded Pareto-distributed value with minimum xm and
// shape alpha. Heavy-tailed distributions model the occasional very long
// request or context-switch period.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Gamma returns a gamma-distributed value with the given shape k and
// scale theta (mean k·theta), via Marsaglia-Tsang squeeze rejection.
// Gamma inter-arrival times with k < 1 model bursty request streams
// (CV = 1/sqrt(k) > 1); k > 1 models smoothed streams.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: G(k) = G(k+1) · U^(1/k).
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull-distributed value with the given shape k and
// scale lambda, by inverse transform. Shape < 1 gives heavy-tailed
// inter-arrival gaps (clustered arrivals); shape > 1 regularizes them.
func (r *Rand) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// WeightedPick returns an index into weights chosen with probability
// proportional to the weight. It panics if weights is empty or sums to a
// non-positive value.
func (r *Rand) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedPick with non-positive total weight")
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Jitter returns v multiplied by a uniform factor in [1-amp, 1+amp].
func (r *Rand) Jitter(v, amp float64) float64 {
	return v * (1 + amp*(2*r.src.Float64()-1))
}
