// Package xrand provides the deterministic random-number utilities used by
// every simulated substrate: splittable seeded streams and the handful of
// distributions the workload and service models need.
//
// Determinism contract: a Rand constructed with the same seed always yields
// the same sequence, and Split derives independent child streams from a
// parent seed and a label, so adding a new consumer of randomness in one
// module never perturbs the draws seen by another.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random stream. It wraps the stdlib PCG generator
// with the distribution helpers the simulators need.
type Rand struct {
	src *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream from seed and a label. Streams
// derived with different labels are statistically independent, and the
// derivation is stable across runs.
func Split(seed uint64, label string) *Rand {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// SplitN derives an independent child stream from seed, a label, and an
// index, for per-entity streams (per core, per thread, per node, ...).
func SplitN(seed uint64, label string, n int) *Rand {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (8 * i))
	}
	h.Write(b[:])
	return New(h.Sum64())
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64N(n int64) int64 { return r.src.Int64N(n) }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value parameterized by the
// mean and coefficient of variation (stddev/mean) of the *resulting*
// distribution. Log-normal service times are the standard model for
// request processing in datacenter services.
func (r *Rand) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.src.NormFloat64()*math.Sqrt(sigma2) + mu)
}

// Pareto returns a bounded Pareto-distributed value with minimum xm and
// shape alpha. Heavy-tailed distributions model the occasional very long
// request or context-switch period.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// WeightedPick returns an index into weights chosen with probability
// proportional to the weight. It panics if weights is empty or sums to a
// non-positive value.
func (r *Rand) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedPick with non-positive total weight")
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Jitter returns v multiplied by a uniform factor in [1-amp, 1+amp].
func (r *Rand) Jitter(v, amp float64) float64 {
	return v * (1 + amp*(2*r.src.Float64()-1))
}
