package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, "sched")
	b := Split(7, "workload")
	c := Split(7, "sched")
	if a.Uint64() == b.Uint64() {
		t.Error("streams with different labels should differ")
	}
	a2 := Split(7, "sched")
	_ = c
	first := a2.Uint64()
	want := Split(7, "sched").Uint64()
	if first != want {
		t.Error("Split is not stable for identical (seed, label)")
	}
}

func TestSplitN(t *testing.T) {
	a := SplitN(7, "core", 0)
	b := SplitN(7, "core", 1)
	if a.Uint64() == b.Uint64() {
		t.Error("SplitN with different indices should differ")
	}
	x := SplitN(7, "core", 3).Uint64()
	y := SplitN(7, "core", 3).Uint64()
	if x != y {
		t.Error("SplitN is not stable")
	}
}

func TestExpMean(t *testing.T) {
	r := New(1)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Errorf("Exp mean = %v, want ~5.0", mean)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(2)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.LogNormal(10, 0.5)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	cv := math.Sqrt(variance) / mean
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("LogNormal mean = %v, want ~10", mean)
	}
	if math.Abs(cv-0.5) > 0.05 {
		t.Errorf("LogNormal cv = %v, want ~0.5", cv)
	}
}

func TestLogNormalZeroMean(t *testing.T) {
	r := New(3)
	if v := r.LogNormal(0, 0.5); v != 0 {
		t.Errorf("LogNormal(0, _) = %v, want 0", v)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	r := New(5)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedPick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedPick(nil) should panic")
		}
	}()
	New(1).WeightedPick(nil)
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %v", p)
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Jitter(10, 0.2)
			if v < 8 || v > 12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(7)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntNRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		if v := r.Int64N(7); v < 0 || v >= 7 {
			t.Fatalf("Int64N out of range: %d", v)
		}
	}
}

func TestNorm(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Norm(3, 1)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("Norm mean = %v, want ~3", mean)
	}
}
