package xrand

import (
	"math"
	"testing"
)

// TestGammaMoments checks Marsaglia-Tsang sampling hits the Gamma mean
// (shape*scale) and variance (shape*scale^2), including the shape<1
// boost path.
func TestGammaMoments(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{
		{0.25, 2}, {1, 5}, {4, 0.5}, {16, 1},
	} {
		r := New(7)
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Gamma(%g, %g) = %g < 0", c.shape, c.scale, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("Gamma(%g, %g) mean = %g, want ~%g", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("Gamma(%g, %g) var = %g, want ~%g", c.shape, c.scale, variance, wantVar)
		}
	}
}

// TestWeibullMoments checks inverse-transform sampling hits the Weibull
// mean scale*Gamma(1+1/k).
func TestWeibullMoments(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 3}, {2, 2},
	} {
		r := New(9)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Weibull(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Weibull(%g, %g) = %g < 0", c.shape, c.scale, x)
			}
			sum += x
		}
		mean := sum / n
		wantMean := c.scale * math.Gamma(1+1/c.shape)
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("Weibull(%g, %g) mean = %g, want ~%g", c.shape, c.scale, mean, wantMean)
		}
	}
}

// TestGammaWeibullDeterministic: same seed, same stream.
func TestGammaWeibullDeterministic(t *testing.T) {
	a, b := New(11), New(11)
	for i := 0; i < 1000; i++ {
		if a.Gamma(2, 3) != b.Gamma(2, 3) {
			t.Fatalf("Gamma diverged at draw %d", i)
		}
	}
	a, b = New(12), New(12)
	for i := 0; i < 1000; i++ {
		if a.Weibull(2, 3) != b.Weibull(2, 3) {
			t.Fatalf("Weibull diverged at draw %d", i)
		}
	}
}

// TestGammaWeibullDegenerate: non-positive parameters return 0 rather
// than NaN, so a zero-valued config cannot poison downstream arithmetic.
func TestGammaWeibullDegenerate(t *testing.T) {
	r := New(1)
	if g := r.Gamma(0, 1); g != 0 {
		t.Errorf("Gamma(0, 1) = %g, want 0", g)
	}
	if g := r.Gamma(1, -1); g != 0 {
		t.Errorf("Gamma(1, -1) = %g, want 0", g)
	}
	if w := r.Weibull(0, 1); w != 0 {
		t.Errorf("Weibull(0, 1) = %g, want 0", w)
	}
	if w := r.Weibull(1, 0); w != 0 {
		t.Errorf("Weibull(1, 0) = %g, want 0", w)
	}
}
