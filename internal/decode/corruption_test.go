package decode

import (
	"testing"

	"exist/internal/faults"
	"exist/internal/metrics"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// corrupted returns a deep copy of sess with each core buffer passed
// through mutate.
func corrupted(sess *trace.Session, mutate func(core int, data []byte) []byte) *trace.Session {
	mut := *sess
	mut.Cores = make([]trace.CoreTrace, len(sess.Cores))
	for i, c := range sess.Cores {
		data := append([]byte(nil), c.Data...)
		c.Data = mutate(int(c.Core), data)
		mut.Cores[i] = c
	}
	return &mut
}

// TestAccuracyDegradesMonotonicallyWithBitFlips is the corruption table:
// increasing seeded bit-flip counts must never panic, keep Errors and
// Resyncs bounded, and lose accuracy smoothly — more corruption, less
// accuracy, no cliff to zero while sync points survive. Accuracy here is
// the function-histogram weight match, the paper's reconstruction metric.
func TestAccuracyDegradesMonotonicallyWithBitFlips(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 3, 400*simtime.Millisecond)
	flipCounts := []int{0, 2, 8, 32, 128, 512}
	accs := make([]float64, len(flipCounts))
	for i, n := range flipCounts {
		flips := n
		mut := corrupted(sess, func(core int, data []byte) []byte {
			faults.FlipBits(data, flips, uint64(31+core))
			return data
		})
		res := Decode(mut, prog) // must not panic
		if res.Resyncs > int64(maxResyncs*len(sess.Cores)) {
			t.Fatalf("flips=%d: resyncs %d over cap", n, res.Resyncs)
		}
		// The resync cap bounds the error list even for heavily corrupted
		// streams: at most one error per recovery plus the final one.
		if len(res.Errors) > (maxResyncs+1)*len(sess.Cores) {
			t.Fatalf("flips=%d: %d errors unbounded", n, len(res.Errors))
		}
		if n > 0 && res.Resyncs == 0 && len(res.Errors) == 0 {
			t.Fatalf("flips=%d corrupted nothing; test is vacuous", n)
		}
		accs[i] = metrics.WeightMatch(gt.FuncEntries, res.FuncEntries)
	}
	if accs[0] < 0.999 {
		t.Fatalf("uncorrupted weight match = %.4f", accs[0])
	}
	for i := 1; i < len(accs); i++ {
		// Monotone within a small tolerance: a flip landing in dead bytes
		// can leave one step flat, but accuracy must never rise materially
		// with more corruption.
		if accs[i] > accs[i-1]+0.02 {
			t.Fatalf("accuracy rose with corruption: %v (flips %v)", accs, flipCounts)
		}
	}
	last := accs[len(accs)-1]
	if last >= accs[0] {
		t.Fatalf("heavy corruption did not degrade accuracy: %v", accs)
	}
	// Graceful, not catastrophic: with PSBs every 4 KB and TIP.PGE
	// re-anchors at context switches, the decoder still recovers a usable
	// fraction at the heaviest tested corruption.
	if last <= 0.3 {
		t.Fatalf("accuracy collapsed to %.4f despite resync: %v", last, accs)
	}
}

// TestAccuracyDegradesMonotonicallyWithTruncation chops growing tail
// fractions off every core buffer.
func TestAccuracyDegradesMonotonicallyWithTruncation(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 3, 400*simtime.Millisecond)
	fracs := []float64{0, 0.3, 0.6, 0.95}
	accs := make([]float64, len(fracs))
	for i, f := range fracs {
		frac := f
		mut := corrupted(sess, func(core int, data []byte) []byte {
			return faults.Truncate(data, frac)
		})
		res := Decode(mut, prog) // must not panic
		// A chopped tail yields at most one truncated-packet error per
		// core, possibly none when the cut lands on a packet boundary.
		if len(res.Errors) > len(sess.Cores) {
			t.Fatalf("frac=%.2f: errors = %v", f, res.Errors)
		}
		accs[i] = metrics.WeightMatch(gt.FuncEntries, res.FuncEntries)
	}
	for i := 1; i < len(accs); i++ {
		if accs[i] > accs[i-1]+0.02 {
			t.Fatalf("accuracy rose with truncation: %v (fracs %v)", accs, fracs)
		}
	}
	if accs[len(accs)-1] >= accs[0] {
		t.Fatalf("truncation did not degrade accuracy: %v", accs)
	}
}

// TestResyncRecoversStreamTail pins the satellite behaviour change: a
// mid-stream desync no longer discards the rest of the buffer. Decoding a
// corrupted stream must recover strictly more than decoding the stream
// cut at the corruption point (the old break-on-error behaviour).
func TestResyncRecoversStreamTail(t *testing.T) {
	sess, _, prog := pipeline(t, 1<<22, 3, 400*simtime.Millisecond)
	data := sess.Cores[0].Data
	if len(data) < 1<<14 {
		t.Skip("stream too short to test recovery")
	}
	recovered := false
	// Try a few early corruption points; seeded, so the pass is stable.
	for _, frac := range []float64{0.10, 0.15, 0.20, 0.25} {
		pos := int(float64(len(data)) * frac)
		mut := append([]byte(nil), data...)
		faults.FlipBits(mut[pos:pos+64], 16, uint64(pos))
		full := DecodeStream(prog, &sess.Switches, 0, mut)
		if full.Resyncs == 0 {
			continue // flips landed without a parse error; try another spot
		}
		cut := DecodeStream(prog, &sess.Switches, 0, mut[:pos])
		if full.Events <= cut.Events {
			t.Fatalf("resync at %.0f%% recovered nothing: full %d events, cut %d",
				frac*100, full.Events, cut.Events)
		}
		recovered = true
	}
	if !recovered {
		t.Fatal("no corruption point produced a resync; test is vacuous")
	}
}

// TestResyncCapBoundsErrorsOnGarbage floods the decoder with dense
// corruption and checks the recovery loop terminates under its cap.
func TestResyncCapBoundsErrorsOnGarbage(t *testing.T) {
	sess, _, prog := pipeline(t, 1<<22, 3, 400*simtime.Millisecond)
	data := append([]byte(nil), sess.Cores[0].Data...)
	// Heavy corruption: one flip every ~32 bytes.
	faults.FlipBits(data, len(data)/32, 1234)
	res := DecodeStream(prog, &sess.Switches, 0, data)
	if res.Resyncs > maxResyncs {
		t.Fatalf("resyncs = %d over cap %d", res.Resyncs, maxResyncs)
	}
	if len(res.Errors) > maxResyncs+1 {
		t.Fatalf("errors = %d unbounded", len(res.Errors))
	}
}
