package decode

import (
	"reflect"
	"testing"

	"exist/internal/hotbench"
)

// TestDecodeParallelMatchesSerial pins the determinism contract: decoded
// output is byte-for-byte independent of the worker count.
func TestDecodeParallelMatchesSerial(t *testing.T) {
	prog := hotbench.Program(1)
	s := hotbench.Session(prog, 1, 2_000_000)
	if len(s.Cores) < 1 {
		t.Fatal("fixture has no cores")
	}
	want := Decode(s, prog)
	for _, jobs := range []int{1, 2, 4, 8} {
		got := DecodeParallel(s, prog, jobs)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("jobs=%d diverged from serial decode", jobs)
		}
	}
}

// TestDecodeParallelMultiCore exercises the concurrent path with several
// cores carrying distinct streams.
func TestDecodeParallelMultiCore(t *testing.T) {
	prog := hotbench.Program(2)
	base := hotbench.Session(prog, 2, 1_000_000)
	s := *base
	// Duplicate the stream across synthetic cores so more than one worker
	// has real work.
	for core := 1; core < 4; core++ {
		ct := base.Cores[0]
		ct.Core = core
		s.Cores = append(s.Cores, ct)
	}
	want := Decode(&s, prog)
	got := DecodeParallel(&s, prog, 4)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("multi-core parallel decode diverged from serial")
	}
}
