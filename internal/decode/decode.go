// Package decode reconstructs execution flow from PT packet streams — the
// role libipt plays in the paper's pipeline. Given a session's per-core
// packet buffers, the five-tuple context-switch sidecar, and the traced
// program binary, it replays the control-flow graph: silent edges
// (fall-throughs, direct jumps, direct calls) are followed statically,
// conditional branches consume TNT bits, and indirect transfers and
// returns consume TIP payloads. The result is a per-thread branch stream
// directly comparable to the ground truth, plus the aggregate profiles
// (function categories, memory-access mix) the paper's case study reports.
package decode

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"exist/internal/binary"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// Result is a reconstruction of one or more packet streams.
type Result struct {
	// ByThread holds each thread's reconstructed event stream, in order.
	ByThread map[int32][]trace.Event
	// FuncEntries is the function occurrence histogram (indirect-call
	// entries, matching trace.GroundTruth's counting rule).
	FuncEntries map[int32]int64
	// CatHits counts every decoded block (including silently-walked ones)
	// by function category — the Figure 21 profile.
	CatHits [binary.NumCategories]int64
	// MemOps accumulates decoded blocks' memory-access counts — the
	// Figure 22 profile.
	MemOps [binary.NumMemClasses][4]int64
	// Blocks is the total number of blocks visited.
	Blocks int64
	// Events is the total number of reconstructed branch events.
	Events int64
	// BytesDecoded counts packet bytes consumed.
	BytesDecoded int64
	// PTWrites holds decoded PTWRITE operands in stream order with their
	// attributed threads (the §6.1 data-flow extension).
	PTWrites []PTWrite
	// Errors lists decode problems (truncation at a stopped buffer is
	// normal; anything else indicates desync).
	Errors []string
	// Resyncs counts mid-stream recoveries: after a desync the decoder
	// scans forward to the next PSB and resumes instead of discarding the
	// rest of the buffer.
	Resyncs int64
}

// PTWrite is one decoded PTWRITE operand.
type PTWrite struct {
	TID int32
	Val uint64
}

// newResult returns an empty result.
func newResult() *Result {
	return &Result{
		ByThread:    make(map[int32][]trace.Event),
		FuncEntries: make(map[int32]int64),
	}
}

// Merge folds other into r (used by the cluster-level trace augmentation).
func (r *Result) Merge(other *Result) {
	for tid, evs := range other.ByThread {
		r.ByThread[tid] = append(r.ByThread[tid], evs...)
	}
	for fn, n := range other.FuncEntries {
		r.FuncEntries[fn] += n
	}
	for i := range r.CatHits {
		r.CatHits[i] += other.CatHits[i]
	}
	for c := range r.MemOps {
		for w := range r.MemOps[c] {
			r.MemOps[c][w] += other.MemOps[c][w]
		}
	}
	r.PTWrites = append(r.PTWrites, other.PTWrites...)
	r.Blocks += other.Blocks
	r.Events += other.Events
	r.BytesDecoded += other.BytesDecoded
	r.Errors = append(r.Errors, other.Errors...)
	r.Resyncs += other.Resyncs
}

// sidecarIndex resolves schedule-in records per core for thread
// attribution.
type sidecarIndex struct {
	byCore map[int32][]kernel.SwitchRecord
}

func buildSidecar(log *kernel.SwitchLog) *sidecarIndex {
	// Size each per-core slice exactly before filling: schedule-in records
	// dominate the sidecar, and append-regrowth on them shows up in decode
	// allocation profiles.
	counts := make(map[int32]int)
	for i := range log.Records {
		if log.Records[i].Op == kernel.OpIn {
			counts[log.Records[i].CPU]++
		}
	}
	idx := &sidecarIndex{byCore: make(map[int32][]kernel.SwitchRecord, len(counts))}
	for cpu, n := range counts {
		idx.byCore[cpu] = make([]kernel.SwitchRecord, 0, n)
	}
	for i := range log.Records {
		if r := log.Records[i]; r.Op == kernel.OpIn {
			idx.byCore[r.CPU] = append(idx.byCore[r.CPU], r)
		}
	}
	for cpu := range idx.byCore {
		slices.SortFunc(idx.byCore[cpu], func(a, b kernel.SwitchRecord) int {
			return cmp.Compare(a.TS, b.TS)
		})
	}
	return idx
}

// tidAt returns the thread scheduled in on cpu at or before ts.
func (idx *sidecarIndex) tidAt(cpu int, ts simtime.Time) (int32, bool) {
	rs := idx.byCore[int32(cpu)]
	i := sort.Search(len(rs), func(i int) bool { return rs[i].TS > ts })
	if i == 0 {
		return 0, false
	}
	return rs[i-1].TID, true
}

// Decode reconstructs a whole session against its program binary. A
// thread's execution is spread over per-core streams as it migrates; the
// decoder re-serializes each thread's segments by their timestamps so the
// per-thread event order matches execution order.
func Decode(s *trace.Session, prog *binary.Program) *Result {
	res := newResult()
	idx := buildSidecar(&s.Switches)
	visits := make([]int64, len(prog.Blocks))
	var segs []*segment
	for i := range s.Cores {
		segs = append(segs, decodeStream(res, prog, idx, visits, s.Cores[i].Core, s.Cores[i].Data, s.Cores[i].Wrapped)...)
	}
	flushVisits(res, prog, visits)
	slices.SortStableFunc(segs, func(a, b *segment) int { return cmp.Compare(a.ts, b.ts) })
	gatherByThread(res, segs)
	return res
}

// DecodeStream reconstructs a single core's packet buffer (exported for
// tests and tools).
func DecodeStream(prog *binary.Program, log *kernel.SwitchLog, core int, data []byte) *Result {
	res := newResult()
	if log == nil {
		log = &kernel.SwitchLog{}
	}
	idx := buildSidecar(log)
	visits := make([]int64, len(prog.Blocks))
	segs := decodeStream(res, prog, idx, visits, core, data, false)
	flushVisits(res, prog, visits)
	gatherByThread(res, segs)
	return res
}

// gatherByThread concatenates segment event ranges into exactly-sized
// per-thread streams.
func gatherByThread(res *Result, segs []*segment) {
	counts := make(map[int32]int)
	for _, sg := range segs {
		counts[sg.tid] += len(sg.events)
	}
	for tid, n := range counts {
		res.ByThread[tid] = make([]trace.Event, 0, n)
	}
	for _, sg := range segs {
		res.ByThread[sg.tid] = append(res.ByThread[sg.tid], sg.events...)
	}
}

// flushVisits folds the per-block visit counts into the aggregate
// profiles. Deferring this from the per-visit fast path to one pass per
// decode turns 17 additions per visited block into 17 per *distinct*
// block.
func flushVisits(res *Result, prog *binary.Program, visits []int64) {
	for id, n := range visits {
		if n == 0 {
			continue
		}
		b := &prog.Blocks[id]
		res.Blocks += n
		res.CatHits[prog.Funcs[b.Func].Category] += n
		for c := 0; c < binary.NumMemClasses; c++ {
			for w := 0; w < 4; w++ {
				res.MemOps[c][w] += n * int64(b.MemOps[c][w])
			}
		}
	}
}

// segment is one contiguous traced span on one core, attributed to a
// thread and anchored at its TIP.PGE timestamp. Its events are a subrange
// of the stream's shared event arena, materialized once the stream is
// fully decoded (per-segment slices were a top allocation site).
type segment struct {
	tid    int32
	ts     simtime.Time
	start  int
	events []trace.Event
}

// silentWalkCap bounds CFG walking between packets; the generator
// guarantees silent edges make forward progress, so this only trips on a
// corrupt stream.
const silentWalkCap = 1 << 20

// maxResyncs bounds PSB recoveries per core stream so a thoroughly
// corrupt buffer cannot bloat the error list.
const maxResyncs = 64

// decoder holds per-stream state.
type decoder struct {
	res     *Result
	prog    *binary.Program
	idx     *sidecarIndex
	visits  []int64
	core    int
	tracing bool
	cur     binary.BlockID
	curOK   bool
	tid     int32
	lastTSC simtime.Time
	seg     *segment
	segs    []*segment
	// events is the stream's shared event arena; segments hold index
	// ranges into it and are materialized as subslices once decoding ends
	// (the arena may reallocate while growing).
	events []trace.Event
}

func decodeStream(res *Result, prog *binary.Program, idx *sidecarIndex, visits []int64, core int, data []byte, wrapped bool) []*segment {
	d := &decoder{res: res, prog: prog, idx: idx, visits: visits, core: core, tid: -1,
		events: make([]trace.Event, 0, 1+len(data)/4)}
	p := ipt.NewParser(data)
	if wrapped {
		// Ring-buffer output starts mid-stream: resynchronize at a PSB.
		if !p.Sync() {
			res.Errors = append(res.Errors, fmt.Sprintf("core %d: wrapped stream has no PSB", core))
			return nil
		}
	}
	resyncs := 0
	for {
		pkt, ok, err := p.Next()
		if err != nil {
			// A truncated trailing packet is the normal signature of a
			// compulsory-drop stop; anything mid-stream is a desync.
			res.Errors = append(res.Errors, fmt.Sprintf("core %d: %v", core, err))
			// Graceful recovery: scan forward to the next PSB and resume
			// instead of discarding the rest of the buffer. The error
			// position itself can never parse as a full PSB, so Sync always
			// makes progress; the cap keeps Errors bounded on garbage.
			if resyncs >= maxResyncs || !p.Sync() {
				break
			}
			resyncs++
			res.Resyncs++
			d.desync()
			continue
		}
		if !ok {
			break
		}
		d.packet(pkt)
	}
	res.BytesDecoded += int64(p.Pos())
	// Materialize segment event ranges against the final arena.
	for i, sg := range d.segs {
		end := len(d.events)
		if i+1 < len(d.segs) {
			end = d.segs[i+1].start
		}
		sg.events = d.events[sg.start:end]
	}
	return d.segs
}

// desync resets stream-dependent state after a recovery scan: position
// and enablement are unknown until the next TIP.PGE re-anchors them, so
// the decoder conservatively drops out of tracing rather than emitting
// events from a misaligned stream.
func (d *decoder) desync() {
	d.tracing = false
	d.curOK = false
	d.seg = nil
}

// packet advances the decoder by one packet.
func (d *decoder) packet(pkt ipt.Packet) {
	switch pkt.Kind {
	case ipt.PktTSC:
		d.lastTSC = simtime.Time(pkt.Val)
	case ipt.PktTIPPGE:
		d.tracing = true
		id, ok := d.prog.BlockAt(pkt.Val)
		d.cur, d.curOK = id, ok
		if !ok {
			d.err("TIP.PGE at unknown address %#x", pkt.Val)
		}
		if tid, ok := d.idx.tidAt(d.core, d.lastTSC); ok {
			d.tid = tid
		} else {
			d.tid = -1
		}
		d.seg = &segment{tid: d.tid, ts: d.lastTSC, start: len(d.events)}
		d.segs = append(d.segs, d.seg)
	case ipt.PktTIPPGD:
		d.tracing = false
		d.curOK = false
	case ipt.PktTNT:
		if !d.tracing || !d.curOK {
			return
		}
		for i := 0; i < int(pkt.Len); i++ {
			if !d.consumeCond(pkt.TNTBit(i)) {
				return
			}
		}
	case ipt.PktTIP:
		if !d.tracing || !d.curOK {
			return
		}
		d.consumeTIP(pkt.Val)
	case ipt.PktPTW:
		if d.tracing {
			d.res.PTWrites = append(d.res.PTWrites, PTWrite{TID: d.tid, Val: pkt.Val})
		}
	case ipt.PktPSB, ipt.PktPSBEND, ipt.PktMODE, ipt.PktPIP, ipt.PktCYC, ipt.PktPAD, ipt.PktFUP:
		// Stateless for reconstruction purposes (PAD is also the bulk
		// filler of analytic sessions, which are not decodable).
	}
}

// walkSilent advances through non-packet-producing edges until the current
// block's terminator needs trace input. Reports false on desync.
func (d *decoder) walkSilent() bool {
	for steps := 0; steps < silentWalkCap; steps++ {
		b := &d.prog.Blocks[d.cur]
		d.visit(d.cur)
		switch b.Term {
		case binary.TermFall, binary.TermSyscall:
			d.cur = b.Fall
		case binary.TermJump:
			d.cur = b.Taken
		case binary.TermCall:
			d.cur = b.Taken
		default:
			return true
		}
	}
	d.err("silent walk did not converge at block %d", d.cur)
	d.curOK = false
	return false
}

// consumeCond walks to the next conditional branch and applies one TNT bit.
func (d *decoder) consumeCond(taken bool) bool {
	if !d.walkSilent() {
		return false
	}
	b := &d.prog.Blocks[d.cur]
	if b.Term != binary.TermCond {
		d.err("TNT bit arrived at non-conditional block %d (%v)", d.cur, b.Term)
		d.curOK = false
		return false
	}
	target := b.Fall
	if taken {
		target = b.Taken
	}
	d.emit(trace.Event{TID: d.tid, Block: d.cur, Target: target, Kind: binary.TermCond, Taken: taken})
	d.cur = target
	return true
}

// consumeTIP walks to the next indirect transfer and applies a TIP target.
func (d *decoder) consumeTIP(ip uint64) {
	if !d.walkSilent() {
		return
	}
	b := &d.prog.Blocks[d.cur]
	switch b.Term {
	case binary.TermIndirectJump, binary.TermIndirectCall, binary.TermReturn:
	default:
		d.err("TIP arrived at block %d with terminator %v", d.cur, b.Term)
		d.curOK = false
		return
	}
	target, ok := d.prog.BlockAt(ip)
	if !ok {
		d.err("TIP to unknown address %#x", ip)
		d.curOK = false
		return
	}
	d.emit(trace.Event{TID: d.tid, Block: d.cur, Target: target, Kind: b.Term})
	d.cur = target
}

// visit accounts one decoded block. The aggregate profiles are folded in
// once per decode by flushVisits; the fast path is a single counter bump.
func (d *decoder) visit(id binary.BlockID) {
	d.visits[id]++
}

// emit records one reconstructed event into the current segment, counting
// function occurrences under the same rule trace.GroundTruth uses:
// indirect-call entries only (returns restarting the service loop would
// swamp the histogram with the loop head).
func (d *decoder) emit(ev trace.Event) {
	if d.seg == nil {
		d.seg = &segment{tid: d.tid, ts: d.lastTSC, start: len(d.events)}
		d.segs = append(d.segs, d.seg)
	}
	d.events = append(d.events, ev)
	d.res.Events++
	if ev.Kind == binary.TermIndirectCall {
		if fn, ok := d.prog.EntryFuncOf(ev.Target); ok {
			d.res.FuncEntries[fn]++
		}
	}
}

// err records a decode problem.
func (d *decoder) err(format string, args ...any) {
	d.res.Errors = append(d.res.Errors, fmt.Sprintf("core %d: ", d.core)+fmt.Sprintf(format, args...))
}
