package decode

import (
	"strings"
	"testing"

	"exist/internal/binary"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/metrics"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// pipeline runs a walker workload under a per-core PT tracer with a
// five-tuple hook, then returns the session, ground truth and program.
// bufBytes is the per-core buffer; threads is the thread count.
func pipeline(t *testing.T, bufBytes int, threads int, window simtime.Duration) (*trace.Session, *trace.GroundTruth, *binary.Program) {
	t.Helper()
	cfg := sched.DefaultConfig()
	cfg.Cores = 2
	cfg.HTSiblings = false
	cfg.Seed = 9
	cfg.Timeslice = 500 * simtime.Microsecond
	m := sched.NewMachine(cfg)

	prog := binary.Synthesize(binary.DefaultSpec("pipe", 3))
	p := m.AddProcess("pipe", prog, sched.CPUShare, []int{0, 1})
	for i := 0; i < threads; i++ {
		exec := sched.NewWalkerExec(prog, xrand.SplitN(77, "w", i), cfg.Cost, 1e-4)
		m.SpawnThread(p, exec)
	}

	sess := &trace.Session{
		ID: "test", Workload: "pipe", PID: int32(p.PID),
		Start: 0, End: simtime.Time(window), Scale: 1,
	}
	gt := trace.NewGroundTruth(prog, 0, simtime.Time(window))
	m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
		if th.Proc == p {
			gt.Record(int32(th.TID), now, ev)
		}
	}

	// Configure and enable both core tracers for the target process.
	for _, c := range m.Cores {
		if err := c.Tracer.SetOutput(ipt.NewSingleToPA(bufBytes)); err != nil {
			t.Fatal(err)
		}
		if err := c.Tracer.SetCR3Match(p.CR3); err != nil {
			t.Fatal(err)
		}
		if err := c.Tracer.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
			t.Fatal(err)
		}
	}
	// Five-tuple hook, as EXIST's kernel hooker records it.
	m.SwitchHooks = append(m.SwitchHooks, func(ev sched.SwitchEvent) simtime.Duration {
		if ev.Prev != nil && ev.Prev.Proc == p {
			sess.Switches.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
				PID: int32(p.PID), TID: int32(ev.Prev.TID), Op: kernel.OpOut})
		}
		if ev.Next != nil && ev.Next.Proc == p {
			sess.Switches.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
				PID: int32(p.PID), TID: int32(ev.Next.TID), Op: kernel.OpIn})
		}
		return cfg.Cost.SwitchRecord
	})

	m.Run(simtime.Time(window))
	for _, c := range m.Cores {
		c.Tracer.Flush()
		out := c.Tracer.Output()
		sess.Cores = append(sess.Cores, trace.CoreTrace{
			Core: c.ID, Data: out.Bytes(), Stopped: out.Stopped(), DroppedBytes: out.Dropped(),
		})
	}
	return sess, gt, prog
}

func TestLosslessReconstruction(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 1, 50*simtime.Millisecond)
	res := Decode(sess, prog)
	if len(res.Errors) != 0 {
		t.Fatalf("decode errors: %v", res.Errors[:min(3, len(res.Errors))])
	}
	score := metrics.PathAccuracy(gt.ByThread, res.ByThread)
	if score.Truth == 0 {
		t.Fatal("no ground truth generated")
	}
	if score.Spurious != 0 {
		t.Fatalf("decoder invented %d events", score.Spurious)
	}
	if score.Accuracy < 0.999 {
		t.Fatalf("lossless session accuracy = %.4f (matched %d / truth %d)",
			score.Accuracy, score.Matched, score.Truth)
	}
}

func TestLossyReconstructionDegrades(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<10, 1, 50*simtime.Millisecond)
	stopped := false
	for _, c := range sess.Cores {
		if c.Stopped {
			stopped = true
		}
	}
	if !stopped {
		t.Fatal("tiny buffer did not stop")
	}
	res := Decode(sess, prog)
	score := metrics.PathAccuracy(gt.ByThread, res.ByThread)
	if score.Accuracy >= 0.9 {
		t.Fatalf("expected heavy loss, accuracy = %.4f", score.Accuracy)
	}
	if score.Spurious > score.Decoded/50 {
		t.Fatalf("losses must shrink matches, not invent events: %+v", score)
	}
}

func TestMultiThreadAttribution(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 3, 50*simtime.Millisecond)
	res := Decode(sess, prog)
	score := metrics.PathAccuracy(gt.ByThread, res.ByThread)
	if score.Accuracy < 0.95 {
		t.Fatalf("multi-thread accuracy = %.4f (truth %d, matched %d, errors %d)",
			score.Accuracy, score.Truth, score.Matched, len(res.Errors))
	}
	// Every ground-truth thread should be present in the reconstruction.
	for tid := range gt.ByThread {
		if len(res.ByThread[tid]) == 0 {
			t.Fatalf("thread %d missing from reconstruction", tid)
		}
	}
}

func TestFuncHistogramMatchesGroundTruth(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 1, 50*simtime.Millisecond)
	res := Decode(sess, prog)
	acc := metrics.WeightMatch(gt.FuncEntries, res.FuncEntries)
	if acc < 0.99 {
		t.Fatalf("function histogram weight match = %.4f", acc)
	}
}

func TestCaseStudyProfilesPopulated(t *testing.T) {
	sess, _, prog := pipeline(t, 1<<22, 1, 50*simtime.Millisecond)
	res := Decode(sess, prog)
	if res.Blocks == 0 {
		t.Fatal("no blocks visited")
	}
	var mem int64
	for c := range res.MemOps {
		for w := range res.MemOps[c] {
			mem += res.MemOps[c][w]
		}
	}
	if mem == 0 {
		t.Fatal("memory-op profile empty")
	}
	if res.CatHits[binary.CatGeneral] == 0 {
		t.Fatal("category profile empty")
	}
}

func TestDecodeStreamStandalone(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("lone", 4))
	// Hand-build a tiny stream: enable at entry, take one TNT path.
	tr := ipt.NewTracer(0)
	if err := tr.SetOutput(ipt.NewSingleToPA(1 << 16)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(0x7); err != nil {
		t.Fatal(err)
	}
	tr.ContextSwitch(0, 0x7, prog.Blocks[prog.Entry].Addr)
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	w := binary.NewWalker(prog, xrand.New(5))
	var want int
	w.Run(20000, func(ev binary.BranchEvent) {
		tr.OnBranch(1, ev)
		want++
	})
	tr.Flush()
	res := DecodeStream(prog, nil, 0, tr.Output().Bytes())
	if res.Events != int64(want) {
		t.Fatalf("decoded %d events, walker emitted %d (errors: %v)", res.Events, want, res.Errors)
	}
	// Without a sidecar, events land on the unknown thread.
	if len(res.ByThread[-1]) != want {
		t.Fatalf("events not attributed to unknown thread: %d", len(res.ByThread[-1]))
	}
}

func TestWrappedRingDecode(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("ring", 8))
	tr := ipt.NewTracer(0)
	if err := tr.SetOutput(ipt.NewToPA([]int{1 << 12}, true)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(0x7); err != nil {
		t.Fatal(err)
	}
	tr.ContextSwitch(0, 0x7, prog.Blocks[prog.Entry].Addr)
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	w := binary.NewWalker(prog, xrand.New(6))
	for i := 0; i < 50; i++ {
		w.Run(20000, func(ev binary.BranchEvent) { tr.OnBranch(simtime.Time(i), ev) })
	}
	tr.Flush()
	out := tr.Output()
	if !out.Wrapped() {
		t.Fatal("ring did not wrap")
	}
	sess := &trace.Session{Scale: 1, Cores: []trace.CoreTrace{
		{Core: 0, Data: out.Bytes(), Wrapped: true},
	}}
	res := Decode(sess, prog)
	// A wrapped ring decodes only from the last PSB; we just require that
	// it recovers something and does not desync.
	for _, e := range res.Errors {
		if !strings.Contains(e, "truncated") {
			t.Fatalf("wrapped decode desync: %v", e)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := newResult(), newResult()
	a.ByThread[1] = []trace.Event{{TID: 1}}
	a.FuncEntries[3] = 2
	a.Events, a.Blocks = 1, 5
	b.ByThread[2] = []trace.Event{{TID: 2}}
	b.FuncEntries[3] = 1
	b.FuncEntries[4] = 7
	b.Events, b.Blocks = 1, 3
	a.Merge(b)
	if a.Events != 2 || a.Blocks != 8 {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if a.FuncEntries[3] != 3 || a.FuncEntries[4] != 7 {
		t.Fatalf("merge histograms wrong: %v", a.FuncEntries)
	}
	if len(a.ByThread) != 2 {
		t.Fatalf("merge threads wrong: %v", a.ByThread)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: the decoder must never panic on arbitrary bytes — torn or
// corrupt streams produce errors, not crashes.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("garbage", 13))
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		n := rng.IntN(512)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.IntN(256))
		}
		sess := &trace.Session{Scale: 1, Cores: []trace.CoreTrace{{Core: 0, Data: data}}}
		res := Decode(sess, prog) // must not panic
		_ = res.Events
	}
}

// Property: corrupting a valid stream at one position yields at most a
// truncated reconstruction, never spurious panics, and the decoder's
// output stays a subsequence of the truth.
func TestDecodeBitflipRobustness(t *testing.T) {
	sess, gt, prog := pipeline(t, 1<<22, 1, 20*simtime.Millisecond)
	orig := sess.Cores[0].Data
	if len(orig) == 0 {
		t.Skip("no data on core 0")
	}
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		data := append([]byte(nil), orig...)
		pos := rng.IntN(len(data))
		data[pos] ^= byte(1 + rng.IntN(255))
		mut := *sess
		mut.Cores = append([]trace.CoreTrace(nil), sess.Cores...)
		mut.Cores[0] = trace.CoreTrace{Core: 0, Data: data}
		res := Decode(&mut, prog)
		score := metrics.PathAccuracy(gt.ByThread, res.ByThread)
		// A single flip may desync one segment; wholesale invention of
		// events would indicate the decoder wandering off the CFG.
		if score.Spurious > score.Truth/4 {
			t.Fatalf("trial %d: bit flip at %d invented %d events (truth %d)",
				trial, pos, score.Spurious, score.Truth)
		}
	}
}
