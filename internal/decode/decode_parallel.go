package decode

import (
	"cmp"
	"slices"

	"exist/internal/binary"
	"exist/internal/parallel"
	"exist/internal/trace"
)

// DecodeParallel is Decode with the per-core packet streams decoded
// concurrently on up to jobs workers. Cores are independent until the
// final merge (each gets its own Result scratch and visit counters; the
// sidecar index is shared read-only), and merging runs in core order, so
// the output is identical to the serial Decode for any jobs value —
// including Errors order, PTWrite stream order, and the per-thread event
// streams.
func DecodeParallel(s *trace.Session, prog *binary.Program, jobs int) *Result {
	if jobs <= 1 || len(s.Cores) <= 1 {
		return Decode(s, prog)
	}
	idx := buildSidecar(&s.Switches)
	type coreOut struct {
		res    *Result
		visits []int64
		segs   []*segment
	}
	outs := parallel.Map(len(s.Cores), jobs, func(i int) coreOut {
		out := coreOut{res: newResult(), visits: make([]int64, len(prog.Blocks))}
		out.segs = decodeStream(out.res, prog, idx, out.visits,
			s.Cores[i].Core, s.Cores[i].Data, s.Cores[i].Wrapped)
		return out
	})

	res := newResult()
	visits := make([]int64, len(prog.Blocks))
	var segs []*segment
	for _, o := range outs {
		// decodeStream touches only the additive aggregate fields plus
		// the append-ordered Errors/PTWrites, so folding per-core results
		// in core order reproduces the serial accumulation exactly.
		for fn, n := range o.res.FuncEntries {
			res.FuncEntries[fn] += n
		}
		res.Events += o.res.Events
		res.BytesDecoded += o.res.BytesDecoded
		res.Resyncs += o.res.Resyncs
		res.Errors = append(res.Errors, o.res.Errors...)
		res.PTWrites = append(res.PTWrites, o.res.PTWrites...)
		for b, n := range o.visits {
			visits[b] += n
		}
		segs = append(segs, o.segs...)
	}
	flushVisits(res, prog, visits)
	slices.SortStableFunc(segs, func(a, b *segment) int { return cmp.Compare(a.ts, b.ts) })
	gatherByThread(res, segs)
	return res
}
