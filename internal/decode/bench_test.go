package decode

import (
	"testing"

	"exist/internal/hotbench"
)

// BenchmarkDecodeHot measures the decoder's hot path (packet parse, sidecar
// lookup, CFG walk, segment re-serialization) on a realistic stream with
// thread migrations. Run with -benchmem; the allocs/op trend is tracked in
// BENCH_harness.json.
func BenchmarkDecodeHot(b *testing.B) {
	prog := hotbench.Program(1)
	sess := hotbench.Session(prog, 1, 4_000_000)
	var bytes int64
	for _, c := range sess.Cores {
		bytes += int64(len(c.Data))
	}
	// Pre-warm the program's lazy address/entry indexes so the benchmark
	// measures steady-state decoding.
	res := Decode(sess, prog)
	if res.Events == 0 {
		b.Fatal("fixture produced no events")
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(sess, prog)
	}
}
