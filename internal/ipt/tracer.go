package ipt

import (
	"exist/internal/binary"
	"exist/internal/simtime"
)

// psbPeriod is the byte interval between packet stream boundaries, giving
// decoders periodic sync points (hardware default PSB frequency is 2K
// trace bytes; we use 4K as the paper's implementation does).
const psbPeriod = 4096

// Stats counts what a tracer produced and what it cost.
type Stats struct {
	// Bytes and Packets count accepted trace output.
	Bytes   int64
	Packets int64
	// TNTs, TIPs, PSBs break Packets down by headline kind.
	TNTs int64
	TIPs int64
	PSBs int64
	// DroppedEvents counts branch events that arrived after the output
	// stopped (compulsory-drop losses).
	DroppedEvents int64
	// FilteredEvents counts branch events suppressed by the CR3 filter
	// (zero-cost by design — the hardware simply does not trace them).
	FilteredEvents int64
	// Enables and Disables count TraceEn transitions (the costly control
	// operations EXIST minimizes).
	Enables  int64
	Disables int64
}

// Tracer models one logical core's PT engine. All mutation goes through
// the MSR-style interface; illegal operations (reconfiguring while
// TraceEn=1) fault exactly as the hardware manual specifies, because that
// restriction is what makes conventional per-context-switch control
// expensive.
type Tracer struct {
	// CoreID is the owning logical core, for diagnostics.
	CoreID int

	ctl      uint64
	status   uint64
	cr3Match uint64
	out      *ToPA

	curCR3    uint64
	curIP     uint64
	contextOn bool

	tntBits uint8
	tntLen  int
	psbLeft int
	scratch []byte

	// Staged-output state, live only inside OnBranchBatch: packets are
	// encoded into chunk and flushed to the ToPA in stageFlushBytes
	// pieces, with stageAvail mirroring the chain's remaining acceptance
	// so status/stat bookkeeping matches the per-packet path exactly.
	chunk       []byte
	stageAvail  int64
	stageFailed bool

	// Stats accumulates output and control counters.
	Stats Stats
}

// stageFlushBytes is the staged-output flush threshold: one ToPA write per
// ~4 KiB of encoded packets instead of one per packet. It matches the PSB
// period so a chunk spans at most two sync points.
const stageFlushBytes = 4096

// NewTracer returns the tracer for a core, disabled and unconfigured.
func NewTracer(coreID int) *Tracer {
	return &Tracer{CoreID: coreID, psbLeft: psbPeriod, scratch: make([]byte, 0, 64)}
}

// Ctl returns the current control MSR value.
func (t *Tracer) Ctl() uint64 { return t.ctl }

// Status returns the current status MSR value.
func (t *Tracer) Status() uint64 { return t.status }

// Enabled reports whether TraceEn is set.
func (t *Tracer) Enabled() bool { return t.ctl&CtlTraceEn != 0 }

// ContextOn reports whether the current context passes the CR3 filter.
func (t *Tracer) ContextOn() bool { return t.contextOn }

// Output returns the configured output chain (nil if unconfigured).
func (t *Tracer) Output() *ToPA { return t.out }

// SetOutput points the tracer at an output chain. Like programming
// IA32_RTIT_OUTPUT_BASE, it requires tracing to be disabled.
func (t *Tracer) SetOutput(out *ToPA) error {
	if t.Enabled() {
		return ErrTraceActive{Op: "SetOutput"}
	}
	t.out = out
	return nil
}

// SetCR3Match programs the CR3 filter target (IA32_RTIT_CR3_MATCH).
// Requires tracing disabled.
func (t *Tracer) SetCR3Match(cr3 uint64) error {
	if t.Enabled() {
		return ErrTraceActive{Op: "SetCR3Match"}
	}
	t.cr3Match = cr3
	return nil
}

// WriteCtl writes the control MSR. Transitions of TraceEn are the legal
// control operations; changing configuration bits while TraceEn stays set
// faults. Enabling emits the PSB+ header group, and — if the current
// context passes the filter — a TIP.PGE at the current IP. Disabling
// flushes pending TNT bits and emits TIP.PGD.
func (t *Tracer) WriteCtl(now simtime.Time, v uint64) error {
	wasOn := t.Enabled()
	willBeOn := v&CtlTraceEn != 0
	if wasOn && willBeOn && v != t.ctl {
		t.status |= StatusError
		return ErrTraceActive{Op: "WriteCtl(modify)"}
	}
	if willBeOn && !wasOn && t.out == nil {
		t.status |= StatusError
		return ErrTraceActive{Op: "WriteCtl(enable without output)"}
	}
	t.ctl = v
	switch {
	case willBeOn && !wasOn:
		t.Stats.Enables++
		t.status |= StatusTriggerEn
		t.status &^= StatusStopped
		t.psbLeft = psbPeriod
		t.refreshContext()
		t.emitHeader(now)
		if t.contextOn {
			t.emitTIP(PktTIPPGE, t.curIP)
		}
	case !willBeOn && wasOn:
		t.Stats.Disables++
		t.flushTNT()
		if t.contextOn {
			t.emitTIP(PktTIPPGD, t.curIP)
		}
		t.status &^= StatusTriggerEn | StatusContextEn
		t.contextOn = false
	}
	return nil
}

// ContextSwitch tells the tracer the core switched address spaces — the
// hardware-visible part of a context switch. It costs nothing (no MSR
// traffic): the CR3 filter turns packet generation on or off by itself.
// A PIP and a timestamped TIP.PGE are emitted when a filtered-in context
// schedules in, which is what lets the decoder align per-core streams with
// the kernel's five-tuple switch records.
func (t *Tracer) ContextSwitch(now simtime.Time, cr3, ip uint64) {
	t.curCR3, t.curIP = cr3, ip
	if !t.Enabled() {
		return
	}
	was := t.contextOn
	t.refreshContext()
	switch {
	case t.contextOn && !was:
		t.emitRaw(AppendPIP(t.scratch[:0], cr3))
		t.emitRaw(AppendTSC(t.scratch[:0], uint64(now)))
		t.emitTIP(PktTIPPGE, ip)
	case !t.contextOn && was:
		t.flushTNT()
		t.emitTIP(PktTIPPGD, ip)
	case t.contextOn && was:
		// A MOV CR3 emits a PIP even when the value is unchanged — this
		// is what makes same-process thread switches visible in the
		// stream at all. The timestamp lets the decoder re-attribute via
		// the five-tuple sidecar, and the PGE re-anchors the IP (the new
		// thread resumes elsewhere).
		t.flushTNT()
		t.emitRaw(AppendPIP(t.scratch[:0], cr3))
		t.emitRaw(AppendTSC(t.scratch[:0], uint64(now)))
		t.emitTIP(PktTIPPGE, ip)
	}
}

// refreshContext recomputes the CR3 filter decision for the current CR3.
func (t *Tracer) refreshContext() {
	if t.ctl&CtlCR3Filter == 0 {
		t.contextOn = true
	} else {
		t.contextOn = t.curCR3 == t.cr3Match
	}
	if t.contextOn {
		t.status |= StatusContextEn
	} else {
		t.status &^= StatusContextEn
	}
}

// OnBranch feeds one retired control transfer to the tracer. This is the
// hardware fast path: when disabled or filtered out it does nothing; when
// the output chain has stopped it counts the loss.
func (t *Tracer) OnBranch(now simtime.Time, ev binary.BranchEvent) {
	if !t.Enabled() || t.ctl&CtlBranchEn == 0 {
		return
	}
	if !t.contextOn {
		t.Stats.FilteredEvents++
		return
	}
	if t.out.Stopped() {
		t.Stats.DroppedEvents++
		return
	}
	t.curIP = ev.To
	if ev.Kind == binary.TermCond {
		if ev.Taken {
			t.tntBits |= 1 << uint(t.tntLen)
		}
		t.tntLen++
		if t.tntLen == 6 {
			t.flushTNT()
		}
		return
	}
	// Indirect transfer: order is TNT flush, optional CYC, then TIP.
	t.flushTNT()
	if t.ctl&CtlCYCEn != 0 {
		t.emitRaw(AppendCYC(t.scratch[:0], 16))
	}
	t.emitTIP(PktTIP, ev.To)
}

// OnBranchBatch feeds a batch of retired control transfers to the tracer:
// the amortized fast path the walker's batched emission drives. It is
// byte- and stat-equivalent to calling OnBranch per event, but encodes
// packets into a staging chunk and writes the chunk to the output chain in
// stageFlushBytes pieces (and once at batch end) instead of issuing one
// ToPA write per packet. The chain's remaining acceptance is tracked ahead
// of the writes, so when output stops mid-batch the stored/dropped split,
// Stats attribution, and status bits land on exactly the byte the
// per-packet path would produce. No staged bytes survive the call: between
// calls the tracer and its ToPA are in the same state as ever.
func (t *Tracer) OnBranchBatch(now simtime.Time, evs []binary.BranchEvent) {
	if !t.Enabled() || t.ctl&CtlBranchEn == 0 {
		return
	}
	if !t.contextOn {
		t.Stats.FilteredEvents += int64(len(evs))
		return
	}
	if t.out.Stopped() {
		t.Stats.DroppedEvents += int64(len(evs))
		return
	}
	t.stageAvail = t.out.Remaining()
	t.stageFailed = false
	t.chunk = t.chunk[:0]
	cyc := t.ctl&CtlCYCEn != 0
	for i := range evs {
		if t.stageFailed {
			// The per-packet path re-checks out.Stopped() before every
			// event; a failed staged write is that same boundary.
			t.Stats.DroppedEvents += int64(len(evs) - i)
			break
		}
		ev := &evs[i]
		t.curIP = ev.To
		if ev.Kind == binary.TermCond {
			if ev.Taken {
				t.tntBits |= 1 << uint(t.tntLen)
			}
			t.tntLen++
			if t.tntLen == 6 {
				t.stageTNT()
			}
			continue
		}
		// Indirect transfer: order is TNT flush, optional CYC, then TIP.
		t.stageTNT()
		if cyc {
			p := len(t.chunk)
			t.chunk = AppendCYC(t.chunk, 16)
			t.stagePkt(p)
		}
		p := len(t.chunk)
		t.chunk = AppendTIP(t.chunk, PktTIP, ev.To)
		t.stagePkt(p)
		t.Stats.TIPs++
		if len(t.chunk) >= stageFlushBytes {
			t.flushStage()
		}
	}
	t.flushStage()
}

// OnBranchBatchPacked is OnBranchBatch for walkers that deliver the
// batch's conditional directions pre-packed (binary.TNTPack). It is byte-
// and stat-identical to the unpacked path, but runs of consecutive
// conditional events consume the pack six directions at a time straight
// into TNT packets, eliminating the per-branch direction staging.
func (t *Tracer) OnBranchBatchPacked(now simtime.Time, evs []binary.BranchEvent, pack *binary.TNTPack) {
	if !t.Enabled() || t.ctl&CtlBranchEn == 0 {
		return
	}
	if !t.contextOn {
		t.Stats.FilteredEvents += int64(len(evs))
		return
	}
	if t.out.Stopped() {
		t.Stats.DroppedEvents += int64(len(evs))
		return
	}
	t.stageAvail = t.out.Remaining()
	t.stageFailed = false
	t.chunk = t.chunk[:0]
	cyc := t.ctl&CtlCYCEn != 0
	n := len(evs)
	ci := 0 // pack cursor: conditional directions consumed so far
	i := 0
	for i < n {
		if t.stageFailed {
			// The per-packet path re-checks out.Stopped() before every
			// event; a failed staged write is that same boundary.
			t.Stats.DroppedEvents += int64(n - i)
			break
		}
		ev := &evs[i]
		if ev.Kind == binary.TermCond {
			j := i + 1
			for j < n && evs[j].Kind == binary.TermCond {
				j++
			}
			done := t.stageTNTRun(pack, ci, j-i)
			ci += done
			i += done
			t.curIP = evs[i-1].To
			continue
		}
		t.curIP = ev.To
		// Indirect transfer: order is TNT flush, optional CYC, then TIP.
		t.stageTNT()
		if cyc {
			p := len(t.chunk)
			t.chunk = AppendCYC(t.chunk, 16)
			t.stagePkt(p)
		}
		p := len(t.chunk)
		t.chunk = AppendTIP(t.chunk, PktTIP, ev.To)
		t.stagePkt(p)
		t.Stats.TIPs++
		if len(t.chunk) >= stageFlushBytes {
			t.flushStage()
		}
		i++
	}
	t.flushStage()
}

// stageTNTRun folds run packed conditional directions (starting at pack
// bit at) into TNT packets: pending bits from earlier events complete
// their packet first, then whole six-bit packets peel straight off the
// pack. It returns the number of directions consumed — the full run
// unless a staged write fails, in which case consumption stops with the
// event whose direction completed the failing packet, matching the
// per-event path's drop boundary.
func (t *Tracer) stageTNTRun(pack *binary.TNTPack, at, run int) int {
	done := 0
	for done < run {
		k := 6 - t.tntLen
		if k > run-done {
			k = run - done
		}
		t.tntBits |= uint8(pack.Slice(at+done, k)) << uint(t.tntLen)
		t.tntLen += k
		done += k
		if t.tntLen == 6 {
			t.stageTNT()
			if t.stageFailed {
				return done
			}
		}
	}
	return run
}

// stageTNT stages any buffered TNT bits as one short TNT packet (the
// staged twin of flushTNT).
func (t *Tracer) stageTNT() {
	if t.tntLen == 0 {
		return
	}
	p := len(t.chunk)
	t.chunk = AppendTNT(t.chunk, t.tntBits, t.tntLen)
	t.stagePkt(p)
	t.Stats.TNTs++
	t.tntBits, t.tntLen = 0, 0
}

// stagePkt performs emitRaw's bookkeeping for the packet staged at
// chunk[prev:]: packet/byte counting, PSB insertion, and the stop
// transition, all against the pre-computed remaining acceptance instead of
// a live write.
func (t *Tracer) stagePkt(prev int) {
	n := len(t.chunk) - prev
	t.Stats.Packets++
	t.Stats.Bytes += int64(n)
	if int64(n) > t.stageAvail {
		// The per-packet write would come up short here: ToPA stores the
		// prefix that fits (the chunk flush reproduces that split) and the
		// tracer records the stop.
		t.stageAvail = 0
		t.stageFailed = true
		t.status |= StatusStopped
		return
	}
	t.stageAvail -= int64(n)
	t.psbLeft -= n
	if t.psbLeft <= 0 {
		t.psbLeft = psbPeriod
		p := len(t.chunk)
		t.chunk = AppendPSBEND(AppendPSB(t.chunk))
		pn := int64(len(t.chunk) - p)
		if pn > t.stageAvail {
			t.stageAvail = 0
			t.stageFailed = true
			t.status |= StatusStopped
			return
		}
		t.stageAvail -= pn
		t.Stats.PSBs++
		t.Stats.Bytes += pn
	}
}

// flushStage writes the staged chunk to the output chain in one call.
func (t *Tracer) flushStage() {
	if len(t.chunk) == 0 {
		return
	}
	t.out.Write(t.chunk)
	t.chunk = t.chunk[:0]
}

// Flush drains pending TNT bits without changing trace state; the kernel
// calls it before reading out a window.
func (t *Tracer) Flush() { t.flushTNT() }

// PTWrite models a PTWRITE instruction retiring on the core: an 8-byte
// operand enters the trace stream (the data-flow enhancement of §6.1).
// Requires CtlPTWEn; filtered and dropped under the same rules as
// branches.
func (t *Tracer) PTWrite(now simtime.Time, val uint64) {
	if !t.Enabled() || t.ctl&CtlPTWEn == 0 {
		return
	}
	if !t.contextOn {
		t.Stats.FilteredEvents++
		return
	}
	if t.out == nil || t.out.Stopped() {
		t.Stats.DroppedEvents++
		return
	}
	t.flushTNT()
	t.emitRaw(AppendPTW(t.scratch[:0], val))
}

// SwapOutputHot models the §6.1 "hot switching" hardware extension: the
// output chain is repointed atomically while tracing stays enabled — one
// register write instead of the disable/reprogram/enable sequence. Pending
// TNT bits are flushed to the old chain and a PSB reanchors the new one.
func (t *Tracer) SwapOutputHot(now simtime.Time, out *ToPA) {
	t.flushTNT()
	t.out = out
	if t.Enabled() {
		t.psbLeft = psbPeriod
		t.emitHeader(now)
		if t.contextOn {
			t.emitTIP(PktTIPPGE, t.curIP)
		}
	}
}

// bulkChunk is the presentation granularity of aggregate output: bursts
// are offered to the chain in chunks this size, and a burst stops being
// presented once the chain stops, so at most one partial chunk lands in
// the chain's dropped-byte count.
const bulkChunk = 4096

// OnBulkBranches models a burst of branch activity in aggregate: cond
// conditional and ind indirect transfers are charged at their encoded
// sizes and written as PAD filler (which still parses). Analytic workload
// models use this to exercise buffer occupancy, compulsory drop, and trace
// volume without materializing individual packets. The filler takes the
// chain's zero-fill fast path: counters move, no bytes do.
func (t *Tracer) OnBulkBranches(now simtime.Time, cond, ind int64) {
	if !t.Enabled() || t.ctl&CtlBranchEn == 0 {
		return
	}
	if !t.contextOn {
		t.Stats.FilteredEvents += cond + ind
		return
	}
	if t.out == nil || t.out.Stopped() {
		t.Stats.DroppedEvents += cond + ind
		return
	}
	perInd := int64(7) // TIP
	if t.ctl&CtlCYCEn != 0 {
		perInd++ // plus CYC
	}
	total := (cond+5)/6 + ind*perInd
	writtenBefore := t.out.Written()
	sent := int64(0)
	for sent < total && !t.out.Stopped() {
		n := total - sent
		if n > bulkChunk {
			n = bulkChunk
		}
		if !t.out.WriteZeros(n) {
			t.status |= StatusStopped
		}
		sent += n
	}
	// accepted is what the chain actually stored. The lost tail covers both
	// bytes the chain rejected and bytes never presented once it stopped;
	// event loss is attributed proportionally to it.
	accepted := t.out.Written() - writtenBefore
	if lost := total - accepted; lost > 0 && total > 0 {
		t.Stats.DroppedEvents += (cond + ind) * lost / total
	}
	tnts := (cond + 5) / 6
	// Only accepted bytes count as trace output; the lost tail is already
	// accounted by DroppedEvents (and by the chain's own counters).
	t.Stats.Bytes += accepted
	t.Stats.Packets += tnts + ind
	t.Stats.TNTs += tnts
	t.Stats.TIPs += ind
	t.psbLeft -= int(total)
	if t.psbLeft <= 0 {
		t.psbLeft = psbPeriod
	}
}

// flushTNT emits any buffered TNT bits as one short TNT packet.
func (t *Tracer) flushTNT() {
	if t.tntLen == 0 {
		return
	}
	t.emitRaw(AppendTNT(t.scratch[:0], t.tntBits, t.tntLen))
	t.Stats.TNTs++
	t.tntBits, t.tntLen = 0, 0
}

// emitHeader writes the PSB+ group: PSB, TSC, PIP, MODE, PSBEND.
func (t *Tracer) emitHeader(now simtime.Time) {
	b := t.scratch[:0]
	b = AppendPSB(b)
	b = AppendTSC(b, uint64(now))
	b = AppendPIP(b, t.curCR3)
	b = AppendMODE(b, 1)
	b = AppendPSBEND(b)
	t.emitRaw(b)
	t.Stats.PSBs++
}

// emitTIP writes a TIP-class packet.
func (t *Tracer) emitTIP(kind PacketKind, ip uint64) {
	t.emitRaw(AppendTIP(t.scratch[:0], kind, ip))
	if kind == PktTIP {
		t.Stats.TIPs++
	}
}

// emitRaw writes encoded bytes to the output, inserting periodic PSBs and
// maintaining status/stat bookkeeping.
func (t *Tracer) emitRaw(b []byte) {
	if t.out == nil {
		return
	}
	n := len(b)
	ok := t.out.Write(b)
	t.Stats.Packets++
	t.Stats.Bytes += int64(n)
	if !ok {
		t.status |= StatusStopped
		return
	}
	t.psbLeft -= n
	if t.psbLeft <= 0 {
		t.psbLeft = psbPeriod
		psb := AppendPSBEND(AppendPSB(t.scratch[:0]))
		if t.out.Write(psb) {
			t.Stats.PSBs++
			t.Stats.Bytes += int64(len(psb))
		} else {
			t.status |= StatusStopped
		}
	}
}
