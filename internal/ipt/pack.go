package ipt

import (
	"fmt"

	"exist/internal/wire"
)

// Packed packet-stream codec: a byte-oriented re-encoding of a PT packet
// buffer that exploits the structure the tracer actually emits (§3 of the
// paper's encoding model). The dominant pattern — CYC followed by TIP at
// every indirect branch — fuses into a two-byte op with the target drawn
// from a per-stream dictionary; timestamps, CR3s and out-of-dictionary
// targets are zigzag deltas; PSB groups shrink from 16 bytes to one op.
// TNT bytes pass through literally (they already carry six branches per
// byte), and any region that does not parse as well-formed packets — a
// wrapped buffer's torn head, a corrupted or truncated stream — is
// carried verbatim in a raw chunk, so the codec is lossless on every
// input: Unpack(Pack(data)) == data, byte for byte.
//
// Every emitter in this package is bijective given its parsed fields
// (the payload widths are fixed and values are range-bound by
// construction), which is what makes clean re-emission exact.

// Packed-stream opcodes. Even values other than opPADRun/opRawChunk are
// literal TNT bytes (a TNT byte always has bit 0 clear and value >= 4).
// Odd values 0x01..0x7f are the fused CYC+TIP op with the cycle count in
// bits 1..6; odd values >= 0x81 are the ops below.
const (
	opPADRun   = 0x00 // uvarint count of PAD bytes
	opRawChunk = 0x02 // uvarint length + verbatim bytes
	opTIP      = 0x81 // TIP without preceding CYC: target ref
	opTIPPGE   = 0x83 // zigzag delta from last IP
	opTIPPGD   = 0x85 // zigzag delta from last IP
	opFUP      = 0x87 // zigzag delta from last IP
	opTSC      = 0x89 // zigzag delta from last TSC
	opPIP      = 0x8b // zigzag delta from last CR3
	opPSB      = 0x8d
	opPSBEND   = 0x8f
	opMODE     = 0x91 // one mode byte
	opPTW      = 0x93 // uvarint operand
	opCYC      = 0x95 // standalone CYC: uvarint cycle count
)

// packDictCap bounds the per-stream target dictionary; both sides apply
// the identical rule, so the mapping never diverges.
const packDictCap = 1 << 16

// MaxUnpackedCoreBytes bounds the size Unpack will materialize for one
// core stream: a length-lying or decompression-bomb input errors out
// instead of allocating without bound. Real streams never exceed it —
// simulated buffers are space-scaled and a ToPA chain tops out well
// below this.
const MaxUnpackedCoreBytes = 64 << 20

// tipRef appends a target reference: a dictionary hit is uvarint(idx+1);
// a miss is 0 followed by the zigzag delta from the last IP, and enters
// the dictionary on both sides.
func tipRef(dst []byte, ip, lastIP uint64, dict map[uint64]uint32, ndict *int) []byte {
	if idx, ok := dict[ip]; ok {
		return wire.AppendUvarint(dst, uint64(idx)+1)
	}
	dst = wire.AppendUvarint(dst, 0)
	dst = wire.AppendZigzag(dst, int64(ip)-int64(lastIP))
	if *ndict < packDictCap {
		dict[ip] = uint32(*ndict)
		*ndict++
	}
	return dst
}

// PackStream appends the packed encoding of one core's packet buffer to
// dst and returns the extended slice. It never fails: unparseable bytes
// are escaped verbatim.
func PackStream(dst, data []byte) []byte {
	p := NewParser(data)
	dict := make(map[uint64]uint32)
	ndict := 0
	var lastIP, lastTSC, lastCR3 uint64
	padRun := 0
	cycPending := false
	var cycVal uint64

	flushPAD := func() {
		if padRun > 0 {
			dst = append(dst, opPADRun)
			dst = wire.AppendUvarint(dst, uint64(padRun))
			padRun = 0
		}
	}
	flushCYC := func() {
		if cycPending {
			dst = append(dst, opCYC)
			dst = wire.AppendUvarint(dst, cycVal)
			cycPending = false
		}
	}
	flush := func() { flushPAD(); flushCYC() }

	for {
		pkt, ok, err := p.Next()
		if err != nil {
			// Escape hatch: carry everything up to the next PSB (or the
			// end) verbatim. The error position can never itself parse as
			// a full PSB, so Sync always makes progress.
			flush()
			start := p.Pos()
			var chunk []byte
			if p.Sync() {
				chunk = data[start:p.Pos()]
			} else {
				chunk = data[start:]
			}
			dst = append(dst, opRawChunk)
			dst = wire.AppendUvarint(dst, uint64(len(chunk)))
			dst = append(dst, chunk...)
			if p.Pos() >= len(data) {
				return dst
			}
			continue
		}
		if !ok {
			flush()
			return dst
		}
		if pkt.Kind != PktPAD {
			flushPAD()
		}
		if cycPending && pkt.Kind != PktTIP {
			flushCYC()
		}
		switch pkt.Kind {
		case PktPAD:
			flushCYC()
			padRun++
		case PktCYC:
			cycPending, cycVal = true, pkt.Val
		case PktTIP:
			if cycPending {
				dst = append(dst, byte(0x01|cycVal<<1))
				cycPending = false
			} else {
				dst = append(dst, opTIP)
			}
			dst = tipRef(dst, pkt.Val, lastIP, dict, &ndict)
			lastIP = pkt.Val
		case PktTIPPGE, PktTIPPGD, PktFUP:
			op := byte(opTIPPGE)
			if pkt.Kind == PktTIPPGD {
				op = opTIPPGD
			} else if pkt.Kind == PktFUP {
				op = opFUP
			}
			dst = append(dst, op)
			dst = wire.AppendZigzag(dst, int64(pkt.Val)-int64(lastIP))
			lastIP = pkt.Val
		case PktTNT:
			dst = append(dst, byte(1)<<(pkt.Len+1)|pkt.Bits<<1)
		case PktTSC:
			dst = append(dst, opTSC)
			dst = wire.AppendZigzag(dst, int64(pkt.Val)-int64(lastTSC))
			lastTSC = pkt.Val
		case PktPIP:
			dst = append(dst, opPIP)
			dst = wire.AppendZigzag(dst, int64(pkt.Val)-int64(lastCR3))
			lastCR3 = pkt.Val
		case PktPSB:
			dst = append(dst, opPSB)
		case PktPSBEND:
			dst = append(dst, opPSBEND)
		case PktMODE:
			dst = append(dst, opMODE, byte(pkt.Val))
		case PktPTW:
			dst = append(dst, opPTW)
			dst = wire.AppendUvarint(dst, pkt.Val)
		}
	}
}

// UnpackStream decodes a packed stream, appending the reconstructed
// packet bytes to dst. rawLen is the expected output size (carried in
// the session framing); the reconstruction must match it exactly, and
// output is capped by it, so a hostile stream cannot expand without
// bound.
func UnpackStream(dst, packed []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 || rawLen > MaxUnpackedCoreBytes {
		return nil, fmt.Errorf("ipt: implausible unpacked size %d", rawLen)
	}
	base := len(dst)
	r := wire.NewReader(packed)
	dict := make([]uint64, 0, 256)
	var lastIP, lastTSC, lastCR3 uint64

	readIP := func() (uint64, error) {
		code := r.Uvarint()
		if code == 0 {
			ip := uint64(int64(lastIP) + r.Zigzag())
			if len(dict) < packDictCap {
				dict = append(dict, ip)
			}
			return ip, r.Err()
		}
		if code > uint64(len(dict)) {
			return 0, fmt.Errorf("ipt: packed target index %d beyond dictionary %d", code, len(dict))
		}
		return dict[code-1], r.Err()
	}

	for r.Len() > 0 {
		if len(dst)-base > rawLen {
			return nil, fmt.Errorf("ipt: packed stream exceeds declared size %d", rawLen)
		}
		op := r.U8()
		switch {
		case op == opPADRun:
			n := r.Uvarint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if n > uint64(rawLen-(len(dst)-base)) {
				return nil, fmt.Errorf("ipt: PAD run %d exceeds declared size", n)
			}
			for i := uint64(0); i < n; i++ {
				dst = append(dst, hdrPAD)
			}
		case op == opRawChunk:
			n := r.Uvarint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if n > uint64(r.Len()) || n > uint64(rawLen-(len(dst)-base)) {
				return nil, fmt.Errorf("ipt: raw chunk %d exceeds remaining input", n)
			}
			dst = append(dst, r.Bytes(int(n))...)
		case op&1 == 0:
			// Literal TNT byte.
			if op < 0x04 {
				return nil, fmt.Errorf("ipt: bad packed opcode %#02x", op)
			}
			dst = append(dst, op)
		case op < 0x80:
			// Fused CYC+TIP.
			dst = AppendCYC(dst, uint32(op>>1))
			ip, err := readIP()
			if err != nil {
				return nil, err
			}
			dst = AppendTIP(dst, PktTIP, ip)
			lastIP = ip
		default:
			switch op {
			case opTIP:
				ip, err := readIP()
				if err != nil {
					return nil, err
				}
				dst = AppendTIP(dst, PktTIP, ip)
				lastIP = ip
			case opTIPPGE, opTIPPGD, opFUP:
				ip := uint64(int64(lastIP) + r.Zigzag())
				kind := PktTIPPGE
				if op == opTIPPGD {
					kind = PktTIPPGD
				} else if op == opFUP {
					kind = PktFUP
				}
				dst = AppendTIP(dst, kind, ip)
				lastIP = ip
			case opTSC:
				lastTSC = uint64(int64(lastTSC) + r.Zigzag())
				dst = AppendTSC(dst, lastTSC)
			case opPIP:
				lastCR3 = uint64(int64(lastCR3) + r.Zigzag())
				dst = AppendPIP(dst, lastCR3)
			case opPSB:
				dst = AppendPSB(dst)
			case opPSBEND:
				dst = AppendPSBEND(dst)
			case opMODE:
				dst = AppendMODE(dst, r.U8())
			case opPTW:
				dst = AppendPTW(dst, r.Uvarint())
			case opCYC:
				v := r.Uvarint()
				if v > 63 {
					return nil, fmt.Errorf("ipt: packed CYC count %d out of range", v)
				}
				dst = AppendCYC(dst, uint32(v))
			default:
				return nil, fmt.Errorf("ipt: bad packed opcode %#02x", op)
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if len(dst)-base != rawLen {
		return nil, fmt.Errorf("ipt: packed stream produced %d bytes, declared %d", len(dst)-base, rawLen)
	}
	return dst, nil
}
