package ipt

import "fmt"

// PacketKind identifies a trace packet type.
type PacketKind uint8

const (
	// PktPAD is a one-byte padding packet.
	PktPAD PacketKind = iota
	// PktPSB is the 16-byte packet stream boundary (decoder sync point).
	PktPSB
	// PktPSBEND closes the PSB+ header group.
	PktPSBEND
	// PktTNT carries up to six conditional-branch taken/not-taken bits.
	PktTNT
	// PktTIP carries the target IP of an indirect branch.
	PktTIP
	// PktTIPPGE marks tracing (re)starting at an IP (packet generation enable).
	PktTIPPGE
	// PktTIPPGD marks tracing stopping (packet generation disable).
	PktTIPPGD
	// PktFUP carries the source IP of an asynchronous event.
	PktFUP
	// PktTSC carries a 56-bit timestamp.
	PktTSC
	// PktPIP carries the CR3 value on a paging change (process switch).
	PktPIP
	// PktMODE carries execution mode details.
	PktMODE
	// PktCYC carries an elapsed-cycle count.
	PktCYC
	// PktPTW carries a PTWRITE operand: the data-flow enhancement the
	// paper's §6.1 describes for supplementing control-flow traces.
	PktPTW
)

// String returns the conventional packet mnemonic.
func (k PacketKind) String() string {
	switch k {
	case PktPAD:
		return "PAD"
	case PktPSB:
		return "PSB"
	case PktPSBEND:
		return "PSBEND"
	case PktTNT:
		return "TNT"
	case PktTIP:
		return "TIP"
	case PktTIPPGE:
		return "TIP.PGE"
	case PktTIPPGD:
		return "TIP.PGD"
	case PktFUP:
		return "FUP"
	case PktTSC:
		return "TSC"
	case PktPIP:
		return "PIP"
	case PktMODE:
		return "MODE"
	case PktCYC:
		return "CYC"
	case PktPTW:
		return "PTW"
	default:
		return "BAD"
	}
}

// Packet is one parsed trace packet. Val holds the payload: the IP for TIP
// packets, the timestamp for TSC, the CR3 for PIP, the cycle count for CYC.
// For TNT packets, Bits holds the taken/not-taken bits (oldest at bit 0)
// and Len the number of valid bits.
type Packet struct {
	Kind PacketKind
	Val  uint64
	Bits uint8
	Len  uint8
}

// TNTBit returns the i-th (oldest-first) taken bit of a TNT packet.
func (p Packet) TNTBit(i int) bool { return p.Bits&(1<<uint(i)) != 0 }

// Header bytes of the single-byte-header packets.
const (
	hdrPAD     = 0x00
	hdrTSC     = 0x19
	hdrMODE    = 0x99
	hdrTIP     = 0x6D // IPBytes=3 (6-byte payload) | 0x0D
	hdrTIPPGE  = 0x71 // IPBytes=3 | 0x11
	hdrTIPPGD  = 0x61 // IPBytes=3 | 0x01
	hdrFUP     = 0x7D // IPBytes=3 | 0x1D
	hdrExt     = 0x02 // extended (two-byte) header escape
	ext2PSB    = 0x82
	ext2PSBEND = 0x23
	ext2PIP    = 0x43
	ext2PTW    = 0x32 // PTWRITE, 8-byte operand payload
)

// PSBSize is the encoded size of a PSB packet.
const PSBSize = 16

// AppendPSB appends a packet stream boundary: eight repetitions of 02 82.
func AppendPSB(dst []byte) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, hdrExt, ext2PSB)
	}
	return dst
}

// AppendPSBEND appends a PSBEND packet.
func AppendPSBEND(dst []byte) []byte { return append(dst, hdrExt, ext2PSBEND) }

// AppendTNT appends a short TNT packet holding n (1..6) branch bits.
// Bit i of bits is the i-th oldest branch. The encoding places the oldest
// bit at byte bit 1 and a stop bit just above the newest.
func AppendTNT(dst []byte, bits uint8, n int) []byte {
	if n < 1 || n > 6 {
		panic(fmt.Sprintf("ipt: TNT packet with %d bits", n))
	}
	b := byte(1) << uint(n+1) // stop bit
	b |= (bits & ((1 << uint(n)) - 1)) << 1
	return append(dst, b)
}

// AppendTIP appends a TIP-class packet (TIP, TIP.PGE, TIP.PGD, FUP) with a
// 6-byte IP payload.
func AppendTIP(dst []byte, kind PacketKind, ip uint64) []byte {
	var hdr byte
	switch kind {
	case PktTIP:
		hdr = hdrTIP
	case PktTIPPGE:
		hdr = hdrTIPPGE
	case PktTIPPGD:
		hdr = hdrTIPPGD
	case PktFUP:
		hdr = hdrFUP
	default:
		panic("ipt: AppendTIP with non-TIP kind " + kind.String())
	}
	dst = append(dst, hdr)
	for i := 0; i < 6; i++ {
		dst = append(dst, byte(ip>>(8*uint(i))))
	}
	return dst
}

// AppendTSC appends a TSC packet with a 56-bit timestamp payload.
func AppendTSC(dst []byte, tsc uint64) []byte {
	dst = append(dst, hdrTSC)
	for i := 0; i < 7; i++ {
		dst = append(dst, byte(tsc>>(8*uint(i))))
	}
	return dst
}

// AppendPIP appends a PIP packet carrying a CR3 (48 significant bits).
func AppendPIP(dst []byte, cr3 uint64) []byte {
	dst = append(dst, hdrExt, ext2PIP)
	for i := 0; i < 6; i++ {
		dst = append(dst, byte(cr3>>(8*uint(i))))
	}
	return dst
}

// AppendPTW appends a PTWRITE packet with an 8-byte operand.
func AppendPTW(dst []byte, val uint64) []byte {
	dst = append(dst, hdrExt, ext2PTW)
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(val>>(8*uint(i))))
	}
	return dst
}

// AppendMODE appends a MODE.Exec packet.
func AppendMODE(dst []byte, mode uint8) []byte {
	return append(dst, hdrMODE, mode)
}

// AppendCYC appends a CYC packet carrying up to 63 elapsed cycles (larger
// counts are clamped; the model does not need CYC extension bytes).
func AppendCYC(dst []byte, cycles uint32) []byte {
	if cycles > 63 {
		cycles = 63
	}
	return append(dst, byte(cycles<<2|0x3))
}

// Parser iterates over the packets in a trace buffer.
type Parser struct {
	buf []byte
	pos int
}

// NewParser returns a parser over buf.
func NewParser(buf []byte) *Parser { return &Parser{buf: buf} }

// Pos returns the current byte offset.
func (p *Parser) Pos() int { return p.pos }

// Sync advances the parser to the next PSB boundary, discarding bytes
// before it. It reports whether a PSB was found. Decoders use this to
// begin decoding a wrapped ring buffer at a clean boundary.
func (p *Parser) Sync() bool {
	for i := p.pos; i+PSBSize <= len(p.buf); i++ {
		ok := true
		for j := 0; j < PSBSize; j += 2 {
			if p.buf[i+j] != hdrExt || p.buf[i+j+1] != ext2PSB {
				ok = false
				break
			}
		}
		if ok {
			p.pos = i
			return true
		}
	}
	p.pos = len(p.buf)
	return false
}

// Next parses the next packet. It returns ok=false at end of buffer and a
// non-nil error for a malformed or truncated packet.
func (p *Parser) Next() (pkt Packet, ok bool, err error) {
	if p.pos >= len(p.buf) {
		return Packet{}, false, nil
	}
	b := p.buf[p.pos]
	switch {
	case b == hdrPAD:
		p.pos++
		return Packet{Kind: PktPAD}, true, nil
	case b == hdrExt:
		return p.nextExt()
	case b == hdrTSC:
		v, err := p.payload(1, 7)
		if err != nil {
			return Packet{}, false, err
		}
		return Packet{Kind: PktTSC, Val: v}, true, nil
	case b == hdrMODE:
		v, err := p.payload(1, 1)
		if err != nil {
			return Packet{}, false, err
		}
		return Packet{Kind: PktMODE, Val: v}, true, nil
	case b == hdrTIP || b == hdrTIPPGE || b == hdrTIPPGD || b == hdrFUP:
		var kind PacketKind
		switch b {
		case hdrTIP:
			kind = PktTIP
		case hdrTIPPGE:
			kind = PktTIPPGE
		case hdrTIPPGD:
			kind = PktTIPPGD
		case hdrFUP:
			kind = PktFUP
		}
		v, err := p.payload(1, 6)
		if err != nil {
			return Packet{}, false, err
		}
		return Packet{Kind: kind, Val: v}, true, nil
	case b&0x3 == 0x3:
		p.pos++
		return Packet{Kind: PktCYC, Val: uint64(b >> 2)}, true, nil
	case b&0x1 == 0:
		// Short TNT: find the stop bit (highest set bit).
		stop := 7
		for stop > 0 && b&(1<<uint(stop)) == 0 {
			stop--
		}
		if stop < 2 {
			return Packet{}, false, fmt.Errorf("ipt: bad TNT byte %#02x at %d", b, p.pos)
		}
		n := stop - 1
		bits := (b >> 1) & ((1 << uint(n)) - 1)
		p.pos++
		return Packet{Kind: PktTNT, Bits: bits, Len: uint8(n)}, true, nil
	default:
		return Packet{}, false, fmt.Errorf("ipt: unknown packet header %#02x at %d", b, p.pos)
	}
}

// nextExt parses a two-byte-header (0x02-escaped) packet.
func (p *Parser) nextExt() (Packet, bool, error) {
	if p.pos+1 >= len(p.buf) {
		return Packet{}, false, fmt.Errorf("ipt: truncated extended packet at %d", p.pos)
	}
	switch p.buf[p.pos+1] {
	case ext2PSB:
		if p.pos+PSBSize > len(p.buf) {
			return Packet{}, false, fmt.Errorf("ipt: truncated PSB at %d", p.pos)
		}
		for j := 0; j < PSBSize; j += 2 {
			if p.buf[p.pos+j] != hdrExt || p.buf[p.pos+j+1] != ext2PSB {
				return Packet{}, false, fmt.Errorf("ipt: corrupt PSB at %d", p.pos)
			}
		}
		p.pos += PSBSize
		return Packet{Kind: PktPSB}, true, nil
	case ext2PSBEND:
		p.pos += 2
		return Packet{Kind: PktPSBEND}, true, nil
	case ext2PIP:
		v, err := p.payload(2, 6)
		if err != nil {
			return Packet{}, false, err
		}
		return Packet{Kind: PktPIP, Val: v}, true, nil
	case ext2PTW:
		v, err := p.payload(2, 8)
		if err != nil {
			return Packet{}, false, err
		}
		return Packet{Kind: PktPTW, Val: v}, true, nil
	default:
		return Packet{}, false, fmt.Errorf("ipt: unknown extended packet %#02x at %d", p.buf[p.pos+1], p.pos)
	}
}

// payload consumes hdr header bytes plus n little-endian payload bytes.
func (p *Parser) payload(hdr, n int) (uint64, error) {
	if p.pos+hdr+n > len(p.buf) {
		return 0, fmt.Errorf("ipt: truncated packet at %d", p.pos)
	}
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(p.buf[p.pos+hdr+i]) << (8 * uint(i))
	}
	p.pos += hdr + n
	return v, nil
}
