package ipt

import (
	"bytes"
	"testing"

	"exist/internal/binary"
	"exist/internal/simtime"
)

// syntheticEvents builds a deterministic mixed branch stream (TNT runs,
// indirect transfers, partial TNT tails) without needing a program walk.
func syntheticEvents(n int) []binary.BranchEvent {
	evs := make([]binary.BranchEvent, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range evs {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		ev := &evs[i]
		ev.From = 0x400000 + r%4096
		ev.To = 0x400000 + (r>>12)%4096
		if r%5 == 0 {
			if r%2 == 0 {
				ev.Kind = binary.TermIndirectCall
			} else {
				ev.Kind = binary.TermReturn
			}
		} else {
			ev.Kind = binary.TermCond
			ev.Taken = r%3 == 0
		}
	}
	return evs
}

// newBatchTestTracer builds an enabled tracer over the given chain.
func newBatchTestTracer(t *testing.T, out *ToPA, ctl uint64) *Tracer {
	t.Helper()
	tr := NewTracer(0)
	if err := tr.SetOutput(out); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCtl(0, ctl|CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestOnBranchBatchEquivalence feeds the same event stream through the
// per-event path and the batched staged-output path and requires identical
// trace bytes, Stats, status bits, and ToPA accounting — including when the
// stop-mode chain overflows mid-stream, where the stored/dropped split must
// land on the same byte.
func TestOnBranchBatchEquivalence(t *testing.T) {
	evs := syntheticEvents(20_000)
	cases := []struct {
		name  string
		sizes []int
		ring  bool
		ctl   uint64
		batch int
	}{
		{"ring-large", []int{1 << 20}, true, DefaultCtl(), 128},
		{"ring-small-wraps", []int{4096, 4096}, true, DefaultCtl(), 128},
		{"stop-overflows", []int{8192}, false, DefaultCtl(), 128},
		{"stop-overflows-multiregion", []int{4096, 2048, 1024}, false, DefaultCtl(), 64},
		{"stop-no-cyc", []int{8192}, false, DefaultCtl() &^ CtlCYCEn, 128},
		{"stop-tiny-batches", []int{8192}, false, DefaultCtl(), 7},
		{"stop-one-big-batch", []int{8192}, false, DefaultCtl(), len(evs)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := newBatchTestTracer(t, NewToPA(tc.sizes, tc.ring), tc.ctl)
			got := newBatchTestTracer(t, NewToPA(tc.sizes, tc.ring), tc.ctl)
			for i := range evs {
				ref.OnBranch(0, evs[i])
			}
			for i := 0; i < len(evs); i += tc.batch {
				j := i + tc.batch
				if j > len(evs) {
					j = len(evs)
				}
				got.OnBranchBatch(0, evs[i:j])
			}
			ref.Flush()
			got.Flush()
			if ref.Stats != got.Stats {
				t.Errorf("stats diverge:\n per-event %+v\n batched   %+v", ref.Stats, got.Stats)
			}
			if ref.Status() != got.Status() {
				t.Errorf("status = %#x, want %#x", got.Status(), ref.Status())
			}
			if ref.psbLeft != got.psbLeft {
				t.Errorf("psbLeft = %d, want %d", got.psbLeft, ref.psbLeft)
			}
			ro, go_ := ref.Output(), got.Output()
			if ro.Written() != go_.Written() || ro.Dropped() != go_.Dropped() ||
				ro.Stopped() != go_.Stopped() || ro.Wrapped() != go_.Wrapped() {
				t.Errorf("chain accounting diverges: per-event written=%d dropped=%d stopped=%v wrapped=%v, batched written=%d dropped=%d stopped=%v wrapped=%v",
					ro.Written(), ro.Dropped(), ro.Stopped(), ro.Wrapped(),
					go_.Written(), go_.Dropped(), go_.Stopped(), go_.Wrapped())
			}
			if !bytes.Equal(ro.Bytes(), go_.Bytes()) {
				t.Errorf("trace bytes diverge (len %d vs %d)", len(ro.Bytes()), len(go_.Bytes()))
			}
			if tc.ring && go_.Stopped() {
				t.Error("ring chain stopped")
			}
			if !tc.ring && !go_.Stopped() {
				t.Error("stop chain did not overflow; case exercises nothing")
			}
		})
	}
}

// TestOnBranchBatchInterleavedControl checks that batches interleaved with
// context switches and trace disables stay equivalent to the per-event
// path: staged state must not leak across control operations.
func TestOnBranchBatchInterleavedControl(t *testing.T) {
	evs := syntheticEvents(6_000)
	const cr3 = 0x5000
	build := func() *Tracer {
		tr := NewTracer(0)
		if err := tr.SetOutput(NewToPA([]int{1 << 16}, true)); err != nil {
			t.Fatal(err)
		}
		if err := tr.SetCR3Match(cr3); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteCtl(0, DefaultCtl()|CtlTraceEn); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ref, got := build(), build()
	drive := func(tr *Tracer, emit func(now simtime.Time, chunk []binary.BranchEvent)) {
		now := simtime.Time(0)
		for i := 0; i < len(evs); i += 500 {
			j := i + 500
			if j > len(evs) {
				j = len(evs)
			}
			switch (i / 500) % 3 {
			case 0:
				tr.ContextSwitch(now, cr3, evs[i].From) // filtered in
			case 1:
				tr.ContextSwitch(now, 0x9999, evs[i].From) // filtered out
			case 2:
				tr.ContextSwitch(now, cr3, evs[i].From)
			}
			emit(now, evs[i:j])
			now += 1000
		}
	}
	drive(ref, func(now simtime.Time, chunk []binary.BranchEvent) {
		for i := range chunk {
			ref.OnBranch(now, chunk[i])
		}
	})
	drive(got, func(now simtime.Time, chunk []binary.BranchEvent) {
		got.OnBranchBatch(now, chunk)
	})
	ref.Flush()
	got.Flush()
	if ref.Stats != got.Stats {
		t.Errorf("stats diverge:\n per-event %+v\n batched   %+v", ref.Stats, got.Stats)
	}
	if !bytes.Equal(ref.Output().Bytes(), got.Output().Bytes()) {
		t.Error("trace bytes diverge")
	}
	if got.Stats.FilteredEvents == 0 {
		t.Error("no events filtered; case exercises nothing")
	}
}

// TestOnBulkBranchesAcceptedBytes is the regression test for bulk-burst
// byte accounting: when the stop-mode chain fills mid-burst, Stats.Bytes
// must count only the accepted prefix (matching the chain's Written), not
// the whole burst, mirroring the proportional DroppedEvents attribution.
func TestOnBulkBranchesAcceptedBytes(t *testing.T) {
	tr := newBatchTestTracer(t, NewToPA([]int{4096}, false), DefaultCtl())
	header := tr.Stats.Bytes // PSB+ group and PGE from enabling
	written := tr.Output().Written()

	// A burst far larger than the remaining space: 30000 conditional +
	// 3000 indirect events.
	tr.OnBulkBranches(0, 30_000, 3_000)

	if !tr.Output().Stopped() {
		t.Fatal("chain should have stopped mid-burst")
	}
	acceptedChain := tr.Output().Written() - written
	acceptedStats := tr.Stats.Bytes - header
	if acceptedStats != acceptedChain {
		t.Errorf("Stats.Bytes counted %d burst bytes, chain accepted %d", acceptedStats, acceptedChain)
	}
	if tr.Stats.DroppedEvents == 0 {
		t.Error("expected proportional DroppedEvents attribution")
	}
	perInd := int64(8) // TIP + CYC under DefaultCtl
	total := (30_000+5)/6 + 3_000*perInd
	lost := total - acceptedChain
	wantDropped := (30_000 + 3_000) * lost / total
	if tr.Stats.DroppedEvents != wantDropped {
		t.Errorf("DroppedEvents = %d, want %d", tr.Stats.DroppedEvents, wantDropped)
	}

	// A second burst on a stopped chain is dropped whole and adds no bytes.
	before := tr.Stats
	tr.OnBulkBranches(0, 600, 60)
	if tr.Stats.Bytes != before.Bytes || tr.Stats.Packets != before.Packets {
		t.Error("stopped chain must accept no burst bytes or packets")
	}
	if tr.Stats.DroppedEvents != before.DroppedEvents+660 {
		t.Errorf("DroppedEvents = %d, want %d", tr.Stats.DroppedEvents, before.DroppedEvents+660)
	}
}

// TestWriteZerosEquivalence checks the zero-fill fast path against literal
// zero writes: identical bytes, counters, and status across region splits,
// ring wraps, and the stop transition — interleaved with real payload so
// run bookkeeping is exercised on both sides of the fill.
func TestWriteZerosEquivalence(t *testing.T) {
	shapes := []struct {
		name  string
		sizes []int
		ring  bool
	}{
		{"stop-multi", []int{300, 200, 100}, false},
		{"ring-multi", []int{256, 128}, true},
		{"stop-single", []int{1000}, false},
	}
	zeros := make([]byte, 1<<13)
	payload := []byte{0x02, 0x82, 0x02, 0x82, 0x99, 0x01} // arbitrary marker bytes
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			ref := NewToPA(sh.sizes, sh.ring)
			got := NewToPA(sh.sizes, sh.ring)
			steps := []int64{17, 1, 250, 4096, 0, 333, 77, 5000}
			for si, n := range steps {
				okRef := ref.Write(zeros[:n])
				okGot := got.WriteZeros(n)
				if okRef != okGot {
					t.Fatalf("step %d: Write=%v WriteZeros=%v", si, okRef, okGot)
				}
				ref.Write(payload)
				got.Write(payload)
			}
			if ref.Written() != got.Written() || ref.Dropped() != got.Dropped() ||
				ref.Used() != got.Used() || ref.Stopped() != got.Stopped() || ref.Wrapped() != got.Wrapped() {
				t.Fatalf("counters diverge: ref written=%d dropped=%d used=%d stopped=%v wrapped=%v, got written=%d dropped=%d used=%d stopped=%v wrapped=%v",
					ref.Written(), ref.Dropped(), ref.Used(), ref.Stopped(), ref.Wrapped(),
					got.Written(), got.Dropped(), got.Used(), got.Stopped(), got.Wrapped())
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatal("stored bytes diverge")
			}
		})
	}
}
