// Package ipt is a register-accurate software model of Intel Processor
// Trace (IPT): the control and status MSRs, the trace packet formats, the
// Table-of-Physical-Addresses (ToPA) output mechanism, and a per-core
// tracer engine that turns branch events into packet bytes.
//
// The model preserves the two properties EXIST's design hinges on:
//
//  1. Control operations are only legal with tracing disabled — changing
//     any configuration bit or the output buffer while TraceEn=1 faults,
//     so every control action costs disable + modify + enable (§2.3 of the
//     paper). The tracer enforces this and the kernel layer charges the
//     MSR costs.
//  2. Packet encodings are byte-faithful (TNT packs up to six conditional
//     branches per byte, TIPs carry compressed target IPs, PSBs cost 16
//     bytes), so buffer-occupancy and space-overhead results (Table 4)
//     follow from the same arithmetic as on real hardware.
package ipt

import "fmt"

// Control MSR (IA32_RTIT_CTL) bit positions, as specified in Intel SDM
// Vol. 3, chapter 33.
const (
	CtlTraceEn   uint64 = 1 << 0  // master trace enable
	CtlCYCEn     uint64 = 1 << 1  // cycle-accurate packets
	CtlOS        uint64 = 1 << 2  // trace CPL0
	CtlUser      uint64 = 1 << 3  // trace CPL>0
	CtlCR3Filter uint64 = 1 << 7  // filter on IA32_RTIT_CR3_MATCH
	CtlToPA      uint64 = 1 << 8  // ToPA output mechanism
	CtlMTCEn     uint64 = 1 << 9  // mini timestamp counter packets
	CtlTSCEn     uint64 = 1 << 10 // TSC packets
	CtlDisRETC   uint64 = 1 << 11 // disable return compression
	CtlPTWEn     uint64 = 1 << 12 // PTWRITE packets (data-flow extension, §6.1)
	CtlBranchEn  uint64 = 1 << 13 // change-of-flow packets (TNT/TIP)
)

// Status MSR (IA32_RTIT_STATUS) bit positions.
const (
	StatusFilterEn  uint64 = 1 << 0 // IP filtering active
	StatusContextEn uint64 = 1 << 1 // current context is being traced
	StatusTriggerEn uint64 = 1 << 3 // tracing is active
	StatusError     uint64 = 1 << 4 // operational error latched
	StatusStopped   uint64 = 1 << 5 // ToPA STOP region filled
)

// ErrTraceActive is returned when software attempts a control operation
// that the hardware only permits with TraceEn clear. This restriction is
// the root cause of the per-context-switch overhead of conventional
// designs: repointing a buffer or changing a filter costs a full
// disable/modify/enable sequence.
type ErrTraceActive struct {
	// Op names the rejected operation.
	Op string
}

// Error implements the error interface.
func (e ErrTraceActive) Error() string {
	return fmt.Sprintf("ipt: %s requires TraceEn=0 (control with tracing active faults)", e.Op)
}

// DefaultCtl returns the control value EXIST programs (§4 of the paper):
// branch tracing with cycle-accurate packets, TSC on, ToPA output,
// CR3 filtering, user+OS, return compression disabled for robust decode.
func DefaultCtl() uint64 {
	return CtlBranchEn | CtlCYCEn | CtlTSCEn | CtlToPA | CtlCR3Filter |
		CtlOS | CtlUser | CtlDisRETC
}
