package ipt

import (
	"math"
	"math/bits"
	"sync"
)

// Payload backing arrays are drawn from per-size-class pools so that
// repeated tracing windows (sweep cells, benchmarks) reuse buffers instead
// of re-allocating them. Pool i holds *[]byte of capacity exactly 1<<i; a
// request is rounded up to the next power of two.
var regionPools [33]sync.Pool

// getRegion returns an empty buffer whose capacity is the smallest power of
// two >= size.
func getRegion(size int) []byte {
	c := bits.Len(uint(size - 1))
	if c >= len(regionPools) {
		return make([]byte, 0, size)
	}
	if p, _ := regionPools[c].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1<<c)
}

// putRegion returns a buffer obtained from getRegion to its pool. Buffers
// with non-power-of-two capacity (oversize requests) are dropped.
func putRegion(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || bits.Len(uint(c))-1 >= len(regionPools) {
		return
	}
	b = b[:0]
	regionPools[bits.Len(uint(c))-1].Put(&b)
}

// run is one stretch of materialized payload inside a region: n payload
// bytes starting at payload[pos] that live at byte offset off of region
// reg. Region bytes outside every run are zero (PAD).
type run struct {
	reg, off, pos, n int32
}

// ToPA models the Table of Physical Addresses output mechanism: a chain of
// variable-sized memory regions that the tracer fills in order. Two end
// behaviours exist, selected by the STOP bit of the last table entry:
//
//   - Stop mode (EXIST's "compulsory tracing" policy, §3.3): when the last
//     region fills, the hardware sets the Stopped status and drops further
//     output. This keeps the data closest to the anomaly that triggered
//     tracing and caps memory use.
//   - Ring mode (the REPT-style policy, kept for the ablation benchmarks):
//     output wraps to the first region, overwriting the oldest data.
//
// Storage is logical: region contents are an implicit zero (PAD) background
// with real packet bytes recorded as sparse runs over one shared payload
// buffer. Zero-fill writes (aggregate branch bursts) only advance counters,
// and a wrapped ring discards overwritten payload without ever having
// materialized it; Bytes assembles the physical layout once, at read-out.
type ToPA struct {
	// sizes holds each region's configured size; vlens the logical number
	// of bytes currently stored in each.
	sizes    []int
	vlens    []int
	payload  []byte
	runs     []run
	cur      int
	ring     bool
	stopped  bool
	wrapped  bool
	released bool
	written  int64
	dropped  int64
}

// NewToPA builds an output chain with the given region sizes in bytes. If
// ring is false the final entry carries the STOP bit.
func NewToPA(sizes []int, ring bool) *ToPA {
	if len(sizes) == 0 {
		panic("ipt: ToPA needs at least one region")
	}
	t := &ToPA{ring: ring}
	for _, s := range sizes {
		if s <= 0 {
			panic("ipt: ToPA region size must be positive")
		}
		t.sizes = append(t.sizes, s)
	}
	t.vlens = make([]int, len(t.sizes))
	return t
}

// NewSingleToPA builds a one-region stop-mode chain, the common EXIST
// per-core configuration.
func NewSingleToPA(size int) *ToPA { return NewToPA([]int{size}, false) }

// Capacity returns the total size of all regions.
func (t *ToPA) Capacity() int64 {
	var c int64
	for _, s := range t.sizes {
		c += int64(s)
	}
	return c
}

// Used returns the number of valid bytes currently stored.
func (t *ToPA) Used() int64 {
	var u int64
	for _, v := range t.vlens {
		u += int64(v)
	}
	return u
}

// Written returns the total bytes ever accepted (>= Used in ring mode).
func (t *ToPA) Written() int64 { return t.written }

// Dropped returns the bytes discarded after the STOP region filled.
func (t *ToPA) Dropped() int64 { return t.dropped }

// Stopped reports whether the STOP region has filled.
func (t *ToPA) Stopped() bool { return t.stopped }

// Remaining returns how many more bytes the chain will accept before it
// stops. Ring-mode chains never stop and report math.MaxInt64. The staged
// tracer output path uses this to pre-compute, without issuing a write per
// packet, exactly which packet the per-packet path's stop would land on.
func (t *ToPA) Remaining() int64 {
	if t.ring {
		return math.MaxInt64
	}
	if t.stopped {
		return 0
	}
	return t.Capacity() - t.Used()
}

// Wrapped reports whether ring-mode output has overwritten old data.
func (t *ToPA) Wrapped() bool { return t.wrapped }

// Write appends p to the output chain, splitting across regions as
// needed. It reports whether all bytes were stored; in stop mode, bytes
// beyond the STOP region are counted as dropped and false is returned.
func (t *ToPA) Write(p []byte) bool {
	for len(p) > 0 {
		space, ok := t.space()
		if !ok {
			t.dropped += int64(len(p))
			return false
		}
		n := len(p)
		if n > space {
			n = space
		}
		off, pos := t.vlens[t.cur], len(t.payload)
		t.ensurePayload(n)
		t.payload = append(t.payload, p[:n]...)
		t.addRun(off, pos, n)
		t.vlens[t.cur] += n
		t.written += int64(n)
		p = p[n:]
	}
	return true
}

// WriteZeros appends n zero (PAD) bytes to the output chain — the
// aggregate-burst fast path. The chain state afterwards is identical to
// Write of n zero bytes, but nothing is materialized: only the counters
// move.
func (t *ToPA) WriteZeros(n int64) bool {
	for n > 0 {
		space, ok := t.space()
		if !ok {
			t.dropped += n
			return false
		}
		k := n
		if k > int64(space) {
			k = int64(space)
		}
		t.vlens[t.cur] += int(k)
		t.written += k
		n -= k
	}
	return true
}

// space returns the writable bytes left in the current region, advancing
// the chain (wrapping or stopping) when it is full. ok is false once the
// chain has stopped.
func (t *ToPA) space() (int, bool) {
	for {
		if t.stopped {
			return 0, false
		}
		if s := t.sizes[t.cur] - t.vlens[t.cur]; s > 0 {
			return s, true
		}
		t.advance()
	}
}

// ensurePayload grows the payload buffer (through the buffer pools) to fit
// n more bytes.
func (t *ToPA) ensurePayload(n int) {
	need := len(t.payload) + n
	if need <= cap(t.payload) {
		return
	}
	newCap := 2 * cap(t.payload)
	if newCap < need {
		newCap = need
	}
	if newCap < 4096 {
		newCap = 4096
	}
	nb := getRegion(newCap)[:len(t.payload)]
	copy(nb, t.payload)
	putRegion(t.payload)
	t.payload = nb
}

// addRun records n payload bytes at the current region's write offset,
// extending the previous run when contiguous (the common case: packet
// writes with no PAD fill between them).
func (t *ToPA) addRun(off, pos, n int) {
	if k := len(t.runs); k > 0 {
		r := &t.runs[k-1]
		if int(r.reg) == t.cur && int(r.off)+int(r.n) == off && int(r.pos)+int(r.n) == pos {
			r.n += int32(n)
			return
		}
	}
	t.runs = append(t.runs, run{reg: int32(t.cur), off: int32(off), pos: int32(pos), n: int32(n)})
}

// advance moves to the next region, wrapping or stopping at the end of the
// chain.
func (t *ToPA) advance() {
	if t.cur+1 < len(t.sizes) {
		t.cur++
		return
	}
	if t.ring {
		t.wrapped = true
		t.cur = 0
		for i := range t.vlens {
			t.vlens[i] = 0
		}
		t.runs = t.runs[:0]
		t.payload = t.payload[:0]
		return
	}
	t.stopped = true
}

// Bytes returns the stored trace in write order: the regions' logical
// contents concatenated, zero background materialized and runs copied into
// place. In a wrapped ring the result starts mid-stream; decoders must
// Sync to the next PSB.
func (t *ToPA) Bytes() []byte {
	base := make([]int64, len(t.vlens))
	var total int64
	for i, v := range t.vlens {
		base[i] = total
		total += int64(v)
	}
	out := make([]byte, total)
	for _, r := range t.runs {
		copy(out[base[r.reg]+int64(r.off):], t.payload[r.pos:r.pos+r.n])
	}
	return out
}

// Reset clears all regions and status for reuse in a new tracing window.
func (t *ToPA) Reset() {
	for i := range t.vlens {
		t.vlens[i] = 0
	}
	t.runs = t.runs[:0]
	t.payload = t.payload[:0]
	t.cur = 0
	t.stopped, t.wrapped = false, false
	t.written, t.dropped = 0, 0
}

// Release returns the payload backing array to the buffer pools. The chain
// must not be written after release; call it once the trace has been copied
// out with Bytes. Releasing twice is a no-op.
func (t *ToPA) Release() {
	if t == nil || t.released {
		return
	}
	t.released = true
	putRegion(t.payload)
	t.payload = nil
	t.runs = nil
}
