package ipt

import (
	"math/bits"
	"sync"
)

// Region backing arrays are drawn from per-size-class pools so that
// repeated tracing windows (sweep cells, benchmarks) reuse multi-megabyte
// buffers instead of re-allocating them. Pool i holds *[]byte of capacity
// exactly 1<<i; a request is rounded up to the next power of two.
var regionPools [33]sync.Pool

// getRegion returns an empty buffer whose capacity is the smallest power of
// two >= size.
func getRegion(size int) []byte {
	c := bits.Len(uint(size - 1))
	if c >= len(regionPools) {
		return make([]byte, 0, size)
	}
	if p, _ := regionPools[c].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1<<c)
}

// putRegion returns a buffer obtained from getRegion to its pool. Buffers
// with non-power-of-two capacity (oversize requests) are dropped.
func putRegion(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || bits.Len(uint(c))-1 >= len(regionPools) {
		return
	}
	b = b[:0]
	regionPools[bits.Len(uint(c))-1].Put(&b)
}

// ToPA models the Table of Physical Addresses output mechanism: a chain of
// variable-sized memory regions that the tracer fills in order. Two end
// behaviours exist, selected by the STOP bit of the last table entry:
//
//   - Stop mode (EXIST's "compulsory tracing" policy, §3.3): when the last
//     region fills, the hardware sets the Stopped status and drops further
//     output. This keeps the data closest to the anomaly that triggered
//     tracing and caps memory use.
//   - Ring mode (the REPT-style policy, kept for the ablation benchmarks):
//     output wraps to the first region, overwriting the oldest data.
type ToPA struct {
	regions [][]byte
	// sizes holds each region's configured size. Pooled backing arrays
	// may have more capacity than requested, so usable space is tracked
	// against sizes, never cap.
	sizes    []int
	cur      int
	ring     bool
	stopped  bool
	wrapped  bool
	released bool
	written  int64
	dropped  int64
}

// NewToPA builds an output chain with the given region sizes in bytes. If
// ring is false the final entry carries the STOP bit.
func NewToPA(sizes []int, ring bool) *ToPA {
	if len(sizes) == 0 {
		panic("ipt: ToPA needs at least one region")
	}
	t := &ToPA{ring: ring}
	for _, s := range sizes {
		if s <= 0 {
			panic("ipt: ToPA region size must be positive")
		}
		t.regions = append(t.regions, getRegion(s))
		t.sizes = append(t.sizes, s)
	}
	return t
}

// NewSingleToPA builds a one-region stop-mode chain, the common EXIST
// per-core configuration.
func NewSingleToPA(size int) *ToPA { return NewToPA([]int{size}, false) }

// Capacity returns the total size of all regions.
func (t *ToPA) Capacity() int64 {
	var c int64
	for _, s := range t.sizes {
		c += int64(s)
	}
	return c
}

// Used returns the number of valid bytes currently stored.
func (t *ToPA) Used() int64 {
	var u int64
	for _, r := range t.regions {
		u += int64(len(r))
	}
	return u
}

// Written returns the total bytes ever accepted (>= Used in ring mode).
func (t *ToPA) Written() int64 { return t.written }

// Dropped returns the bytes discarded after the STOP region filled.
func (t *ToPA) Dropped() int64 { return t.dropped }

// Stopped reports whether the STOP region has filled.
func (t *ToPA) Stopped() bool { return t.stopped }

// Wrapped reports whether ring-mode output has overwritten old data.
func (t *ToPA) Wrapped() bool { return t.wrapped }

// Write appends p to the output chain, splitting across regions as
// needed. It reports whether all bytes were stored; in stop mode, bytes
// beyond the STOP region are counted as dropped and false is returned.
func (t *ToPA) Write(p []byte) bool {
	for len(p) > 0 {
		if t.stopped {
			t.dropped += int64(len(p))
			return false
		}
		r := t.regions[t.cur]
		space := t.sizes[t.cur] - len(r)
		if space == 0 {
			if !t.advance() {
				continue // stopped; loop records the drop
			}
			r = t.regions[t.cur]
			space = t.sizes[t.cur] - len(r)
		}
		n := len(p)
		if n > space {
			n = space
		}
		t.regions[t.cur] = append(r, p[:n]...)
		t.written += int64(n)
		p = p[n:]
	}
	return true
}

// advance moves to the next region, wrapping or stopping at the end of the
// chain. It reports whether writing can continue.
func (t *ToPA) advance() bool {
	if t.cur+1 < len(t.regions) {
		t.cur++
		return true
	}
	if t.ring {
		t.wrapped = true
		t.cur = 0
		for i := range t.regions {
			t.regions[i] = t.regions[i][:0]
		}
		return true
	}
	t.stopped = true
	return false
}

// Bytes returns the stored trace in write order. In a wrapped ring the
// result starts mid-stream; decoders must Sync to the next PSB.
func (t *ToPA) Bytes() []byte {
	out := make([]byte, 0, t.Used())
	for _, r := range t.regions {
		out = append(out, r...)
	}
	return out
}

// Reset clears all regions and status for reuse in a new tracing window.
func (t *ToPA) Reset() {
	for i := range t.regions {
		t.regions[i] = t.regions[i][:0]
	}
	t.cur = 0
	t.stopped, t.wrapped = false, false
	t.written, t.dropped = 0, 0
}

// Release returns the region backing arrays to the buffer pools. The chain
// must not be written after release; call it once the trace has been copied
// out with Bytes. Releasing twice is a no-op.
func (t *ToPA) Release() {
	if t == nil || t.released {
		return
	}
	t.released = true
	for i, r := range t.regions {
		putRegion(r)
		t.regions[i] = nil
	}
	t.regions = nil
}
