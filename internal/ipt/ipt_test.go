package ipt

import (
	"testing"
	"testing/quick"

	"exist/internal/binary"
	"exist/internal/simtime"
)

func TestPacketRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendPSB(buf)
	buf = AppendTSC(buf, 123456789)
	buf = AppendPIP(buf, 0x1234)
	buf = AppendMODE(buf, 1)
	buf = AppendPSBEND(buf)
	buf = AppendTNT(buf, 0b101, 3)
	buf = AppendCYC(buf, 17)
	buf = AppendTIP(buf, PktTIP, 0x400abc)
	buf = AppendTIP(buf, PktTIPPGE, 0x400100)
	buf = AppendTIP(buf, PktTIPPGD, 0x400200)
	buf = AppendTIP(buf, PktFUP, 0x400300)
	buf = append(buf, 0x00) // PAD

	want := []Packet{
		{Kind: PktPSB},
		{Kind: PktTSC, Val: 123456789},
		{Kind: PktPIP, Val: 0x1234},
		{Kind: PktMODE, Val: 1},
		{Kind: PktPSBEND},
		{Kind: PktTNT, Bits: 0b101, Len: 3},
		{Kind: PktCYC, Val: 17},
		{Kind: PktTIP, Val: 0x400abc},
		{Kind: PktTIPPGE, Val: 0x400100},
		{Kind: PktTIPPGD, Val: 0x400200},
		{Kind: PktFUP, Val: 0x400300},
		{Kind: PktPAD},
	}
	p := NewParser(buf)
	for i, w := range want {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("packet %d: ok=%v err=%v", i, ok, err)
		}
		if pkt != w {
			t.Fatalf("packet %d = %+v, want %+v", i, pkt, w)
		}
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("expected end of buffer")
	}
}

func TestTNTEncoding(t *testing.T) {
	// Property: any 1..6 bits round-trip through a short TNT byte.
	f := func(bits uint8, n uint8) bool {
		k := int(n%6) + 1
		bits &= (1 << uint(k)) - 1
		buf := AppendTNT(nil, bits, k)
		if len(buf) != 1 {
			return false
		}
		p := NewParser(buf)
		pkt, ok, err := p.Next()
		return err == nil && ok && pkt.Kind == PktTNT && pkt.Bits == bits && int(pkt.Len) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTNTBitAccessor(t *testing.T) {
	pkt := Packet{Kind: PktTNT, Bits: 0b101, Len: 3}
	want := []bool{true, false, true}
	for i, w := range want {
		if pkt.TNTBit(i) != w {
			t.Fatalf("TNTBit(%d) = %v, want %v", i, pkt.TNTBit(i), w)
		}
	}
}

func TestTSC56BitPayload(t *testing.T) {
	v := uint64(0x00ffeeddccbbaa99)
	buf := AppendTSC(nil, v)
	p := NewParser(buf)
	pkt, ok, err := p.Next()
	if err != nil || !ok || pkt.Val != v&((1<<56)-1) {
		t.Fatalf("TSC round trip got %#x ok=%v err=%v", pkt.Val, ok, err)
	}
}

func TestParserSync(t *testing.T) {
	var buf []byte
	buf = append(buf, 0x37, 0x99) // garbage resembling a torn packet
	buf = AppendPSB(buf)
	buf = AppendTSC(buf, 42)
	p := NewParser(buf)
	if !p.Sync() {
		t.Fatal("Sync failed to find PSB")
	}
	pkt, ok, err := p.Next()
	if err != nil || !ok || pkt.Kind != PktPSB {
		t.Fatalf("after sync got %+v ok=%v err=%v", pkt, ok, err)
	}
}

func TestParserSyncNoPSB(t *testing.T) {
	p := NewParser([]byte{1, 2, 3, 4})
	if p.Sync() {
		t.Fatal("Sync found a PSB in garbage")
	}
}

func TestParserTruncated(t *testing.T) {
	buf := AppendTSC(nil, 42)
	p := NewParser(buf[:3])
	if _, _, err := p.Next(); err == nil {
		t.Fatal("expected error for truncated TSC")
	}
}

func TestToPAStopMode(t *testing.T) {
	topa := NewToPA([]int{8, 8}, false)
	if topa.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", topa.Capacity())
	}
	if !topa.Write(make([]byte, 10)) {
		t.Fatal("write within capacity failed")
	}
	if topa.Used() != 10 {
		t.Fatalf("used = %d, want 10", topa.Used())
	}
	if topa.Write(make([]byte, 10)) {
		t.Fatal("write past capacity should report drop")
	}
	if !topa.Stopped() {
		t.Fatal("ToPA should be stopped after STOP region filled")
	}
	if topa.Used() != 16 {
		t.Fatalf("used = %d, want 16 (filled to capacity)", topa.Used())
	}
	if topa.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", topa.Dropped())
	}
	// Once stopped, everything is dropped.
	topa.Write([]byte{1})
	if topa.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", topa.Dropped())
	}
}

func TestToPARingMode(t *testing.T) {
	topa := NewToPA([]int{8}, true)
	for i := 0; i < 5; i++ {
		if !topa.Write(make([]byte, 6)) {
			t.Fatal("ring write failed")
		}
	}
	if topa.Stopped() {
		t.Fatal("ring buffer must never stop")
	}
	if !topa.Wrapped() {
		t.Fatal("ring buffer should have wrapped")
	}
	if topa.Written() != 30 {
		t.Fatalf("written = %d, want 30", topa.Written())
	}
	if topa.Used() > topa.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", topa.Used(), topa.Capacity())
	}
}

func TestToPAReset(t *testing.T) {
	topa := NewSingleToPA(4)
	topa.Write(make([]byte, 10))
	topa.Reset()
	if topa.Stopped() || topa.Used() != 0 || topa.Dropped() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if !topa.Write(make([]byte, 3)) {
		t.Fatal("write after reset failed")
	}
}

// tracerHarness builds an enabled tracer filtered to cr3 0x77 with a
// generously sized buffer.
func tracerHarness(t *testing.T, bufSize int) *Tracer {
	t.Helper()
	tr := NewTracer(0)
	if err := tr.SetOutput(NewSingleToPA(bufSize)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(0x77); err != nil {
		t.Fatal(err)
	}
	tr.ContextSwitch(0, 0x77, 0x400000)
	if err := tr.WriteCtl(0, DefaultCtl()|CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerEnableEmitsHeader(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	buf := tr.Output().Bytes()
	p := NewParser(buf)
	kinds := []PacketKind{}
	for {
		pkt, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		kinds = append(kinds, pkt.Kind)
	}
	want := []PacketKind{PktPSB, PktTSC, PktPIP, PktMODE, PktPSBEND, PktTIPPGE}
	if len(kinds) != len(want) {
		t.Fatalf("header kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("header kinds = %v, want %v", kinds, want)
		}
	}
}

func TestTracerIllegalControl(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	// Reconfiguring while enabled faults.
	if err := tr.WriteCtl(0, tr.Ctl()&^CtlCYCEn); err == nil {
		t.Fatal("modifying ctl with TraceEn set must fault")
	}
	if tr.Status()&StatusError == 0 {
		t.Fatal("error status not latched")
	}
	if err := tr.SetOutput(NewSingleToPA(8)); err == nil {
		t.Fatal("SetOutput with TraceEn set must fault")
	}
	if err := tr.SetCR3Match(0x99); err == nil {
		t.Fatal("SetCR3Match with TraceEn set must fault")
	}
	// The legal sequence: disable, modify, enable.
	if err := tr.WriteCtl(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(0x99); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCtl(2, DefaultCtl()|CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Enables != 2 || tr.Stats.Disables != 1 {
		t.Fatalf("enable/disable counts = %d/%d, want 2/1", tr.Stats.Enables, tr.Stats.Disables)
	}
}

func TestTracerEnableWithoutOutputFaults(t *testing.T) {
	tr := NewTracer(1)
	if err := tr.WriteCtl(0, CtlTraceEn); err == nil {
		t.Fatal("enable without output must fault")
	}
}

func condEvent(taken bool) binary.BranchEvent {
	return binary.BranchEvent{Kind: binary.TermCond, Taken: taken, From: 0x400010, To: 0x400020}
}

func TestTracerTNTPacking(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	start := tr.Stats.Bytes
	// Six conditional branches must produce exactly one TNT byte.
	pattern := []bool{true, false, true, true, false, true}
	for _, taken := range pattern {
		tr.OnBranch(10, condEvent(taken))
	}
	if tr.Stats.TNTs != 1 {
		t.Fatalf("TNT packets = %d, want 1", tr.Stats.TNTs)
	}
	if got := tr.Stats.Bytes - start; got != 1 {
		t.Fatalf("six conditionals cost %d bytes, want 1", got)
	}
	// And decode back to the same bits.
	p := NewParser(tr.Output().Bytes())
	var tnt Packet
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		if pkt.Kind == PktTNT {
			tnt = pkt
		}
	}
	if int(tnt.Len) != 6 {
		t.Fatalf("decoded TNT len = %d, want 6", tnt.Len)
	}
	for i, want := range pattern {
		if tnt.TNTBit(i) != want {
			t.Fatalf("TNT bit %d = %v, want %v", i, tnt.TNTBit(i), want)
		}
	}
}

func TestTracerIndirectFlushesTNT(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	tr.OnBranch(10, condEvent(true))
	tr.OnBranch(11, binary.BranchEvent{Kind: binary.TermIndirectJump, From: 0x400010, To: 0x400abc})
	p := NewParser(tr.Output().Bytes())
	var kinds []PacketKind
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		kinds = append(kinds, pkt.Kind)
	}
	// ... header, then TNT (flushed), CYC, TIP.
	n := len(kinds)
	if n < 3 || kinds[n-3] != PktTNT || kinds[n-2] != PktCYC || kinds[n-1] != PktTIP {
		t.Fatalf("tail kinds = %v, want [... TNT CYC TIP]", kinds)
	}
}

func TestTracerCR3Filtering(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	// Switch to a non-matching context: branches must be filtered for free.
	tr.ContextSwitch(20, 0x55, 0x500000)
	if tr.ContextOn() {
		t.Fatal("context should be filtered out")
	}
	before := tr.Stats.Bytes
	for i := 0; i < 100; i++ {
		tr.OnBranch(21, condEvent(true))
	}
	if tr.Stats.Bytes != before {
		t.Fatal("filtered branches produced output")
	}
	if tr.Stats.FilteredEvents != 100 {
		t.Fatalf("filtered events = %d, want 100", tr.Stats.FilteredEvents)
	}
	// Switch back in: a PIP + TSC + TIP.PGE group must appear.
	tr.ContextSwitch(30, 0x77, 0x400444)
	if !tr.ContextOn() {
		t.Fatal("context should be traced again")
	}
	p := NewParser(tr.Output().Bytes())
	sawPGEAt := uint64(0)
	var lastTSC uint64
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		switch pkt.Kind {
		case PktTSC:
			lastTSC = pkt.Val
		case PktTIPPGE:
			sawPGEAt = pkt.Val
		}
	}
	if sawPGEAt != 0x400444 {
		t.Fatalf("TIP.PGE at %#x, want 0x400444", sawPGEAt)
	}
	if lastTSC != 30 {
		t.Fatalf("TSC before PGE = %d, want 30", lastTSC)
	}
}

func TestTracerCompulsoryDrop(t *testing.T) {
	tr := tracerHarness(t, 64) // tiny buffer: header almost fills it
	for i := 0; i < 1000; i++ {
		tr.OnBranch(simtimeAt(i), binary.BranchEvent{Kind: binary.TermIndirectJump, To: 0x400010})
	}
	if !tr.Output().Stopped() {
		t.Fatal("tiny buffer should have stopped")
	}
	if tr.Status()&StatusStopped == 0 {
		t.Fatal("Stopped status not latched")
	}
	if tr.Stats.DroppedEvents == 0 {
		t.Fatal("dropped events not counted")
	}
}

func TestTracerDisableFlushesAndPGD(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	tr.OnBranch(10, condEvent(true)) // leaves one pending TNT bit
	if err := tr.WriteCtl(11, 0); err != nil {
		t.Fatal(err)
	}
	p := NewParser(tr.Output().Bytes())
	var kinds []PacketKind
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		kinds = append(kinds, pkt.Kind)
	}
	n := len(kinds)
	if n < 2 || kinds[n-2] != PktTNT || kinds[n-1] != PktTIPPGD {
		t.Fatalf("tail kinds = %v, want [... TNT TIP.PGD]", kinds)
	}
	if tr.Enabled() {
		t.Fatal("tracer still enabled")
	}
}

func TestTracerPeriodicPSB(t *testing.T) {
	tr := tracerHarness(t, 1<<20)
	for i := 0; i < 2000; i++ {
		tr.OnBranch(simtimeAt(i), binary.BranchEvent{Kind: binary.TermIndirectJump, To: 0x400010})
	}
	if tr.Stats.PSBs < 2 {
		t.Fatalf("expected periodic PSBs, got %d", tr.Stats.PSBs)
	}
	// The whole stream must still parse.
	p := NewParser(tr.Output().Bytes())
	for {
		_, ok, err := p.Next()
		if err != nil {
			t.Fatalf("stream with periodic PSBs failed to parse: %v", err)
		}
		if !ok {
			break
		}
	}
}

func simtimeAt(i int) simtime.Time { return simtime.Time(i) }

func TestPTWriteRoundTrip(t *testing.T) {
	buf := AppendPTW(nil, 0xdeadbeefcafe0123)
	p := NewParser(buf)
	pkt, ok, err := p.Next()
	if err != nil || !ok || pkt.Kind != PktPTW || pkt.Val != 0xdeadbeefcafe0123 {
		t.Fatalf("PTW round trip: %+v ok=%v err=%v", pkt, ok, err)
	}
}

func TestTracerPTWrite(t *testing.T) {
	tr := NewTracer(0)
	if err := tr.SetOutput(NewSingleToPA(1 << 16)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(0x77); err != nil {
		t.Fatal(err)
	}
	tr.ContextSwitch(0, 0x77, 0x400000)
	// Without PTWEn nothing is emitted.
	if err := tr.WriteCtl(0, DefaultCtl()|CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats.Bytes
	tr.PTWrite(1, 42)
	if tr.Stats.Bytes != before {
		t.Fatal("PTWrite emitted without PTWEn")
	}
	if err := tr.WriteCtl(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCtl(3, DefaultCtl()|CtlPTWEn|CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	tr.PTWrite(4, 42)
	// A filtered context must not emit.
	tr.ContextSwitch(5, 0x55, 0x500000)
	tr.PTWrite(6, 43)
	if tr.Stats.FilteredEvents == 0 {
		t.Fatal("filtered PTWrite not counted")
	}
	var vals []uint64
	p := NewParser(tr.Output().Bytes())
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		if pkt.Kind == PktPTW {
			vals = append(vals, pkt.Val)
		}
	}
	if len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("PTW values = %v, want [42]", vals)
	}
}

func TestTracerSwapOutputHot(t *testing.T) {
	tr := tracerHarness(t, 1<<16)
	tr.OnBranch(1, condEvent(true)) // pending TNT bit
	old := tr.Output()
	fresh := NewSingleToPA(1 << 16)
	tr.SwapOutputHot(2, fresh)
	if tr.Output() != fresh {
		t.Fatal("output not swapped")
	}
	if !tr.Enabled() {
		t.Fatal("hot swap must not disable tracing")
	}
	// The pending bit must have been flushed to the OLD chain.
	p := NewParser(old.Bytes())
	sawTNT := false
	for {
		pkt, ok, err := p.Next()
		if err != nil || !ok {
			break
		}
		if pkt.Kind == PktTNT {
			sawTNT = true
		}
	}
	if !sawTNT {
		t.Fatal("pending TNT not flushed to old chain")
	}
	// The new chain starts with a PSB header so decoders can sync.
	p2 := NewParser(fresh.Bytes())
	pkt, ok, err := p2.Next()
	if err != nil || !ok || pkt.Kind != PktPSB {
		t.Fatalf("new chain does not start with PSB: %+v", pkt)
	}
}
