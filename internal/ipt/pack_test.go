package ipt

import (
	"bytes"
	"math/rand"
	"testing"
)

// synthStream builds a representative packet stream: PSB groups with
// timestamps, then indirect-branch bursts (TNT + CYC + TIP) over a small
// set of targets, interleaved PGE/PGD/PIP and trailing PAD runs.
func synthStream(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	targets := make([]uint64, 32)
	for i := range targets {
		targets[i] = 0x400000 + uint64(rng.Intn(1<<20))
	}
	var b []byte
	b = AppendPSB(b)
	b = AppendTSC(b, 1000)
	b = AppendPIP(b, 0x1234000)
	b = AppendPSBEND(b)
	tsc := uint64(1000)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			b = AppendPSB(b)
			tsc += uint64(rng.Intn(5000))
			b = AppendTSC(b, tsc)
			b = AppendPSBEND(b)
		case 1:
			b = AppendTIP(b, PktTIPPGE, targets[rng.Intn(len(targets))])
		case 2:
			b = AppendTIP(b, PktTIPPGD, targets[rng.Intn(len(targets))])
		case 3:
			b = AppendMODE(b, byte(rng.Intn(4)))
		case 4:
			b = AppendPTW(b, uint64(rng.Intn(1<<30)))
		case 5:
			for j := rng.Intn(4); j > 0; j-- {
				b = append(b, hdrPAD)
			}
		default:
			n := 1 + rng.Intn(6)
			b = AppendTNT(b, uint8(rng.Intn(1<<n)), n)
			b = AppendCYC(b, uint32(rng.Intn(64)))
			b = AppendTIP(b, PktTIP, targets[rng.Intn(len(targets))])
		}
	}
	return b
}

func packRoundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	packed := PackStream(nil, data)
	got, err := UnpackStream(nil, packed, len(data))
	if err != nil {
		t.Fatalf("UnpackStream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %d bytes in, %d out", len(data), len(got))
	}
	return packed
}

func TestPackRoundTripSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		data := synthStream(seed, 5000)
		packed := packRoundTrip(t, data)
		if len(packed) >= len(data) {
			t.Errorf("seed %d: packed %d >= raw %d", seed, len(packed), len(data))
		}
	}
}

func TestPackRoundTripEmpty(t *testing.T) {
	packed := packRoundTrip(t, nil)
	if len(packed) != 0 {
		t.Fatalf("empty stream packed to %d bytes", len(packed))
	}
}

func TestPackRoundTripGarbage(t *testing.T) {
	// Random bytes mostly do not parse as packets; the codec must fall
	// back to raw chunks and still reproduce the input exactly.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		packRoundTrip(t, data)
	}
}

func TestPackRoundTripTornHead(t *testing.T) {
	// A wrapped ToPA buffer starts mid-packet: chop a synthetic stream at
	// arbitrary offsets and check the torn prefix survives.
	data := synthStream(7, 2000)
	for _, cut := range []int{1, 3, 5, 17, 100, len(data)/2 + 1} {
		packRoundTrip(t, data[cut:])
	}
}

func TestPackRoundTripBitFlips(t *testing.T) {
	data := synthStream(9, 500)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(5); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		packRoundTrip(t, mut)
	}
}

func TestUnpackRejectsLyingLength(t *testing.T) {
	data := synthStream(11, 200)
	packed := PackStream(nil, data)
	if _, err := UnpackStream(nil, packed, len(data)+1); err == nil {
		t.Error("oversized rawLen accepted")
	}
	if _, err := UnpackStream(nil, packed, len(data)-1); err == nil {
		t.Error("undersized rawLen accepted")
	}
	if _, err := UnpackStream(nil, packed, -1); err == nil {
		t.Error("negative rawLen accepted")
	}
	if _, err := UnpackStream(nil, packed, MaxUnpackedCoreBytes+1); err == nil {
		t.Error("bomb-sized rawLen accepted")
	}
}

func TestUnpackRejectsTruncated(t *testing.T) {
	data := synthStream(13, 500)
	packed := PackStream(nil, data)
	for cut := 1; cut < len(packed); cut += 7 {
		if _, err := UnpackStream(nil, packed[:cut], len(data)); err == nil {
			t.Fatalf("truncated packed stream at %d accepted", cut)
		}
	}
}

func TestUnpackHostileNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		buf := make([]byte, rng.Intn(512))
		rng.Read(buf)
		// Errors are fine; panics or unbounded output are not.
		out, err := UnpackStream(nil, buf, 1<<16)
		if err == nil && len(out) != 1<<16 {
			t.Fatalf("no error but %d bytes produced", len(out))
		}
	}
}

func TestUnpackPADRunBombRejected(t *testing.T) {
	// A PAD run claiming more than the declared size must error before
	// materializing it.
	packed := []byte{opPADRun, 0xff, 0xff, 0xff, 0x7f}
	if _, err := UnpackStream(nil, packed, 16); err == nil {
		t.Fatal("oversized PAD run accepted")
	}
}

func TestPackDictionaryReuse(t *testing.T) {
	// Same target hit many times: every hit after the first must cost
	// at most two bytes (op + 1-byte index) instead of seven.
	var b []byte
	for i := 0; i < 100; i++ {
		b = AppendTIP(b, PktTIP, 0x400000)
	}
	packed := packRoundTrip(t, b)
	if len(packed) > 2*100+8 {
		t.Fatalf("dictionary not effective: %d packed bytes for %d raw", len(packed), len(b))
	}
}

func TestPackFixtureCompression(t *testing.T) {
	// The synthetic stream mirrors tracer output shape; the codec should
	// get well under half size on it.
	data := synthStream(1, 20000)
	packed := packRoundTrip(t, data)
	ratio := float64(len(data)) / float64(len(packed))
	if ratio < 2 {
		t.Fatalf("compression ratio %.2f < 2 (raw %d, packed %d)", ratio, len(data), len(packed))
	}
}
