package ipt_test

import (
	"testing"

	"exist/internal/hotbench"
)

// BenchmarkEncodeHot measures the tracer encode path: the per-branch fast
// path (TNT accumulation, TIP/CYC emission) writing into a ToPA chain.
// Run with -benchmem; allocs/op is tracked in BENCH_harness.json.
func BenchmarkEncodeHot(b *testing.B) {
	prog := hotbench.Program(2)
	const budget = 4_000_000
	bytes := hotbench.EncodeOnce(prog, 2, budget)
	if bytes == 0 {
		b.Fatal("fixture produced no trace bytes")
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotbench.EncodeOnce(prog, 2, budget)
	}
}
