// Package report synthesizes decoded traces into the human-readable
// application-behaviour summaries EXIST returns to on-call engineers and
// developers (§3.1: "the collected instruction traces are automatically
// synthesized into human-readable application behaviors").
//
// A report combines three inputs: the reconstruction (what executed), the
// program binary (names and categories), and the session (window, sidecar,
// buffer health) — and reads like the output of a profiler that happens to
// know the chronology.
package report

import (
	"fmt"
	"sort"
	"strings"

	"exist/internal/binary"
	"exist/internal/decode"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/trace"
)

// Options controls report contents.
type Options struct {
	// TopFuncs bounds the hottest-function list (default 10).
	TopFuncs int
	// GapThreshold flags threads scheduled out longer than this as
	// anomalies (default 100 ms).
	GapThreshold simtime.Duration
	// Syscalls names PTWRITE operands as syscalls using this table
	// (nil: kernel.DefaultSyscallTable).
	Syscalls []kernel.SyscallSpec
}

// Build renders the behaviour report.
func Build(rec *decode.Result, prog *binary.Program, sess *trace.Session, opt Options) string {
	if opt.TopFuncs <= 0 {
		opt.TopFuncs = 10
	}
	if opt.GapThreshold <= 0 {
		opt.GapThreshold = 100 * simtime.Millisecond
	}
	if opt.Syscalls == nil {
		opt.Syscalls = kernel.DefaultSyscallTable()
	}
	var b strings.Builder
	header(&b, rec, sess)
	hotFunctions(&b, rec, prog, opt.TopFuncs)
	categories(&b, rec)
	memWidths(&b, rec)
	threads(&b, rec, sess, opt)
	anomalies(&b, rec, sess, opt)
	return b.String()
}

func header(b *strings.Builder, rec *decode.Result, sess *trace.Session) {
	fmt.Fprintf(b, "EXIST behaviour report — %s\n", sess.Workload)
	fmt.Fprintf(b, "window: %v starting at %v; %d five-tuple records; %.1f MB trace\n",
		sess.Duration(), sess.Start, len(sess.Switches.Records), sess.SpaceMB())
	stopped := 0
	for _, c := range sess.Cores {
		if c.Stopped {
			stopped++
		}
	}
	fmt.Fprintf(b, "reconstruction: %d control-flow events, %d blocks, %d threads",
		rec.Events, rec.Blocks, len(rec.ByThread))
	if stopped > 0 {
		fmt.Fprintf(b, " (%d/%d buffers hit the compulsory-drop threshold)", stopped, len(sess.Cores))
	}
	b.WriteString("\n\n")
}

func hotFunctions(b *strings.Builder, rec *decode.Result, prog *binary.Program, top int) {
	type fc struct {
		name string
		n    int64
	}
	var hot []fc
	var total int64
	for fn, n := range rec.FuncEntries {
		hot = append(hot, fc{prog.Funcs[fn].Name, n})
		total += n
	}
	if total == 0 {
		return
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].name < hot[j].name
	})
	b.WriteString("hottest functions (traced call entries):\n")
	for i, f := range hot {
		if i >= top {
			break
		}
		frac := float64(f.n) / float64(total)
		fmt.Fprintf(b, "  %5.1f%% %s %s\n", frac*100, bar(frac, 30), f.name)
	}
	b.WriteString("\n")
}

func categories(b *strings.Builder, rec *decode.Result) {
	groups := []struct {
		name string
		cats []binary.FuncCategory
	}{
		{"memory", []binary.FuncCategory{binary.CatMemJE, binary.CatMemTC, binary.CatMemAlloc,
			binary.CatMemFree, binary.CatMemCopy, binary.CatMemSet, binary.CatMemCmp, binary.CatMemMove}},
		{"synchronization", []binary.FuncCategory{binary.CatSyncAtomic, binary.CatSyncSpinlock,
			binary.CatSyncMutex, binary.CatSyncCAS}},
		{"kernel", []binary.FuncCategory{binary.CatKernelSche, binary.CatKernelIRQ, binary.CatKernelNet}},
	}
	if rec.Blocks == 0 {
		return
	}
	b.WriteString("costly-category execution share (of visited blocks):\n")
	for _, g := range groups {
		var n int64
		leaders := make([]string, 0, 2)
		var lead int64
		var leadName string
		for _, c := range g.cats {
			n += rec.CatHits[c]
			if rec.CatHits[c] > lead {
				lead, leadName = rec.CatHits[c], c.String()
			}
		}
		frac := float64(n) / float64(rec.Blocks)
		if leadName != "" {
			leaders = append(leaders, fmt.Sprintf("led by %s", leadName))
		}
		fmt.Fprintf(b, "  %-16s %5.1f%% %s\n", g.name, frac*100, strings.Join(leaders, " "))
	}
	b.WriteString("\n")
}

func memWidths(b *strings.Builder, rec *decode.Result) {
	var total int64
	var wide int64
	for cls := 0; cls < binary.NumMemClasses; cls++ {
		for w := 0; w < 4; w++ {
			total += rec.MemOps[cls][w]
		}
		wide += rec.MemOps[cls][3]
	}
	if total == 0 {
		return
	}
	fmt.Fprintf(b, "memory accesses: %d observed, %.0f%% quad-width (8-byte)\n\n",
		total, float64(wide)/float64(total)*100)
}

// threadView is per-thread evidence derived from the reconstruction and
// the five-tuple sidecar.
type threadView struct {
	tid     int32
	events  int
	maxGap  simtime.Duration
	gapFrom simtime.Time
	absent  bool
}

func threadViews(rec *decode.Result, sess *trace.Session) []threadView {
	views := map[int32]*threadView{}
	get := func(tid int32) *threadView {
		v := views[tid]
		if v == nil {
			v = &threadView{tid: tid}
			views[tid] = v
		}
		return v
	}
	for tid, evs := range rec.ByThread {
		get(tid).events = len(evs)
	}
	records := append([]kernel.SwitchRecord(nil), sess.Switches.Records...)
	sort.Slice(records, func(i, j int) bool { return records[i].TS < records[j].TS })
	lastOut := map[int32]simtime.Time{}
	for _, r := range records {
		switch r.Op {
		case kernel.OpOut:
			lastOut[r.TID] = r.TS
		case kernel.OpIn:
			if out, ok := lastOut[r.TID]; ok {
				v := get(r.TID)
				if d := r.TS - out; d > v.maxGap {
					v.maxGap, v.gapFrom = d, out
				}
				delete(lastOut, r.TID)
			} else {
				get(r.TID) // thread seen
			}
		}
	}
	// Unreturned threads are still blocked at window end.
	for tid, out := range lastOut {
		v := get(tid)
		if d := sess.End - out; d > v.maxGap {
			v.maxGap, v.gapFrom = d, out
			v.absent = v.events == 0
		}
	}
	out := make([]threadView, 0, len(views))
	for _, v := range views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tid < out[j].tid })
	return out
}

func threads(b *strings.Builder, rec *decode.Result, sess *trace.Session, opt Options) {
	views := threadViews(rec, sess)
	if len(views) == 0 {
		return
	}
	b.WriteString("per-thread chronology:\n")
	for _, v := range views {
		if v.tid < 0 {
			fmt.Fprintf(b, "  (unattributed) %8d events\n", v.events)
			continue
		}
		line := fmt.Sprintf("  thread %-4d %8d events", v.tid, v.events)
		if v.maxGap > 0 {
			line += fmt.Sprintf(", longest off-CPU gap %v (from %v)", v.maxGap, v.gapFrom)
		}
		b.WriteString(line + "\n")
	}
	b.WriteString("\n")
}

func anomalies(b *strings.Builder, rec *decode.Result, sess *trace.Session, opt Options) {
	var notes []string
	for _, v := range threadViews(rec, sess) {
		if v.tid >= 0 && v.maxGap >= opt.GapThreshold {
			notes = append(notes, fmt.Sprintf(
				"thread %d left the CPU at %v and stayed away for %v — look for a blocking call",
				v.tid, v.gapFrom, v.maxGap))
		}
	}
	// PTWRITE operands name the syscalls directly when present.
	counts := map[uint64]int{}
	for _, ptw := range rec.PTWrites {
		counts[ptw.Val]++
	}
	type kv struct {
		val uint64
		n   int
	}
	var ks []kv
	for v, n := range counts {
		ks = append(ks, kv{v, n})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].n > ks[j].n })
	if len(ks) > 0 {
		parts := make([]string, 0, 4)
		for i, k := range ks {
			if i >= 4 {
				break
			}
			name := fmt.Sprintf("class %d", k.val)
			if int(k.val) < len(opt.Syscalls) {
				name = opt.Syscalls[k.val].Name
			}
			parts = append(parts, fmt.Sprintf("%s x%d", name, k.n))
		}
		notes = append(notes, "traced syscall activity (PTWRITE): "+strings.Join(parts, ", "))
	}
	for _, e := range rec.Errors {
		if !strings.Contains(e, "truncated") {
			notes = append(notes, "decode: "+e)
		}
	}
	if len(notes) == 0 {
		return
	}
	b.WriteString("findings:\n")
	for _, n := range notes {
		b.WriteString("  - " + n + "\n")
	}
}

// bar renders a proportional ASCII bar.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
