package report

import (
	"strings"
	"testing"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/decode"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

// buildSession traces a small walker workload with EXIST and returns all
// report inputs.
func buildSession(t *testing.T) (*decode.Result, *binary.Program, *trace.Session) {
	t.Helper()
	mcfg := sched.DefaultConfig()
	mcfg.Cores = 4
	mcfg.HTSiblings = false
	mcfg.Seed = 5
	mcfg.Timeslice = 500 * simtime.Microsecond
	m := sched.NewMachine(mcfg)
	m.EmitPTWrites = true

	p, err := workload.ByName("mc")
	if err != nil {
		t.Fatal(err)
	}
	prog := p.Synthesize(5)
	proc := p.Install(m, workload.InstallOpts{Walker: true, Scale: trace.SpaceScale, Prog: prog, Seed: 5})
	// One thread that blocks for a long time mid-window, to exercise the
	// findings section.
	w := make([]float64, int(kernel.NumSyscallClasses))
	w[kernel.SysNanosleep] = 1
	m.SpawnThread(proc, sched.NewWalkerExec(prog, xrand.New(9), mcfg.Cost, trace.SpaceScale).
		WithPacing(30*simtime.Millisecond, w))

	m.Run(50 * simtime.Millisecond)
	ctrl := core.NewController(m)
	ccfg := core.DefaultConfig()
	ccfg.Period = 200 * simtime.Millisecond
	ccfg.Scale = trace.SpaceScale
	ccfg.Ctl = ipt.DefaultCtl() | ipt.CtlPTWEn
	ccfg.Seed = 5
	sess, err := ctrl.Trace(proc, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(300 * simtime.Millisecond)
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	return decode.Decode(res, prog), prog, res
}

func TestBuildReport(t *testing.T) {
	rec, prog, sess := buildSession(t)
	out := Build(rec, prog, sess, Options{})
	for _, want := range []string{
		"EXIST behaviour report — mc",
		"window: 200.000ms",
		"hottest functions",
		"costly-category execution share",
		"per-thread chronology",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Some function name from the binary must appear.
	found := false
	for _, f := range prog.Funcs {
		if strings.Contains(out, f.Name) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no function names in report:\n%s", out)
	}
}

func TestReportFindsSyscallActivity(t *testing.T) {
	rec, prog, sess := buildSession(t)
	if len(rec.PTWrites) == 0 {
		t.Skip("no PTWRITEs captured in this window")
	}
	out := Build(rec, prog, sess, Options{})
	if !strings.Contains(out, "traced syscall activity (PTWRITE)") {
		t.Fatalf("PTWRITE findings missing:\n%s", out)
	}
}

func TestReportTopFuncsBound(t *testing.T) {
	rec, prog, sess := buildSession(t)
	out := Build(rec, prog, sess, Options{TopFuncs: 3})
	lines := 0
	inHot := false
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "hottest functions") {
			inHot = true
			continue
		}
		if inHot {
			if strings.TrimSpace(l) == "" {
				break
			}
			lines++
		}
	}
	if lines > 3 {
		t.Fatalf("TopFuncs=3 but %d lines listed", lines)
	}
}

func TestBarRendering(t *testing.T) {
	if got := bar(0, 10); got != "[..........]" {
		t.Fatalf("bar(0) = %q", got)
	}
	if got := bar(1, 10); got != "[##########]" {
		t.Fatalf("bar(1) = %q", got)
	}
	if got := bar(2, 10); got != "[##########]" {
		t.Fatalf("bar(>1) must clamp: %q", got)
	}
	if got := bar(0.5, 10); got != "[#####.....]" {
		t.Fatalf("bar(0.5) = %q", got)
	}
}

func TestEmptyReportInputs(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("empty", 1))
	rec := decode.DecodeStream(prog, nil, 0, nil)
	sess := &trace.Session{Workload: "empty", Scale: 1}
	out := Build(rec, prog, sess, Options{})
	if !strings.Contains(out, "EXIST behaviour report — empty") {
		t.Fatalf("header missing for empty input:\n%s", out)
	}
}
