package faults

import (
	"testing"

	"exist/internal/simtime"
)

// TestNilInjector is the nil-receiver contract: every Injector method is
// callable on a nil *Injector and injects nothing, so faults-off call
// sites never need to branch on enablement (and can never panic).
func TestNilInjector(t *testing.T) {
	var in *Injector
	if cfg := in.Config(); cfg != (Config{}) {
		t.Fatalf("config = %+v", cfg)
	}
	if err := in.PutError("k", 0); err != nil {
		t.Fatal(err)
	}
	if err := in.InsertError("b", 0); err != nil {
		t.Fatal(err)
	}
	if f := in.SessionFate("s"); f != FateHealthy {
		t.Fatalf("fate = %v", f)
	}
	if in.StallReconcile(1) {
		t.Fatal("nil injector stalled")
	}
	if _, ok := in.NextCrash("n", 0); ok {
		t.Fatal("nil injector crashed a node")
	}
	in.CountCrash()
	if _, ok := in.NextCtrlCrash("ctrl-0", 0); ok {
		t.Fatal("nil injector crashed a controller")
	}
	in.CountCtrlCrash()
	if _, _, ok := in.NextPartition("ctrl-0", 0); ok {
		t.Fatal("nil injector partitioned")
	}
	in.CountPartition()
	if in.GrayNode("n") {
		t.Fatal("nil injector grayed a node")
	}
	if d := in.HeartbeatDelay("n", 0); d != 0 {
		t.Fatalf("heartbeat delay = %v", d)
	}
	if d := in.ClockSkew("ctrl-0"); d != 0 {
		t.Fatalf("clock skew = %v", d)
	}
	data := []byte{1, 2, 3}
	if n := in.CorruptBuffer("s", data); n != 0 {
		t.Fatalf("flips = %d", n)
	}
	if got := in.TruncateBuffer("s", data); len(got) != 3 {
		t.Fatalf("truncated to %d", len(got))
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 7})
	for i := 0; i < 200; i++ {
		if err := in.PutError("sessions/x", i); err != nil {
			t.Fatal(err)
		}
		if f := in.SessionFate("s"); f != FateHealthy {
			t.Fatalf("fate = %v", f)
		}
		if in.StallReconcile(int64(i)) {
			t.Fatal("stalled")
		}
	}
}

// TestDecisionsKeyedByIdentifierNotOrder is the determinism contract:
// the same (seed, identifier) pair always yields the same decision, in
// whatever order decisions are requested.
func TestDecisionsKeyedByIdentifierNotOrder(t *testing.T) {
	a := New(Config{Seed: 42, SessionLossProb: 0.3, CorruptProb: 0.3, PutFailProb: 0.5})
	b := New(Config{Seed: 42, SessionLossProb: 0.3, CorruptProb: 0.3, PutFailProb: 0.5})

	ids := []string{"r/node-0", "r/node-1", "r/node-2", "q/node-0", "q/node-5"}
	forward := make(map[string]Fate)
	for _, id := range ids {
		forward[id] = a.SessionFate(id)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		if got := b.SessionFate(ids[i]); got != forward[ids[i]] {
			t.Fatalf("fate(%s) order-dependent: %v vs %v", ids[i], got, forward[ids[i]])
		}
	}

	// Put decisions keyed by (key, attempt).
	e1 := a.PutError("k", 3)
	e2 := b.PutError("k", 3)
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("put decision differs: %v vs %v", e1, e2)
	}
}

func TestFateRatesRoughlyMarginal(t *testing.T) {
	in := New(Config{Seed: 9, SessionLossProb: 0.2})
	lost := 0
	n := 5000
	for i := 0; i < n; i++ {
		if in.SessionFate(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune(i))) == FateLost {
			lost++
		}
	}
	frac := float64(lost) / float64(n)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("loss rate %.3f, want ~0.2", frac)
	}
	if got := in.Stats().SessionsLost; got != int64(lost) {
		t.Fatalf("stats lost = %d, counted %d", got, lost)
	}
}

func TestFlipBitsAndTruncate(t *testing.T) {
	orig := make([]byte, 64)
	data := append([]byte(nil), orig...)
	if n := FlipBits(data, 5, 11); n != 5 {
		t.Fatalf("flips = %d", n)
	}
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (data[i]^orig[i])&(1<<uint(b)) != 0 {
				diff++
			}
		}
	}
	// Flips can collide on the same bit; at least one must survive, at
	// most five.
	if diff < 1 || diff > 5 {
		t.Fatalf("bit diff = %d", diff)
	}
	// Same seed, same flips.
	again := append([]byte(nil), orig...)
	FlipBits(again, 5, 11)
	for i := range data {
		if data[i] != again[i] {
			t.Fatal("FlipBits not deterministic")
		}
	}

	if got := Truncate(make([]byte, 100), 0.25); len(got) != 75 {
		t.Fatalf("truncate kept %d", len(got))
	}
	if got := Truncate(make([]byte, 100), 0); len(got) != 100 {
		t.Fatalf("zero truncate kept %d", len(got))
	}
	if got := Truncate(make([]byte, 10), 5); len(got) != 1 {
		t.Fatalf("over-truncate kept %d", len(got))
	}
}

func TestCrashSchedule(t *testing.T) {
	in := New(Config{Seed: 3, CrashMTBF: 2 * simtime.Second})
	d1, ok := in.NextCrash("node-0", 0)
	if !ok || d1 < simtime.Millisecond {
		t.Fatalf("crash delay %v ok=%v", d1, ok)
	}
	d2, _ := in.NextCrash("node-0", 0)
	if d1 != d2 {
		t.Fatalf("crash delay not stable: %v vs %v", d1, d2)
	}
	// Mean of many draws should be near the MTBF.
	var sum simtime.Duration
	n := 2000
	for i := 0; i < n; i++ {
		d, _ := in.NextCrash("node-x", i)
		sum += d
	}
	mean := float64(sum) / float64(n)
	if mean < 1.7e9 || mean > 2.3e9 {
		t.Fatalf("mean crash delay %.3gns, want ~2e9", mean)
	}
}

func TestCtrlCrashAndPartitionSchedules(t *testing.T) {
	in := New(Config{Seed: 5, CtrlCrashMTBF: 3 * simtime.Second, PartitionMTBF: 2 * simtime.Second})
	d1, ok := in.NextCtrlCrash("ctrl-0", 0)
	if !ok || d1 < simtime.Millisecond {
		t.Fatalf("ctrl crash delay %v ok=%v", d1, ok)
	}
	if d2, _ := in.NextCtrlCrash("ctrl-0", 0); d1 != d2 {
		t.Fatalf("ctrl crash delay not stable: %v vs %v", d1, d2)
	}
	p1, l1, ok := in.NextPartition("ctrl-1", 2)
	if !ok || p1 < simtime.Millisecond || l1 < simtime.Millisecond {
		t.Fatalf("partition %v/%v ok=%v", p1, l1, ok)
	}
	p2, l2, _ := in.NextPartition("ctrl-1", 2)
	if p1 != p2 || l1 != l2 {
		t.Fatalf("partition draw not stable: %v/%v vs %v/%v", p1, l1, p2, l2)
	}
	// Disabled shapes report ok=false.
	off := New(Config{Seed: 5})
	if _, ok := off.NextCtrlCrash("c", 0); ok {
		t.Fatal("ctrl crash without MTBF")
	}
	if _, _, ok := off.NextPartition("c", 0); ok {
		t.Fatal("partition without MTBF")
	}
}

func TestGrayNodesStableAndDelayed(t *testing.T) {
	in := New(Config{Seed: 8, GrayNodeProb: 0.3, GrayDelayMean: 200 * simtime.Millisecond})
	gray, healthy := 0, ""
	for i := 0; i < 200; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		g := in.GrayNode(name)
		if g != in.GrayNode(name) {
			t.Fatalf("gray set unstable for %s", name)
		}
		if g {
			gray++
			if d := in.HeartbeatDelay(name, 1); d <= 0 {
				t.Fatalf("gray node %s heartbeat delay = %v", name, d)
			}
			if d1, d2 := in.HeartbeatDelay(name, 7), in.HeartbeatDelay(name, 7); d1 != d2 {
				t.Fatalf("heartbeat delay not keyed: %v vs %v", d1, d2)
			}
		} else if healthy == "" {
			healthy = name
		}
	}
	if gray < 30 || gray > 90 {
		t.Fatalf("gray count %d of 200, want ~60", gray)
	}
	if d := in.HeartbeatDelay(healthy, 0); d != 0 {
		t.Fatalf("healthy node delayed by %v", d)
	}
}

func TestClockSkewBoundedAndStable(t *testing.T) {
	max := 50 * simtime.Millisecond
	in := New(Config{Seed: 4, ClockSkewMax: max})
	var nonZero bool
	for i := 0; i < 50; i++ {
		name := string(rune('a' + i))
		s := in.ClockSkew(name)
		if s < -max || s > max {
			t.Fatalf("skew %v outside ±%v", s, max)
		}
		if s != in.ClockSkew(name) {
			t.Fatalf("skew unstable for %s", name)
		}
		if s != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("all skews zero")
	}
	if s := New(Config{Seed: 4}).ClockSkew("x"); s != 0 {
		t.Fatalf("skew without ClockSkewMax = %v", s)
	}
}

func TestFateString(t *testing.T) {
	for f, want := range map[Fate]string{
		FateHealthy: "healthy", FateLost: "lost",
		FateCorrupted: "corrupted", FateTruncated: "truncated", Fate(9): "?",
	} {
		if f.String() != want {
			t.Errorf("Fate(%d) = %q", int(f), f.String())
		}
	}
}

func TestChurnSchedule(t *testing.T) {
	in := New(Config{Seed: 7, ChurnMTBF: 10 * simtime.Second, ChurnDownMean: 2 * simtime.Second})
	d1, dn1, ok := in.NextChurn("node-0", 0)
	if !ok || d1 < simtime.Millisecond || dn1 < simtime.Millisecond {
		t.Fatalf("churn draw %v/%v ok=%v", d1, dn1, ok)
	}
	if d2, dn2, _ := in.NextChurn("node-0", 0); d1 != d2 || dn1 != dn2 {
		t.Fatalf("churn draw not stable: %v/%v vs %v/%v", d1, dn1, d2, dn2)
	}
	// Mean leave delay of many draws should be near the MTBF.
	var sum simtime.Duration
	n := 2000
	for i := 0; i < n; i++ {
		d, _, _ := in.NextChurn("node-x", i)
		sum += d
	}
	mean := float64(sum) / float64(n)
	if mean < 8.5e9 || mean > 11.5e9 {
		t.Fatalf("mean churn delay %.3gns, want ~1e10", mean)
	}
	// Down-time defaults to 2 s when ChurnDownMean is unset.
	def := New(Config{Seed: 7, ChurnMTBF: 10 * simtime.Second})
	if _, dn, ok := def.NextChurn("node-0", 0); !ok || dn < simtime.Millisecond {
		t.Fatalf("default down draw %v ok=%v", dn, ok)
	}
	// Disabled shape reports ok=false, and the counters tally.
	off := New(Config{Seed: 7})
	if _, _, ok := off.NextChurn("node-0", 0); ok {
		t.Fatal("churn without MTBF")
	}
	in.CountLeave()
	in.CountLeave()
	in.CountJoin()
	if s := in.Stats(); s.Leaves != 2 || s.Joins != 1 {
		t.Fatalf("stats leaves=%d joins=%d, want 2/1", s.Leaves, s.Joins)
	}
}
