// Package faults is the deterministic fault-injection subsystem used to
// harden and evaluate EXIST's cluster control plane. Real shared
// datacenters treat partial data loss and component failure as the normal
// case: object-store puts time out, nodes crash mid-window, controllers
// stall, and session buffers arrive corrupted or truncated. The injector
// models all of these as seeded, reproducible decisions so resilience
// experiments are exactly repeatable.
//
// Determinism contract: every decision is drawn from a splittable stream
// keyed by the injector seed plus a *stable identifier* (object key,
// session ID, node name, attempt counter) — never by call order. Two runs
// with the same seed and the same identifiers inject the identical fault
// schedule regardless of event interleaving, and an injector left nil (or
// a zero Config) injects nothing at all: fault injection is strictly
// opt-in.
package faults

import (
	"fmt"

	"exist/internal/simtime"
	"exist/internal/xrand"
)

// Config parameterizes an Injector. The zero value injects no faults.
type Config struct {
	// Seed drives all fault randomness (independent of workload seeds).
	Seed uint64

	// PutFailProb is the per-attempt probability that an object-store
	// Put fails with a transient error (upload timeout / 5xx class).
	PutFailProb float64
	// InsertFailProb is the per-attempt probability that a structured
	// store Insert fails transiently.
	InsertFailProb float64

	// SessionLossProb is the per-session probability that a completed
	// window's data is lost outright (node reset between capture and
	// upload) — the session must be re-sampled elsewhere or given up.
	SessionLossProb float64
	// CorruptProb is the per-session probability that the raw buffers
	// arrive bit-flipped.
	CorruptProb float64
	// CorruptBits is how many bit flips a corrupted session suffers per
	// core buffer (default 8).
	CorruptBits int
	// TruncateProb is the per-session probability that a core buffer's
	// tail is chopped (partial upload).
	TruncateProb float64
	// TruncateFracMax bounds the chopped fraction (default 0.5: up to
	// half the buffer tail is lost).
	TruncateFracMax float64

	// StallProb is the per-iteration probability that a controller
	// reconcile loop stalls and does no work (management pod CPU
	// starvation under cluster pressure).
	StallProb float64

	// CrashMTBF, when nonzero, gives each node an exponentially
	// distributed mean time between crashes. A crashed node stops
	// heartbeating, loses every in-flight session, and restarts after
	// CrashDowntime.
	CrashMTBF simtime.Duration
	// CrashDowntime is how long a crashed node stays down (default 1 s).
	CrashDowntime simtime.Duration

	// CtrlCrashMTBF, when nonzero, gives each controller replica an
	// exponentially distributed mean time between crashes. A crashed
	// controller stops renewing its election lease and processing its
	// work queue until CtrlCrashDowntime passes; on restart it relists
	// from the store (its watch stream is stale).
	CtrlCrashMTBF simtime.Duration
	// CtrlCrashDowntime is how long a crashed controller stays down
	// (default 500 ms).
	CtrlCrashDowntime simtime.Duration

	// PartitionMTBF, when nonzero, gives each controller replica an
	// exponentially distributed mean time between network partitions
	// from the API/object stores. A partitioned controller is alive but
	// every store operation (list, CAS, lease renewal) fails until the
	// partition heals — the classic half-failure a replicated control
	// plane must survive.
	PartitionMTBF simtime.Duration
	// PartitionMeanDur is the mean (exponential) partition duration
	// (default 500 ms).
	PartitionMeanDur simtime.Duration

	// GrayNodeProb is the probability that a given node is a gray
	// failure: alive and doing work, but with heartbeats that arrive
	// late. The decision is keyed by node name, so the same nodes are
	// gray in every run with the same seed.
	GrayNodeProb float64
	// GrayDelayMean is the mean (exponential) extra delay a gray node's
	// heartbeat suffers (default 300 ms). Delays beyond the lease TTL
	// make a healthy node look dead — the control plane re-samples its
	// sessions even though the node never crashed.
	GrayDelayMean simtime.Duration

	// ClockSkewMax, when nonzero, gives each controller replica a fixed
	// clock skew drawn uniformly from [-ClockSkewMax, +ClockSkewMax],
	// keyed by controller name. Skewed clocks distort the lease expiries
	// a controller writes and reads, stressing the election protocol's
	// fencing (the store remains the single authority).
	ClockSkewMax simtime.Duration

	// ChurnMTBF, when nonzero, gives each node an exponentially
	// distributed mean time between graceful leaves (rolling
	// maintenance, autoscaler scale-down). Unlike a crash, a leave
	// cordons the node: it takes no new sessions but drains and uploads
	// the ones in flight, then rejoins after an exponential downtime and
	// becomes schedulable again — continuous join/leave churn.
	ChurnMTBF simtime.Duration
	// ChurnDownMean is the mean (exponential) time a churned node stays
	// out of the fleet before rejoining (default 2 s).
	ChurnDownMean simtime.Duration
}

// Stats counts injected faults, for experiment reporting.
type Stats struct {
	// PutFailures and InsertFailures count injected store errors.
	PutFailures, InsertFailures int64
	// SessionsLost counts sessions whose data was destroyed.
	SessionsLost int64
	// SessionsCorrupted and SessionsTruncated count buffer mutations.
	SessionsCorrupted, SessionsTruncated int64
	// Stalls counts skipped reconcile iterations.
	Stalls int64
	// Crashes counts node crash events.
	Crashes int64
	// CtrlCrashes counts controller-replica crash events.
	CtrlCrashes int64
	// Partitions counts controller-store partition events.
	Partitions int64
	// GrayDelays counts heartbeats that were delayed by gray failure.
	GrayDelays int64
	// Leaves and Joins count graceful node-churn events.
	Leaves, Joins int64
}

// Fate is the injector's verdict on one completed session's data.
type Fate int

const (
	// FateHealthy: the session survives intact.
	FateHealthy Fate = iota
	// FateLost: the session's data is destroyed; the control plane must
	// re-sample or degrade.
	FateLost
	// FateCorrupted: the buffers arrive with flipped bits.
	FateCorrupted
	// FateTruncated: the buffers arrive with their tails chopped.
	FateTruncated
)

// String names a fate.
func (f Fate) String() string {
	switch f {
	case FateHealthy:
		return "healthy"
	case FateLost:
		return "lost"
	case FateCorrupted:
		return "corrupted"
	case FateTruncated:
		return "truncated"
	default:
		return "?"
	}
}

// Injector makes seeded fault decisions. A nil *Injector is valid and
// injects nothing, so callers never need to branch on enablement.
type Injector struct {
	cfg   Config
	stats Stats
	// scratch is the one Rand cycled through every decision stream via
	// in-place reseeding, so a fault draw allocates nothing. The returned
	// stream is only valid until the next draw, which matches how every
	// method uses it; it also means an Injector must not be shared across
	// concurrently running engines (each cluster owns its own).
	scratch *xrand.Rand
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.CorruptBits <= 0 {
		cfg.CorruptBits = 8
	}
	if cfg.TruncateFracMax <= 0 || cfg.TruncateFracMax > 1 {
		cfg.TruncateFracMax = 0.5
	}
	if cfg.CrashDowntime <= 0 {
		cfg.CrashDowntime = 1 * simtime.Second
	}
	if cfg.CtrlCrashDowntime <= 0 {
		cfg.CtrlCrashDowntime = 500 * simtime.Millisecond
	}
	if cfg.PartitionMeanDur <= 0 {
		cfg.PartitionMeanDur = 500 * simtime.Millisecond
	}
	if cfg.GrayDelayMean <= 0 {
		cfg.GrayDelayMean = 300 * simtime.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Config returns the effective configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Stats returns the injected-fault counters so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// begin starts the label hash for one decision kind. Folding the pieces
// ("faults/" + kind + "/" + id) into the hash one by one derives the same
// seed as Split over the concatenated label, without building the string.
func (in *Injector) begin(kind string) xrand.SplitHash {
	return xrand.BeginSplit(in.cfg.Seed).String("faults/").String(kind).String("/")
}

// reseed points the scratch stream at the decision seed accumulated in h.
func (in *Injector) reseed(h xrand.SplitHash) *xrand.Rand {
	if in.scratch == nil {
		in.scratch = xrand.New(0)
	}
	in.scratch.ReseedSplit(h)
	return in.scratch
}

// draw returns the per-decision stream for a stable identifier.
func (in *Injector) draw(kind, id string) *xrand.Rand {
	return in.reseed(in.begin(kind).String(id))
}

// drawN returns the per-decision stream for a "name#k" identifier, hashing
// the counter's decimal form directly.
func (in *Injector) drawN(kind, name string, k int64) *xrand.Rand {
	return in.reseed(in.begin(kind).String(name).String("#").Int(k))
}

// PutError decides whether one object-store Put attempt fails. The
// decision is keyed by key and attempt number, so a retried Put sees an
// independent (but reproducible) draw each attempt.
func (in *Injector) PutError(key string, attempt int) error {
	if in == nil || in.cfg.PutFailProb <= 0 {
		return nil
	}
	if in.drawN("put", key, int64(attempt)).Bool(in.cfg.PutFailProb) {
		in.stats.PutFailures++
		return fmt.Errorf("faults: transient object-store error on %q (attempt %d)", key, attempt)
	}
	return nil
}

// InsertError decides whether one structured-store Insert attempt fails.
func (in *Injector) InsertError(batch string, attempt int) error {
	if in == nil || in.cfg.InsertFailProb <= 0 {
		return nil
	}
	if in.drawN("insert", batch, int64(attempt)).Bool(in.cfg.InsertFailProb) {
		in.stats.InsertFailures++
		return fmt.Errorf("faults: transient structured-store error on %q (attempt %d)", batch, attempt)
	}
	return nil
}

// SessionFate decides what happens to one completed session's data,
// keyed by session ID. At most one fate applies per session; loss
// dominates corruption dominates truncation.
func (in *Injector) SessionFate(sessionID string) Fate {
	if in == nil {
		return FateHealthy
	}
	rng := in.draw("session", sessionID)
	// Independent draws in a fixed order keep each probability marginal.
	lost := rng.Bool(in.cfg.SessionLossProb)
	corrupt := rng.Bool(in.cfg.CorruptProb)
	truncate := rng.Bool(in.cfg.TruncateProb)
	switch {
	case lost:
		in.stats.SessionsLost++
		return FateLost
	case corrupt:
		in.stats.SessionsCorrupted++
		return FateCorrupted
	case truncate:
		in.stats.SessionsTruncated++
		return FateTruncated
	default:
		return FateHealthy
	}
}

// StallReconcile decides whether the n-th reconcile iteration stalls.
func (in *Injector) StallReconcile(n int64) bool {
	if in == nil || in.cfg.StallProb <= 0 {
		return false
	}
	if in.reseed(in.begin("stall").Int(n)).Bool(in.cfg.StallProb) {
		in.stats.Stalls++
		return true
	}
	return false
}

// NextCrash returns the delay until a node's k-th crash, drawn from the
// configured MTBF, and ok=false when crash injection is disabled.
func (in *Injector) NextCrash(node string, k int) (simtime.Duration, bool) {
	if in == nil || in.cfg.CrashMTBF <= 0 {
		return 0, false
	}
	d := in.drawN("crash", node, int64(k)).Exp(float64(in.cfg.CrashMTBF))
	if d < float64(simtime.Millisecond) {
		d = float64(simtime.Millisecond)
	}
	return simtime.Duration(d), true
}

// CountCrash records one node crash event.
func (in *Injector) CountCrash() {
	if in != nil {
		in.stats.Crashes++
	}
}

// NextChurn returns the delay until a node's k-th graceful leave and
// how long it stays out before rejoining, and ok=false when churn
// injection is disabled. Both draws are keyed by (node, k).
func (in *Injector) NextChurn(node string, k int) (delay, down simtime.Duration, ok bool) {
	if in == nil || in.cfg.ChurnMTBF <= 0 {
		return 0, 0, false
	}
	rng := in.drawN("churn", node, int64(k))
	d := rng.Exp(float64(in.cfg.ChurnMTBF))
	if d < float64(simtime.Millisecond) {
		d = float64(simtime.Millisecond)
	}
	mean := in.cfg.ChurnDownMean
	if mean <= 0 {
		mean = 2 * simtime.Second
	}
	dn := rng.Exp(float64(mean))
	if dn < float64(simtime.Millisecond) {
		dn = float64(simtime.Millisecond)
	}
	return simtime.Duration(d), simtime.Duration(dn), true
}

// CountLeave records one graceful node-leave event.
func (in *Injector) CountLeave() {
	if in != nil {
		in.stats.Leaves++
	}
}

// CountJoin records one node-rejoin event.
func (in *Injector) CountJoin() {
	if in != nil {
		in.stats.Joins++
	}
}

// NextCtrlCrash returns the delay until a controller replica's k-th
// crash, drawn from the configured MTBF, and ok=false when controller
// crash injection is disabled.
func (in *Injector) NextCtrlCrash(ctrl string, k int) (simtime.Duration, bool) {
	if in == nil || in.cfg.CtrlCrashMTBF <= 0 {
		return 0, false
	}
	d := in.drawN("ctrlcrash", ctrl, int64(k)).Exp(float64(in.cfg.CtrlCrashMTBF))
	if d < float64(simtime.Millisecond) {
		d = float64(simtime.Millisecond)
	}
	return simtime.Duration(d), true
}

// CountCtrlCrash records one controller-replica crash event.
func (in *Injector) CountCtrlCrash() {
	if in != nil {
		in.stats.CtrlCrashes++
	}
}

// NextPartition returns the delay until a controller replica's k-th
// store partition and how long it lasts, and ok=false when partition
// injection is disabled. Both draws are keyed by (ctrl, k).
func (in *Injector) NextPartition(ctrl string, k int) (delay, dur simtime.Duration, ok bool) {
	if in == nil || in.cfg.PartitionMTBF <= 0 {
		return 0, 0, false
	}
	rng := in.drawN("partition", ctrl, int64(k))
	d := rng.Exp(float64(in.cfg.PartitionMTBF))
	if d < float64(simtime.Millisecond) {
		d = float64(simtime.Millisecond)
	}
	l := rng.Exp(float64(in.cfg.PartitionMeanDur))
	if l < float64(simtime.Millisecond) {
		l = float64(simtime.Millisecond)
	}
	return simtime.Duration(d), simtime.Duration(l), true
}

// CountPartition records one controller-store partition event.
func (in *Injector) CountPartition() {
	if in != nil {
		in.stats.Partitions++
	}
}

// GrayNode reports whether a node is a gray failure (slow but alive),
// keyed by node name so the gray set is stable across a run.
func (in *Injector) GrayNode(node string) bool {
	if in == nil || in.cfg.GrayNodeProb <= 0 {
		return false
	}
	return in.draw("gray", node).Bool(in.cfg.GrayNodeProb)
}

// HeartbeatDelay returns the extra delay the node's seq-th heartbeat
// suffers: zero for healthy nodes, an exponential draw keyed by
// (node, seq) for gray ones.
func (in *Injector) HeartbeatDelay(node string, seq int64) simtime.Duration {
	if in == nil || !in.GrayNode(node) {
		return 0
	}
	d := in.drawN("graydelay", node, seq).Exp(float64(in.cfg.GrayDelayMean))
	if d <= 0 {
		return 0
	}
	in.stats.GrayDelays++
	return simtime.Duration(d)
}

// ClockSkew returns the controller's fixed clock skew, drawn uniformly
// from [-ClockSkewMax, +ClockSkewMax] and keyed by controller name. It
// is zero when skew injection is disabled.
func (in *Injector) ClockSkew(ctrl string) simtime.Duration {
	if in == nil || in.cfg.ClockSkewMax <= 0 {
		return 0
	}
	max := float64(in.cfg.ClockSkewMax)
	return simtime.Duration(in.draw("skew", ctrl).Float64()*2*max - max)
}

// CorruptBuffer flips the configured number of bits in data in place,
// keyed by id. It returns the number of bits flipped.
func (in *Injector) CorruptBuffer(id string, data []byte) int {
	if in == nil || len(data) == 0 {
		return 0
	}
	return FlipBits(data, in.cfg.CorruptBits, in.cfg.Seed^hash(id))
}

// TruncateBuffer chops a seeded fraction of data's tail, keyed by id,
// returning the shortened slice.
func (in *Injector) TruncateBuffer(id string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	frac := in.draw("truncfrac", id).Float64() * in.cfg.TruncateFracMax
	return Truncate(data, frac)
}

// FlipBits flips n uniformly chosen bits of data in place using the given
// seed, returning the number of flips. It is exported for corruption
// table tests.
func FlipBits(data []byte, n int, seed uint64) int {
	if len(data) == 0 || n <= 0 {
		return 0
	}
	rng := xrand.Split(seed, "faults/flip")
	for i := 0; i < n; i++ {
		bit := rng.Int64N(int64(len(data)) * 8)
		data[bit/8] ^= 1 << uint(bit%8)
	}
	return n
}

// Truncate returns data with the trailing frac (clamped to [0,1)) of its
// bytes removed.
func Truncate(data []byte, frac float64) []byte {
	if frac <= 0 {
		return data
	}
	if frac >= 1 {
		frac = 0.999
	}
	keep := len(data) - int(float64(len(data))*frac)
	if keep < 0 {
		keep = 0
	}
	return data[:keep]
}

// hash derives a stable 64-bit value from a string (FNV-1a).
func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
