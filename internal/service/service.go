// Package service simulates a microservice RPC chain — the DeathStarBench
// ComposePost-style request path used for the paper's end-to-end
// experiments (Figures 3b and 16, and the online throughput comparison of
// Figure 14).
//
// The model is a tandem queueing network: each tier has a worker pool and
// log-normal service times; a request visits the first tier and each tier
// makes a configurable number of *sequential* downstream calls (the paper
// notes tens of RPCs between two services for one request, which is what
// amplifies single-service tracing overhead into large end-to-end
// slowdowns). A tracing scheme appears as an Overhead on one tier:
// multiplicative service inflation plus occasional stall spikes
// (sampling interrupts, buffer hauling) — exactly the node-level effects
// measured on the scheduler substrate.
package service

import (
	"exist/internal/metrics"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// TierSpec describes one service tier.
type TierSpec struct {
	// Name labels the tier.
	Name string
	// Workers is the concurrent server pool size.
	Workers int
	// MeanService is the mean per-visit service time.
	MeanService simtime.Duration
	// CV is the service time's coefficient of variation.
	CV float64
	// CallsToNext is the number of sequential RPCs this tier makes to the
	// next tier per visit (ignored for the last tier).
	CallsToNext int
}

// ChainSpec describes the whole request path.
type ChainSpec struct {
	// Tiers is ordered from frontend to backend.
	Tiers []TierSpec
	// Seed drives all randomness.
	Seed uint64
}

// ComposePostChain returns the three-tier chain used by the end-to-end
// experiments: Proxy -> Logic -> DB with three DB calls per logic visit.
//
// The model is one service *instance* with small worker pools (as on the
// paper's DeathStarBench deployment, where pools are bounded by cores):
// per-instance capacity is ~1.1e3 requests/s and the idle response time is
// ~22 ms, matching Figure 16's axis. The paper's cluster-wide load points
// (1e2..1e5 requests/s) map onto one instance by dividing by the
// deployment width; see InstanceRate.
func ComposePostChain(seed uint64) ChainSpec {
	return ChainSpec{
		Seed: seed,
		Tiers: []TierSpec{
			{Name: "Proxy", Workers: 4, MeanService: 3800 * simtime.Microsecond, CV: 0.8, CallsToNext: 1},
			{Name: "Logic", Workers: 8, MeanService: 7600 * simtime.Microsecond, CV: 1.0, CallsToNext: 3},
			{Name: "DB", Workers: 12, MeanService: 3800 * simtime.Microsecond, CV: 1.2},
		},
	}
}

// DeploymentWidth is the number of service instances the cluster-wide
// load is spread over when mapping the paper's load axis onto one
// simulated instance.
const DeploymentWidth = 100

// InstanceRate converts a cluster-wide request rate (the paper's
// "Load=1eN") to one instance's arrival rate.
func InstanceRate(clusterLoad float64) float64 { return clusterLoad / DeploymentWidth }

// Overhead is a tracing scheme's effect on one tier.
type Overhead struct {
	// Tier indexes ChainSpec.Tiers.
	Tier int
	// Frac is the multiplicative service-time inflation (0.02 = 2%).
	Frac float64
	// SpikeProb is the per-visit probability of an extra stall.
	SpikeProb float64
	// Spike is the stall duration.
	Spike simtime.Duration
}

// Result reports one run.
type Result struct {
	// Completed counts finished requests.
	Completed int
	// Dropped counts requests still in flight at the deadline.
	Dropped int
	// ThroughputRPS is completed / duration.
	ThroughputRPS float64
	// RTms holds completed request response times in milliseconds.
	RTms []float64
	// Summary is the percentile summary of RTms.
	Summary metrics.Summary
}

// tier is runtime queue state.
type tier struct {
	spec  TierSpec
	infl  float64
	spike Overhead
	busy  int
	queue []func(now simtime.Time)
}

// chain is one simulation instance.
type chain struct {
	eng   *simtime.Engine
	seed  uint64
	tiers []*tier
}

func newChain(spec ChainSpec, ov []Overhead) *chain {
	c := &chain{
		eng:  simtime.NewEngine(),
		seed: spec.Seed,
	}
	for _, ts := range spec.Tiers {
		c.tiers = append(c.tiers, &tier{spec: ts, infl: 1})
	}
	for _, o := range ov {
		if o.Tier >= 0 && o.Tier < len(c.tiers) {
			c.tiers[o.Tier].infl = 1 + o.Frac
			c.tiers[o.Tier].spike = o
		}
	}
	return c
}

// serve queues one visit on a tier; done runs when service completes.
// Service times are drawn from the request's own stream (common random
// numbers): runs that differ only in tracing overhead see identical
// baseline draws, so slowdown comparisons are paired.
func (c *chain) serve(t *tier, rng *xrand.Rand, now simtime.Time, done func(now simtime.Time)) {
	start := func(at simtime.Time) {
		dur := simtime.Duration(rng.LogNormal(float64(t.spec.MeanService)*t.infl, t.spec.CV))
		if dur < simtime.Microsecond {
			dur = simtime.Microsecond
		}
		if t.spike.SpikeProb > 0 && rng.Bool(t.spike.SpikeProb) {
			dur += t.spike.Spike
		}
		c.eng.ScheduleDetached(at+dur, func(end simtime.Time) {
			t.busy--
			if len(t.queue) > 0 {
				next := t.queue[0]
				t.queue = t.queue[1:]
				t.busy++
				next(end)
			}
			done(end)
		})
	}
	if t.busy < t.spec.Workers {
		t.busy++
		start(now)
		return
	}
	t.queue = append(t.queue, start)
}

// visit runs a request through tier i and its downstream calls.
func (c *chain) visit(i int, rng *xrand.Rand, now simtime.Time, done func(now simtime.Time)) {
	t := c.tiers[i]
	c.serve(t, rng, now, func(end simtime.Time) {
		c.calls(i, rng, t.spec.CallsToNext, end, done)
	})
}

// calls issues the remaining sequential downstream RPCs.
func (c *chain) calls(i int, rng *xrand.Rand, remaining int, now simtime.Time, done func(now simtime.Time)) {
	if i+1 >= len(c.tiers) || remaining <= 0 {
		done(now)
		return
	}
	c.visit(i+1, rng, now, func(end simtime.Time) {
		c.calls(i, rng, remaining-1, end, done)
	})
}

// RunOpenLoop drives the chain with Poisson arrivals at ratePerSec for
// dur, then drains up to 5x dur. Requests still unfinished at the drain
// deadline count as dropped.
func RunOpenLoop(spec ChainSpec, ratePerSec float64, dur simtime.Duration, ov []Overhead) Result {
	c := newChain(spec, ov)
	res := Result{}
	arr := xrand.Split(spec.Seed, "service/arrivals")
	idx := 0
	var schedule func(at simtime.Time)
	schedule = func(at simtime.Time) {
		if at >= dur {
			return
		}
		c.eng.ScheduleDetached(at, func(now simtime.Time) {
			begin := now
			rng := xrand.SplitN(c.seed, "service/req", idx)
			idx++
			c.visit(0, rng, now, func(end simtime.Time) {
				res.Completed++
				res.RTms = append(res.RTms, (end - begin).Millis())
			})
			schedule(now + simtime.Duration(arr.Exp(1e9/ratePerSec)))
		})
	}
	schedule(simtime.Duration(arr.Exp(1e9 / ratePerSec)))
	c.eng.RunUntil(dur * 5)
	res.Dropped = int(c.inFlight())
	res.ThroughputRPS = float64(res.Completed) / dur.Seconds()
	res.Summary = metrics.Summarize(res.RTms)
	return res
}

// RunClosedLoop drives the chain with a fixed client population for dur;
// each client reissues immediately on completion. Throughput under a
// closed loop is the online-benchmark metric of Figure 14.
func RunClosedLoop(spec ChainSpec, clients int, dur simtime.Duration, ov []Overhead) Result {
	c := newChain(spec, ov)
	res := Result{}
	idx := 0
	var issue func(at simtime.Time)
	issue = func(at simtime.Time) {
		c.eng.ScheduleDetached(at, func(now simtime.Time) {
			begin := now
			rng := xrand.SplitN(c.seed, "service/req", idx)
			idx++
			c.visit(0, rng, now, func(end simtime.Time) {
				if end < dur {
					res.Completed++
					res.RTms = append(res.RTms, (end - begin).Millis())
					issue(end)
				}
			})
		})
	}
	for i := 0; i < clients; i++ {
		issue(simtime.Duration(i) * simtime.Microsecond)
	}
	c.eng.RunUntil(dur)
	res.ThroughputRPS = float64(res.Completed) / dur.Seconds()
	res.Summary = metrics.Summarize(res.RTms)
	return res
}

// inFlight counts visits queued or being served.
func (c *chain) inFlight() int64 {
	var n int64
	for _, t := range c.tiers {
		n += int64(t.busy) + int64(len(t.queue))
	}
	return n
}
