// Package service simulates a microservice RPC chain — the DeathStarBench
// ComposePost-style request path used for the paper's end-to-end
// experiments (Figures 3b and 16, and the online throughput comparison of
// Figure 14).
//
// The model is a tandem queueing network: each tier has a worker pool and
// log-normal service times; a request visits the first tier and each tier
// makes a configurable number of *sequential* downstream calls (the paper
// notes tens of RPCs between two services for one request, which is what
// amplifies single-service tracing overhead into large end-to-end
// slowdowns). A tracing scheme appears as an Overhead on one tier:
// multiplicative service inflation plus occasional stall spikes
// (sampling interrupts, buffer hauling) — exactly the node-level effects
// measured on the scheduler substrate.
package service

import (
	"exist/internal/metrics"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// TierSpec describes one service tier.
type TierSpec struct {
	// Name labels the tier.
	Name string
	// Workers is the concurrent server pool size.
	Workers int
	// MeanService is the mean per-visit service time.
	MeanService simtime.Duration
	// CV is the service time's coefficient of variation.
	CV float64
	// CallsToNext is the number of sequential RPCs this tier makes to the
	// next tier per visit (ignored for the last tier).
	CallsToNext int
}

// ChainSpec describes the whole request path.
type ChainSpec struct {
	// Tiers is ordered from frontend to backend.
	Tiers []TierSpec
	// Seed drives all randomness.
	Seed uint64
}

// ComposePostChain returns the three-tier chain used by the end-to-end
// experiments: Proxy -> Logic -> DB with three DB calls per logic visit.
//
// The model is one service *instance* with small worker pools (as on the
// paper's DeathStarBench deployment, where pools are bounded by cores):
// per-instance capacity is ~1.1e3 requests/s and the idle response time is
// ~22 ms, matching Figure 16's axis. The paper's cluster-wide load points
// (1e2..1e5 requests/s) map onto one instance by dividing by the
// deployment width; see InstanceRate.
func ComposePostChain(seed uint64) ChainSpec {
	return ChainSpec{
		Seed: seed,
		Tiers: []TierSpec{
			{Name: "Proxy", Workers: 4, MeanService: 3800 * simtime.Microsecond, CV: 0.8, CallsToNext: 1},
			{Name: "Logic", Workers: 8, MeanService: 7600 * simtime.Microsecond, CV: 1.0, CallsToNext: 3},
			{Name: "DB", Workers: 12, MeanService: 3800 * simtime.Microsecond, CV: 1.2},
		},
	}
}

// DeploymentWidth is the number of service instances the cluster-wide
// load is spread over when mapping the paper's load axis onto one
// simulated instance.
const DeploymentWidth = 100

// InstanceRate converts a cluster-wide request rate (the paper's
// "Load=1eN") to one instance's arrival rate.
func InstanceRate(clusterLoad float64) float64 { return clusterLoad / DeploymentWidth }

// Overhead is a tracing scheme's effect on one tier.
type Overhead struct {
	// Tier indexes ChainSpec.Tiers.
	Tier int
	// Frac is the multiplicative service-time inflation (0.02 = 2%).
	Frac float64
	// SpikeProb is the per-visit probability of an extra stall.
	SpikeProb float64
	// Spike is the stall duration.
	Spike simtime.Duration
}

// Result reports one run.
type Result struct {
	// Completed counts finished requests.
	Completed int
	// Dropped counts requests still in flight at the deadline.
	Dropped int
	// ThroughputRPS is completed / duration.
	ThroughputRPS float64
	// RTms holds completed request response times in milliseconds.
	RTms []float64
	// Summary is the percentile summary of RTms.
	Summary metrics.Summary
}

// tier is runtime queue state. The log-normal (mu, sigma) of the inflated
// service-time distribution is precomputed once per run — the draw in
// startService is bit-identical to recomputing them per visit.
type tier struct {
	spec  TierSpec
	spike Overhead
	mu    float64
	sigma float64
	busy  int
	queue []*request
	qhead int
}

// request is one pooled in-flight request: its position along the chain's
// static visit sequence, its reseedable private RNG stream, and a cached
// completion callback so the hot path schedules service completions
// without allocating a closure per visit.
type request struct {
	c          *chain
	rng        *xrand.Rand
	begin      simtime.Time
	pos        int // index into chain.visitSeq: the tier being served or queued for
	client     int // scheduled runs: originating client index (else 0)
	completeFn func(end simtime.Time)
	issueFn    func(now simtime.Time) // closed loop only: reissue this client
}

// chain is one simulation instance. Because every tier makes a fixed
// number of sequential downstream calls, the tiers a request visits form a
// static sequence (visitSeq) shared by all requests; a request is just a
// cursor into it. Service times are drawn from the request's own stream
// (common random numbers): runs that differ only in tracing overhead see
// identical baseline draws, so slowdown comparisons are paired.
type chain struct {
	eng      *simtime.Engine
	seed     uint64
	tiers    []tier
	visitSeq []int8
	free     []*request
	onDone   func(r *request, end simtime.Time)
}

func newChain(spec ChainSpec, ov []Overhead) *chain {
	c := &chain{
		eng:  simtime.NewEngine(),
		seed: spec.Seed,
	}
	infl := make([]float64, len(spec.Tiers))
	for i, ts := range spec.Tiers {
		c.tiers = append(c.tiers, tier{spec: ts})
		infl[i] = 1
	}
	for _, o := range ov {
		if o.Tier >= 0 && o.Tier < len(c.tiers) {
			infl[o.Tier] = 1 + o.Frac
			c.tiers[o.Tier].spike = o
		}
	}
	for i := range c.tiers {
		t := &c.tiers[i]
		t.mu, t.sigma = xrand.LogNormalParams(float64(t.spec.MeanService)*infl[i], t.spec.CV)
	}
	// Flatten the call tree of one request into the tier visit order:
	// depth-first, each tier followed by CallsToNext copies of the next
	// tier's subtree.
	var walk func(i int)
	walk = func(i int) {
		c.visitSeq = append(c.visitSeq, int8(i))
		if i+1 < len(c.tiers) {
			for k := 0; k < c.tiers[i].spec.CallsToNext; k++ {
				walk(i + 1)
			}
		}
	}
	walk(0)
	return c
}

// alloc returns a pooled request, creating one (with its cached completion
// closure) only when the pool is empty.
func (c *chain) alloc() *request {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		return r
	}
	r := &request{c: c, rng: xrand.New(0)}
	r.completeFn = r.complete
	return r
}

// enter places the request at its current tier: service starts immediately
// if a worker is free, otherwise the request joins the tier's FIFO queue.
func (c *chain) enter(r *request, t *tier, now simtime.Time) {
	if t.busy < t.spec.Workers {
		t.busy++
		c.startService(r, t, now)
		return
	}
	t.queue = append(t.queue, r)
}

// startService draws the visit's service time from the request's stream
// and schedules its completion. The caller has already taken a worker.
func (c *chain) startService(r *request, t *tier, at simtime.Time) {
	dur := simtime.Duration(r.rng.LogNormalMS(t.mu, t.sigma))
	if dur < simtime.Microsecond {
		dur = simtime.Microsecond
	}
	if t.spike.SpikeProb > 0 && r.rng.Bool(t.spike.SpikeProb) {
		dur += t.spike.Spike
	}
	c.eng.ScheduleDetached(at+dur, r.completeFn)
}

// complete finishes the request's current visit: release the worker, hand
// it to the queue's head if any, then advance this request to its next
// tier (or finish it). The queued request starts service before this one
// advances, matching the tandem model's event order.
func (r *request) complete(end simtime.Time) {
	c := r.c
	t := &c.tiers[c.visitSeq[r.pos]]
	t.busy--
	if t.qhead < len(t.queue) {
		next := t.queue[t.qhead]
		t.queue[t.qhead] = nil
		t.qhead++
		if t.qhead == len(t.queue) {
			t.queue = t.queue[:0]
			t.qhead = 0
		}
		t.busy++
		c.startService(next, t, end)
	}
	r.pos++
	if r.pos < len(c.visitSeq) {
		c.enter(r, &c.tiers[c.visitSeq[r.pos]], end)
		return
	}
	c.onDone(r, end)
}

// launch (re)starts a pooled request as request number idx at time now.
func (c *chain) launch(r *request, idx int, now simtime.Time) {
	r.begin = now
	r.pos = 0
	r.rng.ReseedSplitN(c.seed, "service/req", idx)
	c.enter(r, &c.tiers[c.visitSeq[0]], now)
}

// RunOpenLoop drives the chain with Poisson arrivals at ratePerSec for
// dur, then drains up to 5x dur. Requests still unfinished at the drain
// deadline count as dropped.
func RunOpenLoop(spec ChainSpec, ratePerSec float64, dur simtime.Duration, ov []Overhead) Result {
	c := newChain(spec, ov)
	res := Result{}
	arr := xrand.Split(spec.Seed, "service/arrivals")
	idx := 0
	c.onDone = func(r *request, end simtime.Time) {
		res.Completed++
		res.RTms = append(res.RTms, (end - r.begin).Millis())
		c.free = append(c.free, r)
	}
	var arrive func(now simtime.Time)
	arrive = func(now simtime.Time) {
		c.launch(c.alloc(), idx, now)
		idx++
		if at := now + simtime.Duration(arr.Exp(1e9/ratePerSec)); at < dur {
			c.eng.ScheduleDetached(at, arrive)
		}
	}
	if at := simtime.Duration(arr.Exp(1e9 / ratePerSec)); at < dur {
		c.eng.ScheduleDetached(at, arrive)
	}
	c.eng.RunUntil(dur * 5)
	res.Dropped = int(c.inFlight())
	res.ThroughputRPS = float64(res.Completed) / dur.Seconds()
	res.Summary = metrics.Summarize(res.RTms)
	return res
}

// RunClosedLoop drives the chain with a fixed client population for dur;
// each client reissues immediately on completion. Throughput under a
// closed loop is the online-benchmark metric of Figure 14.
func RunClosedLoop(spec ChainSpec, clients int, dur simtime.Duration, ov []Overhead) Result {
	c := newChain(spec, ov)
	res := Result{}
	idx := 0
	c.onDone = func(r *request, end simtime.Time) {
		if end < dur {
			res.Completed++
			res.RTms = append(res.RTms, (end - r.begin).Millis())
			c.eng.ScheduleDetached(end, r.issueFn)
		}
	}
	for i := 0; i < clients; i++ {
		r := c.alloc()
		r.issueFn = func(now simtime.Time) {
			c.launch(r, idx, now)
			idx++
		}
		c.eng.ScheduleDetached(simtime.Duration(i)*simtime.Microsecond, r.issueFn)
	}
	c.eng.RunUntil(dur)
	res.ThroughputRPS = float64(res.Completed) / dur.Seconds()
	res.Summary = metrics.Summarize(res.RTms)
	return res
}

// Arrival is one externally-scheduled request arrival, typically compiled
// from a scenario spec (spec.ArrivalEvent converts field for field).
type Arrival struct {
	// At is the arrival time from run start.
	At simtime.Time
	// Client indexes the originating traffic source.
	Client int
}

// ScheduleResult extends Result with per-client response times, so SLO
// attainment can be judged per traffic class.
type ScheduleResult struct {
	Result
	// ByClient holds completed response times (ms) per client index.
	ByClient [][]float64
}

// RunSchedule drives the chain with a precompiled arrival schedule
// (sorted by time) for dur, then drains up to 5x dur; requests still in
// flight at the drain deadline count as dropped. Each request's service
// draws come from its own stream keyed by arrival index, so the run is
// deterministic for a given schedule regardless of how it was produced.
// clients sizes ByClient; arrivals naming an index outside [0, clients)
// still run but are only aggregated.
func RunSchedule(spec ChainSpec, arrivals []Arrival, dur simtime.Duration, clients int, ov []Overhead) ScheduleResult {
	c := newChain(spec, ov)
	res := ScheduleResult{ByClient: make([][]float64, clients)}
	c.onDone = func(r *request, end simtime.Time) {
		res.Completed++
		rt := (end - r.begin).Millis()
		res.RTms = append(res.RTms, rt)
		if r.client >= 0 && r.client < len(res.ByClient) {
			res.ByClient[r.client] = append(res.ByClient[r.client], rt)
		}
		c.free = append(c.free, r)
	}
	i := 0
	var pump func(now simtime.Time)
	pump = func(now simtime.Time) {
		for i < len(arrivals) && arrivals[i].At <= now {
			r := c.alloc()
			r.client = arrivals[i].Client
			c.launch(r, i, now)
			i++
		}
		if i < len(arrivals) {
			c.eng.ScheduleDetached(arrivals[i].At, pump)
		}
	}
	if len(arrivals) > 0 {
		c.eng.ScheduleDetached(arrivals[0].At, pump)
	}
	c.eng.RunUntil(dur * 5)
	res.Dropped = int(c.inFlight())
	res.ThroughputRPS = float64(res.Completed) / dur.Seconds()
	res.Summary = metrics.Summarize(res.RTms)
	return res
}

// inFlight counts visits queued or being served.
func (c *chain) inFlight() int64 {
	var n int64
	for i := range c.tiers {
		t := &c.tiers[i]
		n += int64(t.busy) + int64(len(t.queue)-t.qhead)
	}
	return n
}
