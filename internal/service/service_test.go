package service

import (
	"testing"

	"exist/internal/simtime"
)

func TestOpenLoopLowLoad(t *testing.T) {
	spec := ComposePostChain(1)
	res := RunOpenLoop(spec, InstanceRate(1e4), 4*simtime.Second, nil)
	if res.Completed < 300 || res.Completed > 500 {
		t.Fatalf("completed = %d at 100 rps for 4s", res.Completed)
	}
	if res.Dropped > 5 {
		t.Fatalf("dropped = %d at trivial load", res.Dropped)
	}
	// Idle RT is roughly the sum of service demands:
	// 3.8 + 7.6 + 3*3.8 = 22.8 ms mean-ish (Figure 16's oracle level).
	if res.Summary.P50 < 10 || res.Summary.P50 > 40 {
		t.Fatalf("p50 = %.2fms implausible for idle chain", res.Summary.P50)
	}
}

func TestOpenLoopQueueingGrowsWithLoad(t *testing.T) {
	spec := ComposePostChain(2)
	low := RunOpenLoop(spec, InstanceRate(1e4), 4*simtime.Second, nil)
	high := RunOpenLoop(spec, InstanceRate(1e5), 4*simtime.Second, nil)
	if high.Summary.P99 <= low.Summary.P99*1.3 {
		t.Fatalf("p99 must grow with load: %.2f vs %.2f", low.Summary.P99, high.Summary.P99)
	}
}

func TestOverheadAmplification(t *testing.T) {
	// The Figure 3b phenomenon: ~2% single-tier overhead produces far
	// more than 2% tail degradation near saturation.
	spec := ComposePostChain(3)
	ov := []Overhead{{Tier: 1, Frac: 0.02, SpikeProb: 0.02, Spike: 4 * simtime.Millisecond}}
	base := RunOpenLoop(spec, InstanceRate(1e5), 8*simtime.Second, nil)
	traced := RunOpenLoop(spec, InstanceRate(1e5), 8*simtime.Second, ov)
	slow := traced.Summary.P99/base.Summary.P99 - 1
	if slow < 0.05 {
		t.Fatalf("tail amplification = %.3f, want >> 2%%", slow)
	}
	// And at low load the same overhead matters much less (relative to
	// the high-load amplification).
	baseLow := RunOpenLoop(spec, InstanceRate(1e4), 8*simtime.Second, nil)
	tracedLow := RunOpenLoop(spec, InstanceRate(1e4), 8*simtime.Second, ov)
	slowLow := tracedLow.Summary.P99/baseLow.Summary.P99 - 1
	if slowLow > slow {
		t.Fatalf("low-load slowdown %.3f exceeds high-load %.3f", slowLow, slow)
	}
}

func TestClosedLoopThroughputDegrades(t *testing.T) {
	spec := ComposePostChain(4)
	base := RunClosedLoop(spec, 48, 4*simtime.Second, nil)
	// 48 clients saturate a ~1.1e3 rps instance.
	if base.ThroughputRPS < 500 {
		t.Fatalf("closed loop throughput = %.0f implausibly low", base.ThroughputRPS)
	}
	traced := RunClosedLoop(spec, 48, 4*simtime.Second, []Overhead{
		{Tier: 1, Frac: 0.05, SpikeProb: 0.05, Spike: 4 * simtime.Millisecond},
	})
	loss := 1 - traced.ThroughputRPS/base.ThroughputRPS
	if loss <= 0.02 {
		t.Fatalf("throughput loss = %.4f, want noticeable for 5%% inflation", loss)
	}
	if loss > 0.5 {
		t.Fatalf("throughput loss = %.4f implausibly high", loss)
	}
}

func TestDeterminism(t *testing.T) {
	spec := ComposePostChain(5)
	a := RunOpenLoop(spec, 500, 1*simtime.Second, nil)
	b := RunOpenLoop(spec, 500, 1*simtime.Second, nil)
	if a.Completed != b.Completed || a.Summary.P99 != b.Summary.P99 {
		t.Fatal("open-loop runs are not deterministic")
	}
}

func TestOverheadOnInvalidTierIgnored(t *testing.T) {
	spec := ComposePostChain(6)
	res := RunOpenLoop(spec, 200, 500*simtime.Millisecond, []Overhead{{Tier: 99, Frac: 10}})
	if res.Completed == 0 {
		t.Fatal("run with out-of-range overhead tier failed")
	}
}

func TestInstanceRate(t *testing.T) {
	if InstanceRate(1e4) != 100 {
		t.Fatalf("InstanceRate(1e4) = %v", InstanceRate(1e4))
	}
}
