package simtime

import "testing"

// BenchmarkEngineScheduleFire measures the schedule→fire round trip that
// every simulated timer pays. The Detached variant should show zero
// allocs/op in steady state: fired events return to the engine's free
// list and are handed back out on the next schedule.
func BenchmarkEngineScheduleFire(b *testing.B) {
	fn := func(Time) {}
	b.Run("handle", func(b *testing.B) {
		e := NewEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.After(1, fn)
			e.Step()
		}
	})
	b.Run("detached", func(b *testing.B) {
		e := NewEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.AfterDetached(1, fn)
			e.Step()
		}
	})
}

func TestDetachedEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.ScheduleDetached(30, func(Time) { got = append(got, 3) })
	e.ScheduleDetached(10, func(Time) { got = append(got, 1) })
	e.AfterDetached(20, func(Time) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v", e.Now())
	}
}

func TestDetachedEventsRecycle(t *testing.T) {
	e := NewEngine()
	fired := 0
	// Schedule/fire repeatedly: after warm-up the free list should
	// satisfy every request, so the queue never grows and events
	// interleave correctly with handle-carrying ones.
	for i := 0; i < 100; i++ {
		e.AfterDetached(1, func(Time) { fired++ })
		ev := e.After(2, func(Time) {})
		e.Step()
		ev.Cancel()
	}
	if fired != 100 {
		t.Fatalf("fired %d", fired)
	}
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1", len(e.free))
	}
}

func TestDetachedRescheduleFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 10 {
			e.AfterDetached(5, tick)
		}
	}
	e.AfterDetached(5, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("ticked %d times", count)
	}
}
