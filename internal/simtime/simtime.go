// Package simtime provides the virtual clock and discrete-event engine that
// every simulated substrate in this repository is built on.
//
// All simulation time is virtual: a Time is a count of simulated nanoseconds
// since the start of the run. Nothing in this package (or in any simulation
// built on it) reads the wall clock, which keeps every experiment
// deterministic and reproducible.
package simtime

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the simulation epoch.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration = Time

// Common durations, mirroring package time but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Event is a scheduled callback in an Engine. Events are created by
// Engine.Schedule and may be cancelled until they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func(now Time)
	index    int // queue position (see eventQueue); deadIndex once fired or cancelled
	engine   *Engine
	detached bool // recycled after firing; no handle exists outside the engine
}

// At returns the virtual time the event is scheduled to fire at.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index != deadIndex }

// Cancel removes the event from its engine's queue. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.index == deadIndex {
		return
	}
	e.engine.queue.remove(e)
}

// heapEntry is one slot of the event queue: the (at, seq) sort key stored
// inline next to the event pointer, so ordering work reads sequential slice
// memory instead of dereferencing events scattered across the heap's
// allocations. Queue operations only touch an *Event to maintain its index
// field when an entry actually moves — and only for handle-carrying
// events: the entry's seq carries the engine sequence shifted left one
// bit with the detached flag in bit 0 (order-preserving, since engine
// sequences are unique), so the queue can tell without a dereference that
// a detached event needs no index upkeep. Detached events cannot be
// cancelled or inspected, and index is only read by Cancel/Pending, so
// skipping the write avoids a cache-cold store per move for the bulk of
// traffic.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// entrySeq packs an event's sequence and detached flag into a queue key.
func entrySeq(ev *Event) uint64 {
	s := ev.seq << 1
	if ev.detached {
		s |= 1
	}
	return s
}

// deadIndex marks an event that fired or was cancelled. Live events carry
// a non-negative heap position.
const deadIndex = -1

// setIndex records the heap position on handle-carrying events.
func (e heapEntry) setIndex(i int) {
	if e.seq&1 == 0 {
		e.ev.index = i
	}
}

// entryBefore reports the (at, seq) ordering.
func entryBefore(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a monomorphic 4-ary min-heap of entries ordered by
// (at, seq). The 4-ary shape halves the tree depth versus binary, and the
// inline keys keep each sift level's comparisons within two cache lines.
type eventHeap []heapEntry

// push inserts e, maintaining the heap order and index fields.
func (h *eventHeap) push(e heapEntry) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !entryBefore(e, p) {
			break
		}
		q[i] = p
		p.setIndex(i)
		i = parent
	}
	q[i] = e
	e.setIndex(i)
	*h = q
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	q := *h
	top := q[0].ev
	top.index = deadIndex
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	*h = q[:n]
	if n > 0 {
		h.siftDown(last, 0)
	}
	return top
}

// siftDown places e at position i, moving smaller children up.
func (h *eventHeap) siftDown(e heapEntry, i int) {
	q := *h
	n := len(q)
	for {
		child := i<<2 + 1
		if child >= n {
			break
		}
		mc := child
		end := child + 4
		if end > n {
			end = n
		}
		for c := child + 1; c < end; c++ {
			if entryBefore(q[c], q[mc]) {
				mc = c
			}
		}
		if !entryBefore(q[mc], e) {
			break
		}
		q[i] = q[mc]
		q[i].setIndex(i)
		i = mc
	}
	q[i] = e
	e.setIndex(i)
}

// siftUp places e at position i, moving larger parents down.
func (h *eventHeap) siftUp(e heapEntry, i int) {
	q := *h
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !entryBefore(e, p) {
			break
		}
		q[i] = p
		p.setIndex(i)
		i = parent
	}
	q[i] = e
	e.setIndex(i)
}

// remove deletes the entry at heap position i.
func (h *eventHeap) remove(i int) {
	q := *h
	q[i].ev.index = deadIndex
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	*h = q[:n]
	if i == n {
		return
	}
	// Re-place the displaced tail element: it moves up when it beats the
	// parent of the vacated slot, down otherwise.
	if i > 0 && entryBefore(last, q[(i-1)>>2]) {
		h.siftUp(last, i)
	} else {
		h.siftDown(last, i)
	}
}

// eventQueue is the engine's priority queue of events ordered by
// (at, seq): a single 4-ary min-heap. The seq tiebreak makes simultaneous
// events fire in scheduling order, which keeps runs deterministic — and
// because (at, seq) is a total order, the pop sequence is independent of
// the heap's internal layout, so changing its shape or storage cannot
// perturb a run. (A two-band near/far variant with batch refill was
// measured and lost to the plain heap on every workload here: the queues
// stay small enough that selection scans cost more than deep sifts save.)
type eventQueue struct {
	heap eventHeap
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int { return len(q.heap) }

// push inserts ev.
func (q *eventQueue) push(ev *Event) {
	q.heap.push(heapEntry{at: ev.at, seq: entrySeq(ev), ev: ev})
}

// peek returns the key of the earliest event. It must not be called on an
// empty queue.
func (q *eventQueue) peek() heapEntry { return q.heap[0] }

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *Event { return q.heap.popMin() }

// remove deletes a pending event.
func (q *eventQueue) remove(ev *Event) { q.heap.remove(ev.index) }

// Engine is a discrete-event simulation engine: a virtual clock plus a queue
// of timed callbacks. The zero value is ready to use and starts at time 0.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	free  []*Event // recycled detached events; see ScheduleDetached
}

// NewEngine returns an engine whose clock starts at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return e.queue.Len() }

// Schedule queues fn to run at the absolute virtual time at. Scheduling in
// the past (at < Now) panics: the simulated past is immutable, and silently
// warping an event forward would hide bugs in the caller.
func (e *Engine) Schedule(at Time, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, engine: e}
	e.seq++
	e.queue.push(ev)
	return ev
}

// After queues fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func(now Time)) *Event {
	return e.Schedule(e.now+d, fn)
}

// ScheduleDetached queues fn like Schedule but returns no handle: the
// event cannot be cancelled or inspected, which lets the engine recycle
// the Event struct through a free list the moment it fires. Most of the
// control plane schedules fire-and-forget timers and discards the
// handle; routing those through here removes the per-event allocation
// once the free list warms up. (Handle-carrying events are never pooled
// — a caller could hold a stale *Event across reuse and cancel somebody
// else's timer.)
func (e *Engine) ScheduleDetached(at Time, fn func(now Time)) {
	if at < e.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", at, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, engine: e, detached: true}
	}
	e.seq++
	e.queue.push(ev)
}

// AfterDetached queues fn to run d nanoseconds from now with no handle;
// see ScheduleDetached.
func (e *Engine) AfterDetached(d Duration, fn func(now Time)) {
	e.ScheduleDetached(e.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It returns false if no events are pending.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := e.queue.popMin()
	e.now = ev.at
	fn := ev.fn
	if ev.detached {
		// Recycle before firing so the callback itself can reuse the
		// struct; fn is cleared so the free list does not pin closures.
		ev.fn = nil
		e.free = append(e.free, ev)
	}
	fn(e.now)
	return true
}

// PeekTime returns the time of the earliest pending event, or ok=false when
// the queue is empty.
func (e *Engine) PeekTime() (t Time, ok bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue.peek().at, true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline, then advances the clock to deadline.
func (e *Engine) RunUntil(deadline Time) {
	for e.queue.Len() > 0 && e.queue.peek().at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Advance moves the clock forward by d without firing events. It panics if
// an event is pending before the new time; use RunUntil to process events.
func (e *Engine) Advance(d Duration) {
	target := e.now + d
	if t, ok := e.PeekTime(); ok && t < target {
		panic(fmt.Sprintf("simtime: Advance(%v) would skip event at %v", d, t))
	}
	e.now = target
}
