package simtime

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.500µs"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3 {
		t.Errorf("Millis() = %v, want 3", got)
	}
	if got := (5 * Microsecond).Micros(); got != 5 {
		t.Errorf("Micros() = %v, want 5", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func(Time) { got = append(got, 3) })
	e.Schedule(10, func(Time) { got = append(got, 1) })
	e.Schedule(20, func(Time) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func(Time) { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending before firing")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	ev.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(now Time) { got = append(got, now) })
	}
	e.RunUntil(20)
	if len(got) != 2 || got[0] != 5 || got[1] != 15 {
		t.Fatalf("RunUntil fired wrong events: %v", got)
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v, want 20", e.Now())
	}
	e.RunUntil(30)
	if len(got) != 3 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestEngineAfterAndReschedulingInsideCallback(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func(now Time)
	tick = func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) < 4 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(5, func(Time) {})
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
	e.Schedule(150, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance past a pending event should panic")
		}
	}()
	e.Advance(100)
}

// Property: however events are scheduled, they always fire in nondecreasing
// time order and the clock never goes backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.Schedule(Time(off), func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue should return ok=false")
	}
	e.Schedule(42, func(Time) {})
	if at, ok := e.PeekTime(); !ok || at != 42 {
		t.Fatalf("PeekTime = %v,%v want 42,true", at, ok)
	}
}
