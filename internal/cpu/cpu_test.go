package cpu

import (
	"testing"

	"exist/internal/simtime"
)

func TestCyclesToNSRoundTrip(t *testing.T) {
	m := Default()
	for _, cycles := range []int64{0, 1, 1000, 2900000, 1 << 40} {
		ns := m.CyclesToNS(cycles)
		back := m.NSToCycles(ns)
		// Truncating to whole nanoseconds can lose up to one clock period
		// (~3 cycles at 2.9 GHz) plus float rounding at large magnitudes.
		diff := cycles - back
		tol := int64(4)
		if rel := cycles / 1_000_000; rel > tol {
			tol = rel
		}
		if diff < -tol || diff > tol {
			t.Errorf("round trip %d cycles -> %v -> %d", cycles, ns, back)
		}
	}
}

func TestCyclesToNSFrequency(t *testing.T) {
	m := Default()
	// 2.9e9 cycles at 2.9 GHz is exactly one second.
	got := m.CyclesToNS(2_900_000_000)
	if got != simtime.Second {
		t.Errorf("2.9e9 cycles = %v, want 1s", got)
	}
}

func TestDefaultOrderings(t *testing.T) {
	m := Default()
	if m.MSRWrite <= m.MSRRead {
		t.Error("WRMSR must cost more than RDMSR")
	}
	if m.SampleHandler <= m.Interrupt {
		t.Error("a sampling handler includes more than the bare interrupt")
	}
	if m.SwitchRecord >= m.ContextSwitch {
		t.Error("the 24-byte five-tuple record must be far cheaper than a switch")
	}
	if m.HTShare <= 1 || m.LLCShare <= 1 || m.CoreShare <= 1 {
		t.Error("interference factors must inflate execution")
	}
	if m.PTBranchOverhead <= 0 || m.PTBranchOverhead > 0.05 {
		t.Errorf("PT hardware overhead %v outside the digit-level range", m.PTBranchOverhead)
	}
}

func TestInterferenceFactors(t *testing.T) {
	m := Default()
	if f := m.InterferenceFactor(ShareNone); f != 1.0 {
		t.Errorf("exclusive factor = %v, want 1.0", f)
	}
	ht := m.InterferenceFactor(ShareHT)
	core := m.InterferenceFactor(ShareCore)
	llc := m.InterferenceFactor(ShareLLC)
	// Figure 5: HT sharing hurts most (15.1%), then core (13.7%), then
	// LLC (12.2%) — here as relative inflation ordering.
	if !(ht > core && core > llc && llc > 1.0) {
		t.Errorf("interference ordering violated: HT=%v core=%v llc=%v", ht, core, llc)
	}
}

func TestSharingKindString(t *testing.T) {
	cases := map[SharingKind]string{
		ShareNone:       "Exclusive",
		ShareHT:         "HT",
		ShareCore:       "Core",
		ShareLLC:        "LLC",
		SharingKind(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("SharingKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
