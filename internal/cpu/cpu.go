// Package cpu defines the processor cost model shared by every simulated
// substrate: how long the primitive operations of tracing and scheduling
// take, how fast cores execute, and how co-location on shared hardware
// (hyperthreads, physical cores, the last-level cache) inflates execution.
//
// The EXIST paper's efficiency arguments are entirely about *which* costly
// operations each tracing scheme performs and *how often* — MSR writes at
// every context switch versus once per core, sampling interrupts at 4 kHz,
// per-syscall probes, and per-megabyte trace hauling. The absolute values
// below are calibrated to public microarchitectural measurements (WRMSR is
// a serializing instruction costing on the order of a microsecond; a Linux
// context switch costs a few microseconds; a perf sampling NMI plus record
// writeout costs several microseconds) so that the relative overheads of
// the schemes land where the paper reports them.
package cpu

import "exist/internal/simtime"

// Model holds every primitive cost and rate the simulators charge.
// Durations are virtual nanoseconds (see package simtime).
type Model struct {
	// FrequencyGHz converts cycles to nanoseconds: ns = cycles / FrequencyGHz.
	// The paper's offline platform is a 2.9 GHz Ice Lake Xeon 8369B.
	FrequencyGHz float64

	// ContextSwitch is the base cost of a scheduler context switch
	// (runqueue manipulation, address-space switch, register state),
	// before any tracing hooks add to it.
	ContextSwitch simtime.Duration

	// MSRWrite is the cost of one WRMSR to an IA32_RTIT_* register.
	// WRMSR is serializing and drains the pipeline; on production parts
	// writes to the RTIT control MSRs cost roughly a microsecond. This is
	// the operation OTC exists to eliminate from the context-switch path.
	MSRWrite simtime.Duration

	// MSRRead is the cost of one RDMSR (cheaper than WRMSR, still
	// serialized against the trace engine).
	MSRRead simtime.Duration

	// ModeSwitch is the cost of one user/kernel privilege transition.
	// Conventional tracing control that consults user-level state pays two
	// of these per control action; OTC operates purely in kernel mode.
	ModeSwitch simtime.Duration

	// Interrupt is the base cost of taking an interrupt (NMI or timer),
	// excluding the handler body.
	Interrupt simtime.Duration

	// SampleHandler is the cost of a statistical-sampling handler body
	// (perf record: read counters, unwind a shallow stack, append an event
	// to the mmap ring). Charged per sample by the StaSam baseline.
	SampleHandler simtime.Duration

	// SyscallProbe is the cost of an attached kernel tracepoint program
	// (bpftrace sys_enter: program invocation, map update, output buffer
	// reservation). Charged per syscall by the eBPF baseline.
	SyscallProbe simtime.Duration

	// SyscallBase is the bare cost of a syscall entry/exit pair without
	// any probe attached.
	SyscallBase simtime.Duration

	// SwitchRecord is the cost of appending the 24-byte five-tuple
	// context-switch record EXIST's kernel hooker writes at sched_switch.
	SwitchRecord simtime.Duration

	// TimerProgram is the cost of (re)arming a high-resolution timer.
	TimerProgram simtime.Duration

	// TraceHaulPerMB is the cost, charged on the traced machine, of
	// hauling one megabyte of trace data from the hardware output buffer
	// to its destination file while the workload runs. Native hardware
	// tracing (perf intel_pt) pays this continuously, which is the largest
	// part of its overhead on branchy workloads. EXIST avoids it: traces
	// stay in the pinned cache-bypass buffer and are shipped after the
	// bounded tracing window ends.
	TraceHaulPerMB simtime.Duration

	// PTBranchOverhead is the fractional execution slowdown imposed by the
	// PT hardware itself while TraceEn=1 with BranchEn (packet generation
	// bandwidth stealing store ports and filling fill buffers), per unit of
	// branch density. The effective slowdown for a workload is
	// PTBranchOverhead * (branches per cycle) / referenceBranchDensity —
	// computed by the tracers from the workload profile.
	PTBranchOverhead float64

	// CYCPacketExtra is the additional fractional slowdown when
	// cycle-accurate packets (CYCEn) are enabled on top of BranchEn.
	CYCPacketExtra float64

	// HTShare is the multiplicative cycle inflation a thread suffers when
	// its hyperthread sibling is busy (two logical cores sharing one
	// physical core's execution resources).
	HTShare float64

	// CoreShare is the additional inflation when distinct workloads
	// time-share the same physical core set (cache/TLB pollution across
	// switches), applied per co-runner beyond the first.
	CoreShare float64

	// LLCShare is the inflation from sharing the last-level cache with an
	// active co-runner in the same LLC domain.
	LLCShare float64

	// TracingLLCFootprint is the fractional increase in LLC misses caused
	// by the tracing facility's own memory traffic (the paper measures
	// about 1.3% for hardware tracing with cache-bypass buffers).
	TracingLLCFootprint float64
}

// Default returns the calibrated cost model used by all experiments.
func Default() Model {
	return Model{
		FrequencyGHz:        2.9,
		ContextSwitch:       3 * simtime.Microsecond,
		MSRWrite:            1200 * simtime.Nanosecond,
		MSRRead:             400 * simtime.Nanosecond,
		ModeSwitch:          600 * simtime.Nanosecond,
		Interrupt:           1800 * simtime.Nanosecond,
		SampleHandler:       6 * simtime.Microsecond,
		SyscallProbe:        1500 * simtime.Nanosecond,
		SyscallBase:         500 * simtime.Nanosecond,
		SwitchRecord:        120 * simtime.Nanosecond,
		TimerProgram:        300 * simtime.Nanosecond,
		TraceHaulPerMB:      400 * simtime.Microsecond,
		PTBranchOverhead:    0.008,
		CYCPacketExtra:      0.002,
		HTShare:             1.28,
		CoreShare:           1.06,
		LLCShare:            1.10,
		TracingLLCFootprint: 0.013,
	}
}

// CyclesToNS converts a cycle count to virtual nanoseconds.
func (m Model) CyclesToNS(cycles int64) simtime.Duration {
	return simtime.Duration(float64(cycles) / m.FrequencyGHz)
}

// NSToCycles converts virtual nanoseconds to a cycle count.
func (m Model) NSToCycles(d simtime.Duration) int64 {
	return int64(float64(d) * m.FrequencyGHz)
}

// SharingKind enumerates the resource-sharing configurations of Figure 5:
// which multiplexed hardware resource two co-located workloads share.
type SharingKind int

const (
	// ShareNone: the workload runs exclusively.
	ShareNone SharingKind = iota
	// ShareHT: co-runners are pinned to sibling hyperthreads.
	ShareHT
	// ShareCore: co-runners time-share the same physical cores.
	ShareCore
	// ShareLLC: co-runners run on distinct cores within one LLC domain.
	ShareLLC
)

// String returns the human-readable sharing name used in tables.
func (k SharingKind) String() string {
	switch k {
	case ShareNone:
		return "Exclusive"
	case ShareHT:
		return "HT"
	case ShareCore:
		return "Core"
	case ShareLLC:
		return "LLC"
	default:
		return "unknown"
	}
}

// InterferenceFactor returns the multiplicative cycle inflation for a
// workload whose co-runner shares the given resource.
func (m Model) InterferenceFactor(k SharingKind) float64 {
	switch k {
	case ShareHT:
		return m.HTShare
	case ShareCore:
		return m.CoreShare * m.LLCShare // time-sharing a core implies sharing its caches
	case ShareLLC:
		return m.LLCShare
	default:
		return 1.0
	}
}
