package sched

import (
	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// RunContext is what the scheduler hands an Exec for one bounded segment.
type RunContext struct {
	// Core is the executing core.
	Core *Core
	// Start is the segment start time.
	Start simtime.Time
	// MaxNS bounds the segment's wall duration (one timeslice).
	MaxNS simtime.Duration
	// CyclesPerNS is the effective execution rate after co-location
	// interference (cost-model frequency divided by the interference
	// factor).
	CyclesPerNS float64
	// TracingActive reports whether the core's PT tracer is enabled and
	// the thread's context passes the filter, so the Exec can charge the
	// hardware packet-generation stretch.
	TracingActive bool
	// Sink receives the ground-truth branch stream in batches; nil when
	// nobody is listening (fast path). Batches are views into a reused
	// buffer, valid only for the duration of the EmitBranches call.
	Sink binary.BranchSink
}

// RunResult reports what one segment did.
type RunResult struct {
	// UsedNS is the wall time consumed (always >= 1).
	UsedNS simtime.Duration
	// Cycles, Insns and Branches are the useful work retired.
	Cycles   int64
	Insns    int64
	Branches int64
	// BulkCond and BulkInd, when nonzero, ask the scheduler to feed the
	// core tracer an aggregate burst (analytic workloads that do not
	// materialize individual branch events).
	BulkCond int64
	BulkInd  int64
	// Stop says why the segment ended.
	Stop binary.StopReason
	// SyscallClass is valid when Stop == binary.StopSyscall.
	SyscallClass kernel.SyscallClass
}

// Exec models a thread's execution. Implementations must be resumable:
// Run is called repeatedly for consecutive segments.
type Exec interface {
	// Run executes at most ctx.MaxNS of wall time.
	Run(ctx *RunContext) RunResult
	// CurrentIP returns the instruction pointer the thread would resume
	// at (what a tracer's TIP.PGE records on schedule-in).
	CurrentIP() uint64
}

// refBranchDensity is the branch density (PT events per kilocycle) at
// which cpu.Model.PTBranchOverhead applies exactly; denser programs pay
// proportionally more packet-generation bandwidth.
const refBranchDensity = 50.0

// PTStretchFor computes the multiplicative execution stretch PT imposes on
// a workload with the given branch density, with cycle-accurate packets
// (CYCEn) included since EXIST enables them.
func PTStretchFor(cost cpu.Model, branchPerKCycle float64) float64 {
	d := branchPerKCycle / refBranchDensity
	return 1 + (cost.PTBranchOverhead+cost.CYCPacketExtra)*d
}

// WalkerExec executes a synthetic binary block-by-block, producing the
// exact branch stream. It is the execution model for accuracy experiments.
//
// Scale is the slow-motion knob: the fraction of the real branch rate that
// is actually materialized. Real hardware retires ~1e8 PT events per
// second per core, far too many to simulate individually; running at
// Scale=1e-3 keeps all rates and ratios intact while making a 0.5 s
// tracing window cost ~1e5 simulated events. Buffer sizes are scaled by
// the same factor (see trace.SpaceScale), so occupancy and drop behaviour
// are preserved.
type WalkerExec struct {
	// W is the underlying program walker.
	W *binary.Walker
	// Scale is the simulated fraction of the real execution rate.
	Scale float64
	// PTStretch is the execution stretch while traced.
	PTStretch float64
	// PaceMeanNS, when positive, injects syscalls at this mean wall-time
	// interval. Slow-motion walking (Scale << 1) would otherwise make the
	// workload's syscall — and hence context-switch — rate unrealistically
	// low: the branch stream runs in slow motion but scheduling must keep
	// its real cadence. Injected syscalls happen at segment boundaries, so
	// they are invisible to the branch stream and to the decoder (as real
	// syscalls are: PT emits nothing for them under user-mode filtering).
	PaceMeanNS simtime.Duration
	// PaceClassWeights selects injected syscall classes.
	PaceClassWeights []float64

	paceLeft simtime.Duration
	paceRNG  *xrand.Rand
}

// NewWalkerExec builds a walker-backed exec for prog.
func NewWalkerExec(prog *binary.Program, rng *xrand.Rand, cost cpu.Model, scale float64) *WalkerExec {
	if scale <= 0 {
		scale = 1
	}
	st := prog.ComputeStats()
	return &WalkerExec{
		W:         binary.NewWalker(prog, rng),
		Scale:     scale,
		PTStretch: PTStretchFor(cost, st.BranchPerKCycle),
		paceRNG:   rng,
	}
}

// WithPacing configures wall-rate syscall injection and returns the exec.
func (e *WalkerExec) WithPacing(mean simtime.Duration, classWeights []float64) *WalkerExec {
	e.PaceMeanNS = mean
	e.PaceClassWeights = classWeights
	return e
}

// CurrentIP returns the walker's resume address.
func (e *WalkerExec) CurrentIP() uint64 { return e.W.CurrentAddr() }

// Run implements Exec.
func (e *WalkerExec) Run(ctx *RunContext) RunResult {
	rate := ctx.CyclesPerNS * e.Scale
	if ctx.TracingActive {
		rate /= e.PTStretch
	}
	maxNS := ctx.MaxNS
	pacing := e.PaceMeanNS > 0
	if pacing {
		if e.paceLeft <= 0 {
			e.paceLeft = simtime.Duration(e.paceRNG.Exp(float64(e.PaceMeanNS))) + 1
		}
		if e.paceLeft < maxNS {
			maxNS = e.paceLeft
		}
	}
	budget := int64(float64(maxNS) * rate)
	if budget < 64 {
		budget = 64
	}
	cyc, ins, br := e.W.Count.Cycles, e.W.Count.Insns, e.W.Count.Branches
	used, reason, class := e.W.RunBatch(budget, ctx.Sink)
	usedNS := simtime.Duration(float64(used) / rate)
	if usedNS < 1 {
		usedNS = 1
	}
	if pacing {
		// The pacer is an independent syscall source layered over the
		// CFG's native sites; it keeps counting across them.
		e.paceLeft -= usedNS
		if reason != binary.StopSyscall && e.paceLeft <= 0 {
			reason = binary.StopSyscall
			e.paceLeft = 0
			if len(e.PaceClassWeights) > 0 {
				class = uint8(e.paceRNG.WeightedPick(e.PaceClassWeights))
			}
		}
	}
	return RunResult{
		UsedNS:       usedNS,
		Cycles:       e.W.Count.Cycles - cyc,
		Insns:        e.W.Count.Insns - ins,
		Branches:     e.W.Count.Branches - br,
		Stop:         reason,
		SyscallClass: class,
	}
}

// AnalyticExec models a thread's execution statistically: exponential
// bursts of work between syscalls, with branch volume accounted in
// aggregate. It is the execution model for efficiency experiments, where
// per-branch detail is unnecessary but rates must be exact.
type AnalyticExec struct {
	// MeanCyclesPerSyscall is the mean user-mode work between syscalls;
	// zero means the thread never performs syscalls.
	MeanCyclesPerSyscall int64
	// ClassWeights selects the syscall class (nil: always class 0).
	ClassWeights []float64
	// BranchPerKCycle is the PT event density of the workload.
	BranchPerKCycle float64
	// IndirectFrac is the fraction of PT events that are TIP-class.
	IndirectFrac float64
	// IPC converts cycles to retired instructions.
	IPC float64
	// PTStretch is the execution stretch while traced.
	PTStretch float64

	rng       *xrand.Rand
	remaining int64
}

// NewAnalyticExec builds an analytic exec from workload rates.
func NewAnalyticExec(rng *xrand.Rand, cost cpu.Model, meanCyclesPerSyscall int64,
	classWeights []float64, branchPerKCycle, indirectFrac, ipc float64) *AnalyticExec {
	if ipc <= 0 {
		ipc = 1
	}
	return &AnalyticExec{
		MeanCyclesPerSyscall: meanCyclesPerSyscall,
		ClassWeights:         classWeights,
		BranchPerKCycle:      branchPerKCycle,
		IndirectFrac:         indirectFrac,
		IPC:                  ipc,
		PTStretch:            PTStretchFor(cost, branchPerKCycle),
		rng:                  rng,
	}
}

// CurrentIP returns a fixed text address; analytic threads are never
// decoded, only accounted.
func (e *AnalyticExec) CurrentIP() uint64 { return 0x400000 }

// Run implements Exec.
func (e *AnalyticExec) Run(ctx *RunContext) RunResult {
	rate := ctx.CyclesPerNS
	if ctx.TracingActive {
		rate /= e.PTStretch
	}
	budget := int64(float64(ctx.MaxNS) * rate)
	if budget < 1 {
		budget = 1
	}
	var res RunResult
	if e.MeanCyclesPerSyscall > 0 && e.remaining == 0 {
		e.remaining = int64(e.rng.Exp(float64(e.MeanCyclesPerSyscall))) + 1
	}
	switch {
	case e.MeanCyclesPerSyscall > 0 && e.remaining <= budget:
		res.Cycles = e.remaining
		res.Stop = binary.StopSyscall
		if len(e.ClassWeights) > 0 {
			res.SyscallClass = kernel.SyscallClass(e.rng.WeightedPick(e.ClassWeights))
		}
		e.remaining = 0
	default:
		res.Cycles = budget
		if e.MeanCyclesPerSyscall > 0 {
			e.remaining -= budget
		}
		res.Stop = binary.StopBudget
	}
	res.UsedNS = simtime.Duration(float64(res.Cycles) / rate)
	if res.UsedNS < 1 {
		res.UsedNS = 1
	}
	res.Insns = int64(float64(res.Cycles) * e.IPC)
	res.Branches = int64(float64(res.Cycles) * e.BranchPerKCycle / 1000)
	res.BulkInd = int64(float64(res.Branches) * e.IndirectFrac)
	res.BulkCond = res.Branches - res.BulkInd
	return res
}
