package sched

import (
	"math"
	"testing"

	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// newTestMachine returns a small machine with deterministic settings.
func newTestMachine(cores int) *Machine {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.HTSiblings = false
	cfg.Seed = 42
	return NewMachine(cfg)
}

// analytic spawns a compute-only analytic thread (no syscalls).
func analytic(m *Machine, p *Process, tid int) *Thread {
	exec := NewAnalyticExec(xrand.SplitN(7, "exec", tid), m.Cfg.Cost,
		0, nil, 40, 0.2, 1.5)
	return m.SpawnThread(p, exec)
}

// analyticSyscalls spawns an analytic thread with syscalls.
func analyticSyscalls(m *Machine, p *Process, tid int, meanCycles int64, class kernel.SyscallClass) *Thread {
	weights := make([]float64, int(class)+1)
	weights[class] = 1
	exec := NewAnalyticExec(xrand.SplitN(7, "exec", tid), m.Cfg.Cost,
		meanCycles, weights, 40, 0.2, 1.5)
	return m.SpawnThread(p, exec)
}

func TestSingleThreadFullSpeed(t *testing.T) {
	m := newTestMachine(2)
	p := m.AddProcess("solo", nil, CPUSet, []int{0})
	th := analytic(m, p, 1)
	m.Run(1 * simtime.Second)
	// One thread alone on one core at 2.9 GHz should retire ~2.9e9 cycles
	// in a second, minus negligible scheduling overhead.
	want := 2.9e9
	got := float64(th.Stats.Cycles)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("cycles = %.3g, want ~%.3g", got, want)
	}
	if th.Stats.Syscalls != 0 {
		t.Fatalf("compute-only thread made %d syscalls", th.Stats.Syscalls)
	}
	if m.Cores[1].BusyNS != 0 {
		t.Fatal("unused core accumulated busy time")
	}
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	m := newTestMachine(1)
	p := m.AddProcess("a", nil, CPUSet, []int{0})
	q := m.AddProcess("b", nil, CPUSet, []int{0})
	ta := analytic(m, p, 1)
	tb := analytic(m, q, 2)
	m.Run(1 * simtime.Second)
	ca, cb := float64(ta.Stats.Cycles), float64(tb.Stats.Cycles)
	if math.Abs(ca-cb)/(ca+cb) > 0.05 {
		t.Fatalf("unfair round-robin: %v vs %v", ca, cb)
	}
	// Each should get slightly under half of full speed (switch costs and
	// core-share interference eat some).
	if ca+cb > 2.9e9 || ca+cb < 2.0e9 {
		t.Fatalf("combined throughput %.3g implausible", ca+cb)
	}
	if m.Stats.Switches < 100 {
		t.Fatalf("expected frequent switches, got %d", m.Stats.Switches)
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	m := newTestMachine(1)
	p := m.AddProcess("a", nil, CPUSet, []int{0})
	q := m.AddProcess("b", nil, CPUSet, []int{0})
	analytic(m, p, 1)
	analytic(m, q, 2)
	m.Run(500 * simtime.Millisecond)
	if m.Cores[0].KernelNS <= 0 {
		t.Fatal("no kernel time charged for switches")
	}
	minKernel := simtime.Duration(m.Stats.Switches) * m.Cfg.Cost.ContextSwitch
	if m.Cores[0].KernelNS < minKernel {
		t.Fatalf("kernel time %v below switch floor %v", m.Cores[0].KernelNS, minKernel)
	}
}

func TestSwitchHookCostSlowsWorkload(t *testing.T) {
	run := func(hook SwitchHook) int64 {
		m := newTestMachine(1)
		if hook != nil {
			m.SwitchHooks = append(m.SwitchHooks, hook)
		}
		p := m.AddProcess("a", nil, CPUSet, []int{0})
		q := m.AddProcess("b", nil, CPUSet, []int{0})
		ta := analytic(m, p, 1)
		analytic(m, q, 2)
		m.Run(1 * simtime.Second)
		return ta.Stats.Cycles
	}
	base := run(nil)
	heavy := run(func(SwitchEvent) simtime.Duration { return 100 * simtime.Microsecond })
	if heavy >= base {
		t.Fatalf("expensive switch hook did not slow workload: %d vs %d", heavy, base)
	}
	slowdown := float64(base)/float64(heavy) - 1
	if slowdown < 0.01 {
		t.Fatalf("slowdown %.4f too small for a 100µs/switch hook", slowdown)
	}
}

func TestSyscallsBlockAndWake(t *testing.T) {
	m := newTestMachine(1)
	p := m.AddProcess("io", nil, CPUSet, []int{0})
	// nanosleep always blocks for ~2ms.
	th := analyticSyscalls(m, p, 1, 2_900_000 /* ~1ms of work */, kernel.SysNanosleep)
	m.Run(1 * simtime.Second)
	if th.Stats.Syscalls < 100 {
		t.Fatalf("expected hundreds of syscalls, got %d", th.Stats.Syscalls)
	}
	// The thread sleeps ~2/3 of the time, so it must not consume the core.
	busyFrac := float64(m.Cores[0].BusyNS) / float64(simtime.Second)
	if busyFrac > 0.7 {
		t.Fatalf("blocking thread busy fraction %.2f too high", busyFrac)
	}
	if busyFrac < 0.1 {
		t.Fatalf("blocking thread busy fraction %.2f too low", busyFrac)
	}
	if th.Stats.KernelTime <= 0 {
		t.Fatal("syscalls charged no kernel time")
	}
}

func TestSyscallHookCharged(t *testing.T) {
	run := func(hook SyscallHook) (int64, simtime.Duration) {
		m := newTestMachine(1)
		if hook != nil {
			m.SyscallHooks = append(m.SyscallHooks, hook)
		}
		p := m.AddProcess("io", nil, CPUSet, []int{0})
		th := analyticSyscalls(m, p, 1, 290_000, kernel.SysSchedYield)
		m.Run(200 * simtime.Millisecond)
		return th.Stats.Syscalls, th.Stats.KernelTime
	}
	var hits int64
	_, baseKernel := run(nil)
	n, hookedKernel := run(func(SyscallEvent) simtime.Duration {
		hits++
		return 3 * simtime.Microsecond
	})
	if hits != n {
		t.Fatalf("hook saw %d syscalls, thread made %d", hits, n)
	}
	if hookedKernel <= baseKernel {
		t.Fatal("syscall hook cost not charged")
	}
}

func TestStallHookStretchesSegments(t *testing.T) {
	run := func(stall StallHook) int64 {
		m := newTestMachine(1)
		if stall != nil {
			m.StallHooks = append(m.StallHooks, stall)
		}
		p := m.AddProcess("a", nil, CPUSet, []int{0})
		th := analytic(m, p, 1)
		m.Run(1 * simtime.Second)
		return th.Stats.Cycles
	}
	base := run(nil)
	// A 5% stall (statistical sampling model) must cost ~5% throughput.
	stalled := run(func(_ *Core, _ simtime.Time, dur simtime.Duration) simtime.Duration {
		return dur / 20
	})
	ratio := float64(base) / float64(stalled)
	if ratio < 1.03 || ratio > 1.08 {
		t.Fatalf("stall ratio = %.4f, want ~1.05", ratio)
	}
}

func TestHTInterference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.HTSiblings = true // siblings: (0,2) and (1,3)
	cfg.Seed = 1
	m := NewMachine(cfg)
	p := m.AddProcess("a", nil, CPUSet, []int{0})
	q := m.AddProcess("b", nil, CPUSet, []int{2})
	ta := analytic(m, p, 1)
	analytic(m, q, 2)
	m.Run(500 * simtime.Millisecond)

	m2 := NewMachine(cfg)
	p2 := m2.AddProcess("a", nil, CPUSet, []int{0})
	ta2 := analytic(m2, p2, 1)
	m2.Run(500 * simtime.Millisecond)

	ratio := float64(ta2.Stats.Cycles) / float64(ta.Stats.Cycles)
	// Sibling-busy should inflate execution by about HTShare (1.28) but
	// the LLC term also applies (different processes, same domain).
	if ratio < 1.2 || ratio > 1.6 {
		t.Fatalf("HT interference ratio = %.3f, want ~1.3-1.4", ratio)
	}
}

func TestMigrationCounting(t *testing.T) {
	m := newTestMachine(4)
	p := m.AddProcess("share", nil, CPUShare, []int{0, 1, 2, 3})
	// Heavy oversubscription: waking threads regularly find their last
	// core queued (wake-affinity declines) and must migrate.
	for i := 0; i < 16; i++ {
		analyticSyscalls(m, p, i, 2_900_000, kernel.SysFutex)
	}
	m.Run(1 * simtime.Second)
	if m.Stats.Migrations == 0 {
		t.Fatal("expected some CPU migrations for waking shared threads")
	}
}

func TestSwitchPeriodCollection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.HTSiblings = false
	cfg.CollectSwitchPeriods = true
	cfg.Seed = 3
	m := NewMachine(cfg)
	p := m.AddProcess("a", nil, CPUShare, []int{0, 1})
	for i := 0; i < 4; i++ {
		analyticSyscalls(m, p, i, 1_450_000, kernel.SysFutex)
	}
	m.Run(1 * simtime.Second)
	st := &m.Stats
	if len(st.SwitchPeriodsAll) == 0 || len(st.SwitchPeriodsByCore) == 0 || len(st.SwitchPeriodsByProc) == 0 {
		t.Fatalf("switch periods not collected: %d/%d/%d",
			len(st.SwitchPeriodsAll), len(st.SwitchPeriodsByCore), len(st.SwitchPeriodsByProc))
	}
	for _, v := range st.SwitchPeriodsAll {
		if v < 0 {
			t.Fatal("negative switch period")
		}
	}
}

func TestWalkerExecEmitsGroundTruth(t *testing.T) {
	m := newTestMachine(1)
	prog := binary.Synthesize(binary.DefaultSpec("gt", 5))
	p := m.AddProcess("walker", prog, CPUSet, []int{0})
	exec := NewWalkerExec(prog, xrand.New(11), m.Cfg.Cost, 1e-4)
	th := m.SpawnThread(p, exec)
	var events int
	m.Listener = func(tt *Thread, _ simtime.Time, ev binary.BranchEvent) {
		if tt != th {
			t.Error("listener saw wrong thread")
		}
		events++
	}
	m.Run(100 * simtime.Millisecond)
	if events == 0 {
		t.Fatal("no ground-truth branch events")
	}
	if int64(events) != th.Stats.Branches {
		t.Fatalf("listener saw %d events, stats say %d", events, th.Stats.Branches)
	}
}

func TestTracedWalkerFillsTracer(t *testing.T) {
	m := newTestMachine(1)
	prog := binary.Synthesize(binary.DefaultSpec("tr", 6))
	p := m.AddProcess("walker", prog, CPUSet, []int{0})
	exec := NewWalkerExec(prog, xrand.New(12), m.Cfg.Cost, 1e-4)
	m.SpawnThread(p, exec)

	tr := m.Cores[0].Tracer
	if err := tr.SetOutput(ipt.NewSingleToPA(1 << 20)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(p.CR3); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * simtime.Millisecond)
	if tr.Stats.Bytes == 0 {
		t.Fatal("tracer captured nothing")
	}
	if tr.Stats.TIPs == 0 || tr.Stats.TNTs == 0 {
		t.Fatalf("tracer stats missing packet kinds: %+v", tr.Stats)
	}
}

func TestTracingStretchSlowsTracedProcess(t *testing.T) {
	run := func(traced bool) int64 {
		m := newTestMachine(1)
		prog := binary.Synthesize(binary.DefaultSpec("tr", 6))
		p := m.AddProcess("walker", prog, CPUSet, []int{0})
		exec := NewWalkerExec(prog, xrand.New(12), m.Cfg.Cost, 1e-4)
		th := m.SpawnThread(p, exec)
		if traced {
			tr := m.Cores[0].Tracer
			if err := tr.SetOutput(ipt.NewSingleToPA(1 << 22)); err != nil {
				t.Fatal(err)
			}
			if err := tr.SetCR3Match(p.CR3); err != nil {
				t.Fatal(err)
			}
			if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
				t.Fatal(err)
			}
		}
		m.Run(200 * simtime.Millisecond)
		return th.Stats.Cycles
	}
	base, traced := run(false), run(true)
	if traced >= base {
		t.Fatalf("PT stretch missing: traced %d >= base %d", traced, base)
	}
	over := float64(base)/float64(traced) - 1
	if over > 0.05 {
		t.Fatalf("PT hardware overhead %.4f exceeds digit-level", over)
	}
}

func TestProcessCPI(t *testing.T) {
	m := newTestMachine(1)
	p := m.AddProcess("a", nil, CPUSet, []int{0})
	analytic(m, p, 1) // IPC 1.5
	m.Run(200 * simtime.Millisecond)
	cpi := p.CPI(m.Cfg.Cost)
	if cpi < 0.6 || cpi > 0.8 {
		t.Fatalf("CPI = %.3f, want ~1/1.5", cpi)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		m := newTestMachine(2)
		p := m.AddProcess("a", nil, CPUShare, []int{0, 1})
		t1 := analyticSyscalls(m, p, 1, 1_000_000, kernel.SysFutex)
		t2 := analyticSyscalls(m, p, 2, 1_000_000, kernel.SysRead)
		m.Run(300 * simtime.Millisecond)
		return t1.Stats.Cycles, t2.Stats.Cycles
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("nondeterministic runs: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

func TestCPIIncludesKernelTime(t *testing.T) {
	m := newTestMachine(1)
	p := m.AddProcess("io", nil, CPUSet, []int{0})
	analyticSyscalls(m, p, 1, 290_000, kernel.SysSchedYield)
	m.Run(200 * simtime.Millisecond)
	cpi := p.CPI(m.Cfg.Cost)
	// Heavy syscall activity must raise CPI above the pure-user 1/1.5.
	if cpi <= 0.67 {
		t.Fatalf("CPI %.3f does not reflect kernel time", cpi)
	}
}

func TestProvisionModeString(t *testing.T) {
	if CPUSet.String() != "cpu-set" || CPUShare.String() != "cpu-share" {
		t.Fatal("bad mode strings")
	}
}

func TestAllCores(t *testing.T) {
	m := newTestMachine(3)
	cs := m.AllCores()
	if len(cs) != 3 || cs[0] != 0 || cs[2] != 2 {
		t.Fatalf("AllCores = %v", cs)
	}
}

func TestAddProcessValidation(t *testing.T) {
	m := newTestMachine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty core set")
		}
	}()
	m.AddProcess("bad", nil, CPUSet, nil)
}

func TestInterferenceFactorExclusive(t *testing.T) {
	m := newTestMachine(4)
	p := m.AddProcess("a", nil, CPUSet, []int{0})
	th := analytic(m, p, 1)
	m.Run(100 * simtime.Millisecond)
	_ = th
	f := m.interference(m.Cores[0], th)
	if f != 1.0 {
		t.Fatalf("exclusive interference = %v, want 1.0", f)
	}
}

func TestCPUModelDefaultUsed(t *testing.T) {
	var zero cpu.Model
	if zero.FrequencyGHz != 0 {
		t.Skip("zero model changed")
	}
}

func TestEmitPTWritesEndToEnd(t *testing.T) {
	m := newTestMachine(1)
	m.EmitPTWrites = true
	prog := binary.Synthesize(binary.DefaultSpec("ptw", 6))
	p := m.AddProcess("ptw", prog, CPUSet, []int{0})
	we := NewWalkerExec(prog, xrand.New(12), m.Cfg.Cost, 1e-4)
	we.WithPacing(50*simtime.Microsecond, []float64{0, 0, 1}) // sendto
	m.SpawnThread(p, we)
	tr := m.Cores[0].Tracer
	if err := tr.SetOutput(ipt.NewSingleToPA(1 << 20)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCR3Match(p.CR3); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlPTWEn|ipt.CtlTraceEn); err != nil {
		t.Fatal(err)
	}
	m.Run(50 * simtime.Millisecond)
	// Syscall classes must appear as PTW packets in the stream.
	parser := ipt.NewParser(tr.Output().Bytes())
	found := 0
	for {
		pkt, ok, err := parser.Next()
		if err != nil || !ok {
			break
		}
		if pkt.Kind == ipt.PktPTW {
			found++
			// Paced syscalls carry class 2 (sendto); native CFG syscall
			// sites carry the spec default (class 0).
			if pkt.Val != 2 && pkt.Val != 0 {
				t.Fatalf("PTW value = %d, want syscall class 0 or 2", pkt.Val)
			}
		}
	}
	if found == 0 {
		t.Fatal("no PTWRITE packets in stream")
	}
}

// Invariant: core time accounting never exceeds wall capacity, and busy
// time equals the sum of thread CPU time.
func TestAccountingInvariants(t *testing.T) {
	m := newTestMachine(4)
	p := m.AddProcess("mix", nil, CPUShare, m.AllCores())
	for i := 0; i < 6; i++ {
		analyticSyscalls(m, p, i, 1_500_000, kernel.SysFutex)
	}
	window := 700 * simtime.Millisecond
	m.Run(window)
	var busy, kern simtime.Duration
	for _, c := range m.Cores {
		// A segment in flight at the horizon may overshoot by one slice.
		if c.BusyNS+c.KernelNS > window+m.Cfg.Timeslice {
			t.Fatalf("core %d accounted %v, exceeds wall %v", c.ID, c.BusyNS+c.KernelNS, window)
		}
		busy += c.BusyNS
		kern += c.KernelNS
	}
	var cpu simtime.Duration
	for _, th := range p.Threads {
		cpu += th.Stats.CPUTime
	}
	if cpu > busy {
		t.Fatalf("thread CPU time %v exceeds core busy time %v", cpu, busy)
	}
	if busy-cpu > busy/10 {
		t.Fatalf("core busy %v and thread CPU %v diverge beyond slack", busy, cpu)
	}
	if kern <= 0 {
		t.Fatal("no kernel time accounted")
	}
}

func TestAffinityMaskWideMachine(t *testing.T) {
	// 96 cores spans two allowedMask words; the allowed set straddles the
	// word boundary so both words and the bit arithmetic are exercised.
	m := newTestMachine(96)
	allowed := []int{3, 17, 63, 64, 70, 95}
	p := m.AddProcess("wide", nil, CPUSet, allowed)
	inSet := make(map[int]bool, len(allowed))
	for _, id := range allowed {
		inSet[id] = true
	}
	for id := 0; id < len(m.Cores); id++ {
		if got := p.allowedHas(id); got != inSet[id] {
			t.Fatalf("allowedHas(%d) = %v, want %v", id, got, inSet[id])
		}
	}

	for i := 0; i < 10; i++ {
		analyticSyscalls(m, p, i+1, 200_000, 0)
	}
	m.Run(200 * simtime.Millisecond)

	var busyAllowed simtime.Duration
	for id, c := range m.Cores {
		if inSet[id] {
			busyAllowed += c.BusyNS
			continue
		}
		if c.BusyNS != 0 || c.Switches != 0 {
			t.Errorf("core %d outside the mapped set ran work (busy=%v switches=%d)", id, c.BusyNS, c.Switches)
		}
	}
	if busyAllowed == 0 {
		t.Fatal("no work ran on the mapped core set")
	}
	// Oversubscribed (10 threads on 6 cores): the high-word cores must be
	// usable, not just the low word.
	var busyHigh simtime.Duration
	for _, id := range []int{64, 70, 95} {
		busyHigh += m.Cores[id].BusyNS
	}
	if busyHigh == 0 {
		t.Fatal("cores in the second mask word never ran work")
	}
}
