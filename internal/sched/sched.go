// Package sched is the node-level operating-system simulator: cores,
// processes, threads, runqueues, context switches, syscalls, and the
// tracepoints that tracing schemes hook.
//
// The simulator is a discrete-event model driven by a simtime.Engine.
// Threads execute in bounded segments (at most one scheduler timeslice);
// each segment consumes virtual CPU cycles from the thread's Exec model,
// optionally emitting the ground-truth branch stream into the core's PT
// tracer. Context switches, syscalls, and tracing control operations all
// charge kernel time to the core, which is how tracing overhead becomes
// workload slowdown — the paper's central quantity.
//
// Tracing schemes integrate exclusively through three hook points, mirroring
// how real schemes attach to a kernel:
//
//   - SwitchHooks run at every sched_switch and return extra kernel time
//     (MSR operations, buffer swaps, five-tuple records).
//   - SyscallHooks run at every syscall entry (eBPF-style probes).
//   - StallHooks stretch execution segments by a scheme-dependent amount
//     (sampling interrupts, PT packet bandwidth).
package sched

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// ProvisionMode is how a process is mapped to cores (§3.3 of the paper).
type ProvisionMode int

const (
	// CPUSet pins the process to a small exclusive core set.
	CPUSet ProvisionMode = iota
	// CPUShare maps the process onto a large shared core set.
	CPUShare
)

// String returns "cpu-set" or "cpu-share".
func (m ProvisionMode) String() string {
	if m == CPUSet {
		return "cpu-set"
	}
	return "cpu-share"
}

// Config parameterizes a Machine.
type Config struct {
	// Cores is the number of logical cores.
	Cores int
	// HTSiblings pairs core i with core i+Cores/2 on one physical core.
	HTSiblings bool
	// LLCGroups splits cores into that many last-level-cache domains
	// (dual-socket servers have 2). Zero means one domain.
	LLCGroups int
	// Timeslice is the scheduler quantum and the maximum run segment.
	Timeslice simtime.Duration
	// Cost is the processor cost model.
	Cost cpu.Model
	// Syscalls is the syscall table; nil selects kernel.DefaultSyscallTable.
	Syscalls []kernel.SyscallSpec
	// Seed drives all scheduling and execution randomness.
	Seed uint64
	// CollectSwitchPeriods enables the Figure 8 period sampling.
	CollectSwitchPeriods bool
	// SwitchPeriodHint presizes the Figure 8 sample slices: an estimate of
	// the total switch count over the run (window / switch period). Zero
	// selects a default chunk; the hint only affects capacity, never
	// content.
	SwitchPeriodHint int
	// Engine, when non-nil, is a shared virtual clock; multi-node
	// simulations give every machine the same engine so cluster-level
	// orchestration and node-level scheduling interleave in one timeline.
	Engine *simtime.Engine
}

// DefaultConfig returns a 16-core single-socket configuration with a 4 ms
// timeslice.
func DefaultConfig() Config {
	return Config{
		Cores:      16,
		HTSiblings: true,
		LLCGroups:  1,
		Timeslice:  4 * simtime.Millisecond,
		Cost:       cpu.Default(),
		Seed:       1,
	}
}

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	// Runnable threads are queued, waiting for a core.
	Runnable ThreadState = iota
	// Running threads occupy a core.
	Running
	// Blocked threads wait on I/O or synchronization.
	Blocked
)

// ThreadStats accumulates per-thread accounting.
type ThreadStats struct {
	// CPUTime is wall time spent executing on a core (user mode).
	CPUTime simtime.Duration
	// KernelTime is syscall service time charged on the thread's behalf.
	KernelTime simtime.Duration
	// Cycles, Insns, Branches count useful work retired.
	Cycles   int64
	Insns    int64
	Branches int64
	// Syscalls counts syscall instructions executed.
	Syscalls int64
	// Switches counts times the thread was scheduled in.
	Switches int64
	// Migrations counts schedules onto a different core than last time.
	Migrations int64
}

// Thread is one schedulable entity.
type Thread struct {
	// TID is the machine-unique thread ID.
	TID int
	// Proc is the owning process.
	Proc *Process
	// Exec produces the thread's execution.
	Exec Exec
	// State is the current scheduling state.
	State ThreadState
	// Stats accumulates accounting.
	Stats ThreadStats

	rng          *xrand.Rand
	lastCore     int
	lastSwitchAt simtime.Time
	queued       bool
	// wakeFn is the thread's cached blocking-syscall wakeup callback; a
	// thread blocks on at most one syscall at a time.
	wakeFn func(wake simtime.Time)
}

// LastCore returns the core the thread most recently ran on (-1 before
// its first dispatch). UMA's coreset sampler uses it as the "current
// core" signal.
func (t *Thread) LastCore() int { return t.lastCore }

// Process is a group of threads sharing an address space (one CR3) and a
// CPU provisioning policy. It is the unit EXIST traces.
type Process struct {
	// PID is the machine-unique process ID.
	PID int
	// Name identifies the workload.
	Name string
	// CR3 is the address-space root, the PT filter key.
	CR3 uint64
	// Prog is the process image (may be nil for analytic workloads).
	Prog *binary.Program
	// Mode is the CPU provisioning mode.
	Mode ProvisionMode
	// Allowed is the mapped core set (MCS).
	Allowed []int
	// Threads lists the process's threads.
	Threads []*Thread

	lastSwitchAt simtime.Time
	// allowedMask is the Allowed core set as a bitmask (one uint64 word
	// per 64 cores), so affinity checks cost one load instead of a scan.
	allowedMask []uint64
	// llcRunning counts, per LLC domain, how many cores currently run one
	// of this process's threads; see Machine.interference.
	llcRunning []int32
}

// allowedHas reports whether core id is in the process's mapped core set.
func (p *Process) allowedHas(id int) bool {
	return p.allowedMask[id>>6]&(1<<(uint(id)&63)) != 0
}

// Stats aggregates the process's thread statistics.
func (p *Process) Stats() ThreadStats {
	var s ThreadStats
	for _, t := range p.Threads {
		s.CPUTime += t.Stats.CPUTime
		s.KernelTime += t.Stats.KernelTime
		s.Cycles += t.Stats.Cycles
		s.Insns += t.Stats.Insns
		s.Branches += t.Stats.Branches
		s.Syscalls += t.Stats.Syscalls
		s.Switches += t.Stats.Switches
		s.Migrations += t.Stats.Migrations
	}
	return s
}

// CPI returns the process's achieved cycles-per-instruction, counting
// kernel time as extra cycles on the retired instruction stream — the
// hardware-perspective overhead metric of Figure 15.
func (p *Process) CPI(cost cpu.Model) float64 {
	s := p.Stats()
	if s.Insns == 0 {
		return 0
	}
	wallCycles := cost.NSToCycles(s.CPUTime + s.KernelTime)
	return float64(wallCycles) / float64(s.Insns)
}

// Core is one logical CPU.
type Core struct {
	// ID is the core index.
	ID int
	// Sibling is the hyperthread sibling core index (-1 if none).
	Sibling int
	// LLC is the core's last-level-cache domain.
	LLC int
	// Tracer is the core's PT engine.
	Tracer *ipt.Tracer

	m    *Machine
	cur  *Thread
	prev *Thread
	runq []*Thread

	// emitter is the core's reusable branch-batch sink and runCtx the
	// reusable exec context; startSegment repoints them at the segment's
	// thread so segments allocate nothing. (Passing a stack RunContext
	// through the Exec interface would escape it to the heap per segment.)
	emitter branchEmitter
	runCtx  RunContext

	// segEndFn/dispatchFn are the core's cached timer callbacks, created
	// once on first use: a core runs at most one segment and has at most
	// one dispatch pending at a time, so the pending segment's state can
	// live on the core (pendThread/pendRes) instead of in a fresh closure
	// per segment — the scheduler's former dominant allocation.
	segEndFn   func(now simtime.Time)
	dispatchFn func(now simtime.Time)
	pendThread *Thread
	pendRes    RunResult

	dispatchPending bool
	lastSwitchAt    simtime.Time

	// BusyNS is wall time spent executing user work.
	BusyNS simtime.Duration
	// KernelNS is wall time spent in switches, syscalls, and hooks.
	KernelNS simtime.Duration
	// Switches counts context switches on this core.
	Switches int64
}

// Idle reports whether the core has neither a running nor a queued thread.
func (c *Core) Idle() bool { return c.cur == nil && len(c.runq) == 0 }

// Current returns the running thread (nil when idle).
func (c *Core) Current() *Thread { return c.cur }

// QueueLen returns the number of queued runnable threads.
func (c *Core) QueueLen() int { return len(c.runq) }

// SwitchEvent is passed to sched_switch hooks.
type SwitchEvent struct {
	// Now is the tracepoint time.
	Now simtime.Time
	// Core is where the switch happens.
	Core *Core
	// Prev and Next are the outgoing and incoming threads; nil means the
	// idle task.
	Prev, Next *Thread
}

// SyscallEvent is passed to syscall-entry hooks.
type SyscallEvent struct {
	// Now is the entry time.
	Now simtime.Time
	// Core is the executing core.
	Core *Core
	// Thread is the caller.
	Thread *Thread
	// Class is the syscall class.
	Class kernel.SyscallClass
}

// SwitchHook observes a context switch and returns extra kernel time.
type SwitchHook func(ev SwitchEvent) simtime.Duration

// SyscallHook observes a syscall entry and returns extra kernel time.
type SyscallHook func(ev SyscallEvent) simtime.Duration

// StallHook returns extra stall time to fold into an execution segment of
// length dur on the given core (sampling interrupts, etc).
type StallHook func(c *Core, start simtime.Time, dur simtime.Duration) simtime.Duration

// BranchListener observes the ground-truth branch stream of threads that
// execute with walker-backed Exec models.
type BranchListener func(t *Thread, now simtime.Time, ev binary.BranchEvent)

// MachineStats aggregates machine-wide accounting.
type MachineStats struct {
	// Switches and Migrations count scheduling events machine-wide.
	Switches   int64
	Migrations int64
	// SwitchPeriodsAll, ByCore and ByProc hold sampled periods between
	// context switches (milliseconds), for the Figure 8 CDFs. Populated
	// only when Config.CollectSwitchPeriods is set.
	SwitchPeriodsAll    []float64
	SwitchPeriodsByCore []float64
	SwitchPeriodsByProc []float64
}

// Machine is the simulated node.
type Machine struct {
	// Cfg is the construction configuration.
	Cfg Config
	// Eng is the virtual-time engine driving the machine.
	Eng *simtime.Engine
	// Cores are the logical CPUs.
	Cores []*Core
	// Procs are the created processes.
	Procs []*Process
	// Stats is machine-wide accounting.
	Stats MachineStats

	// SwitchHooks, SyscallHooks and StallHooks are the tracing scheme
	// attachment points.
	SwitchHooks  []SwitchHook
	SyscallHooks []SyscallHook
	StallHooks   []StallHook
	// Listener, when set, receives the ground-truth branch stream.
	Listener BranchListener
	// EmitPTWrites makes every syscall entry of a traced context emit a
	// PTWRITE packet carrying the syscall class — the §6.1 data-flow
	// enhancement (requires CtlPTWEn on the core tracer).
	EmitPTWrites bool

	syscalls     []kernel.SyscallSpec
	lastSwitchAt simtime.Time
	nextPID      int
	nextTID      int
	rng          *xrand.Rand
	// llcRunning counts, per LLC domain, the cores with a running thread;
	// together with Process.llcRunning it gives interference its
	// "another process runs in my cache domain" answer in O(1) instead of
	// a scan over all cores.
	llcRunning []int32
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("sched: machine needs at least one core")
	}
	if cfg.Timeslice <= 0 {
		cfg.Timeslice = 4 * simtime.Millisecond
	}
	if cfg.LLCGroups <= 0 {
		cfg.LLCGroups = 1
	}
	syscalls := cfg.Syscalls
	if syscalls == nil {
		syscalls = kernel.DefaultSyscallTable()
	}
	eng := cfg.Engine
	if eng == nil {
		eng = simtime.NewEngine()
	}
	m := &Machine{
		Cfg:        cfg,
		Eng:        eng,
		syscalls:   syscalls,
		rng:        xrand.Split(cfg.Seed, "sched/machine"),
		llcRunning: make([]int32, cfg.LLCGroups),
	}
	if cfg.CollectSwitchPeriods {
		hint := cfg.SwitchPeriodHint
		if hint <= 0 {
			hint = 4096
		}
		m.Stats.SwitchPeriodsAll = make([]float64, 0, hint)
		m.Stats.SwitchPeriodsByCore = make([]float64, 0, hint)
		m.Stats.SwitchPeriodsByProc = make([]float64, 0, hint)
	}
	perLLC := (cfg.Cores + cfg.LLCGroups - 1) / cfg.LLCGroups
	for i := 0; i < cfg.Cores; i++ {
		sib := -1
		if cfg.HTSiblings && cfg.Cores%2 == 0 {
			half := cfg.Cores / 2
			if i < half {
				sib = i + half
			} else {
				sib = i - half
			}
		}
		m.Cores = append(m.Cores, &Core{
			ID:      i,
			Sibling: sib,
			LLC:     i / perLLC,
			Tracer:  ipt.NewTracer(i),
			m:       m,
		})
	}
	return m
}

// Syscall returns the spec for a class, defaulting to class 0 for
// out-of-range classes (a workload bug, but not worth crashing a run).
func (m *Machine) Syscall(class kernel.SyscallClass) kernel.SyscallSpec {
	if int(class) >= len(m.syscalls) {
		return m.syscalls[0]
	}
	return m.syscalls[class]
}

// AddProcess creates a process with the given provisioning. The allowed
// core list must be non-empty and in range.
func (m *Machine) AddProcess(name string, prog *binary.Program, mode ProvisionMode, allowed []int) *Process {
	if len(allowed) == 0 {
		panic("sched: process needs a non-empty core set")
	}
	for _, c := range allowed {
		if c < 0 || c >= len(m.Cores) {
			panic(fmt.Sprintf("sched: core %d out of range", c))
		}
	}
	p := &Process{
		PID:         m.nextPID + 1,
		Name:        name,
		CR3:         0x100000 + uint64(m.nextPID+1)<<12,
		Prog:        prog,
		Mode:        mode,
		Allowed:     append([]int(nil), allowed...),
		allowedMask: make([]uint64, (len(m.Cores)+63)/64),
		llcRunning:  make([]int32, m.Cfg.LLCGroups),
	}
	for _, c := range allowed {
		p.allowedMask[c>>6] |= 1 << (uint(c) & 63)
	}
	m.nextPID++
	m.Procs = append(m.Procs, p)
	return p
}

// SpawnThread adds a thread to p and makes it runnable at the current
// virtual time.
func (m *Machine) SpawnThread(p *Process, exec Exec) *Thread {
	t := &Thread{
		TID:      m.nextTID + 1,
		Proc:     p,
		Exec:     exec,
		State:    Runnable,
		rng:      xrand.SplitN(m.Cfg.Seed, "sched/thread", m.nextTID+1),
		lastCore: -1,
	}
	m.nextTID++
	p.Threads = append(p.Threads, t)
	m.enqueue(t, m.Eng.Now())
	return t
}

// AllCores returns the list [0, n) for convenience when building core sets.
func (m *Machine) AllCores() []int {
	out := make([]int, len(m.Cores))
	for i := range out {
		out[i] = i
	}
	return out
}

// Run advances the machine to the given absolute virtual time.
func (m *Machine) Run(until simtime.Time) { m.Eng.RunUntil(until) }

// TotalKernelNS sums kernel time across cores.
func (m *Machine) TotalKernelNS() simtime.Duration {
	var d simtime.Duration
	for _, c := range m.Cores {
		d += c.KernelNS
	}
	return d
}

// TotalBusyNS sums user execution time across cores.
func (m *Machine) TotalBusyNS() simtime.Duration {
	var d simtime.Duration
	for _, c := range m.Cores {
		d += c.BusyNS
	}
	return d
}
