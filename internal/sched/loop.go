package sched

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/ipt"
	"exist/internal/simtime"
)

// branchEmitter delivers a walker's batched branch events to the core's PT
// tracer and the machine-wide listener. One lives inside each Core and is
// repointed at segment start, so installing a sink allocates nothing.
type branchEmitter struct {
	tracer   *ipt.Tracer
	listener BranchListener
	thread   *Thread
	now      simtime.Time
	tracerOn bool
}

// EmitBranches implements binary.BranchSink.
func (e *branchEmitter) EmitBranches(evs []binary.BranchEvent) {
	if e.tracerOn {
		e.tracer.OnBranchBatch(e.now, evs)
	}
	if e.listener != nil {
		for i := range evs {
			e.listener(e.thread, e.now, evs[i])
		}
	}
}

// EmitBranchesPacked implements binary.PackedBranchSink: the tracer
// consumes conditional directions straight from the walker's TNT pack.
func (e *branchEmitter) EmitBranchesPacked(evs []binary.BranchEvent, tnt *binary.TNTPack) {
	if e.tracerOn {
		e.tracer.OnBranchBatchPacked(e.now, evs, tnt)
	}
	if e.listener != nil {
		for i := range evs {
			e.listener(e.thread, e.now, evs[i])
		}
	}
}

// setCur installs t (or nil) as the core's running thread, maintaining the
// per-LLC occupancy counters consulted by interference. Every mutation of
// c.cur must go through here.
func (m *Machine) setCur(c *Core, t *Thread) {
	if old := c.cur; old != nil {
		m.llcRunning[c.LLC]--
		old.Proc.llcRunning[c.LLC]--
	}
	c.cur = t
	if t != nil {
		m.llcRunning[c.LLC]++
		t.Proc.llcRunning[c.LLC]++
	}
}

// enqueue makes t runnable and places it on a core's runqueue.
func (m *Machine) enqueue(t *Thread, now simtime.Time) {
	if t.queued || t.State == Running {
		return
	}
	t.State = Runnable
	t.queued = true
	coreID := m.pickCore(t)
	if t.lastCore >= 0 && coreID != t.lastCore {
		t.Stats.Migrations++
		m.Stats.Migrations++
	}
	t.lastCore = coreID
	c := m.Cores[coreID]
	c.runq = append(c.runq, t)
	m.kickDispatch(c, now)
}

// requeueLocal puts a preempted thread back at the tail of its own core's
// queue (no migration).
func (m *Machine) requeueLocal(c *Core, t *Thread) {
	t.State = Runnable
	t.queued = true
	c.runq = append(c.runq, t)
}

// pickCore selects a core for a waking thread: last-core affinity first,
// then any idle allowed core, then the least-loaded allowed core.
// Membership in the mapped core set is a bitmask test (Process.allowedHas)
// and the affinity core's load is computed once and reused for the
// tie-break, so waking costs no core-set scan.
func (m *Machine) pickCore(t *Thread) int {
	affine := t.lastCore >= 0 && t.Proc.allowedHas(t.lastCore)
	if affine && len(m.Cores[t.lastCore].runq) == 0 {
		// Wake-affinity: stay on the cache-hot core unless it is
		// meaningfully loaded (CFS-like). This is also why CPU-share
		// processes "tend to execute on a few cores" (§5.2), which is
		// what makes UMA's core sampling cheap.
		return t.lastCore
	}
	best, bestLoad := -1, 1<<30
	for _, id := range t.Proc.Allowed {
		c := m.Cores[id]
		load := len(c.runq)
		if c.cur != nil {
			load++
		}
		if load == 0 {
			return id
		}
		if load < bestLoad {
			bestLoad, best = load, id
		}
	}
	// Prefer affinity on load ties.
	if affine {
		c := m.Cores[t.lastCore]
		load := len(c.runq)
		if c.cur != nil {
			load++
		}
		if load <= bestLoad {
			return t.lastCore
		}
	}
	return best
}

// kickDispatch arranges for the core to pick new work at the given time.
func (m *Machine) kickDispatch(c *Core, at simtime.Time) {
	if c.dispatchPending || c.cur != nil {
		return
	}
	c.dispatchPending = true
	if c.dispatchFn == nil {
		c.dispatchFn = func(now simtime.Time) {
			c.dispatchPending = false
			m.dispatch(c, now)
		}
	}
	m.Eng.ScheduleDetached(at, c.dispatchFn)
}

// dispatch picks the next thread for an idle core, or completes the
// transition to the idle task.
func (m *Machine) dispatch(c *Core, now simtime.Time) {
	if c.cur != nil {
		return
	}
	if len(c.runq) == 0 {
		if c.prev != nil {
			m.contextSwitch(c, nil, now)
		}
		return
	}
	next := c.runq[0]
	c.runq = c.runq[1:]
	next.queued = false
	m.contextSwitch(c, next, now)
}

// contextSwitch performs the sched_switch from the core's previous thread
// to next (nil = idle), charging switch cost and hook costs, firing the
// tracepoint hooks, and informing the core's PT tracer of the CR3 change.
func (m *Machine) contextSwitch(c *Core, next *Thread, now simtime.Time) {
	prev := c.prev
	if prev == next && next != nil {
		// Same thread resuming: not a switch.
		m.setCur(c, next)
		next.State = Running
		m.startSegment(c, next, now)
		return
	}
	cost := m.Cfg.Cost.ContextSwitch
	ev := SwitchEvent{Now: now, Core: c, Prev: prev, Next: next}
	for _, h := range m.SwitchHooks {
		cost += h(ev)
	}
	c.KernelNS += cost
	c.Switches++
	m.Stats.Switches++
	m.recordSwitchPeriods(c, next, now)
	c.prev = next
	if next == nil {
		// Hardware sees the kernel/idle address space.
		c.Tracer.ContextSwitch(now+cost, 0, 0)
		return
	}
	c.Tracer.ContextSwitch(now+cost, next.Proc.CR3, next.Exec.CurrentIP())
	next.State = Running
	next.Stats.Switches++
	// The switch cost delays the incoming thread; charging it there makes
	// per-switch tracing control visible in the thread's CPI.
	next.Stats.KernelTime += cost
	next.lastCore = c.ID
	m.setCur(c, next)
	m.startSegment(c, next, now+cost)
}

// recordSwitchPeriods samples the Figure 8 distributions.
func (m *Machine) recordSwitchPeriods(c *Core, next *Thread, now simtime.Time) {
	if !m.Cfg.CollectSwitchPeriods {
		return
	}
	if m.lastSwitchAt > 0 {
		m.Stats.SwitchPeriodsAll = append(m.Stats.SwitchPeriodsAll, (now - m.lastSwitchAt).Millis())
	}
	m.lastSwitchAt = now
	if c.lastSwitchAt > 0 {
		m.Stats.SwitchPeriodsByCore = append(m.Stats.SwitchPeriodsByCore, (now - c.lastSwitchAt).Millis())
	}
	c.lastSwitchAt = now
	if next != nil {
		p := next.Proc
		if p.lastSwitchAt > 0 {
			m.Stats.SwitchPeriodsByProc = append(m.Stats.SwitchPeriodsByProc, (now - p.lastSwitchAt).Millis())
		}
		p.lastSwitchAt = now
	}
}

// interference computes the execution inflation for a segment starting on
// core c: hyperthread-sibling contention, time-sharing pollution, and LLC
// sharing with other processes in the same cache domain.
func (m *Machine) interference(c *Core, t *Thread) float64 {
	cost := m.Cfg.Cost
	f := 1.0
	if c.Sibling >= 0 && c.Sibling < len(m.Cores) && m.Cores[c.Sibling].cur != nil {
		f *= cost.HTShare
	}
	if len(c.runq) > 0 {
		f *= cost.CoreShare
	}
	// "Another process runs in my cache domain": c itself runs t at this
	// point, so it contributes one to both counters and cancels; any
	// positive difference is a core in the domain running a different
	// process. O(1) instead of a scan over all cores.
	if m.llcRunning[c.LLC]-t.Proc.llcRunning[c.LLC] > 0 {
		f *= cost.LLCShare
	}
	return f
}

// startSegment runs one bounded execution segment for the core's current
// thread and schedules its completion.
func (m *Machine) startSegment(c *Core, t *Thread, now simtime.Time) {
	factor := m.interference(c, t)
	rate := m.Cfg.Cost.FrequencyGHz / factor
	tracingActive := c.Tracer.Enabled() && c.Tracer.ContextOn()

	var sink binary.BranchSink
	if tracingActive || m.Listener != nil {
		c.emitter = branchEmitter{
			tracer:   c.Tracer,
			listener: m.Listener,
			thread:   t,
			now:      now,
			tracerOn: tracingActive,
		}
		sink = &c.emitter
	}

	c.runCtx = RunContext{
		Core:          c,
		Start:         now,
		MaxNS:         m.Cfg.Timeslice,
		CyclesPerNS:   rate,
		TracingActive: tracingActive,
		Sink:          sink,
	}
	res := t.Exec.Run(&c.runCtx)
	if res.UsedNS <= 0 {
		panic(fmt.Sprintf("sched: exec for %s returned non-positive segment", t.Proc.Name))
	}
	if res.BulkCond+res.BulkInd > 0 && tracingActive {
		c.Tracer.OnBulkBranches(now, res.BulkCond, res.BulkInd)
	}

	var stall simtime.Duration
	for _, h := range m.StallHooks {
		stall += h(c, now, res.UsedNS)
	}
	c.BusyNS += res.UsedNS
	c.KernelNS += stall
	// Stalls (sampling interrupts, trace hauling) interrupt the running
	// thread, so they surface in its CPI like any other kernel time.
	t.Stats.KernelTime += stall
	t.Stats.CPUTime += res.UsedNS
	t.Stats.Cycles += res.Cycles
	t.Stats.Insns += res.Insns
	t.Stats.Branches += res.Branches

	c.pendThread = t
	c.pendRes = res
	if c.segEndFn == nil {
		c.segEndFn = func(end simtime.Time) {
			pt := c.pendThread
			c.pendThread = nil
			m.segmentEnd(c, pt, c.pendRes, end)
		}
	}
	m.Eng.ScheduleDetached(now+res.UsedNS+stall, c.segEndFn)
}

// segmentEnd handles a completed segment: syscall processing, blocking,
// preemption, or continuation.
func (m *Machine) segmentEnd(c *Core, t *Thread, res RunResult, now simtime.Time) {
	if c.cur != t {
		panic("sched: segment completion for a thread no longer on its core")
	}
	m.setCur(c, nil)

	if res.Stop == binary.StopSyscall {
		spec := m.Syscall(res.SyscallClass)
		if m.EmitPTWrites {
			c.Tracer.PTWrite(now, uint64(res.SyscallClass))
		}
		cost := spec.Cost + m.Cfg.Cost.SyscallBase
		ev := SyscallEvent{Now: now, Core: c, Thread: t, Class: res.SyscallClass}
		for _, h := range m.SyscallHooks {
			cost += h(ev)
		}
		c.KernelNS += cost
		t.Stats.KernelTime += cost
		t.Stats.Syscalls++

		if t.rng.Bool(spec.BlockProb) {
			dur := spec.BlockDuration(t.rng)
			t.State = Blocked
			if t.wakeFn == nil {
				t.wakeFn = func(wake simtime.Time) {
					m.enqueue(t, wake)
				}
			}
			m.Eng.ScheduleDetached(now+cost+dur, t.wakeFn)
			m.kickDispatch(c, now+cost)
			return
		}
		// Non-blocking syscall: return to user mode; syscall exit is a
		// natural preemption point when others wait.
		if len(c.runq) > 0 {
			m.requeueLocal(c, t)
			m.kickDispatch(c, now+cost)
			return
		}
		m.setCur(c, t)
		m.startSegment(c, t, now+cost)
		return
	}

	// Timeslice exhausted.
	if len(c.runq) > 0 {
		m.requeueLocal(c, t)
		m.kickDispatch(c, now)
		return
	}
	m.setCur(c, t)
	m.startSegment(c, t, now)
}
