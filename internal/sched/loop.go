package sched

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/simtime"
)

// enqueue makes t runnable and places it on a core's runqueue.
func (m *Machine) enqueue(t *Thread, now simtime.Time) {
	if t.queued || t.State == Running {
		return
	}
	t.State = Runnable
	t.queued = true
	coreID := m.pickCore(t)
	if t.lastCore >= 0 && coreID != t.lastCore {
		t.Stats.Migrations++
		m.Stats.Migrations++
	}
	t.lastCore = coreID
	c := m.Cores[coreID]
	c.runq = append(c.runq, t)
	m.kickDispatch(c, now)
}

// requeueLocal puts a preempted thread back at the tail of its own core's
// queue (no migration).
func (m *Machine) requeueLocal(c *Core, t *Thread) {
	t.State = Runnable
	t.queued = true
	c.runq = append(c.runq, t)
}

// pickCore selects a core for a waking thread: last-core affinity first,
// then any idle allowed core, then the least-loaded allowed core.
func (m *Machine) pickCore(t *Thread) int {
	allowed := t.Proc.Allowed
	if t.lastCore >= 0 && containsCore(allowed, t.lastCore) {
		// Wake-affinity: stay on the cache-hot core unless it is
		// meaningfully loaded (CFS-like). This is also why CPU-share
		// processes "tend to execute on a few cores" (§5.2), which is
		// what makes UMA's core sampling cheap.
		c := m.Cores[t.lastCore]
		if len(c.runq) == 0 {
			return t.lastCore
		}
	}
	best, bestLoad := -1, 1<<30
	for _, id := range allowed {
		c := m.Cores[id]
		load := len(c.runq)
		if c.cur != nil {
			load++
		}
		if load == 0 {
			return id
		}
		if load < bestLoad {
			bestLoad, best = load, id
		}
	}
	// Prefer affinity on load ties.
	if t.lastCore >= 0 && containsCore(allowed, t.lastCore) {
		c := m.Cores[t.lastCore]
		load := len(c.runq)
		if c.cur != nil {
			load++
		}
		if load <= bestLoad {
			return t.lastCore
		}
	}
	return best
}

func containsCore(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// kickDispatch arranges for the core to pick new work at the given time.
func (m *Machine) kickDispatch(c *Core, at simtime.Time) {
	if c.dispatchPending || c.cur != nil {
		return
	}
	c.dispatchPending = true
	m.Eng.ScheduleDetached(at, func(now simtime.Time) {
		c.dispatchPending = false
		m.dispatch(c, now)
	})
}

// dispatch picks the next thread for an idle core, or completes the
// transition to the idle task.
func (m *Machine) dispatch(c *Core, now simtime.Time) {
	if c.cur != nil {
		return
	}
	if len(c.runq) == 0 {
		if c.prev != nil {
			m.contextSwitch(c, nil, now)
		}
		return
	}
	next := c.runq[0]
	c.runq = c.runq[1:]
	next.queued = false
	m.contextSwitch(c, next, now)
}

// contextSwitch performs the sched_switch from the core's previous thread
// to next (nil = idle), charging switch cost and hook costs, firing the
// tracepoint hooks, and informing the core's PT tracer of the CR3 change.
func (m *Machine) contextSwitch(c *Core, next *Thread, now simtime.Time) {
	prev := c.prev
	if prev == next && next != nil {
		// Same thread resuming: not a switch.
		c.cur = next
		next.State = Running
		m.startSegment(c, next, now)
		return
	}
	cost := m.Cfg.Cost.ContextSwitch
	ev := SwitchEvent{Now: now, Core: c, Prev: prev, Next: next}
	for _, h := range m.SwitchHooks {
		cost += h(ev)
	}
	c.KernelNS += cost
	c.Switches++
	m.Stats.Switches++
	m.recordSwitchPeriods(c, next, now)
	c.prev = next
	if next == nil {
		// Hardware sees the kernel/idle address space.
		c.Tracer.ContextSwitch(now+cost, 0, 0)
		return
	}
	c.Tracer.ContextSwitch(now+cost, next.Proc.CR3, next.Exec.CurrentIP())
	next.State = Running
	next.Stats.Switches++
	// The switch cost delays the incoming thread; charging it there makes
	// per-switch tracing control visible in the thread's CPI.
	next.Stats.KernelTime += cost
	next.lastCore = c.ID
	c.cur = next
	m.startSegment(c, next, now+cost)
}

// recordSwitchPeriods samples the Figure 8 distributions.
func (m *Machine) recordSwitchPeriods(c *Core, next *Thread, now simtime.Time) {
	if !m.Cfg.CollectSwitchPeriods {
		return
	}
	if m.lastSwitchAt > 0 {
		m.Stats.SwitchPeriodsAll = append(m.Stats.SwitchPeriodsAll, (now - m.lastSwitchAt).Millis())
	}
	m.lastSwitchAt = now
	if c.lastSwitchAt > 0 {
		m.Stats.SwitchPeriodsByCore = append(m.Stats.SwitchPeriodsByCore, (now - c.lastSwitchAt).Millis())
	}
	c.lastSwitchAt = now
	if next != nil {
		p := next.Proc
		if p.lastSwitchAt > 0 {
			m.Stats.SwitchPeriodsByProc = append(m.Stats.SwitchPeriodsByProc, (now - p.lastSwitchAt).Millis())
		}
		p.lastSwitchAt = now
	}
}

// interference computes the execution inflation for a segment starting on
// core c: hyperthread-sibling contention, time-sharing pollution, and LLC
// sharing with other processes in the same cache domain.
func (m *Machine) interference(c *Core, t *Thread) float64 {
	cost := m.Cfg.Cost
	f := 1.0
	if c.Sibling >= 0 && c.Sibling < len(m.Cores) && m.Cores[c.Sibling].cur != nil {
		f *= cost.HTShare
	}
	if len(c.runq) > 0 {
		f *= cost.CoreShare
	}
	for _, other := range m.Cores {
		if other.ID == c.ID || other.LLC != c.LLC {
			continue
		}
		if other.cur != nil && other.cur.Proc != t.Proc {
			f *= cost.LLCShare
			break
		}
	}
	return f
}

// startSegment runs one bounded execution segment for the core's current
// thread and schedules its completion.
func (m *Machine) startSegment(c *Core, t *Thread, now simtime.Time) {
	factor := m.interference(c, t)
	rate := m.Cfg.Cost.FrequencyGHz / factor
	tracingActive := c.Tracer.Enabled() && c.Tracer.ContextOn()

	var emit func(binary.BranchEvent)
	tracerListening := tracingActive
	if tracerListening || m.Listener != nil {
		tracer := c.Tracer
		listener := m.Listener
		thread := t
		emit = func(ev binary.BranchEvent) {
			if tracerListening {
				tracer.OnBranch(now, ev)
			}
			if listener != nil {
				listener(thread, now, ev)
			}
		}
	}

	ctx := RunContext{
		Core:          c,
		Start:         now,
		MaxNS:         m.Cfg.Timeslice,
		CyclesPerNS:   rate,
		TracingActive: tracingActive,
		Emit:          emit,
	}
	res := t.Exec.Run(&ctx)
	if res.UsedNS <= 0 {
		panic(fmt.Sprintf("sched: exec for %s returned non-positive segment", t.Proc.Name))
	}
	if res.BulkCond+res.BulkInd > 0 && tracingActive {
		c.Tracer.OnBulkBranches(now, res.BulkCond, res.BulkInd)
	}

	var stall simtime.Duration
	for _, h := range m.StallHooks {
		stall += h(c, now, res.UsedNS)
	}
	c.BusyNS += res.UsedNS
	c.KernelNS += stall
	// Stalls (sampling interrupts, trace hauling) interrupt the running
	// thread, so they surface in its CPI like any other kernel time.
	t.Stats.KernelTime += stall
	t.Stats.CPUTime += res.UsedNS
	t.Stats.Cycles += res.Cycles
	t.Stats.Insns += res.Insns
	t.Stats.Branches += res.Branches

	m.Eng.ScheduleDetached(now+res.UsedNS+stall, func(end simtime.Time) {
		m.segmentEnd(c, t, res, end)
	})
}

// segmentEnd handles a completed segment: syscall processing, blocking,
// preemption, or continuation.
func (m *Machine) segmentEnd(c *Core, t *Thread, res RunResult, now simtime.Time) {
	if c.cur != t {
		panic("sched: segment completion for a thread no longer on its core")
	}
	c.cur = nil

	if res.Stop == binary.StopSyscall {
		spec := m.Syscall(res.SyscallClass)
		if m.EmitPTWrites {
			c.Tracer.PTWrite(now, uint64(res.SyscallClass))
		}
		cost := spec.Cost + m.Cfg.Cost.SyscallBase
		ev := SyscallEvent{Now: now, Core: c, Thread: t, Class: res.SyscallClass}
		for _, h := range m.SyscallHooks {
			cost += h(ev)
		}
		c.KernelNS += cost
		t.Stats.KernelTime += cost
		t.Stats.Syscalls++

		if t.rng.Bool(spec.BlockProb) {
			dur := spec.BlockDuration(t.rng)
			t.State = Blocked
			m.Eng.ScheduleDetached(now+cost+dur, func(wake simtime.Time) {
				m.enqueue(t, wake)
			})
			m.kickDispatch(c, now+cost)
			return
		}
		// Non-blocking syscall: return to user mode; syscall exit is a
		// natural preemption point when others wait.
		if len(c.runq) > 0 {
			m.requeueLocal(c, t)
			m.kickDispatch(c, now+cost)
			return
		}
		c.cur = t
		m.startSegment(c, t, now+cost)
		return
	}

	// Timeslice exhausted.
	if len(c.runq) > 0 {
		m.requeueLocal(c, t)
		m.kickDispatch(c, now)
		return
	}
	c.cur = t
	m.startSegment(c, t, now)
}
