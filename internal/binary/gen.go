package binary

import (
	"fmt"

	"exist/internal/xrand"
)

// Spec parameterizes program synthesis. Workload profiles (package
// workload) fill one of these per benchmark so that the generated binary's
// dynamic branch density, syscall rate, call-graph shape, and
// function-category mix match the workload the paper traced.
type Spec struct {
	// Name names the binary (usually the workload name).
	Name string
	// Seed drives all synthesis randomness.
	Seed uint64

	// Funcs is the number of functions.
	Funcs int
	// BlocksPerFuncMin/Max bound the per-function block count.
	BlocksPerFuncMin, BlocksPerFuncMax int

	// AvgBlockCycles is the mean basic-block execution cost; branch
	// density is roughly 1/AvgBlockCycles PT events per cycle, so smaller
	// blocks mean branchier programs.
	AvgBlockCycles int
	// IPC sets instructions per cycle (Insns = Cycles*IPC), which fixes
	// the workload's baseline CPI for the Figure 15 metrics.
	IPC float64

	// Terminator mix: fractions of non-final blocks ending in each
	// transfer kind. The remainder fall through.
	CondFrac, JumpFrac, IndJumpFrac, CallFrac, IndCallFrac float64
	// SyscallFrac is the fraction of blocks that are syscall sites; the
	// dynamic syscall rate follows from it and the block cost.
	SyscallFrac float64
	// LoopBackProb is the probability a conditional branch targets an
	// earlier block (forming a loop).
	LoopBackProb float64
	// AvgTakenProb is the mean taken-probability of conditional branches.
	AvgTakenProb float64

	// SyscallClassWeights selects the syscall class of syscall blocks
	// (indices are kernel syscall classes); nil means class 0 always.
	SyscallClassWeights []float64

	// CategoryWeights distributes functions across FuncCategory values;
	// a zero array puts every function in CatGeneral.
	CategoryWeights [NumCategories]float64

	// MemOpsPerBlock is the mean number of memory accesses per block, and
	// MemClassWeights/MemWidthWeights shape their Figure 22 distribution.
	MemOpsPerBlock  float64
	MemClassWeights [NumMemClasses]float64
	MemWidthWeights [4]float64
}

// DefaultSpec returns a reasonable mid-size compute-like spec, used as the
// base that workload profiles override.
func DefaultSpec(name string, seed uint64) Spec {
	return Spec{
		Name:             name,
		Seed:             seed,
		Funcs:            48,
		BlocksPerFuncMin: 4,
		BlocksPerFuncMax: 16,
		AvgBlockCycles:   24,
		IPC:              1.4,
		CondFrac:         0.42,
		JumpFrac:         0.08,
		IndJumpFrac:      0.05,
		CallFrac:         0.16,
		IndCallFrac:      0.04,
		SyscallFrac:      0.004,
		LoopBackProb:     0.35,
		AvgTakenProb:     0.55,
		MemOpsPerBlock:   3,
		MemClassWeights:  [NumMemClasses]float64{0.55, 0.2, 0.25},
		MemWidthWeights:  [4]float64{0.15, 0.1, 0.35, 0.4},
	}
}

// Synthesize builds a Program from the spec. Synthesis is deterministic in
// Spec.Seed. The result always passes Validate; Synthesize panics on a
// structurally impossible spec (it is programmer error, not input error).
func Synthesize(spec Spec) *Program {
	if spec.Funcs < 1 {
		panic("binary: Synthesize needs at least one function")
	}
	if spec.BlocksPerFuncMin < 2 {
		spec.BlocksPerFuncMin = 2
	}
	if spec.BlocksPerFuncMax < spec.BlocksPerFuncMin {
		spec.BlocksPerFuncMax = spec.BlocksPerFuncMin
	}
	rng := xrand.Split(spec.Seed, "binary/"+spec.Name)

	p := &Program{Name: spec.Name, TextBase: 0x400000}

	// Lay out functions and blocks.
	type funcSpan struct{ first, last BlockID }
	spans := make([]funcSpan, spec.Funcs)
	catWeights := spec.CategoryWeights[:]
	var catTotal float64
	for _, w := range catWeights {
		catTotal += w
	}
	for f := 0; f < spec.Funcs; f++ {
		n := spec.BlocksPerFuncMin
		if spec.BlocksPerFuncMax > spec.BlocksPerFuncMin {
			n += rng.IntN(spec.BlocksPerFuncMax - spec.BlocksPerFuncMin + 1)
		}
		first := BlockID(len(p.Blocks))
		for i := 0; i < n; i++ {
			p.Blocks = append(p.Blocks, Block{Func: int32(f)})
		}
		spans[f] = funcSpan{first, BlockID(len(p.Blocks) - 1)}

		cat := CatGeneral
		if f > 0 && catTotal > 0 {
			cat = FuncCategory(rng.WeightedPick(catWeights))
		}
		p.Funcs = append(p.Funcs, Func{
			Name:     fmt.Sprintf("%s_%s_%d", spec.Name, categorySlug(cat), f),
			Entry:    first,
			Category: cat,
		})
	}
	p.Entry = spans[0].first

	// Fill in block bodies and terminators.
	termWeights := []float64{
		spec.CondFrac, spec.JumpFrac, spec.IndJumpFrac,
		spec.CallFrac, spec.IndCallFrac, spec.SyscallFrac,
	}
	var termTotal float64
	for _, w := range termWeights {
		termTotal += w
	}
	fallFrac := 1 - termTotal
	if fallFrac < 0 {
		panic("binary: terminator fractions exceed 1")
	}
	allTermWeights := append([]float64{}, termWeights...)
	allTermWeights = append(allTermWeights, fallFrac)

	addr := p.TextBase
	for f := 0; f < spec.Funcs; f++ {
		span := spans[f]
		for id := span.first; id <= span.last; id++ {
			b := &p.Blocks[id]
			b.Cycles = int32(max64(4, int64(rng.Jitter(float64(spec.AvgBlockCycles), 0.6))))
			b.Insns = int32(max64(1, int64(float64(b.Cycles)*spec.IPC)))
			b.Addr = addr
			addr += uint64(b.Insns)*4 + 8
			fillMemOps(b, spec, rng)

			if id == span.last {
				b.Term = TermReturn
				continue
			}
			next := id + 1

			if f == 0 {
				// The entry function is the service dispatcher: every
				// loop iteration must descend into worker functions, so
				// its blocks are dominated by (indirect) call sites with
				// forward-only glue — a hot path that skipped every call
				// would reduce the whole program to one small loop.
				switch {
				case rng.Bool(0.45) && len(spans) > 1:
					b.Term = TermIndirectCall
					b.Fall = next
					fillIndirect(b, rng, func() BlockID { return spans[1+rng.IntN(len(spans)-1)].first })
				case rng.Bool(0.35) && len(spans) > 1:
					b.Term = TermCall
					b.Fall = next
					b.Taken = spans[1+rng.IntN(len(spans)-1)].first
				case rng.Bool(0.3):
					b.Term = TermCond
					b.Fall = next
					b.Taken = pickLocal(rng, span, id, 0)
					b.TakenProb = float32(clamp01(rng.Jitter(spec.AvgTakenProb, 0.4)))
				case rng.Bool(0.15) && spec.SyscallFrac > 0:
					b.Term = TermSyscall
					b.Fall = next
					if len(spec.SyscallClassWeights) > 0 {
						b.SyscallClass = uint8(rng.WeightedPick(spec.SyscallClassWeights))
					}
				default:
					b.Term = TermFall
					b.Fall = next
				}
				continue
			}

			switch rng.WeightedPick(allTermWeights) {
			case 0: // conditional branch
				b.Term = TermCond
				b.Fall = next
				b.Taken = pickLocal(rng, span, id, spec.LoopBackProb)
				if b.Taken < id {
					// Backward (loop) branch: bound the taken probability
					// so loop trip counts stay realistic — otherwise the
					// walk is absorbed into one hot loop and never covers
					// the rest of the program.
					b.TakenProb = float32(0.3 + 0.55*rng.Float64())
				} else {
					b.TakenProb = float32(clamp01(rng.Jitter(spec.AvgTakenProb, 0.4)))
				}
			case 1: // direct jump — forward only: a backward direct jump
				// could close a cycle with no PT-visible (random-exit)
				// branch in it, wedging execution in silence.
				b.Term = TermJump
				b.Taken = pickLocal(rng, span, id, 0)
			case 2: // indirect jump — the first target is forced forward:
				// an all-backward target set would close an absorbing
				// region with no path to the function exit.
				b.Term = TermIndirectJump
				first := true
				fillIndirect(b, rng, func() BlockID {
					if first {
						first = false
						return pickLocal(rng, span, id, 0)
					}
					return pickLocal(rng, span, id, 0.25)
				})
			case 3: // direct call — DAG only (higher-index callees): a
				// direct-recursion cycle would contain no PT-visible,
				// randomly-exiting branch and could wedge execution
				// silently. Recursion stays possible through indirect
				// calls, which emit TIPs.
				if f+1 >= len(spans) {
					b.Term = TermFall
					b.Fall = next
					continue
				}
				b.Term = TermCall
				b.Fall = next
				callee := spans[f+1+rng.IntN(len(spans)-f-1)]
				b.Taken = callee.first
			case 4: // indirect call
				b.Term = TermIndirectCall
				b.Fall = next
				fillIndirect(b, rng, func() BlockID { return spans[rng.IntN(len(spans))].first })
			case 5: // syscall
				b.Term = TermSyscall
				b.Fall = next
				if len(spec.SyscallClassWeights) > 0 {
					b.SyscallClass = uint8(rng.WeightedPick(spec.SyscallClassWeights))
				}
			default: // fall through
				b.Term = TermFall
				b.Fall = next
			}
		}
	}
	p.TextSize = addr - p.TextBase

	if err := p.Validate(); err != nil {
		panic("binary: synthesized invalid program: " + err.Error())
	}
	return p
}

// pickLocal picks a jump/branch target within a function span: an earlier
// block with probability loopProb (forming a loop), otherwise a later one.
func pickLocal(rng *xrand.Rand, span struct{ first, last BlockID }, from BlockID, loopProb float64) BlockID {
	hasBack := from > span.first
	hasFwd := from+1 < span.last // skip self and prefer real forward motion
	// Backward edges are taken only with loopProb — callers pass zero for
	// silent (non-packet-producing) terminators so that every silent edge
	// makes forward progress and execution cannot wedge in a quiet cycle.
	if hasBack && loopProb > 0 && rng.Bool(loopProb) {
		return span.first + BlockID(rng.IntN(int(from-span.first)))
	}
	if hasFwd {
		return from + 2 + BlockID(rng.IntN(int(span.last-from-1)))
	}
	return span.last
}

// fillIndirect populates 2-4 weighted targets for an indirect terminator.
// Weights are exponentially skewed: real indirect-call profiles are
// heavy-tailed (a hot virtual target plus rarely-taken alternatives),
// which is what makes short tracing windows cover different function
// subsets on different runs.
func fillIndirect(b *Block, rng *xrand.Rand, pick func() BlockID) {
	n := 2 + rng.IntN(3)
	seen := map[BlockID]bool{}
	for i := 0; i < n; i++ {
		t := pick()
		if seen[t] {
			continue
		}
		seen[t] = true
		b.Targets = append(b.Targets, t)
		w := 0.02 + rng.Pareto(0.05, 1.1)
		if w > 20 {
			w = 20
		}
		b.TargetW = append(b.TargetW, float32(w))
	}
	if len(b.Targets) == 0 {
		b.Targets = []BlockID{pick()}
		b.TargetW = []float32{1}
	}
}

// fillMemOps assigns the block's Figure 22 memory-access counts.
func fillMemOps(b *Block, spec Spec, rng *xrand.Rand) {
	if spec.MemOpsPerBlock <= 0 {
		return
	}
	n := int(rng.Jitter(spec.MemOpsPerBlock, 0.8))
	clsW := spec.MemClassWeights[:]
	widW := spec.MemWidthWeights[:]
	var clsTotal, widTotal float64
	for _, w := range clsW {
		clsTotal += w
	}
	for _, w := range widW {
		widTotal += w
	}
	if clsTotal <= 0 || widTotal <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		cls := rng.WeightedPick(clsW)
		wid := rng.WeightedPick(widW)
		b.MemOps[cls][wid]++
	}
}

// categorySlug returns a lowercase symbol fragment for a category.
func categorySlug(c FuncCategory) string {
	switch c {
	case CatGeneral:
		return "fn"
	case CatMemJE:
		return "je_arena"
	case CatMemTC:
		return "tc_central"
	case CatMemAlloc:
		return "malloc"
	case CatMemFree:
		return "free"
	case CatMemCopy:
		return "memcpy"
	case CatMemSet:
		return "memset"
	case CatMemCmp:
		return "memcmp"
	case CatMemMove:
		return "memmove"
	case CatSyncAtomic:
		return "atomic_fetch"
	case CatSyncSpinlock:
		return "spin_lock"
	case CatSyncMutex:
		return "mutex_lock"
	case CatSyncCAS:
		return "cmpxchg"
	case CatKernelSche:
		return "sched_wakeup"
	case CatKernelIRQ:
		return "irq_handler"
	case CatKernelNet:
		return "net_rx"
	default:
		return "bad"
	}
}

func clamp01(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
