package binary

import (
	"testing"
	"testing/quick"

	"exist/internal/xrand"
)

func testProgram(t testing.TB, seed uint64) *Program {
	t.Helper()
	p := Synthesize(DefaultSpec("testprog", seed))
	if err := p.Validate(); err != nil {
		t.Fatalf("synthesized program invalid: %v", err)
	}
	return p
}

func TestSynthesizeValid(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		testProgram(t, seed)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(DefaultSpec("d", 7))
	b := Synthesize(DefaultSpec("d", 7))
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if a.Blocks[i].Addr != b.Blocks[i].Addr || a.Blocks[i].Term != b.Blocks[i].Term ||
			a.Blocks[i].Cycles != b.Blocks[i].Cycles {
			t.Fatalf("block %d differs between identical syntheses", i)
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	a := Synthesize(DefaultSpec("d", 1))
	b := Synthesize(DefaultSpec("d", 2))
	if len(a.Blocks) == len(b.Blocks) {
		same := true
		for i := range a.Blocks {
			if a.Blocks[i].Term != b.Blocks[i].Term || a.Blocks[i].Cycles != b.Blocks[i].Cycles {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical programs")
		}
	}
}

func TestBlockAt(t *testing.T) {
	p := testProgram(t, 3)
	for i := range p.Blocks {
		id, ok := p.BlockAt(p.Blocks[i].Addr)
		if !ok || id != BlockID(i) {
			t.Fatalf("BlockAt(%#x) = %d,%v want %d", p.Blocks[i].Addr, id, ok, i)
		}
	}
	if _, ok := p.BlockAt(0xdeadbeef); ok {
		t.Fatal("BlockAt resolved a bogus address")
	}
}

func TestWalkerDeterminism(t *testing.T) {
	p := testProgram(t, 4)
	run := func() []BranchEvent {
		w := NewWalker(p, xrand.New(99))
		var evs []BranchEvent
		for i := 0; i < 50; i++ {
			w.Run(10_000, func(e BranchEvent) { evs = append(evs, e) })
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("walker runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walker event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("walker produced no branch events")
	}
}

func TestWalkerEventsFollowCFG(t *testing.T) {
	p := testProgram(t, 5)
	w := NewWalker(p, xrand.New(1))
	prev := w.Current()
	seen := 0
	emit := func(e BranchEvent) {
		seen++
		b := &p.Blocks[e.Block]
		switch e.Kind {
		case TermCond:
			want := b.Fall
			if e.Taken {
				want = b.Taken
			}
			if e.Target != want {
				t.Fatalf("cond event target %d, want %d", e.Target, want)
			}
		case TermIndirectJump, TermIndirectCall:
			found := false
			for _, cand := range b.Targets {
				if cand == e.Target {
					found = true
				}
			}
			if !found {
				t.Fatalf("indirect event target %d not in candidate set", e.Target)
			}
		}
		if e.To != p.Blocks[e.Target].Addr {
			t.Fatalf("event To=%#x but target block addr=%#x", e.To, p.Blocks[e.Target].Addr)
		}
	}
	for i := 0; i < 20; i++ {
		w.Run(5_000, emit)
	}
	_ = prev
	if seen == 0 {
		t.Fatal("no events observed")
	}
}

func TestWalkerCycleAccounting(t *testing.T) {
	p := testProgram(t, 6)
	w := NewWalker(p, xrand.New(2))
	var total int64
	for i := 0; i < 100; i++ {
		used, reason, _ := w.Run(1_000, nil)
		if used <= 0 {
			t.Fatalf("run %d consumed %d cycles", i, used)
		}
		if reason == StopBudget && used < 1_000 {
			t.Fatalf("budget stop with only %d/1000 cycles used", used)
		}
		total += used
	}
	if w.Count.Cycles != total {
		t.Fatalf("counter cycles %d != summed %d", w.Count.Cycles, total)
	}
	if w.Count.Insns <= 0 || w.Count.Branches <= 0 {
		t.Fatalf("counters not accumulating: %+v", w.Count)
	}
}

func TestWalkerSyscallStops(t *testing.T) {
	spec := DefaultSpec("sys", 7)
	spec.SyscallFrac = 0.25 // very syscall-heavy
	spec.SyscallClassWeights = []float64{1, 2, 3}
	p := Synthesize(spec)
	w := NewWalker(p, xrand.New(3))
	sawSyscall := false
	for i := 0; i < 200 && !sawSyscall; i++ {
		_, reason, class := w.Run(1_000_000, nil)
		if reason == StopSyscall {
			sawSyscall = true
			if class > 2 {
				t.Fatalf("syscall class %d out of weight range", class)
			}
		}
	}
	if !sawSyscall {
		t.Fatal("syscall-heavy program never reached a syscall")
	}
	if w.Count.Syscalls == 0 {
		t.Fatal("syscall counter not incremented")
	}
}

func TestComputeStats(t *testing.T) {
	p := testProgram(t, 8)
	s := p.ComputeStats()
	if s.Blocks != len(p.Blocks) || s.Funcs != len(p.Funcs) {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.BranchPerKCycle <= 0 {
		t.Fatal("expected nonzero branch density")
	}
	if s.AvgBlockCycles <= 0 {
		t.Fatal("expected positive average block cycles")
	}
	if s.TextBytes == 0 {
		t.Fatal("expected nonzero text size")
	}
}

func TestCategoryAssignment(t *testing.T) {
	spec := DefaultSpec("cat", 9)
	spec.Funcs = 400
	spec.CategoryWeights[CatMemCopy] = 5
	spec.CategoryWeights[CatSyncMutex] = 5
	spec.CategoryWeights[CatGeneral] = 10
	p := Synthesize(spec)
	counts := map[FuncCategory]int{}
	for _, f := range p.Funcs {
		counts[f.Category]++
	}
	if counts[CatMemCopy] == 0 || counts[CatSyncMutex] == 0 {
		t.Fatalf("weighted categories missing: %v", counts)
	}
	if counts[CatKernelIRQ] != 0 {
		t.Fatalf("zero-weight category assigned: %v", counts)
	}
}

func TestMemOpsPopulated(t *testing.T) {
	p := testProgram(t, 10)
	var total int64
	for i := range p.Blocks {
		for cls := 0; cls < NumMemClasses; cls++ {
			for w := 0; w < 4; w++ {
				total += int64(p.Blocks[i].MemOps[cls][w])
			}
		}
	}
	if total == 0 {
		t.Fatal("no memory ops generated")
	}
}

func TestFuncEntriesHistogram(t *testing.T) {
	p := testProgram(t, 11)
	w := NewWalker(p, xrand.New(4))
	for i := 0; i < 500; i++ {
		w.Run(10_000, nil)
	}
	w.Settle()
	if len(w.Count.FuncEntries) == 0 {
		t.Fatal("no function entries recorded")
	}
	for fn, n := range w.Count.FuncEntries {
		if fn < 0 || int(fn) >= len(p.Funcs) || n <= 0 {
			t.Fatalf("bad histogram entry %d:%d", fn, n)
		}
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	p := testProgram(t, 12)
	// Find a conditional block and corrupt its successor.
	for i := range p.Blocks {
		if p.Blocks[i].Term == TermCond {
			saved := p.Blocks[i].Taken
			p.Blocks[i].Taken = BlockID(len(p.Blocks) + 5)
			if err := p.Validate(); err == nil {
				t.Fatal("Validate accepted out-of-range successor")
			}
			p.Blocks[i].Taken = saved
			break
		}
	}
	saved := p.Entry
	p.Entry = -5
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted bad entry")
	}
	p.Entry = saved
}

func TestTermKindString(t *testing.T) {
	kinds := []TermKind{TermFall, TermCond, TermJump, TermIndirectJump,
		TermCall, TermIndirectCall, TermReturn, TermSyscall, TermKind(200)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", k)
		}
	}
}

// Property: over random seeds, every synthesized program validates and a
// bounded walk is cycle-conserving and emits only valid block IDs.
func TestSynthesizeWalkProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		spec := DefaultSpec("prop", seed)
		spec.Funcs = 8 + int(seed%16)
		p := Synthesize(spec)
		if p.Validate() != nil {
			return false
		}
		w := NewWalker(p, xrand.New(seed^0xabcdef))
		ok := true
		emit := func(e BranchEvent) {
			if e.Block < 0 || int(e.Block) >= len(p.Blocks) ||
				e.Target < 0 || int(e.Target) >= len(p.Blocks) {
				ok = false
			}
		}
		for i := 0; i < int(steps%32)+1; i++ {
			used, _, _ := w.Run(2_000, emit)
			if used <= 0 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWalkerRun(b *testing.B) {
	p := Synthesize(DefaultSpec("bench", 1))
	w := NewWalker(p, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(10_000, nil)
	}
}

func BenchmarkWalkerRunEmitting(b *testing.B) {
	p := Synthesize(DefaultSpec("bench", 1))
	w := NewWalker(p, xrand.New(1))
	sink := func(BranchEvent) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(10_000, sink)
	}
}
