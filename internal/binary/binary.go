// Package binary models the program binaries that the simulated hardware
// traces and the software decoder reconstructs.
//
// A Program is a synthetic but structurally realistic binary: a set of
// functions, each a small control-flow graph of basic blocks with
// conditional branches, direct and indirect jumps, calls, returns, and
// syscall sites. Programs stand in for the paper's workloads (SPEC CPU 2017
// binaries, Memcached/Nginx/MySQL, and the Alibaba services): what matters
// for reproducing EXIST is not the computation the blocks perform but the
// *control-flow events* they generate — because those are exactly what
// Intel PT records (TNT bits for conditionals, TIP packets for indirect
// transfers) and what the decoder must re-derive from the binary.
//
// A Walker executes a Program deterministically from a seed, emitting the
// ground-truth branch stream. The same CFG is consulted by the decoder, so
// reconstruction accuracy can be scored exactly.
package binary

import (
	"fmt"
	"sync"

	"exist/internal/xrand"
)

// BlockID identifies a basic block within a Program. NoBlock marks an
// absent successor.
type BlockID int32

// NoBlock is the nil BlockID.
const NoBlock BlockID = -1

// TermKind is the kind of instruction that terminates a basic block. The
// kind determines what (if anything) the PT hardware emits when the block
// executes: conditional branches produce TNT bits, indirect transfers and
// returns produce TIP packets, and direct transfers produce nothing
// (the decoder follows them statically).
type TermKind uint8

const (
	// TermFall: the block falls through to its successor (no packet).
	TermFall TermKind = iota
	// TermCond: conditional branch — one TNT bit.
	TermCond
	// TermJump: direct unconditional jump (no packet).
	TermJump
	// TermIndirectJump: e.g. a jump table — one TIP packet.
	TermIndirectJump
	// TermCall: direct call (no packet); pushes a return site.
	TermCall
	// TermIndirectCall: e.g. a virtual call — one TIP packet; pushes a
	// return site.
	TermIndirectCall
	// TermReturn: function return — one TIP packet (return compression
	// disabled, as is typical for decoders that want robust resync).
	TermReturn
	// TermSyscall: the block ends in a syscall instruction; control
	// resumes at the fall-through block after the kernel returns.
	TermSyscall
)

// String returns a short mnemonic for the terminator kind.
func (k TermKind) String() string {
	switch k {
	case TermFall:
		return "fall"
	case TermCond:
		return "jcc"
	case TermJump:
		return "jmp"
	case TermIndirectJump:
		return "jmp*"
	case TermCall:
		return "call"
	case TermIndirectCall:
		return "call*"
	case TermReturn:
		return "ret"
	case TermSyscall:
		return "syscall"
	default:
		return "bad"
	}
}

// FuncCategory classifies a function for the case-study analyses
// (Figures 21 and 22 of the paper): the costly leaf-function categories
// whose occurrence ratios EXIST reports per application.
type FuncCategory uint8

const (
	// CatGeneral is ordinary application logic.
	CatGeneral FuncCategory = iota
	// Memory-operation leaf functions (Figure 21a).
	CatMemJE    // jemalloc allocator paths
	CatMemTC    // tcmalloc allocator paths
	CatMemAlloc // generic malloc
	CatMemFree  // free paths
	CatMemCopy  // memcpy
	CatMemSet   // memset
	CatMemCmp   // memcmp
	CatMemMove  // memmove
	// Synchronization leaf functions (Figure 21b).
	CatSyncAtomic
	CatSyncSpinlock
	CatSyncMutex
	CatSyncCAS
	// Kernel-operation leaf functions (Figure 21c).
	CatKernelSche
	CatKernelIRQ
	CatKernelNet
	numCategories
)

// NumCategories is the number of distinct function categories.
const NumCategories = int(numCategories)

// String returns the label used in the paper's figures.
func (c FuncCategory) String() string {
	switch c {
	case CatGeneral:
		return "GENERAL"
	case CatMemJE:
		return "MEM_JE"
	case CatMemTC:
		return "MEM_TC"
	case CatMemAlloc:
		return "MEM_ALLOC"
	case CatMemFree:
		return "MEM_FREE"
	case CatMemCopy:
		return "MEM_COPY"
	case CatMemSet:
		return "MEM_SET"
	case CatMemCmp:
		return "MEM_CMP"
	case CatMemMove:
		return "MEM_MOVE"
	case CatSyncAtomic:
		return "SYNC_ATOMIC"
	case CatSyncSpinlock:
		return "SYNC_SPINLOCK"
	case CatSyncMutex:
		return "SYNC_MUTEX"
	case CatSyncCAS:
		return "SYNC_CAS"
	case CatKernelSche:
		return "KERNEL_SCHE"
	case CatKernelIRQ:
		return "KERNEL_IRQ"
	case CatKernelNet:
		return "KERNEL_NET"
	default:
		return "BAD"
	}
}

// MemClass classifies a block's memory accesses for the Figure 22
// bandwidth analysis.
type MemClass uint8

const (
	// MemReadOnly blocks only load.
	MemReadOnly MemClass = iota
	// MemWriteOnly blocks only store.
	MemWriteOnly
	// MemReadWrite blocks do both.
	MemReadWrite
	numMemClasses
)

// NumMemClasses is the number of memory access classes.
const NumMemClasses = int(numMemClasses)

// String returns the label used in Figure 22.
func (c MemClass) String() string {
	switch c {
	case MemReadOnly:
		return "Read-Only"
	case MemWriteOnly:
		return "Write-Only"
	case MemReadWrite:
		return "Read-Write"
	default:
		return "BAD"
	}
}

// MemWidths are the access widths (bytes) reported in Figure 22.
var MemWidths = [4]int{1, 2, 4, 8}

// Block is one basic block.
type Block struct {
	// Addr is the block's start address in the synthetic text segment.
	Addr uint64
	// Insns is the number of instructions in the block.
	Insns int32
	// Cycles is the block's base execution cost in core cycles.
	Cycles int32
	// Term is the terminator kind.
	Term TermKind
	// Taken is the target when the terminator transfers control: the
	// branch target for TermCond (when taken), the jump target for
	// TermJump, the callee entry for TermCall. Unused for indirect
	// terminators (see Targets) and returns.
	Taken BlockID
	// Fall is the fall-through successor: the not-taken successor for
	// TermCond, the return site pushed by calls, and the post-syscall
	// resume block. NoBlock for TermReturn and TermJump.
	Fall BlockID
	// TakenProb is the probability a TermCond branch is taken.
	TakenProb float32
	// Targets and TargetW are the candidate targets and weights of an
	// indirect terminator.
	Targets []BlockID
	// TargetW holds the selection weights parallel to Targets.
	TargetW []float32
	// Func is the index of the containing function.
	Func int32
	// SyscallClass selects the simulated syscall for TermSyscall blocks
	// (an index into the kernel package's syscall table).
	SyscallClass uint8
	// MemOps counts memory accesses by [MemClass][width-index] for the
	// Figure 22 analysis.
	MemOps [NumMemClasses][4]uint16
}

// Func is a function: a named entry point with a category.
type Func struct {
	// Name is the symbol name.
	Name string
	// Entry is the function's entry block.
	Entry BlockID
	// Category classifies the function for case-study analyses.
	Category FuncCategory
}

// Program is a synthetic binary.
type Program struct {
	// Name identifies the workload the binary belongs to.
	Name string
	// Blocks is the block table; BlockIDs index it.
	Blocks []Block
	// Funcs is the function table.
	Funcs []Func
	// Entry is the program entry block.
	Entry BlockID
	// TextBase is the load address of the text segment.
	TextBase uint64
	// TextSize is the extent of the synthetic text segment in bytes; it
	// stands in for the binary-size input of RCO's complexity model.
	TextSize uint64

	// The lookup indexes are built lazily under sync.Once so a shared
	// *Program may be consumed by concurrent decoders (the parallel
	// experiment harness does exactly that).
	addrOnce   sync.Once
	addrIndex  map[uint64]BlockID
	entryOnce  sync.Once
	entryIndex map[BlockID]int32
	superOnce  sync.Once
	super      []superStep
}

// superStep is the fused form of the maximal straight-line block chain
// starting at a block: a run of TermFall/TermJump blocks plus the first
// block whose terminator needs per-visit handling (a branch, call, return,
// or syscall). The walker charges a whole chain with one pre-summed step
// instead of one step per block; the chain's block-level aggregates are
// recovered at Settle time by re-walking it once per distinct chain.
type superStep struct {
	cycles int64   // summed Cycles of the chain's n blocks
	insns  int64   // summed Insns of the chain's n blocks
	last   int64   // Cycles of the final block (budget checks are exact to it)
	end    BlockID // block whose terminator ends the chain; NoBlock when capped
	next   BlockID // resume block when the fusion cap cut a pure fall/jump run
	n      int32
}

// maxFuse caps chain length so pure fall/jump cycles in the CFG cannot
// make construction loop; capped chains resume at next.
const maxFuse = 64

// superSteps builds (once) and returns the per-block fused-chain table.
// Like the lookup indexes, it is built under sync.Once so concurrent
// walkers may share one Program.
func (p *Program) superSteps() []superStep {
	p.superOnce.Do(func() {
		sup := make([]superStep, len(p.Blocks))
		for i := range p.Blocks {
			var st superStep
			id := BlockID(i)
			for {
				b := &p.Blocks[id]
				st.cycles += int64(b.Cycles)
				st.insns += int64(b.Insns)
				st.last = int64(b.Cycles)
				st.n++
				if b.Term != TermFall && b.Term != TermJump {
					st.end = id
					st.next = NoBlock
					break
				}
				succ := b.Fall
				if b.Term == TermJump {
					succ = b.Taken
				}
				if st.n == maxFuse {
					st.end = NoBlock
					st.next = succ
					break
				}
				id = succ
			}
			sup[i] = st
		}
		p.super = sup
	})
	return p.super
}

// BlockAt resolves a text address to the block starting there.
func (p *Program) BlockAt(addr uint64) (BlockID, bool) {
	p.addrOnce.Do(func() {
		p.addrIndex = make(map[uint64]BlockID, len(p.Blocks))
		for i := range p.Blocks {
			p.addrIndex[p.Blocks[i].Addr] = BlockID(i)
		}
	})
	id, ok := p.addrIndex[addr]
	return id, ok
}

// FuncOf returns the function containing block id.
func (p *Program) FuncOf(id BlockID) *Func {
	return &p.Funcs[p.Blocks[id].Func]
}

// EntryFuncOf reports whether block id is some function's entry block,
// and if so which function. Trace consumers use it to build function
// occurrence histograms from branch targets.
func (p *Program) EntryFuncOf(id BlockID) (int32, bool) {
	p.entryOnce.Do(func() {
		p.entryIndex = make(map[BlockID]int32, len(p.Funcs))
		for i := range p.Funcs {
			p.entryIndex[p.Funcs[i].Entry] = int32(i)
		}
	})
	fn, ok := p.entryIndex[id]
	return fn, ok
}

// Validate checks structural invariants of the program: every successor is
// a valid block, probabilities are in range, indirect terminators have
// targets, and every function entry is valid. Experiments call this after
// synthesis; it is also the target of property-based tests.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("binary %q: no blocks", p.Name)
	}
	if p.Entry < 0 || int(p.Entry) >= len(p.Blocks) {
		return fmt.Errorf("binary %q: entry %d out of range", p.Name, p.Entry)
	}
	validID := func(id BlockID) bool { return id >= 0 && int(id) < len(p.Blocks) }
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Func < 0 || int(b.Func) >= len(p.Funcs) {
			return fmt.Errorf("binary %q: block %d has bad func %d", p.Name, i, b.Func)
		}
		switch b.Term {
		case TermCond:
			if !validID(b.Taken) || !validID(b.Fall) {
				return fmt.Errorf("binary %q: cond block %d has invalid successors", p.Name, i)
			}
			if b.TakenProb < 0 || b.TakenProb > 1 {
				return fmt.Errorf("binary %q: cond block %d prob %v", p.Name, i, b.TakenProb)
			}
		case TermJump:
			if !validID(b.Taken) {
				return fmt.Errorf("binary %q: jump block %d has invalid target", p.Name, i)
			}
		case TermIndirectJump, TermIndirectCall:
			if len(b.Targets) == 0 || len(b.Targets) != len(b.TargetW) {
				return fmt.Errorf("binary %q: indirect block %d has %d targets, %d weights",
					p.Name, i, len(b.Targets), len(b.TargetW))
			}
			for _, t := range b.Targets {
				if !validID(t) {
					return fmt.Errorf("binary %q: indirect block %d target invalid", p.Name, i)
				}
			}
			if b.Term == TermIndirectCall && !validID(b.Fall) {
				return fmt.Errorf("binary %q: indirect call block %d has no return site", p.Name, i)
			}
		case TermCall:
			if !validID(b.Taken) || !validID(b.Fall) {
				return fmt.Errorf("binary %q: call block %d has invalid successors", p.Name, i)
			}
		case TermReturn:
			// no successors
		case TermFall, TermSyscall:
			if !validID(b.Fall) {
				return fmt.Errorf("binary %q: block %d (%v) has invalid fall", p.Name, i, b.Term)
			}
		default:
			return fmt.Errorf("binary %q: block %d has unknown terminator %d", p.Name, i, b.Term)
		}
		if b.Cycles <= 0 {
			return fmt.Errorf("binary %q: block %d has non-positive cycles", p.Name, i)
		}
	}
	for i, f := range p.Funcs {
		if !validID(f.Entry) {
			return fmt.Errorf("binary %q: func %d (%s) entry invalid", p.Name, i, f.Name)
		}
	}
	return nil
}

// Stats summarizes static program properties used for calibration and
// for RCO's complexity scoring.
type Stats struct {
	Blocks, Funcs     int
	CondBlocks        int
	IndirectBlocks    int
	SyscallBlocks     int
	AvgBlockCycles    float64
	BranchPerKCycle   float64 // expected PT-visible events per 1000 cycles
	SyscallPerKCycle  float64
	TextBytes         uint64
	CategoryBlockFrac map[FuncCategory]float64
}

// ComputeStats derives static statistics for the program.
func (p *Program) ComputeStats() Stats {
	s := Stats{
		Blocks:            len(p.Blocks),
		Funcs:             len(p.Funcs),
		TextBytes:         p.TextSize,
		CategoryBlockFrac: make(map[FuncCategory]float64),
	}
	var cycles int64
	var ptEvents, syscalls int64
	catBlocks := make(map[FuncCategory]int)
	for i := range p.Blocks {
		b := &p.Blocks[i]
		cycles += int64(b.Cycles)
		switch b.Term {
		case TermCond:
			s.CondBlocks++
			ptEvents++
		case TermIndirectJump, TermIndirectCall:
			s.IndirectBlocks++
			ptEvents++
		case TermReturn:
			ptEvents++
		case TermSyscall:
			s.SyscallBlocks++
			syscalls++
		}
		catBlocks[p.Funcs[b.Func].Category]++
	}
	if len(p.Blocks) > 0 {
		s.AvgBlockCycles = float64(cycles) / float64(len(p.Blocks))
	}
	if cycles > 0 {
		s.BranchPerKCycle = float64(ptEvents) / float64(cycles) * 1000
		s.SyscallPerKCycle = float64(syscalls) / float64(cycles) * 1000
	}
	for c, n := range catBlocks {
		s.CategoryBlockFrac[c] = float64(n) / float64(len(p.Blocks))
	}
	return s
}

// endAddr returns the address of the block's terminating instruction,
// which is the "from" address of the branch it produces.
func (p *Program) endAddr(id BlockID) uint64 {
	b := &p.Blocks[id]
	if b.Insns <= 1 {
		return b.Addr
	}
	return b.Addr + uint64(b.Insns-1)*4
}

// BranchEvent is one control-transfer event in an execution: exactly the
// granularity Intel PT observes.
type BranchEvent struct {
	// Block is the block whose terminator produced the event.
	Block BlockID
	// Target is the destination block.
	Target BlockID
	// From is the address of the transferring instruction.
	From uint64
	// To is the destination address.
	To uint64
	// Kind is the terminator kind that produced the event.
	Kind TermKind
	// Taken reports the direction of a TermCond event.
	Taken bool
}

// IsIndirect reports whether the event requires a TIP packet (target not
// statically known).
func (e BranchEvent) IsIndirect() bool {
	switch e.Kind {
	case TermIndirectJump, TermIndirectCall, TermReturn:
		return true
	}
	return false
}

// StopReason says why a Walker run segment ended.
type StopReason uint8

const (
	// StopBudget: the cycle budget was exhausted mid-execution.
	StopBudget StopReason = iota
	// StopSyscall: the program reached a syscall instruction.
	StopSyscall
)

// Counters accumulates dynamic execution statistics in a Walker.
type Counters struct {
	// Cycles and Insns are totals over all executed blocks.
	Cycles int64
	Insns  int64
	// Branches counts PT-visible control transfers.
	Branches int64
	// CondBranches counts TNT-bit events within Branches.
	CondBranches int64
	// IndirectBranches counts TIP events within Branches.
	IndirectBranches int64
	// Syscalls counts syscall instructions executed.
	Syscalls int64
	// FuncEntries counts entries per function index (function occurrence
	// histogram, the input to Wall's weight-matching accuracy metric).
	FuncEntries map[int32]int64
	// MemOps accumulates the Figure 22 access counts.
	MemOps [NumMemClasses][4]int64
	// CatHits counts executed blocks per function category.
	CatHits [NumCategories]int64
}

// BranchSink receives batches of branch events in execution order. The
// slice is a view into the walker's internal batch buffer: it is only
// valid for the duration of the call and must not be retained.
type BranchSink interface {
	EmitBranches(evs []BranchEvent)
}

// TNTPack carries a batch's conditional-branch directions bit-packed in
// emission order: bit i is the Taken direction of the i-th TermCond event
// in the accompanying batch. Sinks that encode TNT packets can consume
// directions straight from the pack instead of re-reading each event.
type TNTPack struct {
	Bits [branchBatchSize / 64]uint64
	N    int
}

// push appends one direction bit.
func (p *TNTPack) push(taken bool) {
	if taken {
		p.Bits[p.N>>6] |= 1 << (uint(p.N) & 63)
	}
	p.N++
}

// Slice returns k direction bits starting at bit index pos, LSB first.
// k must be at most 58 so the extraction never spans more than two words
// partially; callers consume TNT packets (6 bits) at a time.
func (p *TNTPack) Slice(pos, k int) uint64 {
	w := pos >> 6
	off := uint(pos) & 63
	v := p.Bits[w] >> off
	if int(off)+k > 64 {
		v |= p.Bits[w+1] << (64 - off)
	}
	return v & (1<<uint(k) - 1)
}

// PackedBranchSink is a BranchSink that can additionally accept the
// batch's pre-packed TNT directions. Walkers hand batches to this
// interface when the sink implements it, letting the TNT encoding path
// skip per-event direction staging.
type PackedBranchSink interface {
	BranchSink
	EmitBranchesPacked(evs []BranchEvent, tnt *TNTPack)
}

// funcSink adapts a per-event callback to the batch interface for the
// legacy Walker.Run signature.
type funcSink func(BranchEvent)

func (f funcSink) EmitBranches(evs []BranchEvent) {
	for i := range evs {
		f(evs[i])
	}
}

// branchBatchSize is the walker's emission batch: big enough to amortize
// the per-batch sink dispatch and the tracer's per-batch setup over many
// events, small enough (4 KiB of events) to stay cache-resident.
const branchBatchSize = 128

// Walker executes a Program deterministically from a seed. It is the
// ground-truth execution engine: every control transfer it performs is
// reported to the caller's sink exactly once, in order.
type Walker struct {
	prog  *Program
	rng   *xrand.Rand
	cur   BlockID
	stack []BlockID
	// Count holds the running dynamic statistics. Cycles, Insns and the
	// event counters (Branches, Syscalls, ...) are live after every
	// Run/RunBatch; the per-block aggregates (MemOps, CatHits,
	// FuncEntries) are deferred across runs and folded in by Settle.
	Count Counters

	// batch is the pending emission buffer; events accumulate here and are
	// handed to the sink branchBatchSize at a time. tnt mirrors the
	// batch's conditional directions bit-packed; packed is the sink's
	// PackedBranchSink side when it has one (resolved once per RunBatch).
	batch    [branchBatchSize]BranchEvent
	batchLen int
	tnt      TNTPack
	packed   PackedBranchSink
	// visits/touched and funcVisits/funcTouched defer the per-block and
	// per-function-entry charging of one run: the hot loop records one
	// counter increment per block, and settleCounters multiplies out the
	// per-block costs once per distinct block instead of once per visit.
	// chainVisits/chainTouched do the same per fused chain (superStep):
	// the fast path records one increment per chain execution, and settle
	// re-walks each distinct chain once to charge its member blocks.
	visits       []int64
	touched      []BlockID
	funcVisits   []int64
	funcTouched  []int32
	chainVisits  []int64
	chainTouched []BlockID
}

// maxCallDepth bounds the simulated call stack; deeper direct recursion
// degrades to tail calls, as real stack-limited programs effectively do.
const maxCallDepth = 128

// NewWalker returns a walker positioned at the program entry.
func NewWalker(p *Program, rng *xrand.Rand) *Walker {
	return &Walker{
		prog: p,
		rng:  rng,
		cur:  p.Entry,
	}
}

// Current returns the block the walker will execute next.
func (w *Walker) Current() BlockID { return w.cur }

// CurrentAddr returns the address of the next block to execute.
func (w *Walker) CurrentAddr() uint64 { return w.prog.Blocks[w.cur].Addr }

// Run executes blocks until the cycle budget is consumed or a syscall
// instruction is reached, whichever comes first. Each control transfer is
// passed to emit (which may be nil for counting-only runs). It returns the
// cycles actually consumed, the stop reason, and — for StopSyscall — the
// syscall class of the trapping block.
//
// The cycle accounting is inclusive: the block containing the syscall is
// fully executed (and charged) before the walker stops.
//
// Run is the per-event compatibility wrapper over RunBatch; emit receives
// the same events in the same order, delivered batch by batch.
func (w *Walker) Run(budget int64, emit func(BranchEvent)) (used int64, reason StopReason, syscallClass uint8) {
	if emit == nil {
		return w.RunBatch(budget, nil)
	}
	return w.RunBatch(budget, funcSink(emit))
}

// RunBatch is the batched fast path of Run: control-transfer events
// accumulate in a fixed-size internal batch and are handed to sink
// branchBatchSize at a time (and once more at segment end), so the hot
// loop pays one dynamic dispatch per batch instead of one closure call
// per event. sink may be nil for counting-only runs. Cycles, Insns and
// the event counters are live when RunBatch returns; the per-block
// aggregates stay deferred until Settle.
func (w *Walker) RunBatch(budget int64, sink BranchSink) (used int64, reason StopReason, syscallClass uint8) {
	p := w.prog
	if w.visits == nil {
		w.visits = make([]int64, len(p.Blocks))
		w.funcVisits = make([]int64, len(p.Funcs))
		w.chainVisits = make([]int64, len(p.Blocks))
	}
	sup := p.superSteps()
	if sink != nil {
		w.packed, _ = sink.(PackedBranchSink)
	} else {
		w.packed = nil
	}
	blocks := p.Blocks
	var insns int64
	for used < budget {
		id := w.cur
		st := &sup[id]
		if used+st.cycles-st.last < budget {
			// Fast path: the budget check for the chain's final block
			// passes, so the whole fused chain executes (the final block
			// may overshoot the budget, exactly as a single block may).
			used += st.cycles
			insns += st.insns
			if w.chainVisits[id] == 0 {
				w.chainTouched = append(w.chainTouched, id)
			}
			w.chainVisits[id]++
			if st.end == NoBlock {
				w.cur = st.next
				continue
			}
			id = st.end
		} else {
			// The budget runs out inside this chain: execute a single
			// block the pre-fusion way so the stop point stays exact.
			b := &blocks[id]
			used += int64(b.Cycles)
			insns += int64(b.Insns)
			if w.visits[id] == 0 {
				w.touched = append(w.touched, id)
			}
			w.visits[id]++
			switch b.Term {
			case TermFall:
				w.cur = b.Fall
				continue
			case TermJump:
				w.cur = b.Taken
				continue
			}
		}
		b := &blocks[id]

		var next BlockID
		switch b.Term {
		case TermCond:
			taken := w.rng.Bool(float64(b.TakenProb))
			w.Count.Branches++
			w.Count.CondBranches++
			if taken {
				next = b.Taken
			} else {
				next = b.Fall
			}
			if sink != nil {
				w.pushEvent(sink, BranchEvent{
					Block: id, Target: next,
					From: p.endAddr(id), To: blocks[next].Addr,
					Kind: TermCond, Taken: taken,
				})
			}
		case TermIndirectJump:
			next = w.pickTarget(b)
			w.Count.Branches++
			w.Count.IndirectBranches++
			if sink != nil {
				w.pushEvent(sink, BranchEvent{
					Block: id, Target: next,
					From: p.endAddr(id), To: blocks[next].Addr,
					Kind: TermIndirectJump,
				})
			}
		case TermCall:
			next = b.Taken
			if len(w.stack) < maxCallDepth {
				w.stack = append(w.stack, b.Fall)
			}
			w.noteEntry(next)
		case TermIndirectCall:
			next = w.pickTarget(b)
			w.Count.Branches++
			w.Count.IndirectBranches++
			if len(w.stack) < maxCallDepth {
				w.stack = append(w.stack, b.Fall)
			}
			w.noteEntry(next)
			if sink != nil {
				w.pushEvent(sink, BranchEvent{
					Block: id, Target: next,
					From: p.endAddr(id), To: blocks[next].Addr,
					Kind: TermIndirectCall,
				})
			}
		case TermReturn:
			if n := len(w.stack); n > 0 {
				next = w.stack[n-1]
				w.stack = w.stack[:n-1]
			} else {
				// Returning past main: restart the outer loop, as a
				// long-running service's event loop does.
				next = p.Entry
			}
			w.Count.Branches++
			w.Count.IndirectBranches++
			if sink != nil {
				w.pushEvent(sink, BranchEvent{
					Block: id, Target: next,
					From: p.endAddr(id), To: blocks[next].Addr,
					Kind: TermReturn,
				})
			}
		case TermSyscall:
			w.Count.Syscalls++
			w.cur = b.Fall
			w.Count.Cycles += used
			w.Count.Insns += insns
			w.finishRun(sink)
			return used, StopSyscall, b.SyscallClass
		default:
			panic(fmt.Sprintf("binary: bad terminator %d in %q", b.Term, p.Name))
		}
		w.cur = next
	}
	w.Count.Cycles += used
	w.Count.Insns += insns
	w.finishRun(sink)
	return used, StopBudget, 0
}

// pushEvent appends one event to the pending batch, flushing to the sink
// when the batch fills. Conditional directions are mirrored into the
// batch's TNT pack so packed sinks can consume them without re-reading
// the events.
func (w *Walker) pushEvent(sink BranchSink, ev BranchEvent) {
	if ev.Kind == TermCond {
		w.tnt.push(ev.Taken)
	}
	w.batch[w.batchLen] = ev
	w.batchLen++
	if w.batchLen == branchBatchSize {
		w.flushBatch(sink)
	}
}

// flushBatch hands the pending batch to the sink, via the packed
// interface when the sink supports it, and resets the batch and pack.
func (w *Walker) flushBatch(sink BranchSink) {
	if w.packed != nil {
		w.packed.EmitBranchesPacked(w.batch[:w.batchLen], &w.tnt)
	} else {
		sink.EmitBranches(w.batch[:w.batchLen])
	}
	w.batchLen = 0
	w.tnt = TNTPack{}
}

// finishRun flushes the pending event batch; every RunBatch exit path
// goes through it. Deferred aggregates are left pending — short segments
// re-touch the same working set, so settling per simulation (Settle)
// rather than per segment charges each distinct block once, not once per
// timeslice.
func (w *Walker) finishRun(sink BranchSink) {
	if w.batchLen > 0 {
		w.flushBatch(sink)
	}
}

// Settle folds the deferred per-block visit counts into the aggregate
// counters (MemOps, CatHits, FuncEntries). Call it before reading those
// fields. Integer sums are associative, so the totals are bit-identical
// to per-visit charging no matter how many runs a settle spans.
func (w *Walker) Settle() { w.settleCounters() }

// settleCounters multiplies the accumulated per-block visit counts into
// the cumulative counters and resets the pending sets.
func (w *Walker) settleCounters() {
	p := w.prog
	for _, id := range w.touched {
		n := w.visits[id]
		w.visits[id] = 0
		w.chargeBlock(&p.Blocks[id], n)
	}
	w.touched = w.touched[:0]
	if len(w.chainTouched) > 0 {
		sup := p.superSteps()
		for _, id := range w.chainTouched {
			n := w.chainVisits[id]
			w.chainVisits[id] = 0
			st := &sup[id]
			cur := id
			for k := int32(0); ; k++ {
				b := &p.Blocks[cur]
				w.chargeBlock(b, n)
				if k+1 == st.n {
					break
				}
				if b.Term == TermJump {
					cur = b.Taken
				} else {
					cur = b.Fall
				}
			}
		}
		w.chainTouched = w.chainTouched[:0]
	}
	if len(w.funcTouched) > 0 {
		if w.Count.FuncEntries == nil {
			w.Count.FuncEntries = make(map[int32]int64)
		}
		for _, fn := range w.funcTouched {
			w.Count.FuncEntries[fn] += w.funcVisits[fn]
			w.funcVisits[fn] = 0
		}
		w.funcTouched = w.funcTouched[:0]
	}
}

// chargeBlock folds n visits of one block into the aggregate counters.
func (w *Walker) chargeBlock(b *Block, n int64) {
	w.Count.CatHits[w.prog.Funcs[b.Func].Category] += n
	for cls := 0; cls < NumMemClasses; cls++ {
		for wd := 0; wd < 4; wd++ {
			if v := b.MemOps[cls][wd]; v != 0 {
				w.Count.MemOps[cls][wd] += n * int64(v)
			}
		}
	}
}

// noteEntry records a function entry in the occurrence histogram
// (deferred; settleCounters folds it into Count.FuncEntries).
func (w *Walker) noteEntry(target BlockID) {
	fn := w.prog.Blocks[target].Func
	if w.funcVisits[fn] == 0 {
		w.funcTouched = append(w.funcTouched, fn)
	}
	w.funcVisits[fn]++
}

// pickTarget selects an indirect terminator's destination.
func (w *Walker) pickTarget(b *Block) BlockID {
	if len(b.Targets) == 1 {
		return b.Targets[0]
	}
	var total float64
	for _, f := range b.TargetW {
		total += float64(f)
	}
	x := w.rng.Float64() * total
	for i, f := range b.TargetW {
		x -= float64(f)
		if x < 0 {
			return b.Targets[i]
		}
	}
	return b.Targets[len(b.Targets)-1]
}
