package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"exist/internal/binary"
	"exist/internal/trace"
)

func ev(block, target int, taken bool) trace.Event {
	return trace.Event{Block: binary.BlockID(block), Target: binary.BlockID(target),
		Kind: binary.TermCond, Taken: taken}
}

func TestPathAccuracyPerfect(t *testing.T) {
	gt := map[int32][]trace.Event{1: {ev(1, 2, true), ev(2, 3, false), ev(3, 1, true)}}
	dec := map[int32][]trace.Event{1: {ev(1, 2, true), ev(2, 3, false), ev(3, 1, true)}}
	s := PathAccuracy(gt, dec)
	if s.Accuracy != 1 || s.Spurious != 0 || s.Matched != 3 {
		t.Fatalf("perfect match scored %+v", s)
	}
}

func TestPathAccuracyWithGaps(t *testing.T) {
	gt := map[int32][]trace.Event{1: {ev(1, 2, true), ev(2, 3, false), ev(3, 1, true), ev(1, 4, false)}}
	dec := map[int32][]trace.Event{1: {ev(1, 2, true), ev(1, 4, false)}} // middle lost
	s := PathAccuracy(gt, dec)
	if s.Matched != 2 || s.Spurious != 0 {
		t.Fatalf("gap match scored %+v", s)
	}
	if s.Accuracy != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", s.Accuracy)
	}
}

func TestPathAccuracySpurious(t *testing.T) {
	gt := map[int32][]trace.Event{1: {ev(1, 2, true)}}
	dec := map[int32][]trace.Event{1: {ev(9, 9, true), ev(1, 2, true)}, 2: {ev(5, 5, false)}}
	s := PathAccuracy(gt, dec)
	if s.Matched != 1 {
		t.Fatalf("matched = %d", s.Matched)
	}
	if s.Spurious != 2 {
		t.Fatalf("spurious = %d, want 2 (one bad event + one unknown thread)", s.Spurious)
	}
}

func TestPathAccuracyEmptyTruth(t *testing.T) {
	s := PathAccuracy(map[int32][]trace.Event{}, map[int32][]trace.Event{})
	if s.Accuracy != 0 || s.Truth != 0 {
		t.Fatalf("empty comparison scored %+v", s)
	}
}

func TestWeightMatchIdentity(t *testing.T) {
	h := map[int32]int64{1: 10, 2: 30, 5: 60}
	if acc := WeightMatch(h, h); acc != 1 {
		t.Fatalf("identity weight match = %v", acc)
	}
	// Scaling one histogram must not matter.
	h2 := map[int32]int64{1: 100, 2: 300, 5: 600}
	if acc := WeightMatch(h, h2); math.Abs(acc-1) > 1e-12 {
		t.Fatalf("scaled weight match = %v", acc)
	}
}

func TestWeightMatchDisjoint(t *testing.T) {
	a := map[int32]int64{1: 10}
	b := map[int32]int64{2: 10}
	if acc := WeightMatch(a, b); acc != 0 {
		t.Fatalf("disjoint weight match = %v, want 0 (the paper's all-missed worst case)", acc)
	}
}

func TestWeightMatchPartial(t *testing.T) {
	a := map[int32]int64{1: 50, 2: 50}
	b := map[int32]int64{1: 50}
	// err = |0.5-1| + |0.5-0| = 1; acc = (2-1)/2 = 0.5
	if acc := WeightMatch(a, b); math.Abs(acc-0.5) > 1e-12 {
		t.Fatalf("partial weight match = %v, want 0.5", acc)
	}
}

func TestWeightMatchEmpty(t *testing.T) {
	if acc := WeightMatch(nil, nil); acc != 1 {
		t.Fatalf("both-empty = %v, want 1", acc)
	}
	if acc := WeightMatch(map[int32]int64{1: 1}, nil); acc != 0 {
		t.Fatalf("one-empty = %v, want 0", acc)
	}
}

// Property: weight match is symmetric and within [0,1].
func TestWeightMatchProperties(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := map[int32]int64{}
		b := map[int32]int64{}
		for i, v := range av {
			a[int32(i%7)] += int64(v)
		}
		for i, v := range bv {
			b[int32(i%7)] += int64(v)
		}
		x, y := WeightMatch(a, b), WeightMatch(b, a)
		return math.Abs(x-y) < 1e-9 && x >= 0 && x <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {50, 3}, {100, 5}, {99, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	var samples []float64
	for i := 1; i <= 1000; i++ {
		samples = append(samples, float64(i))
	}
	s := Summarize(samples)
	if s.N != 1000 || s.P50 != 500 || s.P99 != 990 || s.P999 != 999 || s.Max != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestCDF(t *testing.T) {
	samples := []float64{1, 2, 3, 4}
	pts := CDF(samples, []float64{0.5, 2, 10})
	want := []float64{0, 0.5, 1}
	for i, p := range pts {
		if p.F != want[i] {
			t.Fatalf("CDF point %d = %v, want %v", i, p.F, want[i])
		}
	}
}

func TestOverheadAndSlowdown(t *testing.T) {
	if got := OverheadPct(100, 103); math.Abs(got-3) > 1e-12 {
		t.Fatalf("OverheadPct = %v", got)
	}
	if got := SlowdownFactor(100, 150); got != 1.5 {
		t.Fatalf("SlowdownFactor = %v", got)
	}
	if OverheadPct(0, 5) != 0 || SlowdownFactor(0, 5) != 0 {
		t.Fatal("zero base must not divide")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean edge cases")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestUptime(t *testing.T) {
	// Continuous renewal: lease granted at 0 for 2, renewed at 1 for 2
	// more, run ends at 3 — fully covered, no gaps.
	var u Uptime
	u.Extend(0, 2)
	u.Extend(1, 3)
	if f := u.Fraction(3); f != 1 {
		t.Fatalf("continuous coverage = %v, want 1", f)
	}
	if u.Gaps() != 0 {
		t.Fatalf("gaps = %d", u.Gaps())
	}

	// Lapse: covered [0,2), hole [2,5), re-acquired [5,8), end 10.
	var v Uptime
	v.Extend(0, 2)
	v.Extend(5, 8)
	if f := v.Fraction(10); f != 0.5 {
		t.Fatalf("lapsed coverage = %v, want 0.5", f)
	}
	if v.Gaps() != 2 {
		// One lapse at 2, a second when coverage runs out at 8.
		t.Fatalf("gaps = %d, want 2", v.Gaps())
	}

	// Late first acquisition: hole [0,4) is uncovered but not a lapse.
	var w Uptime
	w.Extend(4, 10)
	if f := w.Fraction(10); f != 0.6 {
		t.Fatalf("late coverage = %v, want 0.6", f)
	}
	if w.Gaps() != 0 {
		t.Fatalf("gaps = %d, want 0", w.Gaps())
	}

	var z Uptime
	if f := z.Fraction(0); f != 0 {
		t.Fatalf("empty fraction = %v", f)
	}
}
