// Package metrics provides the statistics used across experiments:
// percentile summaries, CDFs, slowdown arithmetic, and the two accuracy
// scores the paper uses — exact path matching against ground truth for
// benchmarks (§5.3 "degree of matching"), and Wall's weight matching over
// function occurrence histograms for long-running applications.
package metrics

import (
	"math"
	"sort"

	"exist/internal/trace"
)

// PathScore is the result of an exact path comparison.
type PathScore struct {
	// Truth is the number of ground-truth events.
	Truth int64
	// Decoded is the number of reconstructed events.
	Decoded int64
	// Matched is the number of reconstructed events that appear in the
	// ground truth in order.
	Matched int64
	// Spurious is Decoded - Matched: events the decoder invented. A
	// correct decoder yields zero; losses only shrink Matched.
	Spurious int64
	// Accuracy is Matched / Truth.
	Accuracy float64
}

// PathAccuracy scores a reconstruction against ground truth, per thread.
// The reconstruction of a lossy session is an ordered subsequence of the
// truth (whole segments go missing when a core was untraced or its buffer
// stopped); the score is the fraction of true events recovered.
func PathAccuracy(gt, dec map[int32][]trace.Event) PathScore {
	var s PathScore
	for tid, truth := range gt {
		s.Truth += int64(len(truth))
		decoded := dec[tid]
		s.Decoded += int64(len(decoded))
		i := 0
		for _, ev := range decoded {
			// Scan forward for the next occurrence of ev, but only
			// consume truth when it is found — a spurious decoded event
			// must not eat the remaining truth.
			j := i
			for j < len(truth) && !sameEvent(truth[j], ev) {
				j++
			}
			if j < len(truth) {
				s.Matched++
				i = j + 1
			}
		}
	}
	for tid, decoded := range dec {
		if _, ok := gt[tid]; !ok {
			s.Decoded += int64(len(decoded))
		}
	}
	s.Spurious = s.Decoded - s.Matched
	if s.Truth > 0 {
		s.Accuracy = float64(s.Matched) / float64(s.Truth)
	}
	return s
}

// sameEvent compares events ignoring the TID (already matched by map key).
func sameEvent(a, b trace.Event) bool {
	return a.Block == b.Block && a.Target == b.Target && a.Kind == b.Kind && a.Taken == b.Taken
}

// WeightMatch computes Wall's weight-matching accuracy between two
// function-occurrence histograms: each histogram is normalized to sum 1,
// the error is the L1 distance (maximum 2 when supports are disjoint), and
// the accuracy is (maxerror - error) / maxerror.
func WeightMatch(ref, got map[int32]int64) float64 {
	var refTotal, gotTotal float64
	for _, n := range ref {
		refTotal += float64(n)
	}
	for _, n := range got {
		gotTotal += float64(n)
	}
	if refTotal == 0 && gotTotal == 0 {
		return 1
	}
	if refTotal == 0 || gotTotal == 0 {
		return 0
	}
	// Accumulate the L1 error in sorted key order: float addition is not
	// associative, and map iteration order would otherwise make the last
	// ulp of the score vary from run to run.
	var err float64
	for _, fn := range sortedKeys(ref) {
		a := float64(ref[fn]) / refTotal
		b := float64(got[fn]) / gotTotal
		err += math.Abs(a - b)
	}
	for _, fn := range sortedKeys(got) {
		if _, ok := ref[fn]; !ok {
			err += float64(got[fn]) / gotTotal
		}
	}
	return (2 - err) / 2
}

// sortedKeys returns a histogram's keys in ascending order.
func sortedKeys(m map[int32]int64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Percentile returns the p-th percentile (0-100) of samples using
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	// The epsilon keeps exact ranks (e.g. 99.9% of 1000) from rounding up
	// through float error.
	rank := int(math.Ceil(p/100*float64(len(s)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Summary is a standard latency/period summary.
type Summary struct {
	N                        int
	Mean                     float64
	P50, P75, P90, P99, P999 float64
	Max                      float64
}

// Summarize computes a Summary in one sort.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Mean: Mean(s),
		P50:  percentileSorted(s, 50),
		P75:  percentileSorted(s, 75),
		P90:  percentileSorted(s, 90),
		P99:  percentileSorted(s, 99),
		P999: percentileSorted(s, 99.9),
		Max:  s[len(s)-1],
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF evaluates the empirical CDF of samples at the given xs (which need
// not be sorted).
func CDF(samples []float64, xs []float64) []CDFPoint {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		i := sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))
		f := 0.0
		if len(s) > 0 {
			f = float64(i) / float64(len(s))
		}
		out = append(out, CDFPoint{X: x, F: f})
	}
	return out
}

// OverheadPct converts a base/with pair into a percentage slowdown:
// (with - base) / base * 100. It returns 0 when base is 0.
func OverheadPct(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return (with - base) / base * 100
}

// SlowdownFactor is with/base normalized slowdown (>= 1 when with is
// worse). It returns 0 when base is 0.
func SlowdownFactor(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return with / base
}

// Uptime accumulates the total time a renewable claim was live — e.g.
// the fraction of a run during which some controller held a valid
// leader lease. Each Extend(now, until) call asserts the claim is live
// from now until `until`; a later Extend may renew (overlap) or leave a
// gap, and only covered time counts. All times are in the caller's unit
// (the control plane passes virtual seconds).
type Uptime struct {
	covered    float64
	validUntil float64
	last       float64
	gaps       int
}

// Extend marks the claim live on [now, until). Calls must have
// non-decreasing now; until below now is ignored.
func (u *Uptime) Extend(now, until float64) {
	u.advance(now)
	if until > u.validUntil {
		u.validUntil = until
	}
}

// advance accrues covered time up to now. A lapse is counted as one gap
// at the moment coverage runs out, however many times advance observes
// the hole afterwards.
func (u *Uptime) advance(now float64) {
	if now < u.last {
		now = u.last
	}
	switch {
	case u.validUntil >= now:
		u.covered += now - u.last
	case u.validUntil > u.last:
		u.covered += u.validUntil - u.last
		u.gaps++
	}
	u.last = now
}

// Fraction returns covered/end after accruing up to end: the fraction
// of [0, end] during which the claim was live. It returns 0 for a
// non-positive end.
func (u *Uptime) Fraction(end float64) float64 {
	if end <= 0 {
		return 0
	}
	u.advance(end)
	return u.covered / end
}

// Gaps returns how many times the claim lapsed before being renewed
// (coverage holes observed so far).
func (u *Uptime) Gaps() int { return u.gaps }

// GeoMean returns the geometric mean of positive samples.
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range samples {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(samples)))
}
