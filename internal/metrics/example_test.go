package metrics_test

import (
	"fmt"

	"exist/internal/metrics"
)

func ExampleWeightMatch() {
	// Two function-occurrence histograms: the exhaustive reference and a
	// sampled window that saw the same two hot functions but missed a
	// cold one.
	reference := map[int32]int64{1: 50, 2: 40, 3: 10}
	sampled := map[int32]int64{1: 55, 2: 45}
	fmt.Printf("%.2f\n", metrics.WeightMatch(reference, sampled))
	// Output: 0.90
}

func ExamplePercentile() {
	lat := []float64{12, 15, 11, 90, 13, 14, 12, 16, 13, 12}
	fmt.Printf("p50=%v p90=%v\n", metrics.Percentile(lat, 50), metrics.Percentile(lat, 90))
	// Output: p50=13 p90=16
}

func ExampleOverheadPct() {
	oracle, traced := 2.9e9, 2.871e9 // cycles retired with and without tracing
	fmt.Printf("%.1f%%\n", metrics.OverheadPct(traced, oracle))
	// Output: 1.0%
}
