package workload

// Golden round-trip test for the spec-compiled built-in fleets: every
// Table 1 and case-study profile, re-expressed in the embedded spec DSL
// documents, must compile deep-equal to the pre-refactor hard-coded
// value. The frozen* constructors below are verbatim copies of the Go
// literals the accessors used to be built from; they exist only here, as
// the fixed point the DSL is checked against.

import (
	"reflect"
	"testing"

	"exist/internal/binary"
	"exist/internal/kernel"
	"exist/internal/sched"
)

func frozenSPEC() []Profile {
	base := func(name, desc string, density float64, ipc float64) Profile {
		return Profile{
			Name: name, Desc: desc, Class: Compute,
			BranchPerKCycle: density, IndirectFrac: 0.10, IPC: ipc,
			MeanCyclesPerSyscall: 120_000_000,
			SyscallClassWeights:  frozenWeights(kernel.SysRead, kernel.SysWrite),
			Threads:              1, Mode: sched.CPUSet, CoresWanted: 1,
			BranchMissPerKInsn: 4, L1MissPerKInsn: 18, LLCMissPerKInsn: 0.9,
			Priority: 3, Funcs: 56, AvgBlockCycles: 22,
			MemClassMix: [binary.NumMemClasses]float64{0.55, 0.2, 0.25},
			MemWidthMix: [4]float64{0.2, 0.12, 0.38, 0.3},
		}
	}
	pb := base("pb", "Perl interpreter", 42, 1.6)
	pb.BranchMissPerKInsn = 6
	gcc := base("gcc", "GNU C compiler", 64, 1.2)
	gcc.BranchMissPerKInsn = 7
	mcf := base("mcf", "Route planning", 46, 0.6)
	mcf.LLCMissPerKInsn = 6
	om := base("om", "Discrete Event simulation", 52, 0.8)
	om.LLCMissPerKInsn = 4
	xa := base("xa", "XML to HTML conversion", 56, 1.4)
	x264 := base("x264", "Video compression", 24, 2.0)
	de := base("de", "Alpha-beta tree search", 36, 1.5)
	le := base("le", "Monte Carlo tree search", 30, 1.3)
	ex := base("ex", "Recursive solution generator", 20, 2.2)
	xz := base("xz", "General data compression", 45, 1.1)
	xz.Threads = 4
	xz.CoresWanted = 4
	xz.MeanCyclesPerSyscall = 40_000_000
	return []Profile{pb, gcc, mcf, om, xa, x264, de, le, ex, xz}
}

func frozenOnline() []Profile {
	mc := Profile{
		Name: "mc", Desc: "In-memory cache (Memcached + Memtier, 10 clients, 1:1 set/get)",
		Class:           Online,
		BranchPerKCycle: 44, IndirectFrac: 0.10, IPC: 1.0,
		MeanCyclesPerSyscall: 75_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 4, kernel.SysNetSend, 4, kernel.SysPoll, 1, kernel.SysFutex, 1),
		Threads:              4, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 8, L1MissPerKInsn: 30, LLCMissPerKInsn: 5,
		Priority: 6, Funcs: 48, AvgBlockCycles: 23,
		CategoryMix: frozenMix(binary.CatMemAlloc, 2, binary.CatMemCmp, 2, binary.CatSyncAtomic, 1, binary.CatKernelNet, 3),
		MemClassMix: [binary.NumMemClasses]float64{0.5, 0.25, 0.25},
		MemWidthMix: [4]float64{0.3, 0.15, 0.3, 0.25},
	}
	ng := mc
	ng.Name, ng.Desc = "ng", "Web server (Nginx + ab, 10 clients, 20K requests, 20B files)"
	ng.BranchPerKCycle, ng.MeanCyclesPerSyscall = 40, 60_000
	ng.Threads = 4
	ng.CategoryMix = frozenMix(binary.CatKernelNet, 4, binary.CatMemCopy, 2, binary.CatSyncSpinlock, 1)
	ms := mc
	ms.Name, ms.Desc = "ms", "Online database (MySQL + Sysbench, ten 1M-row tables)"
	ms.BranchPerKCycle, ms.MeanCyclesPerSyscall = 52, 110_000
	ms.Threads = 8
	ms.SyscallClassWeights = frozenWeightMap(kernel.SysRead, 3, kernel.SysWrite, 2, kernel.SysFutex, 4, kernel.SysPoll, 1)
	ms.CategoryMix = frozenMix(binary.CatSyncMutex, 3, binary.CatSyncCAS, 1, binary.CatMemAlloc, 2, binary.CatMemCmp, 2)
	ms.LLCMissPerKInsn = 7
	return []Profile{mc, ng, ms}
}

func frozenCloud() []Profile {
	search1 := Profile{
		Name: "Search1", Desc: "Latency-sensitive CPU-set search engine (Havenask)",
		Class:           Cloud,
		BranchPerKCycle: 48, IndirectFrac: 0.11, IPC: 1.2,
		MeanCyclesPerSyscall: 220_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 3, kernel.SysNetSend, 2, kernel.SysFutex, 2, kernel.SysRead, 1),
		Threads:              8, Mode: sched.CPUSet, CoresWanted: 8,
		BranchMissPerKInsn: 6, L1MissPerKInsn: 24, LLCMissPerKInsn: 3,
		Priority: 9, PastIssues: 4, Funcs: 96, AvgBlockCycles: 21,
		CategoryMix: frozenMix(binary.CatMemCmp, 3, binary.CatMemAlloc, 2, binary.CatSyncAtomic, 2, binary.CatKernelNet, 2),
		MemClassMix: [binary.NumMemClasses]float64{0.6, 0.15, 0.25},
		MemWidthMix: [4]float64{0.25, 0.15, 0.35, 0.25},
	}
	search2 := search1
	search2.Name, search2.Desc = "Search2", "Latency-sensitive CPU-share search engine (Havenask)"
	search2.Mode, search2.CoresWanted = sched.CPUShare, 0
	search2.Threads = 12
	cache := Profile{
		Name: "Cache", Desc: "Best-effort memory graph caching (iGraph)",
		Class:           Cloud,
		BranchPerKCycle: 38, IndirectFrac: 0.09, IPC: 0.9,
		MeanCyclesPerSyscall: 150_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 3, kernel.SysNetSend, 3, kernel.SysRead, 1),
		Threads:              6, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 7, L1MissPerKInsn: 34, LLCMissPerKInsn: 8,
		Priority: 4, PastIssues: 2, Funcs: 72, AvgBlockCycles: 26,
		CategoryMix: frozenMix(binary.CatMemJE, 3, binary.CatMemCopy, 2, binary.CatMemCmp, 2, binary.CatKernelNet, 2),
		MemClassMix: [binary.NumMemClasses]float64{0.55, 0.25, 0.2},
		MemWidthMix: [4]float64{0.28, 0.16, 0.32, 0.24},
	}
	pred := Profile{
		Name: "Pred", Desc: "ML click-through-rate prediction (RTP engine)",
		Class:           Cloud,
		BranchPerKCycle: 30, IndirectFrac: 0.12, IPC: 1.8,
		MeanCyclesPerSyscall: 400_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 2, kernel.SysFutex, 3),
		Threads:              8, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 3, L1MissPerKInsn: 20, LLCMissPerKInsn: 4,
		Priority: 8, PastIssues: 3, Funcs: 80, AvgBlockCycles: 30,
		CategoryMix: frozenMix(binary.CatMemCopy, 3, binary.CatMemSet, 2, binary.CatSyncMutex, 2, binary.CatKernelIRQ, 2, binary.CatMemTC, 2),
		MemClassMix: [binary.NumMemClasses]float64{0.5, 0.3, 0.2},
		MemWidthMix: [4]float64{0.05, 0.05, 0.2, 0.7},
	}
	agent := Profile{
		Name: "Agent", Desc: "Node-level SLO management daemon",
		Class:           Cloud,
		BranchPerKCycle: 34, IndirectFrac: 0.10, IPC: 1.1,
		MeanCyclesPerSyscall: 90_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysRead, 3, kernel.SysWrite, 2, kernel.SysNanosleep, 2, kernel.SysPoll, 2),
		Threads:              2, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 5, L1MissPerKInsn: 22, LLCMissPerKInsn: 2,
		Priority: 5, PastIssues: 1, Funcs: 40, AvgBlockCycles: 24,
		CategoryMix: frozenMix(binary.CatKernelSche, 3, binary.CatSyncMutex, 1, binary.CatMemAlloc, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.6, 0.2, 0.2},
		MemWidthMix: [4]float64{0.3, 0.2, 0.3, 0.2},
	}
	return []Profile{search1, search2, cache, pred, agent}
}

func frozenCaseStudy() []Profile {
	apps := frozenCloud()
	search := apps[0]
	search.Name = "Search"
	cache := apps[2]
	pred := apps[3]
	pred.Name = "Prediction"

	matching := Profile{
		Name: "Matching", Desc: "AI-powered matching (BE engine)",
		Class:           Cloud,
		BranchPerKCycle: 34, IndirectFrac: 0.12, IPC: 1.6,
		MeanCyclesPerSyscall: 300_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 2, kernel.SysFutex, 2),
		Threads:              8, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 4, L1MissPerKInsn: 22, LLCMissPerKInsn: 4,
		Priority: 7, PastIssues: 2, Funcs: 88, AvgBlockCycles: 28,
		CategoryMix: frozenMix(binary.CatMemCopy, 3, binary.CatMemSet, 1, binary.CatSyncMutex, 2, binary.CatKernelIRQ, 1, binary.CatMemTC, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.45, 0.35, 0.2},
		MemWidthMix: [4]float64{0.08, 0.07, 0.2, 0.65},
	}
	recommend := Profile{
		Name: "Recommend", Desc: "AI-powered recommendation (MVAP)",
		Class:           Cloud,
		BranchPerKCycle: 32, IndirectFrac: 0.12, IPC: 1.7,
		MeanCyclesPerSyscall: 250_000,
		SyscallClassWeights:  frozenWeightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 1, kernel.SysFutex, 4, kernel.SysWrite, 1),
		Threads:             16, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 4, L1MissPerKInsn: 24, LLCMissPerKInsn: 4,
		Priority: 8, PastIssues: 5, Funcs: 100, AvgBlockCycles: 26,
		CategoryMix: frozenMix(binary.CatKernelIRQ, 4, binary.CatSyncMutex, 3, binary.CatMemCopy, 2, binary.CatMemTC, 1, binary.CatSyncAtomic, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.45, 0.3, 0.25},
		MemWidthMix: [4]float64{0.05, 0.05, 0.2, 0.7},
	}
	return []Profile{search, cache, pred, matching, recommend}
}

func frozenWeights(classes ...kernel.SyscallClass) []float64 {
	max := kernel.SyscallClass(0)
	for _, c := range classes {
		if c > max {
			max = c
		}
	}
	out := make([]float64, int(max)+1)
	for _, c := range classes {
		out[c] = 1
	}
	return out
}

func frozenWeightMap(pairs ...any) []float64 {
	var out []float64
	for i := 0; i < len(pairs); i += 2 {
		c := pairs[i].(kernel.SyscallClass)
		w := float64(pairs[i+1].(int))
		for int(c) >= len(out) {
			out = append(out, 0)
		}
		out[c] = w
	}
	return out
}

func frozenMix(pairs ...any) [binary.NumCategories]float64 {
	var out [binary.NumCategories]float64
	for i := 0; i < len(pairs); i += 2 {
		out[pairs[i].(binary.FuncCategory)] = float64(pairs[i+1].(int))
	}
	return out
}

func TestCompiledBuiltinsMatchFrozenLiterals(t *testing.T) {
	groups := []struct {
		name   string
		frozen []Profile
		got    []Profile
	}{
		{"SPEC", frozenSPEC(), SPEC()},
		{"OnlineBenchmarks", frozenOnline(), OnlineBenchmarks()},
		{"CloudApps", frozenCloud(), CloudApps()},
		{"CaseStudyApps", frozenCaseStudy(), CaseStudyApps()},
	}
	for _, g := range groups {
		if len(g.got) != len(g.frozen) {
			t.Fatalf("%s: got %d profiles, frozen has %d", g.name, len(g.got), len(g.frozen))
		}
		for i, want := range g.frozen {
			got := g.got[i]
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s[%d] (%s): compiled profile differs from frozen literal\n got: %+v\nwant: %+v",
					g.name, i, want.Name, got, want)
			}
		}
	}
}
