// Package workload defines the applications the paper evaluates (Table 1)
// as calibrated profiles over the simulated substrate: ten SPEC CPU
// 2017-like compute benchmarks, three online benchmarks (Memcached, Nginx,
// MySQL), and five Alibaba-style cloud services.
//
// A profile fixes the dynamic properties the tracing overheads depend on:
// branch density (PT volume and hardware stretch), syscall rate (eBPF
// probes, blocking behaviour, context-switch rate), thread count and CPU
// provisioning mode (UMA policy), and hardware event rates (the Figure 4
// analysis). Densities are calibrated so that EXIST's per-workload
// slowdown lands in the paper's 0.4-1.5% range and the baselines keep
// their published relative positions.
package workload

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/kernel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// Class groups workloads the way the paper's tables do.
type Class int

const (
	// Compute is a SPEC-like CPU benchmark.
	Compute Class = iota
	// Online is a request-serving benchmark (mc/ng/ms).
	Online
	// Cloud is a production-style long-running service.
	Cloud
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Compute:
		return "compute"
	case Online:
		return "online"
	case Cloud:
		return "cloud"
	default:
		return "unknown"
	}
}

// Profile describes one workload.
type Profile struct {
	// Name is the table identifier (pb, gcc, ..., mc, ng, ms, Search1...).
	Name string
	// Desc is the human description from Table 1.
	Desc string
	// Class groups the workload.
	Class Class

	// BranchPerKCycle is the PT event density; it fixes both the PT
	// hardware stretch and the trace byte rate.
	BranchPerKCycle float64
	// IndirectFrac is the fraction of PT events needing TIP packets.
	IndirectFrac float64
	// IPC is the workload's baseline instructions per cycle.
	IPC float64
	// MeanCyclesPerSyscall is the average user work between syscalls
	// (0: effectively never).
	MeanCyclesPerSyscall int64
	// SyscallClassWeights picks syscall classes (kernel package indices).
	SyscallClassWeights []float64
	// Threads is the thread count.
	Threads int
	// Mode is the CPU provisioning mode.
	Mode sched.ProvisionMode
	// CoresWanted sizes the mapped core set (0: all cores).
	CoresWanted int

	// Hardware event rates per kilo-instruction, for the Figure 4 events.
	BranchMissPerKInsn float64
	L1MissPerKInsn     float64
	LLCMissPerKInsn    float64

	// Priority and PastIssues feed RCO's temporal decider.
	Priority   int
	PastIssues int

	// Program synthesis shape.
	Funcs          int
	AvgBlockCycles int
	CategoryMix    [binary.NumCategories]float64
	MemClassMix    [binary.NumMemClasses]float64
	MemWidthMix    [4]float64
}

// SPEC returns the ten SPEC CPU 2017 Integer profiles of Table 1.
// Densities are set so EXIST's slowdown spans roughly 0.4-1.5%.
func SPEC() []Profile {
	base := func(name, desc string, density float64, ipc float64) Profile {
		return Profile{
			Name: name, Desc: desc, Class: Compute,
			BranchPerKCycle: density, IndirectFrac: 0.10, IPC: ipc,
			MeanCyclesPerSyscall: 120_000_000, // compute benchmarks rarely trap
			SyscallClassWeights:  weights(kernel.SysRead, kernel.SysWrite),
			Threads:              1, Mode: sched.CPUSet, CoresWanted: 1,
			BranchMissPerKInsn: 4, L1MissPerKInsn: 18, LLCMissPerKInsn: 0.9,
			Priority: 3, Funcs: 56, AvgBlockCycles: 22,
			MemClassMix: [binary.NumMemClasses]float64{0.55, 0.2, 0.25},
			MemWidthMix: [4]float64{0.2, 0.12, 0.38, 0.3},
		}
	}
	pb := base("pb", "Perl interpreter", 42, 1.6)
	pb.BranchMissPerKInsn = 6
	gcc := base("gcc", "GNU C compiler", 64, 1.2)
	gcc.BranchMissPerKInsn = 7
	mcf := base("mcf", "Route planning", 46, 0.6)
	mcf.LLCMissPerKInsn = 6
	om := base("om", "Discrete Event simulation", 52, 0.8)
	om.LLCMissPerKInsn = 4
	xa := base("xa", "XML to HTML conversion", 56, 1.4)
	x264 := base("x264", "Video compression", 24, 2.0)
	de := base("de", "Alpha-beta tree search", 36, 1.5)
	le := base("le", "Monte Carlo tree search", 30, 1.3)
	ex := base("ex", "Recursive solution generator", 20, 2.2)
	xz := base("xz", "General data compression", 45, 1.1)
	xz.Threads = 4
	xz.CoresWanted = 4
	xz.MeanCyclesPerSyscall = 40_000_000
	return []Profile{pb, gcc, mcf, om, xa, x264, de, le, ex, xz}
}

// OnlineBenchmarks returns the mc/ng/ms profiles. High syscall and
// context-switch rates are what make them sensitive to per-switch and
// per-syscall tracing costs.
func OnlineBenchmarks() []Profile {
	mc := Profile{
		Name: "mc", Desc: "In-memory cache (Memcached + Memtier, 10 clients, 1:1 set/get)",
		Class:           Online,
		BranchPerKCycle: 44, IndirectFrac: 0.10, IPC: 1.0,
		MeanCyclesPerSyscall: 75_000,
		SyscallClassWeights:  weightMap(kernel.SysNetRecv, 4, kernel.SysNetSend, 4, kernel.SysPoll, 1, kernel.SysFutex, 1),
		Threads:              4, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 8, L1MissPerKInsn: 30, LLCMissPerKInsn: 5,
		Priority: 6, Funcs: 48, AvgBlockCycles: 23,
		CategoryMix: mix(binary.CatMemAlloc, 2, binary.CatMemCmp, 2, binary.CatSyncAtomic, 1, binary.CatKernelNet, 3),
		MemClassMix: [binary.NumMemClasses]float64{0.5, 0.25, 0.25},
		MemWidthMix: [4]float64{0.3, 0.15, 0.3, 0.25},
	}
	ng := mc
	ng.Name, ng.Desc = "ng", "Web server (Nginx + ab, 10 clients, 20K requests, 20B files)"
	ng.BranchPerKCycle, ng.MeanCyclesPerSyscall = 40, 60_000
	ng.Threads = 4
	ng.CategoryMix = mix(binary.CatKernelNet, 4, binary.CatMemCopy, 2, binary.CatSyncSpinlock, 1)
	ms := mc
	ms.Name, ms.Desc = "ms", "Online database (MySQL + Sysbench, ten 1M-row tables)"
	ms.BranchPerKCycle, ms.MeanCyclesPerSyscall = 52, 110_000
	ms.Threads = 8
	ms.SyscallClassWeights = weightMap(kernel.SysRead, 3, kernel.SysWrite, 2, kernel.SysFutex, 4, kernel.SysPoll, 1)
	ms.CategoryMix = mix(binary.CatSyncMutex, 3, binary.CatSyncCAS, 1, binary.CatMemAlloc, 2, binary.CatMemCmp, 2)
	ms.LLCMissPerKInsn = 7
	return []Profile{mc, ng, ms}
}

// CloudApps returns the five production-style services (Table 1).
func CloudApps() []Profile {
	search1 := Profile{
		Name: "Search1", Desc: "Latency-sensitive CPU-set search engine (Havenask)",
		Class:           Cloud,
		BranchPerKCycle: 48, IndirectFrac: 0.11, IPC: 1.2,
		MeanCyclesPerSyscall: 220_000,
		SyscallClassWeights:  weightMap(kernel.SysNetRecv, 3, kernel.SysNetSend, 2, kernel.SysFutex, 2, kernel.SysRead, 1),
		Threads:              8, Mode: sched.CPUSet, CoresWanted: 8,
		BranchMissPerKInsn: 6, L1MissPerKInsn: 24, LLCMissPerKInsn: 3,
		Priority: 9, PastIssues: 4, Funcs: 96, AvgBlockCycles: 21,
		CategoryMix: mix(binary.CatMemCmp, 3, binary.CatMemAlloc, 2, binary.CatSyncAtomic, 2, binary.CatKernelNet, 2),
		MemClassMix: [binary.NumMemClasses]float64{0.6, 0.15, 0.25},
		MemWidthMix: [4]float64{0.25, 0.15, 0.35, 0.25},
	}
	search2 := search1
	search2.Name, search2.Desc = "Search2", "Latency-sensitive CPU-share search engine (Havenask)"
	search2.Mode, search2.CoresWanted = sched.CPUShare, 0
	search2.Threads = 12
	cache := Profile{
		Name: "Cache", Desc: "Best-effort memory graph caching (iGraph)",
		Class:           Cloud,
		BranchPerKCycle: 38, IndirectFrac: 0.09, IPC: 0.9,
		MeanCyclesPerSyscall: 150_000,
		SyscallClassWeights:  weightMap(kernel.SysNetRecv, 3, kernel.SysNetSend, 3, kernel.SysRead, 1),
		Threads:              6, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 7, L1MissPerKInsn: 34, LLCMissPerKInsn: 8,
		Priority: 4, PastIssues: 2, Funcs: 72, AvgBlockCycles: 26,
		CategoryMix: mix(binary.CatMemJE, 3, binary.CatMemCopy, 2, binary.CatMemCmp, 2, binary.CatKernelNet, 2),
		MemClassMix: [binary.NumMemClasses]float64{0.55, 0.25, 0.2},
		MemWidthMix: [4]float64{0.28, 0.16, 0.32, 0.24},
	}
	pred := Profile{
		Name: "Pred", Desc: "ML click-through-rate prediction (RTP engine)",
		Class:           Cloud,
		BranchPerKCycle: 30, IndirectFrac: 0.12, IPC: 1.8,
		MeanCyclesPerSyscall: 400_000,
		SyscallClassWeights:  weightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 2, kernel.SysFutex, 3),
		Threads:              8, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 3, L1MissPerKInsn: 20, LLCMissPerKInsn: 4,
		Priority: 8, PastIssues: 3, Funcs: 80, AvgBlockCycles: 30,
		CategoryMix: mix(binary.CatMemCopy, 3, binary.CatMemSet, 2, binary.CatSyncMutex, 2, binary.CatKernelIRQ, 2, binary.CatMemTC, 2),
		// ML inference: wide (quad-width) vectorized accesses dominate
		// (Figure 22's 8-byte skew).
		MemClassMix: [binary.NumMemClasses]float64{0.5, 0.3, 0.2},
		MemWidthMix: [4]float64{0.05, 0.05, 0.2, 0.7},
	}
	agent := Profile{
		Name: "Agent", Desc: "Node-level SLO management daemon",
		Class:           Cloud,
		BranchPerKCycle: 34, IndirectFrac: 0.10, IPC: 1.1,
		MeanCyclesPerSyscall: 90_000,
		SyscallClassWeights:  weightMap(kernel.SysRead, 3, kernel.SysWrite, 2, kernel.SysNanosleep, 2, kernel.SysPoll, 2),
		Threads:              2, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 5, L1MissPerKInsn: 22, LLCMissPerKInsn: 2,
		Priority: 5, PastIssues: 1, Funcs: 40, AvgBlockCycles: 24,
		CategoryMix: mix(binary.CatKernelSche, 3, binary.CatSyncMutex, 1, binary.CatMemAlloc, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.6, 0.2, 0.2},
		MemWidthMix: [4]float64{0.3, 0.2, 0.3, 0.2},
	}
	return []Profile{search1, search2, cache, pred, agent}
}

// CaseStudyApps returns the five applications of the paper's case study
// (Figures 21 and 22): Search, Cache, Prediction, plus the Matching (BE
// engine) and Recommend (MVAP) AI-powered services. The first three reuse
// the Table 1 services under the case study's names.
func CaseStudyApps() []Profile {
	apps := CloudApps()
	search := apps[0]
	search.Name = "Search"
	cache := apps[2]
	pred := apps[3]
	pred.Name = "Prediction"

	matching := Profile{
		Name: "Matching", Desc: "AI-powered matching (BE engine)",
		Class:           Cloud,
		BranchPerKCycle: 34, IndirectFrac: 0.12, IPC: 1.6,
		MeanCyclesPerSyscall: 300_000,
		SyscallClassWeights:  weightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 2, kernel.SysFutex, 2),
		Threads:              8, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 4, L1MissPerKInsn: 22, LLCMissPerKInsn: 4,
		Priority: 7, PastIssues: 2, Funcs: 88, AvgBlockCycles: 28,
		CategoryMix: mix(binary.CatMemCopy, 3, binary.CatMemSet, 1, binary.CatSyncMutex, 2, binary.CatKernelIRQ, 1, binary.CatMemTC, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.45, 0.35, 0.2},
		MemWidthMix: [4]float64{0.08, 0.07, 0.2, 0.65},
	}
	recommend := Profile{
		Name: "Recommend", Desc: "AI-powered recommendation (MVAP)",
		Class:           Cloud,
		BranchPerKCycle: 32, IndirectFrac: 0.12, IPC: 1.7,
		MeanCyclesPerSyscall: 250_000,
		// Heavily multi-threaded: rescheduling interrupts followed by
		// mutex synchronization dominate (the §5.4 KERNEL_IRQ finding).
		SyscallClassWeights: weightMap(kernel.SysNetRecv, 2, kernel.SysNetSend, 1, kernel.SysFutex, 4, kernel.SysWrite, 1),
		Threads:             16, Mode: sched.CPUShare, CoresWanted: 0,
		BranchMissPerKInsn: 4, L1MissPerKInsn: 24, LLCMissPerKInsn: 4,
		Priority: 8, PastIssues: 5, Funcs: 100, AvgBlockCycles: 26,
		CategoryMix: mix(binary.CatKernelIRQ, 4, binary.CatSyncMutex, 3, binary.CatMemCopy, 2, binary.CatMemTC, 1, binary.CatSyncAtomic, 1),
		MemClassMix: [binary.NumMemClasses]float64{0.45, 0.3, 0.25},
		MemWidthMix: [4]float64{0.05, 0.05, 0.2, 0.7},
	}
	return []Profile{search, cache, pred, matching, recommend}
}

// All returns every profile.
func All() []Profile {
	out := SPEC()
	out = append(out, OnlineBenchmarks()...)
	out = append(out, CloudApps()...)
	return out
}

// ByName looks a profile up.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// BinarySpec builds the synthesis spec for the profile.
func (p Profile) BinarySpec(seed uint64) binary.Spec {
	spec := binary.DefaultSpec(p.Name, seed)
	if p.Funcs > 0 {
		spec.Funcs = p.Funcs
	}
	if p.AvgBlockCycles > 0 {
		spec.AvgBlockCycles = p.AvgBlockCycles
	}
	spec.IPC = p.IPC
	if p.Class == Cloud {
		// Service frameworks dispatch through handler tables and virtual
		// calls: a denser indirect-call mix, which also gives the
		// function-occurrence histograms a fat tail.
		spec.IndCallFrac = 0.07
		spec.IndJumpFrac = 0.06
	}
	spec.CategoryWeights = p.CategoryMix
	// Always keep a general-code majority.
	spec.CategoryWeights[binary.CatGeneral] += 10
	spec.MemClassWeights = p.MemClassMix
	spec.MemWidthWeights = p.MemWidthMix
	spec.SyscallClassWeights = p.SyscallClassWeights
	// Syscall site density tracks the dynamic syscall rate loosely: the
	// walker path is used for accuracy, not timing, so sites just need to
	// exist in proportion.
	if p.MeanCyclesPerSyscall > 0 && p.MeanCyclesPerSyscall < 1_000_000 {
		spec.SyscallFrac = 0.01
	} else {
		spec.SyscallFrac = 0.002
	}
	return spec
}

// Synthesize builds the profile's program binary.
func (p Profile) Synthesize(seed uint64) *binary.Program {
	return binary.Synthesize(p.BinarySpec(seed))
}

// InstallOpts controls Install.
type InstallOpts struct {
	// Walker selects branch-exact execution (accuracy experiments) at the
	// given Scale; otherwise analytic execution is used.
	Walker bool
	// Scale is the walker slow-motion factor (e.g. trace.SpaceScale).
	Scale float64
	// Allowed overrides the core set (nil: derived from the profile).
	Allowed []int
	// Prog reuses a pre-synthesized binary (nil: synthesize from seed).
	Prog *binary.Program
	// Seed drives synthesis and execution randomness.
	Seed uint64
}

// Install adds the workload to a machine and spawns its threads.
func (p Profile) Install(m *sched.Machine, opt InstallOpts) *sched.Process {
	allowed := opt.Allowed
	if allowed == nil {
		if p.Mode == sched.CPUSet && p.CoresWanted > 0 && p.CoresWanted <= len(m.Cores) {
			allowed = make([]int, p.CoresWanted)
			for i := range allowed {
				allowed[i] = i
			}
		} else {
			allowed = m.AllCores()
		}
	}
	prog := opt.Prog
	if prog == nil && opt.Walker {
		prog = p.Synthesize(opt.Seed)
	}
	proc := m.AddProcess(p.Name, prog, p.Mode, allowed)
	threads := p.Threads
	if threads <= 0 {
		threads = 1
	}
	for i := 0; i < threads; i++ {
		rng := xrand.SplitN(opt.Seed, "workload/"+p.Name, i)
		var exec sched.Exec
		if opt.Walker {
			scale := opt.Scale
			if scale <= 0 {
				scale = 1e-4
			}
			we := sched.NewWalkerExec(prog, rng, m.Cfg.Cost, scale)
			if p.MeanCyclesPerSyscall > 0 {
				// Pace syscalls in the walked-cycle domain: in slow-motion
				// execution every dynamic rate (branches AND syscalls)
				// scales together, so per-switch trace sideband keeps its
				// real proportion to branch volume — otherwise it would
				// swamp the identically-scaled buffers.
				pace := simtime.Duration(float64(m.Cfg.Cost.CyclesToNS(p.MeanCyclesPerSyscall)) / scale)
				we.WithPacing(pace, p.SyscallClassWeights)
			}
			exec = we
		} else {
			exec = sched.NewAnalyticExec(rng, m.Cfg.Cost, p.MeanCyclesPerSyscall,
				p.SyscallClassWeights, p.BranchPerKCycle, p.IndirectFrac, p.IPC)
		}
		m.SpawnThread(proc, exec)
	}
	return proc
}

// HWEvents computes the Figure 4 synthetic hardware event counts for a
// process's retired work under a given interference factor; tracing adds
// the facility's LLC footprint.
type HWEvents struct {
	BranchMisses int64
	L1Misses     int64
	LLCMisses    int64
}

// ComputeHWEvents derives hardware event counts from retired instructions.
func (p Profile) ComputeHWEvents(insns int64, interference float64, tracing bool, cost cpu.Model) HWEvents {
	f := interference
	if f < 1 {
		f = 1
	}
	llcF := f
	if tracing {
		llcF *= 1 + cost.TracingLLCFootprint
	}
	k := float64(insns) / 1000
	return HWEvents{
		BranchMisses: int64(k * p.BranchMissPerKInsn * f),
		L1Misses:     int64(k * p.L1MissPerKInsn * f),
		LLCMisses:    int64(k * p.LLCMissPerKInsn * llcF),
	}
}

// weights builds a weight slice with 1.0 at each listed class.
func weights(classes ...kernel.SyscallClass) []float64 {
	max := kernel.SyscallClass(0)
	for _, c := range classes {
		if c > max {
			max = c
		}
	}
	out := make([]float64, int(max)+1)
	for _, c := range classes {
		out[c] = 1
	}
	return out
}

// weightMap builds a weight slice from (class, weight) pairs.
func weightMap(pairs ...any) []float64 {
	if len(pairs)%2 != 0 {
		panic("workload: weightMap needs pairs")
	}
	var out []float64
	for i := 0; i < len(pairs); i += 2 {
		c := pairs[i].(kernel.SyscallClass)
		w := float64(pairs[i+1].(int))
		for int(c) >= len(out) {
			out = append(out, 0)
		}
		out[c] = w
	}
	return out
}

// mix builds a category weight array from (category, weight) pairs.
func mix(pairs ...any) [binary.NumCategories]float64 {
	var out [binary.NumCategories]float64
	if len(pairs)%2 != 0 {
		panic("workload: mix needs pairs")
	}
	for i := 0; i < len(pairs); i += 2 {
		out[pairs[i].(binary.FuncCategory)] = float64(pairs[i+1].(int))
	}
	return out
}
