// Package workload defines the applications the paper evaluates (Table 1)
// as calibrated profiles over the simulated substrate: ten SPEC CPU
// 2017-like compute benchmarks, three online benchmarks (Memcached, Nginx,
// MySQL), and five Alibaba-style cloud services.
//
// A profile fixes the dynamic properties the tracing overheads depend on:
// branch density (PT volume and hardware stretch), syscall rate (eBPF
// probes, blocking behaviour, context-switch rate), thread count and CPU
// provisioning mode (UMA policy), and hardware event rates (the Figure 4
// analysis). Densities are calibrated so that EXIST's per-workload
// slowdown lands in the paper's 0.4-1.5% range and the baselines keep
// their published relative positions.
//
// The profiles themselves are not hand-built Go literals: they are spec
// DSL documents (table1.yaml, casestudy.yaml) embedded in the binary and
// compiled through CompileProfiles — the same path user-supplied scenario
// specs take — so there is exactly one way a workload comes into being.
package workload

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// Class groups workloads the way the paper's tables do.
type Class int

const (
	// Compute is a SPEC-like CPU benchmark.
	Compute Class = iota
	// Online is a request-serving benchmark (mc/ng/ms).
	Online
	// Cloud is a production-style long-running service.
	Cloud
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Compute:
		return "compute"
	case Online:
		return "online"
	case Cloud:
		return "cloud"
	default:
		return "unknown"
	}
}

// Profile describes one workload.
type Profile struct {
	// Name is the table identifier (pb, gcc, ..., mc, ng, ms, Search1...).
	Name string
	// Desc is the human description from Table 1.
	Desc string
	// Class groups the workload.
	Class Class

	// BranchPerKCycle is the PT event density; it fixes both the PT
	// hardware stretch and the trace byte rate.
	BranchPerKCycle float64
	// IndirectFrac is the fraction of PT events needing TIP packets.
	IndirectFrac float64
	// IPC is the workload's baseline instructions per cycle.
	IPC float64
	// MeanCyclesPerSyscall is the average user work between syscalls
	// (0: effectively never).
	MeanCyclesPerSyscall int64
	// SyscallClassWeights picks syscall classes (kernel package indices).
	SyscallClassWeights []float64
	// Threads is the thread count.
	Threads int
	// Mode is the CPU provisioning mode.
	Mode sched.ProvisionMode
	// CoresWanted sizes the mapped core set (0: all cores).
	CoresWanted int

	// Hardware event rates per kilo-instruction, for the Figure 4 events.
	BranchMissPerKInsn float64
	L1MissPerKInsn     float64
	LLCMissPerKInsn    float64

	// Priority and PastIssues feed RCO's temporal decider.
	Priority   int
	PastIssues int

	// Program synthesis shape.
	Funcs          int
	AvgBlockCycles int
	CategoryMix    [binary.NumCategories]float64
	MemClassMix    [binary.NumMemClasses]float64
	MemWidthMix    [4]float64
}

// All returns every profile.
func All() []Profile {
	out := SPEC()
	out = append(out, OnlineBenchmarks()...)
	out = append(out, CloudApps()...)
	return out
}

// ByName looks a profile up.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// BinarySpec builds the synthesis spec for the profile.
func (p Profile) BinarySpec(seed uint64) binary.Spec {
	spec := binary.DefaultSpec(p.Name, seed)
	if p.Funcs > 0 {
		spec.Funcs = p.Funcs
	}
	if p.AvgBlockCycles > 0 {
		spec.AvgBlockCycles = p.AvgBlockCycles
	}
	spec.IPC = p.IPC
	if p.Class == Cloud {
		// Service frameworks dispatch through handler tables and virtual
		// calls: a denser indirect-call mix, which also gives the
		// function-occurrence histograms a fat tail.
		spec.IndCallFrac = 0.07
		spec.IndJumpFrac = 0.06
	}
	spec.CategoryWeights = p.CategoryMix
	// Always keep a general-code majority.
	spec.CategoryWeights[binary.CatGeneral] += 10
	spec.MemClassWeights = p.MemClassMix
	spec.MemWidthWeights = p.MemWidthMix
	spec.SyscallClassWeights = p.SyscallClassWeights
	// Syscall site density tracks the dynamic syscall rate loosely: the
	// walker path is used for accuracy, not timing, so sites just need to
	// exist in proportion.
	if p.MeanCyclesPerSyscall > 0 && p.MeanCyclesPerSyscall < 1_000_000 {
		spec.SyscallFrac = 0.01
	} else {
		spec.SyscallFrac = 0.002
	}
	return spec
}

// Synthesize builds the profile's program binary.
func (p Profile) Synthesize(seed uint64) *binary.Program {
	return binary.Synthesize(p.BinarySpec(seed))
}

// InstallOpts controls Install.
type InstallOpts struct {
	// Walker selects branch-exact execution (accuracy experiments) at the
	// given Scale; otherwise analytic execution is used.
	Walker bool
	// Scale is the walker slow-motion factor (e.g. trace.SpaceScale).
	Scale float64
	// Allowed overrides the core set (nil: derived from the profile).
	Allowed []int
	// Prog reuses a pre-synthesized binary (nil: synthesize from seed).
	Prog *binary.Program
	// Seed drives synthesis and execution randomness.
	Seed uint64
}

// Install adds the workload to a machine and spawns its threads.
func (p Profile) Install(m *sched.Machine, opt InstallOpts) *sched.Process {
	allowed := opt.Allowed
	if allowed == nil {
		if p.Mode == sched.CPUSet && p.CoresWanted > 0 && p.CoresWanted <= len(m.Cores) {
			allowed = make([]int, p.CoresWanted)
			for i := range allowed {
				allowed[i] = i
			}
		} else {
			allowed = m.AllCores()
		}
	}
	prog := opt.Prog
	if prog == nil && opt.Walker {
		prog = p.Synthesize(opt.Seed)
	}
	proc := m.AddProcess(p.Name, prog, p.Mode, allowed)
	threads := p.Threads
	if threads <= 0 {
		threads = 1
	}
	for i := 0; i < threads; i++ {
		rng := xrand.SplitN(opt.Seed, "workload/"+p.Name, i)
		var exec sched.Exec
		if opt.Walker {
			scale := opt.Scale
			if scale <= 0 {
				scale = 1e-4
			}
			we := sched.NewWalkerExec(prog, rng, m.Cfg.Cost, scale)
			if p.MeanCyclesPerSyscall > 0 {
				// Pace syscalls in the walked-cycle domain: in slow-motion
				// execution every dynamic rate (branches AND syscalls)
				// scales together, so per-switch trace sideband keeps its
				// real proportion to branch volume — otherwise it would
				// swamp the identically-scaled buffers.
				pace := simtime.Duration(float64(m.Cfg.Cost.CyclesToNS(p.MeanCyclesPerSyscall)) / scale)
				we.WithPacing(pace, p.SyscallClassWeights)
			}
			exec = we
		} else {
			exec = sched.NewAnalyticExec(rng, m.Cfg.Cost, p.MeanCyclesPerSyscall,
				p.SyscallClassWeights, p.BranchPerKCycle, p.IndirectFrac, p.IPC)
		}
		m.SpawnThread(proc, exec)
	}
	return proc
}

// HWEvents computes the Figure 4 synthetic hardware event counts for a
// process's retired work under a given interference factor; tracing adds
// the facility's LLC footprint.
type HWEvents struct {
	BranchMisses int64
	L1Misses     int64
	LLCMisses    int64
}

// ComputeHWEvents derives hardware event counts from retired instructions.
func (p Profile) ComputeHWEvents(insns int64, interference float64, tracing bool, cost cpu.Model) HWEvents {
	f := interference
	if f < 1 {
		f = 1
	}
	llcF := f
	if tracing {
		llcF *= 1 + cost.TracingLLCFootprint
	}
	k := float64(insns) / 1000
	return HWEvents{
		BranchMisses: int64(k * p.BranchMissPerKInsn * f),
		L1Misses:     int64(k * p.L1MissPerKInsn * f),
		LLCMisses:    int64(k * p.LLCMissPerKInsn * llcF),
	}
}
