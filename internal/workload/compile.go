package workload

import (
	"embed"
	"fmt"
	"sync"

	"exist/internal/binary"
	"exist/internal/kernel"
	"exist/internal/sched"
	"exist/internal/spec"
)

// The Table 1 and case-study fleets live as spec DSL documents embedded in
// the binary; the SPEC()/OnlineBenchmarks()/CloudApps()/CaseStudyApps()
// accessors serve compiled copies, so every profile in the repo — built-in
// or user-supplied — comes into being through the same compiler.
//
//go:embed table1.yaml casestudy.yaml
var builtinFS embed.FS

// classNames maps spec class strings to Class values.
var classNames = map[string]Class{
	"compute": Compute,
	"online":  Online,
	"cloud":   Cloud,
}

// modeNames maps spec mode strings to provisioning modes.
var modeNames = map[string]sched.ProvisionMode{
	"cpuset":   sched.CPUSet,
	"cpushare": sched.CPUShare,
}

// syscallNames maps spec syscall mnemonics to kernel classes. The
// mnemonics match kernel.DefaultSyscallTable's decoded-report names.
var syscallNames = map[string]kernel.SyscallClass{
	"read":        kernel.SysRead,
	"write":       kernel.SysWrite,
	"sendto":      kernel.SysNetSend,
	"recvfrom":    kernel.SysNetRecv,
	"futex":       kernel.SysFutex,
	"epoll_wait":  kernel.SysPoll,
	"nanosleep":   kernel.SysNanosleep,
	"sched_yield": kernel.SysSchedYield,
	"write_sync":  kernel.SysFileWriteSlow,
}

// categoryNames maps spec category names (binary.FuncCategory.String
// values) to categories.
var categoryNames = map[string]binary.FuncCategory{
	"GENERAL":       binary.CatGeneral,
	"MEM_JE":        binary.CatMemJE,
	"MEM_TC":        binary.CatMemTC,
	"MEM_ALLOC":     binary.CatMemAlloc,
	"MEM_FREE":      binary.CatMemFree,
	"MEM_COPY":      binary.CatMemCopy,
	"MEM_SET":       binary.CatMemSet,
	"MEM_CMP":       binary.CatMemCmp,
	"MEM_MOVE":      binary.CatMemMove,
	"SYNC_ATOMIC":   binary.CatSyncAtomic,
	"SYNC_SPINLOCK": binary.CatSyncSpinlock,
	"SYNC_MUTEX":    binary.CatSyncMutex,
	"SYNC_CAS":      binary.CatSyncCAS,
	"KERNEL_SCHE":   binary.CatKernelSche,
	"KERNEL_IRQ":    binary.CatKernelIRQ,
	"KERNEL_NET":    binary.CatKernelNet,
}

// CompileProfiles compiles a spec document's profiles, in document order,
// into Profile values. A profile's Base may name an earlier profile in the
// same document or one from context (e.g. the built-in Table 1 fleet);
// set fields override the inherited value, unset fields keep it. Abstract
// profiles resolve as bases but are not emitted.
func CompileProfiles(doc *spec.Document, context map[string]Profile) ([]Profile, error) {
	resolved := make(map[string]Profile, len(context)+len(doc.Profiles))
	for k, v := range context {
		resolved[k] = v
	}
	var out []Profile
	for i := range doc.Profiles {
		ps := &doc.Profiles[i]
		p, err := compileProfile(doc, ps, resolved)
		if err != nil {
			return nil, err
		}
		resolved[ps.Name] = p
		if !ps.Abstract {
			out = append(out, p)
		}
	}
	return out, nil
}

func compileProfile(doc *spec.Document, ps *spec.Profile, resolved map[string]Profile) (Profile, error) {
	fail := func(format string, args ...any) (Profile, error) {
		return Profile{}, fmt.Errorf("%s:%d: profiles.%s: %s", doc.Src, ps.Line, ps.Name, fmt.Sprintf(format, args...))
	}
	var p Profile
	if ps.Base != "" {
		base, ok := resolved[ps.Base]
		if !ok {
			return fail("unknown base profile %q", ps.Base)
		}
		p = base
	}
	p.Name = ps.Name
	if ps.Desc != "" {
		p.Desc = ps.Desc
	}
	if ps.Class != "" {
		c, ok := classNames[ps.Class]
		if !ok {
			return fail("unknown class %q", ps.Class)
		}
		p.Class = c
	}
	if ps.Mode != "" {
		m, ok := modeNames[ps.Mode]
		if !ok {
			return fail("unknown mode %q", ps.Mode)
		}
		p.Mode = m
	}
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setI := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setF(&p.BranchPerKCycle, ps.BranchPerKCycle)
	setF(&p.IndirectFrac, ps.IndirectFrac)
	setF(&p.IPC, ps.IPC)
	if ps.MeanCyclesPerSyscall != nil {
		p.MeanCyclesPerSyscall = *ps.MeanCyclesPerSyscall
	}
	setI(&p.Threads, ps.Threads)
	setI(&p.CoresWanted, ps.CoresWanted)
	setF(&p.BranchMissPerKInsn, ps.BranchMissPerKInsn)
	setF(&p.L1MissPerKInsn, ps.L1MissPerKInsn)
	setF(&p.LLCMissPerKInsn, ps.LLCMissPerKInsn)
	setI(&p.Priority, ps.Priority)
	setI(&p.PastIssues, ps.PastIssues)
	setI(&p.Funcs, ps.Funcs)
	setI(&p.AvgBlockCycles, ps.AvgBlockCycles)
	if ps.Syscalls != nil {
		w, err := SyscallWeights(ps.Syscalls)
		if err != nil {
			return fail("syscalls: %v", err)
		}
		p.SyscallClassWeights = w
	}
	if ps.Categories != nil {
		var mix [binary.NumCategories]float64
		for name, w := range ps.Categories {
			c, ok := categoryNames[name]
			if !ok {
				return fail("categories: unknown category %q", name)
			}
			mix[c] = w
		}
		p.CategoryMix = mix
	}
	if ps.MemClassMix != nil {
		if len(ps.MemClassMix) != binary.NumMemClasses {
			return fail("mem_class_mix needs %d weights", binary.NumMemClasses)
		}
		copy(p.MemClassMix[:], ps.MemClassMix)
	}
	if ps.MemWidthMix != nil {
		if len(ps.MemWidthMix) != len(p.MemWidthMix) {
			return fail("mem_width_mix needs %d weights", len(p.MemWidthMix))
		}
		copy(p.MemWidthMix[:], ps.MemWidthMix)
	}
	return p, nil
}

// SyscallWeights compiles a {mnemonic: weight} map into the positional
// weight slice the scheduler consumes, sized to the highest class present
// — the same shape the hand-written weight helpers produced.
func SyscallWeights(m map[string]float64) ([]float64, error) {
	maxClass := -1
	for name := range m {
		c, ok := syscallNames[name]
		if !ok {
			return nil, fmt.Errorf("unknown syscall %q", name)
		}
		if int(c) > maxClass {
			maxClass = int(c)
		}
	}
	if maxClass < 0 {
		return nil, fmt.Errorf("empty syscall weight map")
	}
	out := make([]float64, maxClass+1)
	for name, w := range m {
		out[syscallNames[name]] = w
	}
	return out, nil
}

// builtins caches the compiled embedded fleets. An error here means the
// embedded documents don't compile — a build defect, so accessors panic.
var builtins struct {
	once      sync.Once
	spec      []Profile
	online    []Profile
	cloud     []Profile
	casestudy []Profile
	err       error
}

func loadBuiltins() {
	builtins.once.Do(func() {
		table1, err := parseBuiltin("table1.yaml")
		if err != nil {
			builtins.err = err
			return
		}
		fleet, err := CompileProfiles(table1, nil)
		if err != nil {
			builtins.err = err
			return
		}
		byName := make(map[string]Profile, len(fleet))
		for _, p := range fleet {
			byName[p.Name] = p
			switch p.Class {
			case Compute:
				builtins.spec = append(builtins.spec, p)
			case Online:
				builtins.online = append(builtins.online, p)
			case Cloud:
				builtins.cloud = append(builtins.cloud, p)
			}
		}
		cs, err := parseBuiltin("casestudy.yaml")
		if err != nil {
			builtins.err = err
			return
		}
		builtins.casestudy, builtins.err = CompileProfiles(cs, byName)
	})
	if builtins.err != nil {
		panic("workload: embedded profile specs failed to compile: " + builtins.err.Error())
	}
}

func parseBuiltin(name string) (*spec.Document, error) {
	data, err := builtinFS.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return spec.Parse(name, data)
}

// group returns a fresh slice of copies of a compiled built-in group, so
// callers can tweak fields without touching the cache.
func group(ps []Profile) []Profile {
	return append([]Profile(nil), ps...)
}

// SPEC returns the ten SPEC CPU 2017 Integer profiles of Table 1,
// compiled from the embedded table1.yaml spec document.
func SPEC() []Profile {
	loadBuiltins()
	return group(builtins.spec)
}

// OnlineBenchmarks returns the mc/ng/ms profiles. High syscall and
// context-switch rates are what make them sensitive to per-switch and
// per-syscall tracing costs.
func OnlineBenchmarks() []Profile {
	loadBuiltins()
	return group(builtins.online)
}

// CloudApps returns the five production-style services (Table 1).
func CloudApps() []Profile {
	loadBuiltins()
	return group(builtins.cloud)
}

// CaseStudyApps returns the five applications of the paper's case study
// (Figures 21 and 22): Search, Cache, Prediction, plus the Matching (BE
// engine) and Recommend (MVAP) AI-powered services. The first three reuse
// the Table 1 services under the case study's names.
func CaseStudyApps() []Profile {
	loadBuiltins()
	return group(builtins.casestudy)
}
