package workload

import (
	"testing"

	"exist/internal/binary"
	"exist/internal/cpu"
	"exist/internal/sched"
	"exist/internal/simtime"
)

func TestProfileInventory(t *testing.T) {
	if got := len(SPEC()); got != 10 {
		t.Fatalf("SPEC profiles = %d, want 10", got)
	}
	if got := len(OnlineBenchmarks()); got != 3 {
		t.Fatalf("online profiles = %d, want 3", got)
	}
	if got := len(CloudApps()); got != 5 {
		t.Fatalf("cloud profiles = %d, want 5", got)
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if p.Name == "" || p.Desc == "" {
			t.Fatalf("unnamed profile: %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.BranchPerKCycle <= 0 || p.IPC <= 0 {
			t.Fatalf("%s: missing rates", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("xz")
	if err != nil || p.Threads != 4 {
		t.Fatalf("ByName(xz) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestEXISTOverheadRange(t *testing.T) {
	// The calibration target: EXIST's PT stretch across SPEC spans the
	// paper's 0.4-1.5% range.
	cost := cpu.Default()
	for _, p := range SPEC() {
		over := sched.PTStretchFor(cost, p.BranchPerKCycle) - 1
		if over < 0.003 || over > 0.016 {
			t.Errorf("%s: PT stretch %.4f outside the per-mille band", p.Name, over)
		}
	}
}

func TestSynthesizeValidates(t *testing.T) {
	for _, p := range All() {
		prog := p.Synthesize(7)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prog.Name != p.Name {
			t.Fatalf("program name %q", prog.Name)
		}
	}
}

func TestCloudCategoryMixes(t *testing.T) {
	pred, _ := ByName("Pred")
	prog := pred.Synthesize(3)
	counts := map[binary.FuncCategory]int{}
	for _, f := range prog.Funcs {
		counts[f.Category]++
	}
	if counts[binary.CatKernelIRQ] == 0 || counts[binary.CatMemCopy] == 0 {
		t.Fatalf("Pred category mix missing: %v", counts)
	}
}

func TestInstallAnalytic(t *testing.T) {
	cfg := sched.DefaultConfig()
	cfg.Cores = 8
	cfg.HTSiblings = false
	m := sched.NewMachine(cfg)
	mc, _ := ByName("mc")
	proc := mc.Install(m, InstallOpts{Seed: 1})
	if len(proc.Threads) != mc.Threads {
		t.Fatalf("threads = %d, want %d", len(proc.Threads), mc.Threads)
	}
	m.Run(100 * simtime.Millisecond)
	st := proc.Stats()
	if st.Cycles == 0 || st.Syscalls == 0 {
		t.Fatalf("online workload idle: %+v", st)
	}
	// Memcached syscalls roughly every 75k cycles.
	perSyscall := float64(st.Cycles) / float64(st.Syscalls)
	if perSyscall < 40_000 || perSyscall > 150_000 {
		t.Fatalf("cycles/syscall = %.0f, want ~75k", perSyscall)
	}
}

func TestInstallWalker(t *testing.T) {
	cfg := sched.DefaultConfig()
	cfg.Cores = 8
	cfg.HTSiblings = false
	m := sched.NewMachine(cfg)
	s1, _ := ByName("Search1")
	proc := s1.Install(m, InstallOpts{Walker: true, Scale: 1e-4, Seed: 2})
	if proc.Prog == nil {
		t.Fatal("walker install must synthesize a binary")
	}
	if proc.Mode != sched.CPUSet || len(proc.Allowed) != 8 {
		t.Fatalf("Search1 provisioning wrong: %v %v", proc.Mode, proc.Allowed)
	}
	m.Run(50 * simtime.Millisecond)
	if proc.Stats().Branches == 0 {
		t.Fatal("walker produced no branches")
	}
}

func TestComputeHWEvents(t *testing.T) {
	p, _ := ByName("om")
	base := p.ComputeHWEvents(1_000_000, 1.0, false, cpu.Default())
	shared := p.ComputeHWEvents(1_000_000, 1.3, false, cpu.Default())
	traced := p.ComputeHWEvents(1_000_000, 1.3, true, cpu.Default())
	if shared.LLCMisses <= base.LLCMisses {
		t.Fatal("interference must inflate misses")
	}
	if traced.LLCMisses <= shared.LLCMisses {
		t.Fatal("tracing must add its LLC footprint")
	}
	// Tracing footprint is slight (~1.3%), per Figure 4.
	ratio := float64(traced.LLCMisses) / float64(shared.LLCMisses)
	if ratio > 1.02 {
		t.Fatalf("tracing LLC inflation %.4f too large", ratio)
	}
	if traced.BranchMisses != shared.BranchMisses {
		t.Fatal("tracing must not change branch misses")
	}
}

func TestClassString(t *testing.T) {
	if Compute.String() != "compute" || Online.String() != "online" || Cloud.String() != "cloud" {
		t.Fatal("class strings wrong")
	}
}
