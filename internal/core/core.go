// Package core implements EXIST's node-level tracing system: the
// Operation-aware Tracing Controller (OTC, §3.2 of the paper) and the
// session facade that ties it to the Usage-aware Memory Allocator
// (package memalloc) and to the cluster-level coverage optimizer (package
// coverage).
//
// OTC's design in one paragraph: conventional hardware-tracing control
// reprograms the PT MSRs at every context switch (per-thread buffers must
// be swapped with tracing disabled), costing O(#switches) serializing MSR
// operations. OTC instead (1) configures a per-core buffer and the CR3
// filter once, before the window starts; (2) injects a sched_switch hook
// that enables a core's tracer the *first* time the target process is
// scheduled onto it and never touches it again — scheduling out is handled
// for free by the hardware CR3 filter; (3) bounds the window with a
// high-resolution timer whose expiry disables the tracers of all touched
// cores. Control cost thus drops from O(#switches) to O(#cores), entirely
// in kernel mode.
package core

import (
	"fmt"
	"sort"

	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/memalloc"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// DropPolicy selects the buffer-full behaviour.
type DropPolicy int

const (
	// DropStop is EXIST's compulsory tracing: the STOP bit ends output
	// when the buffer fills, keeping the data nearest the anomaly.
	DropStop DropPolicy = iota
	// DropRing is the conventional ring buffer (REPT-style), kept for the
	// ablation benchmarks.
	DropRing
)

// BufferMode selects per-core (EXIST) or per-thread (conventional,
// ablation-only) buffer ownership.
type BufferMode int

const (
	// PerCore gives each traced core one fixed buffer (no control
	// operations at context switches).
	PerCore BufferMode = iota
	// PerThread swaps buffers at every context switch of the target,
	// paying the disable/reprogram/enable MSR sequence each time. It
	// exists to quantify what OTC saves.
	PerThread
)

// InsmodCost is the one-time kernel-module load cost on the core that
// performs it (the startup spike of Figure 17).
const InsmodCost = 15 * simtime.Millisecond

// Config parameterizes one tracing session.
type Config struct {
	// Period is the tracing window (0.1-2 s in the paper).
	Period simtime.Duration
	// Mem configures the memory allocator.
	Mem memalloc.Config
	// Scale is the space scale (see trace.SpaceScale); 1 means unscaled.
	Scale float64
	// Ctl is the PT control configuration; zero selects ipt.DefaultCtl.
	Ctl uint64
	// Drop selects the buffer-full policy.
	Drop DropPolicy
	// Buffers selects per-core or per-thread buffers.
	Buffers BufferMode
	// HotSwap, with PerThread buffers, uses the hypothetical §6.1
	// hot-switching extension (one register write per swap) instead of
	// the disable/reprogram/enable sequence. Ablation-only.
	HotSwap bool
	// SessionID and Node label the session for the cluster pipeline.
	SessionID, Node string
	// Seed drives the coreset sampler.
	Seed uint64
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		Period: 500 * simtime.Millisecond,
		Mem:    memalloc.DefaultConfig(),
		Scale:  1,
		Ctl:    ipt.DefaultCtl(),
		Seed:   1,
	}
}

// Stats summarizes a session's control-path behaviour — the quantities
// OTC exists to minimize.
type Stats struct {
	// MSROps counts MSR writes issued during the window (setup included).
	MSROps int64
	// EnabledCores counts cores whose tracer was ever enabled.
	EnabledCores int
	// PlannedCores is the traced core set size.
	PlannedCores int
	// SwitchRecords counts five-tuple records written.
	SwitchRecords int64
	// ControlKernelNS is the total kernel time charged for control
	// operations (setup, per-switch hook work, teardown).
	ControlKernelNS simtime.Duration
	// BufferSwaps counts per-thread buffer swap sequences (PerThread
	// mode only).
	BufferSwaps int64
}

// Session is one bounded intra-service tracing window on one node.
type Session struct {
	// Target is the traced process.
	Target *sched.Process
	// Cfg is the session configuration.
	Cfg Config
	// Plan is the memory allocator's decision.
	Plan memalloc.Plan
	// Start and End bound the window (End is set when the HRT fires).
	Start, End simtime.Time
	// Stats is the control-path accounting.
	Stats Stats

	ctrl     *Controller
	bus      *kernel.MSRBus
	hrt      *kernel.HRT
	active   bool
	finished bool
	log      kernel.SwitchLog
	topas    map[int]*ipt.ToPA
	perThr   map[int]*ipt.ToPA // PerThread mode: tid -> buffer
	result   *trace.Session
	onDone   []func(*Session)
}

// Active reports whether the window is still open.
func (s *Session) Active() bool { return s.active }

// Controller is the node-level EXIST facade: it owns the kernel hook and
// multiplexes sessions over it.
type Controller struct {
	m        *sched.Machine
	insmodAt simtime.Time
	insmod   bool
	sessions []*Session
}

// NewController attaches EXIST to a machine. The sched_switch hook is
// injected once; it is inert while no session is active.
func NewController(m *sched.Machine) *Controller {
	c := &Controller{m: m}
	m.SwitchHooks = append(m.SwitchHooks, c.onSwitch)
	return c
}

// Insmod models loading the kernel module: a one-time CPU spike on core 0
// (Figure 17's startup cost). It is idempotent.
func (c *Controller) Insmod() {
	if c.insmod {
		return
	}
	c.insmod = true
	c.insmodAt = c.m.Eng.Now()
	c.m.Cores[0].KernelNS += InsmodCost
}

// Trace opens a tracing session on target. Buffer configuration costs are
// charged to the traced cores immediately; the window closes by HRT after
// cfg.Period, disabling every touched tracer.
func (c *Controller) Trace(target *sched.Process, cfg Config) (*Session, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("core: non-positive tracing period %v", cfg.Period)
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Ctl == 0 {
		cfg.Ctl = ipt.DefaultCtl()
	}
	c.Insmod()
	now := c.m.Eng.Now()
	s := &Session{
		Target: target,
		Cfg:    cfg,
		Start:  now,
		ctrl:   c,
		bus:    kernel.NewMSRBus(c.m.Cfg.Cost),
		active: true,
		topas:  make(map[int]*ipt.ToPA),
	}
	if cfg.Buffers == PerThread {
		s.perThr = make(map[int]*ipt.ToPA)
	}
	rng := xrand.Split(cfg.Seed, "core/coreset")
	s.Plan = memalloc.PlanBuffers(c.m, target, cfg.Mem, rng)
	s.Stats.PlannedCores = len(s.Plan.Cores)

	// Configure every planned core's tracer up front: output chain and
	// CR3 filter. These are the only per-core MSR writes besides the
	// single enable on first schedule-in and the single disable at HRT
	// expiry.
	for _, cp := range s.Plan.Cores {
		tr := c.m.Cores[cp.Core].Tracer
		if tr.Enabled() {
			return nil, fmt.Errorf("core: tracer on core %d already in use", cp.Core)
		}
		topa := ipt.NewSingleToPA(trace.ScaleBytes(cp.BufBytes, cfg.Scale))
		if cfg.Drop == DropRing {
			topa = ipt.NewToPA([]int{trace.ScaleBytes(cp.BufBytes, cfg.Scale)}, true)
		}
		d, err := s.bus.ConfigureOutput(tr, topa, target.CR3)
		if err != nil {
			return nil, fmt.Errorf("core: configure core %d: %w", cp.Core, err)
		}
		c.m.Cores[cp.Core].KernelNS += d
		s.Stats.ControlKernelNS += d
		s.topas[cp.Core] = topa
	}

	// Bound the window with a high-resolution timer.
	var armCost simtime.Duration
	s.hrt, armCost = kernel.ArmHRT(c.m.Eng, cfg.Period, c.m.Cfg.Cost.TimerProgram,
		func(at simtime.Time) { s.stop(at) })
	c.m.Cores[0].KernelNS += armCost
	s.Stats.ControlKernelNS += armCost

	c.sessions = append(c.sessions, s)
	return s, nil
}

// onSwitch is the kernel hooker: EXIST's sched_switch tracepoint body.
// It runs purely in kernel mode (no user/kernel transitions).
func (c *Controller) onSwitch(ev sched.SwitchEvent) simtime.Duration {
	var cost simtime.Duration
	for _, s := range c.sessions {
		if !s.active {
			continue
		}
		cost += s.onSwitch(ev)
	}
	return cost
}

// onSwitch handles one switch for one session.
func (s *Session) onSwitch(ev sched.SwitchEvent) simtime.Duration {
	var cost simtime.Duration
	costModel := s.ctrl.m.Cfg.Cost

	// Five-tuple records for both directions involving the target.
	if ev.Prev != nil && ev.Prev.Proc == s.Target {
		s.log.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
			PID: int32(s.Target.PID), TID: int32(ev.Prev.TID), Op: kernel.OpOut})
		s.Stats.SwitchRecords++
		cost += costModel.SwitchRecord
	}
	if ev.Next == nil || ev.Next.Proc != s.Target {
		// Scheduled out (or unrelated): OTC deliberately does nothing —
		// the CR3 filter suppresses unrelated output at zero cost.
		return cost
	}
	s.log.Add(kernel.SwitchRecord{TS: ev.Now, CPU: int32(ev.Core.ID),
		PID: int32(s.Target.PID), TID: int32(ev.Next.TID), Op: kernel.OpIn})
	s.Stats.SwitchRecords++
	cost += costModel.SwitchRecord

	tr := ev.Core.Tracer
	topa, planned := s.topas[ev.Core.ID]
	if !planned {
		return cost
	}

	if s.perThr != nil {
		// Ablation: conventional per-thread buffers — swap at every
		// schedule-in, paying the full disable/reprogram/enable dance.
		buf := s.perThr[ev.Next.TID]
		if buf == nil {
			size := int64(float64(topa.Capacity()) / float64(max(1, len(s.Target.Threads))))
			if size < 256 {
				size = 256
			}
			buf = ipt.NewSingleToPA(int(size))
			s.perThr[ev.Next.TID] = buf
		}
		if s.Cfg.HotSwap && tr.Enabled() {
			cost += s.bus.SwapOutputHot(ev.Now, tr, buf)
			s.Stats.BufferSwaps++
			s.Stats.ControlKernelNS += cost
			return cost
		}
		d, err := s.bus.SwapOutput(ev.Now, tr, buf, s.Target.CR3)
		cost += d
		s.Stats.BufferSwaps++
		if err == nil && !tr.Enabled() {
			d, _ = s.bus.Enable(ev.Now+cost, tr, s.Cfg.Ctl)
			cost += d
		}
		s.Stats.ControlKernelNS += cost
		return cost
	}

	// OTC fast path: enable only on the first schedule-in per core.
	if !tr.Enabled() {
		d, err := s.bus.Enable(ev.Now, tr, s.Cfg.Ctl)
		cost += d
		if err == nil {
			s.Stats.EnabledCores++
		}
	}
	s.Stats.ControlKernelNS += cost
	return cost
}

// stop closes the window: the HRT expiry handler disables every enabled
// planned tracer (O(#cores) operations) and snapshots the result.
func (s *Session) stop(now simtime.Time) {
	if !s.active {
		return
	}
	s.active = false
	s.End = now
	m := s.ctrl.m
	for _, cp := range s.Plan.Cores {
		tr := m.Cores[cp.Core].Tracer
		if tr.Enabled() {
			// Remote cores are stopped via IPI: interrupt plus the MSR
			// write, charged to the stopped core.
			d, _ := s.bus.Disable(now, tr)
			m.Cores[cp.Core].KernelNS += d + m.Cfg.Cost.Interrupt
			s.Stats.ControlKernelNS += d + m.Cfg.Cost.Interrupt
		}
		tr.Flush()
	}
	s.Stats.MSROps = s.bus.Ops
	s.result = s.snapshot()
	s.finished = true
	for _, f := range s.onDone {
		f(s)
	}
}

// snapshot builds the session's trace.Session from the buffers.
func (s *Session) snapshot() *trace.Session {
	out := &trace.Session{
		ID:       s.Cfg.SessionID,
		Node:     s.Cfg.Node,
		Workload: s.Target.Name,
		PID:      int32(s.Target.PID),
		Start:    s.Start,
		End:      s.End,
		Scale:    s.Cfg.Scale,
		Switches: s.log,
	}
	for _, cp := range s.Plan.Cores {
		topa := s.topas[cp.Core]
		out.Cores = append(out.Cores, trace.CoreTrace{
			Core:         cp.Core,
			Data:         topa.Bytes(),
			Wrapped:      topa.Wrapped(),
			Stopped:      topa.Stopped(),
			DroppedBytes: topa.Dropped(),
		})
		topa.Release()
	}
	// Per-thread ablation buffers are appended as extra streams tagged
	// with a synthetic core ID (they are not per-core).
	tids := make([]int, 0, len(s.perThr))
	for tid := range s.perThr {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		buf := s.perThr[tid]
		out.Cores = append(out.Cores, trace.CoreTrace{
			Core:         1_000_000 + tid,
			Data:         buf.Bytes(),
			Stopped:      buf.Stopped(),
			DroppedBytes: buf.Dropped(),
		})
		buf.Release()
	}
	return out
}

// OnDone registers f to run when the window closes (the cluster layer
// uses this to upload the session to the object store).
func (s *Session) OnDone(f func(*Session)) { s.onDone = append(s.onDone, f) }

// Result returns the collected session after the window has closed.
func (s *Session) Result() (*trace.Session, error) {
	if !s.finished {
		return nil, fmt.Errorf("core: session still active (ends at %v)", s.Start+s.Cfg.Period)
	}
	return s.result, nil
}

// Cancel aborts an active session immediately.
func (s *Session) Cancel() {
	if s.active {
		s.hrt.Cancel()
		s.stop(s.ctrl.m.Eng.Now())
	}
}
