package core

import (
	"testing"

	"exist/internal/binary"
	"exist/internal/decode"
	"exist/internal/kernel"
	"exist/internal/memalloc"
	"exist/internal/metrics"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// testRig is a machine with a traced walker process and a co-located
// noise process (the shared-environment setting the paper targets).
type testRig struct {
	m      *sched.Machine
	target *sched.Process
	prog   *binary.Program
	gt     *trace.GroundTruth
}

func newRig(t *testing.T, cores, targetThreads int, window simtime.Duration) *testRig {
	t.Helper()
	cfg := sched.DefaultConfig()
	cfg.Cores = cores
	cfg.HTSiblings = false
	cfg.Seed = 11
	cfg.Timeslice = 1 * simtime.Millisecond
	m := sched.NewMachine(cfg)

	prog := binary.Synthesize(binary.DefaultSpec("target", 21))
	target := m.AddProcess("target", prog, sched.CPUShare, m.AllCores())
	for i := 0; i < targetThreads; i++ {
		m.SpawnThread(target, sched.NewWalkerExec(prog, xrand.SplitN(31, "t", i), cfg.Cost, 1e-4))
	}
	noise := m.AddProcess("noise", nil, sched.CPUShare, m.AllCores())
	for i := 0; i < cores; i++ {
		m.SpawnThread(noise, sched.NewAnalyticExec(
			xrand.SplitN(32, "n", i), cfg.Cost, 1_450_000,
			[]float64{1, 1, 0, 0, 1}, 40, 0.2, 1.5))
	}
	gt := trace.NewGroundTruth(prog, 0, simtime.Time(window))
	m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
		if th.Proc == target {
			gt.Record(int32(th.TID), now, ev)
		}
	}
	return &testRig{m: m, target: target, prog: prog, gt: gt}
}

func testConfig(period simtime.Duration) Config {
	cfg := DefaultConfig()
	cfg.Period = period
	cfg.Scale = trace.SpaceScale
	return cfg
}

func TestSessionLifecycle(t *testing.T) {
	rig := newRig(t, 4, 2, 300*simtime.Millisecond)
	ctrl := NewController(rig.m)
	sess, err := ctrl.Trace(rig.target, testConfig(200*simtime.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Active() {
		t.Fatal("session should be active")
	}
	if _, err := sess.Result(); err == nil {
		t.Fatal("Result before window end should fail")
	}
	rig.m.Run(300 * simtime.Millisecond)
	if sess.Active() {
		t.Fatal("HRT did not close the window")
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.End - sess.Start; got != 200*simtime.Millisecond {
		t.Fatalf("window length = %v, want 200ms", got)
	}
	if res.TotalBytes() == 0 {
		t.Fatal("no trace data captured")
	}
	if len(res.Switches.Records) == 0 {
		t.Fatal("no five-tuple records")
	}
}

// TestControlOpsAreOCores is the paper's core claim (§3.2): control
// operations scale with the number of cores, not context switches.
func TestControlOpsAreOCores(t *testing.T) {
	rig := newRig(t, 4, 3, 600*simtime.Millisecond)
	ctrl := NewController(rig.m)
	sess, err := ctrl.Trace(rig.target, testConfig(500*simtime.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(600 * simtime.Millisecond)

	switches := rig.m.Stats.Switches
	if switches < 500 {
		t.Fatalf("test needs a busy machine; only %d switches", switches)
	}
	// Per planned core: 2 configure writes + at most 1 enable + at most
	// 1 disable = 4. Allow the arm/teardown slack but stay O(#cores).
	maxOps := int64(len(sess.Plan.Cores))*4 + 4
	if sess.Stats.MSROps > maxOps {
		t.Fatalf("MSR ops = %d (> %d) for %d switches — control is not O(#cores)",
			sess.Stats.MSROps, maxOps, switches)
	}
	if sess.Stats.EnabledCores == 0 {
		t.Fatal("no cores ever enabled")
	}
	if sess.Stats.SwitchRecords < switches/8 {
		t.Fatalf("suspiciously few five-tuple records: %d", sess.Stats.SwitchRecords)
	}
}

func TestPerThreadAblationCostsPerSwitch(t *testing.T) {
	rig := newRig(t, 4, 3, 400*simtime.Millisecond)
	ctrl := NewController(rig.m)
	cfg := testConfig(300 * simtime.Millisecond)
	cfg.Buffers = PerThread
	sess, err := ctrl.Trace(rig.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(400 * simtime.Millisecond)
	if sess.Stats.BufferSwaps == 0 {
		t.Fatal("per-thread mode performed no swaps")
	}
	// Each swap is a multi-MSR sequence: ops must scale with swaps.
	if sess.Stats.MSROps < sess.Stats.BufferSwaps*3 {
		t.Fatalf("MSR ops %d do not reflect %d swaps", sess.Stats.MSROps, sess.Stats.BufferSwaps)
	}
}

func TestAccuracyAgainstGroundTruth(t *testing.T) {
	rig := newRig(t, 4, 2, 400*simtime.Millisecond)
	ctrl := NewController(rig.m)
	cfg := testConfig(300 * simtime.Millisecond)
	sess, err := ctrl.Trace(rig.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.gt.Start, rig.gt.End = sess.Start, sess.Start+cfg.Period
	rig.m.Run(400 * simtime.Millisecond)
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	rec := decode.Decode(res, rig.prog)
	score := metrics.PathAccuracy(rig.gt.ByThread, rec.ByThread)
	if score.Truth == 0 {
		t.Fatal("no ground truth")
	}
	if score.Accuracy < 0.9 {
		t.Fatalf("EXIST accuracy = %.3f (matched %d / %d, %d decode errors)",
			score.Accuracy, score.Matched, score.Truth, len(rec.Errors))
	}
	if score.Spurious > score.Decoded/50 {
		t.Fatalf("too many spurious events: %+v", score)
	}
}

// TestPerMilleOverhead verifies the headline: tracing a workload with
// EXIST costs well under the single-digit range of conventional schemes.
func TestPerMilleOverhead(t *testing.T) {
	run := func(traced bool) int64 {
		cfg := sched.DefaultConfig()
		cfg.Cores = 4
		cfg.HTSiblings = false
		cfg.Seed = 13
		m := sched.NewMachine(cfg)
		target := m.AddProcess("t", nil, sched.CPUSet, []int{0, 1})
		var threads []*sched.Thread
		for i := 0; i < 2; i++ {
			threads = append(threads, m.SpawnThread(target, sched.NewAnalyticExec(
				xrand.SplitN(3, "w", i), cfg.Cost, 14_500_000, []float64{1}, 30, 0.2, 1.5)))
		}
		noise := m.AddProcess("noise", nil, sched.CPUSet, []int{0, 1})
		for i := 0; i < 2; i++ {
			m.SpawnThread(noise, sched.NewAnalyticExec(
				xrand.SplitN(4, "n", i), cfg.Cost, 14_500_000, []float64{1}, 30, 0.2, 1.5))
		}
		if traced {
			ctrl := NewController(m)
			c := DefaultConfig()
			c.Period = 1900 * simtime.Millisecond
			c.Scale = trace.SpaceScale
			if _, err := ctrl.Trace(target, c); err != nil {
				t.Fatal(err)
			}
		}
		m.Run(2 * simtime.Second)
		var cycles int64
		for _, th := range threads {
			cycles += th.Stats.Cycles
		}
		return cycles
	}
	base, traced := run(false), run(true)
	overhead := float64(base)/float64(traced) - 1
	if overhead < 0 {
		overhead = -overhead
	}
	if overhead > 0.02 {
		t.Fatalf("EXIST overhead = %.4f, want < 2%% worst case", overhead)
	}
}

func TestCompulsoryDrop(t *testing.T) {
	rig := newRig(t, 2, 1, 400*simtime.Millisecond)
	ctrl := NewController(rig.m)
	cfg := testConfig(300 * simtime.Millisecond)
	cfg.Mem = memalloc.Config{Budget: 4 << 10, PerCoreMin: 1 << 10, PerCoreMax: 2 << 10}
	cfg.Scale = 1 // tiny unscaled buffers
	sess, err := ctrl.Trace(rig.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(400 * simtime.Millisecond)
	res, _ := sess.Result()
	stopped := false
	for _, c := range res.Cores {
		if c.Stopped && c.DroppedBytes > 0 {
			stopped = true
		}
	}
	if !stopped {
		t.Fatal("tiny buffers did not trigger compulsory drop")
	}
}

func TestRingModeWraps(t *testing.T) {
	rig := newRig(t, 2, 1, 400*simtime.Millisecond)
	ctrl := NewController(rig.m)
	cfg := testConfig(300 * simtime.Millisecond)
	cfg.Mem = memalloc.Config{Budget: 4 << 10, PerCoreMin: 1 << 10, PerCoreMax: 2 << 10}
	cfg.Scale = 1
	cfg.Drop = DropRing
	sess, err := ctrl.Trace(rig.target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(400 * simtime.Millisecond)
	res, _ := sess.Result()
	wrapped := false
	for _, c := range res.Cores {
		if c.Wrapped {
			wrapped = true
		}
		if c.Stopped {
			t.Fatal("ring mode must not stop")
		}
	}
	if !wrapped {
		t.Fatal("ring mode never wrapped")
	}
}

func TestCancel(t *testing.T) {
	rig := newRig(t, 2, 1, 200*simtime.Millisecond)
	ctrl := NewController(rig.m)
	sess, err := ctrl.Trace(rig.target, testConfig(150*simtime.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(50 * simtime.Millisecond)
	sess.Cancel()
	if sess.Active() {
		t.Fatal("cancel did not close session")
	}
	if _, err := sess.Result(); err != nil {
		t.Fatal("cancelled session should have a result")
	}
	// No tracer may be left enabled.
	for _, c := range rig.m.Cores {
		if c.Tracer.Enabled() {
			t.Fatal("tracer left enabled after cancel")
		}
	}
	rig.m.Run(200 * simtime.Millisecond) // HRT already cancelled; no panic
}

func TestDoubleTraceSameCoresFails(t *testing.T) {
	rig := newRig(t, 2, 1, 200*simtime.Millisecond)
	ctrl := NewController(rig.m)
	if _, err := ctrl.Trace(rig.target, testConfig(150*simtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rig.m.Run(10 * simtime.Millisecond)
	// By now at least one tracer is enabled; a second overlapping session
	// on the same cores must be refused.
	if _, err := ctrl.Trace(rig.target, testConfig(100*simtime.Millisecond)); err == nil {
		t.Fatal("overlapping session on busy tracers should fail")
	}
}

func TestInsmodIdempotent(t *testing.T) {
	rig := newRig(t, 2, 1, 100*simtime.Millisecond)
	ctrl := NewController(rig.m)
	ctrl.Insmod()
	k := rig.m.Cores[0].KernelNS
	ctrl.Insmod()
	if rig.m.Cores[0].KernelNS != k {
		t.Fatal("Insmod charged twice")
	}
	if k < InsmodCost {
		t.Fatal("Insmod cost missing")
	}
}

func TestFiveTupleRecordsParse(t *testing.T) {
	rig := newRig(t, 2, 2, 300*simtime.Millisecond)
	ctrl := NewController(rig.m)
	sess, err := ctrl.Trace(rig.target, testConfig(200*simtime.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rig.m.Run(300 * simtime.Millisecond)
	res, _ := sess.Result()
	round, err := kernel.DecodeSwitchLog(res.Switches.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Records) != len(res.Switches.Records) {
		t.Fatal("five-tuple log does not round-trip")
	}
	for _, r := range res.Switches.Records {
		if r.PID != int32(rig.target.PID) {
			t.Fatalf("record for foreign pid %d", r.PID)
		}
	}
}
