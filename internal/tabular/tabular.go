// Package tabular renders experiment results as aligned plain-text tables,
// the output format of the benchmark harness (every paper table and figure
// is regenerated as one or more of these).
package tabular

import (
	"fmt"
	"strings"
)

// Table is one renderable result table.
type Table struct {
	// Title is the table headline (e.g. "Figure 13: ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cells.
	Rows [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row built from the arguments.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting every value with its verb pair.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FormatFloat(v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly with adaptive precision.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Pct renders a fraction as a percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", frac*100) }

const spaces = "                                                                                                    " // 100

// writePad writes n spaces without allocating for the common short case.
func writePad(b *strings.Builder, n int) {
	for n > len(spaces) {
		b.WriteString(spaces)
		n -= len(spaces)
	}
	if n > 0 {
		b.WriteString(spaces[:n])
	}
}

// Render draws the table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", min(len(t.Title), 100)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				// Left-align the first (label) column.
				b.WriteString(c)
				writePad(&b, pad)
			} else {
				writePad(&b, pad)
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		var total int
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", max(total-2, 4)))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
