package tabular_test

import (
	"fmt"

	"exist/internal/tabular"
)

func ExampleTable_Render() {
	t := &tabular.Table{
		Header: []string{"scheme", "overhead"},
		Notes:  []string{"lower is better"},
	}
	t.AddRow("EXIST", "0.95%")
	t.AddRow("NHT", "5.63%")
	fmt.Print(t.Render())
	// Output:
	// scheme  overhead
	// ----------------
	// EXIST      0.95%
	// NHT        5.63%
	//   note: lower is better
}
