package tabular

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22")
	out := tbl.Render()
	if !strings.Contains(out, "Demo\n====") {
		t.Fatalf("missing title underline:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var header, rowA, rowB string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "name"):
			header = l
		case strings.HasPrefix(l, "alpha"):
			rowA = l
		case strings.HasPrefix(l, "b"):
			rowB = l
		}
	}
	if header == "" || rowA == "" || rowB == "" {
		t.Fatalf("rows missing:\n%s", out)
	}
	// Numeric column right-aligned: the '1' and '22' must end at the same
	// column.
	if len(rowA) != len(strings.TrimRight(rowA, " ")) {
		t.Fatalf("trailing spaces on %q", rowA)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("missing note:\n%s", out)
	}
}

func TestRenderAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"k", "v"}}
	tbl.AddRow("longlabel", "5")
	tbl.AddRow("x", "123456")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All data lines should have the same width (right-aligned last col).
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tbl := &Table{}
	tbl.AddRowf("s", 1.5, 3, int64(9), uint(2))
	row := tbl.Rows[0]
	if row[0] != "s" || row[1] != "1.50" || row[2] != "3" || row[3] != "9" || row[4] != "2" {
		t.Fatalf("AddRowf = %v", row)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234.5:  "1234",
		150.25:  "150.2",
		12.345:  "12.35",
		0.12345: "0.1235",
		-150.25: "-150.2",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.1234); got != "12.34%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestRenderNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("only", "row")
	out := tbl.Render()
	if strings.Contains(out, "---") {
		t.Fatalf("separator without header:\n%s", out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow("x", "extra", "cols")
	// Must not panic and must include all cells.
	out := tbl.Render()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cols") {
		t.Fatalf("ragged row dropped cells:\n%s", out)
	}
}
