package node

import (
	"testing"

	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/workload"
)

// goldenCell pins node.Run to the exact numbers the experiments' previous
// hand-rolled runNode produced (captured before the refactor, cfg.Seed=1,
// quick durations). Any drift here means the runtime changed a seed
// derivation, an install ordering, or a phase boundary — all of which break
// the repo's byte-identical-output determinism bar.
type goldenCell struct {
	name     string
	workload string
	threads  int
	backend  string
	seed     uint64 // spec seed before the cfg.Seed XOR convention
	want     struct {
		stats    sched.ThreadStats
		cpi      float64
		utilFrac float64
		spaceMB  float64
		msrOps   int64
	}
}

func TestRunReproducesRunNodeGolden(t *testing.T) {
	cells := []goldenCell{
		// Compute profile under EXIST (fig15's om cell) and Oracle.
		{name: "om/EXIST", workload: "om", threads: 4, backend: "EXIST", seed: 301},
		{name: "om/Oracle", workload: "om", threads: 4, backend: "Oracle", seed: 301},
		// Online profile under EXIST and NHT (fig16's mc cells).
		{name: "mc/EXIST", workload: "mc", backend: "EXIST", seed: 17},
		{name: "mc/NHT", workload: "mc", backend: "NHT", seed: 17},
	}
	cells[0].want.stats = sched.ThreadStats{Cycles: 1350958642, Insns: 1080766810, Branches: 70249436,
		Syscalls: 11, Switches: 504, Migrations: 0, CPUTime: 498933700, KernelTime: 1653540}
	cells[0].want.cpi = 1.3432157451245195
	cells[0].want.utilFrac = 0.128898235
	cells[0].want.spaceMB = 16.023048400878906
	cells[0].want.msrOps = 4

	cells[1].want.stats = sched.ThreadStats{Cycles: 1364154838, Insns: 1091323767, Branches: 70935973,
		Syscalls: 11, Switches: 505, Migrations: 0, CPUTime: 498621624, KernelTime: 1534500}
	cells[1].want.cpi = 1.32907648752783
	cells[1].want.utilFrac = 0.12503903099999999
	cells[1].want.spaceMB = 0
	cells[1].want.msrOps = 0

	cells[2].want.stats = sched.ThreadStats{Cycles: 2046233244, Insns: 2046233244, Branches: 90020730,
		Syscalls: 27206, Switches: 8250, CPUTime: 711793318, KernelTime: 97933800}
	cells[2].want.cpi = 1.147576234960241
	cells[2].want.utilFrac = 0.21262327449999999
	cells[2].want.spaceMB = 39.762245178222656
	cells[2].want.msrOps = 22

	cells[3].want.stats = sched.ThreadStats{Cycles: 1982449752, Insns: 1982449752, Branches: 87214722,
		Syscalls: 26302, Switches: 7997, CPUTime: 689605925, KernelTime: 154574391}
	cells[3].want.cpi = 1.2348978396704402
	cells[3].want.utilFrac = 0.22424477900000001
	cells[3].want.spaceMB = 80.051004409790039
	cells[3].want.msrOps = 32014

	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName(c.workload)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Run(Spec{
				Cores:     8,
				Timeslice: 1 * simtime.Millisecond,
				Dur:       500 * simtime.Millisecond,
				Seed:      1 ^ c.seed, // experiments convention: cfg.Seed ^ spec seed
				Workload:  p,
				Threads:   c.threads,
				Backend:   c.backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Stats != c.want.stats {
				t.Errorf("stats drifted:\n got %+v\nwant %+v", r.Stats, c.want.stats)
			}
			if r.CPI != c.want.cpi {
				t.Errorf("CPI = %v, want %v", r.CPI, c.want.cpi)
			}
			if r.UtilFrac != c.want.utilFrac {
				t.Errorf("UtilFrac = %v, want %v", r.UtilFrac, c.want.utilFrac)
			}
			if r.SpaceMB != c.want.spaceMB {
				t.Errorf("SpaceMB = %v, want %v", r.SpaceMB, c.want.spaceMB)
			}
			if r.MSROps != c.want.msrOps {
				t.Errorf("MSROps = %v, want %v", r.MSROps, c.want.msrOps)
			}
		})
	}
}

// The lifecycle phases must compose identically whether driven by Run or
// called individually (Provision → Attach → Run → Harvest).
func TestPhasedLifecycleMatchesRun(t *testing.T) {
	p, err := workload.ByName("mc")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Cores: 8, Timeslice: 1 * simtime.Millisecond, Dur: 200 * simtime.Millisecond,
		Seed: 9, Workload: p, Backend: "EXIST"}

	whole, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	rt := Provision(spec)
	if err := rt.Attach(); err != nil {
		t.Fatal(err)
	}
	rt.Run()
	phased, err := rt.Harvest()
	if err != nil {
		t.Fatal(err)
	}
	if whole.Stats != phased.Stats || whole.SpaceMB != phased.SpaceMB || whole.MSROps != phased.MSROps {
		t.Errorf("phased lifecycle diverged from Run:\n got %+v space=%v msr=%d\nwant %+v space=%v msr=%d",
			phased.Stats, phased.SpaceMB, phased.MSROps, whole.Stats, whole.SpaceMB, whole.MSROps)
	}
}

// Attach on a backend that needs a target but has none must fail loudly.
func TestAttachWithoutTarget(t *testing.T) {
	rt := Provision(Spec{Cores: 4, Seed: 3, Backend: "EXIST"})
	if err := rt.Attach(); err == nil {
		t.Fatal("EXIST attach without a target workload must fail")
	}
	rt = Provision(Spec{Cores: 4, Seed: 3}) // no backend: tracing disabled
	if err := rt.Attach(); err != nil {
		t.Fatalf("backendless attach: %v", err)
	}
}
