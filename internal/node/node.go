// Package node is the unified node runtime: one substrate that every
// layer of the system drives the same way. A Spec declares a node —
// machine shape, target workload, co-located load, and one tracing window
// under a named tracer backend — and the lifecycle
//
//	Spec → Provision → Attach → Run → Harvest
//
// turns it into measurements. The experiments' scheme sweeps, the cluster
// control plane's node pods, the existd daemon, and the examples all build
// nodes here, so a node behaves identically no matter which layer drives
// it (the paper's §5 premise: every scheme measured over the same node).
//
// Layering (DESIGN.md §3): node composes sched + kernel + ipt + memalloc +
// session production via the tracer registry; it sits above tracer and
// below experiments and cluster.
//
// Determinism: all randomness derives from Spec.Seed plus fixed offsets
// (co-runner SeedOffset, housekeeping +91), never from run order, so specs
// fan out across worker pools freely. Binaries are deterministic in
// (profile spec, seed), which is what lets Program memoize synthesis
// across sweep cells sharing a cell seed; machines are stateful and are
// never reused across cells.
package node

import (
	"fmt"
	"sync"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/kernel"
	"exist/internal/memalloc"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/tracer"
	"exist/internal/workload"
	"exist/internal/xrand"
)

// CoRunner is one co-located workload sharing the node.
type CoRunner struct {
	// Profile is the co-runner's workload.
	Profile workload.Profile
	// Cores optionally pins the co-runner (nil: share all cores).
	Cores []int
	// SeedOffset is added to the machine seed for the co-runner's install
	// (offsets keep co-runner streams distinct and order-independent).
	SeedOffset uint64
}

// Spec declares one node: substrate, target, co-location, and the tracing
// window. The zero value of a field selects the measurement default noted
// on it.
type Spec struct {
	// Cores sizes the machine (0: the 8-core measurement node).
	Cores int
	// HT enables hyperthread pairing (core i pairs with i+Cores/2).
	HT bool
	// Timeslice is the scheduler quantum (0: the sched default).
	Timeslice simtime.Duration
	// Seed is the machine seed; callers fold their own perturbation in
	// before provisioning (experiments XOR the run seed with cfg.Seed).
	Seed uint64
	// CollectSwitchPeriods enables the Figure 8 period sampling.
	CollectSwitchPeriods bool
	// Engine, when non-nil, shares a virtual clock across machines
	// (cluster nodes interleave on one timeline).
	Engine *simtime.Engine
	// Syscalls overrides the syscall table (nil: the kernel default).
	Syscalls []kernel.SyscallSpec

	// Workload is the target application (empty Name: no target, as for
	// cluster pods that deploy workloads later).
	Workload workload.Profile
	// Threads overrides the profile thread count (0: profile default).
	Threads int
	// TargetCores optionally pins the target (nil: profile default).
	TargetCores []int
	// Walker selects branch-exact execution at Scale; analytic otherwise.
	Walker bool
	// Scale is the walker's slow-motion factor (0: the 1e-4 default).
	Scale float64
	// Prog overrides the target binary (nil: synthesized — and memoized —
	// from the profile at the machine seed).
	Prog *binary.Program

	// CoRunners are co-located workloads sharing the machine.
	CoRunners []CoRunner
	// Housekeeping pins one kworker-style thread per core (see
	// AddHousekeeping), seeded at machine seed + 91.
	Housekeeping bool

	// Backend names the tracer backend for the window (registry name;
	// empty: no tracing — the Oracle of a sweep is the "Oracle" backend,
	// an empty Backend means the node is driven manually via Controller).
	Backend string
	// Tracer parameterizes the backend. Zero fields resolve to the window:
	// Period defaults to Dur, Scale to the resolved execution scale, Seed
	// to the machine seed; Mem defaults per MemBudget below.
	Tracer tracer.Options
	// MemBudget bounds EXIST's buffers when Tracer.Mem is nil (0: analytic
	// full-rate runs cap at a compact 64 MB so the measurement itself
	// stays cheap; space experiments pass the paper's 500 MB).
	MemBudget int64
	// Warmup runs the machine before the backend attaches (de-phasing
	// capture from process start, as production tracing always is).
	Warmup simtime.Duration
	// Dur is the measured window (0: the 2 s measurement default).
	Dur simtime.Duration
	// Drain runs the machine past the window so self-closing sessions
	// resolve (EXIST's HRT needs its closing event to fire).
	Drain simtime.Duration
	// KeepSession asks Harvest for the backend's session payload.
	KeepSession bool
}

// Result is one run's measurements.
type Result struct {
	// Machine is the provisioned machine (callers read global stats).
	Machine *sched.Machine
	// Proc is the installed target (nil without a workload).
	Proc *sched.Process
	// Backend is the attached backend (nil without one).
	Backend tracer.Backend
	// Stats are the target's scheduling/execution counters.
	Stats sched.ThreadStats
	// CPI is the target's cycles per instruction.
	CPI float64
	// UtilFrac is machine busy+kernel time over Dur×Cores capacity
	// (meaningful for zero-warmup measurement runs).
	UtilFrac float64
	// SpaceMB is the backend's trace storage, in real MB.
	SpaceMB float64
	// MSROps counts the backend's control MSR operations.
	MSROps int64
	// Session is the captured trace (KeepSession with a session-producing
	// backend).
	Session *trace.Session
}

// Overhead returns the fractional cycle-throughput loss vs a baseline run.
func (r Result) Overhead(base Result) float64 {
	if r.Stats.Cycles == 0 {
		return 0
	}
	return float64(base.Stats.Cycles)/float64(r.Stats.Cycles) - 1
}

// Inflation returns the service-time inflation vs a baseline run: the
// on-CPU wall time (user + charged kernel) per unit of retired work. For
// I/O-heavy services this is the right overhead metric — blocking slack
// hides tracing costs from raw cycle throughput, but every request still
// takes proportionally longer on-CPU, which is what queueing amplifies.
func (r Result) Inflation(base Result) float64 {
	per := func(x Result) float64 {
		if x.Stats.Cycles == 0 {
			return 0
		}
		return float64(x.Stats.CPUTime+x.Stats.KernelTime) / float64(x.Stats.Cycles)
	}
	b := per(base)
	if b == 0 {
		return 0
	}
	return per(r)/b - 1
}

// Runtime is a provisioned node stepping through the lifecycle phases.
type Runtime struct {
	// Spec is the normalized spec the node was provisioned from.
	Spec Spec
	// Machine is the live machine.
	Machine *sched.Machine
	// Proc is the installed target (nil without a workload).
	Proc *sched.Process
	// Backend is set by Attach when Spec.Backend names one.
	Backend tracer.Backend

	ctrl *core.Controller
}

// Provision builds the machine and installs the target, co-runners, and
// housekeeping. Nothing has executed yet; callers may add listeners,
// hooks, or extra threads before Attach.
func Provision(spec Spec) *Runtime {
	if spec.Cores == 0 {
		spec.Cores = 8
	}
	if spec.Dur == 0 {
		spec.Dur = 2 * simtime.Second
	}
	mcfg := sched.DefaultConfig()
	mcfg.Cores = spec.Cores
	mcfg.HTSiblings = spec.HT
	mcfg.Seed = spec.Seed
	mcfg.CollectSwitchPeriods = spec.CollectSwitchPeriods
	if spec.Timeslice > 0 {
		mcfg.Timeslice = spec.Timeslice
	}
	if spec.Engine != nil {
		mcfg.Engine = spec.Engine
	}
	if spec.Syscalls != nil {
		mcfg.Syscalls = spec.Syscalls
	}
	m := sched.NewMachine(mcfg)
	rt := &Runtime{Spec: spec, Machine: m}

	if spec.Workload.Name != "" {
		tp := spec.Workload
		if spec.Threads > 0 {
			tp.Threads = spec.Threads
		}
		prog := spec.Prog
		if prog == nil && spec.Walker {
			prog = Program(tp, mcfg.Seed)
		}
		rt.Proc = tp.Install(m, workload.InstallOpts{
			Walker:  spec.Walker,
			Scale:   spec.Scale,
			Allowed: spec.TargetCores,
			Prog:    prog,
			Seed:    mcfg.Seed,
		})
	}
	for _, co := range spec.CoRunners {
		co.Profile.Install(m, workload.InstallOpts{Allowed: co.Cores, Seed: mcfg.Seed + co.SeedOffset})
	}
	if spec.Housekeeping {
		AddHousekeeping(m, mcfg.Seed+91)
	}
	return rt
}

// Attach runs the warmup and attaches the named backend to the target.
// With no Backend it only warms up (Controller-driven nodes trace
// manually).
func (rt *Runtime) Attach() error {
	if rt.Spec.Warmup > 0 {
		rt.Machine.Run(rt.Spec.Warmup)
	}
	if rt.Spec.Backend == "" {
		return nil
	}
	if rt.Proc == nil {
		return fmt.Errorf("node: backend %q needs a target workload", rt.Spec.Backend)
	}
	b, err := tracer.New(rt.Spec.Backend, rt.tracerOptions())
	if err != nil {
		return err
	}
	if err := b.Attach(rt.Machine, rt.Proc); err != nil {
		return err
	}
	rt.Backend = b
	return nil
}

// tracerOptions resolves the window's backend options: Period defaults to
// the window, Scale to the resolved execution scale, Seed to the machine
// seed, and Mem per the MemBudget policy.
func (rt *Runtime) tracerOptions() tracer.Options {
	o := rt.Spec.Tracer
	if o.Period == 0 {
		o.Period = rt.Spec.Dur
	}
	if o.Scale == 0 {
		o.Scale = rt.execScale()
	}
	if o.Seed == 0 {
		o.Seed = rt.Machine.Cfg.Seed
	}
	if o.Mem == nil {
		if rt.Spec.MemBudget > 0 {
			o.Mem = &memalloc.Config{Budget: rt.Spec.MemBudget, PerCoreMin: 4 << 20, PerCoreMax: 128 << 20}
		} else if !rt.Spec.Walker {
			// Full-rate analytic runs fill buffers fast; cap the memory
			// the measurement itself allocates unless space is the point.
			o.Mem = &memalloc.Config{Budget: 64 << 20, PerCoreMin: 2 << 20, PerCoreMax: 16 << 20}
		}
	}
	return o
}

// execScale is the target's effective execution scale: the walker's
// slow-motion factor, or 1 for full-rate analytic execution.
func (rt *Runtime) execScale() float64 {
	if !rt.Spec.Walker {
		return 1
	}
	if rt.Spec.Scale > 0 {
		return rt.Spec.Scale
	}
	return 1e-4
}

// Run executes the window: warmup (already consumed by Attach) + the
// measured duration + the drain.
func (rt *Runtime) Run() {
	rt.Machine.Run(rt.Spec.Warmup + rt.Spec.Dur + rt.Spec.Drain)
}

// Harvest stops the backend and collects the run's measurements.
func (rt *Runtime) Harvest() (Result, error) {
	m := rt.Machine
	res := Result{Machine: m, Proc: rt.Proc, Backend: rt.Backend}
	if b := rt.Backend; b != nil {
		b.Stop(m.Eng.Now())
		if eb, ok := b.(tracer.ErrBackend); ok {
			if err := eb.Err(); err != nil {
				return res, err
			}
		}
		res.SpaceMB = b.SpaceMB()
		if mb, ok := b.(tracer.MSRBackend); ok {
			res.MSROps = mb.MSROps()
		}
		if sb, ok := b.(tracer.SessionBackend); ok && rt.Spec.KeepSession {
			res.Session = sb.Session(rt.Spec.Workload.Name)
		}
	}
	if rt.Proc != nil {
		res.Stats = rt.Proc.Stats()
		res.CPI = rt.Proc.CPI(m.Cfg.Cost)
	}
	capacity := float64(rt.Spec.Dur) * float64(m.Cfg.Cores)
	res.UtilFrac = (float64(m.TotalBusyNS()) + float64(m.TotalKernelNS())) / capacity
	return res, nil
}

// Run executes the whole lifecycle for a spec.
func Run(spec Spec) (Result, error) {
	rt := Provision(spec)
	if err := rt.Attach(); err != nil {
		return Result{Machine: rt.Machine, Proc: rt.Proc}, err
	}
	rt.Run()
	return rt.Harvest()
}

// Controller lazily creates the node's EXIST controller for callers that
// drive sessions directly (the cluster control plane, triggered tracing).
// Nodes whose window runs through Spec.Backend never need it.
func (rt *Runtime) Controller() *core.Controller {
	if rt.ctrl == nil {
		rt.ctrl = core.NewController(rt.Machine)
	}
	return rt.ctrl
}

// Install adds a workload to the provisioned node (cluster deploys apps
// onto pods after provisioning).
func (rt *Runtime) Install(p workload.Profile, opt workload.InstallOpts) *sched.Process {
	return p.Install(rt.Machine, opt)
}

// AddHousekeeping pins one kworker-style kernel housekeeping thread on
// every core: a ~20 µs burst every couple of milliseconds. Real nodes
// always have these; they are what guarantees that even a CPU-bound
// pinned target is scheduled out (and captured by OTC) within
// milliseconds.
func AddHousekeeping(m *sched.Machine, seed uint64) {
	weights := make([]float64, int(kernel.SysNanosleep)+1)
	weights[kernel.SysNanosleep] = 1
	for i := range m.Cores {
		p := m.AddProcess(fmt.Sprintf("kworker/%d", i), nil, sched.CPUSet, []int{i})
		exec := sched.NewAnalyticExec(xrand.SplitN(seed, "kworker", i), m.Cfg.Cost,
			60_000, weights, 20, 0.1, 1.2)
		m.SpawnThread(p, exec)
	}
}

// progCache memoizes synthesized binaries across sweep cells: synthesis is
// deterministic in (binary spec, seed) and Program's lazy indexes build
// under sync.Once, so one instance serves concurrent cells.
var progCache sync.Map // binary-spec literal → *binary.Program

// Program returns the profile's synthesized binary at seed, memoized.
func Program(p workload.Profile, seed uint64) *binary.Program {
	key := fmt.Sprintf("%#v", p.BinarySpec(seed))
	if v, ok := progCache.Load(key); ok {
		return v.(*binary.Program)
	}
	v, _ := progCache.LoadOrStore(key, p.Synthesize(seed))
	return v.(*binary.Program)
}
