package node

import (
	"fmt"

	"exist/internal/spec"
	"exist/internal/workload"
)

// SpecFromPlacement compiles a scenario placement (the DSL's `node`
// section) into a node Spec. The app profile is resolved by the caller
// (it may be scenario-defined rather than built-in); co-runner profiles
// are resolved through lookup, typically workload.ByName or a map over
// the document's compiled profiles. Zero placement fields keep the Spec
// zero values, so the node defaults noted on Spec still apply.
func SpecFromPlacement(p *spec.Placement, app workload.Profile, lookup func(string) (workload.Profile, error)) (Spec, error) {
	s := Spec{Workload: app}
	if p == nil {
		return s, nil
	}
	s.Cores = p.Cores
	s.HT = p.HT
	s.Threads = p.Threads
	s.TargetCores = p.TargetCores
	s.Seed = p.Seed
	s.CollectSwitchPeriods = p.CollectSwitchPeriods
	for _, co := range p.CoRunners {
		prof, err := lookup(co.Profile)
		if err != nil {
			return Spec{}, fmt.Errorf("node: co-runner %q: %w", co.Profile, err)
		}
		s.CoRunners = append(s.CoRunners, CoRunner{
			Profile:    prof,
			Cores:      co.Cores,
			SeedOffset: co.SeedOffset,
		})
	}
	return s, nil
}
