package hotbench

import (
	"exist/internal/binary"
	"exist/internal/ipt"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// tracerSink feeds walker batches straight into a tracer's staged
// packet-generation path, as the scheduler's segment loop does.
type tracerSink struct {
	tr  *ipt.Tracer
	now simtime.Time
}

// EmitBranches implements binary.BranchSink.
func (s *tracerSink) EmitBranches(evs []binary.BranchEvent) { s.tr.OnBranchBatch(s.now, evs) }

// TracerHotOnce replays the canned event stream through the tracer's batched
// ingestion path in walker-sized batches and returns the bytes emitted.
func TracerHotOnce(tr *ipt.Tracer, evs []binary.BranchEvent) int64 {
	before := tr.Stats.Bytes
	const batch = 128 // matches the walker's emission batch size
	for i := 0; i < len(evs); i += batch {
		j := i + batch
		if j > len(evs) {
			j = len(evs)
		}
		tr.OnBranchBatch(0, evs[i:j])
	}
	tr.Flush()
	return tr.Stats.Bytes - before
}

// Events replays prog for the given cycle budget and returns the canned
// ground-truth branch stream. The tracer hot-path benchmarks feed this
// stream through the packet-generation path without paying for the walk
// on every iteration.
func Events(prog *binary.Program, seed uint64, budget int64) []binary.BranchEvent {
	w := binary.NewWalker(prog, xrand.Split(seed, "hotbench/events"))
	evs := make([]binary.BranchEvent, 0, budget/16)
	var used int64
	for used < budget {
		n, _, _ := w.Run(budget-used, func(ev binary.BranchEvent) {
			evs = append(evs, ev)
		})
		if n <= 0 {
			break
		}
		used += n
	}
	return evs
}

// NewHotTracer returns an enabled tracer writing into a ring-mode chain of
// the given size; ring mode keeps repeated benchmark iterations in steady
// state (the chain never stops, so every iteration does identical work).
func NewHotTracer(size int) *ipt.Tracer {
	tr := ipt.NewTracer(0)
	if err := tr.SetOutput(ipt.NewToPA([]int{size}, true)); err != nil {
		panic(err)
	}
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		panic(err)
	}
	return tr
}

// SchedBench is a reusable walker-segment benchmark machine: a small
// oversubscribed node running branch-exact walker threads under an enabled
// per-core tracer, the configuration that dominates the walker experiments
// (fig14-16, tab03/04). RunWindow advances the simulation one fixed window
// of virtual time; iterations continue the same timeline, so per-window
// work is steady.
type SchedBench struct {
	// M is the machine under test.
	M *sched.Machine
	// Window is the virtual duration one RunWindow covers.
	Window simtime.Duration
}

// NewSchedBench builds the canned benchmark machine.
func NewSchedBench(seed uint64) *SchedBench {
	cfg := sched.DefaultConfig()
	cfg.Cores = 4
	cfg.HTSiblings = true
	cfg.Timeslice = 500 * simtime.Microsecond
	cfg.Seed = seed
	m := sched.NewMachine(cfg)

	prog := Program(seed)
	p := m.AddProcess("hot-target", prog, sched.CPUShare, m.AllCores())
	for i := 0; i < 6; i++ {
		exec := sched.NewWalkerExec(prog, xrand.SplitN(seed, "hotbench/sched", i), cfg.Cost, 1e-3).
			WithPacing(200*simtime.Microsecond, []float64{1})
		m.SpawnThread(p, exec)
	}
	for _, c := range m.Cores {
		// Ring output keeps tracers in steady state across windows.
		if err := c.Tracer.SetOutput(ipt.NewToPA([]int{1 << 20}, true)); err != nil {
			panic(err)
		}
		if err := c.Tracer.SetCR3Match(p.CR3); err != nil {
			panic(err)
		}
		if err := c.Tracer.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
			panic(err)
		}
	}
	return &SchedBench{M: m, Window: 2 * simtime.Millisecond}
}

// RunWindow advances the machine one benchmark window and returns the
// trace bytes produced during it.
func (s *SchedBench) RunWindow() int64 {
	var before int64
	for _, c := range s.M.Cores {
		before += c.Tracer.Stats.Bytes
	}
	s.M.Run(s.M.Eng.Now() + s.Window)
	var after int64
	for _, c := range s.M.Cores {
		after += c.Tracer.Stats.Bytes
	}
	return after - before
}
