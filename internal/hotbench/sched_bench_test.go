package hotbench

import (
	"testing"
)

// TestSchedWindowAllocs pins the steady-state allocation rate of the
// segment loop. Batched emission means segments no longer allocate a
// closure each; what remains is the engine's event traffic. A regression
// back to per-segment allocation trips the bound.
func TestSchedWindowAllocs(t *testing.T) {
	s := NewSchedBench(1)
	for i := 0; i < 4; i++ {
		s.RunWindow() // warm buffer pools and slice capacities
	}
	avg := testing.AllocsPerRun(8, func() { s.RunWindow() })
	if avg > 160 {
		t.Fatalf("sched window allocates too much: %.1f allocs/run (want <= 160)", avg)
	}
}

// BenchmarkSchedHot measures the walker segment loop end to end: the
// scheduler dispatching oversubscribed walker threads, the per-branch
// pipeline into the enabled core tracers, and the event-queue traffic the
// segments generate. One op is one 2 ms virtual window on the canned
// 4-core machine.
func BenchmarkSchedHot(b *testing.B) {
	s := NewSchedBench(1)
	bytes := s.RunWindow() // warm up pools and measure nominal volume
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunWindow()
	}
}

// BenchmarkTracerHot measures the tracer ingestion path on a canned
// ground-truth event stream: batched TNT/TIP encoding plus staged packet
// output into a ring ToPA.
func BenchmarkTracerHot(b *testing.B) {
	prog := Program(1)
	evs := Events(prog, 1, 2_000_000)
	tr := NewHotTracer(1 << 20)
	b.SetBytes(TracerHotOnce(tr, evs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TracerHotOnce(tr, evs)
	}
}
