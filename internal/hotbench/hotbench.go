// Package hotbench builds deterministic fixtures for the trace-pipeline
// microbenchmarks (BenchmarkDecodeHot, BenchmarkEncodeHot) and for the
// hot-path measurements existbench -benchjson records: a synthetic program
// plus a realistic packet stream produced by driving the PT tracer model
// with a ground-truth walker, including thread migrations so the decoder's
// sidecar and segment-ordering paths are exercised.
package hotbench

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// Program synthesizes the benchmark binary. The shape (function count,
// branch mix) matches a mid-size service profile.
func Program(seed uint64) *binary.Program {
	return binary.Synthesize(binary.DefaultSpec(fmt.Sprintf("hot-%d", seed), 3))
}

// Session encodes one per-core packet stream by walking prog for the given
// cycle budget, rotating the scheduled-in thread every slice to populate
// the five-tuple sidecar. The result is a decodable session whose volume
// scales linearly with budget.
func Session(prog *binary.Program, seed uint64, budget int64) *trace.Session {
	tr := ipt.NewTracer(0)
	if err := tr.SetOutput(ipt.NewSingleToPA(64 << 20)); err != nil {
		panic(err)
	}
	const cr3 = 0x1000
	if err := tr.SetCR3Match(cr3); err != nil {
		panic(err)
	}

	sess := &trace.Session{ID: "hotbench", Workload: prog.Name, PID: 1, Scale: 1}
	w := binary.NewWalker(prog, xrand.Split(seed, "hotbench/walk"))

	// Rotate among four threads in ~50k-cycle slices: each slice opens
	// with a five-tuple record and a context switch (PIP + TSC + PGE), the
	// packet pattern OTC produces for same-process thread switches.
	const slice = 50_000
	const tids = 4
	now := simtime.Time(0)
	if err := tr.WriteCtl(now, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		panic(err)
	}
	var used int64
	for i := 0; used < budget; i++ {
		tid := int32(1 + i%tids)
		sess.Switches.Add(kernel.SwitchRecord{TS: now, CPU: 0, PID: 1, TID: tid, Op: kernel.OpIn})
		tr.ContextSwitch(now, cr3, w.CurrentAddr())
		n, _, _ := w.Run(slice, func(ev binary.BranchEvent) {
			tr.OnBranch(now, ev)
		})
		used += n
		now += simtime.Time(slice)
		sess.Switches.Add(kernel.SwitchRecord{TS: now, CPU: 0, PID: 1, TID: tid, Op: kernel.OpOut})
	}
	if err := tr.WriteCtl(now, ipt.DefaultCtl()); err != nil {
		panic(err)
	}
	tr.Flush()
	out := tr.Output()
	sess.End = now
	sess.Cores = append(sess.Cores, trace.CoreTrace{
		Core: 0, Data: out.Bytes(), Stopped: out.Stopped(), DroppedBytes: out.Dropped(),
	})
	out.Release()
	return sess
}

// EncodeOnce drives the tracer encode path (the per-branch fast path plus
// packet emission into a ToPA chain) for one walk of the given budget and
// returns the bytes produced. Benchmarks call it per iteration.
func EncodeOnce(prog *binary.Program, seed uint64, budget int64) int64 {
	tr := ipt.NewTracer(0)
	topa := ipt.NewSingleToPA(64 << 20)
	if err := tr.SetOutput(topa); err != nil {
		panic(err)
	}
	if err := tr.WriteCtl(0, ipt.DefaultCtl()|ipt.CtlTraceEn); err != nil {
		panic(err)
	}
	w := binary.NewWalker(prog, xrand.Split(seed, "hotbench/encode"))
	sink := &tracerSink{tr: tr}
	var used int64
	for used < budget {
		n, _, _ := w.RunBatch(budget-used, sink)
		if n <= 0 {
			break
		}
		used += n
	}
	tr.Flush()
	topa.Release()
	return tr.Stats.Bytes
}
