package hotbench

import (
	"bytes"
	"testing"

	"exist/internal/trace"
)

// marshalFixture is the shared session the wire-format benchmarks run
// on: the decode-hot fixture (4M cycle budget, real tracer output).
func marshalFixture(b *testing.B) *trace.Session {
	b.Helper()
	prog := Program(1)
	return Session(prog, 1, 4_000_000)
}

// BenchmarkMarshalHot measures session serialization across wire
// formats. SetBytes is the v1-equivalent payload in every variant so the
// MB/s figures compare like for like.
func BenchmarkMarshalHot(b *testing.B) {
	s := marshalFixture(b)
	v1Bytes := int64(trace.V1Size(s))
	b.Run("v1", func(b *testing.B) {
		b.SetBytes(v1Bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.MarshalV1()
		}
	})
	b.Run("v2raw", func(b *testing.B) {
		b.SetBytes(v1Bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.MarshalMode(trace.EncodeRaw)
		}
	})
	b.Run("v2packed", func(b *testing.B) {
		b.SetBytes(v1Bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Marshal()
		}
	})
}

// BenchmarkUnmarshalHot measures session parsing for each format.
func BenchmarkUnmarshalHot(b *testing.B) {
	s := marshalFixture(b)
	v1Bytes := int64(trace.V1Size(s))
	for _, v := range []struct {
		name string
		blob []byte
	}{
		{"v1", s.MarshalV1()},
		{"v2raw", s.MarshalMode(trace.EncodeRaw)},
		{"v2packed", s.Marshal()},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(v1Bytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.UnmarshalSession(v.blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMarshalFixtureCompression pins the headline size win on the real
// fixture: packed v2 must be at least 3x smaller than v1.
func TestMarshalFixtureCompression(t *testing.T) {
	prog := Program(1)
	s := Session(prog, 1, 4_000_000)
	v1 := s.MarshalV1()
	v2 := s.Marshal()
	if got, err := trace.UnmarshalSession(v2); err != nil {
		t.Fatal(err)
	} else {
		for i := range s.Cores {
			if !bytes.Equal(got.Cores[i].Data, s.Cores[i].Data) {
				t.Fatalf("core %d roundtrip mismatch", i)
			}
		}
	}
	ratio := float64(len(v1)) / float64(len(v2))
	if ratio < 3 {
		t.Fatalf("compression ratio %.2fx < 3x (v1 %d, v2 %d)", ratio, len(v1), len(v2))
	}
}
