// Package coverage implements EXIST's Repetition-aware Coverage Optimizer
// (RCO, §3.4 of the paper): the cluster-level component that decides *how
// long* to trace (temporal decider), *which repetitions* of an application
// to trace (spatial sampler), and how to merge per-worker traces into an
// augmented result (redundancy removal plus gap complementing).
package coverage

import (
	"sort"

	"exist/internal/decode"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

// Complexity carries the three signals the temporal decider weighs
// (§3.4): operator-assigned priority, binary size, and the application's
// stability history.
type Complexity struct {
	// Priority is the manager-defined priority, 1 (lowest) to 10.
	Priority int
	// BinaryBytes is the size of the application binary.
	BinaryBytes uint64
	// PastIssues counts previously recorded stability incidents.
	PastIssues int
	// RefOverheadPct, when known, is the pre-measured reference tracing
	// overhead on this application; the decider shortens the window for
	// workloads that are more sensitive.
	RefOverheadPct float64
}

// Period bounds from the paper's implementation (§4).
const (
	MinPeriod = 100 * simtime.Millisecond
	MaxPeriod = 2 * simtime.Second
)

// DecidePeriod maps application complexity to a tracing period: more
// complex programs need longer windows to cover their execution. The
// weighted sum uses priority (0.5), binary size (0.3), and stability
// history (0.2), then shrinks for overhead-sensitive workloads.
func DecidePeriod(c Complexity) simtime.Duration {
	prio := clamp01(float64(c.Priority) / 10)
	size := clamp01(float64(c.BinaryBytes) / (64 << 20)) // 64 MB ~ very large binary
	issues := clamp01(float64(c.PastIssues) / 10)
	score := 0.5*prio + 0.3*size + 0.2*issues
	period := MinPeriod + simtime.Duration(score*float64(MaxPeriod-MinPeriod))
	if c.RefOverheadPct > 1 {
		// Overhead-sensitive application: halve the window.
		period /= 2
	}
	if period < MinPeriod {
		period = MinPeriod
	}
	if period > MaxPeriod {
		period = MaxPeriod
	}
	// Round to the 100 ms grid operators configure.
	grid := 100 * simtime.Millisecond
	period = (period / grid) * grid
	if period < MinPeriod {
		period = MinPeriod
	}
	return period
}

// Purpose is why a trace is requested; it changes the sampling policy.
type Purpose int

const (
	// PurposeAnomaly: a performance anomaly is being diagnosed — all
	// involved entities are traced, since abnormal behaviours are
	// distinct.
	PurposeAnomaly Purpose = iota
	// PurposeProfiling: routine software profiling — repetitions behave
	// alike, so a sample suffices.
	PurposeProfiling
)

// Repetition is one deployed instance (worker) of an application.
type Repetition struct {
	// Node is the hosting node.
	Node string
	// Anomalous marks instances implicated in the anomaly under
	// diagnosis.
	Anomalous bool
	// Down marks instances on failed (lease-expired) nodes; the sampler
	// never selects them.
	Down bool
}

// SampleSpec parameterizes the spatial sampler.
type SampleSpec struct {
	// Purpose selects the policy.
	Purpose Purpose
	// Priority is the application priority (1-10); higher-priority
	// applications are traced more.
	Priority int
	// BaseFraction is the profiling sampling floor (default 0.1).
	BaseFraction float64
}

// SelectRepetitions returns the indices of repetitions to trace.
// Anomaly diagnosis traces every anomalous entity; profiling samples by
// priority and deployment density, with a deployment threshold
// guaranteeing at least one traced instance even for applications
// deployed once.
func SelectRepetitions(reps []Repetition, spec SampleSpec, rng *xrand.Rand) []int {
	if len(reps) == 0 {
		return nil
	}
	if spec.Purpose == PurposeAnomaly {
		var out []int
		for i, r := range reps {
			if r.Anomalous {
				out = append(out, i)
			}
		}
		if len(out) == 0 {
			// Nothing flagged: fall back to tracing everything involved.
			for i := range reps {
				out = append(out, i)
			}
		}
		return out
	}
	base := spec.BaseFraction
	if base <= 0 {
		base = 0.1
	}
	// Higher priority and broader deployment raise the fraction; the
	// deployment threshold keeps n >= 1.
	frac := base * (1 + float64(spec.Priority)/5)
	if len(reps) >= 100 {
		frac *= 1.5
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(reps))*frac + 0.5)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(reps))[:n]
	sort.Ints(perm)
	return perm
}

// SelectReplacements re-runs the spatial sampler after failure: it picks
// up to n replacement repetitions for lost sessions among instances that
// are healthy and not already traced for the request (used maps node name
// to true for traced instances). Selection is random via rng so the
// replacement choice carries no placement bias; indices come back sorted.
// When fewer candidates than n remain, all of them are returned — the
// request degrades to partial coverage instead of failing.
func SelectReplacements(reps []Repetition, used map[string]bool, n int, rng *xrand.Rand) []int {
	if n <= 0 {
		return nil
	}
	var cands []int
	for i, r := range reps {
		if !r.Down && !used[r.Node] {
			cands = append(cands, i)
		}
	}
	if len(cands) <= n {
		return cands
	}
	perm := rng.Perm(len(cands))[:n]
	out := make([]int, 0, n)
	for _, p := range perm {
		out = append(out, cands[p])
	}
	sort.Ints(out)
	return out
}

// Augmented is the cluster-level merge of per-worker reconstructions:
// redundancy removed, gaps complemented (§3.4, Figure 20).
type Augmented struct {
	// Merged is the combined reconstruction.
	Merged *decode.Result
	// Workers is the number of inputs merged.
	Workers int
	// DistinctFuncs is the union function coverage.
	DistinctFuncs int
	// NewFuncsPerWorker traces the marginal benefit curve: functions
	// first covered by the k-th worker.
	NewFuncsPerWorker []int
}

// Merge combines per-worker reconstructions of the same program.
func Merge(results []*decode.Result) *Augmented {
	a := &Augmented{Workers: len(results)}
	out := &decode.Result{
		ByThread:    make(map[int32][]trace.Event),
		FuncEntries: make(map[int32]int64),
	}
	seen := map[int32]bool{}
	for _, r := range results {
		newFuncs := 0
		for fn := range r.FuncEntries {
			if !seen[fn] {
				seen[fn] = true
				newFuncs++
			}
		}
		a.NewFuncsPerWorker = append(a.NewFuncsPerWorker, newFuncs)
		out.Merge(r)
	}
	a.Merged = out
	a.DistinctFuncs = len(seen)
	return a
}

// SimilarityCurve reports, for each worker count k (1..n), the fraction
// of the k-th worker's functions already covered by workers 1..k-1 — the
// redundancy that makes exhaustive tracing wasteful (Figure 12).
func SimilarityCurve(results []*decode.Result) []float64 {
	seen := map[int32]bool{}
	out := make([]float64, 0, len(results))
	for _, r := range results {
		if len(r.FuncEntries) == 0 {
			out = append(out, 0)
			continue
		}
		dup := 0
		for fn := range r.FuncEntries {
			if seen[fn] {
				dup++
			}
		}
		out = append(out, float64(dup)/float64(len(r.FuncEntries)))
		for fn := range r.FuncEntries {
			seen[fn] = true
		}
	}
	return out
}

// CoverageCurve reports cumulative distinct-function coverage (relative
// to totalFuncs) after each worker.
func CoverageCurve(results []*decode.Result, totalFuncs int) []float64 {
	seen := map[int32]bool{}
	out := make([]float64, 0, len(results))
	for _, r := range results {
		for fn := range r.FuncEntries {
			seen[fn] = true
		}
		f := 0.0
		if totalFuncs > 0 {
			f = float64(len(seen)) / float64(totalFuncs)
		}
		out = append(out, f)
	}
	return out
}

// clamp01 clips v to [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
