package coverage_test

import (
	"fmt"

	"exist/internal/coverage"
	"exist/internal/xrand"
)

func ExampleDecidePeriod() {
	simple := coverage.DecidePeriod(coverage.Complexity{Priority: 2, BinaryBytes: 2 << 20})
	complexApp := coverage.DecidePeriod(coverage.Complexity{Priority: 9, BinaryBytes: 48 << 20, PastIssues: 6})
	fmt.Println(simple, complexApp)
	// Output: 300.000ms 1.600s
}

func ExampleSelectRepetitions() {
	// An anomaly on two of four instances: trace exactly those.
	reps := []coverage.Repetition{
		{Node: "node-0"},
		{Node: "node-1", Anomalous: true},
		{Node: "node-2"},
		{Node: "node-3", Anomalous: true},
	}
	picked := coverage.SelectRepetitions(reps, coverage.SampleSpec{Purpose: coverage.PurposeAnomaly}, xrand.New(1))
	fmt.Println(picked)
	// Output: [1 3]
}
