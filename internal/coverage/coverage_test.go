package coverage

import (
	"testing"

	"exist/internal/decode"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/xrand"
)

func TestDecidePeriodBounds(t *testing.T) {
	lo := DecidePeriod(Complexity{})
	if lo != MinPeriod {
		t.Fatalf("trivial app period = %v, want %v", lo, MinPeriod)
	}
	hi := DecidePeriod(Complexity{Priority: 10, BinaryBytes: 256 << 20, PastIssues: 50})
	if hi != MaxPeriod {
		t.Fatalf("complex app period = %v, want %v", hi, MaxPeriod)
	}
}

func TestDecidePeriodMonotonic(t *testing.T) {
	a := DecidePeriod(Complexity{Priority: 2, BinaryBytes: 1 << 20})
	b := DecidePeriod(Complexity{Priority: 8, BinaryBytes: 32 << 20, PastIssues: 5})
	if b <= a {
		t.Fatalf("more complex app got shorter period: %v vs %v", a, b)
	}
}

func TestDecidePeriodGridAndSensitivity(t *testing.T) {
	p := DecidePeriod(Complexity{Priority: 7, BinaryBytes: 16 << 20, PastIssues: 3})
	if p%(100*simtime.Millisecond) != 0 {
		t.Fatalf("period %v not on the 100ms grid", p)
	}
	sensitive := DecidePeriod(Complexity{Priority: 7, BinaryBytes: 16 << 20, PastIssues: 3, RefOverheadPct: 2.5})
	if sensitive >= p {
		t.Fatalf("overhead-sensitive app should get a shorter window: %v vs %v", sensitive, p)
	}
	if sensitive < MinPeriod {
		t.Fatalf("period %v below floor", sensitive)
	}
}

func TestSelectRepetitionsAnomaly(t *testing.T) {
	reps := []Repetition{{Node: "a"}, {Node: "b", Anomalous: true}, {Node: "c", Anomalous: true}}
	got := SelectRepetitions(reps, SampleSpec{Purpose: PurposeAnomaly}, xrand.New(1))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("anomaly selection = %v, want [1 2]", got)
	}
	// Nothing flagged: trace everything involved.
	reps2 := []Repetition{{Node: "a"}, {Node: "b"}}
	got2 := SelectRepetitions(reps2, SampleSpec{Purpose: PurposeAnomaly}, xrand.New(1))
	if len(got2) != 2 {
		t.Fatalf("unflagged anomaly selection = %v", got2)
	}
}

func TestSelectRepetitionsProfiling(t *testing.T) {
	reps := make([]Repetition, 40)
	lowPrio := SelectRepetitions(reps, SampleSpec{Purpose: PurposeProfiling, Priority: 1}, xrand.New(2))
	highPrio := SelectRepetitions(reps, SampleSpec{Purpose: PurposeProfiling, Priority: 10}, xrand.New(2))
	if len(highPrio) <= len(lowPrio) {
		t.Fatalf("priority must raise sampling: %d vs %d", len(lowPrio), len(highPrio))
	}
	if len(lowPrio) < 1 {
		t.Fatal("deployment threshold violated")
	}
	// Single deployment always traced.
	one := SelectRepetitions([]Repetition{{Node: "x"}}, SampleSpec{Purpose: PurposeProfiling, Priority: 1}, xrand.New(3))
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("single deployment selection = %v", one)
	}
	if SelectRepetitions(nil, SampleSpec{}, xrand.New(1)) != nil {
		t.Fatal("empty repetitions should yield nil")
	}
}

func TestSelectReplacements(t *testing.T) {
	reps := []Repetition{
		{Node: "a"},             // already traced
		{Node: "b", Down: true}, // failed
		{Node: "c"},             // candidate
		{Node: "d"},             // candidate
		{Node: "e"},             // candidate
	}
	used := map[string]bool{"a": true}

	// Fewer candidates than requested: all of them come back.
	all := SelectReplacements(reps, used, 10, xrand.New(1))
	if len(all) != 3 || all[0] != 2 || all[1] != 3 || all[2] != 4 {
		t.Fatalf("replacements = %v, want [2 3 4]", all)
	}
	// Down and used instances are never selected.
	for i := 0; i < 50; i++ {
		got := SelectReplacements(reps, used, 1, xrand.New(uint64(i)))
		if len(got) != 1 {
			t.Fatalf("want one replacement, got %v", got)
		}
		if r := reps[got[0]]; r.Down || used[r.Node] {
			t.Fatalf("selected unusable repetition %+v", r)
		}
	}
	// Nothing healthy and untraced left: empty, not an error.
	if got := SelectReplacements(reps, map[string]bool{"a": true, "c": true, "d": true, "e": true}, 1, xrand.New(1)); len(got) != 0 {
		t.Fatalf("exhausted pool gave %v", got)
	}
	if got := SelectReplacements(reps, used, 0, xrand.New(1)); got != nil {
		t.Fatalf("n=0 gave %v", got)
	}
	// Deterministic for a fixed seed.
	a := SelectReplacements(reps, used, 2, xrand.New(7))
	b := SelectReplacements(reps, used, 2, xrand.New(7))
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
}

func mkResult(funcs ...int32) *decode.Result {
	r := &decode.Result{
		ByThread:    map[int32][]trace.Event{1: {{TID: 1}}},
		FuncEntries: map[int32]int64{},
	}
	for _, f := range funcs {
		r.FuncEntries[f] += 3
	}
	r.Events = int64(len(funcs))
	return r
}

func TestMergeAugmentation(t *testing.T) {
	a := Merge([]*decode.Result{mkResult(1, 2, 3), mkResult(2, 3, 4), mkResult(3, 4)})
	if a.Workers != 3 || a.DistinctFuncs != 4 {
		t.Fatalf("augmented = %+v", a)
	}
	want := []int{3, 1, 0}
	for i, w := range want {
		if a.NewFuncsPerWorker[i] != w {
			t.Fatalf("marginal coverage = %v, want %v", a.NewFuncsPerWorker, want)
		}
	}
	if a.Merged.FuncEntries[3] != 9 {
		t.Fatalf("merged histogram wrong: %v", a.Merged.FuncEntries)
	}
}

func TestSimilarityCurveRises(t *testing.T) {
	curve := SimilarityCurve([]*decode.Result{mkResult(1, 2, 3, 4), mkResult(1, 2, 3, 5), mkResult(1, 2, 3, 4)})
	if curve[0] != 0 {
		t.Fatalf("first worker similarity = %v, want 0", curve[0])
	}
	if curve[1] != 0.75 || curve[2] != 1.0 {
		t.Fatalf("similarity curve = %v", curve)
	}
}

func TestCoverageCurve(t *testing.T) {
	curve := CoverageCurve([]*decode.Result{mkResult(1, 2), mkResult(2, 3)}, 4)
	if curve[0] != 0.5 || curve[1] != 0.75 {
		t.Fatalf("coverage curve = %v", curve)
	}
	empty := CoverageCurve(nil, 0)
	if len(empty) != 0 {
		t.Fatal("empty inputs should yield empty curve")
	}
}
