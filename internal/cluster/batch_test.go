package cluster

import (
	"testing"

	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

// batchedCluster builds a walker-backed cluster with upload batching on
// and the given injector.
func batchedCluster(t *testing.T, nodes, batch int, fc *faults.Config) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 4
	cfg.Seed = 3
	cfg.UploadBatch = batch
	if fc != nil {
		cfg.Faults = faults.New(*fc)
	}
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return c
}

func requestAndRun(t *testing.T, c *Cluster, name string, until simtime.Time) *TraceRequest {
	t.Helper()
	req, err := c.Request(name, TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(until)
	return req
}

func TestBatchedUploadAmortizesPuts(t *testing.T) {
	c := batchedCluster(t, 6, 4, nil)
	req := requestAndRun(t, c, "batched", 5*simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	landed := int64(len(req.SessionKeys))
	if landed < 2 {
		t.Fatalf("only %d sessions landed", landed)
	}
	if c.Uploads.Sessions != landed {
		t.Fatalf("ledger sessions %d != landed %d", c.Uploads.Sessions, landed)
	}
	if c.Uploads.Batches >= landed {
		t.Fatalf("batching ineffective: %d PUTs for %d sessions", c.Uploads.Batches, landed)
	}
	if c.OSS.Puts() != c.Uploads.Batches {
		t.Fatalf("store puts %d != ledger batches %d", c.OSS.Puts(), c.Uploads.Batches)
	}
	// Every session is individually retrievable and decodes, and the
	// v2 wire volume undercuts the v1-equivalent volume.
	for _, key := range req.SessionKeys {
		blob, ok := c.OSS.Get(key)
		if !ok {
			t.Fatalf("session %s missing from store", key)
		}
		if _, err := trace.UnmarshalSession(blob); err != nil {
			t.Fatalf("session %s does not decode: %v", key, err)
		}
	}
	if c.Uploads.WireBytes >= c.Uploads.V1Bytes {
		t.Fatalf("no compression: wire %d >= v1 %d", c.Uploads.WireBytes, c.Uploads.V1Bytes)
	}
}

func TestBatchedUploadMatchesUnbatchedResults(t *testing.T) {
	// Batching changes PUT timing, not outcomes: the same deployment must
	// land the same sessions with the same decoded rows.
	run := func(batch int) (*TraceRequest, *Cluster) {
		c := batchedCluster(t, 6, batch, nil)
		return requestAndRun(t, c, "same", 5*simtime.Second), c
	}
	r1, c1 := run(0)
	r2, c2 := run(4)
	if r1.Phase != r2.Phase || len(r1.SessionKeys) != len(r2.SessionKeys) {
		t.Fatalf("batched run diverged: %s/%d vs %s/%d",
			r1.Phase, len(r1.SessionKeys), r2.Phase, len(r2.SessionKeys))
	}
	if c1.ODPS.Len() != c2.ODPS.Len() {
		t.Fatalf("decoded rows diverged: %d vs %d", c1.ODPS.Len(), c2.ODPS.Len())
	}
	if c1.Uploads.WireBytes != c2.Uploads.WireBytes {
		t.Fatalf("wire volume diverged: %d vs %d", c1.Uploads.WireBytes, c2.Uploads.WireBytes)
	}
	if c2.OSS.Puts() >= c1.OSS.Puts() {
		t.Fatalf("batching did not reduce puts: %d vs %d", c2.OSS.Puts(), c1.OSS.Puts())
	}
}

func TestBatchedUploadRetriesAsUnit(t *testing.T) {
	c := batchedCluster(t, 6, 3, &faults.Config{Seed: 11, PutFailProb: 0.4})
	req := requestAndRun(t, c, "flaky-batch", 10*simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	if c.OSS.Failures() == 0 {
		t.Skip("injector never fired for this seed; adjust PutFailProb")
	}
	if c.Mgmt.Retries == 0 {
		t.Fatal("failures occurred but no retries recorded")
	}
	// Recovery is complete: all planned sessions landed exactly once.
	if int64(len(req.SessionKeys)) != c.Uploads.Sessions {
		t.Fatalf("landed %d != ledger %d", len(req.SessionKeys), c.Uploads.Sessions)
	}
	seen := map[string]bool{}
	for _, k := range req.SessionKeys {
		if seen[k] {
			t.Fatalf("session %s recorded twice", k)
		}
		seen[k] = true
		if _, ok := c.OSS.Get(k); !ok {
			t.Fatalf("recorded session %s not in store", k)
		}
	}
	if req.Message != "" {
		t.Fatalf("stale message after recovery: %q", req.Message)
	}
}

func TestBatchedUploadExhaustionResamplesOnce(t *testing.T) {
	// Every PUT fails: each batch exhausts its retries and every slot in
	// it re-samples, eventually giving up after ResampleMax attempts. The
	// slot ledger must balance exactly — no session may be double-counted
	// as both lost and landed, or re-sampled twice per failure.
	c := batchedCluster(t, 3, 2, &faults.Config{Seed: 7, PutFailProb: 1})
	req := requestAndRun(t, c, "doomed-batch", 30*simtime.Second)
	if !req.Phase.Terminal() {
		t.Fatalf("request hung in %s", req.Phase)
	}
	if len(req.SessionKeys) != 0 {
		t.Fatalf("sessions landed despite total PUT failure: %v", req.SessionKeys)
	}
	if req.Phase != PhaseFailed {
		t.Fatalf("phase = %s, want Failed with zero coverage", req.Phase)
	}
	if req.Lost+len(req.SessionKeys) != req.Planned {
		t.Fatalf("slots: lost %d + landed %d != planned %d",
			req.Lost, len(req.SessionKeys), req.Planned)
	}
	if c.Uploads.Sessions != 0 || c.Uploads.Batches != 0 {
		t.Fatalf("ledger counted phantom uploads: %+v", c.Uploads)
	}
}

func TestBatchedUploadDropsTerminalRequests(t *testing.T) {
	// A deadline fires while a batch is held back (or retrying): the
	// terminal request's sessions must be dropped at delivery without
	// completing against a resolved request.
	c := batchedCluster(t, 6, 4, &faults.Config{Seed: 13, PutFailProb: 0.9})
	req, err := c.Request("deadline-batch", TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly,
		Period: 200 * simtime.Millisecond, Deadline: 1500 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(20 * simtime.Second)
	if !req.Phase.Terminal() {
		t.Fatalf("request hung in %s", req.Phase)
	}
	// Ledger consistency regardless of which side of the deadline each
	// batch landed on.
	if int64(len(req.SessionKeys)) != c.Uploads.Sessions {
		t.Fatalf("landed %d != ledger %d", len(req.SessionKeys), c.Uploads.Sessions)
	}
	if req.Lost+len(req.SessionKeys) > req.Planned {
		t.Fatalf("over-counted slots: lost %d + landed %d > planned %d",
			req.Lost, len(req.SessionKeys), req.Planned)
	}
}
