package cluster

import (
	"fmt"
	"strings"
	"testing"

	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/simtime"
)

// shardScenario drives one replicated lite cluster through a fixed
// request stream under the given fault shape and renders a summary that
// must be byte-identical across shard counts when the merged timeline
// is (per-shard resource versions, per-shard election counters, and the
// CPU ledger are deliberately excluded — those are allowed to differ).
func shardScenario(t *testing.T, shards, replicas int, fc *faults.Config) (*Cluster, string) {
	t.Helper()
	c := liteCluster(t, func(cfg *Config) {
		cfg.Nodes = 30
		cfg.Seed = 7
		cfg.Replicas = replicas
		cfg.Shards = shards
		if fc != nil {
			cfg.Faults = faults.New(*fc)
		}
	})
	for i := 0; i < 18; i++ {
		name := fmt.Sprintf("r-%02d", i)
		c.Eng.AfterDetached(simtime.Duration(i)*150*simtime.Millisecond, func(simtime.Time) {
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly,
				Period: 120 * simtime.Millisecond, Deadline: 25 * simtime.Second,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	c.Run(30 * simtime.Second)

	var b strings.Builder
	for _, r := range c.API.List() {
		fmt.Fprintf(&b, "%s phase=%s planned=%d keys=%v lost=%d resampled=%d msg=%q\n",
			r.Name, r.Phase, r.Planned, r.SessionKeys, r.Lost, r.Resampled, r.Message)
	}
	fmt.Fprintf(&b, "syncs=%d requeues=%d conflicts=%d shed=%d resamples=%d relists=%d\n",
		c.Mgmt.Syncs, c.Mgmt.Requeues, c.Mgmt.Conflicts, c.Mgmt.Shed,
		c.Mgmt.Resamples, c.Mgmt.Relists)
	fmt.Fprintf(&b, "sessions=%d batches=%d wire=%d oss_puts=%d odps=%d\n",
		c.Uploads.Sessions, c.Uploads.Batches, c.Uploads.WireBytes, c.OSS.Puts(), c.ODPS.Len())
	return c, b.String()
}

// shardFaultGrid is the fault matrix the equivalence property runs over.
func shardFaultGrid() []*faults.Config {
	ctrl := &faults.Config{Seed: 19, CtrlCrashMTBF: 3 * simtime.Second, CtrlCrashDowntime: 600 * simtime.Millisecond}
	churn := &faults.Config{Seed: 23, ChurnMTBF: 40 * simtime.Second, ChurnDownMean: 800 * simtime.Millisecond}
	storm := &faults.Config{
		Seed:              29,
		CrashMTBF:         20 * simtime.Second,
		CrashDowntime:     800 * simtime.Millisecond,
		CtrlCrashMTBF:     4 * simtime.Second,
		CtrlCrashDowntime: 600 * simtime.Millisecond,
		SessionLossProb:   0.05,
		PutFailProb:       0.05,
		ChurnMTBF:         60 * simtime.Second,
		ChurnDownMean:     800 * simtime.Millisecond,
	}
	return []*faults.Config{nil, ctrl, churn, storm}
}

// TestShardedPlaneMatchesSingleShard is the sharding equivalence
// property: with one replica, splitting the API server into k shards
// leaves the merged timeline — phases, session keys, loss accounting,
// work-queue traffic, upload volume — byte-identical to the single-shard
// run, across the whole fault grid. The merged watch drain (by event
// sequence) and merged queue pop (by enqueue sequence) reconstruct the
// exact single-queue FIFO, so nothing may shift.
func TestShardedPlaneMatchesSingleShard(t *testing.T) {
	for fi, fc := range shardFaultGrid() {
		_, want := shardScenario(t, 1, 1, fc)
		for _, shards := range []int{2, 4, 8} {
			_, got := shardScenario(t, shards, 1, fc)
			if got != want {
				t.Fatalf("fault grid %d: shards=%d diverged from shards=1:\n--- want ---\n%s--- got ---\n%s",
					fi, shards, want, got)
			}
		}
	}
}

// TestShardedPlaneInvariantsMultiReplica covers the concurrent side of
// the grid: with several replicas owning disjoint shard ranges the
// timeline legitimately differs from the serial drain, but the outcome
// contract cannot — every request terminal, zero lost or duplicated
// sessions, and never two lease-valid owners on one shard.
func TestShardedPlaneInvariantsMultiReplica(t *testing.T) {
	for fi, fc := range shardFaultGrid() {
		for _, shards := range []int{4, 8} {
			c := liteCluster(t, func(cfg *Config) {
				cfg.Nodes = 30
				cfg.Seed = 7
				cfg.Replicas = 3
				cfg.Shards = shards
				if fc != nil {
					cfg.Faults = faults.New(*fc)
				}
			})
			var maxOwners int
			var sample func(now simtime.Time)
			sample = func(now simtime.Time) {
				for s := 0; s < shards; s++ {
					if n := c.ActiveOwnersShard(s, now); n > maxOwners {
						maxOwners = n
					}
				}
				if now < 28*simtime.Second {
					c.Eng.AfterDetached(10*simtime.Millisecond, sample)
				}
			}
			c.Eng.AfterDetached(10*simtime.Millisecond, sample)
			for i := 0; i < 18; i++ {
				name := fmt.Sprintf("r-%02d", i)
				c.Eng.AfterDetached(simtime.Duration(i)*150*simtime.Millisecond, func(simtime.Time) {
					if _, err := c.Request(name, TraceRequestSpec{
						App: "Agent", Purpose: coverage.PurposeAnomaly,
						Period: 120 * simtime.Millisecond, Deadline: 25 * simtime.Second,
					}); err != nil {
						t.Errorf("request %s: %v", name, err)
					}
				})
			}
			c.Run(30 * simtime.Second)
			for _, r := range c.API.List() {
				if !r.Phase.Terminal() {
					t.Fatalf("grid %d shards %d: %s not terminal: %s (%s)", fi, shards, r.Name, r.Phase, r.Message)
				}
			}
			checkNoLostNoDup(t, c)
			if maxOwners > 1 {
				t.Fatalf("grid %d shards %d: %d lease-valid owners on one shard", fi, shards, maxOwners)
			}
		}
	}
}

// TestShardRebalancesLoseNothing forces repeated shard rebalances — the
// sharded analogue of the forced-failover chaos guarantee: leaders
// crash every 700 ms while striped requests are in flight, shard
// ownership migrates every time, and still every request lands
// terminal with zero lost or duplicated sessions.
func TestShardRebalancesLoseNothing(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) {
		cfg.Nodes = 40
		cfg.Shards = 8
	})
	running := make(map[string]int)
	c.API.Watch(func(r *TraceRequest) {
		if r.Phase == PhaseRunning {
			running[r.Name]++
		}
	})
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("r-%d", i)
		c.Eng.AfterDetached(simtime.Duration(i)*180*simtime.Millisecond, func(simtime.Time) {
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly,
				Period: 1500 * simtime.Millisecond, Deadline: 30 * simtime.Second,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	// Crash the replica owning the most shards every 700 ms; 450 ms
	// downtime outlives the 400 ms range leases, so its whole range must
	// migrate to the survivors and be handed back after recovery.
	for i := 1; i <= 6; i++ {
		c.Eng.AfterDetached(simtime.Duration(i)*700*simtime.Millisecond, func(now simtime.Time) {
			var busiest *Controller
			for _, ct := range c.Controllers {
				if !ct.down && (busiest == nil || len(ct.OwnedShards()) > len(busiest.OwnedShards())) {
					busiest = ct
				}
			}
			if busiest != nil {
				busiest.crash(450*simtime.Millisecond, nil)
			}
		})
	}
	var maxOwners int
	var sample func(now simtime.Time)
	sample = func(now simtime.Time) {
		for s := 0; s < 8; s++ {
			if n := c.ActiveOwnersShard(s, now); n > maxOwners {
				maxOwners = n
			}
		}
		if now < 12*simtime.Second {
			c.Eng.AfterDetached(10*simtime.Millisecond, sample)
		}
	}
	c.Eng.AfterDetached(10*simtime.Millisecond, sample)

	c.Run(18 * simtime.Second)

	if got := c.ShardRebalances(); got < 5 {
		t.Fatalf("shard rebalances = %d, want >= 5", got)
	}
	for _, r := range c.API.List() {
		if !r.Phase.Terminal() {
			t.Fatalf("%s not terminal: %s (%s)", r.Name, r.Phase, r.Message)
		}
		if running[r.Name] > 1 {
			t.Fatalf("%s started %d times", r.Name, running[r.Name])
		}
	}
	checkNoLostNoDup(t, c)
	if maxOwners > 1 {
		t.Fatalf("%d lease-valid owners sampled on one shard", maxOwners)
	}
	if len(c.Readopts) == 0 {
		t.Fatal("no re-adoption times recorded across rebalances")
	}
}

// TestShardRelistContractUnderRebalance pins the per-shard watch relist
// contract: a shard stream overflowing its tiny buffer mid-ownership
// goes stale and the owner resynchronizes with a shard-scoped relist —
// while a forced crash rebalances the shard range underneath. Nothing
// may be lost to the dropped events.
func TestShardRelistContractUnderRebalance(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) {
		cfg.Nodes = 40
		cfg.Shards = 4
		cfg.WatchBuf = 4 // overflow on any burst of mutations
	})
	// All 40 requests land on the API server in the same instant: at
	// least one shard receives 5+ ADDED events before its owner's next
	// pump and must overflow its 4-slot stream.
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("r-%02d", i)
		c.Eng.AfterDetached(100*simtime.Millisecond, func(simtime.Time) {
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly,
				Period: 400 * simtime.Millisecond, Deadline: 30 * simtime.Second,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	c.Eng.AfterDetached(900*simtime.Millisecond, func(now simtime.Time) {
		for _, ct := range c.Controllers {
			if len(ct.OwnedShards()) > 0 && !ct.down {
				ct.crash(450*simtime.Millisecond, nil)
				return
			}
		}
	})
	c.Run(15 * simtime.Second)

	if c.Mgmt.Relists == 0 {
		t.Fatal("tiny watch buffers never went stale: relist contract untested")
	}
	if c.ShardRebalances() == 0 {
		t.Fatal("crash forced no shard rebalance")
	}
	for _, r := range c.API.List() {
		if !r.Phase.Terminal() {
			t.Fatalf("%s not terminal after stale-watch relists: %s (%s)", r.Name, r.Phase, r.Message)
		}
	}
	checkNoLostNoDup(t, c)
}

// TestShardingCutsManagementCPU pins the perf claim behind the sharded
// store: at fleet scale, management CPU per reconciled request drops by
// at least 30% going from one shard to eight, because every store write
// scans only the owning shard's live objects instead of the whole table.
func TestShardingCutsManagementCPU(t *testing.T) {
	cpuPerReq := func(shards int) float64 {
		c := liteCluster(t, func(cfg *Config) {
			cfg.Nodes = 3000
			cfg.Seed = 5
			cfg.Shards = shards
		})
		reqN := 400
		for i := 0; i < reqN; i++ {
			name := fmt.Sprintf("r-%03d", i)
			nodes := []string{
				fmt.Sprintf("node-%d", (i*8)%3000), fmt.Sprintf("node-%d", (i*8+1)%3000),
				fmt.Sprintf("node-%d", (i*8+2)%3000), fmt.Sprintf("node-%d", (i*8+3)%3000),
			}
			at := simtime.Time(i) * simtime.Time(100*simtime.Microsecond)
			c.Eng.Schedule(at, func(simtime.Time) {
				if _, err := c.Request(name, TraceRequestSpec{
					App: "Agent", Purpose: coverage.PurposeAnomaly, Nodes: nodes,
					Period: 300 * simtime.Millisecond,
				}); err != nil {
					t.Errorf("request %s: %v", name, err)
				}
			})
		}
		c.Run(10 * simtime.Second)
		for _, r := range c.API.List() {
			if !r.Phase.Terminal() {
				t.Fatalf("shards=%d: %s not terminal: %s", shards, r.Name, r.Phase)
			}
		}
		return c.Mgmt.CPUSeconds / float64(reqN)
	}
	s1 := cpuPerReq(1)
	s8 := cpuPerReq(8)
	if s8 > 0.7*s1 {
		t.Fatalf("management CPU per request: shards=1 %.1fµs, shards=8 %.1fµs — want >= 30%% drop",
			s1*1e6, s8*1e6)
	}
}

// TestNodeChurnDrainsGracefully drives the continuous node join/leave
// fault shape: churned nodes cordon (no new sessions), drain what they
// host, leave, and rejoin with a fresh lease. Under churn alone — no
// data-destroying faults — every request still completes with full
// coverage, because the graceful drain ships every in-flight session
// before the node goes away.
func TestNodeChurnDrainsGracefully(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) {
		cfg.Nodes = 30
		cfg.Shards = 4
		cfg.Faults = faults.New(faults.Config{
			Seed: 13, ChurnMTBF: 20 * simtime.Second, ChurnDownMean: 500 * simtime.Millisecond,
		})
	})
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("r-%02d", i)
		c.Eng.AfterDetached(simtime.Duration(i)*200*simtime.Millisecond, func(simtime.Time) {
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly,
				Period: 300 * simtime.Millisecond, Deadline: 20 * simtime.Second,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	c.Run(12 * simtime.Second)

	fs := c.Cfg.Faults.Stats()
	if fs.Leaves == 0 || fs.Joins == 0 {
		t.Fatalf("churn never fired: leaves=%d joins=%d", fs.Leaves, fs.Joins)
	}
	for _, r := range c.API.List() {
		if r.Phase != PhaseCompleted {
			t.Fatalf("%s: phase %s (%s) under graceful churn", r.Name, r.Phase, r.Message)
		}
		if len(r.SessionKeys) != r.Planned {
			t.Fatalf("%s: %d/%d sessions under graceful churn", r.Name, len(r.SessionKeys), r.Planned)
		}
	}
	checkNoLostNoDup(t, c)
}
