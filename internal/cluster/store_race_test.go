package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestStoreCountersConcurrentWithWrites hammers the object and data
// stores from writer goroutines while readers poll the aggregate
// counters. The counters are atomics — not guarded by any shard lock —
// so this test runs meaningfully under -race: before the atomic fix a
// reader summing per-shard fields while a writer bumped them was a
// data race and could observe torn totals.
func TestStoreCountersConcurrentWithWrites(t *testing.T) {
	oss := NewObjectStoreShards(8)
	odps := NewDataStoreShards(8)
	const writers = 4
	const perWriter = 200

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = oss.Bytes()
				_ = oss.Puts()
				_ = oss.Failures()
				_ = odps.Failures()
				// Yield so the writers make progress on a single-CPU
				// -race run; a hot spin here starves them into the
				// test-binary timeout.
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d/obj-%d", w, i)
				if err := oss.Put(key, []byte("0123456789")); err != nil {
					t.Errorf("put %s: %v", key, err)
				}
				keys := []string{key + "/a", key + "/b"}
				blobs := [][]byte{[]byte("aaaa"), []byte("bbbb")}
				if err := oss.PutBatch(key+"/batch", keys, blobs); err != nil {
					t.Errorf("putbatch %s: %v", key, err)
				}
				if err := odps.Insert(key, Row{Session: key, Key: "spans", Value: 1}); err != nil {
					t.Errorf("insert %s: %v", key, err)
				}
				if _, ok := oss.Get(key); !ok {
					t.Errorf("get %s: missing", key)
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	wantPuts := int64(writers * perWriter * 2) // 1 Put + 1 PutBatch each (a batch is one put)
	if got := oss.Puts(); got != wantPuts {
		t.Fatalf("Puts() = %d, want %d", got, wantPuts)
	}
	wantBytes := int64(writers * perWriter * (10 + 4 + 4))
	if got := oss.Bytes(); got != wantBytes {
		t.Fatalf("Bytes() = %d, want %d", got, wantBytes)
	}
	if got := oss.Failures() + odps.Failures(); got != 0 {
		t.Fatalf("failures = %d without an injector", got)
	}
	if got := odps.Len(); got != writers*perWriter {
		t.Fatalf("ODPS len = %d, want %d", got, writers*perWriter)
	}
}
