package cluster

import (
	"errors"
	"fmt"
)

// ErrConflict is returned by compare-and-swap updates when the object's
// resource version moved under the caller. Controllers retry by
// re-reading the object and requeueing the item (conflict-retry).
var ErrConflict = errors.New("cluster: resource version conflict")

// EventType classifies a watch event.
type EventType uint8

// Watch event types.
const (
	EventAdded EventType = iota
	EventModified
	EventDeleted
)

// String names an event type.
func (t EventType) String() string {
	switch t {
	case EventAdded:
		return "ADDED"
	case EventModified:
		return "MODIFIED"
	case EventDeleted:
		return "DELETED"
	default:
		return "?"
	}
}

// WatchEvent is one change notification on a TraceRequest. Events carry
// only the object's coordinates — consumers re-read the live object, so
// a stale event can never act on stale state.
type WatchEvent struct {
	// Type is the change kind.
	Type EventType
	// Name and ResourceVersion identify the object state that produced
	// the event.
	Name            string
	ResourceVersion int64
	// Phase is the object's phase at emission time.
	Phase Phase
	// Seq is the server-global emission sequence. Resource versions are
	// per shard, so a consumer draining several shard streams merges
	// them by Seq to recover the exact server-side emission order.
	Seq int64
}

// WatchStream is one consumer's buffered view of the API server's change
// feed. The buffer is bounded: when a slow consumer overflows it, the
// oldest events are dropped and the stream is marked stale — the
// consumer must relist to resynchronize, exactly the "resource version
// too old" contract of a real watch.
type WatchStream struct {
	buf   []WatchEvent
	max   int
	stale bool
	// notify, when set, fires each time the buffer goes from empty to
	// non-empty (edge-triggered), letting consumers schedule a drain.
	notify func()
}

// Next pops the oldest buffered event.
func (w *WatchStream) Next() (WatchEvent, bool) {
	if len(w.buf) == 0 {
		return WatchEvent{}, false
	}
	ev := w.buf[0]
	w.buf = w.buf[1:]
	return ev, true
}

// Len returns the number of buffered events.
func (w *WatchStream) Len() int { return len(w.buf) }

// peek returns the oldest buffered event without removing it.
func (w *WatchStream) peek() (WatchEvent, bool) {
	if len(w.buf) == 0 {
		return WatchEvent{}, false
	}
	return w.buf[0], true
}

// Stale reports whether events were dropped since the last Reset; the
// consumer's cached view may be incomplete and it must relist.
func (w *WatchStream) Stale() bool { return w.stale }

// Reset empties the stream and clears the stale flag (called after a
// relist resynchronizes the consumer).
func (w *WatchStream) Reset() {
	w.buf = w.buf[:0]
	w.stale = false
}

// push appends an event, dropping the oldest on overflow.
func (w *WatchStream) push(ev WatchEvent) {
	wasEmpty := len(w.buf) == 0
	if w.max > 0 && len(w.buf) >= w.max {
		w.buf = w.buf[1:]
		w.stale = true
	}
	w.buf = append(w.buf, ev)
	if wasEmpty && w.notify != nil {
		w.notify()
	}
}

// WatchStream opens a new buffered change stream observing every shard
// (the tooling view). bufMax bounds the buffer (<= 0 uses 1024); notify,
// when non-nil, fires on the empty-to-non-empty edge.
func (a *APIServer) WatchStream(bufMax int, notify func()) *WatchStream {
	if bufMax <= 0 {
		bufMax = 1024
	}
	w := &WatchStream{max: bufMax, notify: notify}
	a.global = append(a.global, w)
	return w
}

// WatchShard opens a buffered change stream scoped to one shard: only
// that shard's mutations are delivered, so overflow (and the resulting
// stale → relist) is contained to the shard. Controllers open one per
// shard and merge drains by WatchEvent.Seq.
func (a *APIServer) WatchShard(si, bufMax int, notify func()) *WatchStream {
	if bufMax <= 0 {
		bufMax = 1024
	}
	w := &WatchStream{max: bufMax, notify: notify}
	s := a.shards[si]
	s.mu.Lock()
	s.streams = append(s.streams, w)
	s.mu.Unlock()
	return w
}

// emitLocked fans one event out to the shard's streams and every global
// stream; the caller holds the shard lock.
func (a *APIServer) emitLocked(s *apiShard, typ EventType, r *TraceRequest) {
	if len(s.streams) == 0 && len(a.global) == 0 {
		return
	}
	a.evSeq++
	ev := WatchEvent{Type: typ, Name: r.Name, ResourceVersion: r.ResourceVersion, Phase: r.Phase, Seq: a.evSeq}
	for _, w := range s.streams {
		w.push(ev)
	}
	for _, w := range a.global {
		w.push(ev)
	}
}

// bumpLocked assigns the object the owning shard's next resource
// version; the caller holds the shard lock.
func (a *APIServer) bumpLocked(s *apiShard, r *TraceRequest) {
	s.rv++
	r.ResourceVersion = s.rv
}

// Touch bumps the object's resource version and notifies watchers of a
// modification that is not a phase transition (e.g. a lost session slot
// recorded on the object for failover recovery).
func (a *APIServer) Touch(r *TraceRequest) {
	s := a.shards[r.shard]
	s.mu.Lock()
	a.bumpLocked(s, r)
	a.emitLocked(s, EventModified, r)
	s.mu.Unlock()
}

// CASPhase transitions a request's phase if and only if its resource
// version still equals expectRV, returning ErrConflict otherwise. This
// is the idempotency lock replicated controllers take before opening
// sessions: whichever replica wins the CAS owns the transition, and the
// loser re-reads and observes the work already done.
func (a *APIServer) CASPhase(r *TraceRequest, expectRV int64, phase Phase, msg string) error {
	if r.ResourceVersion != expectRV {
		return fmt.Errorf("%w: %s is at %d, caller expected %d",
			ErrConflict, r.Name, r.ResourceVersion, expectRV)
	}
	a.setPhase(r, phase, msg)
	return nil
}
