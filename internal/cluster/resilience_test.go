package cluster

import (
	"strings"
	"testing"

	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/simtime"
	"exist/internal/workload"
)

// faultyCluster builds a small walker-backed cluster with the given
// injector attached.
func faultyCluster(t *testing.T, nodes int, fc faults.Config) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 4
	cfg.Seed = 3
	cfg.Faults = faults.New(fc)
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestZeroProbInjectorMatchesFaultFreeRun is the opt-in guarantee at the
// cluster level: attaching an injector that never fires leaves every
// observable output identical to a run with no injector at all.
func TestZeroProbInjectorMatchesFaultFreeRun(t *testing.T) {
	run := func(inj *faults.Injector) (Phase, int64, int, float64) {
		cfg := DefaultConfig()
		cfg.Nodes = 3
		cfg.CoresPerNode = 4
		cfg.Seed = 3
		cfg.Faults = inj
		c := New(cfg)
		agent, err := workload.ByName("Agent")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		req, err := c.Request("same", TraceRequestSpec{
			App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(2 * simtime.Second)
		return req.Phase, c.OSS.Bytes(), c.ODPS.Len(), c.Mgmt.CPUSeconds
	}
	// A zero-probability injector arms leases and deadlines but never
	// injects; the data path must not notice.
	p1, b1, r1, cpu1 := run(nil)
	p2, b2, r2, _ := run(faults.New(faults.Config{Seed: 99}))
	if p1 != p2 || b1 != b2 || r1 != r2 {
		t.Fatalf("zero-prob injector changed outputs: %v/%d/%d vs %v/%d/%d", p1, b1, r1, p2, b2, r2)
	}
	if cpu1 <= 0 {
		t.Fatal("no management CPU accounted")
	}
}

func TestRetryRecoversTransientPutFailures(t *testing.T) {
	c := faultyCluster(t, 3, faults.Config{Seed: 11, PutFailProb: 0.4, InsertFailProb: 0.4})
	req, err := c.Request("flaky", TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	if c.OSS.Failures() == 0 {
		t.Fatal("injector never fired; test is vacuous")
	}
	if c.Mgmt.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	// All three sessions landed despite the failures.
	if len(req.SessionKeys) != 3 {
		t.Fatalf("sessions = %v", req.SessionKeys)
	}
	// The request recovered, so no stale transient-error message remains.
	if req.Message != "" {
		t.Fatalf("stale message after recovery: %q", req.Message)
	}
}

func TestSessionLossDegradesToPartialCoverage(t *testing.T) {
	c := faultyCluster(t, 6, faults.Config{Seed: 21, SessionLossProb: 0.5})
	req, err := c.Request("lossy", TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(10 * simtime.Second)
	if !req.Phase.Terminal() {
		t.Fatalf("request hung in %s", req.Phase)
	}
	if req.Phase == PhaseCompleted {
		// Possible only if every loss was recovered by re-sampling.
		if c.Cfg.Faults.Stats().SessionsLost > 0 && req.Resampled == 0 {
			t.Fatal("losses occurred but nothing was re-sampled")
		}
	}
	if req.Phase == PhaseDegraded {
		if len(req.SessionKeys) == 0 {
			t.Fatal("degraded with zero coverage should be Failed")
		}
		if req.Lost == 0 {
			t.Fatal("degraded without recorded losses")
		}
		if !strings.Contains(req.Message, "partial coverage") {
			t.Fatalf("message = %q", req.Message)
		}
	}
	// Slot accounting: every planned slot either landed or was given up.
	if req.Lost+len(req.SessionKeys) != req.Planned {
		t.Fatalf("slots: lost %d + landed %d != planned %d",
			req.Lost, len(req.SessionKeys), req.Planned)
	}
	if got := req.CoverageFraction(); got < 0 || got > 1 {
		t.Fatalf("coverage fraction %v", got)
	}
}

func TestTotalLossFailsTerminally(t *testing.T) {
	c := faultyCluster(t, 3, faults.Config{Seed: 5, SessionLossProb: 1})
	req, err := c.Request("doomed", TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(15 * simtime.Second)
	if req.Phase != PhaseFailed {
		t.Fatalf("phase = %s (%s), want Failed", req.Phase, req.Message)
	}
	if len(req.SessionKeys) != 0 {
		t.Fatalf("keys = %v on total loss", req.SessionKeys)
	}
}

func TestNodeCrashLeaseExpiryAndResample(t *testing.T) {
	c := faultyCluster(t, 5, faults.Config{
		Seed:          7,
		CrashMTBF:     1500 * simtime.Millisecond,
		CrashDowntime: 800 * simtime.Millisecond,
	})
	var reqs []*TraceRequest
	for _, name := range []string{"a", "b", "c"} {
		req, err := c.Request(name, TraceRequestSpec{
			App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 400 * simtime.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	c.Run(20 * simtime.Second)
	if c.Cfg.Faults.Stats().Crashes == 0 {
		t.Fatal("no crashes injected; test is vacuous")
	}
	for _, req := range reqs {
		if !req.Phase.Terminal() {
			t.Fatalf("request %s hung in %s", req.Name, req.Phase)
		}
	}
	// Crashed nodes must have been detected through lease expiry.
	if c.Mgmt.LeaseExpiries == 0 {
		t.Fatal("no lease expiries detected despite crashes")
	}
}

func TestDeadlineForcesTerminalPhase(t *testing.T) {
	// A permanently stalled controller never even starts the request; the
	// deadline still forces a terminal phase instead of a hang.
	c := faultyCluster(t, 2, faults.Config{Seed: 2, StallProb: 1})
	req, err := c.Request("stuck", TraceRequestSpec{
		App: "Agent", Period: 200 * simtime.Millisecond,
		Deadline: 1 * simtime.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3 * simtime.Second)
	if req.Phase != PhaseFailed {
		t.Fatalf("phase = %s (%s), want Failed at deadline", req.Phase, req.Message)
	}
	if !strings.Contains(req.Message, "deadline") {
		t.Fatalf("message = %q", req.Message)
	}
	if c.Mgmt.Stalls == 0 {
		t.Fatal("no stalls recorded")
	}
}

func TestCorruptedSessionsStillDecode(t *testing.T) {
	c := faultyCluster(t, 3, faults.Config{Seed: 13, CorruptProb: 1, CorruptBits: 16})
	req, err := c.Request("noisy", TraceRequestSpec{
		App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	if c.Cfg.Faults.Stats().SessionsCorrupted != 3 {
		t.Fatalf("corrupted = %d", c.Cfg.Faults.Stats().SessionsCorrupted)
	}
	// Corruption costs accuracy, not availability: all sessions landed.
	if len(req.SessionKeys) != 3 {
		t.Fatalf("sessions = %v", req.SessionKeys)
	}
}

func TestCancelThenDelete(t *testing.T) {
	c := testCluster(t, 2)
	req, err := c.Request("drop", TraceRequestSpec{App: "Agent", Period: 1500 * simtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(400 * simtime.Millisecond)
	// A live request cannot be deleted.
	if err := c.Delete("drop"); err == nil {
		t.Fatal("deleting a running request should fail")
	}
	c.Cancel(req)
	if req.Phase != PhaseCancelled {
		t.Fatalf("phase = %s after cancel", req.Phase)
	}
	keys := append([]string(nil), req.SessionKeys...)
	if len(keys) == 0 {
		t.Fatal("cancel kept no partial capture")
	}
	if err := c.Delete("drop"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.API.Get("drop"); ok {
		t.Fatal("request still present after delete")
	}
	for _, k := range keys {
		if _, ok := c.OSS.Get(k); ok {
			t.Fatalf("session %s survived delete", k)
		}
	}
	if err := c.Delete("drop"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestAPIServerDeleteGuards(t *testing.T) {
	a := NewAPIServer()
	if err := a.Delete("ghost"); err == nil {
		t.Fatal("deleting a missing request should fail")
	}
	r, _ := a.Create("live", TraceRequestSpec{App: "x"})
	if err := a.Delete("live"); err == nil {
		t.Fatal("deleting a pending request should fail")
	}
	a.setPhase(r, PhaseCancelled, "test")
	if err := a.Delete("live"); err != nil {
		t.Fatal(err)
	}
	if len(a.List()) != 0 {
		t.Fatal("List still returns deleted request")
	}
}

func TestPhaseTerminal(t *testing.T) {
	for p, want := range map[Phase]bool{
		PhasePending: false, PhaseRunning: false,
		PhaseCompleted: true, PhaseDegraded: true,
		PhaseCancelled: true, PhaseFailed: true,
	} {
		if p.Terminal() != want {
			t.Errorf("Terminal(%s) = %v", p, !want)
		}
	}
}
