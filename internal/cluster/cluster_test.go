package cluster

import (
	"strings"
	"testing"

	"exist/internal/coverage"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

func TestObjectStore(t *testing.T) {
	o := NewObjectStore()
	o.Put("sessions/a", []byte{1, 2, 3})
	o.Put("sessions/b", []byte{4})
	o.Put("other/c", []byte{5})
	if o.Bytes() != 5 || o.Puts() != 3 {
		t.Fatalf("accounting: %d bytes, %d puts", o.Bytes(), o.Puts())
	}
	o.Put("sessions/a", []byte{9, 9}) // replace
	if o.Bytes() != 4 {
		t.Fatalf("replace accounting: %d bytes", o.Bytes())
	}
	if got := o.List("sessions/"); len(got) != 2 || got[0] != "sessions/a" {
		t.Fatalf("List = %v", got)
	}
	if b, ok := o.Get("sessions/a"); !ok || len(b) != 2 {
		t.Fatalf("Get = %v %v", b, ok)
	}
	if _, ok := o.Get("missing"); ok {
		t.Fatal("Get(missing) should fail")
	}
}

func TestDataStore(t *testing.T) {
	d := NewDataStore()
	d.Insert("batch-1",
		Row{App: "a", Session: "s2", Key: "f1", Value: 2},
		Row{App: "a", Session: "s1", Key: "f2", Value: 3},
		Row{App: "b", Session: "s1", Key: "f1", Value: 7},
		Row{App: "a", Session: "s1", Key: "f1", Value: 5},
	)
	rows := d.QueryApp("a")
	if len(rows) != 3 || rows[0].Session != "s1" || rows[0].Key != "f1" {
		t.Fatalf("QueryApp order wrong: %+v", rows)
	}
	agg := d.AggregateApp("a")
	if agg["f1"] != 7 || agg["f2"] != 3 {
		t.Fatalf("aggregate = %v", agg)
	}
	if !strings.Contains(d.String(), "4 rows") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestAPIServer(t *testing.T) {
	a := NewAPIServer()
	if _, err := a.Create("r1", TraceRequestSpec{App: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Create("r1", TraceRequestSpec{}); err == nil {
		t.Fatal("duplicate create should fail")
	}
	r, ok := a.Get("r1")
	if !ok || r.Phase != PhasePending {
		t.Fatalf("Get = %+v %v", r, ok)
	}
	if len(a.List()) != 1 {
		t.Fatal("List wrong")
	}
}

// testCluster deploys a walker-backed app on a small cluster.
func testCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 4
	cfg.Seed = 3
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEndToEndTraceRequest(t *testing.T) {
	c := testCluster(t, 3)
	req, err := c.Request("diag-1", TraceRequestSpec{
		App:     "Agent",
		Purpose: coverage.PurposeAnomaly,
		Period:  200 * simtime.Millisecond,
		Scale:   trace.SpaceScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("request phase = %s (%s)", req.Phase, req.Message)
	}
	// Anomaly purpose with nothing flagged traces all three nodes.
	if len(req.SessionKeys) != 3 {
		t.Fatalf("sessions = %v", req.SessionKeys)
	}
	if c.OSS.Puts() != 3 || c.OSS.Bytes() == 0 {
		t.Fatalf("OSS: %d puts, %d bytes", c.OSS.Puts(), c.OSS.Bytes())
	}
	// Sessions must round-trip from the object store.
	for _, key := range req.SessionKeys {
		blob, ok := c.OSS.Get(key)
		if !ok {
			t.Fatalf("session %s missing from OSS", key)
		}
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Workload != "Agent" || sess.Duration() != 200*simtime.Millisecond {
			t.Fatalf("bad session: %+v", sess)
		}
	}
	if c.ODPS.Len() == 0 {
		t.Fatal("decoded rows never reached the structured store")
	}
	agg := c.ODPS.AggregateApp("Agent")
	if len(agg) == 0 {
		t.Fatal("aggregate empty")
	}
}

func TestTemporalDeciderUsedWhenPeriodOmitted(t *testing.T) {
	c := testCluster(t, 1)
	req, err := c.Request("auto", TraceRequestSpec{App: "Agent", Purpose: coverage.PurposeAnomaly})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(4 * simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	blob, _ := c.OSS.Get(req.SessionKeys[0])
	sess, err := trace.UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	d := sess.Duration()
	if d < coverage.MinPeriod || d > coverage.MaxPeriod {
		t.Fatalf("decided period %v outside bounds", d)
	}
}

func TestRequestUnknownApp(t *testing.T) {
	c := testCluster(t, 1)
	if _, err := c.Request("bad", TraceRequestSpec{App: "nope"}); err == nil {
		t.Fatal("unknown app should be rejected")
	}
}

func TestSelectedNodesRespected(t *testing.T) {
	c := testCluster(t, 3)
	req, err := c.Request("pin", TraceRequestSpec{
		App: "Agent", Period: 150 * simtime.Millisecond,
		Nodes: []string{"node-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1 * simtime.Second)
	if req.Phase != PhaseCompleted || len(req.SessionKeys) != 1 {
		t.Fatalf("pin request: %+v", req)
	}
	if !strings.Contains(req.SessionKeys[0], "node-1") {
		t.Fatalf("wrong node traced: %v", req.SessionKeys)
	}
}

func TestManagementOverheadSmall(t *testing.T) {
	c := testCluster(t, 10)
	if _, err := c.Request("r", TraceRequestSpec{App: "Agent", Period: 500 * simtime.Millisecond}); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * simtime.Second)
	cores := c.ManagementCores()
	// The paper: RCO consumes < 3e-3 cores for a ten-node cluster.
	if cores <= 0 || cores > 3e-3 {
		t.Fatalf("management cores = %v, want (0, 3e-3]", cores)
	}
	if c.Mgmt.MemMB != 40 {
		t.Fatalf("management memory = %v", c.Mgmt.MemMB)
	}
	if c.Mgmt.Reconciles < 10 {
		t.Fatalf("reconciles = %d", c.Mgmt.Reconciles)
	}
}

func TestDeployValidation(t *testing.T) {
	c := testCluster(t, 2)
	agent, _ := workload.ByName("Agent")
	if err := c.Deploy(agent, []string{"node-0"}, workload.InstallOpts{Seed: 1}); err == nil {
		t.Fatal("duplicate deploy should fail")
	}
	mc, _ := workload.ByName("mc")
	if err := c.Deploy(mc, []string{"ghost"}, workload.InstallOpts{Seed: 1}); err == nil {
		t.Fatal("unknown node should fail")
	}
}

func TestWatchNotifications(t *testing.T) {
	c := testCluster(t, 2)
	var phases []Phase
	c.API.Watch(func(r *TraceRequest) { phases = append(phases, r.Phase) })
	if _, err := c.Request("w", TraceRequestSpec{App: "Agent", Period: 200 * simtime.Millisecond}); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * simtime.Second)
	if len(phases) < 2 || phases[0] != PhaseRunning || phases[len(phases)-1] != PhaseCompleted {
		t.Fatalf("watch phases = %v", phases)
	}
}

func TestCancelRequest(t *testing.T) {
	c := testCluster(t, 2)
	req, err := c.Request("c", TraceRequestSpec{App: "Agent", Period: 1500 * simtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Let it start, then cancel mid-window.
	c.Run(400 * simtime.Millisecond)
	if req.Phase != PhaseRunning {
		t.Fatalf("phase = %s before cancel", req.Phase)
	}
	c.Cancel(req)
	if req.Phase != PhaseCancelled {
		t.Fatalf("phase = %s after cancel, want Cancelled", req.Phase)
	}
	// Partial sessions were still uploaded.
	if len(req.SessionKeys) == 0 {
		t.Fatal("cancelled request uploaded nothing")
	}
	for _, key := range req.SessionKeys {
		blob, ok := c.OSS.Get(key)
		if !ok {
			t.Fatalf("session %s missing", key)
		}
		sess, err := trace.UnmarshalSession(blob)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Duration() >= 1500*simtime.Millisecond {
			t.Fatalf("cancelled session has full window %v", sess.Duration())
		}
	}
	// No tracer may remain enabled anywhere.
	for _, n := range c.Nodes {
		for _, core := range n.Machine.Cores {
			if core.Tracer.Enabled() {
				t.Fatalf("node %s core %d tracer still enabled", n.Name, core.ID)
			}
		}
	}
	c.Run(3 * simtime.Second) // the orphaned HRTs must not fire into closed sessions
}
