// Package cluster is the cloud-native integration layer of EXIST (§4 of
// the paper): a Kubernetes-style API server holding TraceRequest custom
// resources, a reconciling controller that turns requests into node-level
// tracing sessions (applying RCO's temporal and spatial decisions), an
// object store for raw sessions (OSS stand-in), and a structured store
// for decoded results (ODPS stand-in).
//
// The control plane is built for shared, stressed datacenters where
// partial failure is the normal case: store operations retry with
// exponential backoff and jitter, node health is tracked with heartbeat
// leases, lost sessions are re-sampled onto healthy repetitions, and
// per-request deadlines guarantee every TraceRequest reaches a terminal
// phase. All failure modes are driven by the strictly opt-in, seeded
// fault injector in package faults; with no injector attached the control
// plane behaves exactly as a fault-free cluster.
//
// All nodes share one virtual clock, so cluster orchestration and
// node-level scheduling interleave deterministically in a single timeline.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/coverage"
	"exist/internal/decode"
	"exist/internal/faults"
	"exist/internal/memalloc"
	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

// Phase is a TraceRequest lifecycle phase.
type Phase string

// TraceRequest phases.
const (
	PhasePending   Phase = "Pending"
	PhaseRunning   Phase = "Running"
	PhaseCompleted Phase = "Completed"
	// PhaseDegraded is terminal: the request finished with partial
	// coverage (some sessions lost to faults and not recoverable).
	PhaseDegraded Phase = "Degraded"
	// PhaseCancelled is terminal: the request was aborted by an operator;
	// whatever was captured before the cancel is kept.
	PhaseCancelled Phase = "Cancelled"
	PhaseFailed    Phase = "Failed"
)

// Terminal reports whether the phase is final.
func (p Phase) Terminal() bool {
	switch p {
	case PhaseCompleted, PhaseDegraded, PhaseCancelled, PhaseFailed:
		return true
	}
	return false
}

// TraceRequestSpec is the user-facing configuration interface: what to
// trace and how, encapsulated as a CRD in the API server.
type TraceRequestSpec struct {
	// App names the application (a workload profile name).
	App string
	// Purpose selects RCO's sampling policy.
	Purpose coverage.Purpose
	// Period overrides the temporal decider when nonzero.
	Period simtime.Duration
	// Nodes restricts tracing to these nodes (nil: spatial sampler picks).
	Nodes []string
	// MemBudget overrides the default buffer budget when nonzero.
	MemBudget int64
	// Scale is the space scale for the sessions (0: trace.SpaceScale).
	Scale float64
	// Deadline bounds the request's total lifetime; past it the request
	// is forced to a terminal phase with whatever coverage it has. Zero
	// uses the cluster default when fault injection is enabled, and no
	// deadline otherwise.
	Deadline simtime.Duration
}

// TraceRequest is the CRD object.
type TraceRequest struct {
	// Name is the object name (unique).
	Name string
	// Spec is the desired state.
	Spec TraceRequestSpec
	// Phase is the observed lifecycle phase.
	Phase Phase
	// ResourceVersion increments on every stored mutation; controllers
	// use it for compare-and-swap updates and watch bookkeeping.
	ResourceVersion int64
	// Message carries failure details; it is cleared when a request
	// recovers from a retried transient failure.
	Message string
	// SessionKeys lists the OSS keys of uploaded sessions.
	SessionKeys []string
	// Planned is the number of sessions RCO's spatial sampler scheduled.
	Planned int
	// Lost counts sessions whose data was destroyed and could not be
	// recovered by re-sampling.
	Lost int
	// Resampled counts replacement sessions opened on healthy nodes
	// after a loss.
	Resampled int

	// pending counts session slots not yet resolved (landed or given up).
	pending    int
	sessions   []*core.Session
	usedNodes  map[string]bool
	period     simtime.Duration
	scale      float64
	cancelling bool
	deadlineEv *simtime.Event
	// resampleSlots records lost session slots (by re-sampling attempt)
	// in the replicated control plane. The record lives on the object —
	// not in controller memory — so a failed-over leader recovers
	// outstanding slots from a relist.
	resampleSlots []int
	// shard is the API-server shard the object lives in (fixed at
	// creation by the name hash); seq is its global creation sequence,
	// used to merge per-shard views back into creation order.
	shard int
	seq   int64
}

// CoverageFraction reports the fraction of planned sessions that landed.
func (r *TraceRequest) CoverageFraction() float64 {
	if r.Planned == 0 {
		return 0
	}
	return float64(len(r.SessionKeys)) / float64(r.Planned)
}

// apiShard is one lock domain of the API server: its own object map,
// creation order, resource-version counter, and shard-scoped watch
// streams. Objects are routed to shards by a stable hash of their name
// (DESIGN.md §15), so a request's shard never changes over its lifetime.
type apiShard struct {
	mu       sync.Mutex
	requests map[string]*TraceRequest
	order    []string
	rv       int64
	live     int // non-terminal objects (the store-write cost driver)
	streams  []*WatchStream
}

// APIServer stores TraceRequests (the Kubernetes API server stand-in),
// split into Config.Shards shards keyed by a stable hash of the request
// name. Every stored mutation bumps the owning shard's resource version
// and fans an event out to that shard's watch streams (plus any global
// streams); legacy phase-transition watchers are kept alongside for
// tooling. With one shard — the default — versions, ordering, and event
// delivery are identical to the historical single-map server.
type APIServer struct {
	shards   []*apiShard
	global   []*WatchStream // streams observing every shard (tooling)
	watchers []func(*TraceRequest)
	seq      int64 // global creation sequence, merges List across shards
	evSeq    int64 // global event sequence, merges watch drains
}

// NewAPIServer returns an empty single-shard API server.
func NewAPIServer() *APIServer { return NewAPIServerShards(1) }

// NewAPIServerShards returns an empty API server with n shards
// (n < 1 is treated as 1).
func NewAPIServerShards(n int) *APIServer {
	if n < 1 {
		n = 1
	}
	a := &APIServer{shards: make([]*apiShard, n)}
	for i := range a.shards {
		a.shards[i] = &apiShard{requests: make(map[string]*TraceRequest)}
	}
	return a
}

// Shards returns the shard count.
func (a *APIServer) Shards() int { return len(a.shards) }

// ShardOf returns the shard index a request name routes to.
func (a *APIServer) ShardOf(name string) int {
	return int(hashName(name) % uint64(len(a.shards)))
}

// LiveInShard returns the number of non-terminal objects in a shard —
// the table the store scans on every write (the in-model cost driver of
// DESIGN.md §15).
func (a *APIServer) LiveInShard(si int) int {
	s := a.shards[si]
	s.mu.Lock()
	n := s.live
	s.mu.Unlock()
	return n
}

// Watch registers fn to run on every request phase transition (the watch
// stream engineers' tooling subscribes to).
func (a *APIServer) Watch(fn func(*TraceRequest)) {
	a.watchers = append(a.watchers, fn)
}

// setPhase transitions a request and notifies watchers.
func (a *APIServer) setPhase(r *TraceRequest, phase Phase, msg string) {
	if r.Phase == phase {
		return
	}
	s := a.shards[r.shard]
	s.mu.Lock()
	wasTerminal := r.Phase.Terminal()
	r.Phase = phase
	if msg != "" {
		r.Message = msg
	}
	if !wasTerminal && phase.Terminal() {
		s.live--
	} else if wasTerminal && !phase.Terminal() {
		s.live++
	}
	a.bumpLocked(s, r)
	a.emitLocked(s, EventModified, r)
	s.mu.Unlock()
	for _, fn := range a.watchers {
		fn(r)
	}
}

// Create stores a new request in phase Pending.
func (a *APIServer) Create(name string, spec TraceRequestSpec) (*TraceRequest, error) {
	si := a.ShardOf(name)
	s := a.shards[si]
	s.mu.Lock()
	if _, ok := s.requests[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("cluster: trace request %q already exists", name)
	}
	r := &TraceRequest{Name: name, Spec: spec, Phase: PhasePending, shard: si, seq: a.seq}
	a.seq++
	s.requests[name] = r
	s.order = append(s.order, name)
	s.live++
	a.bumpLocked(s, r)
	a.emitLocked(s, EventAdded, r)
	s.mu.Unlock()
	return r, nil
}

// Get retrieves a request.
func (a *APIServer) Get(name string) (*TraceRequest, bool) {
	s := a.shards[a.ShardOf(name)]
	s.mu.Lock()
	r, ok := s.requests[name]
	s.mu.Unlock()
	return r, ok
}

// Delete removes a request from the server. Only requests in a terminal
// phase can be deleted; cancel a live request first.
func (a *APIServer) Delete(name string) error {
	s := a.shards[a.ShardOf(name)]
	s.mu.Lock()
	r, ok := s.requests[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("cluster: trace request %q not found", name)
	}
	if !r.Phase.Terminal() {
		phase := r.Phase
		s.mu.Unlock()
		return fmt.Errorf("cluster: trace request %q is %s; cancel it before deleting", name, phase)
	}
	delete(s.requests, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	a.emitLocked(s, EventDeleted, r)
	s.mu.Unlock()
	return nil
}

// List returns requests in creation order. Across shards the views are
// merged by the global creation sequence, so the result is identical for
// any shard count.
func (a *APIServer) List() []*TraceRequest {
	if len(a.shards) == 1 {
		s := a.shards[0]
		s.mu.Lock()
		out := make([]*TraceRequest, 0, len(s.order))
		for _, n := range s.order {
			out = append(out, s.requests[n])
		}
		s.mu.Unlock()
		return out
	}
	// k-way merge: each shard's order slice is already ascending in the
	// global creation sequence, so repeatedly taking the smallest head
	// reproduces creation order exactly.
	views := make([][]*TraceRequest, len(a.shards))
	total := 0
	for i, s := range a.shards {
		s.mu.Lock()
		v := make([]*TraceRequest, 0, len(s.order))
		for _, n := range s.order {
			v = append(v, s.requests[n])
		}
		s.mu.Unlock()
		views[i] = v
		total += len(v)
	}
	out := make([]*TraceRequest, 0, total)
	heads := make([]int, len(views))
	for len(out) < total {
		best := -1
		for i, v := range views {
			if heads[i] >= len(v) {
				continue
			}
			if best < 0 || v[heads[i]].seq < views[best][heads[best]].seq {
				best = i
			}
		}
		out = append(out, views[best][heads[best]])
		heads[best]++
	}
	return out
}

// ListShard returns one shard's requests in creation order.
func (a *APIServer) ListShard(si int) []*TraceRequest {
	s := a.shards[si]
	s.mu.Lock()
	out := make([]*TraceRequest, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.requests[n])
	}
	s.mu.Unlock()
	return out
}

// Node is one worker node: a machine plus its EXIST controller and the
// applications deployed on it.
type Node struct {
	// Name is the node name.
	Name string
	// Runtime is the node's provisioning runtime; Machine and Ctrl are
	// cached views of it (kept as fields so call sites stay terse).
	Runtime *node.Runtime
	// Machine is the node's simulated OS/hardware.
	Machine *sched.Machine
	// Ctrl is the node's EXIST controller.
	Ctrl *core.Controller
	// Apps maps app name to its process on this node.
	Apps map[string]*sched.Process
	// MemCapacityMB and MemAllocatedMB model the node's memory ledger
	// (Figure 11: allocation near the ceiling while utilization is low).
	MemCapacityMB  float64
	MemAllocatedMB float64
	// LeaseUntil is the node's health-lease expiry, renewed by
	// heartbeats. The controller treats a node whose lease has lapsed as
	// failed. Leases are only maintained when fault injection is on.
	LeaseUntil simtime.Time
	// Down marks a crashed node. The flag is the physical truth — the
	// control plane only learns of it through lease expiry or a failed
	// contact attempt.
	Down bool
	// Cordoned marks a node gracefully leaving the fleet (rolling
	// maintenance, autoscaler scale-down): it stops taking new sessions
	// but keeps running — and uploading — the ones it has. Driven by the
	// churn fault shape; always false without it.
	Cordoned bool

	crashes int
	leaves  int
	hbSeq   int64
	// hbFn is the cached heartbeat callback; the renewal loop re-arms the
	// same closure every beat instead of allocating one per period.
	hbFn func(now simtime.Time)
	// eng is the engine the node's machine runs on: the cluster's shared
	// engine, or the node's own clock under Config.Jobs parallelism.
	eng *simtime.Engine
	// doneBuf collects sessions that closed while the node was advancing
	// concurrently; the barrier replays them on the control engine.
	doneBuf []doneItem
}

// MgmtStats is the orchestration overhead ledger (Figure 17).
type MgmtStats struct {
	// CPUSeconds is management CPU consumed (core-seconds).
	CPUSeconds float64
	// MemMB is the management pod's resident memory.
	MemMB float64
	// Reconciles counts controller loop iterations.
	Reconciles int64
	// Stalls counts reconcile iterations lost to injected controller
	// stalls.
	Stalls int64
	// Retries counts store operations that were re-attempted after a
	// transient failure.
	Retries int64
	// Resamples counts replacement sessions scheduled after a loss.
	Resamples int64
	// LeaseExpiries counts node failures detected through lease lapse.
	LeaseExpiries int64

	// Syncs counts work-queue items processed by controller replicas.
	Syncs int64
	// Requeues counts rate-limited re-adds of failing work items.
	Requeues int64
	// Conflicts counts compare-and-swap updates lost to a concurrent
	// writer.
	Conflicts int64
	// FencedOps counts store operations rejected because the acting
	// replica's fencing token was stale (a deposed leader).
	FencedOps int64
	// Elections counts leadership acquisitions (first election,
	// failovers, and re-acquires after a lapse).
	Elections int64
	// Shed counts requests degraded by admission control.
	Shed int64
	// FalseSuspicions counts leases that lapsed on a live node because
	// its heartbeats arrived late (gray failure).
	FalseSuspicions int64
	// Relists counts stale-watch resynchronization relists (shard-scoped
	// in the sharded control plane; election relists are not included).
	Relists int64
}

// In-model CPU costs of the replicated control plane's store traffic
// (DESIGN.md §15). The API server is modeled as a single-writer table
// per shard: every operation pays a base cost plus a scan over the
// shard's live objects, which is what sharding amortizes — per-shard
// tables are smaller by the shard count. These charges are pure ledger
// (they schedule no events), and the legacy serial reconciler keeps its
// historical flat charges.
const (
	// syncBaseCPU is one work-queue sync's fixed cost.
	syncBaseCPU = 20e-6
	// storeScanCPU is the per-live-object scan cost a store operation
	// pays in its target shard.
	storeScanCPU = 0.2e-6
	// relistBaseCPU and relistObjCPU price a shard relist: fixed cost
	// plus a per-object charge for the objects actually listed.
	relistBaseCPU = 100e-6
	relistObjCPU  = 1e-6
)

// relistCPU prices a relist of a shard holding k live objects.
func relistCPU(k int) float64 { return relistBaseCPU + relistObjCPU*float64(k) }

// storeOpCPU models one API-server operation against a shard: the
// single-writer scan over that shard's live objects.
func (c *Cluster) storeOpCPU(shard int) float64 {
	return storeScanCPU * float64(c.API.LiveInShard(shard))
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the node count.
	Nodes int
	// CoresPerNode sizes each node's machine.
	CoresPerNode int
	// Seed drives all cluster randomness.
	Seed uint64
	// ReconcileEvery is the controller loop period.
	ReconcileEvery simtime.Duration

	// Faults, when non-nil, enables seeded fault injection and the
	// resilience machinery (leases, deadlines, re-sampling). Strictly
	// opt-in: a nil injector leaves every fault path dormant and the
	// cluster bit-identical to a fault-free run.
	Faults *faults.Injector
	// HeartbeatEvery is the node lease heartbeat period (default 200 ms;
	// only used when Faults is set).
	HeartbeatEvery simtime.Duration
	// LeaseTTL is how long a heartbeat keeps a node's lease valid
	// (default 500 ms).
	LeaseTTL simtime.Duration
	// RequestDeadline is the default per-request deadline applied when
	// Faults is set and the spec gives none (default 10 s).
	RequestDeadline simtime.Duration
	// RetryBase is the initial store-retry backoff (default 10 ms),
	// doubled per attempt with ±50% jitter, capped at RetryMaxBackoff.
	RetryBase simtime.Duration
	// RetryMaxBackoff caps the store-retry backoff after jitter
	// (default 1 s): no retry ever waits longer than this.
	RetryMaxBackoff simtime.Duration
	// RetryMax bounds attempts per store operation (default 5).
	RetryMax int
	// ResampleMax bounds replacement attempts per lost session slot
	// (default 3).
	ResampleMax int

	// UploadBatch, when > 1, coalesces that many finished sessions into
	// one object-store PUT, amortizing per-upload overhead; partially
	// filled batches flush at the next reconcile. A batch retries as a
	// unit with the same backoff as single uploads. 0 or 1 keeps the
	// one-PUT-per-session behavior (and a bit-identical event timeline).
	UploadBatch int

	// Replicas, when > 0, replaces the single periodic reconcile loop
	// with that many controller replicas running lease-based leader
	// election and a watch-driven work queue. Strictly opt-in: zero
	// keeps the legacy serial control plane and its exact event
	// timeline.
	Replicas int
	// Shards splits the API server (and the range leases, watch streams,
	// and work queues of the replicated plane) into that many shards
	// keyed by a stable hash of the request name, letting replicas own
	// disjoint shard ranges and reconcile concurrently. <= 1 keeps a
	// single shard, whose behavior and output are byte-identical to the
	// historical unsharded control plane.
	Shards int
	// ElectionTTL is how long a leader lease stays valid without
	// renewal (default 400 ms).
	ElectionTTL simtime.Duration
	// ElectionRetry is each replica's election/renewal tick period
	// (default 100 ms), staggered one millisecond per replica.
	ElectionRetry simtime.Duration
	// QueueLatency is the watch-to-pump dispatch latency (default 2 ms).
	QueueLatency simtime.Duration
	// QueueTick is the pump's re-arm period while backlog remains
	// (default 20 ms).
	QueueTick simtime.Duration
	// QueueBurst bounds the syncs one pump run performs (default 64).
	QueueBurst int
	// QueueBaseDelay and QueueMaxDelay bound the work queue's per-item
	// exponential-backoff requeue delay (defaults 5 ms and 1 s).
	QueueBaseDelay simtime.Duration
	QueueMaxDelay  simtime.Duration
	// WatchBuf bounds each controller's watch-stream buffer (default
	// 1024); overflow marks the stream stale and forces a relist.
	WatchBuf int
	// AdmitQueueMax, when > 0, sheds Pending requests to PhaseDegraded
	// while the leader's queue backlog is at or over this depth.
	AdmitQueueMax int
	// AdmitCPUBudget, when > 0, sheds Pending requests while average
	// management CPU (cores) exceeds this budget.
	AdmitCPUBudget float64

	// Jobs, when > 1, advances the node machines on their own per-node
	// engines across that many goroutines (DESIGN.md §14). The control
	// plane stays on Eng and only runs while every node clock is parked
	// at its time, so results are byte-identical to the single-engine
	// run at any Jobs value. <= 1 keeps all nodes on the shared engine.
	// Ignored for Lite clusters, whose nodes have no machines to advance.
	Jobs int

	// Lite, when true, builds bookkeeping-only nodes: no machines are
	// provisioned and sessions are virtual timers rather than real
	// traced workloads. The control plane (leases, elections, faults,
	// uploads, phases) behaves identically, which is what lets chaos
	// experiments drive 10k+ node fleets.
	Lite bool
}

// DefaultConfig returns the paper's ten-node evaluation cluster.
func DefaultConfig() Config {
	return Config{Nodes: 10, CoresPerNode: 16, Seed: 1, ReconcileEvery: 100 * simtime.Millisecond}
}

// sessionRec tracks one in-flight session slot for the control plane.
type sessionRec struct {
	req  *TraceRequest
	node *Node
	// attempt is 0 for an originally planned session, k for the k-th
	// replacement in its slot's re-sampling chain.
	attempt int
	// lost marks data destroyed by a node crash before upload.
	lost bool
	// endAt is when the session's window timer fires (open time + period).
	// The parallel barrier may not advance any node past the earliest
	// endAt: the completion calls back into the control plane.
	endAt simtime.Time
	// openSeq orders simultaneous window closes during barrier replay the
	// same way the shared engine fires them: sessions opened earlier armed
	// their timers earlier, so at equal times they close in open order.
	openSeq int64
}

// doneItem is one session completion buffered during a concurrent node
// advance, replayed on the control engine at the barrier.
type doneItem struct {
	at  simtime.Time
	seq int64
	rec *sessionRec
	s   *core.Session
}

// resampleItem is one lost session slot awaiting re-scheduling.
type resampleItem struct {
	req     *TraceRequest
	attempt int
}

// liteSession is one virtual session in a Lite cluster: bookkeeping and
// a completion timer, no traced workload.
type liteSession struct {
	id     string
	rec    *sessionRec
	done   *simtime.Event
	closed bool
}

// Cluster is the whole deployment.
type Cluster struct {
	// Cfg is the construction configuration.
	Cfg Config
	// Eng is the shared virtual clock.
	Eng *simtime.Engine
	// API is the control-plane store.
	API *APIServer
	// Nodes are the workers.
	Nodes []*Node
	// OSS is the raw-session object store.
	OSS *ObjectStore
	// ODPS is the structured result store.
	ODPS *DataStore
	// Mgmt is the orchestration overhead ledger.
	Mgmt MgmtStats
	// Uploads is the data-path volume ledger.
	Uploads UploadStats
	// Binaries is the binary repository the decoder consults.
	Binaries map[string]*binary.Program
	// Controllers are the control-plane replicas (nil in legacy
	// single-reconciler mode).
	Controllers []*Controller
	// Leases is the store-side leader-election record (nil in legacy
	// mode).
	Leases *LeaseStore
	// Readopts samples, in milliseconds, how long each leadership
	// change took to re-adopt every in-flight request.
	Readopts []float64

	profiles      map[string]workload.Profile
	byName        map[string]*Node
	rng           *xrand.Rand
	retryRNG      *xrand.Rand
	resampleRNG   *xrand.Rand
	inflight      map[*core.Session]*sessionRec
	liteInflight  map[string]*liteSession
	reconcileFn   func(now simtime.Time) // cached periodic-reconcile callback
	needResample  []resampleItem
	pendingUpload []uploadItem
	batchSeq      int64
	openSeq       int64
	// queueSeq is the cluster-global work-queue enqueue sequence; shard
	// queues merge pops by it (see queueItem).
	queueSeq int64
	// advancing is true while the node engines run concurrently between
	// barriers; session completions observed then are buffered instead of
	// calling into control-plane state from node goroutines.
	advancing bool
}

// UploadStats tracks what the data path ships to the object store:
// sessions landed, PUT requests issued for them, bytes actually on the
// wire (v2 encoding), and what the same sessions would have cost in the
// v1 format — the compression ratio of the deployment is
// V1Bytes/WireBytes.
type UploadStats struct {
	// Sessions is the number of session blobs successfully uploaded.
	Sessions int64
	// Batches is the number of successful PUT requests carrying them.
	Batches int64
	// WireBytes is the total encoded volume shipped.
	WireBytes int64
	// V1Bytes is the v1-equivalent volume of the same sessions.
	V1Bytes int64
}

// uploadItem is one finished session waiting in the current upload batch.
type uploadItem struct {
	req  *TraceRequest
	rec  *sessionRec
	node *Node
	sid  string
	key  string
	blob []byte
	res  *trace.Session
}

// New builds a cluster with a shared engine and starts the controller
// reconcile loop.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic("cluster: invalid config")
	}
	if cfg.ReconcileEvery <= 0 {
		cfg.ReconcileEvery = 100 * simtime.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 200 * simtime.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 500 * simtime.Millisecond
	}
	if cfg.RequestDeadline <= 0 {
		cfg.RequestDeadline = 10 * simtime.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * simtime.Millisecond
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = simtime.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5
	}
	if cfg.ResampleMax <= 0 {
		cfg.ResampleMax = 3
	}
	if cfg.ElectionTTL <= 0 {
		cfg.ElectionTTL = 400 * simtime.Millisecond
	}
	if cfg.ElectionRetry <= 0 {
		cfg.ElectionRetry = 100 * simtime.Millisecond
	}
	if cfg.QueueLatency <= 0 {
		cfg.QueueLatency = 2 * simtime.Millisecond
	}
	if cfg.QueueTick <= 0 {
		cfg.QueueTick = 20 * simtime.Millisecond
	}
	if cfg.QueueBurst <= 0 {
		cfg.QueueBurst = 64
	}
	if cfg.QueueBaseDelay <= 0 {
		cfg.QueueBaseDelay = 5 * simtime.Millisecond
	}
	if cfg.QueueMaxDelay <= 0 {
		cfg.QueueMaxDelay = simtime.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	c := &Cluster{
		Cfg:          cfg,
		Eng:          simtime.NewEngine(),
		API:          NewAPIServerShards(cfg.Shards),
		OSS:          NewObjectStoreShards(cfg.Shards),
		ODPS:         NewDataStoreShards(cfg.Shards),
		Binaries:     make(map[string]*binary.Program),
		profiles:     make(map[string]workload.Profile),
		byName:       make(map[string]*Node),
		rng:          xrand.Split(cfg.Seed, "cluster"),
		retryRNG:     xrand.Split(cfg.Seed, "cluster/retry"),
		resampleRNG:  xrand.Split(cfg.Seed, "cluster/resample"),
		inflight:     make(map[*core.Session]*sessionRec),
		liteInflight: make(map[string]*liteSession),
		Mgmt:         MgmtStats{MemMB: 40}, // the RCO management pod's footprint
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Name:          fmt.Sprintf("node-%d", i),
			Apps:          make(map[string]*sched.Process),
			MemCapacityMB: 384 * 1024 / float64(cfg.Nodes), // 384 GB class nodes scaled per config
		}
		if !cfg.Lite {
			// Under Jobs parallelism each node's machine runs on its own
			// clock; the barrier in Run keeps it in lockstep with the
			// control plane. Event order within a node is unchanged either
			// way, since one engine still serializes all its events.
			n.eng = c.Eng
			if c.parallel() {
				n.eng = simtime.NewEngine()
			}
			rt := node.Provision(node.Spec{
				Cores:  cfg.CoresPerNode,
				HT:     true, // sched default; nodes keep hyperthreaded topology
				Seed:   cfg.Seed + uint64(i)*7919,
				Engine: n.eng,
			})
			n.Runtime = rt
			n.Machine = rt.Machine
			n.Ctrl = rt.Controller()
		}
		c.Nodes = append(c.Nodes, n)
		c.byName[n.Name] = n
	}
	// The resilience machinery (leases, crash schedules) is armed only
	// when fault injection is on, so fault-free runs schedule exactly the
	// events they always did.
	if cfg.Faults != nil {
		c.OSS.UseFaults(cfg.Faults)
		c.ODPS.UseFaults(cfg.Faults)
		for _, n := range c.Nodes {
			n.LeaseUntil = c.Cfg.LeaseTTL
			c.scheduleHeartbeat(n)
			c.scheduleCrash(n)
			c.scheduleChurn(n)
		}
	}
	if cfg.Replicas > 0 {
		// Replicated control plane: leader-elected controllers drive the
		// work; no periodic serial reconcile loop runs.
		c.Leases = NewLeaseStore(cfg.Shards)
		c.startControllers()
		return c
	}
	c.scheduleReconcile()
	return c
}

// replicated reports whether the replicated control plane is active.
func (c *Cluster) replicated() bool { return c.Cfg.Replicas > 0 }

// parallel reports whether node machines run on per-node engines.
func (c *Cluster) parallel() bool { return c.Cfg.Jobs > 1 && !c.Cfg.Lite }

// Node returns a node by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.byName[name]
	return n, ok
}

// Deploy installs a workload profile on the named nodes (all nodes when
// names is nil) and registers its binary in the repository.
func (c *Cluster) Deploy(p workload.Profile, names []string, opt workload.InstallOpts) error {
	if names == nil {
		for _, n := range c.Nodes {
			names = append(names, n.Name)
		}
	}
	if opt.Walker && opt.Prog == nil {
		opt.Prog = node.Program(p, opt.Seed)
	}
	c.profiles[p.Name] = p
	if opt.Prog != nil {
		c.Binaries[p.Name] = opt.Prog
	}
	for _, name := range names {
		n, ok := c.Node(name)
		if !ok {
			return fmt.Errorf("cluster: unknown node %q", name)
		}
		if _, dup := n.Apps[p.Name]; dup {
			return fmt.Errorf("cluster: app %q already on %q", p.Name, name)
		}
		if c.Cfg.Lite {
			// Bookkeeping-only deployment: the app is present on the node
			// (placement, health, sessions all work) but no process runs.
			n.Apps[p.Name] = nil
		} else {
			nodeOpt := opt
			nodeOpt.Seed = opt.Seed ^ hashName(name)
			n.Apps[p.Name] = p.Install(n.Machine, nodeOpt)
		}
		// Ledger: services reserve memory aggressively (Figure 11).
		n.MemAllocatedMB += 0.6 * n.MemCapacityMB / float64(len(c.Nodes))
	}
	return nil
}

// Request files a TraceRequest through the configuration interface. The
// request's deadline is armed immediately so even a fully stalled
// controller cannot leave it hanging.
func (c *Cluster) Request(name string, spec TraceRequestSpec) (*TraceRequest, error) {
	if _, ok := c.profiles[spec.App]; !ok {
		return nil, fmt.Errorf("cluster: app %q not deployed", spec.App)
	}
	r, err := c.API.Create(name, spec)
	if err != nil {
		return nil, err
	}
	c.armDeadline(r, c.Eng.Now())
	return r, nil
}

// Run advances the whole cluster to the given time. With Config.Jobs > 1
// the node machines advance concurrently between control-plane events;
// see runParallel for why the result is identical to the shared-engine run.
func (c *Cluster) Run(until simtime.Time) {
	if c.parallel() {
		c.runParallel(until)
		return
	}
	c.Eng.RunUntil(until)
}

// runParallel is the conservative-barrier scheduler for per-node engines.
//
// The cluster's event graph has exactly two cross-engine edges. Control →
// node: a control-plane event opens, cancels, or crashes sessions on a
// node, synchronously, at the control clock's current time. Node →
// control: a session window closes on the node's clock and its OnDone
// callback resolves the slot on the control plane. Everything else is
// node-local (machine scheduling, tracing) or control-local (reconciles,
// heartbeats, retries, stores).
//
// Both edges are honored by never letting any clock run past the next
// potential edge: each round picks the horizon tc = min(next control
// event, earliest in-flight window close, until), advances every node
// engine to tc concurrently — their event streams are mutually
// independent below tc — then replays the window closes that were
// buffered during the advance in (time, open-order), and finally fires
// the control events at tc with every node clock parked exactly there.
// Control code therefore always observes node clocks equal to its own,
// and node sessions open/close in the same order, at the same times, with
// the same per-engine event interleaving as on the shared engine: the
// run's output is byte-identical at any Jobs value.
func (c *Cluster) runParallel(until simtime.Time) {
	for {
		tc := until
		if t, ok := c.Eng.PeekTime(); ok && t < tc {
			tc = t
		}
		for _, rec := range c.inflight {
			if rec.endAt < tc {
				tc = rec.endAt
			}
		}

		// Advance all node machines to tc on worker goroutines. Window
		// closes at exactly tc buffer themselves (see openSession).
		c.advancing = true
		parallel.ForEach(len(c.Nodes), c.Cfg.Jobs, func(i int) {
			c.Nodes[i].eng.RunUntil(tc)
		})
		c.advancing = false

		// Replay buffered window closes on the control clock. They all
		// landed at tc (earlier closes would have bounded tc), and at equal
		// times the shared engine fires window timers in session-open order
		// — the order their timers were armed.
		var done []doneItem
		for _, n := range c.Nodes {
			done = append(done, n.doneBuf...)
			n.doneBuf = n.doneBuf[:0]
		}
		sort.Slice(done, func(i, j int) bool {
			if done[i].at != done[j].at {
				return done[i].at < done[j].at
			}
			return done[i].seq < done[j].seq
		})
		if now := c.Eng.Now(); tc > now {
			c.Eng.Advance(tc - now)
		}
		for _, d := range done {
			c.finishSession(d.rec, d.s)
		}

		// Fire the control events at tc (which may open or cancel node
		// sessions — every node clock now equals the control clock).
		c.Eng.RunUntil(tc)
		if tc >= until {
			return
		}
	}
}

// scheduleReconcile arms the periodic controller loop.
func (c *Cluster) scheduleReconcile() {
	if c.reconcileFn == nil {
		c.reconcileFn = func(now simtime.Time) {
			c.reconcile(now)
			c.Eng.AfterDetached(c.Cfg.ReconcileEvery, c.reconcileFn)
		}
	}
	c.Eng.AfterDetached(c.Cfg.ReconcileEvery, c.reconcileFn)
}

// scheduleHeartbeat arms one node's lease renewal loop. A down node
// skips renewals, so its lease lapses and the controller detects the
// failure. A gray node's heartbeats leave on time but arrive late: its
// lease can lapse while the node is alive and working — a false
// suspicion, the signature of gray failure.
func (c *Cluster) scheduleHeartbeat(n *Node) {
	if n.hbFn == nil {
		n.hbFn = func(now simtime.Time) { c.heartbeat(n, now) }
	}
	c.Eng.AfterDetached(c.Cfg.HeartbeatEvery, n.hbFn)
}

// heartbeat is one beat of a node's lease renewal loop; it re-arms itself.
func (c *Cluster) heartbeat(n *Node, now simtime.Time) {
	if !n.Down {
		if d := c.Cfg.Faults.HeartbeatDelay(n.Name, n.hbSeq); d > 0 {
			c.Eng.AfterDetached(d, func(arrived simtime.Time) {
				if n.Down {
					return
				}
				if n.LeaseUntil <= arrived {
					c.Mgmt.FalseSuspicions++
				}
				if until := now + c.Cfg.LeaseTTL; until > n.LeaseUntil {
					n.LeaseUntil = until
				}
			})
		} else {
			n.LeaseUntil = now + c.Cfg.LeaseTTL
		}
	}
	n.hbSeq++
	c.Eng.AfterDetached(c.Cfg.HeartbeatEvery, n.hbFn)
}

// scheduleCrash arms the node's next injected crash, if crash injection
// is configured.
func (c *Cluster) scheduleCrash(n *Node) {
	d, ok := c.Cfg.Faults.NextCrash(n.Name, n.crashes)
	if !ok {
		return
	}
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		n.crashes++
		c.crashNode(n, now)
		c.Eng.AfterDetached(c.Cfg.Faults.Config().CrashDowntime, func(now simtime.Time) {
			n.Down = false
			n.LeaseUntil = now + c.Cfg.LeaseTTL
			c.scheduleCrash(n)
		})
	})
}

// crashNode takes a node down: every in-flight session on it is destroyed
// before upload. Sessions are closed in session-ID order so fault runs
// stay deterministic.
func (c *Cluster) crashNode(n *Node, now simtime.Time) {
	c.Cfg.Faults.CountCrash()
	n.Down = true
	var doomed []*core.Session
	for s, rec := range c.inflight {
		if rec.node == n {
			doomed = append(doomed, s)
		}
	}
	sort.Slice(doomed, func(i, j int) bool {
		return doomed[i].Cfg.SessionID < doomed[j].Cfg.SessionID
	})
	for _, s := range doomed {
		c.inflight[s].lost = true
		s.Cancel() // fires OnDone; finishSession sees lost and re-samples
	}
	// Lite sessions on the node die the same way, in session-ID order.
	var doomedLite []*liteSession
	for _, ls := range c.liteInflight {
		if ls.rec.node == n {
			doomedLite = append(doomedLite, ls)
		}
	}
	sort.Slice(doomedLite, func(i, j int) bool { return doomedLite[i].id < doomedLite[j].id })
	for _, ls := range doomedLite {
		ls.rec.lost = true
		ls.done.Cancel()
		c.finishLite(ls, now)
	}
}

// nodeHealthy reports whether the control plane considers a node
// schedulable. Without fault injection every node is healthy; with it,
// health is the lease — a crashed node keeps passing until its lease
// lapses, exactly the detection delay a real lease scheme has. A
// cordoned node (graceful leave) is excluded immediately: leaving is
// announced, not detected.
func (c *Cluster) nodeHealthy(n *Node, now simtime.Time) bool {
	if c.Cfg.Faults == nil {
		return true
	}
	return !n.Cordoned && n.LeaseUntil > now
}

// scheduleChurn arms the node's next graceful leave, if churn injection
// is configured. Churn is continuous: leave → drain → rejoin → next
// leave, each interval drawn from the injector's seeded schedule. A
// leave cordons the node (no new sessions; in-flight ones drain to
// completion and still upload); the rejoin uncordons it with a fresh
// lease, making it immediately schedulable again.
func (c *Cluster) scheduleChurn(n *Node) {
	d, down, ok := c.Cfg.Faults.NextChurn(n.Name, n.leaves)
	if !ok {
		return
	}
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		n.leaves++
		c.Cfg.Faults.CountLeave()
		n.Cordoned = true
		c.Eng.AfterDetached(down, func(now simtime.Time) {
			n.Cordoned = false
			n.LeaseUntil = now + c.Cfg.LeaseTTL
			c.Cfg.Faults.CountJoin()
			c.scheduleChurn(n)
		})
	})
}

// reconcile is the controller body: it moves Pending requests to Running
// by opening node sessions, re-samples lost sessions onto healthy nodes,
// and charges management CPU.
func (c *Cluster) reconcile(now simtime.Time) {
	c.Mgmt.Reconciles++
	if c.Cfg.Faults.StallReconcile(c.Mgmt.Reconciles) {
		// Injected controller stall: the iteration burns its base cost
		// but does no work. Requests simply wait for the next loop.
		c.Mgmt.Stalls++
		c.Mgmt.CPUSeconds += 50e-6
		return
	}
	// Loop cost: list + status updates; grows with active requests.
	active := 0
	for _, r := range c.API.List() {
		if r.Phase == PhaseRunning {
			active++
		}
	}
	c.Mgmt.CPUSeconds += (50e-6) + float64(active)*20e-6

	// Failure detection: count lease expiries of nodes not yet marked.
	if c.Cfg.Faults != nil {
		for _, n := range c.Nodes {
			if n.Down && n.LeaseUntil <= now && n.LeaseUntil > now-c.Cfg.ReconcileEvery {
				c.Mgmt.LeaseExpiries++
			}
		}
	}

	for _, r := range c.API.List() {
		if r.Phase.Terminal() {
			continue
		}
		c.armDeadline(r, now)
		if r.Phase != PhasePending {
			continue
		}
		if err := c.start(r, now); err != nil {
			c.terminate(r, PhaseFailed, err.Error())
		}
	}

	// Ship any partially filled upload batch so finished sessions never
	// wait more than one reconcile period.
	c.flushUploads()

	c.processResamples(now)
}

// armDeadline schedules the request's terminal deadline once. Deadlines
// default on only under fault injection; a fault-free cluster arms one
// only when the spec asks for it.
func (c *Cluster) armDeadline(r *TraceRequest, now simtime.Time) {
	if r.deadlineEv != nil {
		return
	}
	d := r.Spec.Deadline
	if d <= 0 && c.Cfg.Faults != nil {
		d = c.Cfg.RequestDeadline
	}
	if d <= 0 {
		return
	}
	r.deadlineEv = c.Eng.After(d, func(now simtime.Time) {
		r.deadlineEv = nil
		c.expire(r, now)
	})
}

// expire forces a stuck request to a terminal phase at its deadline:
// whatever coverage landed is kept, everything still in flight is
// abandoned.
func (c *Cluster) expire(r *TraceRequest, now simtime.Time) {
	if r.Phase.Terminal() {
		return
	}
	if len(r.SessionKeys) > 0 {
		c.terminate(r, PhaseDegraded, fmt.Sprintf(
			"deadline exceeded: %d/%d sessions captured", len(r.SessionKeys), r.Planned))
	} else {
		c.terminate(r, PhaseFailed, "deadline exceeded with no sessions captured")
	}
	for _, s := range r.sessions {
		s.Cancel() // finishSession drops the data: the request is terminal
	}
}

// terminate moves a request to a terminal phase and disarms its deadline.
func (c *Cluster) terminate(r *TraceRequest, phase Phase, msg string) {
	if r.deadlineEv != nil {
		r.deadlineEv.Cancel()
		r.deadlineEv = nil
	}
	c.API.setPhase(r, phase, msg)
}

// start opens the node sessions for one request (legacy serial path).
func (c *Cluster) start(r *TraceRequest, now simtime.Time) error {
	period, scale, selected, retry, err := c.plan(r, now)
	if err != nil {
		return err
	}
	if retry {
		// Every host's lease has lapsed; stay Pending and let a later
		// reconcile (or the deadline) resolve the request.
		return nil
	}
	c.record(r, period, scale, selected)
	c.API.setPhase(r, PhaseRunning, "")
	return c.openPlanned(r, selected)
}

// plan computes one request's temporal decision (period), space scale,
// and spatial sampling (selected nodes). retry is set when no healthy
// host exists right now but fault injection means one may recover.
func (c *Cluster) plan(r *TraceRequest, now simtime.Time) (period simtime.Duration, scale float64, selected []*Node, retry bool, err error) {
	profile := c.profiles[r.Spec.App]
	prog := c.Binaries[r.Spec.App]

	// Temporal decider: period from app complexity unless overridden.
	period = r.Spec.Period
	if period <= 0 {
		var binBytes uint64
		if prog != nil {
			binBytes = prog.TextSize
		}
		period = coverage.DecidePeriod(coverage.Complexity{
			Priority:    profile.Priority,
			BinaryBytes: binBytes,
			PastIssues:  profile.PastIssues,
		})
	}

	// Spatial sampler: pick repetitions among healthy nodes hosting the
	// app (health is lease-based and always true without fault injection).
	if r.Spec.Nodes != nil {
		// Pinned placement: resolve the named nodes directly instead of
		// scanning the whole fleet — at 100k nodes the full scan per
		// request dominates the control plane's real CPU. The fleet-wide
		// scan only runs in the rare nothing-selected case, where the
		// retry-vs-fail decision needs it.
		for _, want := range r.Spec.Nodes {
			n, ok := c.byName[want]
			if !ok {
				continue
			}
			if _, hosted := n.Apps[r.Spec.App]; hosted && c.nodeHealthy(n, now) {
				selected = append(selected, n)
			}
		}
		if len(selected) == 0 {
			healthyAnywhere := false
			for _, n := range c.Nodes {
				if _, ok := n.Apps[r.Spec.App]; ok && c.nodeHealthy(n, now) {
					healthyAnywhere = true
					break
				}
			}
			if !healthyAnywhere {
				if c.Cfg.Faults != nil {
					return 0, 0, nil, true, nil
				}
				return 0, 0, nil, false, fmt.Errorf("app %q deployed nowhere", r.Spec.App)
			}
			return 0, 0, nil, false, fmt.Errorf("no nodes selected for %q", r.Spec.App)
		}
	} else {
		var hosts []*Node
		for _, n := range c.Nodes {
			if _, ok := n.Apps[r.Spec.App]; ok && c.nodeHealthy(n, now) {
				hosts = append(hosts, n)
			}
		}
		if len(hosts) == 0 {
			if c.Cfg.Faults != nil {
				return 0, 0, nil, true, nil
			}
			return 0, 0, nil, false, fmt.Errorf("app %q deployed nowhere", r.Spec.App)
		}
		reps := make([]coverage.Repetition, len(hosts))
		for i, n := range hosts {
			reps[i] = coverage.Repetition{Node: n.Name}
		}
		idx := coverage.SelectRepetitions(reps, coverage.SampleSpec{
			Purpose:  r.Spec.Purpose,
			Priority: profile.Priority,
		}, c.rng)
		for _, i := range idx {
			selected = append(selected, hosts[i])
		}
		if len(selected) == 0 {
			return 0, 0, nil, false, fmt.Errorf("no nodes selected for %q", r.Spec.App)
		}
	}

	scale = r.Spec.Scale
	if scale <= 0 {
		scale = trace.SpaceScale
	}
	return period, scale, selected, false, nil
}

// record stores the plan on the request object.
func (c *Cluster) record(r *TraceRequest, period simtime.Duration, scale float64, selected []*Node) {
	r.period = period
	r.scale = scale
	r.Planned = len(selected)
	r.usedNodes = make(map[string]bool)
}

// openPlanned opens the request's planned sessions. Under fault
// injection an unreachable node is a survivable event: the slot stays
// pending and is routed to re-sampling.
func (c *Cluster) openPlanned(r *TraceRequest, selected []*Node) error {
	for _, n := range selected {
		if err := c.openSession(r, n, 0); err != nil {
			if c.Cfg.Faults == nil {
				return err
			}
			r.pending++
			c.loseSlot(r, 0)
			continue
		}
		r.pending++
	}
	return nil
}

// launch is the replicated-plane start commit: the caller already won
// the Pending → Running CAS, so recording the plan and opening the
// sessions here can never race another replica.
func (c *Cluster) launch(r *TraceRequest, period simtime.Duration, scale float64, selected []*Node) error {
	c.record(r, period, scale, selected)
	return c.openPlanned(r, selected)
}

// loseSlot routes one lost session slot to re-sampling. The legacy
// plane queues it in controller memory for the next reconcile; the
// replicated plane records it on the request object (so it survives
// failover) and lets the watch event wake the leader.
func (c *Cluster) loseSlot(r *TraceRequest, attempt int) {
	if c.replicated() {
		r.resampleSlots = append(r.resampleSlots, attempt)
		c.Mgmt.CPUSeconds += c.storeOpCPU(r.shard)
		c.API.Touch(r)
		return
	}
	c.needResample = append(c.needResample, resampleItem{req: r, attempt: attempt})
}

// openSession opens one tracing session on a node for a request. attempt
// is 0 for planned sessions and k for the k-th replacement in a slot's
// re-sampling chain.
func (c *Cluster) openSession(r *TraceRequest, n *Node, attempt int) error {
	if n.Down {
		// The lease may still look valid, but contacting the node fails.
		return fmt.Errorf("cluster: node %s unreachable", n.Name)
	}
	if c.Cfg.Lite {
		return c.openLiteSession(r, n, attempt)
	}
	cfg := core.DefaultConfig()
	cfg.Period = r.period
	cfg.Scale = r.scale
	cfg.SessionID = fmt.Sprintf("%s/%s", r.Name, n.Name)
	if attempt > 0 {
		cfg.SessionID = fmt.Sprintf("%s/%s/r%d", r.Name, n.Name, attempt)
	}
	cfg.Node = n.Name
	cfg.Seed = c.Cfg.Seed ^ hashName(cfg.SessionID)
	if r.Spec.MemBudget > 0 {
		cfg.Mem = memalloc.Config{
			Budget:     r.Spec.MemBudget,
			PerCoreMin: 4 << 20,
			PerCoreMax: 128 << 20,
		}
	}
	sess, err := n.Ctrl.Trace(n.Apps[r.Spec.App], cfg)
	if err != nil {
		return err
	}
	r.usedNodes[n.Name] = true
	r.sessions = append(r.sessions, sess)
	rec := &sessionRec{
		req: r, node: n, attempt: attempt,
		endAt:   n.eng.Now() + cfg.Period,
		openSeq: c.openSeq,
	}
	c.openSeq++
	c.inflight[sess] = rec
	sess.OnDone(func(s *core.Session) {
		if c.advancing {
			// Concurrent node advance: park the completion for the
			// barrier's replay instead of touching control state from a
			// node goroutine.
			n.doneBuf = append(n.doneBuf, doneItem{at: n.eng.Now(), seq: rec.openSeq, rec: rec, s: s})
			return
		}
		c.finishSession(rec, s)
	})
	return nil
}

// openLiteSession opens a virtual session on a Lite node: the same
// bookkeeping as a real session, with a completion timer in place of a
// traced workload.
func (c *Cluster) openLiteSession(r *TraceRequest, n *Node, attempt int) error {
	id := fmt.Sprintf("%s/%s", r.Name, n.Name)
	if attempt > 0 {
		id = fmt.Sprintf("%s/%s/r%d", r.Name, n.Name, attempt)
	}
	r.usedNodes[n.Name] = true
	ls := &liteSession{id: id, rec: &sessionRec{req: r, node: n, attempt: attempt}}
	c.liteInflight[id] = ls
	// Virtual session length: roughly the request's sampling period,
	// plus a per-session spread keyed by the session ID so fleet
	// completions don't all land on one tick and runs stay
	// deterministic.
	base := r.period
	if base <= 0 {
		base = 20 * simtime.Millisecond
	}
	dur := base + simtime.Duration(hashName(id)%uint64(base))
	ls.done = c.Eng.After(dur, func(now simtime.Time) { c.finishLite(ls, now) })
	return nil
}

// finishLite resolves one virtual session: fate from the injector,
// a synthetic upload through the same retrying data path, and slot
// completion.
func (c *Cluster) finishLite(ls *liteSession, now simtime.Time) {
	if ls.closed {
		return
	}
	ls.closed = true
	delete(c.liteInflight, ls.id)
	r := ls.rec.req
	if r.Phase.Terminal() {
		return
	}
	if ls.rec.lost || c.Cfg.Faults.SessionFate(ls.id) == faults.FateLost {
		c.loseSlot(r, ls.rec.attempt)
		return
	}
	// Corruption and truncation don't destroy a lite capture — the blob
	// is synthetic either way.
	key := "sessions/" + ls.id
	blob := []byte(ls.id)
	c.putWithRetry(r, key, blob, 0, func(ok bool) {
		if !ok {
			c.loseSlot(r, ls.rec.attempt)
			return
		}
		c.Uploads.Batches++
		r.SessionKeys = append(r.SessionKeys, key)
		c.Mgmt.CPUSeconds += 100e-6
		if c.replicated() {
			// The status append is a store write; it pays the shard scan.
			c.Mgmt.CPUSeconds += c.storeOpCPU(r.shard)
		}
		c.Uploads.Sessions++
		c.Uploads.WireBytes += int64(len(blob))
		c.sessionDone(r)
	})
}

// processResamples reschedules lost session slots onto healthy nodes —
// RCO's spatial sampler re-run over the repetitions that still hold. A
// slot whose re-sampling budget is exhausted (or that has no healthy
// untraced repetition left) is given up, degrading the request to partial
// coverage instead of failing it.
func (c *Cluster) processResamples(now simtime.Time) {
	if len(c.needResample) == 0 {
		return
	}
	queue := c.needResample
	c.needResample = nil
	for _, it := range queue {
		r := it.req
		if r.Phase.Terminal() || r.cancelling {
			continue
		}
		if it.attempt >= c.Cfg.ResampleMax {
			c.giveUpSlot(r)
			continue
		}
		reps := c.replacementCandidates(r, now)
		idx := coverage.SelectReplacements(reps, r.usedNodes, 1, c.resampleRNG)
		if len(idx) == 0 {
			// No healthy untraced repetition this round; burn one attempt
			// and retry next reconcile so a recovering node can pick the
			// slot up, without spinning forever.
			c.needResample = append(c.needResample, resampleItem{req: r, attempt: it.attempt + 1})
			continue
		}
		n, _ := c.Node(reps[idx[0]].Node)
		if err := c.openSession(r, n, it.attempt+1); err != nil {
			c.needResample = append(c.needResample, resampleItem{req: r, attempt: it.attempt + 1})
			continue
		}
		r.Resampled++
		c.Mgmt.Resamples++
		c.Mgmt.CPUSeconds += 50e-6
	}
}

// replacementCandidates lists the request's app repetitions with their
// current health, for the re-sampler.
func (c *Cluster) replacementCandidates(r *TraceRequest, now simtime.Time) []coverage.Repetition {
	var reps []coverage.Repetition
	for _, n := range c.Nodes {
		if _, ok := n.Apps[r.Spec.App]; !ok {
			continue
		}
		reps = append(reps, coverage.Repetition{Node: n.Name, Down: !c.nodeHealthy(n, now)})
	}
	return reps
}

// giveUpSlot abandons one lost session slot: the request will complete
// with partial coverage (or fail if nothing landed at all).
func (c *Cluster) giveUpSlot(r *TraceRequest) {
	r.Lost++
	c.sessionDone(r)
}

// Cancel aborts a live request: every open node session is closed
// immediately, whatever was captured so far is kept, and the request
// moves to the terminal Cancelled phase.
func (c *Cluster) Cancel(r *TraceRequest) {
	if r.Phase.Terminal() {
		return
	}
	r.cancelling = true
	for _, s := range r.sessions {
		s.Cancel() // fires OnDone, which uploads the partial capture
	}
	c.terminate(r, PhaseCancelled, "cancelled by operator")
}

// Delete removes a terminal request and its uploaded sessions from the
// stores. Live requests must be cancelled first.
func (c *Cluster) Delete(name string) error {
	r, ok := c.API.Get(name)
	if !ok {
		return fmt.Errorf("cluster: trace request %q not found", name)
	}
	if !r.Phase.Terminal() {
		return fmt.Errorf("cluster: trace request %q is %s; cancel it before deleting", name, r.Phase)
	}
	for _, key := range r.SessionKeys {
		c.OSS.Delete(key)
	}
	return c.API.Delete(name)
}

// finishSession resolves one closed session: consult the fault injector
// for the data's fate, upload with retries, decode into the structured
// store, and complete the request when the last slot resolves.
func (c *Cluster) finishSession(rec *sessionRec, s *core.Session) {
	r, n := rec.req, rec.node
	delete(c.inflight, s)
	if r.Phase.Terminal() {
		// Deadline or cancellation already resolved the request; the
		// late capture is dropped.
		return
	}
	if rec.lost {
		// Node crash destroyed the data before upload.
		c.loseSlot(r, rec.attempt)
		return
	}
	res, err := s.Result()
	if err != nil {
		c.terminate(r, PhaseFailed, err.Error())
		return
	}

	switch c.Cfg.Faults.SessionFate(s.Cfg.SessionID) {
	case faults.FateLost:
		// The capture vanished between window close and upload.
		c.loseSlot(r, rec.attempt)
		return
	case faults.FateCorrupted:
		for i := range res.Cores {
			c.Cfg.Faults.CorruptBuffer(fmt.Sprintf("%s#%d", s.Cfg.SessionID, res.Cores[i].Core), res.Cores[i].Data)
		}
	case faults.FateTruncated:
		for i := range res.Cores {
			res.Cores[i].Data = c.Cfg.Faults.TruncateBuffer(
				fmt.Sprintf("%s#%d", s.Cfg.SessionID, res.Cores[i].Core), res.Cores[i].Data)
		}
	}

	it := uploadItem{
		req: r, rec: rec, node: n,
		sid:  s.Cfg.SessionID,
		key:  "sessions/" + s.Cfg.SessionID,
		blob: res.Marshal(),
		res:  res,
	}
	if c.Cfg.UploadBatch > 1 {
		// Batched data path: hold the blob until the batch fills (or the
		// next reconcile flushes the remainder).
		c.pendingUpload = append(c.pendingUpload, it)
		if len(c.pendingUpload) >= c.Cfg.UploadBatch {
			c.flushUploads()
		}
		return
	}
	c.putWithRetry(r, it.key, it.blob, 0, func(ok bool) {
		if !ok {
			// Upload exhausted its retries: the data is gone; re-sample.
			c.loseSlot(r, rec.attempt)
			return
		}
		c.Uploads.Batches++
		c.uploadLanded(it)
	})
}

// uploadLanded runs the post-upload bookkeeping for one session whose
// blob is safely in the object store: ledger, structured decode, and
// slot completion. Shared by the single-PUT and batched paths.
func (c *Cluster) uploadLanded(it uploadItem) {
	r := it.req
	r.SessionKeys = append(r.SessionKeys, it.key)
	// Per-session management cost: upload bookkeeping and status update.
	c.Mgmt.CPUSeconds += 100e-6
	if c.replicated() {
		// The status append is a store write; it pays the shard scan.
		c.Mgmt.CPUSeconds += c.storeOpCPU(r.shard)
	}
	c.Uploads.Sessions++
	c.Uploads.WireBytes += int64(len(it.blob))
	c.Uploads.V1Bytes += int64(trace.V1Size(it.res))

	// Decode against the binary repository and persist structured rows.
	if prog, ok := c.Binaries[r.Spec.App]; ok {
		dec := decode.Decode(it.res, prog)
		rows := make([]Row, 0, len(dec.FuncEntries))
		for fn, count := range dec.FuncEntries {
			rows = append(rows, Row{
				App: r.Spec.App, Node: it.node.Name, Session: it.sid,
				Key: prog.Funcs[fn].Name, Value: float64(count),
			})
		}
		c.insertWithRetry(r, it.sid, rows, 0)
	}
	c.sessionDone(r)
}

// flushUploads ships the pending batch in one object-store PUT.
func (c *Cluster) flushUploads() {
	if len(c.pendingUpload) == 0 {
		return
	}
	items := c.pendingUpload
	c.pendingUpload = nil
	c.batchSeq++
	c.putBatchWithRetry(fmt.Sprintf("batch/%d", c.batchSeq), items, 0)
}

// putBatchWithRetry uploads a batch of session blobs as one atomic PUT
// with the same backoff scheme as putWithRetry. The batch succeeds or
// retries as a unit; sessions whose request reached a terminal phase
// while the batch waited are dropped at delivery (exactly as a late
// single-session retry abandons its upload), and when the batch exhausts
// its retries every remaining session re-samples exactly once.
func (c *Cluster) putBatchWithRetry(batchKey string, items []uploadItem, attempt int) {
	live := items[:0]
	for _, it := range items {
		if !it.req.Phase.Terminal() {
			live = append(live, it)
		}
	}
	if len(live) == 0 {
		return
	}
	keys := make([]string, len(live))
	blobs := make([][]byte, len(live))
	for i, it := range live {
		keys[i] = it.key
		blobs[i] = it.blob
	}
	err := c.OSS.PutBatch(batchKey, keys, blobs)
	if err == nil {
		c.Uploads.Batches++
		for _, it := range live {
			if attempt > 0 {
				it.req.Message = ""
			}
			c.uploadLanded(it)
		}
		return
	}
	if attempt+1 >= c.Cfg.RetryMax {
		for _, it := range live {
			it.req.Message = fmt.Sprintf("upload %s failed after %d attempts: %v", it.key, attempt+1, err)
			c.loseSlot(it.req, it.rec.attempt)
		}
		return
	}
	for _, it := range live {
		if !it.req.Phase.Terminal() {
			it.req.Message = fmt.Sprintf("%v; retrying", err)
		}
	}
	c.Mgmt.Retries++
	c.Mgmt.CPUSeconds += 50e-6
	c.Eng.AfterDetached(c.backoff(attempt), func(simtime.Time) {
		c.putBatchWithRetry(batchKey, live, attempt+1)
	})
}

// putWithRetry uploads a blob with exponential backoff and jitter. The
// request's Message tracks the transient error while retrying and is
// cleared when the upload recovers. done is called exactly once, inline
// on immediate success (preserving fault-free event order).
func (c *Cluster) putWithRetry(r *TraceRequest, key string, blob []byte, attempt int, done func(ok bool)) {
	err := c.OSS.Put(key, blob)
	if err == nil {
		if attempt > 0 && !r.Phase.Terminal() {
			// Recovered after transient failures: clear the stale message.
			r.Message = ""
		}
		done(true)
		return
	}
	if attempt+1 >= c.Cfg.RetryMax {
		r.Message = fmt.Sprintf("upload %s failed after %d attempts: %v", key, attempt+1, err)
		done(false)
		return
	}
	if !r.Phase.Terminal() {
		r.Message = fmt.Sprintf("%v; retrying", err)
	}
	c.Mgmt.Retries++
	c.Mgmt.CPUSeconds += 50e-6
	c.Eng.AfterDetached(c.backoff(attempt), func(simtime.Time) {
		if r.Phase.Terminal() {
			return
		}
		c.putWithRetry(r, key, blob, attempt+1, done)
	})
}

// insertWithRetry lands decoded rows with the same backoff scheme. A
// batch that exhausts its retries is dropped: raw data is already safe in
// the object store, so structured rows are recoverable offline.
func (c *Cluster) insertWithRetry(r *TraceRequest, batch string, rows []Row, attempt int) {
	err := c.ODPS.Insert(batch, rows...)
	if err == nil {
		if attempt > 0 && !r.Phase.Terminal() {
			r.Message = ""
		}
		return
	}
	if attempt+1 >= c.Cfg.RetryMax {
		return
	}
	if !r.Phase.Terminal() {
		r.Message = fmt.Sprintf("%v; retrying", err)
	}
	c.Mgmt.Retries++
	c.Mgmt.CPUSeconds += 50e-6
	c.Eng.AfterDetached(c.backoff(attempt), func(simtime.Time) {
		c.insertWithRetry(r, batch, rows, attempt+1)
	})
}

// backoff returns the jittered exponential delay for a retry attempt,
// clamped to RetryMaxBackoff after jittering — the cap is a hard bound
// on the wait, not on the pre-jitter base (which +50% jitter could
// otherwise exceed by half).
func (c *Cluster) backoff(attempt int) simtime.Duration {
	max := c.Cfg.RetryMaxBackoff
	d := c.Cfg.RetryBase
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	j := simtime.Duration(c.retryRNG.Jitter(float64(d), 0.5))
	if j > max {
		j = max
	}
	return j
}

// sessionDone resolves one session slot and completes the request when
// the last slot lands.
func (c *Cluster) sessionDone(r *TraceRequest) {
	r.pending--
	if r.pending > 0 || r.Phase != PhaseRunning || r.cancelling {
		return
	}
	switch {
	case len(r.SessionKeys) == 0:
		c.terminate(r, PhaseFailed, fmt.Sprintf("all %d sessions lost", r.Planned))
	case r.Lost > 0:
		c.terminate(r, PhaseDegraded, fmt.Sprintf(
			"%d/%d sessions lost; completed with partial coverage", r.Lost, r.Planned))
	default:
		c.terminate(r, PhaseCompleted, "")
	}
}

// ManagementCores reports average management CPU cores used since start
// (Figure 17's orchestration overhead).
func (c *Cluster) ManagementCores() float64 {
	elapsed := c.Eng.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	return c.Mgmt.CPUSeconds / elapsed
}

// hashName derives a stable seed perturbation from a string.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
