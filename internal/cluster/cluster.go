// Package cluster is the cloud-native integration layer of EXIST (§4 of
// the paper): a Kubernetes-style API server holding TraceRequest custom
// resources, a reconciling controller that turns requests into node-level
// tracing sessions (applying RCO's temporal and spatial decisions), an
// object store for raw sessions (OSS stand-in), and a structured store
// for decoded results (ODPS stand-in).
//
// All nodes share one virtual clock, so cluster orchestration and
// node-level scheduling interleave deterministically in a single timeline.
package cluster

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/coverage"
	"exist/internal/decode"
	"exist/internal/memalloc"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

// Phase is a TraceRequest lifecycle phase.
type Phase string

// TraceRequest phases.
const (
	PhasePending   Phase = "Pending"
	PhaseRunning   Phase = "Running"
	PhaseCompleted Phase = "Completed"
	PhaseFailed    Phase = "Failed"
)

// TraceRequestSpec is the user-facing configuration interface: what to
// trace and how, encapsulated as a CRD in the API server.
type TraceRequestSpec struct {
	// App names the application (a workload profile name).
	App string
	// Purpose selects RCO's sampling policy.
	Purpose coverage.Purpose
	// Period overrides the temporal decider when nonzero.
	Period simtime.Duration
	// Nodes restricts tracing to these nodes (nil: spatial sampler picks).
	Nodes []string
	// MemBudget overrides the default buffer budget when nonzero.
	MemBudget int64
	// Scale is the space scale for the sessions (0: trace.SpaceScale).
	Scale float64
}

// TraceRequest is the CRD object.
type TraceRequest struct {
	// Name is the object name (unique).
	Name string
	// Spec is the desired state.
	Spec TraceRequestSpec
	// Phase is the observed lifecycle phase.
	Phase Phase
	// Message carries failure details.
	Message string
	// SessionKeys lists the OSS keys of uploaded sessions.
	SessionKeys []string
	// pending counts sessions still running.
	pending  int
	sessions []*core.Session
}

// APIServer stores TraceRequests (the Kubernetes API server stand-in).
type APIServer struct {
	requests map[string]*TraceRequest
	order    []string
	watchers []func(*TraceRequest)
}

// NewAPIServer returns an empty API server.
func NewAPIServer() *APIServer {
	return &APIServer{requests: make(map[string]*TraceRequest)}
}

// Watch registers fn to run on every request phase transition (the watch
// stream engineers' tooling subscribes to).
func (a *APIServer) Watch(fn func(*TraceRequest)) {
	a.watchers = append(a.watchers, fn)
}

// setPhase transitions a request and notifies watchers.
func (a *APIServer) setPhase(r *TraceRequest, phase Phase, msg string) {
	if r.Phase == phase {
		return
	}
	r.Phase = phase
	if msg != "" {
		r.Message = msg
	}
	for _, fn := range a.watchers {
		fn(r)
	}
}

// Create stores a new request in phase Pending.
func (a *APIServer) Create(name string, spec TraceRequestSpec) (*TraceRequest, error) {
	if _, ok := a.requests[name]; ok {
		return nil, fmt.Errorf("cluster: trace request %q already exists", name)
	}
	r := &TraceRequest{Name: name, Spec: spec, Phase: PhasePending}
	a.requests[name] = r
	a.order = append(a.order, name)
	return r, nil
}

// Get retrieves a request.
func (a *APIServer) Get(name string) (*TraceRequest, bool) {
	r, ok := a.requests[name]
	return r, ok
}

// List returns requests in creation order.
func (a *APIServer) List() []*TraceRequest {
	out := make([]*TraceRequest, 0, len(a.order))
	for _, n := range a.order {
		out = append(out, a.requests[n])
	}
	return out
}

// Node is one worker node: a machine plus its EXIST controller and the
// applications deployed on it.
type Node struct {
	// Name is the node name.
	Name string
	// Machine is the node's simulated OS/hardware.
	Machine *sched.Machine
	// Ctrl is the node's EXIST controller.
	Ctrl *core.Controller
	// Apps maps app name to its process on this node.
	Apps map[string]*sched.Process
	// MemCapacityMB and MemAllocatedMB model the node's memory ledger
	// (Figure 11: allocation near the ceiling while utilization is low).
	MemCapacityMB  float64
	MemAllocatedMB float64
}

// MgmtStats is the orchestration overhead ledger (Figure 17).
type MgmtStats struct {
	// CPUSeconds is management CPU consumed (core-seconds).
	CPUSeconds float64
	// MemMB is the management pod's resident memory.
	MemMB float64
	// Reconciles counts controller loop iterations.
	Reconciles int64
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the node count.
	Nodes int
	// CoresPerNode sizes each node's machine.
	CoresPerNode int
	// Seed drives all cluster randomness.
	Seed uint64
	// ReconcileEvery is the controller loop period.
	ReconcileEvery simtime.Duration
}

// DefaultConfig returns the paper's ten-node evaluation cluster.
func DefaultConfig() Config {
	return Config{Nodes: 10, CoresPerNode: 16, Seed: 1, ReconcileEvery: 100 * simtime.Millisecond}
}

// Cluster is the whole deployment.
type Cluster struct {
	// Cfg is the construction configuration.
	Cfg Config
	// Eng is the shared virtual clock.
	Eng *simtime.Engine
	// API is the control-plane store.
	API *APIServer
	// Nodes are the workers.
	Nodes []*Node
	// OSS is the raw-session object store.
	OSS *ObjectStore
	// ODPS is the structured result store.
	ODPS *DataStore
	// Mgmt is the orchestration overhead ledger.
	Mgmt MgmtStats
	// Binaries is the binary repository the decoder consults.
	Binaries map[string]*binary.Program

	profiles map[string]workload.Profile
	rng      *xrand.Rand
}

// New builds a cluster with a shared engine and starts the controller
// reconcile loop.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic("cluster: invalid config")
	}
	if cfg.ReconcileEvery <= 0 {
		cfg.ReconcileEvery = 100 * simtime.Millisecond
	}
	c := &Cluster{
		Cfg:      cfg,
		Eng:      simtime.NewEngine(),
		API:      NewAPIServer(),
		OSS:      NewObjectStore(),
		ODPS:     NewDataStore(),
		Binaries: make(map[string]*binary.Program),
		profiles: make(map[string]workload.Profile),
		rng:      xrand.Split(cfg.Seed, "cluster"),
		Mgmt:     MgmtStats{MemMB: 40}, // the RCO management pod's footprint
	}
	for i := 0; i < cfg.Nodes; i++ {
		mcfg := sched.DefaultConfig()
		mcfg.Cores = cfg.CoresPerNode
		mcfg.Seed = cfg.Seed + uint64(i)*7919
		mcfg.Engine = c.Eng
		m := sched.NewMachine(mcfg)
		c.Nodes = append(c.Nodes, &Node{
			Name:          fmt.Sprintf("node-%d", i),
			Machine:       m,
			Ctrl:          core.NewController(m),
			Apps:          make(map[string]*sched.Process),
			MemCapacityMB: 384 * 1024 / float64(cfg.Nodes), // 384 GB class nodes scaled per config
		})
	}
	c.scheduleReconcile()
	return c
}

// Node returns a node by name.
func (c *Cluster) Node(name string) (*Node, bool) {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// Deploy installs a workload profile on the named nodes (all nodes when
// names is nil) and registers its binary in the repository.
func (c *Cluster) Deploy(p workload.Profile, names []string, opt workload.InstallOpts) error {
	if names == nil {
		for _, n := range c.Nodes {
			names = append(names, n.Name)
		}
	}
	if opt.Walker && opt.Prog == nil {
		opt.Prog = p.Synthesize(opt.Seed)
	}
	c.profiles[p.Name] = p
	if opt.Prog != nil {
		c.Binaries[p.Name] = opt.Prog
	}
	for _, name := range names {
		n, ok := c.Node(name)
		if !ok {
			return fmt.Errorf("cluster: unknown node %q", name)
		}
		if _, dup := n.Apps[p.Name]; dup {
			return fmt.Errorf("cluster: app %q already on %q", p.Name, name)
		}
		nodeOpt := opt
		nodeOpt.Seed = opt.Seed ^ hashName(name)
		n.Apps[p.Name] = p.Install(n.Machine, nodeOpt)
		// Ledger: services reserve memory aggressively (Figure 11).
		n.MemAllocatedMB += 0.6 * n.MemCapacityMB / float64(len(c.Nodes))
	}
	return nil
}

// Request files a TraceRequest through the configuration interface.
func (c *Cluster) Request(name string, spec TraceRequestSpec) (*TraceRequest, error) {
	if _, ok := c.profiles[spec.App]; !ok {
		return nil, fmt.Errorf("cluster: app %q not deployed", spec.App)
	}
	return c.API.Create(name, spec)
}

// Run advances the whole cluster to the given time.
func (c *Cluster) Run(until simtime.Time) { c.Eng.RunUntil(until) }

// scheduleReconcile arms the periodic controller loop.
func (c *Cluster) scheduleReconcile() {
	c.Eng.After(c.Cfg.ReconcileEvery, func(now simtime.Time) {
		c.reconcile(now)
		c.scheduleReconcile()
	})
}

// reconcile is the controller body: it moves Pending requests to Running
// by opening node sessions, and charges management CPU.
func (c *Cluster) reconcile(now simtime.Time) {
	c.Mgmt.Reconciles++
	// Loop cost: list + status updates; grows with active requests.
	active := 0
	for _, r := range c.API.List() {
		if r.Phase == PhaseRunning {
			active++
		}
	}
	c.Mgmt.CPUSeconds += (50e-6) + float64(active)*20e-6

	for _, r := range c.API.List() {
		if r.Phase != PhasePending {
			continue
		}
		if err := c.start(r, now); err != nil {
			c.API.setPhase(r, PhaseFailed, err.Error())
		}
	}
}

// start opens the node sessions for one request.
func (c *Cluster) start(r *TraceRequest, now simtime.Time) error {
	profile := c.profiles[r.Spec.App]
	prog := c.Binaries[r.Spec.App]

	// Temporal decider: period from app complexity unless overridden.
	period := r.Spec.Period
	if period <= 0 {
		var binBytes uint64
		if prog != nil {
			binBytes = prog.TextSize
		}
		period = coverage.DecidePeriod(coverage.Complexity{
			Priority:    profile.Priority,
			BinaryBytes: binBytes,
			PastIssues:  profile.PastIssues,
		})
	}

	// Spatial sampler: pick repetitions among nodes hosting the app.
	var hosts []*Node
	for _, n := range c.Nodes {
		if _, ok := n.Apps[r.Spec.App]; ok {
			hosts = append(hosts, n)
		}
	}
	if len(hosts) == 0 {
		return fmt.Errorf("app %q deployed nowhere", r.Spec.App)
	}
	var selected []*Node
	if r.Spec.Nodes != nil {
		for _, want := range r.Spec.Nodes {
			for _, n := range hosts {
				if n.Name == want {
					selected = append(selected, n)
				}
			}
		}
	} else {
		reps := make([]coverage.Repetition, len(hosts))
		for i, n := range hosts {
			reps[i] = coverage.Repetition{Node: n.Name}
		}
		idx := coverage.SelectRepetitions(reps, coverage.SampleSpec{
			Purpose:  r.Spec.Purpose,
			Priority: profile.Priority,
		}, c.rng)
		for _, i := range idx {
			selected = append(selected, hosts[i])
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no nodes selected for %q", r.Spec.App)
	}

	scale := r.Spec.Scale
	if scale <= 0 {
		scale = trace.SpaceScale
	}
	c.API.setPhase(r, PhaseRunning, "")
	for _, n := range selected {
		cfg := core.DefaultConfig()
		cfg.Period = period
		cfg.Scale = scale
		cfg.SessionID = fmt.Sprintf("%s/%s", r.Name, n.Name)
		cfg.Node = n.Name
		cfg.Seed = c.Cfg.Seed ^ hashName(cfg.SessionID)
		if r.Spec.MemBudget > 0 {
			cfg.Mem = memalloc.Config{
				Budget:     r.Spec.MemBudget,
				PerCoreMin: 4 << 20,
				PerCoreMax: 128 << 20,
			}
		}
		sess, err := n.Ctrl.Trace(n.Apps[r.Spec.App], cfg)
		if err != nil {
			return err
		}
		r.pending++
		r.sessions = append(r.sessions, sess)
		node := n
		sess.OnDone(func(s *core.Session) {
			c.finishSession(r, node, s)
		})
	}
	return nil
}

// Cancel aborts a running request: every open node session is closed
// immediately and whatever was captured so far is kept.
func (c *Cluster) Cancel(r *TraceRequest) {
	if r.Phase != PhaseRunning {
		return
	}
	for _, s := range r.sessions {
		s.Cancel() // fires OnDone, which uploads and decrements pending
	}
}

// finishSession uploads one completed session and decodes it into the
// structured store; when the last session lands, the request completes.
func (c *Cluster) finishSession(r *TraceRequest, n *Node, s *core.Session) {
	res, err := s.Result()
	if err != nil {
		c.API.setPhase(r, PhaseFailed, err.Error())
		return
	}
	key := "sessions/" + s.Cfg.SessionID
	c.OSS.Put(key, res.Marshal())
	r.SessionKeys = append(r.SessionKeys, key)
	// Per-session management cost: upload bookkeeping and status update.
	c.Mgmt.CPUSeconds += 100e-6

	// Decode against the binary repository and persist structured rows.
	if prog, ok := c.Binaries[r.Spec.App]; ok {
		rec := decode.Decode(res, prog)
		rows := make([]Row, 0, len(rec.FuncEntries))
		for fn, count := range rec.FuncEntries {
			rows = append(rows, Row{
				App: r.Spec.App, Node: n.Name, Session: s.Cfg.SessionID,
				Key: prog.Funcs[fn].Name, Value: float64(count),
			})
		}
		c.ODPS.Insert(rows...)
	}

	r.pending--
	if r.pending == 0 && r.Phase == PhaseRunning {
		c.API.setPhase(r, PhaseCompleted, "")
	}
}

// ManagementCores reports average management CPU cores used since start
// (Figure 17's orchestration overhead).
func (c *Cluster) ManagementCores() float64 {
	elapsed := c.Eng.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	return c.Mgmt.CPUSeconds / elapsed
}

// hashName derives a stable seed perturbation from a string.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
