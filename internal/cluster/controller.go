package cluster

import (
	"fmt"

	"exist/internal/coverage"
	"exist/internal/simtime"
)

// Controller is one replica of the replicated control plane. At most
// one replica — the one holding the store lease — acts at a time. Each
// replica runs a staggered election tick; the winner relists the API
// server, re-adopts in-flight requests, and drives a watch-fed work
// queue. Everything a replica must remember across a failover lives on
// the TraceRequest objects themselves (phase, pending slots, recorded
// resample slots), so a fresh leader recovers the full work set from a
// relist and no session is lost or duplicated.
type Controller struct {
	// Name is the replica name (ctrl-<i>).
	Name string

	c    *Cluster
	idx  int
	skew simtime.Duration // injected clock skew, fixed per replica

	leader bool
	token  int64 // fencing token of the current leadership incarnation

	watch *WatchStream
	queue *workQueue

	// down marks an injected controller crash; partitionedUntil marks
	// the end of an injected controller-store partition.
	down             bool
	partitionedUntil simtime.Time
	crashes          int
	partitions       int

	// epoch invalidates callbacks queued before a crash: a restarted
	// replica must not execute work scheduled by its dead incarnation.
	epoch int

	pumpArmed bool

	// adopting tracks the Running requests inherited at election; when
	// the set drains the re-adoption time is recorded.
	adopting    map[string]bool
	electedAt   simtime.Time
	readoptOpen bool
}

// Leader reports whether this replica currently believes it leads. The
// store's lease record is the authority; a deposed replica may briefly
// believe until its next store contact fences it.
func (ct *Controller) Leader() bool { return ct.leader }

// ActiveLeaders counts replicas that both believe they lead and would
// pass the store's fencing check at now. Election safety demands this
// never exceeds one; chaos experiments sample it continuously.
func (c *Cluster) ActiveLeaders(now simtime.Time) int {
	if c.Leases == nil {
		return 0
	}
	n := 0
	for _, ct := range c.Controllers {
		if ct.leader && c.Leases.ValidFor(ct.Name, ct.token, now) {
			n++
		}
	}
	return n
}

// Crashes returns how many injected crashes this replica has absorbed.
func (ct *Controller) Crashes() int { return ct.crashes }

// startControllers builds the replica set and arms their election
// ticks, staggered by a millisecond per replica so elections are
// deterministic and contested in a fixed order.
func (c *Cluster) startControllers() {
	for i := 0; i < c.Cfg.Replicas; i++ {
		ct := &Controller{
			Name: fmt.Sprintf("ctrl-%d", i),
			c:    c,
			idx:  i,
		}
		ct.skew = c.Cfg.Faults.ClockSkew(ct.Name)
		ct.watch = c.API.WatchStream(c.Cfg.WatchBuf, ct.kick)
		ct.queue = newWorkQueue(c, c.Cfg.QueueBaseDelay, c.Cfg.QueueMaxDelay, ct.kick)
		c.Controllers = append(c.Controllers, ct)
		c.scheduleElect(ct, simtime.Duration(i+1)*simtime.Millisecond)
		if c.Cfg.Faults != nil {
			c.scheduleCtrlCrash(ct)
			c.scheduleCtrlPartition(ct)
		}
	}
}

// scheduleElect arms a replica's next election tick.
func (c *Cluster) scheduleElect(ct *Controller, d simtime.Duration) {
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		ct.electTick(now)
		c.scheduleElect(ct, c.Cfg.ElectionRetry)
	})
}

// scheduleCtrlCrash arms the replica's next injected crash. A crash
// wipes the replica's in-memory state (queue, watch position, adoption
// set) — recovery is a fresh relist, never a replay.
func (c *Cluster) scheduleCtrlCrash(ct *Controller) {
	d, ok := c.Cfg.Faults.NextCtrlCrash(ct.Name, ct.crashes)
	if !ok {
		return
	}
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		ct.crashes++
		c.Cfg.Faults.CountCtrlCrash()
		ct.crash(c.Cfg.Faults.Config().CtrlCrashDowntime, func() {
			c.scheduleCtrlCrash(ct)
		})
	})
}

// crash takes the replica down for downFor, wiping its in-memory state,
// then restarts it and runs onUp (which may arm the next injected
// crash).
func (ct *Controller) crash(downFor simtime.Duration, onUp func()) {
	ct.down = true
	ct.leader = false
	ct.epoch++
	ct.pumpArmed = false
	ct.queue.Reset()
	ct.watch.Reset()
	ct.adopting = nil
	ct.readoptOpen = false
	ct.c.Eng.AfterDetached(downFor, func(simtime.Time) {
		ct.down = false
		if onUp != nil {
			onUp()
		}
	})
}

// scheduleCtrlPartition arms the replica's next injected controller-
// store partition. While partitioned the replica cannot reach the
// store: it can neither renew its lease (so leadership decays) nor
// sync, but it stays alive and keeps its memory.
func (c *Cluster) scheduleCtrlPartition(ct *Controller) {
	delay, dur, ok := c.Cfg.Faults.NextPartition(ct.Name, ct.partitions)
	if !ok {
		return
	}
	c.Eng.AfterDetached(delay, func(now simtime.Time) {
		ct.partitions++
		c.Cfg.Faults.CountPartition()
		ct.partitionedUntil = now + dur
		c.Eng.AfterDetached(dur, func(simtime.Time) {
			c.scheduleCtrlPartition(ct)
		})
	})
}

// storeReachable reports whether the replica can currently contact the
// API server and stores.
func (ct *Controller) storeReachable(now simtime.Time) bool {
	return ct.partitionedUntil <= now
}

// electTick is one round of lease-based leader election. The replica
// judges the incumbent's lease and stamps its own with its (possibly
// skewed) local clock; fencing at the store uses true time, so a skewed
// replica can win an election early but cannot mutate state the real
// leader still owns.
func (ct *Controller) electTick(now simtime.Time) {
	if ct.down || !ct.storeReachable(now) {
		// Crashed or partitioned: no store contact, leadership decays on
		// its own at the store.
		return
	}
	obs := now + ct.skew
	if obs < 0 {
		obs = 0
	}
	token, ok := ct.c.Leases.TryAcquire(ct.Name, obs, ct.c.Cfg.ElectionTTL)
	if !ok {
		// Another replica's lease is valid from where this one stands.
		ct.leader = false
		return
	}
	if ct.leader && token == ct.token {
		return // plain renewal
	}
	ct.token = token
	ct.becomeLeader(now)
}

// becomeLeader starts a leadership incarnation: drop any stale watch
// backlog, relist the API server to rebuild the work set, and mark the
// Running requests as adopted so the failover's re-adoption time can be
// measured when the set drains.
func (ct *Controller) becomeLeader(now simtime.Time) {
	c := ct.c
	ct.leader = true
	c.Mgmt.Elections++
	c.Mgmt.CPUSeconds += 200e-6 // relist cost
	ct.watch.Reset()
	ct.queue.Reset()
	ct.adopting = make(map[string]bool)
	for _, r := range c.API.List() {
		if r.Phase.Terminal() {
			continue
		}
		ct.queue.Add(r.Name)
		if r.Phase == PhaseRunning {
			ct.adopting[r.Name] = true
		}
	}
	ct.electedAt = now
	ct.readoptOpen = len(ct.adopting) > 0
	ct.kick()
}

// kick schedules a pump after the queue latency, if one is not already
// armed. It is the notify hook for both the watch stream and the work
// queue.
func (ct *Controller) kick() {
	if ct.pumpArmed || ct.down {
		return
	}
	ct.pumpArmed = true
	ct.rearmPump(ct.c.Cfg.QueueLatency)
}

// rearmPump schedules a pump run after d, bound to the current epoch so
// a crash invalidates it.
func (ct *Controller) rearmPump(d simtime.Duration) {
	epoch := ct.epoch
	ct.c.Eng.AfterDetached(d, func(now simtime.Time) {
		if ct.epoch != epoch {
			return
		}
		ct.pumpArmed = false
		ct.pump(now)
	})
}

// pump is the leader's work loop: drain the watch stream into the
// queue (relisting if the stream went stale), sync up to QueueBurst
// items, flush any batched uploads, and re-arm while backlog remains.
// A non-leader pump is a no-op; a deposed leader is fenced by the
// store before it can act.
func (ct *Controller) pump(now simtime.Time) {
	c := ct.c
	if ct.down || !ct.leader {
		return
	}
	if !ct.storeReachable(now) {
		// Partitioned mid-leadership: keep the backlog and retry after a
		// tick; if the partition outlives the lease another replica takes
		// over and this backlog is superseded by its relist.
		ct.pumpArmed = true
		ct.rearmPump(c.Cfg.QueueTick)
		return
	}
	if !c.Leases.ValidFor(ct.Name, ct.token, now) {
		// The store fences the stale token: this incarnation was deposed
		// while it still believed it led (partition, skew, late renewal).
		c.Mgmt.FencedOps++
		ct.leader = false
		return
	}
	if ct.watch.Stale() {
		// The stream dropped events; resynchronize with a full relist.
		ct.watch.Reset()
		c.Mgmt.CPUSeconds += 200e-6
		for _, r := range c.API.List() {
			if !r.Phase.Terminal() {
				ct.queue.Add(r.Name)
			}
		}
	}
	for {
		ev, ok := ct.watch.Next()
		if !ok {
			break
		}
		if ev.Type != EventDeleted {
			ct.queue.Add(ev.Name)
		}
	}
	for i := 0; i < c.Cfg.QueueBurst; i++ {
		name, ok := ct.queue.Pop()
		if !ok {
			break
		}
		ct.sync(name, now)
	}
	c.flushUploads()
	if ct.queue.Len() > 0 || ct.watch.Len() > 0 {
		ct.pumpArmed = true
		ct.rearmPump(c.Cfg.QueueTick)
	}
}

// sync reconciles one request by name: admission-check and start
// Pending requests (idempotently, via CAS on the resource version),
// re-sample recorded lost slots of Running ones, and retire terminal
// ones from the rate limiter and the adoption set.
func (ct *Controller) sync(name string, now simtime.Time) {
	c := ct.c
	c.Mgmt.Syncs++
	c.Mgmt.CPUSeconds += 20e-6
	r, ok := c.API.Get(name)
	if !ok {
		ct.queue.Forget(name)
		ct.adopted(name, now)
		return
	}
	if r.Phase.Terminal() {
		ct.queue.Forget(name)
		ct.adopted(name, now)
		return
	}
	c.armDeadline(r, now)
	switch r.Phase {
	case PhasePending:
		ct.syncPending(r, now)
	case PhaseRunning:
		ct.syncRunning(r, now)
		ct.adopted(name, now)
	}
}

// adopted retires one name from the adoption set; when the set drains
// the leadership change's re-adoption time is recorded.
func (ct *Controller) adopted(name string, now simtime.Time) {
	if ct.adopting == nil || !ct.adopting[name] {
		return
	}
	delete(ct.adopting, name)
	if len(ct.adopting) == 0 && ct.readoptOpen {
		ct.readoptOpen = false
		ct.c.Readopts = append(ct.c.Readopts, (now - ct.electedAt).Millis())
	}
}

// syncPending admits and starts one Pending request. The Pending →
// Running transition is a compare-and-swap on the resource version the
// sync read, so two replicas that both believe they lead can never both
// open sessions for the same request — the loser's CAS conflicts and it
// requeues to observe the winner's work.
func (ct *Controller) syncPending(r *TraceRequest, now simtime.Time) {
	c := ct.c
	// Admission control: shed when the control plane is saturated, so a
	// storm degrades requests crisply instead of timing all of them out.
	if over, why := c.overloaded(ct.queue.Len()); over {
		c.Mgmt.Shed++
		c.terminate(r, PhaseDegraded, "shed by admission control: "+why)
		return
	}
	rv := r.ResourceVersion
	period, scale, selected, retry, err := c.plan(r, now)
	if err != nil {
		c.terminate(r, PhaseFailed, err.Error())
		return
	}
	if retry {
		// No healthy repetition right now; back off and retry.
		ct.queue.AddRateLimited(r.Name)
		return
	}
	if err := c.API.CASPhase(r, rv, PhaseRunning, ""); err != nil {
		c.Mgmt.Conflicts++
		ct.queue.AddRateLimited(r.Name)
		return
	}
	if err := c.launch(r, period, scale, selected); err != nil {
		c.terminate(r, PhaseFailed, err.Error())
		return
	}
	ct.queue.Forget(r.Name)
}

// syncRunning re-samples the request's recorded lost slots. Slots are
// persisted on the object (not in controller memory), so a failover's
// relist recovers them; a slot with no healthy candidate stays recorded
// and the item requeues with backoff.
func (ct *Controller) syncRunning(r *TraceRequest, now simtime.Time) {
	c := ct.c
	if len(r.resampleSlots) == 0 || r.cancelling {
		ct.queue.Forget(r.Name)
		return
	}
	slots := r.resampleSlots
	r.resampleSlots = nil
	for _, attempt := range slots {
		if r.Phase.Terminal() {
			break
		}
		if attempt >= c.Cfg.ResampleMax {
			c.giveUpSlot(r)
			continue
		}
		reps := c.replacementCandidates(r, now)
		idx := coverage.SelectReplacements(reps, r.usedNodes, 1, c.resampleRNG)
		if len(idx) == 0 {
			r.resampleSlots = append(r.resampleSlots, attempt+1)
			continue
		}
		n, _ := c.Node(reps[idx[0]].Node)
		if err := c.openSession(r, n, attempt+1); err != nil {
			r.resampleSlots = append(r.resampleSlots, attempt+1)
			continue
		}
		r.Resampled++
		c.Mgmt.Resamples++
		c.Mgmt.CPUSeconds += 50e-6
	}
	if len(r.resampleSlots) > 0 {
		ct.queue.AddRateLimited(r.Name)
	} else {
		ct.queue.Forget(r.Name)
	}
}

// overloaded applies the admission budgets: queue depth and management
// CPU. Zero budgets disable a check.
func (c *Cluster) overloaded(depth int) (bool, string) {
	if c.Cfg.AdmitQueueMax > 0 && depth >= c.Cfg.AdmitQueueMax {
		return true, fmt.Sprintf("queue depth %d over budget %d", depth, c.Cfg.AdmitQueueMax)
	}
	if c.Cfg.AdmitCPUBudget > 0 {
		if cores := c.ManagementCores(); cores > c.Cfg.AdmitCPUBudget {
			return true, fmt.Sprintf("management CPU %.3f cores over budget %.3f", cores, c.Cfg.AdmitCPUBudget)
		}
	}
	return false, ""
}
