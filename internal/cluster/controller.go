package cluster

import (
	"fmt"

	"exist/internal/coverage"
	"exist/internal/simtime"
)

// Controller is one replica of the replicated control plane. The work is
// range-sharded: each API-server shard has its own store lease, and a
// replica acts only on the shards it holds. With one shard (the default)
// this degenerates to classic single-leader election — at most one
// replica acts at a time. Each replica runs a staggered election tick
// that renews the shards it holds, reclaims its home shards (shard %
// replicas == idx), and picks up any expired shard whose holder died;
// the winner relists the acquired shards, re-adopts their in-flight
// requests, and drives per-shard watch-fed work queues merged in global
// FIFO order. Everything a replica must remember across a failover lives
// on the TraceRequest objects themselves (phase, pending slots, recorded
// resample slots), so a fresh shard owner recovers the full work set
// from a relist and no session is lost or duplicated.
type Controller struct {
	// Name is the replica name (ctrl-<i>).
	Name string

	c    *Cluster
	idx  int
	skew simtime.Duration // injected clock skew, fixed per replica

	// leader reports whether the replica owns at least one shard; owned,
	// tokens, watches and queues are per shard. A shard's fencing token
	// identifies the replica's current ownership incarnation of it.
	leader bool
	owned  []bool
	nOwned int
	tokens []int64
	token  int64 // shard 0's token, kept for the single-shard surface

	watches []*WatchStream
	queues  []*workQueue

	// down marks an injected controller crash; partitionedUntil marks
	// the end of an injected controller-store partition.
	down             bool
	partitionedUntil simtime.Time
	crashes          int
	partitions       int

	// epoch invalidates callbacks queued before a crash: a restarted
	// replica must not execute work scheduled by its dead incarnation.
	epoch int

	pumpArmed bool

	// adopting tracks, per shard, the Running requests inherited at
	// acquisition; when a shard's set drains its re-adoption time is
	// recorded.
	adopting    []map[string]bool
	electedAt   []simtime.Time
	readoptOpen []bool
}

// Leader reports whether this replica currently believes it owns at
// least one shard. The store's lease records are the authority; a
// deposed replica may briefly believe until its next store contact
// fences it.
func (ct *Controller) Leader() bool { return ct.leader }

// OwnedShards returns the shards this replica currently believes it
// owns, ascending.
func (ct *Controller) OwnedShards() []int {
	var out []int
	for s, own := range ct.owned {
		if own {
			out = append(out, s)
		}
	}
	return out
}

// QueueDepth returns the replica's total queued work across its shard
// queues.
func (ct *Controller) QueueDepth() int {
	n := 0
	for _, q := range ct.queues {
		n += q.Len()
	}
	return n
}

// ActiveLeaders counts replicas that both believe they own a shard and
// would pass the store's fencing check for it at now. With one shard,
// election safety demands this never exceeds one; chaos experiments
// sample it continuously.
func (c *Cluster) ActiveLeaders(now simtime.Time) int {
	if c.Leases == nil {
		return 0
	}
	n := 0
	for _, ct := range c.Controllers {
		for s, own := range ct.owned {
			if own && c.Leases.ValidForShard(s, ct.Name, ct.tokens[s], now) {
				n++
				break
			}
		}
	}
	return n
}

// ActiveOwnersShard counts replicas that believe they own shard si and
// would pass its fencing check at now. Range-lease safety demands this
// never exceeds one per shard.
func (c *Cluster) ActiveOwnersShard(si int, now simtime.Time) int {
	if c.Leases == nil {
		return 0
	}
	n := 0
	for _, ct := range c.Controllers {
		if si < len(ct.owned) && ct.owned[si] && c.Leases.ValidForShard(si, ct.Name, ct.tokens[si], now) {
			n++
		}
	}
	return n
}

// ShardRebalances returns how many times shard ownership changed hands
// after each shard's first election (takeovers and handbacks).
func (c *Cluster) ShardRebalances() int {
	if c.Leases == nil {
		return 0
	}
	return c.Leases.Failovers()
}

// Crashes returns how many injected crashes this replica has absorbed.
func (ct *Controller) Crashes() int { return ct.crashes }

// startControllers builds the replica set and arms their election
// ticks, staggered by a millisecond per replica so elections are
// deterministic and contested in a fixed order. Each replica opens one
// watch stream and one work queue per shard; non-owned streams simply
// buffer (and may go stale), which is fine — acquisition always resets
// and relists the shard.
func (c *Cluster) startControllers() {
	nShards := c.API.Shards()
	for i := 0; i < c.Cfg.Replicas; i++ {
		ct := &Controller{
			Name:        fmt.Sprintf("ctrl-%d", i),
			c:           c,
			idx:         i,
			owned:       make([]bool, nShards),
			tokens:      make([]int64, nShards),
			watches:     make([]*WatchStream, nShards),
			queues:      make([]*workQueue, nShards),
			adopting:    make([]map[string]bool, nShards),
			electedAt:   make([]simtime.Time, nShards),
			readoptOpen: make([]bool, nShards),
		}
		ct.skew = c.Cfg.Faults.ClockSkew(ct.Name)
		for s := 0; s < nShards; s++ {
			ct.watches[s] = c.API.WatchShard(s, c.Cfg.WatchBuf, ct.kick)
			ct.queues[s] = newWorkQueue(c, c.Cfg.QueueBaseDelay, c.Cfg.QueueMaxDelay, ct.kick)
		}
		c.Controllers = append(c.Controllers, ct)
		c.scheduleElect(ct, simtime.Duration(i+1)*simtime.Millisecond)
		if c.Cfg.Faults != nil {
			c.scheduleCtrlCrash(ct)
			c.scheduleCtrlPartition(ct)
		}
	}
}

// scheduleElect arms a replica's next election tick.
func (c *Cluster) scheduleElect(ct *Controller, d simtime.Duration) {
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		ct.electTick(now)
		c.scheduleElect(ct, c.Cfg.ElectionRetry)
	})
}

// scheduleCtrlCrash arms the replica's next injected crash. A crash
// wipes the replica's in-memory state (queues, watch positions, adoption
// sets) — recovery is a fresh relist, never a replay.
func (c *Cluster) scheduleCtrlCrash(ct *Controller) {
	d, ok := c.Cfg.Faults.NextCtrlCrash(ct.Name, ct.crashes)
	if !ok {
		return
	}
	c.Eng.AfterDetached(d, func(now simtime.Time) {
		ct.crashes++
		c.Cfg.Faults.CountCtrlCrash()
		ct.crash(c.Cfg.Faults.Config().CtrlCrashDowntime, func() {
			c.scheduleCtrlCrash(ct)
		})
	})
}

// crash takes the replica down for downFor, wiping its in-memory state,
// then restarts it and runs onUp (which may arm the next injected
// crash).
func (ct *Controller) crash(downFor simtime.Duration, onUp func()) {
	ct.down = true
	ct.leader = false
	ct.epoch++
	ct.pumpArmed = false
	for s := range ct.owned {
		ct.owned[s] = false
		ct.queues[s].Reset()
		ct.watches[s].Reset()
		ct.adopting[s] = nil
		ct.readoptOpen[s] = false
	}
	ct.nOwned = 0
	ct.c.Eng.AfterDetached(downFor, func(simtime.Time) {
		ct.down = false
		if onUp != nil {
			onUp()
		}
	})
}

// scheduleCtrlPartition arms the replica's next injected controller-
// store partition. While partitioned the replica cannot reach the
// store: it can neither renew its leases (so ownership decays) nor
// sync, but it stays alive and keeps its memory.
func (c *Cluster) scheduleCtrlPartition(ct *Controller) {
	delay, dur, ok := c.Cfg.Faults.NextPartition(ct.Name, ct.partitions)
	if !ok {
		return
	}
	c.Eng.AfterDetached(delay, func(now simtime.Time) {
		ct.partitions++
		c.Cfg.Faults.CountPartition()
		ct.partitionedUntil = now + dur
		c.Eng.AfterDetached(dur, func(simtime.Time) {
			c.scheduleCtrlPartition(ct)
		})
	})
}

// storeReachable reports whether the replica can currently contact the
// API server and stores.
func (ct *Controller) storeReachable(now simtime.Time) bool {
	return ct.partitionedUntil <= now
}

// homeOf returns the replica index that prefers shard s (the static
// balanced assignment shards rebalance back towards).
func (c *Cluster) homeOf(s int) int { return s % c.Cfg.Replicas }

// disownShard drops the replica's claim on a shard. Queue and watch
// backlog is kept — the next acquisition resets and relists anyway, and
// a deposed incarnation's backlog is superseded by the new owner's.
func (ct *Controller) disownShard(s int) {
	if !ct.owned[s] {
		return
	}
	ct.owned[s] = false
	ct.nOwned--
	ct.leader = ct.nOwned > 0
}

// electTick is one round of range-lease maintenance. For each shard the
// replica renews what it holds, contends for its home shards, and picks
// up non-home shards whose lease lapsed (a dead or partitioned owner).
// When several shards have lapsed the tick stagger decides the pickup
// order deterministically. A holder of a non-home shard hands it back
// once the home replica's liveness record is fresh again, converging
// ownership to the balanced assignment. The replica judges incumbent
// leases and stamps its own with its (possibly skewed) local clock;
// fencing at the store uses true time, so a skewed replica can win a
// shard early but cannot mutate state the real owner still holds.
func (ct *Controller) electTick(now simtime.Time) {
	if ct.down || !ct.storeReachable(now) {
		// Crashed or partitioned: no store contact, ownership decays on
		// its own at the store.
		return
	}
	c := ct.c
	obs := now + ct.skew
	if obs < 0 {
		obs = 0
	}
	nShards := c.API.Shards()
	if nShards > 1 {
		c.Leases.Heartbeat(ct.Name, obs, c.Cfg.ElectionTTL)
	}
	var newly []int
	for s := 0; s < nShards; s++ {
		if ct.owned[s] {
			token, ok := c.Leases.TryAcquireShard(s, ct.Name, obs, c.Cfg.ElectionTTL)
			if !ok {
				// Another replica's lease is valid from where this one
				// stands: deposed on this shard.
				ct.disownShard(s)
				continue
			}
			if token != ct.tokens[s] {
				// Our lease lapsed unnoticed and we re-acquired: a new
				// ownership incarnation for this shard.
				ct.tokens[s] = token
				newly = append(newly, s)
				continue
			}
			// Plain renewal. Hand a non-home shard back once its home
			// replica is alive again.
			if nShards > 1 && c.homeOf(s) != ct.idx {
				home := fmt.Sprintf("ctrl-%d", c.homeOf(s))
				if c.Leases.Alive(home, obs) && c.Leases.Release(s, ct.Name, token, obs) {
					ct.disownShard(s)
				}
			}
			continue
		}
		// Not owned: contend for home shards always (exactly the classic
		// single-lease behavior when there is one shard), and for foreign
		// shards only once their lease has lapsed.
		if nShards > 1 && c.homeOf(s) != ct.idx && !c.Leases.Expired(s, obs) {
			continue
		}
		token, ok := c.Leases.TryAcquireShard(s, ct.Name, obs, c.Cfg.ElectionTTL)
		if !ok {
			continue
		}
		ct.owned[s] = true
		ct.nOwned++
		ct.tokens[s] = token
		newly = append(newly, s)
	}
	ct.token = ct.tokens[0]
	ct.leader = ct.nOwned > 0
	if len(newly) > 0 {
		ct.becomeLeader(newly, now)
	}
}

// becomeLeader starts an ownership incarnation over the newly acquired
// shards: drop their stale watch backlog, relist them to rebuild the
// work set (one merged relist in creation order, so the enqueue order
// matches what a single queue would have seen), and mark their Running
// requests as adopted so the failover's re-adoption time can be
// measured when each shard's set drains.
func (ct *Controller) becomeLeader(newly []int, now simtime.Time) {
	c := ct.c
	ct.leader = true
	c.Mgmt.Elections++
	isNew := make(map[int]bool, len(newly))
	for _, s := range newly {
		isNew[s] = true
		c.Mgmt.CPUSeconds += relistCPU(c.API.LiveInShard(s))
		ct.watches[s].Reset()
		ct.queues[s].Reset()
		ct.adopting[s] = make(map[string]bool)
		ct.electedAt[s] = now
	}
	for _, r := range c.API.List() {
		if r.Phase.Terminal() || !isNew[r.shard] {
			continue
		}
		ct.queues[r.shard].Add(r.Name)
		if r.Phase == PhaseRunning {
			ct.adopting[r.shard][r.Name] = true
		}
	}
	for _, s := range newly {
		ct.readoptOpen[s] = len(ct.adopting[s]) > 0
	}
	ct.kick()
}

// kick schedules a pump after the queue latency, if one is not already
// armed. It is the notify hook for the watch streams and work queues.
func (ct *Controller) kick() {
	if ct.pumpArmed || ct.down {
		return
	}
	ct.pumpArmed = true
	ct.rearmPump(ct.c.Cfg.QueueLatency)
}

// rearmPump schedules a pump run after d, bound to the current epoch so
// a crash invalidates it.
func (ct *Controller) rearmPump(d simtime.Duration) {
	epoch := ct.epoch
	ct.c.Eng.AfterDetached(d, func(now simtime.Time) {
		if ct.epoch != epoch {
			return
		}
		ct.pumpArmed = false
		ct.pump(now)
	})
}

// backlog reports whether any owned shard has queued work or buffered
// watch events.
func (ct *Controller) backlog() bool {
	for s, own := range ct.owned {
		if own && (ct.queues[s].Len() > 0 || ct.watches[s].Len() > 0) {
			return true
		}
	}
	return false
}

// pump is an owner's work loop: drain the owned shards' watch streams
// into their queues (relisting a shard whose stream went stale), sync up
// to QueueBurst items popped in global FIFO order across the owned
// queues, flush any batched uploads, and re-arm while backlog remains.
// A pump on a replica owning nothing is a no-op; a deposed owner is
// fenced per shard by the store before it can act on that shard.
func (ct *Controller) pump(now simtime.Time) {
	c := ct.c
	if ct.down || ct.nOwned == 0 {
		return
	}
	if !ct.storeReachable(now) {
		// Partitioned mid-ownership: keep the backlog and retry after a
		// tick; if the partition outlives the leases other replicas take
		// the shards over and this backlog is superseded by their relists.
		ct.pumpArmed = true
		ct.rearmPump(c.Cfg.QueueTick)
		return
	}
	for s, own := range ct.owned {
		if own && !c.Leases.ValidForShard(s, ct.Name, ct.tokens[s], now) {
			// The store fences the stale token: this incarnation was
			// deposed on the shard while it still believed it owned it
			// (partition, skew, late renewal).
			c.Mgmt.FencedOps++
			ct.disownShard(s)
		}
	}
	if ct.nOwned == 0 {
		return
	}
	for s, own := range ct.owned {
		if own && ct.watches[s].Stale() {
			// The shard's stream dropped events; resynchronize it with a
			// shard-scoped relist.
			ct.watches[s].Reset()
			c.Mgmt.Relists++
			c.Mgmt.CPUSeconds += relistCPU(c.API.LiveInShard(s))
			for _, r := range c.API.ListShard(s) {
				if !r.Phase.Terminal() {
					ct.queues[s].Add(r.Name)
				}
			}
		}
	}
	// Merge the owned streams by emission sequence so the queue sees
	// events in the exact server-side order.
	for {
		best := -1
		var bestEv WatchEvent
		for s, own := range ct.owned {
			if !own {
				continue
			}
			ev, ok := ct.watches[s].peek()
			if ok && (best < 0 || ev.Seq < bestEv.Seq) {
				best, bestEv = s, ev
			}
		}
		if best < 0 {
			break
		}
		ct.watches[best].Next()
		if bestEv.Type != EventDeleted {
			ct.queues[best].Add(bestEv.Name)
		}
	}
	// Pop the globally oldest head across the owned queues: the merged
	// drain is the FIFO a single queue would have produced.
	for i := 0; i < c.Cfg.QueueBurst; i++ {
		best := -1
		var bestSeq int64
		for s, own := range ct.owned {
			if !own {
				continue
			}
			if seq, ok := ct.queues[s].headSeq(); ok && (best < 0 || seq < bestSeq) {
				best, bestSeq = s, seq
			}
		}
		if best < 0 {
			break
		}
		name, _ := ct.queues[best].Pop()
		ct.sync(name, now)
	}
	c.flushUploads()
	if ct.backlog() {
		ct.pumpArmed = true
		ct.rearmPump(c.Cfg.QueueTick)
	}
}

// queueFor returns the shard queue a request name belongs to.
func (ct *Controller) queueFor(name string) *workQueue {
	return ct.queues[ct.c.API.ShardOf(name)]
}

// sync reconciles one request by name: admission-check and start
// Pending requests (idempotently, via CAS on the resource version),
// re-sample recorded lost slots of Running ones, and retire terminal
// ones from the rate limiter and the adoption set.
func (ct *Controller) sync(name string, now simtime.Time) {
	c := ct.c
	c.Mgmt.Syncs++
	c.Mgmt.CPUSeconds += syncBaseCPU + c.storeOpCPU(c.API.ShardOf(name))
	r, ok := c.API.Get(name)
	if !ok {
		ct.queueFor(name).Forget(name)
		ct.adopted(name, now)
		return
	}
	if r.Phase.Terminal() {
		ct.queueFor(name).Forget(name)
		ct.adopted(name, now)
		return
	}
	c.armDeadline(r, now)
	switch r.Phase {
	case PhasePending:
		ct.syncPending(r, now)
	case PhaseRunning:
		ct.syncRunning(r, now)
		ct.adopted(name, now)
	}
}

// adopted retires one name from its shard's adoption set; when the set
// drains the shard acquisition's re-adoption time is recorded.
func (ct *Controller) adopted(name string, now simtime.Time) {
	s := ct.c.API.ShardOf(name)
	if ct.adopting[s] == nil || !ct.adopting[s][name] {
		return
	}
	delete(ct.adopting[s], name)
	if len(ct.adopting[s]) == 0 && ct.readoptOpen[s] {
		ct.readoptOpen[s] = false
		ct.c.Readopts = append(ct.c.Readopts, (now - ct.electedAt[s]).Millis())
	}
}

// syncPending admits and starts one Pending request. The Pending →
// Running transition is a compare-and-swap on the resource version the
// sync read, so two replicas that both believe they own the shard can
// never both open sessions for the same request — the loser's CAS
// conflicts and it requeues to observe the winner's work.
func (ct *Controller) syncPending(r *TraceRequest, now simtime.Time) {
	c := ct.c
	// Admission control: shed when the control plane is saturated, so a
	// storm degrades requests crisply instead of timing all of them out.
	if over, why := c.overloaded(ct.queues[r.shard].Len()); over {
		c.Mgmt.Shed++
		c.terminate(r, PhaseDegraded, "shed by admission control: "+why)
		return
	}
	rv := r.ResourceVersion
	period, scale, selected, retry, err := c.plan(r, now)
	if err != nil {
		c.terminate(r, PhaseFailed, err.Error())
		return
	}
	if retry {
		// No healthy repetition right now; back off and retry.
		ct.queues[r.shard].AddRateLimited(r.Name)
		return
	}
	if err := c.API.CASPhase(r, rv, PhaseRunning, ""); err != nil {
		c.Mgmt.Conflicts++
		ct.queues[r.shard].AddRateLimited(r.Name)
		return
	}
	if err := c.launch(r, period, scale, selected); err != nil {
		c.terminate(r, PhaseFailed, err.Error())
		return
	}
	ct.queues[r.shard].Forget(r.Name)
}

// syncRunning re-samples the request's recorded lost slots. Slots are
// persisted on the object (not in controller memory), so a failover's
// relist recovers them; a slot with no healthy candidate stays recorded
// and the item requeues with backoff.
func (ct *Controller) syncRunning(r *TraceRequest, now simtime.Time) {
	c := ct.c
	if len(r.resampleSlots) == 0 || r.cancelling {
		ct.queues[r.shard].Forget(r.Name)
		return
	}
	slots := r.resampleSlots
	r.resampleSlots = nil
	for _, attempt := range slots {
		if r.Phase.Terminal() {
			break
		}
		if attempt >= c.Cfg.ResampleMax {
			c.giveUpSlot(r)
			continue
		}
		reps := c.replacementCandidates(r, now)
		idx := coverage.SelectReplacements(reps, r.usedNodes, 1, c.resampleRNG)
		if len(idx) == 0 {
			r.resampleSlots = append(r.resampleSlots, attempt+1)
			continue
		}
		n, _ := c.Node(reps[idx[0]].Node)
		if err := c.openSession(r, n, attempt+1); err != nil {
			r.resampleSlots = append(r.resampleSlots, attempt+1)
			continue
		}
		r.Resampled++
		c.Mgmt.Resamples++
		c.Mgmt.CPUSeconds += 50e-6
	}
	if len(r.resampleSlots) > 0 {
		ct.queues[r.shard].AddRateLimited(r.Name)
	} else {
		ct.queues[r.shard].Forget(r.Name)
	}
}

// overloaded applies the admission budgets: queue depth and management
// CPU. Zero budgets disable a check.
func (c *Cluster) overloaded(depth int) (bool, string) {
	if c.Cfg.AdmitQueueMax > 0 && depth >= c.Cfg.AdmitQueueMax {
		return true, fmt.Sprintf("queue depth %d over budget %d", depth, c.Cfg.AdmitQueueMax)
	}
	if c.Cfg.AdmitCPUBudget > 0 {
		if cores := c.ManagementCores(); cores > c.Cfg.AdmitCPUBudget {
			return true, fmt.Sprintf("management CPU %.3f cores over budget %.3f", cores, c.Cfg.AdmitCPUBudget)
		}
	}
	return false, ""
}
