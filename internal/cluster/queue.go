package cluster

import "exist/internal/simtime"

// workQueue is a controller's work queue in the Kubernetes workqueue
// idiom: a FIFO of object names with add-time deduplication, delayed
// re-adds, and a per-item exponential-backoff rate limiter for items
// that keep failing (CAS conflicts, unreachable stores, nodes with no
// healthy repetitions). All delays run on the cluster's virtual clock,
// so queue behavior is deterministic.
type workQueue struct {
	c      *Cluster
	items  []queueItem
	queued map[string]bool
	fails  map[string]int
	base   simtime.Duration // first-retry delay
	max    simtime.Duration // backoff cap
	// notify, when set, fires each time the queue goes from empty to
	// non-empty, so the owning controller can schedule a drain.
	notify func()
}

// queueItem is one queued name stamped with the cluster-global enqueue
// sequence. A controller owning several shard queues pops the globally
// oldest head across them, so the merged drain order is the exact FIFO a
// single queue would have produced (the Shards=1 ≡ Shards=k argument of
// DESIGN.md §15).
type queueItem struct {
	name string
	seq  int64
}

// newWorkQueue builds an empty queue.
func newWorkQueue(c *Cluster, base, max simtime.Duration, notify func()) *workQueue {
	return &workQueue{
		c:      c,
		queued: make(map[string]bool),
		fails:  make(map[string]int),
		base:   base,
		max:    max,
		notify: notify,
	}
}

// Add enqueues the name unless it is already queued.
func (q *workQueue) Add(name string) {
	if q.queued[name] {
		return
	}
	q.queued[name] = true
	q.c.queueSeq++
	q.items = append(q.items, queueItem{name: name, seq: q.c.queueSeq})
	if len(q.items) == 1 && q.notify != nil {
		q.notify()
	}
}

// AddAfter enqueues the name after a virtual delay.
func (q *workQueue) AddAfter(name string, d simtime.Duration) {
	if d <= 0 {
		q.Add(name)
		return
	}
	q.c.Eng.AfterDetached(d, func(simtime.Time) { q.Add(name) })
}

// AddRateLimited re-enqueues a failing item with exponential backoff:
// base doubled per consecutive failure, capped at max. Forget resets
// the item's failure count once it syncs cleanly.
func (q *workQueue) AddRateLimited(name string) {
	n := q.fails[name]
	q.fails[name] = n + 1
	q.c.Mgmt.Requeues++
	q.AddAfter(name, q.delayFor(n))
}

// delayFor is the rate limiter's delay after n consecutive failures.
func (q *workQueue) delayFor(n int) simtime.Duration {
	d := q.base
	for i := 0; i < n && d < q.max; i++ {
		d *= 2
	}
	if d > q.max {
		d = q.max
	}
	return d
}

// Forget clears the item's rate-limiter state after a clean sync.
func (q *workQueue) Forget(name string) { delete(q.fails, name) }

// Pop removes and returns the oldest queued name.
func (q *workQueue) Pop() (string, bool) {
	if len(q.items) == 0 {
		return "", false
	}
	name := q.items[0].name
	q.items = q.items[1:]
	delete(q.queued, name)
	return name, true
}

// headSeq returns the enqueue sequence of the oldest queued item, or
// false on an empty queue.
func (q *workQueue) headSeq() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].seq, true
}

// Len returns the queue depth.
func (q *workQueue) Len() int { return len(q.items) }

// Reset drops all queued items and rate-limiter state (controller
// restart: the relist on election rebuilds the work set).
func (q *workQueue) Reset() {
	q.items = q.items[:0]
	q.queued = make(map[string]bool)
	q.fails = make(map[string]int)
}
