package cluster

import (
	"exist/internal/faults"
	"exist/internal/simtime"
	"exist/internal/spec"
)

// ConfigFromSpec maps a scenario's cluster and fault sections onto a
// cluster Config. Zero spec fields keep DefaultConfig's values, and a nil
// faults section attaches no injector, keeping every fault path dormant.
// seed is the consumer's run seed; the spec's fault seed is folded in so
// a document pins its fault schedule independently of the run.
func ConfigFromSpec(c *spec.Cluster, f *spec.Faults, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	if c != nil {
		if c.Nodes > 0 {
			cfg.Nodes = c.Nodes
		}
		if c.CoresPerNode > 0 {
			cfg.CoresPerNode = c.CoresPerNode
		}
		if c.Replicas > 0 {
			cfg.Replicas = c.Replicas
		}
		if c.Shards > 0 {
			cfg.Shards = c.Shards
		}
	}
	if f != nil {
		cfg.Faults = faults.New(faults.Config{
			Seed:            seed ^ f.Seed,
			PutFailProb:     f.PutFail,
			InsertFailProb:  f.InsertFail,
			SessionLossProb: f.SessionLoss,
			CorruptProb:     f.Corrupt,
			TruncateProb:    f.Truncate,
			StallProb:       f.Stall,
			CrashMTBF:       secs(f.CrashMTBFS),
			CrashDowntime:   secs(f.CrashDowntimeS),
		})
	}
	return cfg
}

func secs(s float64) simtime.Duration {
	return simtime.Duration(s * float64(simtime.Second))
}
