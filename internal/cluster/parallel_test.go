package cluster

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"exist/internal/coverage"
	"exist/internal/simtime"
	"exist/internal/workload"
)

// scenarioSnapshot captures everything externally observable about a
// cluster run: request outcomes, uploaded sessions, store accounting, the
// decoded aggregate, and the control-plane counters. Two runs of the same
// scenario must produce deeply equal snapshots no matter how the node
// engines were scheduled.
type scenarioSnapshot struct {
	phases    []Phase
	sessions  [][]string
	puts      int64
	bytes     int64
	agg       map[string]float64
	resamples int64
	retries   int64
}

// runScenario drives a mixed request schedule — overlapping profiling and
// anomaly windows plus a mid-window cancel — against a 6-node cluster with
// the given Jobs setting. The cancel exercises the control→node edge while
// per-node engines are parked at the barrier; the overlapping windows
// exercise buffered window-close replay.
func runScenario(t *testing.T, jobs int) scenarioSnapshot {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 6
	cfg.CoresPerNode = 4
	cfg.Seed = 11
	cfg.Jobs = jobs
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	// Seed 424242 is unique to this file so progCache hands every run a
	// Program whose lazy indexes were not pre-built by another test.
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 424242}); err != nil {
		t.Fatal(err)
	}
	reqs := make([]*TraceRequest, 6)
	for i := 0; i < 6; i++ {
		i := i
		purpose := coverage.PurposeProfiling
		name := fmt.Sprintf("prof-%d", i)
		if i%2 == 1 {
			purpose = coverage.PurposeAnomaly
			name = fmt.Sprintf("diag-%d", i)
		}
		at := simtime.Time(i) * simtime.Time(300*simtime.Millisecond)
		c.Eng.Schedule(at, func(simtime.Time) {
			r, err := c.Request(name, TraceRequestSpec{
				App:     "Agent",
				Purpose: purpose,
				Period:  400 * simtime.Millisecond,
			})
			if err == nil {
				reqs[i] = r
			}
		})
	}
	// Cancel request 2 mid-window: opened at 600ms, killed at 800ms.
	c.Eng.Schedule(simtime.Time(800*simtime.Millisecond), func(simtime.Time) {
		if reqs[2] != nil && !reqs[2].Phase.Terminal() {
			c.Cancel(reqs[2])
		}
	})
	c.Run(6 * simtime.Second)

	snap := scenarioSnapshot{
		puts:      c.OSS.Puts(),
		bytes:     c.OSS.Bytes(),
		agg:       c.ODPS.AggregateApp("Agent"),
		resamples: c.Mgmt.Resamples,
		retries:   c.Mgmt.Retries,
	}
	for _, r := range reqs {
		if r == nil {
			t.Fatal("request never created")
		}
		snap.phases = append(snap.phases, r.Phase)
		snap.sessions = append(snap.sessions, append([]string(nil), r.SessionKeys...))
	}
	return snap
}

// TestParallelNodesMatchSerial is the node-parallel determinism contract:
// the same scenario run with per-node engines on 4 goroutines must be
// observationally identical to the serial shared-engine run, at any
// GOMAXPROCS. DESIGN.md §14 describes the barrier scheme this relies on.
func TestParallelNodesMatchSerial(t *testing.T) {
	serial := runScenario(t, 1)
	if serial.phases[2] != PhaseCancelled {
		t.Fatalf("request 2 phase = %s, want Cancelled", serial.phases[2])
	}
	if len(serial.agg) == 0 || serial.puts == 0 {
		t.Fatal("scenario produced no data; comparison would be vacuous")
	}
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			par := runScenario(t, 4)
			if !reflect.DeepEqual(par, serial) {
				t.Errorf("jobs=4 diverged from jobs=1:\nserial: %+v\nparallel: %+v", serial, par)
			}
		})
	}
}

// TestParallelNodesRepeatable runs the parallel scenario twice and requires
// deep equality — the per-node engines must not leak scheduling order into
// results even against themselves.
func TestParallelNodesRepeatable(t *testing.T) {
	first := runScenario(t, 4)
	second := runScenario(t, 4)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated jobs=4 runs diverged:\nfirst: %+v\nsecond: %+v", first, second)
	}
}

// TestSharedProgramLazyIndexes has all six node engines concurrently walk
// one shared *binary.Program (progCache memoizes on the spec+seed key, so
// every node holds the same instance). The first windows race to build the
// lazy address/entry indexes and the superop table; under -race this fails
// unless those builds are properly synchronized (sync.Once in binary.go).
func TestSharedProgramLazyIndexes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 6
	cfg.CoresPerNode = 2
	cfg.Seed = 12
	cfg.Jobs = 6
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh seed again: the indexes must be unbuilt when the six engines
	// hit them, or the race window this test exists for never opens.
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: 525252}); err != nil {
		t.Fatal(err)
	}
	req, err := c.Request("r", TraceRequestSpec{
		App:     "Agent",
		Purpose: coverage.PurposeAnomaly,
		Period:  200 * simtime.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * simtime.Second)
	if req.Phase != PhaseCompleted {
		t.Fatalf("phase = %s (%s)", req.Phase, req.Message)
	}
	if len(req.SessionKeys) != 6 {
		t.Fatalf("sessions = %v, want one per node", req.SessionKeys)
	}
}
