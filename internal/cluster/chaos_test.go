package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/simtime"
	"exist/internal/workload"
)

// liteCluster builds a bookkeeping-only cluster with the Agent profile
// deployed everywhere, ready for replicated-control-plane tests.
func liteCluster(t *testing.T, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Lite = true
	cfg.Nodes = 20
	cfg.CoresPerNode = 4
	cfg.Seed = 11
	cfg.Replicas = 3
	if mutate != nil {
		mutate(&cfg)
	}
	c := New(cfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{}); err != nil {
		t.Fatal(err)
	}
	return c
}

// activeLeaders is shorthand for the cluster's exported safety probe.
func activeLeaders(c *Cluster, now simtime.Time) int { return c.ActiveLeaders(now) }

// checkNoLostNoDup asserts the zero-lost/zero-duplicated-sessions
// contract for every request that ran to a terminal phase on its own
// (not expired or shed): unique session keys, and every planned slot
// accounted for exactly once as landed or given up.
func checkNoLostNoDup(t *testing.T, c *Cluster) {
	t.Helper()
	for _, r := range c.API.List() {
		if r.Planned == 0 {
			continue
		}
		seen := make(map[string]bool)
		for _, k := range r.SessionKeys {
			if seen[k] {
				t.Fatalf("%s: duplicated session key %s", r.Name, k)
			}
			seen[k] = true
		}
		if strings.Contains(r.Message, "deadline exceeded") {
			continue
		}
		if got := len(r.SessionKeys) + r.Lost; got != r.Planned {
			t.Fatalf("%s: %d landed + %d lost != %d planned (phase %s, msg %q)",
				r.Name, len(r.SessionKeys), r.Lost, r.Planned, r.Phase, r.Message)
		}
	}
}

// TestBackoffClampedAfterJitter pins the retry-backoff bounds: the
// configured cap is applied to the jittered delay, not only to the
// pre-jitter base, so no retry ever waits longer than RetryMaxBackoff.
func TestBackoffClampedAfterJitter(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) {
		cfg.Replicas = 0
		cfg.Nodes = 1
		cfg.RetryBase = 400 * simtime.Millisecond
		cfg.RetryMaxBackoff = simtime.Second
	})
	sawCap := false
	for attempt := 0; attempt < 10; attempt++ {
		for i := 0; i < 200; i++ {
			d := c.backoff(attempt)
			if d > simtime.Second {
				t.Fatalf("backoff(attempt=%d) = %v exceeds 1s cap", attempt, d)
			}
			if d <= 0 {
				t.Fatalf("backoff(attempt=%d) = %v not positive", attempt, d)
			}
			if attempt >= 2 && d == simtime.Second {
				sawCap = true
			}
		}
	}
	// With base 400ms, attempt >= 2 saturates the pre-jitter cap, and
	// +50% jitter must actually hit the clamp sometimes.
	if !sawCap {
		t.Fatal("jittered backoff never reached the clamp; cap not exercised")
	}
}

// TestWorkQueue pins FIFO order, add-time dedup, and the rate limiter's
// deterministic exponential bounds.
func TestWorkQueue(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) { cfg.Replicas = 0; cfg.Nodes = 1 })
	q := newWorkQueue(c, 5*simtime.Millisecond, simtime.Second, nil)
	q.Add("a")
	q.Add("b")
	q.Add("a") // dedup
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	if n, _ := q.Pop(); n != "a" {
		t.Fatalf("pop = %s", n)
	}
	if n, _ := q.Pop(); n != "b" {
		t.Fatalf("pop = %s", n)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty")
	}
	want := []simtime.Duration{
		5 * simtime.Millisecond, 10 * simtime.Millisecond, 20 * simtime.Millisecond,
		40 * simtime.Millisecond, 80 * simtime.Millisecond, 160 * simtime.Millisecond,
		320 * simtime.Millisecond, 640 * simtime.Millisecond, simtime.Second, simtime.Second,
	}
	for n, w := range want {
		if got := q.delayFor(n); got != w {
			t.Fatalf("delayFor(%d) = %v, want %v", n, got, w)
		}
	}
	// Delayed re-add lands on the virtual clock.
	q.AddAfter("x", 30*simtime.Millisecond)
	if q.Len() != 0 {
		t.Fatal("AddAfter added immediately")
	}
	c.Run(c.Eng.Now() + 31*simtime.Millisecond)
	if q.Len() != 1 {
		t.Fatal("AddAfter never landed")
	}
}

// TestWatchStreamOverflowForcesRelist pins the bounded-buffer contract:
// a slow consumer loses oldest events, is marked stale, and must relist.
func TestWatchStreamOverflowForcesRelist(t *testing.T) {
	a := NewAPIServer()
	kicks := 0
	w := a.WatchStream(3, func() { kicks++ })
	for i := 0; i < 5; i++ {
		r, err := a.Create(fmt.Sprintf("r-%d", i), TraceRequestSpec{App: "x"})
		if err != nil {
			t.Fatal(err)
		}
		if r.ResourceVersion != int64(i+1) {
			t.Fatalf("rv = %d", r.ResourceVersion)
		}
	}
	if kicks != 1 {
		t.Fatalf("notify fired %d times; want edge-triggered 1", kicks)
	}
	if !w.Stale() || w.Len() != 3 {
		t.Fatalf("stale=%v len=%d after overflow", w.Stale(), w.Len())
	}
	ev, _ := w.Next()
	if ev.Name != "r-2" {
		t.Fatalf("oldest surviving event = %s; drop-oldest violated", ev.Name)
	}
	w.Reset()
	if w.Stale() || w.Len() != 0 {
		t.Fatal("Reset did not clear the stream")
	}
	// Next change notifies again (empty -> non-empty edge).
	r, _ := a.Get("r-0")
	a.Touch(r)
	if kicks != 2 || w.Len() != 1 {
		t.Fatalf("kicks=%d len=%d after Touch", kicks, w.Len())
	}
}

// TestCASPhaseConflict pins the optimistic-concurrency contract on
// phase transitions.
func TestCASPhaseConflict(t *testing.T) {
	a := NewAPIServer()
	r, err := a.Create("r", TraceRequestSpec{App: "x"})
	if err != nil {
		t.Fatal(err)
	}
	rv := r.ResourceVersion
	a.Touch(r) // a concurrent writer moves the object
	if err := a.CASPhase(r, rv, PhaseRunning, ""); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale CAS: %v, want ErrConflict", err)
	}
	if r.Phase != PhasePending {
		t.Fatalf("phase mutated by failed CAS: %s", r.Phase)
	}
	if err := a.CASPhase(r, r.ResourceVersion, PhaseRunning, ""); err != nil {
		t.Fatal(err)
	}
	if r.Phase != PhaseRunning {
		t.Fatalf("phase = %s", r.Phase)
	}
}

// TestLeaseStoreFencing pins election safety: a valid lease excludes
// other acquirers, every fresh acquisition changes the fencing token,
// and a deposed holder's token is rejected.
func TestLeaseStoreFencing(t *testing.T) {
	ls := &LeaseStore{}
	tok0, ok := ls.TryAcquire("ctrl-0", 0, 400*simtime.Millisecond)
	if !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok := ls.TryAcquire("ctrl-1", 100*simtime.Millisecond, 400*simtime.Millisecond); ok {
		t.Fatal("acquired over a valid lease")
	}
	// Renewal keeps the token.
	tokR, ok := ls.TryAcquire("ctrl-0", 200*simtime.Millisecond, 400*simtime.Millisecond)
	if !ok || tokR != tok0 {
		t.Fatalf("renewal token %d, want %d", tokR, tok0)
	}
	// Expiry lets a challenger in with a new token; the old one fences.
	tok1, ok := ls.TryAcquire("ctrl-1", 700*simtime.Millisecond, 400*simtime.Millisecond)
	if !ok || tok1 == tok0 {
		t.Fatalf("failover token %d after %d", tok1, tok0)
	}
	if ls.ValidFor("ctrl-0", tok0, 800*simtime.Millisecond) {
		t.Fatal("deposed holder still valid")
	}
	if !ls.ValidFor("ctrl-1", tok1, 800*simtime.Millisecond) {
		t.Fatal("new holder not valid")
	}
	if ls.Failovers() != 1 {
		t.Fatalf("failovers = %d", ls.Failovers())
	}
	// Same-holder re-acquire after a lapse still refreshes the token, so
	// callbacks from the dead incarnation stay fenced.
	tok2, _ := ls.TryAcquire("ctrl-1", 2*simtime.Second, 400*simtime.Millisecond)
	if tok2 == tok1 {
		t.Fatal("token survived a lapse")
	}
	frac, gaps := ls.Availability(2.4)
	if frac <= 0 || frac >= 1 || gaps < 2 {
		t.Fatalf("availability %.3f gaps %d", frac, gaps)
	}
}

// TestReplicatedPlaneCompletesRequests is the replicated control plane
// on a calm sea: requests flow Pending -> Running -> Completed with
// full coverage, one leader does all the work, and the accounting
// matches the legacy plane's invariants.
func TestReplicatedPlaneCompletesRequests(t *testing.T) {
	c := liteCluster(t, nil)
	for i := 0; i < 5; i++ {
		if _, err := c.Request(fmt.Sprintf("r-%d", i), TraceRequestSpec{
			App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 100 * simtime.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(2 * simtime.Second)
	for _, r := range c.API.List() {
		if r.Phase != PhaseCompleted {
			t.Fatalf("%s: phase %s (%s)", r.Name, r.Phase, r.Message)
		}
		if r.Planned == 0 || len(r.SessionKeys) != r.Planned {
			t.Fatalf("%s: %d/%d sessions", r.Name, len(r.SessionKeys), r.Planned)
		}
	}
	checkNoLostNoDup(t, c)
	if n := activeLeaders(c, c.Eng.Now()); n != 1 {
		t.Fatalf("%d active leaders", n)
	}
	if c.Mgmt.Syncs == 0 || c.Leases.Elections() != 1 {
		t.Fatalf("syncs=%d elections=%d", c.Mgmt.Syncs, c.Leases.Elections())
	}
	frac, _ := c.Leases.Availability(c.Eng.Now().Seconds())
	if frac < 0.99 {
		t.Fatalf("availability %.4f on a calm run", frac)
	}
}

// TestForcedFailoversLoseNothing is the headline chaos guarantee: six
// forced leader crashes while requests are in flight, and still a
// single active leader at every sampled instant, every request
// terminal, and zero lost or duplicated sessions.
func TestForcedFailoversLoseNothing(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) { cfg.Nodes = 40 })
	running := make(map[string]int)
	c.API.Watch(func(r *TraceRequest) {
		if r.Phase == PhaseRunning {
			running[r.Name]++
		}
	})
	// A steady stream of requests keeps work in flight across failovers.
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("r-%d", i)
		c.Eng.AfterDetached(simtime.Duration(i)*180*simtime.Millisecond, func(simtime.Time) {
			// Long sessions (~1.5-3 s) guarantee requests are still in
			// flight when leaders die, so failovers must re-adopt them.
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly,
				Period: 1500 * simtime.Millisecond, Deadline: 30 * simtime.Second,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	// Crash the current leader every 700 ms; 450 ms downtime outlives
	// the 400 ms lease so another replica must take over.
	for i := 1; i <= 6; i++ {
		c.Eng.AfterDetached(simtime.Duration(i)*700*simtime.Millisecond, func(now simtime.Time) {
			for _, ct := range c.Controllers {
				if ct.leader && !ct.down {
					ct.crash(450*simtime.Millisecond, nil)
					return
				}
			}
		})
	}
	// Safety invariant, sampled every 10 ms: never two active leaders.
	var sample func(now simtime.Time)
	sample = func(now simtime.Time) {
		if n := activeLeaders(c, now); n > 1 {
			t.Fatalf("%d active leaders at %v", n, now)
		}
		if now < 10*simtime.Second {
			c.Eng.AfterDetached(10*simtime.Millisecond, sample)
		}
	}
	c.Eng.AfterDetached(10*simtime.Millisecond, sample)

	c.Run(15 * simtime.Second)

	if got := c.Leases.Failovers(); got < 5 {
		t.Fatalf("failovers = %d, want >= 5", got)
	}
	for _, r := range c.API.List() {
		if !r.Phase.Terminal() {
			t.Fatalf("%s not terminal: %s (%s)", r.Name, r.Phase, r.Message)
		}
		if running[r.Name] > 1 {
			t.Fatalf("%s started %d times", r.Name, running[r.Name])
		}
	}
	checkNoLostNoDup(t, c)
	if len(c.Readopts) == 0 {
		t.Fatal("no re-adoption times recorded across failovers")
	}
	frac, gaps := c.Leases.Availability(c.Eng.Now().Seconds())
	if frac >= 1 || frac < 0.5 {
		t.Fatalf("availability %.3f across 6 crashes", frac)
	}
	if gaps == 0 {
		t.Fatal("crashes produced no leadership gaps")
	}
}

// chaosFaults is the full storm: node crashes, controller crashes,
// partitions, gray nodes, clock skew, and flaky stores.
func chaosFaults(seed uint64) faults.Config {
	return faults.Config{
		Seed:              seed,
		CrashMTBF:         4 * simtime.Second,
		CrashDowntime:     800 * simtime.Millisecond,
		CtrlCrashMTBF:     3 * simtime.Second,
		CtrlCrashDowntime: 600 * simtime.Millisecond,
		PartitionMTBF:     2 * simtime.Second,
		PartitionMeanDur:  300 * simtime.Millisecond,
		GrayNodeProb:      0.2,
		GrayDelayMean:     400 * simtime.Millisecond,
		ClockSkewMax:      50 * simtime.Millisecond,
		SessionLossProb:   0.05,
		PutFailProb:       0.05,
	}
}

// runChaos builds a replicated lite cluster under the full storm,
// pushes requests through it, and returns it after the run.
func runChaos(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	c := liteCluster(t, func(cfg *Config) {
		cfg.Seed = seed
		cfg.Nodes = 30
		cfg.Faults = faults.New(chaosFaults(seed*3 + 7))
	})
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("r-%d", i)
		c.Eng.AfterDetached(simtime.Duration(i)*250*simtime.Millisecond, func(simtime.Time) {
			// Filing can only fail on a programming error here; chaos does
			// not touch the configuration interface.
			if _, err := c.Request(name, TraceRequestSpec{
				App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 100 * simtime.Millisecond,
			}); err != nil {
				t.Errorf("request %s: %v", name, err)
			}
		})
	}
	c.Run(20 * simtime.Second)
	return c
}

// TestLivenessUnderChaos is the liveness property test: across many
// seeds of randomized crash/partition/gray schedules, every admitted
// TraceRequest reaches a terminal phase, and no session is duplicated.
func TestLivenessUnderChaos(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 0; s < seeds; s++ {
		seed := uint64(100 + s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := runChaos(t, seed)
			for _, r := range c.API.List() {
				if !r.Phase.Terminal() {
					t.Fatalf("%s stuck in %s (%s)", r.Name, r.Phase, r.Message)
				}
			}
			checkNoLostNoDup(t, c)
			if n := activeLeaders(c, c.Eng.Now()); n > 1 {
				t.Fatalf("%d active leaders", n)
			}
		})
	}
}

// TestChaosDeterministicForFixedSeed pins reproducibility: the same
// seed yields the same phases, sessions, and control-plane counters.
func TestChaosDeterministicForFixedSeed(t *testing.T) {
	fingerprint := func(c *Cluster) string {
		var b strings.Builder
		for _, r := range c.API.List() {
			fmt.Fprintf(&b, "%s=%s/%d/%d/%d;", r.Name, r.Phase, len(r.SessionKeys), r.Lost, r.Resampled)
		}
		fmt.Fprintf(&b, "syncs=%d requeues=%d elections=%d failovers=%d shed=%d suspicions=%d",
			c.Mgmt.Syncs, c.Mgmt.Requeues, c.Leases.Elections(), c.Leases.Failovers(),
			c.Mgmt.Shed, c.Mgmt.FalseSuspicions)
		return b.String()
	}
	a := fingerprint(runChaos(t, 42))
	b := fingerprint(runChaos(t, 42))
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == fingerprint(runChaos(t, 43)) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestGrayNodesCauseFalseSuspicions pins the gray-failure model: late
// heartbeats lapse leases on live nodes and the control plane records
// the false suspicions.
func TestGrayNodesCauseFalseSuspicions(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) {
		cfg.Replicas = 0
		cfg.Nodes = 10
		cfg.Faults = faults.New(faults.Config{
			Seed:          6,
			GrayNodeProb:  1,
			GrayDelayMean: 600 * simtime.Millisecond,
		})
	})
	c.Run(5 * simtime.Second)
	if c.Mgmt.FalseSuspicions == 0 {
		t.Fatal("all-gray fleet produced no false suspicions")
	}
	if c.Cfg.Faults.Stats().GrayDelays == 0 {
		t.Fatal("no heartbeat delays recorded")
	}
	for _, n := range c.Nodes {
		if n.Down {
			t.Fatalf("%s marked down; gray nodes are alive", n.Name)
		}
	}
}

// TestAdmissionControlSheds pins backpressure: with a tiny queue
// budget, a request storm is shed to PhaseDegraded instead of timing
// out, and the survivors complete.
func TestAdmissionControlSheds(t *testing.T) {
	c := liteCluster(t, func(cfg *Config) { cfg.AdmitQueueMax = 3 })
	for i := 0; i < 20; i++ {
		if _, err := c.Request(fmt.Sprintf("r-%02d", i), TraceRequestSpec{
			App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 100 * simtime.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(3 * simtime.Second)
	shed, completed := 0, 0
	for _, r := range c.API.List() {
		switch {
		case r.Phase == PhaseDegraded && strings.Contains(r.Message, "admission control"):
			shed++
		case r.Phase == PhaseCompleted:
			completed++
		default:
			t.Fatalf("%s: %s (%s)", r.Name, r.Phase, r.Message)
		}
	}
	if shed == 0 || completed == 0 {
		t.Fatalf("shed=%d completed=%d; want both nonzero", shed, completed)
	}
	if int(c.Mgmt.Shed) != shed {
		t.Fatalf("Mgmt.Shed=%d, %d requests shed", c.Mgmt.Shed, shed)
	}
}

// TestPartitionedLeaderIsFenced pins the partition model: when the
// leader loses the store, its lease decays, a peer takes over, and the
// old incarnation is fenced rather than acting on stale leadership.
func TestPartitionedLeaderIsFenced(t *testing.T) {
	c := liteCluster(t, nil)
	c.Run(300 * simtime.Millisecond)
	var leader *Controller
	for _, ct := range c.Controllers {
		if ct.leader {
			leader = ct
			break
		}
	}
	if leader == nil {
		t.Fatal("no leader elected")
	}
	// Partition the leader for well over the lease TTL.
	leader.partitionedUntil = c.Eng.Now() + 2*simtime.Second
	c.Run(c.Eng.Now() + simtime.Second)
	holder, _ := c.Leases.Holder()
	if holder == leader.Name {
		t.Fatalf("partitioned leader %s still holds the lease", holder)
	}
	if n := activeLeaders(c, c.Eng.Now()); n != 1 {
		t.Fatalf("%d active leaders during partition", n)
	}
	if c.Leases.Failovers() == 0 {
		t.Fatal("partition caused no failover")
	}
	// Heal; the deposed replica must not split-brain on return.
	c.Run(c.Eng.Now() + 2*simtime.Second)
	if n := activeLeaders(c, c.Eng.Now()); n != 1 {
		t.Fatalf("%d active leaders after heal", n)
	}
}
