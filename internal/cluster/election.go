package cluster

import (
	"exist/internal/metrics"
	"exist/internal/simtime"
)

// Lease is one shard's leader-election record kept in the object store.
// The fencing Token increments on every change of holder, so a deposed
// leader that wakes up with a stale token is rejected by the store even
// if its local clock still believes the lease is valid.
type Lease struct {
	Holder string
	Token  int64
	Until  simtime.Time
}

// leaseShard is the store-side election state for one shard: its lease,
// availability ledger, and election counters.
type leaseShard struct {
	lease     Lease
	up        metrics.Uptime
	failovers int
	elections int
}

// LeaseStore is the store-side half of leader election: one lease record
// per shard with compare-and-swap acquisition (a range lease — holding
// shard s means owning every request whose name hashes to s). The
// store's clock is the authority — controllers may observe skewed time,
// but expiry and fencing are judged here. It also keeps the availability
// ledger: per shard, the union of time during which some controller held
// a valid lease.
//
// The zero value is a usable single-shard store, which keeps the
// single-lease call sites (and the historical behavior) intact.
type LeaseStore struct {
	shards []leaseShard
	// presence records each replica's last liveness refresh; holders of
	// non-home shards consult it to hand shards back when the home
	// replica returns (only engaged with more than one shard).
	presence map[string]simtime.Time
}

// NewLeaseStore returns a lease store with n shard leases (n < 1 is
// treated as 1).
func NewLeaseStore(n int) *LeaseStore {
	if n < 1 {
		n = 1
	}
	return &LeaseStore{shards: make([]leaseShard, n)}
}

// ensure lazily sizes the zero value to a single shard.
func (ls *LeaseStore) ensure() {
	if len(ls.shards) == 0 {
		ls.shards = make([]leaseShard, 1)
	}
}

// Shards returns the shard-lease count.
func (ls *LeaseStore) Shards() int {
	ls.ensure()
	return len(ls.shards)
}

// TryAcquireShard attempts to take or renew shard si's lease for ctrl at
// observed time now with the given ttl. It fails while a different
// holder's lease is still valid. The fencing token increments on every
// fresh acquisition — a change of holder, or a re-acquire after the
// lease lapsed — so callbacks queued under the old incarnation are
// fenced off even when the same replica wins again. A change of holder
// after the shard's first election is recorded as a failover (a shard
// rebalance). `now` is the caller's observed time: a clock-skewed
// controller both judges the incumbent's expiry and stamps its own with
// a skewed clock, which is exactly how skew breaks real lease schemes.
func (ls *LeaseStore) TryAcquireShard(si int, ctrl string, now simtime.Time, ttl simtime.Duration) (int64, bool) {
	ls.ensure()
	sh := &ls.shards[si]
	held := sh.lease.Holder != "" && sh.lease.Until > now
	if held && sh.lease.Holder != ctrl {
		return 0, false
	}
	if !held || sh.lease.Holder != ctrl {
		sh.lease.Token++
		sh.elections++
		if sh.lease.Holder != "" && sh.lease.Holder != ctrl {
			sh.failovers++
		}
		sh.lease.Holder = ctrl
	}
	sh.lease.Until = now + ttl
	sh.up.Extend(now.Seconds(), sh.lease.Until.Seconds())
	return sh.lease.Token, true
}

// TryAcquire attempts shard 0's lease (the single-shard call surface).
func (ls *LeaseStore) TryAcquire(ctrl string, now simtime.Time, ttl simtime.Duration) (int64, bool) {
	return ls.TryAcquireShard(0, ctrl, now, ttl)
}

// Release lapses shard si's lease if ctrl still holds it with the given
// token: a graceful handback. The holder record is kept — the next
// acquisition (by the returning home replica) still increments the
// fencing token and counts as a failover, i.e. a rebalance.
func (ls *LeaseStore) Release(si int, ctrl string, token int64, now simtime.Time) bool {
	ls.ensure()
	sh := &ls.shards[si]
	if sh.lease.Holder != ctrl || sh.lease.Token != token || sh.lease.Until <= now {
		return false
	}
	sh.lease.Until = now
	return true
}

// Expired reports whether shard si's lease is lapsed (or was never
// taken) at observed time now.
func (ls *LeaseStore) Expired(si int, now simtime.Time) bool {
	ls.ensure()
	sh := &ls.shards[si]
	return sh.lease.Holder == "" || sh.lease.Until <= now
}

// ValidForShard reports whether ctrl still holds shard si's lease with
// the given fencing token at store time now. Store mutations from a
// controller that fails this check are fenced off.
func (ls *LeaseStore) ValidForShard(si int, ctrl string, token int64, now simtime.Time) bool {
	ls.ensure()
	sh := &ls.shards[si]
	return sh.lease.Holder == ctrl && sh.lease.Token == token && sh.lease.Until > now
}

// ValidFor checks shard 0's lease (the single-shard call surface).
func (ls *LeaseStore) ValidFor(ctrl string, token int64, now simtime.Time) bool {
	return ls.ValidForShard(0, ctrl, token, now)
}

// Holder returns shard 0's current (possibly expired) holder and token.
func (ls *LeaseStore) Holder() (string, int64) {
	ls.ensure()
	return ls.shards[0].lease.Holder, ls.shards[0].lease.Token
}

// HolderShard returns shard si's current (possibly expired) holder and
// token.
func (ls *LeaseStore) HolderShard(si int) (string, int64) {
	ls.ensure()
	return ls.shards[si].lease.Holder, ls.shards[si].lease.Token
}

// Heartbeat refreshes ctrl's liveness record until now+ttl.
func (ls *LeaseStore) Heartbeat(ctrl string, now simtime.Time, ttl simtime.Duration) {
	if ls.presence == nil {
		ls.presence = make(map[string]simtime.Time)
	}
	ls.presence[ctrl] = now + ttl
}

// Alive reports whether ctrl's liveness record is fresh at time now.
func (ls *LeaseStore) Alive(ctrl string, now simtime.Time) bool {
	return ls.presence[ctrl] > now
}

// Availability returns the fraction of [0, end] seconds during which a
// valid leader lease existed, averaged across shards, plus the total
// number of per-shard leadership gaps.
func (ls *LeaseStore) Availability(end float64) (float64, int) {
	ls.ensure()
	frac, gaps := 0.0, 0
	for i := range ls.shards {
		frac += ls.shards[i].up.Fraction(end)
		gaps += ls.shards[i].up.Gaps()
	}
	return frac / float64(len(ls.shards)), gaps
}

// Failovers returns how many times shard leadership changed hands after
// each shard's first election — with several shards, the number of
// shard rebalances.
func (ls *LeaseStore) Failovers() int {
	ls.ensure()
	n := 0
	for i := range ls.shards {
		n += ls.shards[i].failovers
	}
	return n
}

// Elections returns the number of distinct shard-leader acquisitions.
func (ls *LeaseStore) Elections() int {
	ls.ensure()
	n := 0
	for i := range ls.shards {
		n += ls.shards[i].elections
	}
	return n
}
