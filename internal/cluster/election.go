package cluster

import (
	"exist/internal/metrics"
	"exist/internal/simtime"
)

// Lease is the leader-election record kept in the object store. The
// fencing Token increments on every change of holder, so a deposed
// leader that wakes up with a stale token is rejected by the store even
// if its local clock still believes the lease is valid.
type Lease struct {
	Holder string
	Token  int64
	Until  simtime.Time
}

// LeaseStore is the store-side half of leader election: a single lease
// record with compare-and-swap acquisition. The store's clock is the
// authority — controllers may observe skewed time, but expiry and
// fencing are judged here. It also keeps the availability ledger: the
// union of time during which some controller held a valid lease.
type LeaseStore struct {
	lease     Lease
	up        metrics.Uptime
	failovers int
	elections int
}

// TryAcquire attempts to take or renew the lease for ctrl at observed
// time now with the given ttl. It fails while a different holder's
// lease is still valid. The fencing token increments on every fresh
// acquisition — a change of holder, or a re-acquire after the lease
// lapsed — so callbacks queued under the old incarnation are fenced
// off even when the same replica wins again. A change of holder after
// the first election is recorded as a failover. `now` is the caller's
// observed time: a clock-skewed controller both judges the incumbent's
// expiry and stamps its own with a skewed clock, which is exactly how
// skew breaks real lease schemes.
func (ls *LeaseStore) TryAcquire(ctrl string, now simtime.Time, ttl simtime.Duration) (int64, bool) {
	held := ls.lease.Holder != "" && ls.lease.Until > now
	if held && ls.lease.Holder != ctrl {
		return 0, false
	}
	if !held || ls.lease.Holder != ctrl {
		ls.lease.Token++
		ls.elections++
		if ls.lease.Holder != "" && ls.lease.Holder != ctrl {
			ls.failovers++
		}
		ls.lease.Holder = ctrl
	}
	ls.lease.Until = now + ttl
	ls.up.Extend(now.Seconds(), ls.lease.Until.Seconds())
	return ls.lease.Token, true
}

// ValidFor reports whether ctrl still holds the lease with the given
// fencing token at store time now. Store mutations from a controller
// that fails this check are fenced off.
func (ls *LeaseStore) ValidFor(ctrl string, token int64, now simtime.Time) bool {
	return ls.lease.Holder == ctrl && ls.lease.Token == token && ls.lease.Until > now
}

// Holder returns the current (possibly expired) holder and token.
func (ls *LeaseStore) Holder() (string, int64) { return ls.lease.Holder, ls.lease.Token }

// Availability returns the fraction of [0, end] seconds during which a
// valid leader lease existed, plus the number of leadership gaps.
func (ls *LeaseStore) Availability(end float64) (float64, int) {
	return ls.up.Fraction(end), ls.up.Gaps()
}

// Failovers returns how many times leadership changed hands after the
// first election; Elections counts every acquisition by a new holder.
func (ls *LeaseStore) Failovers() int { return ls.failovers }

// Elections returns the number of distinct leader acquisitions.
func (ls *LeaseStore) Elections() int { return ls.elections }
