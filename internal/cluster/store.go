package cluster

import (
	"fmt"
	"sort"
)

// ObjectStore is the unstructured blob store EXIST uploads raw sessions
// to (the OSS stand-in of §4): traced data goes straight to the object
// store instead of node-local files, avoiding node memory and file I/O.
type ObjectStore struct {
	blobs map[string][]byte
	bytes int64
	puts  int64
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{blobs: make(map[string][]byte)}
}

// Put stores a blob under key, replacing any previous value.
func (o *ObjectStore) Put(key string, data []byte) {
	if old, ok := o.blobs[key]; ok {
		o.bytes -= int64(len(old))
	}
	o.blobs[key] = append([]byte(nil), data...)
	o.bytes += int64(len(data))
	o.puts++
}

// Get retrieves a blob.
func (o *ObjectStore) Get(key string) ([]byte, bool) {
	b, ok := o.blobs[key]
	return b, ok
}

// List returns all keys with the prefix, sorted.
func (o *ObjectStore) List(prefix string) []string {
	var keys []string
	for k := range o.blobs {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Bytes returns the stored volume.
func (o *ObjectStore) Bytes() int64 { return o.bytes }

// Puts returns the number of uploads.
func (o *ObjectStore) Puts() int64 { return o.puts }

// Row is one structured record in the processing store.
type Row struct {
	// App, Node and Session identify the source.
	App, Node, Session string
	// Key and Value are the datum (e.g. a function name and its
	// occurrence count).
	Key   string
	Value float64
}

// DataStore is the structured, queryable store decoded results land in
// (the ODPS stand-in of §4); engineers query it for analysis and
// reproduction.
type DataStore struct {
	rows []Row
}

// NewDataStore returns an empty store.
func NewDataStore() *DataStore { return &DataStore{} }

// Insert appends rows.
func (d *DataStore) Insert(rows ...Row) { d.rows = append(d.rows, rows...) }

// Len returns the row count.
func (d *DataStore) Len() int { return len(d.rows) }

// QueryApp returns all rows for an app, ordered by (session, key).
func (d *DataStore) QueryApp(app string) []Row {
	var out []Row
	for _, r := range d.rows {
		if r.App == app {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// AggregateApp sums Value by Key across an app's sessions.
func (d *DataStore) AggregateApp(app string) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range d.rows {
		if r.App == app {
			out[r.Key] += r.Value
		}
	}
	return out
}

// String summarizes the store.
func (d *DataStore) String() string {
	return fmt.Sprintf("datastore(%d rows)", len(d.rows))
}
