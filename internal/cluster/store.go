package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"exist/internal/faults"
)

// ossShard is one lock domain of the object store: its own blob map,
// attempt ledger, and mutex. Keys are routed by a stable hash so a key
// always lands in the same shard regardless of upload order.
type ossShard struct {
	mu       sync.Mutex
	blobs    map[string][]byte
	attempts map[string]int
}

// ObjectStore is the unstructured blob store EXIST uploads raw sessions
// to (the OSS stand-in of §4): traced data goes straight to the object
// store instead of node-local files, avoiding node memory and file I/O.
//
// The store is sharded by key hash (DESIGN.md §15): each shard has its
// own map and mutex, and the aggregate counters are atomics, so parallel
// uploads from concurrently running node engines contend only within a
// shard and counter reads never race. With one shard the behavior is
// identical to the historical single-map store.
//
// Put is fault-aware: with an injector attached, attempts can fail with
// transient errors (the control plane retries with backoff). Without one,
// Put never fails.
type ObjectStore struct {
	shards   []ossShard
	bytes    atomic.Int64
	puts     atomic.Int64
	failures atomic.Int64
	inj      *faults.Injector
}

// NewObjectStore returns an empty single-shard store.
func NewObjectStore() *ObjectStore { return NewObjectStoreShards(1) }

// NewObjectStoreShards returns an empty store with n lock shards
// (n < 1 is treated as 1).
func NewObjectStoreShards(n int) *ObjectStore {
	if n < 1 {
		n = 1
	}
	o := &ObjectStore{shards: make([]ossShard, n)}
	for i := range o.shards {
		o.shards[i].blobs = make(map[string][]byte)
		o.shards[i].attempts = make(map[string]int)
	}
	return o
}

func (o *ObjectStore) shardFor(key string) *ossShard {
	return &o.shards[hashName(key)%uint64(len(o.shards))]
}

// UseFaults attaches a fault injector; nil detaches it.
func (o *ObjectStore) UseFaults(inj *faults.Injector) { o.inj = inj }

// Put stores a blob under key, replacing any previous value. With fault
// injection enabled it may return a transient error; the blob is then not
// stored and the caller should retry.
func (o *ObjectStore) Put(key string, data []byte) error {
	s := o.shardFor(key)
	s.mu.Lock()
	attempt := s.attempts[key]
	s.attempts[key] = attempt + 1
	if err := o.inj.PutError(key, attempt); err != nil {
		s.mu.Unlock()
		o.failures.Add(1)
		return err
	}
	o.storeLocked(s, key, data)
	s.mu.Unlock()
	o.puts.Add(1)
	return nil
}

// storeLocked writes one blob into a shard the caller holds locked,
// keeping the byte ledger balanced on overwrite.
func (o *ObjectStore) storeLocked(s *ossShard, key string, data []byte) {
	if old, ok := s.blobs[key]; ok {
		o.bytes.Add(-int64(len(old)))
	}
	s.blobs[key] = append([]byte(nil), data...)
	o.bytes.Add(int64(len(data)))
}

// PutBatch stores several blobs in one upload: the batch succeeds or
// fails atomically (one injected-fault roll, keyed by batchKey, covers
// the whole request), counts as a single put in the upload ledger, and
// each blob still lands under its own key — possibly across several
// shards. This is the wire-level amortization behind Config.UploadBatch.
func (o *ObjectStore) PutBatch(batchKey string, keys []string, blobs [][]byte) error {
	if len(keys) != len(blobs) {
		return fmt.Errorf("oss: PutBatch with %d keys, %d blobs", len(keys), len(blobs))
	}
	bs := o.shardFor(batchKey)
	bs.mu.Lock()
	attempt := bs.attempts[batchKey]
	bs.attempts[batchKey] = attempt + 1
	bs.mu.Unlock()
	if err := o.inj.PutError(batchKey, attempt); err != nil {
		o.failures.Add(1)
		return err
	}
	for i, key := range keys {
		s := o.shardFor(key)
		s.mu.Lock()
		o.storeLocked(s, key, blobs[i])
		s.mu.Unlock()
	}
	o.puts.Add(1)
	return nil
}

// Get retrieves a blob.
func (o *ObjectStore) Get(key string) ([]byte, bool) {
	s := o.shardFor(key)
	s.mu.Lock()
	b, ok := s.blobs[key]
	s.mu.Unlock()
	return b, ok
}

// Delete removes a blob, reporting whether it existed.
func (o *ObjectStore) Delete(key string) bool {
	s := o.shardFor(key)
	s.mu.Lock()
	b, ok := s.blobs[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.blobs, key)
	s.mu.Unlock()
	o.bytes.Add(-int64(len(b)))
	return true
}

// List returns all keys with the prefix, sorted. The merge across shards
// is order-insensitive because the result is sorted, so output is
// identical for any shard count.
func (o *ObjectStore) List(prefix string) []string {
	var keys []string
	for i := range o.shards {
		s := &o.shards[i]
		s.mu.Lock()
		for k := range s.blobs {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				keys = append(keys, k)
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// Bytes returns the stored volume.
func (o *ObjectStore) Bytes() int64 { return o.bytes.Load() }

// Puts returns the number of successful uploads.
func (o *ObjectStore) Puts() int64 { return o.puts.Load() }

// Failures returns the number of failed upload attempts.
func (o *ObjectStore) Failures() int64 { return o.failures.Load() }

// Row is one structured record in the processing store.
type Row struct {
	// App, Node and Session identify the source.
	App, Node, Session string
	// Key and Value are the datum (e.g. a function name and its
	// occurrence count).
	Key   string
	Value float64
}

// dsShard is one lock domain of the data store, routed by batch key so a
// batch's rows stay contiguous within their shard.
type dsShard struct {
	mu       sync.Mutex
	rows     []Row
	attempts map[string]int
}

// DataStore is the structured, queryable store decoded results land in
// (the ODPS stand-in of §4); engineers query it for analysis and
// reproduction. Insert is fault-aware under an attached injector, like
// ObjectStore.Put. Like the object store it is sharded by batch key; all
// query paths sort or aggregate, so results do not depend on the shard
// count.
type DataStore struct {
	shards   []dsShard
	failures atomic.Int64
	inj      *faults.Injector
}

// NewDataStore returns an empty single-shard store.
func NewDataStore() *DataStore { return NewDataStoreShards(1) }

// NewDataStoreShards returns an empty store with n lock shards
// (n < 1 is treated as 1).
func NewDataStoreShards(n int) *DataStore {
	if n < 1 {
		n = 1
	}
	d := &DataStore{shards: make([]dsShard, n)}
	for i := range d.shards {
		d.shards[i].attempts = make(map[string]int)
	}
	return d
}

func (d *DataStore) shardFor(batch string) *dsShard {
	return &d.shards[hashName(batch)%uint64(len(d.shards))]
}

// UseFaults attaches a fault injector; nil detaches it.
func (d *DataStore) UseFaults(inj *faults.Injector) { d.inj = inj }

// Insert appends rows as one batch identified by batch (typically the
// session ID). With fault injection enabled the whole batch may fail
// transiently; no partial batch is ever stored.
func (d *DataStore) Insert(batch string, rows ...Row) error {
	s := d.shardFor(batch)
	s.mu.Lock()
	attempt := s.attempts[batch]
	s.attempts[batch] = attempt + 1
	if err := d.inj.InsertError(batch, attempt); err != nil {
		s.mu.Unlock()
		d.failures.Add(1)
		return err
	}
	s.rows = append(s.rows, rows...)
	s.mu.Unlock()
	return nil
}

// Len returns the row count.
func (d *DataStore) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += len(s.rows)
		s.mu.Unlock()
	}
	return n
}

// Failures returns the number of failed insert attempts.
func (d *DataStore) Failures() int64 { return d.failures.Load() }

// QueryApp returns all rows for an app, ordered by (session, key).
func (d *DataStore) QueryApp(app string) []Row {
	var out []Row
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for _, r := range s.rows {
			if r.App == app {
				out = append(out, r)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// AggregateApp sums Value by Key across an app's sessions.
func (d *DataStore) AggregateApp(app string) map[string]float64 {
	out := make(map[string]float64)
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for _, r := range s.rows {
			if r.App == app {
				out[r.Key] += r.Value
			}
		}
		s.mu.Unlock()
	}
	return out
}

// String summarizes the store.
func (d *DataStore) String() string {
	return fmt.Sprintf("datastore(%d rows)", d.Len())
}
