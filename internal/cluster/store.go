package cluster

import (
	"fmt"
	"sort"

	"exist/internal/faults"
)

// ObjectStore is the unstructured blob store EXIST uploads raw sessions
// to (the OSS stand-in of §4): traced data goes straight to the object
// store instead of node-local files, avoiding node memory and file I/O.
//
// Put is fault-aware: with an injector attached, attempts can fail with
// transient errors (the control plane retries with backoff). Without one,
// Put never fails.
type ObjectStore struct {
	blobs    map[string][]byte
	bytes    int64
	puts     int64
	failures int64
	attempts map[string]int
	inj      *faults.Injector
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{blobs: make(map[string][]byte), attempts: make(map[string]int)}
}

// UseFaults attaches a fault injector; nil detaches it.
func (o *ObjectStore) UseFaults(inj *faults.Injector) { o.inj = inj }

// Put stores a blob under key, replacing any previous value. With fault
// injection enabled it may return a transient error; the blob is then not
// stored and the caller should retry.
func (o *ObjectStore) Put(key string, data []byte) error {
	attempt := o.attempts[key]
	o.attempts[key] = attempt + 1
	if err := o.inj.PutError(key, attempt); err != nil {
		o.failures++
		return err
	}
	if old, ok := o.blobs[key]; ok {
		o.bytes -= int64(len(old))
	}
	o.blobs[key] = append([]byte(nil), data...)
	o.bytes += int64(len(data))
	o.puts++
	return nil
}

// PutBatch stores several blobs in one upload: the batch succeeds or
// fails atomically (one injected-fault roll, keyed by batchKey, covers
// the whole request), counts as a single put in the upload ledger, and
// each blob still lands under its own key. This is the wire-level
// amortization behind Config.UploadBatch.
func (o *ObjectStore) PutBatch(batchKey string, keys []string, blobs [][]byte) error {
	if len(keys) != len(blobs) {
		return fmt.Errorf("oss: PutBatch with %d keys, %d blobs", len(keys), len(blobs))
	}
	attempt := o.attempts[batchKey]
	o.attempts[batchKey] = attempt + 1
	if err := o.inj.PutError(batchKey, attempt); err != nil {
		o.failures++
		return err
	}
	for i, key := range keys {
		if old, ok := o.blobs[key]; ok {
			o.bytes -= int64(len(old))
		}
		o.blobs[key] = append([]byte(nil), blobs[i]...)
		o.bytes += int64(len(blobs[i]))
	}
	o.puts++
	return nil
}

// Get retrieves a blob.
func (o *ObjectStore) Get(key string) ([]byte, bool) {
	b, ok := o.blobs[key]
	return b, ok
}

// Delete removes a blob, reporting whether it existed.
func (o *ObjectStore) Delete(key string) bool {
	b, ok := o.blobs[key]
	if !ok {
		return false
	}
	o.bytes -= int64(len(b))
	delete(o.blobs, key)
	return true
}

// List returns all keys with the prefix, sorted.
func (o *ObjectStore) List(prefix string) []string {
	var keys []string
	for k := range o.blobs {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Bytes returns the stored volume.
func (o *ObjectStore) Bytes() int64 { return o.bytes }

// Puts returns the number of successful uploads.
func (o *ObjectStore) Puts() int64 { return o.puts }

// Failures returns the number of failed upload attempts.
func (o *ObjectStore) Failures() int64 { return o.failures }

// Row is one structured record in the processing store.
type Row struct {
	// App, Node and Session identify the source.
	App, Node, Session string
	// Key and Value are the datum (e.g. a function name and its
	// occurrence count).
	Key   string
	Value float64
}

// DataStore is the structured, queryable store decoded results land in
// (the ODPS stand-in of §4); engineers query it for analysis and
// reproduction. Insert is fault-aware under an attached injector, like
// ObjectStore.Put.
type DataStore struct {
	rows     []Row
	failures int64
	attempts map[string]int
	inj      *faults.Injector
}

// NewDataStore returns an empty store.
func NewDataStore() *DataStore { return &DataStore{attempts: make(map[string]int)} }

// UseFaults attaches a fault injector; nil detaches it.
func (d *DataStore) UseFaults(inj *faults.Injector) { d.inj = inj }

// Insert appends rows as one batch identified by batch (typically the
// session ID). With fault injection enabled the whole batch may fail
// transiently; no partial batch is ever stored.
func (d *DataStore) Insert(batch string, rows ...Row) error {
	attempt := d.attempts[batch]
	d.attempts[batch] = attempt + 1
	if err := d.inj.InsertError(batch, attempt); err != nil {
		d.failures++
		return err
	}
	d.rows = append(d.rows, rows...)
	return nil
}

// Len returns the row count.
func (d *DataStore) Len() int { return len(d.rows) }

// Failures returns the number of failed insert attempts.
func (d *DataStore) Failures() int64 { return d.failures }

// QueryApp returns all rows for an app, ordered by (session, key).
func (d *DataStore) QueryApp(app string) []Row {
	var out []Row
	for _, r := range d.rows {
		if r.App == app {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// AggregateApp sums Value by Key across an app's sessions.
func (d *DataStore) AggregateApp(app string) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range d.rows {
		if r.App == app {
			out[r.Key] += r.Value
		}
	}
	return out
}

// String summarizes the store.
func (d *DataStore) String() string {
	return fmt.Sprintf("datastore(%d rows)", len(d.rows))
}
