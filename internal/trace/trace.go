// Package trace defines the data model for one intra-service tracing
// session: the per-core packet streams, the five-tuple context-switch
// sidecar, the ground-truth recorder used to score accuracy, and a compact
// serialization for shipping sessions to the cluster's object store.
package trace

import (
	"exist/internal/binary"
	"exist/internal/kernel"
	"exist/internal/simtime"
)

// SpaceScale is the default slow-motion factor shared by accuracy
// experiments: execution materializes SpaceScale of the real branch rate,
// and buffer sizes are multiplied by SpaceScale, so occupancy ratios,
// overflow behaviour, and space results are preserved while a 0.5 s
// window stays simulable. Reported sizes are scaled back by 1/SpaceScale.
const SpaceScale = 1.0 / 1024

// ScaleBytes converts a configured real buffer size to its simulated size.
func ScaleBytes(realBytes int64, scale float64) int {
	v := int(float64(realBytes) * scale)
	if v < 256 {
		v = 256
	}
	return v
}

// UnscaleMB converts simulated bytes back to real megabytes.
func UnscaleMB(simBytes int64, scale float64) float64 {
	return float64(simBytes) / scale / (1 << 20)
}

// Event is one reconstructed (or ground-truth) control transfer,
// attributed to a thread. It is the unit of the accuracy comparison.
type Event struct {
	// TID is the executing thread.
	TID int32
	// Block is the block whose terminator transferred control.
	Block binary.BlockID
	// Target is the destination block.
	Target binary.BlockID
	// Kind is the terminator kind.
	Kind binary.TermKind
	// Taken is the direction for conditional events.
	Taken bool
}

// EventOf converts a walker branch event.
func EventOf(tid int32, ev binary.BranchEvent) Event {
	return Event{TID: tid, Block: ev.Block, Target: ev.Target, Kind: ev.Kind, Taken: ev.Taken}
}

// CoreTrace is the raw output of one core's tracer for a session.
type CoreTrace struct {
	// Core is the logical core ID.
	Core int
	// Data is the packet stream.
	Data []byte
	// Wrapped reports ring-mode overwrite (data starts mid-stream).
	Wrapped bool
	// Stopped reports a compulsory-drop stop.
	Stopped bool
	// DroppedBytes counts output lost after the stop.
	DroppedBytes int64
}

// Session is everything one tracing window produced on one node.
type Session struct {
	// ID identifies the session.
	ID string
	// Node names the node the session ran on.
	Node string
	// Workload names the traced application.
	Workload string
	// PID is the traced process.
	PID int32
	// Start and End bound the tracing window.
	Start, End simtime.Time
	// Scale is the space scale the session ran at.
	Scale float64
	// Cores holds the per-core packet streams.
	Cores []CoreTrace
	// Switches is the five-tuple sidecar.
	Switches kernel.SwitchLog
}

// TotalBytes returns the simulated packet bytes stored across cores.
func (s *Session) TotalBytes() int64 {
	var n int64
	for i := range s.Cores {
		n += int64(len(s.Cores[i].Data))
	}
	return n
}

// SpaceMB returns the session's real-scale memory footprint in MB,
// including the sidecar.
func (s *Session) SpaceMB() float64 {
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	return UnscaleMB(s.TotalBytes(), scale) + float64(s.Switches.SizeBytes())/(1<<20)
}

// Duration returns the window length.
func (s *Session) Duration() simtime.Duration { return s.End - s.Start }

// GroundTruth records the true branch stream of a traced process during a
// window, for scoring reconstructions. It is an omniscient observer — the
// real system has no equivalent; it exists to measure accuracy the way the
// paper does against exhaustive tracing.
type GroundTruth struct {
	// ByThread holds each thread's ordered event stream.
	ByThread map[int32][]Event
	// Start and End bound recording; events outside are ignored.
	Start, End simtime.Time
	// FuncEntries is the function occurrence histogram over the window.
	FuncEntries map[int32]int64

	prog *binary.Program
}

// NewGroundTruth returns a recorder for the given program and window.
func NewGroundTruth(prog *binary.Program, start, end simtime.Time) *GroundTruth {
	return &GroundTruth{
		ByThread:    make(map[int32][]Event),
		Start:       start,
		End:         end,
		FuncEntries: make(map[int32]int64),
		prog:        prog,
	}
}

// Record adds one branch event observed at the given time.
func (g *GroundTruth) Record(tid int32, now simtime.Time, ev binary.BranchEvent) {
	if now < g.Start || now >= g.End {
		return
	}
	g.ByThread[tid] = append(g.ByThread[tid], EventOf(tid, ev))
	// Function occurrences count indirect-call entries only — the decoder
	// applies the identical rule, so the histograms are comparable.
	// (Direct calls are silent in PT, and returns restarting the service
	// loop would swamp the histogram with the loop head.)
	if g.prog != nil && ev.Kind == binary.TermIndirectCall {
		if fn, ok := g.prog.EntryFuncOf(ev.Target); ok {
			g.FuncEntries[fn]++
		}
	}
}

// Total returns the number of recorded events.
func (g *GroundTruth) Total() int64 {
	var n int64
	for _, evs := range g.ByThread {
		n += int64(len(evs))
	}
	return n
}
