package trace

import (
	"testing"
	"testing/quick"

	"exist/internal/binary"
	"exist/internal/kernel"
	"exist/internal/simtime"
)

func TestScaleBytes(t *testing.T) {
	if got := ScaleBytes(128<<20, 1.0/1024); got != 128<<10 {
		t.Errorf("ScaleBytes(128MB, 1/1024) = %d, want %d", got, 128<<10)
	}
	if got := ScaleBytes(1, 1.0/1024); got != 256 {
		t.Errorf("tiny buffers must clamp to 256, got %d", got)
	}
}

func TestUnscaleMB(t *testing.T) {
	// 64 KiB simulated at 1/1024 is 64 MiB real.
	if got := UnscaleMB(64<<10, 1.0/1024); got != 64 {
		t.Errorf("UnscaleMB = %v, want 64", got)
	}
}

func TestSessionSpaceMB(t *testing.T) {
	s := &Session{
		Scale: 1.0 / 1024,
		Cores: []CoreTrace{
			{Core: 0, Data: make([]byte, 32<<10)},
			{Core: 1, Data: make([]byte, 32<<10)},
		},
	}
	if got := s.SpaceMB(); got != 64 {
		t.Errorf("SpaceMB = %v, want 64", got)
	}
	if s.TotalBytes() != 64<<10 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestGroundTruthWindow(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("gt", 1))
	g := NewGroundTruth(prog, 100, 200)
	ev := binary.BranchEvent{Block: 0, Target: 1, Kind: binary.TermCond, Taken: true}
	g.Record(1, 50, ev)  // before window
	g.Record(1, 150, ev) // inside
	g.Record(1, 200, ev) // at end (exclusive)
	if g.Total() != 1 {
		t.Fatalf("recorded %d events, want 1", g.Total())
	}
	if len(g.ByThread[1]) != 1 {
		t.Fatalf("thread stream wrong: %v", g.ByThread)
	}
}

func TestGroundTruthFuncEntries(t *testing.T) {
	prog := binary.Synthesize(binary.DefaultSpec("gt", 2))
	// Find an indirect-call block.
	var callBlock binary.BlockID = -1
	for i := range prog.Blocks {
		if prog.Blocks[i].Term == binary.TermIndirectCall {
			callBlock = binary.BlockID(i)
			break
		}
	}
	if callBlock < 0 {
		t.Skip("no indirect call in this program")
	}
	target := prog.Blocks[callBlock].Targets[0]
	g := NewGroundTruth(prog, 0, 1000)
	g.Record(1, 10, binary.BranchEvent{Block: callBlock, Target: target, Kind: binary.TermIndirectCall})
	fn := prog.Blocks[target].Func
	if g.FuncEntries[fn] != 1 {
		t.Fatalf("func entry histogram = %v", g.FuncEntries)
	}
}

func TestSessionMarshalRoundTrip(t *testing.T) {
	s := &Session{
		ID:       "sess-1",
		Node:     "node-7",
		Workload: "mysql",
		PID:      42,
		Start:    1000,
		End:      501000,
		Scale:    1.0 / 1024,
		Cores: []CoreTrace{
			{Core: 0, Data: []byte{1, 2, 3}, Stopped: true, DroppedBytes: 99},
			{Core: 3, Data: []byte{}, Wrapped: true},
		},
	}
	s.Switches.Add(kernel.SwitchRecord{TS: 1500, CPU: 0, PID: 42, TID: 7, Op: kernel.OpIn})
	got, err := UnmarshalSession(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || got.Node != s.Node || got.Workload != s.Workload ||
		got.PID != s.PID || got.Start != s.Start || got.End != s.End || got.Scale != s.Scale {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Cores) != 2 || got.Cores[0].Core != 0 || !got.Cores[0].Stopped ||
		got.Cores[0].DroppedBytes != 99 || !got.Cores[1].Wrapped {
		t.Fatalf("cores mismatch: %+v", got.Cores)
	}
	if string(got.Cores[0].Data) != string(s.Cores[0].Data) {
		t.Fatal("core data mismatch")
	}
	if len(got.Switches.Records) != 1 || got.Switches.Records[0].TID != 7 {
		t.Fatalf("switch log mismatch: %+v", got.Switches.Records)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSession([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := UnmarshalSession(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Truncated valid prefixes: every proper prefix must fail (a v2
	// session is only complete once its end block arrives).
	s := &Session{ID: "x", Cores: []CoreTrace{{Core: 0, Data: make([]byte, 100)}}}
	b := s.Marshal()
	for _, cut := range []int{4, len(b) / 2, len(b) - 1} {
		if _, err := UnmarshalSession(b[:cut]); err == nil {
			t.Fatalf("expected error for session truncated to %d/%d", cut, len(b))
		}
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(id string, pid int32, start, end int64, data []byte) bool {
		s := &Session{ID: id, PID: pid, Start: simtime.Time(start), End: simtime.Time(end),
			Scale: 0.5, Cores: []CoreTrace{{Core: 1, Data: data}}}
		got, err := UnmarshalSession(s.Marshal())
		if err != nil {
			return false
		}
		if got.ID != id || got.PID != pid || len(got.Cores) != 1 {
			return false
		}
		return string(got.Cores[0].Data) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationAndEventOf(t *testing.T) {
	s := &Session{Start: 100, End: 600}
	if s.Duration() != 500 {
		t.Fatalf("Duration = %v", s.Duration())
	}
	ev := EventOf(5, binary.BranchEvent{Block: 1, Target: 2, Kind: binary.TermCond, Taken: true})
	if ev.TID != 5 || ev.Block != 1 || ev.Target != 2 || !ev.Taken {
		t.Fatalf("EventOf = %+v", ev)
	}
}

// Property: UnmarshalSession must reject or cleanly parse arbitrary bytes,
// never panic — sessions arrive from the network/object store.
func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	// Deterministic pseudo-random corpus.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state)
	}
	for trial := 0; trial < 300; trial++ {
		n := int(next()) * 4
		data := make([]byte, n)
		for i := range data {
			data[i] = next()
		}
		_, _ = UnmarshalSession(data) // must not panic
	}
	// Also: valid header with hostile length fields.
	s := &Session{ID: "x", Cores: []CoreTrace{{Core: 0, Data: []byte{1, 2, 3}}}}
	b := s.Marshal()
	for i := 4; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] = 0xff
		_, _ = UnmarshalSession(mut) // must not panic or over-allocate
	}
}
