package trace

import (
	"fmt"
	"math"

	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/wire"
)

// Wire format: EXIST's data path uploads raw sessions to the object store
// (OSS) instead of writing node-local files (§4 of the paper); the decoder
// later fetches them together with the program binary.
//
// Two formats exist on the wire. The legacy v1 layout is a flat tagged
// little-endian dump (magic "EXIS"); the current v2 layout (magic "EXI2",
// serialize_v2.go) adds varint/delta encoding, a string dictionary, and
// per-core block framing. Marshal writes v2; UnmarshalSession dispatches
// on the magic, so v1 sessions written by older builds still decode.

const (
	sessionMagicV1 = 0x45584953 // "EXIS"
	sessionMagicV2 = 0x45584932 // "EXI2"
)

// V1Size returns the exact encoded size of the session in the v1 layout.
// The cluster ledger uses it to report v1-equivalent volume next to the
// bytes actually shipped, and MarshalV1 uses it to allocate exactly once.
func V1Size(s *Session) int {
	n := 4 // magic
	n += 4 + len(s.ID)
	n += 4 + len(s.Node)
	n += 4 + len(s.Workload)
	n += 4 + 8 + 8 + 8 + 4 // pid, start, end, scale, core count
	for i := range s.Cores {
		n += 4 + 1 + 8 + 4 + len(s.Cores[i].Data)
	}
	n += 4 + len(s.Switches.Records)*kernel.RecordSize
	return n
}

// MarshalV1 serializes the session in the legacy v1 layout.
func (s *Session) MarshalV1() []byte {
	w := make([]byte, 0, V1Size(s))
	w = wire.AppendU32(w, sessionMagicV1)
	w = appendV1String(w, s.ID)
	w = appendV1String(w, s.Node)
	w = appendV1String(w, s.Workload)
	w = wire.AppendU32(w, uint32(s.PID))
	w = wire.AppendU64(w, uint64(s.Start))
	w = wire.AppendU64(w, uint64(s.End))
	w = wire.AppendU64(w, math.Float64bits(s.Scale))
	w = wire.AppendU32(w, uint32(len(s.Cores)))
	for i := range s.Cores {
		c := &s.Cores[i]
		w = wire.AppendU32(w, uint32(c.Core))
		flags := uint8(0)
		if c.Wrapped {
			flags |= 1
		}
		if c.Stopped {
			flags |= 2
		}
		w = append(w, flags)
		w = wire.AppendU64(w, uint64(c.DroppedBytes))
		w = wire.AppendU32(w, uint32(len(c.Data)))
		w = append(w, c.Data...)
	}
	w = wire.AppendU32(w, uint32(len(s.Switches.Records)*kernel.RecordSize))
	for _, rec := range s.Switches.Records {
		w = rec.AppendBinary(w)
	}
	return w
}

func appendV1String(w []byte, s string) []byte {
	w = wire.AppendU32(w, uint32(len(s)))
	return append(w, s...)
}

func getV1String(r *wire.Reader) string {
	n := r.U32()
	if int(n) > r.Len() {
		return ""
	}
	return r.String(int(n))
}

// UnmarshalSession parses a serialized session of either format. Slices
// in the result may alias data; callers that mutate the session after
// unmarshaling should copy first (the object store hands out private
// copies, so the cluster pipeline never needs to).
func UnmarshalSession(data []byte) (*Session, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("trace: session too short (%d bytes)", len(data))
	}
	switch wire.U32(data) {
	case sessionMagicV1:
		return unmarshalV1(data)
	case sessionMagicV2:
		return unmarshalV2(data)
	default:
		return nil, fmt.Errorf("trace: bad session magic %#x", wire.U32(data))
	}
}

// unmarshalV1 parses the legacy flat layout.
func unmarshalV1(data []byte) (*Session, error) {
	r := wire.NewReader(data)
	r.U32() // magic, already checked
	s := &Session{}
	s.ID = getV1String(r)
	s.Node = getV1String(r)
	s.Workload = getV1String(r)
	s.PID = int32(r.U32())
	s.Start = simtime.Time(r.U64())
	s.End = simtime.Time(r.U64())
	s.Scale = math.Float64frombits(r.U64())
	nCores := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if int(nCores) > 1<<16 {
		return nil, fmt.Errorf("trace: implausible core count %d", nCores)
	}
	for i := 0; i < int(nCores); i++ {
		core := int32(r.U32())
		flags := r.U8()
		dropped := int64(r.U64())
		n := r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if int(n) > r.Len() {
			return nil, fmt.Errorf("trace: core data length %d exceeds remaining %d", n, r.Len())
		}
		s.Cores = append(s.Cores, CoreTrace{
			Core:         int(core),
			Data:         r.Bytes(int(n)),
			Wrapped:      flags&1 != 0,
			Stopped:      flags&2 != 0,
			DroppedBytes: dropped,
		})
	}
	swLen := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if int(swLen) > r.Len() {
		return nil, fmt.Errorf("trace: switch log length %d exceeds remaining %d", swLen, r.Len())
	}
	log, err := kernel.DecodeSwitchLog(r.Bytes(int(swLen)))
	if err != nil {
		return nil, err
	}
	s.Switches = *log
	return s, nil
}
