package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"exist/internal/kernel"
	"exist/internal/simtime"
)

// Wire format: EXIST's data path uploads raw sessions to the object store
// (OSS) instead of writing node-local files (§4 of the paper); the decoder
// later fetches them together with the program binary. The format is a
// simple tagged little-endian layout with a magic header.

const sessionMagic = 0x45584953 // "EXIS"

// putString appends a length-prefixed string.
func putString(w *bytes.Buffer, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	w.Write(n[:])
	w.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if int(n) > r.Len() {
		return "", fmt.Errorf("trace: string length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Marshal serializes the session for upload.
func (s *Session) Marshal() []byte {
	var w bytes.Buffer
	binary.Write(&w, binary.LittleEndian, uint32(sessionMagic))
	putString(&w, s.ID)
	putString(&w, s.Node)
	putString(&w, s.Workload)
	binary.Write(&w, binary.LittleEndian, int32(s.PID))
	binary.Write(&w, binary.LittleEndian, int64(s.Start))
	binary.Write(&w, binary.LittleEndian, int64(s.End))
	binary.Write(&w, binary.LittleEndian, math.Float64bits(s.Scale))
	binary.Write(&w, binary.LittleEndian, uint32(len(s.Cores)))
	for i := range s.Cores {
		c := &s.Cores[i]
		binary.Write(&w, binary.LittleEndian, int32(c.Core))
		flags := uint8(0)
		if c.Wrapped {
			flags |= 1
		}
		if c.Stopped {
			flags |= 2
		}
		w.WriteByte(flags)
		binary.Write(&w, binary.LittleEndian, c.DroppedBytes)
		binary.Write(&w, binary.LittleEndian, uint32(len(c.Data)))
		w.Write(c.Data)
	}
	sw := s.Switches.Bytes()
	binary.Write(&w, binary.LittleEndian, uint32(len(sw)))
	w.Write(sw)
	return w.Bytes()
}

// UnmarshalSession parses a serialized session.
func UnmarshalSession(data []byte) (*Session, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != sessionMagic {
		return nil, fmt.Errorf("trace: bad session magic %#x", magic)
	}
	s := &Session{}
	var err error
	if s.ID, err = getString(r); err != nil {
		return nil, err
	}
	if s.Node, err = getString(r); err != nil {
		return nil, err
	}
	if s.Workload, err = getString(r); err != nil {
		return nil, err
	}
	var pid int32
	var start, end int64
	var scaleBits uint64
	var nCores uint32
	if err := binary.Read(r, binary.LittleEndian, &pid); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &end); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &nCores); err != nil {
		return nil, err
	}
	s.PID = pid
	s.Start, s.End = simtime.Time(start), simtime.Time(end)
	s.Scale = math.Float64frombits(scaleBits)
	if int(nCores) > 1<<16 {
		return nil, fmt.Errorf("trace: implausible core count %d", nCores)
	}
	for i := 0; i < int(nCores); i++ {
		var core int32
		if err := binary.Read(r, binary.LittleEndian, &core); err != nil {
			return nil, err
		}
		flags, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		var dropped int64
		if err := binary.Read(r, binary.LittleEndian, &dropped); err != nil {
			return nil, err
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if int(n) > r.Len() {
			return nil, fmt.Errorf("trace: core data length %d exceeds remaining %d", n, r.Len())
		}
		data := make([]byte, n)
		if _, err := r.Read(data); err != nil {
			return nil, err
		}
		s.Cores = append(s.Cores, CoreTrace{
			Core:         int(core),
			Data:         data,
			Wrapped:      flags&1 != 0,
			Stopped:      flags&2 != 0,
			DroppedBytes: dropped,
		})
	}
	var swLen uint32
	if err := binary.Read(r, binary.LittleEndian, &swLen); err != nil {
		return nil, err
	}
	if int(swLen) > r.Len() {
		return nil, fmt.Errorf("trace: switch log length %d exceeds remaining %d", swLen, r.Len())
	}
	sw := make([]byte, swLen)
	if _, err := r.Read(sw); err != nil && swLen > 0 {
		return nil, err
	}
	log, err := kernel.DecodeSwitchLog(sw)
	if err != nil {
		return nil, err
	}
	s.Switches = *log
	return s, nil
}
