package trace

import (
	"testing"

	"exist/internal/kernel"
	"exist/internal/simtime"
)

// FuzzUnmarshalSession throws arbitrary bytes at the session parser.
// Both wire formats must reject malformed input with an error — never a
// panic — and must not size allocations from unvalidated length fields
// (every make is capped by the remaining reader length, so a lying
// length can at worst cost a small multiple of the input size).
//
// Run with: go test -fuzz=FuzzUnmarshalSession ./internal/trace
// The checked-in corpus under testdata/fuzz seeds valid v1 and v2 blobs
// so mutation starts from deep in the format, plus hand-picked hostile
// shapes (truncations, lying lengths, huge counts).
func FuzzUnmarshalSession(f *testing.F) {
	s := &Session{
		ID: "fuzz", Node: "n0", Workload: "w", PID: 7,
		Start: 100, End: 200, Scale: 0.5,
		Cores: []CoreTrace{
			{Core: 0, Data: []byte{0x00, 0x19, 1, 2, 3, 4, 5, 6, 7}, Wrapped: true},
			{Core: 1, Data: nil, Stopped: true, DroppedBytes: 3},
		},
		Switches: kernel.SwitchLog{Records: []kernel.SwitchRecord{
			{TS: simtime.Time(150), CPU: 0, PID: 7, TID: 8, Op: kernel.OpIn},
			{TS: simtime.Time(180), CPU: 1, PID: 7, TID: 8, Op: kernel.OpOut},
		}},
	}
	f.Add(s.Marshal())
	f.Add(s.MarshalMode(EncodeRaw))
	f.Add(s.MarshalV1())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x49, 0x58, 0x45}) // v1 magic alone
	f.Add([]byte{0x32, 0x49, 0x58, 0x45}) // v2 magic alone

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalSession(data)
		if err == nil && got == nil {
			t.Fatal("nil session with nil error")
		}
		if got != nil && err == nil {
			// A session that decodes must re-encode: the writer must not
			// be panicable from parser-accepted state.
			_ = got.Marshal()
			_ = got.MarshalV1()
		}
	})
}
