package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
)

// testSession builds a session with PT-shaped core payloads and a
// realistic switch log.
func testSession(seed int64) *Session {
	rng := rand.New(rand.NewSource(seed))
	s := &Session{
		ID:       "sess-roundtrip-1",
		Node:     "node-03",
		Workload: "frontend",
		PID:      4242,
		Start:    simtime.Time(1_000_000),
		End:      simtime.Time(5_000_000),
		Scale:    0.125,
	}
	// Branch targets repeat heavily in real traces (a service loops over
	// the same call sites); mirror that so the dictionary sees hits.
	targets := make([]uint64, 64)
	for i := range targets {
		targets[i] = 0x400000 + uint64(rng.Intn(1<<20))
	}
	for core := 0; core < 3; core++ {
		var data []byte
		data = ipt.AppendPSB(data)
		data = ipt.AppendTSC(data, uint64(1000+core))
		data = ipt.AppendPSBEND(data)
		for i := 0; i < 500; i++ {
			data = ipt.AppendTNT(data, uint8(rng.Intn(8)), 3)
			data = ipt.AppendCYC(data, uint32(rng.Intn(64)))
			data = ipt.AppendTIP(data, ipt.PktTIP, targets[rng.Intn(len(targets))])
		}
		s.Cores = append(s.Cores, CoreTrace{
			Core: core, Data: data,
			Wrapped: core == 1, Stopped: core == 2,
			DroppedBytes: int64(core * 17),
		})
	}
	ts := simtime.Time(1_000_000)
	for i := 0; i < 64; i++ {
		ts += simtime.Time(rng.Intn(50_000))
		op := kernel.OpIn
		if i%2 == 1 {
			op = kernel.OpOut
		}
		s.Switches.Records = append(s.Switches.Records, kernel.SwitchRecord{
			TS: ts, CPU: int32(i % 3), PID: 4242, TID: int32(4242 + i%4), Op: op,
		})
	}
	return s
}

func sessionsEqual(t *testing.T, want, got *Session) {
	t.Helper()
	if want.ID != got.ID || want.Node != got.Node || want.Workload != got.Workload ||
		want.PID != got.PID || want.Start != got.Start || want.End != got.End ||
		want.Scale != got.Scale {
		t.Fatalf("header mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if len(want.Cores) != len(got.Cores) {
		t.Fatalf("core count: want %d got %d", len(want.Cores), len(got.Cores))
	}
	for i := range want.Cores {
		w, g := &want.Cores[i], &got.Cores[i]
		if w.Core != g.Core || w.Wrapped != g.Wrapped || w.Stopped != g.Stopped ||
			w.DroppedBytes != g.DroppedBytes {
			t.Fatalf("core %d meta mismatch: want %+v got %+v", i, w, g)
		}
		if !bytes.Equal(w.Data, g.Data) {
			t.Fatalf("core %d data mismatch (%d vs %d bytes)", i, len(w.Data), len(g.Data))
		}
	}
	if !reflect.DeepEqual(want.Switches.Records, got.Switches.Records) {
		t.Fatalf("switch log mismatch")
	}
}

func TestV2RoundTripPacked(t *testing.T) {
	s := testSession(1)
	blob := s.Marshal()
	got, err := UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	sessionsEqual(t, s, got)
	if v1 := V1Size(s); len(blob)*2 >= v1 {
		t.Errorf("packed v2 blob %d not under half of v1 %d", len(blob), v1)
	}
}

func TestV2RoundTripRaw(t *testing.T) {
	s := testSession(2)
	blob := s.MarshalMode(EncodeRaw)
	got, err := UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	sessionsEqual(t, s, got)
}

func TestV2RawUnmarshalAliasesBlob(t *testing.T) {
	s := testSession(3)
	blob := s.MarshalMode(EncodeRaw)
	got, err := UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy contract: core payloads alias the blob.
	idx := bytes.Index(blob, s.Cores[0].Data[:16])
	if idx < 0 {
		t.Fatal("raw payload not found in blob")
	}
	blob[idx] ^= 0xff
	if got.Cores[0].Data[0] == s.Cores[0].Data[0] {
		t.Fatal("raw unmarshal copied the payload instead of aliasing")
	}
}

func TestV1RoundTrip(t *testing.T) {
	s := testSession(4)
	blob := s.MarshalV1()
	if len(blob) != V1Size(s) {
		t.Fatalf("V1Size %d != len(MarshalV1) %d", V1Size(s), len(blob))
	}
	got, err := UnmarshalSession(blob)
	if err != nil {
		t.Fatal(err)
	}
	sessionsEqual(t, s, got)
}

func TestV1EmptySession(t *testing.T) {
	s := &Session{}
	got, err := UnmarshalSession(s.MarshalV1())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cores) != 0 || len(got.Switches.Records) != 0 {
		t.Fatalf("empty session decoded as %+v", got)
	}
	got2, err := UnmarshalSession(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Cores) != 0 {
		t.Fatalf("empty v2 session decoded as %+v", got2)
	}
}

func TestEncodeToMatchesMarshal(t *testing.T) {
	s := testSession(5)
	for _, mode := range []EncodeMode{EncodePacked, EncodeRaw} {
		var buf bytes.Buffer
		if err := s.EncodeTo(&buf, mode); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), s.MarshalMode(mode)) {
			t.Fatalf("mode %d: EncodeTo and MarshalMode disagree", mode)
		}
	}
}

func TestDecodeSessionFromStream(t *testing.T) {
	s := testSession(6)
	for _, blob := range [][]byte{s.Marshal(), s.MarshalMode(EncodeRaw), s.MarshalV1()} {
		got, err := DecodeSessionFrom(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		sessionsEqual(t, s, got)
	}
	// One byte at a time: block framing must not depend on read sizes.
	got, err := DecodeSessionFrom(&oneByteReader{data: s.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	sessionsEqual(t, s, got)
}

// oneByteReader delivers one byte per Read call.
type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

func TestV2GarbageOps(t *testing.T) {
	s := testSession(7)
	blob := s.Marshal()
	// Flip every byte one at a time; must never panic, and if it decodes
	// it must not over-allocate (implicitly checked by not OOMing).
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		_, _ = UnmarshalSession(mut)
	}
}

func TestV2SwitchOpsOutOfRange(t *testing.T) {
	s := &Session{ID: "x"}
	s.Switches.Records = []kernel.SwitchRecord{
		{TS: 1, CPU: 0, PID: 1, TID: 2, Op: kernel.SwitchOp(7)},
		{TS: 2, CPU: 1, PID: 1, TID: 3, Op: kernel.OpIn},
	}
	got, err := UnmarshalSession(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Switches.Records, s.Switches.Records) {
		t.Fatalf("wide-op switch log mismatch: %+v", got.Switches.Records)
	}
}
