package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/simtime"
	"exist/internal/wire"
)

// v2 session layout (magic "EXI2"): a sequence of self-framed blocks
//
//	[tag u8][len uvarint][body ...]
//
// terminated by an end block (tag 0, len 0). Unknown tags are skipped by
// their length, so readers tolerate future additions. Block bodies:
//
//	tag 1, header (first block):
//	    dictN uvarint, then dictN strings (uvarint len + bytes);
//	    ID/Node/Workload as uvarint dictionary indexes; pid zigzag;
//	    start zigzag; end as zigzag delta from start; scale as fixed
//	    f64 bits; core count uvarint.
//	tag 2, core (one per core, in order):
//	    core id as zigzag delta from the previous core id; flags u8
//	    (1 wrapped, 2 stopped); dropped bytes zigzag; encoding u8
//	    (0 raw, 1 packed); if packed, the unpacked length uvarint;
//	    payload is the rest of the body.
//	tag 3, switches:
//	    record count uvarint; op mode u8 (0 bitpacked, 1 raw); then
//	    four zigzag-delta columns (TS, CPU, PID, TID) and the op
//	    column, one bit per record when every op fits.
//
// The columnar split matters: within a column consecutive values are
// near each other (timestamps increase, CPU/PID/TID repeat), so the
// deltas stay in the 1-byte varint range. Core payloads default to the
// packed packet codec (ipt.PackStream) for wire volume; raw mode keeps
// the bytes verbatim for marshal-throughput-critical paths and decodes
// with zero copies.

// EncodeMode selects how v2 core payloads are carried.
type EncodeMode int

const (
	// EncodePacked runs core payloads through the packet codec —
	// smallest wire size, the default for uploads.
	EncodePacked EncodeMode = iota
	// EncodeRaw carries core payloads verbatim — fastest to encode and
	// to decode (payloads alias the blob on read).
	EncodeRaw
)

const (
	blockEnd      = 0
	blockHeader   = 1
	blockCore     = 2
	blockSwitches = 3
)

const (
	coreEncRaw    = 0
	coreEncPacked = 1
)

// Marshal serializes the session in the v2 format with packed core
// payloads. Use MarshalMode(EncodeRaw) when encode speed matters more
// than wire size, and MarshalV1 for the legacy layout.
func (s *Session) Marshal() []byte {
	return s.MarshalMode(EncodePacked)
}

// MarshalMode serializes the session in the v2 format with the given
// payload mode.
func (s *Session) MarshalMode(mode EncodeMode) []byte {
	// Raw mode never exceeds v1 by more than the small per-block framing;
	// packed mode is normally far below. Either way this cap makes the
	// common case a single allocation.
	capHint := V1Size(s) + 128 + 32*len(s.Cores) + 4*len(s.Switches.Records)
	out := make([]byte, 0, capHint)
	s.encodeV2(mode, func(part []byte) error {
		out = append(out, part...)
		return nil
	})
	return out
}

// EncodeTo streams the v2 encoding to w without building the whole
// session in memory: each block is written as soon as it is produced,
// and raw core payloads are written straight from the session's buffers.
func (s *Session) EncodeTo(w io.Writer, mode EncodeMode) error {
	return s.encodeV2(mode, func(part []byte) error {
		_, err := w.Write(part)
		return err
	})
}

// encodeV2 drives the block writer; emit is called with each wire
// fragment in order. Fragments may alias scratch buffers that are
// reused, so emit must consume (write/copy) before returning.
func (s *Session) encodeV2(mode EncodeMode, emit func([]byte) error) error {
	var scratch []byte // reused for every block body except core payloads

	emitBlock := func(tag byte, body ...[]byte) error {
		n := 0
		for _, b := range body {
			n += len(b)
		}
		frame := [11]byte{tag}
		hdr := wire.AppendUvarint(frame[:1], uint64(n))
		if err := emit(hdr); err != nil {
			return err
		}
		for _, b := range body {
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	}

	if err := emit(wire.AppendU32(scratch[:0], sessionMagicV2)); err != nil {
		return err
	}

	// Header block with the string dictionary. ID/Node/Workload often
	// share text across sessions of one workload; within one session the
	// dictionary mostly removes duplicate strings and fixed-width length
	// prefixes.
	scratch = scratch[:0]
	dict := make([]string, 0, 3)
	idx := func(str string) uint64 {
		for i, d := range dict {
			if d == str {
				return uint64(i)
			}
		}
		dict = append(dict, str)
		return uint64(len(dict) - 1)
	}
	iID, iNode, iWl := idx(s.ID), idx(s.Node), idx(s.Workload)
	scratch = wire.AppendUvarint(scratch, uint64(len(dict)))
	for _, d := range dict {
		scratch = wire.AppendUvarint(scratch, uint64(len(d)))
		scratch = append(scratch, d...)
	}
	scratch = wire.AppendUvarint(scratch, iID)
	scratch = wire.AppendUvarint(scratch, iNode)
	scratch = wire.AppendUvarint(scratch, iWl)
	scratch = wire.AppendZigzag(scratch, int64(s.PID))
	scratch = wire.AppendZigzag(scratch, int64(s.Start))
	scratch = wire.AppendZigzag(scratch, int64(s.End)-int64(s.Start))
	scratch = wire.AppendU64(scratch, math.Float64bits(s.Scale))
	scratch = wire.AppendUvarint(scratch, uint64(len(s.Cores)))
	if err := emitBlock(blockHeader, scratch); err != nil {
		return err
	}

	// Core blocks. In packed mode the codec output lives in a scratch
	// buffer reused across cores, so streaming holds at most one core's
	// packed payload at a time.
	var packBuf []byte
	prevCore := int64(0)
	for i := range s.Cores {
		c := &s.Cores[i]
		scratch = wire.AppendZigzag(scratch[:0], int64(c.Core)-prevCore)
		prevCore = int64(c.Core)
		flags := byte(0)
		if c.Wrapped {
			flags |= 1
		}
		if c.Stopped {
			flags |= 2
		}
		scratch = append(scratch, flags)
		scratch = wire.AppendZigzag(scratch, c.DroppedBytes)
		payload := c.Data
		if mode == EncodePacked {
			packBuf = ipt.PackStream(packBuf[:0], c.Data)
			scratch = append(scratch, coreEncPacked)
			scratch = wire.AppendUvarint(scratch, uint64(len(c.Data)))
			payload = packBuf
		} else {
			scratch = append(scratch, coreEncRaw)
		}
		if err := emitBlock(blockCore, scratch, payload); err != nil {
			return err
		}
	}

	// Switch log, columnar.
	recs := s.Switches.Records
	if len(recs) > 0 {
		scratch = wire.AppendUvarint(scratch[:0], uint64(len(recs)))
		opMode := byte(0)
		for _, rec := range recs {
			if rec.Op > 1 {
				opMode = 1
				break
			}
		}
		scratch = append(scratch, opMode)
		prev := int64(0)
		for _, rec := range recs {
			scratch = wire.AppendZigzag(scratch, int64(rec.TS)-prev)
			prev = int64(rec.TS)
		}
		prev = 0
		for _, rec := range recs {
			scratch = wire.AppendZigzag(scratch, int64(rec.CPU)-prev)
			prev = int64(rec.CPU)
		}
		prev = 0
		for _, rec := range recs {
			scratch = wire.AppendZigzag(scratch, int64(rec.PID)-prev)
			prev = int64(rec.PID)
		}
		prev = 0
		for _, rec := range recs {
			scratch = wire.AppendZigzag(scratch, int64(rec.TID)-prev)
			prev = int64(rec.TID)
		}
		if opMode == 0 {
			var acc byte
			for i, rec := range recs {
				acc |= byte(rec.Op) << (i & 7)
				if i&7 == 7 {
					scratch = append(scratch, acc)
					acc = 0
				}
			}
			if len(recs)&7 != 0 {
				scratch = append(scratch, acc)
			}
		} else {
			for _, rec := range recs {
				scratch = append(scratch, byte(rec.Op))
			}
		}
		if err := emitBlock(blockSwitches, scratch); err != nil {
			return err
		}
	}

	return emitBlock(blockEnd)
}

// unmarshalV2 parses a v2 blob. Raw core payloads alias data.
func unmarshalV2(data []byte) (*Session, error) {
	r := wire.NewReader(data)
	r.U32() // magic, already checked
	s := &Session{}
	sawHeader := false
	coreBlocks := 0
	for {
		tag := r.U8()
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if tag == blockEnd {
			if n != 0 {
				return nil, fmt.Errorf("trace: v2 end block with length %d", n)
			}
			if !sawHeader {
				return nil, fmt.Errorf("trace: v2 session missing header block")
			}
			return s, nil
		}
		body := r.Bytes(int(n))
		if err := r.Err(); err != nil {
			return nil, err
		}
		switch tag {
		case blockHeader:
			if sawHeader {
				return nil, fmt.Errorf("trace: duplicate v2 header block")
			}
			sawHeader = true
			if err := parseV2Header(s, body); err != nil {
				return nil, err
			}
		case blockCore:
			if !sawHeader {
				return nil, fmt.Errorf("trace: v2 core block before header")
			}
			if coreBlocks >= cap(s.Cores) {
				return nil, fmt.Errorf("trace: more core blocks than declared %d", cap(s.Cores))
			}
			prev := int64(0)
			if coreBlocks > 0 {
				prev = int64(s.Cores[coreBlocks-1].Core)
			}
			ct, err := parseV2Core(body, prev)
			if err != nil {
				return nil, err
			}
			s.Cores = append(s.Cores, ct)
			coreBlocks++
		case blockSwitches:
			log, err := parseV2Switches(body)
			if err != nil {
				return nil, err
			}
			s.Switches = *log
		default:
			// Unknown block: skipped (already consumed by Bytes).
		}
	}
}

// parseV2Header fills the session identity fields and reserves (but does
// not populate) the core slice, capping the reservation by what the
// remaining input could plausibly hold.
func parseV2Header(s *Session, body []byte) error {
	r := wire.NewReader(body)
	dictN := r.Uvarint()
	if r.Err() == nil && dictN > uint64(r.Len()) {
		return fmt.Errorf("trace: v2 dictionary count %d exceeds remaining %d", dictN, r.Len())
	}
	if err := r.Err(); err != nil {
		return err
	}
	dict := make([]string, 0, dictN)
	for i := uint64(0); i < dictN; i++ {
		n := r.Uvarint()
		if r.Err() == nil && n > uint64(r.Len()) {
			return fmt.Errorf("trace: v2 dictionary string %d exceeds remaining %d", n, r.Len())
		}
		dict = append(dict, r.String(int(n)))
		if err := r.Err(); err != nil {
			return err
		}
	}
	get := func(idx uint64) (string, error) {
		if idx >= uint64(len(dict)) {
			return "", fmt.Errorf("trace: v2 string index %d beyond dictionary %d", idx, len(dict))
		}
		return dict[idx], nil
	}
	var err error
	if s.ID, err = get(r.Uvarint()); err != nil {
		return err
	}
	if s.Node, err = get(r.Uvarint()); err != nil {
		return err
	}
	if s.Workload, err = get(r.Uvarint()); err != nil {
		return err
	}
	s.PID = int32(r.Zigzag())
	start := r.Zigzag()
	s.Start = simtime.Time(start)
	s.End = simtime.Time(start + r.Zigzag())
	s.Scale = math.Float64frombits(r.U64())
	nCores := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nCores > 1<<16 {
		return fmt.Errorf("trace: implausible core count %d", nCores)
	}
	s.Cores = make([]CoreTrace, 0, nCores)
	return nil
}

// parseV2Core decodes one core block. Raw payloads alias body.
func parseV2Core(body []byte, prevCore int64) (CoreTrace, error) {
	r := wire.NewReader(body)
	var ct CoreTrace
	ct.Core = int(prevCore + r.Zigzag())
	flags := r.U8()
	ct.Wrapped = flags&1 != 0
	ct.Stopped = flags&2 != 0
	ct.DroppedBytes = r.Zigzag()
	enc := r.U8()
	switch enc {
	case coreEncRaw:
		ct.Data = r.Bytes(r.Len())
	case coreEncPacked:
		rawLen := r.Uvarint()
		if err := r.Err(); err != nil {
			return ct, err
		}
		if rawLen > ipt.MaxUnpackedCoreBytes {
			return ct, fmt.Errorf("trace: v2 core declares %d unpacked bytes", rawLen)
		}
		packed := r.Bytes(r.Len())
		// Start from a cap derived from the actual input, not the
		// declared length — a lying length field cannot force a huge
		// allocation up front; growth is bounded by the codec's exact
		// output check.
		capHint := int(rawLen)
		if limit := 32 * (len(packed) + 64); capHint > limit {
			capHint = limit
		}
		data, err := ipt.UnpackStream(make([]byte, 0, capHint), packed, int(rawLen))
		if err != nil {
			return ct, err
		}
		ct.Data = data
	default:
		return ct, fmt.Errorf("trace: unknown v2 core encoding %d", enc)
	}
	return ct, r.Err()
}

// parseV2Switches decodes the columnar switch log.
func parseV2Switches(body []byte) (*kernel.SwitchLog, error) {
	r := wire.NewReader(body)
	count := r.Uvarint()
	opMode := r.U8()
	if r.Err() == nil && count > uint64(r.Len()) {
		// Each record takes at least four column bytes plus op bits, so
		// the count can never exceed the remaining body length.
		return nil, fmt.Errorf("trace: v2 switch count %d exceeds remaining %d", count, r.Len())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	recs := make([]kernel.SwitchRecord, count)
	prev := int64(0)
	for i := range recs {
		prev += r.Zigzag()
		recs[i].TS = simtime.Time(prev)
	}
	prev = 0
	for i := range recs {
		prev += r.Zigzag()
		recs[i].CPU = int32(prev)
	}
	prev = 0
	for i := range recs {
		prev += r.Zigzag()
		recs[i].PID = int32(prev)
	}
	prev = 0
	for i := range recs {
		prev += r.Zigzag()
		recs[i].TID = int32(prev)
	}
	switch opMode {
	case 0:
		var acc byte
		for i := range recs {
			if i&7 == 0 {
				acc = r.U8()
			}
			recs[i].Op = kernel.SwitchOp(acc >> (i & 7) & 1)
		}
	case 1:
		for i := range recs {
			recs[i].Op = kernel.SwitchOp(r.U8())
		}
	default:
		return nil, fmt.Errorf("trace: unknown v2 switch op mode %d", opMode)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &kernel.SwitchLog{Records: recs}, nil
}

// DecodeSessionFrom reads one serialized session from r, block by block
// for v2 streams (nothing forces the whole blob into one contiguous
// read); legacy v1 streams are slurped whole since v1 has no framing.
func DecodeSessionFrom(rd io.Reader) (*Session, error) {
	br := bufio.NewReader(rd)
	var magicBuf [4]byte
	if _, err := io.ReadFull(br, magicBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading session magic: %w", err)
	}
	magic := wire.U32(magicBuf[:])
	switch magic {
	case sessionMagicV1:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		return unmarshalV1(append(magicBuf[:], rest...))
	case sessionMagicV2:
		// Fall through to the block reader below.
	default:
		return nil, fmt.Errorf("trace: bad session magic %#x", magic)
	}

	s := &Session{}
	sawHeader := false
	coreBlocks := 0
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading v2 block tag: %w", err)
		}
		n, err := readStreamUvarint(br)
		if err != nil {
			return nil, err
		}
		if tag == blockEnd {
			if n != 0 {
				return nil, fmt.Errorf("trace: v2 end block with length %d", n)
			}
			if !sawHeader {
				return nil, fmt.Errorf("trace: v2 session missing header block")
			}
			return s, nil
		}
		body, err := readStreamBody(br, n)
		if err != nil {
			return nil, err
		}
		switch tag {
		case blockHeader:
			if sawHeader {
				return nil, fmt.Errorf("trace: duplicate v2 header block")
			}
			sawHeader = true
			if err := parseV2Header(s, body); err != nil {
				return nil, err
			}
		case blockCore:
			if !sawHeader {
				return nil, fmt.Errorf("trace: v2 core block before header")
			}
			if coreBlocks >= cap(s.Cores) {
				return nil, fmt.Errorf("trace: more core blocks than declared %d", cap(s.Cores))
			}
			prev := int64(0)
			if coreBlocks > 0 {
				prev = int64(s.Cores[coreBlocks-1].Core)
			}
			ct, err := parseV2Core(body, prev)
			if err != nil {
				return nil, err
			}
			s.Cores = append(s.Cores, ct)
			coreBlocks++
		case blockSwitches:
			log, err := parseV2Switches(body)
			if err != nil {
				return nil, err
			}
			s.Switches = *log
		}
	}
}

// readStreamUvarint reads a varint byte-by-byte from the stream.
func readStreamUvarint(br *bufio.Reader) (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("trace: reading v2 block length: %w", err)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("trace: v2 block length varint overflows")
}

// readStreamBody reads n bytes, growing incrementally so a lying length
// field only ever costs as much memory as the stream actually delivers.
func readStreamBody(br *bufio.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("trace: reading v2 block body: %w", err)
		}
		return body, nil
	}
	body := make([]byte, 0, chunk)
	remaining := n
	var buf [chunk]byte
	for remaining > 0 {
		step := uint64(chunk)
		if remaining < step {
			step = remaining
		}
		if _, err := io.ReadFull(br, buf[:step]); err != nil {
			return nil, fmt.Errorf("trace: reading v2 block body: %w", err)
		}
		body = append(body, buf[:step]...)
		remaining -= step
	}
	return body, nil
}
