package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU32(b, 0xdeadbeef)
	b = AppendU64(b, 0x0123456789abcdef)
	r := NewReader(b)
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v len=%d", r.Err(), r.Len())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		if len(b) != UvarintLen(v) {
			t.Errorf("UvarintLen(%d) = %d, encoded %d", v, UvarintLen(v), len(b))
		}
		r := NewReader(b)
		if got := r.Uvarint(); got != v || r.Err() != nil {
			t.Errorf("Uvarint(%d) = %d, err %v", v, got, r.Err())
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := AppendZigzag(nil, v)
		if len(b) != ZigzagLen(v) {
			return false
		}
		r := NewReader(b)
		return r.Zigzag() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes must stay small.
	for _, v := range []int64{0, -1, 1, -64, 63} {
		if len(AppendZigzag(nil, v)) != 1 {
			t.Errorf("zigzag(%d) not 1 byte", v)
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32() // short
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// All later reads are dead but must not panic and must keep the
	// first error.
	first := r.Err()
	_ = r.U64()
	_ = r.Uvarint()
	_ = r.Bytes(100)
	if r.Err() != first {
		t.Fatalf("sticky error replaced: %v", r.Err())
	}
}

func TestReaderBytesBounds(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if b := r.Bytes(2); len(b) != 2 || b[0] != 1 {
		t.Fatalf("Bytes(2) = %v", b)
	}
	if b := r.Bytes(5); b != nil || r.Err() == nil {
		t.Fatal("over-length Bytes must fail, not allocate")
	}
	r2 := NewReader([]byte{1})
	if b := r2.Bytes(-1); b != nil || r2.Err() == nil {
		t.Fatal("negative length must fail")
	}
}

func TestReaderBytesAliases(t *testing.T) {
	buf := []byte{1, 2, 3, 4}
	r := NewReader(buf)
	b := r.Bytes(4)
	buf[0] = 99
	if b[0] != 99 {
		t.Fatal("Bytes must alias the input, not copy")
	}
}

func TestUnterminatedVarint(t *testing.T) {
	r := NewReader([]byte{0x80, 0x80, 0x80})
	_ = r.Uvarint()
	if r.Err() == nil {
		t.Fatal("unterminated varint must error")
	}
	// 11 continuation bytes: overflow.
	r2 := NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	_ = r2.Uvarint()
	if r2.Err() == nil {
		t.Fatal("overlong varint must error")
	}
}
