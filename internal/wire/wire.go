// Package wire provides the hand-rolled little-endian and varint
// primitives the v2 session format and the packed packet codec are built
// on. Everything is append-style on the write side and bounds-checked
// with a sticky error on the read side, so encoders allocate exactly once
// and decoders never panic on hostile input — sessions arrive from the
// network/object store.
//
// The package replaces the reflection-based encoding/binary.Write and
// binary.Read calls of the v1 serializer: every helper compiles to plain
// loads/stores with no interface boxing or per-field type switches.
package wire

import "fmt"

// AppendU32 appends v in little-endian order.
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendU64 appends v in little-endian order.
func AppendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U32 reads a little-endian uint32 from b.
func U32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64 from b.
func U64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// AppendUvarint appends v in base-128 varint encoding (LEB128, as in
// encoding/binary but append-style).
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// UvarintLen returns the encoded size of v.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Zigzag maps a signed value to an unsigned one with small absolute
// values staying small (0,-1,1,-2 -> 0,1,2,3).
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendZigzag appends a signed value as a zigzag varint.
func AppendZigzag(dst []byte, v int64) []byte {
	return AppendUvarint(dst, Zigzag(v))
}

// ZigzagLen returns the encoded size of v as a zigzag varint.
func ZigzagLen(v int64) int { return UvarintLen(Zigzag(v)) }

// Reader is a bounds-checked cursor over a byte slice with a sticky
// error: after the first short read every accessor returns zero values,
// so decoders can run a whole field sequence and check Err once. Slices
// returned by Bytes alias the underlying buffer (zero-copy).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset returns the number of consumed bytes.
func (r *Reader) Offset() int { return r.off }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("wire: truncated at %d: need u8", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("wire: truncated at %d: need u32", r.off)
		return 0
	}
	v := U32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("wire: truncated at %d: need u64", r.off)
		return 0
	}
	v := U64(r.buf[r.off:])
	r.off += 8
	return v
}

// Uvarint reads a base-128 varint (at most 10 bytes).
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.buf) {
			r.fail("wire: truncated at %d: unterminated varint", r.off)
			return 0
		}
		b := r.buf[r.off]
		r.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
	}
	r.fail("wire: varint overflows 64 bits at %d", r.off)
	return 0
}

// Zigzag reads a zigzag varint.
func (r *Reader) Zigzag() int64 { return Unzigzag(r.Uvarint()) }

// Bytes returns the next n bytes without copying (the result aliases the
// reader's buffer). A request past the end sets the sticky error — the
// caller never allocates for a length field larger than the remaining
// input.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Len() {
		r.fail("wire: length %d exceeds remaining %d at %d", n, r.Len(), r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// String reads n bytes as a string (one copy, as Go strings require).
func (r *Reader) String(n int) string { return string(r.Bytes(n)) }
