package memalloc

import (
	"testing"

	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

func machine(cores int) *sched.Machine {
	cfg := sched.DefaultConfig()
	cfg.Cores = cores
	cfg.HTSiblings = false
	return sched.NewMachine(cfg)
}

func TestCPUSetEqualSplit(t *testing.T) {
	m := machine(8)
	p := m.AddProcess("set", nil, sched.CPUSet, []int{1, 3, 5, 7})
	cfg := DefaultConfig()
	plan := PlanBuffers(m, p, cfg, xrand.New(1))
	if len(plan.Cores) != 4 {
		t.Fatalf("CPU-set must trace the whole MCS, got %d cores", len(plan.Cores))
	}
	per := plan.Cores[0].BufBytes
	for _, cp := range plan.Cores {
		if cp.BufBytes != per {
			t.Fatalf("CPU-set buffers must be equal: %+v", plan.Cores)
		}
	}
	// 500MB / 4 = 125MB, within [4MB, 128MB].
	if per != 125<<20 {
		t.Fatalf("per-core = %d, want 125MB", per)
	}
	if plan.SampleRatio != 1 {
		t.Fatalf("ratio = %v", plan.SampleRatio)
	}
}

func TestCPUSetClampsToMax(t *testing.T) {
	m := machine(4)
	p := m.AddProcess("small", nil, sched.CPUSet, []int{0})
	plan := PlanBuffers(m, p, DefaultConfig(), xrand.New(1))
	// One core: 500MB budget clamps to the 128MB per-core max — the
	// Search1 behaviour in §5.2 ("we can increase the buffer size of each
	// core to the maximized 128 MB").
	if plan.Cores[0].BufBytes != 128<<20 {
		t.Fatalf("buffer = %d, want 128MB cap", plan.Cores[0].BufBytes)
	}
}

func TestCPUSetClampsToMin(t *testing.T) {
	m := machine(128)
	all := m.AllCores()
	p := m.AddProcess("wide", nil, sched.CPUSet, all)
	plan := PlanBuffers(m, p, DefaultConfig(), xrand.New(1))
	// 500MB/128 < 4MB: the minimum wins.
	if plan.Cores[0].BufBytes != 4<<20 {
		t.Fatalf("buffer = %d, want 4MB floor", plan.Cores[0].BufBytes)
	}
}

func TestCPUShareSampling(t *testing.T) {
	m := machine(48)
	p := m.AddProcess("share", nil, sched.CPUShare, m.AllCores())
	cfg := DefaultConfig()
	cfg.SampleRatio = 0.3
	plan := PlanBuffers(m, p, cfg, xrand.New(2))
	want := 14 // 0.3 * 48 rounded
	if len(plan.Cores) != want {
		t.Fatalf("TCS size = %d, want %d", len(plan.Cores), want)
	}
	if plan.SampleRatio < 0.28 || plan.SampleRatio > 0.32 {
		t.Fatalf("achieved ratio = %v", plan.SampleRatio)
	}
	for _, cp := range plan.Cores {
		if cp.BufBytes < cfg.PerCoreMin || cp.BufBytes > cfg.PerCoreMax {
			t.Fatalf("buffer %d outside clamp", cp.BufBytes)
		}
	}
}

func TestCPUShareAutoRatio(t *testing.T) {
	m := machine(96)
	p := m.AddProcess("share", nil, sched.CPUShare, m.AllCores())
	plan := PlanBuffers(m, p, DefaultConfig(), xrand.New(3))
	if len(plan.Cores) == 0 || len(plan.Cores) >= 96 {
		t.Fatalf("auto ratio picked %d cores", len(plan.Cores))
	}
	if plan.TotalBytes > 96*(128<<20) {
		t.Fatalf("total allocation absurd: %d", plan.TotalBytes)
	}
}

func TestCPUSharePrefersRunningCores(t *testing.T) {
	m := machine(16)
	p := m.AddProcess("share", nil, sched.CPUShare, m.AllCores())
	exec := sched.NewAnalyticExec(xrand.New(5), m.Cfg.Cost, 0, nil, 40, 0.2, 1.5)
	th := m.SpawnThread(p, exec)
	m.Run(50 * simtime.Millisecond)
	cfg := DefaultConfig()
	cfg.SampleRatio = 0.25
	plan := PlanBuffers(m, p, cfg, xrand.New(4))
	if lc := th.LastCore(); lc >= 0 && !plan.Has(lc) {
		t.Fatalf("plan %v misses the thread's current core %d", plan.Cores, lc)
	}
}

func TestPlanHas(t *testing.T) {
	p := Plan{Cores: []CorePlan{{Core: 3}, {Core: 7}}}
	if !p.Has(3) || !p.Has(7) || p.Has(5) {
		t.Fatal("Plan.Has wrong")
	}
}

func TestWindowUtil(t *testing.T) {
	if WindowUtil(50, 100) != 0.5 {
		t.Fatal("WindowUtil wrong")
	}
	if WindowUtil(50, 0) != 0 {
		t.Fatal("WindowUtil must handle zero window")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	m := machine(2)
	p := m.AddProcess("x", nil, sched.CPUSet, []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero budget")
		}
	}()
	PlanBuffers(m, p, Config{}, xrand.New(1))
}
