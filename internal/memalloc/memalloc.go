// Package memalloc implements EXIST's Usage-aware Memory Allocator (UMA,
// §3.3 of the paper): given a node memory budget for tracing, it picks the
// Traced Core Set (TCS) from the target process's Mapped Core Set (MCS)
// and sizes each core's buffer.
//
// The two CPU provisioning modes get different treatment:
//
//   - CPU-set processes own a small exclusive core set, so the whole MCS
//     is traced with equal buffers.
//   - CPU-share processes are mapped onto many cores but tend to execute
//     on a few, so UMA samples a core subset — the cores the process
//     recently ran on, plus a utilization-weighted sample of the rest,
//     with lower-utilization cores preferred (they are more likely to
//     receive the next schedule-in) and given larger buffers.
package memalloc

import (
	"sort"

	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/xrand"
)

// Config parameterizes the allocator.
type Config struct {
	// Budget is the node memory allowance for trace buffers, in bytes.
	// The paper permits roughly 0.5-1 GB per node (§2.3, §4).
	Budget int64
	// PerCoreMin and PerCoreMax bound individual buffers (4 MB-128 MB in
	// the paper's implementation).
	PerCoreMin, PerCoreMax int64
	// SampleRatio is the fraction of the MCS to trace for CPU-share
	// processes; zero selects it automatically from the budget.
	SampleRatio float64
}

// DefaultConfig returns the paper's deployment values.
func DefaultConfig() Config {
	return Config{
		Budget:     500 << 20,
		PerCoreMin: 4 << 20,
		PerCoreMax: 128 << 20,
	}
}

// CorePlan is one traced core's allocation.
type CorePlan struct {
	// Core is the logical core ID.
	Core int
	// BufBytes is the buffer size assigned to the core.
	BufBytes int64
}

// Plan is the allocator's output.
type Plan struct {
	// Cores lists the traced core set with buffer sizes, ordered by core.
	Cores []CorePlan
	// TotalBytes is the memory the plan consumes.
	TotalBytes int64
	// SampleRatio is the achieved TCS/MCS ratio.
	SampleRatio float64
}

// Has reports whether core is in the plan.
func (p *Plan) Has(core int) bool {
	for i := range p.Cores {
		if p.Cores[i].Core == core {
			return true
		}
	}
	return false
}

// PlanBuffers computes the traced core set and buffer sizes for target on
// machine m. Core utilization is read from the machine's accounting so
// far (the paper's UMA consults node runtime status at initialization).
func PlanBuffers(m *sched.Machine, target *sched.Process, cfg Config, rng *xrand.Rand) Plan {
	if cfg.Budget <= 0 || cfg.PerCoreMin <= 0 || cfg.PerCoreMax < cfg.PerCoreMin {
		panic("memalloc: invalid config")
	}
	mcs := target.Allowed
	if target.Mode == sched.CPUSet {
		return equalSplit(mcs, cfg)
	}
	return sampledSplit(m, target, cfg, rng)
}

// equalSplit traces the whole MCS with equal per-core buffers.
func equalSplit(mcs []int, cfg Config) Plan {
	per := clamp(cfg.Budget/int64(len(mcs)), cfg.PerCoreMin, cfg.PerCoreMax)
	p := Plan{SampleRatio: 1}
	for _, c := range sortedCopy(mcs) {
		p.Cores = append(p.Cores, CorePlan{Core: c, BufBytes: per})
		p.TotalBytes += per
	}
	return p
}

// sampledSplit picks a TCS subset for a CPU-share process.
func sampledSplit(m *sched.Machine, target *sched.Process, cfg Config, rng *xrand.Rand) Plan {
	mcs := sortedCopy(target.Allowed)
	ratio := cfg.SampleRatio
	if ratio <= 0 {
		// Auto ratio: as many cores as the budget can give a usefully
		// large (mid-range) buffer, but no more than the MCS.
		useful := (cfg.PerCoreMin + cfg.PerCoreMax) / 2
		n := cfg.Budget / useful
		if n < 1 {
			n = 1
		}
		ratio = float64(n) / float64(len(mcs))
		if ratio > 1 {
			ratio = 1
		}
	}
	want := int(float64(len(mcs))*ratio + 0.5)
	if want < 1 {
		want = 1
	}
	if want > len(mcs) {
		want = len(mcs)
	}

	elapsed := m.Eng.Now()
	util := func(core int) float64 {
		if elapsed <= 0 {
			return 0
		}
		c := m.Cores[core]
		return float64(c.BusyNS+c.KernelNS) / float64(elapsed)
	}

	// Compulsory members: cores the target's threads are on right now or
	// ran on last (the "current core" of §3.3).
	selected := map[int]bool{}
	compulsory := map[int]bool{}
	var tcs []int
	for _, th := range target.Threads {
		if len(tcs) >= want {
			break
		}
		if c := th.LastCore(); c >= 0 && containsInt(mcs, c) && !selected[c] {
			selected[c] = true
			compulsory[c] = true
			tcs = append(tcs, c)
		}
	}
	// Fill with a utilization-weighted random sample of the rest; idle
	// cores are likelier to receive the next schedule-in and are
	// preferred.
	var rest []int
	for _, c := range mcs {
		if !selected[c] {
			rest = append(rest, c)
		}
	}
	for len(tcs) < want && len(rest) > 0 {
		weights := make([]float64, len(rest))
		for i, c := range rest {
			weights[i] = 1 / (0.15 + util(c))
		}
		i := rng.WeightedPick(weights)
		tcs = append(tcs, rest[i])
		rest = append(rest[:i], rest[i+1:]...)
	}
	sort.Ints(tcs)

	// Budget split — usage-aware: the cores the target is actually on
	// (affinity keeps threads there) dominate the allocation; among the
	// speculative rest, lower-utilization cores get bigger buffers since
	// they are likelier to receive the next schedule-in.
	weights := make([]float64, len(tcs))
	var wTotal float64
	for i, c := range tcs {
		if compulsory[c] {
			weights[i] = 8
		} else {
			weights[i] = 1 / (0.15 + util(c))
		}
		wTotal += weights[i]
	}
	p := Plan{SampleRatio: float64(len(tcs)) / float64(len(mcs))}
	for i, c := range tcs {
		buf := clamp(int64(float64(cfg.Budget)*weights[i]/wTotal), cfg.PerCoreMin, cfg.PerCoreMax)
		p.Cores = append(p.Cores, CorePlan{Core: c, BufBytes: buf})
		p.TotalBytes += buf
	}
	return p
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// WindowUtil reports a core's busy fraction over a window, the node
// status signal UMA consumes (exported for experiments and tests).
func WindowUtil(busy, window simtime.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(busy) / float64(window)
}
