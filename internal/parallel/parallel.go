// Package parallel provides the bounded, deterministic fan-out primitives
// the experiment harness and sweep experiments use to exploit multicore
// hosts without perturbing results.
//
// Determinism contract: work items are identified by index, results are
// written to the index's slot, and aggregation happens in input order at
// the call site — so output is byte-identical no matter how many workers
// run or how the scheduler interleaves them. This only holds if each item
// derives its randomness from stable identifiers (see xrand.Split), never
// from call order; every experiment cell in this repo does.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Panic carries a panic recovered from a worker goroutine back to the
// caller: the original value plus the stack of the goroutine that raised
// it. Re-raising loses the raising goroutine's stack trace, so ForEach
// wraps the first failure in a Panic before re-panicking — the crash
// output then shows the worker frame that actually failed, not just the
// pool drain in the caller.
type Panic struct {
	// Value is the value the worker panicked with.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error so recovered Panics compose with errors.As-style
// handling in callers that turn panics into failures.
func (p *Panic) Error() string { return p.String() }

// Unwrap exposes the original value to errors.Is/As when it was an error.
func (p *Panic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// String formats the original value followed by the worker stack.
func (p *Panic) String() string {
	return fmt.Sprintf("%v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// Workers resolves a -jobs style request: n > 0 is taken as given, n <= 0
// defaults to GOMAXPROCS (use every core the runtime will schedule on).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). Items are claimed dynamically, so
// uneven item costs still fill all workers. It returns when every call
// has finished or the pool stopped early on a failure.
//
// A panic in any item stops the pool: workers finish the item they are
// on but claim no new ones, and the first failure is re-raised in the
// caller wrapped in *Panic, preserving the failing worker's stack. So a
// crash in one sweep cell surfaces in the calling test or tool with the
// cell's own trace, without burning the remaining items' work first.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		stop     atomic.Bool
		panicMu  sync.Mutex
		panicked *Panic
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stop.Store(true)
							p, ok := r.(*Panic) // nested pools: keep the innermost stack
							if !ok {
								p = &Panic{Value: r, Stack: debug.Stack()}
							}
							panicMu.Lock()
							if panicked == nil {
								panicked = p
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0, n) with bounded workers and returns the results in
// input order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work. All items run to completion; if any
// failed, the error of the lowest-index failure is returned (a stable
// choice, so error output does not depend on scheduling).
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
