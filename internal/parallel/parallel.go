// Package parallel provides the bounded, deterministic fan-out primitives
// the experiment harness and sweep experiments use to exploit multicore
// hosts without perturbing results.
//
// Determinism contract: work items are identified by index, results are
// written to the index's slot, and aggregation happens in input order at
// the call site — so output is byte-identical no matter how many workers
// run or how the scheduler interleaves them. This only holds if each item
// derives its randomness from stable identifiers (see xrand.Split), never
// from call order; every experiment cell in this repo does.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a -jobs style request: n > 0 is taken as given, n <= 0
// defaults to GOMAXPROCS (use every core the runtime will schedule on).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). Items are claimed dynamically, so
// uneven item costs still fill all workers. It returns when every call
// has finished. A panic in any item is re-raised in the caller after the
// pool drains, so failures surface in the calling test or tool, not as an
// orphan goroutine crash.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0, n) with bounded workers and returns the results in
// input order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work. All items run to completion; if any
// failed, the error of the lowest-index failure is returned (a stable
// choice, so error output does not depend on scheduling).
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
