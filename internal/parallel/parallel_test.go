package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(0, 8, func(int) { t.Fatal("ran on n=0") })
	ran := false
	ForEach(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	n := 500
	want := Map(n, 1, func(i int) int { return i * i })
	for _, workers := range []int{2, 4, 16} {
		got := Map(n, workers, func(i int) int { return i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	bad := map[int]bool{7: true, 3: true, 9: true}
	_, err := MapErr(16, 8, func(i int) (int, error) {
		if bad[i] {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("err = %v, want the lowest-index failure (item 3)", err)
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	out, err := MapErr(10, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !errors.Is(r.(error), errBoom) {
			t.Fatalf("recovered %v", r)
		}
	}()
	ForEach(100, 8, func(i int) {
		if i == 42 {
			panic(errBoom)
		}
	})
}

var errBoom = errors.New("boom")

// panicHelper raises from a named frame so the stack test below can
// assert the worker's trace survived the hop across goroutines.
func panicHelper() {
	panic(errBoom)
}

func TestForEachPanicKeepsWorkerStack(t *testing.T) {
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if p.Value != error(errBoom) {
			t.Fatalf("Panic.Value = %v", p.Value)
		}
		if !strings.Contains(string(p.Stack), "panicHelper") {
			t.Fatalf("worker stack lost the raising frame:\n%s", p.Stack)
		}
		if !errors.Is(p, errBoom) {
			t.Fatal("Panic does not unwrap to the original error")
		}
	}()
	ForEach(10, 4, func(i int) {
		if i == 0 {
			panicHelper()
		}
	})
}

// TestForEachPanicStopsEarly checks that a failure stops the pool from
// claiming new items instead of burning through the whole range. Item 0
// panics immediately; every other item costs real time, so if the stop
// flag were ignored the two workers would have to grind through all
// remaining items before the panic resurfaced.
func TestForEachPanicStopsEarly(t *testing.T) {
	const n = 100_000
	var ran atomic.Int64
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
		if got := ran.Load(); got >= n-1 {
			t.Fatalf("pool ran all %d items after the panic; early stop is broken", got)
		}
	}()
	ForEach(n, 2, func(i int) {
		if i == 0 {
			panic(errBoom)
		}
		ran.Add(1)
		time.Sleep(50 * time.Microsecond)
	})
}

// TestForEachConcurrentStress exercises the pool under -race: shared
// per-slot writes must not race, and the dynamic claim counter must never
// hand out an index twice.
func TestForEachConcurrentStress(t *testing.T) {
	n := 10_000
	out := make([]int, n)
	ForEach(n, 32, func(i int) { out[i] = i })
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
