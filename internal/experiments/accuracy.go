package experiments

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/coverage"
	"exist/internal/decode"
	"exist/internal/memalloc"
	"exist/internal/metrics"
	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: host memory allocation vs utilization",
		Paper: "allocation near the ceiling while average utilization stays low — UMA must budget, not grab",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: performance of tracing multiple repetitions",
		Paper: "coverage grows with diminishing returns, similarity rises, cost grows linearly",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Figure 18: accuracy of EXIST on real-world applications",
		Paper: "83.7/82.6/86.2% average accuracy for 0.1/0.5/1 s windows vs the NHT reference",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Figure 19: impact of the core sampling mechanism on accuracy",
		Paper: "sampling 30-100% of cores barely hurts accuracy but strongly cuts space",
		Run:   runFig19,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Figure 20: cluster-level sampling and trace augmentation",
		Paper: "merging 3/10 workers improves single-worker accuracy by up to 11%",
		Run:   runFig20,
	})
	register(Experiment{
		ID:    "acc-bench",
		Title: "Section 5.3: path-exact accuracy on standard benchmarks vs exhaustive tracing",
		Paper: "87.4-95.1% on single-threaded SPEC (90.2% avg), 62.2% on multi-threaded xz, 89-93% online",
		Run:   runAccBench,
	})
}

// traceWindow runs one node hosting the walker-backed app plus a
// best-effort co-runner and captures one tracing window: EXIST's bounded
// session, or the exhaustive NHT reference when nhtRef is set. The warmup
// offset de-phases reference and subject runs, as two captures of a
// long-running service inevitably are.
func traceWindow(cfg Config, p workload.Profile, prog *binary.Program,
	period simtime.Duration, sampleRatio float64, seed uint64, nhtRef bool,
	warmup simtime.Duration) (*trace.Session, error) {

	noise, err := workload.ByName("Cache")
	if err != nil {
		return nil, err
	}
	spec := node.Spec{
		Cores:     16,
		Timeslice: 500 * simtime.Microsecond,
		Seed:      cfg.Seed ^ seed,

		Workload: p,
		Walker:   true,
		Scale:    trace.SpaceScale,
		Prog:     prog,

		CoRunners:    []node.CoRunner{{Profile: noise, SeedOffset: 55}},
		Housekeeping: true,

		Warmup:      warmup,
		Dur:         period,
		KeepSession: true,
	}
	if nhtRef {
		spec.Backend = "NHT"
		spec.Tracer.FilterTarget = true
	} else {
		spec.Backend = "EXIST"
		// EXIST's HRT closes the window itself; a short drain lets the
		// closing event fire before harvest.
		spec.Drain = 10 * simtime.Millisecond
		mem := memalloc.DefaultConfig()
		mem.SampleRatio = sampleRatio
		spec.Tracer.Mem = &mem
	}
	r, err := node.Run(spec)
	if err != nil {
		return nil, err
	}
	return r.Session, nil
}

// accuracyPair holds one EXIST-vs-reference comparison.
type accuracyPair struct {
	exist, ref       *decode.Result
	existMB, refMB   float64
	accuracy         float64
	funcRatio        float64
	existFuncs, refN int
}

// comparePair decodes both sessions and scores the histogram match.
func comparePair(prog *binary.Program, existSess, refSess *trace.Session) accuracyPair {
	pr := accuracyPair{
		exist:   decode.Decode(existSess, prog),
		ref:     decode.Decode(refSess, prog),
		existMB: existSess.SpaceMB(),
		refMB:   refSess.SpaceMB(),
	}
	pr.accuracy = metrics.WeightMatch(pr.ref.FuncEntries, pr.exist.FuncEntries)
	pr.existFuncs = len(pr.exist.FuncEntries)
	pr.refN = len(pr.ref.FuncEntries)
	if pr.refN > 0 {
		pr.funcRatio = float64(pr.existFuncs) / float64(pr.refN)
	}
	return pr
}

// runAccuracyPair performs the two runs and compares them.
func runAccuracyPair(cfg Config, p workload.Profile, period simtime.Duration,
	sampleRatio float64, seed uint64) (accuracyPair, error) {
	prog := p.Synthesize(cfg.Seed ^ 0xACC0)
	existSess, err := traceWindow(cfg, p, prog, period, sampleRatio, seed, false, 100*simtime.Millisecond)
	if err != nil {
		return accuracyPair{}, err
	}
	refSess, err := traceWindow(cfg, p, prog, period, 1, seed+7, true, 300*simtime.Millisecond)
	if err != nil {
		return accuracyPair{}, err
	}
	return comparePair(prog, existSess, refSess), nil
}

func runFig18(cfg Config) (*Result, error) {
	apps := workload.CloudApps()
	periods := []simtime.Duration{100 * simtime.Millisecond, 500 * simtime.Millisecond, 1 * simtime.Second}
	if cfg.Quick {
		periods = periods[:2]
	}
	res := &Result{ID: "fig18"}
	t := &tabular.Table{
		Title:  "Figure 18: accuracy on real-world applications (Wall's weight matching vs NHT reference)",
		Header: []string{"app", "period", "accuracy", "function ratio (EXIST/NHT)"},
	}
	// Flatten the (app, period) grid: each cell's seed depends only on the
	// app index, so cells fan out freely.
	pairs, err := parallel.MapErr(len(apps)*len(periods), cfg.Jobs, func(i int) (accuracyPair, error) {
		ai, pi := i/len(periods), i%len(periods)
		return runAccuracyPair(cfg, apps[ai], periods[pi], 0, uint64(1800+ai*13))
	})
	if err != nil {
		return nil, err
	}
	perPeriod := map[simtime.Duration]float64{}
	for ai, app := range apps {
		for pi, period := range periods {
			pr := pairs[ai*len(periods)+pi]
			t.AddRow(app.Name, period.String(), pct(pr.accuracy), pct(pr.funcRatio))
			perPeriod[period] += pr.accuracy / float64(len(apps))
			res.Metric(fmt.Sprintf("acc_%s_%s", app.Name, period), pr.accuracy)
		}
	}
	for _, period := range periods {
		t.AddRow("Avg. @"+period.String(), "", pct(perPeriod[period]), "")
	}
	t.Notes = append(t.Notes,
		"paper: 83.7/82.6/86.2% average accuracy at 0.1/0.5/1 s; two captures of a dynamic service never align exactly")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig19(cfg Config) (*Result, error) {
	s2, err := workload.ByName("Search2")
	if err != nil {
		return nil, err
	}
	ratios := []float64{0.3, 0.5, 0.8, 1.0}
	periods := []simtime.Duration{100 * simtime.Millisecond, 500 * simtime.Millisecond, 1 * simtime.Second}
	if cfg.Quick {
		ratios = []float64{0.3, 1.0}
		periods = periods[:2]
	}
	res := &Result{ID: "fig19"}
	t := &tabular.Table{
		Title:  "Figure 19: core sampling on CPU-share Search2 — accuracy vs space",
		Header: []string{"period", "sample ratio", "accuracy", "space ratio (EXIST/NHT)", "function ratio"},
	}
	pairs, err := parallel.MapErr(len(periods)*len(ratios), cfg.Jobs, func(i int) (accuracyPair, error) {
		pi, ri := i/len(ratios), i%len(ratios)
		return runAccuracyPair(cfg, s2, periods[pi], ratios[ri], 1900)
	})
	if err != nil {
		return nil, err
	}
	for pi, period := range periods {
		for ri, r := range ratios {
			pr := pairs[pi*len(ratios)+ri]
			spaceRatio := 0.0
			if pr.refMB > 0 {
				spaceRatio = pr.existMB / pr.refMB
			}
			t.AddRow(period.String(), pct(r), pct(pr.accuracy), pct(spaceRatio), pct(pr.funcRatio))
			res.Metric(fmt.Sprintf("acc_r%.0f_%s", r*100, period), pr.accuracy)
			res.Metric(fmt.Sprintf("space_r%.0f_%s", r*100, period), spaceRatio)
		}
	}
	t.Notes = append(t.Notes,
		"paper: accuracy barely moves with the sampling ratio (the target runs on few cores), space shrinks strongly",
		"lower ratios trade traced cores for bigger per-core buffers")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig20(cfg Config) (*Result, error) {
	s1, err := workload.ByName("Search1")
	if err != nil {
		return nil, err
	}
	// As in Figure 12, a large binary keeps per-worker coverage partial so
	// the augmentation gain is visible.
	s1.Funcs = 420
	prog := s1.Synthesize(cfg.Seed ^ 0xACC0)
	workers := []int{1, 3, 10}
	periods := []simtime.Duration{100 * simtime.Millisecond, 500 * simtime.Millisecond, 1 * simtime.Second}
	if cfg.Quick {
		workers = []int{1, 3}
		periods = periods[:2]
	}
	// One exhaustive reference.
	maxWorkers := workers[len(workers)-1]

	res := &Result{ID: "fig20"}
	header := []string{"period"}
	for _, k := range workers {
		header = append(header, fmt.Sprintf("workers=%d", k))
	}
	t := &tabular.Table{
		Title:  "Figure 20: accuracy under cluster-level sampling and trace augmentation",
		Header: header,
	}
	type periodOut struct {
		row  []string
		accs []float64
	}
	// The reference and every worker window are independent runs; the shared
	// prog is safe to decode concurrently (its lazy indexes build under
	// sync.Once). Index 0 is the exhaustive reference, 1.. the workers.
	outs, err := parallel.MapErr(len(periods), cfg.Jobs, func(pi int) (periodOut, error) {
		period := periods[pi]
		decoded, err := parallel.MapErr(maxWorkers+1, cfg.Jobs, func(i int) (*decode.Result, error) {
			if i == 0 {
				refSess, err := traceWindow(cfg, s1, prog, period, 1, 2099, true, 300*simtime.Millisecond)
				if err != nil {
					return nil, err
				}
				return decode.Decode(refSess, prog), nil
			}
			sess, err := traceWindow(cfg, s1, prog, period, 0, uint64(2000+(i-1)*17), false, 100*simtime.Millisecond)
			if err != nil {
				return nil, err
			}
			// Decode every worker's session once; prefixes give the k-curves.
			return decode.Decode(sess, prog), nil
		})
		if err != nil {
			return periodOut{}, err
		}
		ref, perWorker := decoded[0], decoded[1:]
		out := periodOut{row: []string{period.String()}}
		for _, k := range workers {
			if k > len(perWorker) {
				k = len(perWorker)
			}
			var acc float64
			if k == 1 {
				// Average single-worker accuracy over all workers, as the
				// paper does.
				for _, r := range perWorker {
					acc += metrics.WeightMatch(ref.FuncEntries, r.FuncEntries) / float64(len(perWorker))
				}
			} else {
				merged := coverage.Merge(perWorker[:k])
				acc = metrics.WeightMatch(ref.FuncEntries, merged.Merged.FuncEntries)
			}
			out.row = append(out.row, pct(acc))
			out.accs = append(out.accs, acc)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, period := range periods {
		out := outs[pi]
		var first, last float64
		for ki, k := range workers {
			acc := out.accs[ki]
			if first == 0 {
				first = acc
			}
			last = acc
			res.Metric(fmt.Sprintf("acc_w%d_%s", k, period), acc)
		}
		t.AddRow(out.row...)
		res.Metric("improvement_"+period.String(), last-first)
	}
	t.Notes = append(t.Notes,
		"paper: augmentation improves single-worker accuracy by up to 11% with no extra node-level cost")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig12(cfg Config) (*Result, error) {
	s1, err := workload.ByName("Search1")
	if err != nil {
		return nil, err
	}
	// A large binary relative to the window keeps single-window coverage
	// partial, exposing the marginal-benefit curve of extra repetitions.
	s1.Funcs = 420
	prog := s1.Synthesize(cfg.Seed ^ 0xACC0)
	n := 5
	if cfg.Quick {
		n = 3
	}
	period := 50 * simtime.Millisecond
	results, err := parallel.MapErr(n, cfg.Jobs, func(w int) (*decode.Result, error) {
		sess, err := traceWindow(cfg, s1, prog, period, 0, uint64(1200+w*29), false, 100*simtime.Millisecond)
		if err != nil {
			return nil, err
		}
		return decode.Decode(sess, prog), nil
	})
	if err != nil {
		return nil, err
	}
	sim := coverage.SimilarityCurve(results)
	cov := coverage.CoverageCurve(results, len(prog.Funcs))

	res := &Result{ID: "fig12"}
	t := &tabular.Table{
		Title:  "Figure 12: tracing multiple repetitions — similarity, coverage, cost",
		Header: []string{"repetitions", "trace similarity", "trace coverage", "trace cost"},
	}
	for k := 1; k <= n; k++ {
		t.AddRow(fmt.Sprintf("%d", k), pct(sim[k-1]), pct(cov[k-1]), fmt.Sprintf("%d units", k))
	}
	t.Notes = append(t.Notes,
		"paper: repetitions behave alike — added coverage diminishes while cost grows linearly, so RCO samples repetitions")
	res.Metric("coverage_first", cov[0])
	res.Metric("coverage_last", cov[n-1])
	res.Metric("similarity_last", sim[n-1])
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig11(cfg Config) (*Result, error) {
	// The observational motivation for UMA: a typical node ledger over
	// ~1000 ten-minute samples — allocation pinned near the ceiling by
	// reservations, utilization much lower and bursty.
	rng := xrand.Split(cfg.Seed, "fig11")
	n := 1000
	if cfg.Quick {
		n = 200
	}
	var allocSum, usedSum, usedMax float64
	var headroomMin = 100.0
	for i := 0; i < n; i++ {
		alloc := 88 + 6*rng.Float64() // percent of capacity
		used := 38 + 12*rng.Float64() + 8*float64(i%60)/60
		if used > usedMax {
			usedMax = used
		}
		if alloc-used < headroomMin {
			headroomMin = alloc - used
		}
		allocSum += alloc
		usedSum += used
	}
	res := &Result{ID: "fig11"}
	t := &tabular.Table{
		Title:  "Figure 11: host memory allocation and utilization rates (share of capacity)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("mean allocation", fmt.Sprintf("%.1f%%", allocSum/float64(n)))
	t.AddRow("mean utilization", fmt.Sprintf("%.1f%%", usedSum/float64(n)))
	t.AddRow("max utilization", fmt.Sprintf("%.1f%%", usedMax))
	t.AddRow("min alloc-used headroom", fmt.Sprintf("%.1f%%", headroomMin))
	t.Notes = append(t.Notes,
		"allocated memory nearly reaches the ceiling while utilization stays low: the tracing facility gets a fixed",
		"0.5-1 GB budget (≈1% of a 384 GB node) rather than allocating maximum per-core buffers everywhere")
	res.Metric("mean_alloc_pct", allocSum/float64(n))
	res.Metric("mean_used_pct", usedSum/float64(n))
	res.Tables = append(res.Tables, t)
	return res, nil
}

// runAccBench scores EXIST against the NHT reference with exact path
// matching on the standard benchmarks (§5.3's first accuracy experiment).
// Benchmarks behave identically across runs, so the comparison uses the
// same execution with ground truth recorded directly.
func runAccBench(cfg Config) (*Result, error) {
	workloads := workload.SPEC()
	workloads = append(workloads, workload.OnlineBenchmarks()...)
	period := durQuick(cfg, 200*simtime.Millisecond, 500*simtime.Millisecond)

	res := &Result{ID: "acc-bench"}
	t := &tabular.Table{
		Title:  "Section 5.3: exact-path accuracy vs ground truth on standard benchmarks",
		Header: []string{"bench", "threads", "accuracy", "spurious", "decode errors"},
	}
	type benchOut struct {
		skip     bool
		row      []string
		accuracy float64
	}
	outs, err := parallel.MapErr(len(workloads), cfg.Jobs, func(wi int) (benchOut, error) {
		p := workloads[wi]
		if cfg.Quick && wi%3 != 0 && p.Class == workload.Compute {
			return benchOut{skip: true}, nil
		}
		prog := p.Synthesize(cfg.Seed ^ 0xBE)
		// Pervasive co-location (one best-effort thread per core): shared
		// datacenters always multiplex, which is also what lets OTC
		// capture even CPU-bound targets at their next schedule-in.
		noise, err := workload.ByName("Cache")
		if err != nil {
			return benchOut{}, err
		}
		rt := node.Provision(node.Spec{
			Cores:        8,
			Timeslice:    500 * simtime.Microsecond,
			Seed:         cfg.Seed + uint64(wi)*71,
			Workload:     p,
			Walker:       true,
			Scale:        trace.SpaceScale,
			Prog:         prog,
			CoRunners:    []node.CoRunner{{Profile: noise, SeedOffset: 3}},
			Housekeeping: true,
		})
		m, proc := rt.Machine, rt.Proc

		gt := trace.NewGroundTruth(prog, 0, 0)
		m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
			if th.Proc == proc {
				gt.Record(int32(th.TID), now, ev)
			}
		}
		m.Run(100 * simtime.Millisecond)
		ctrl := rt.Controller()
		ccfg := core.DefaultConfig()
		ccfg.Period = period
		ccfg.Scale = trace.SpaceScale
		ccfg.Seed = m.Cfg.Seed
		// A tighter budget than the deployment default for the compute
		// suite: the accuracy gap the paper reports comes from the
		// memory-space threshold, so those windows must actually stress
		// the buffers. Online benchmarks run under the deployment budget
		// (their occupancy is bounded by lower per-core utilization).
		if p.Class == workload.Compute {
			ccfg.Mem = memalloc.Config{Budget: 280 << 20, PerCoreMin: 4 << 20, PerCoreMax: 120 << 20}
		} else {
			ccfg.Mem = memalloc.Config{Budget: 800 << 20, PerCoreMin: 4 << 20, PerCoreMax: 128 << 20, SampleRatio: 1}
		}
		sess, err := ctrl.Trace(proc, ccfg)
		if err != nil {
			return benchOut{}, err
		}
		gt.Start, gt.End = m.Eng.Now(), m.Eng.Now()+period
		m.Run(gt.End + 10*simtime.Millisecond)
		sres, err := sess.Result()
		if err != nil {
			return benchOut{}, err
		}
		rec := decode.Decode(sres, prog)
		score := metrics.PathAccuracy(gt.ByThread, rec.ByThread)
		return benchOut{
			row: []string{p.Name, fmt.Sprintf("%d", p.Threads), pct(score.Accuracy),
				fmt.Sprintf("%d", score.Spurious), fmt.Sprintf("%d", len(rec.Errors))},
			accuracy: score.Accuracy,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var avgSingle float64
	var nSingle int
	for wi, p := range workloads {
		if outs[wi].skip {
			continue
		}
		t.AddRow(outs[wi].row...)
		res.Metric("acc_"+p.Name, outs[wi].accuracy)
		if p.Threads == 1 {
			avgSingle += outs[wi].accuracy
			nSingle++
		}
	}
	if nSingle > 0 {
		t.AddRow("Avg. single-threaded", "", pct(avgSingle/float64(nSingle)), "", "")
		res.Metric("avg_single_threaded", avgSingle/float64(nSingle))
	}
	t.Notes = append(t.Notes,
		"paper: 87.4-95.1% on single-threaded SPEC (90.2% avg), 62.2% on xz, 89-93% on online benchmarks",
		"losses come from the memory-space threshold (compulsory drop), not decode mistakes")
	res.Tables = append(res.Tables, t)
	return res, nil
}
