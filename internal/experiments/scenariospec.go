package experiments

import (
	"embed"
	"fmt"

	"exist/internal/node"
	"exist/internal/spec"
	"exist/internal/workload"
)

// figureFS holds the named fixed arrangements of the motivation figures,
// expressed as scenario documents: the experiments compile their node
// placements out of the same DSL user-supplied specs go through.
//
//go:embed scenarios/*.yaml
var figureFS embed.FS

// compiledScenario is a scenario document compiled against the runtime:
// document-defined profiles resolved, the traced app picked, and the node
// placement lowered to a node.Spec.
type compiledScenario struct {
	doc      *spec.Document
	app      workload.Profile
	profiles map[string]workload.Profile
	node     node.Spec
}

// compileScenario lowers a parsed document. Document profiles compile
// against the built-in table (so bases like "Search1" resolve); the
// scenario app and co-runners resolve document-first, then built-in; the
// placement becomes a node.Spec ready for measure().
func compileScenario(doc *spec.Document) (*compiledScenario, error) {
	ctx := map[string]workload.Profile{}
	for _, p := range workload.All() {
		ctx[p.Name] = p
	}
	compiled, err := workload.CompileProfiles(doc, ctx)
	if err != nil {
		return nil, err
	}
	cs := &compiledScenario{doc: doc, profiles: map[string]workload.Profile{}}
	for _, p := range compiled {
		cs.profiles[p.Name] = p
	}
	lookup := func(name string) (workload.Profile, error) {
		if p, ok := cs.profiles[name]; ok {
			return p, nil
		}
		return workload.ByName(name)
	}
	if sc := doc.Scenario; sc != nil {
		if sc.App != "" {
			app, err := lookup(sc.App)
			if err != nil {
				return nil, fmt.Errorf("%s: scenario app: %w", doc.Src, err)
			}
			cs.app = app
		}
		ns, err := node.SpecFromPlacement(sc.Node, cs.app, lookup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", doc.Src, err)
		}
		cs.node = ns
	}
	return cs, nil
}

// figureSpec loads an embedded per-figure arrangement by name and returns
// the traced app plus the compiled node spec. Durations and schemes stay
// with the experiment; the document records the placement.
func figureSpec(name string) (workload.Profile, node.Spec, error) {
	path := "scenarios/" + name + ".yaml"
	data, err := figureFS.ReadFile(path)
	if err != nil {
		return workload.Profile{}, node.Spec{}, fmt.Errorf("experiments: no embedded scenario %q: %w", name, err)
	}
	doc, err := spec.Parse(path, data)
	if err != nil {
		return workload.Profile{}, node.Spec{}, err
	}
	cs, err := compileScenario(doc)
	if err != nil {
		return workload.Profile{}, node.Spec{}, err
	}
	if cs.doc.Scenario == nil || cs.doc.Scenario.App == "" {
		return workload.Profile{}, node.Spec{}, fmt.Errorf("%s: figure scenario needs an app", path)
	}
	return cs.app, cs.node, nil
}
