// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each experiment is a named,
// self-contained runner producing plain-text tables; the per-experiment
// index in DESIGN.md maps experiment IDs to paper artifacts.
//
// Absolute numbers come from a simulator, not the authors' testbed; what
// the runners are built to reproduce is the paper's *shape*: which scheme
// wins, by roughly what factor, and where the crossovers fall. Each
// runner's table notes state the paper's reported values next to ours.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"exist/internal/tabular"
)

// Config parameterizes a run.
type Config struct {
	// Quick shrinks durations and sweep sizes for tests and benchmarks;
	// full runs use the paper's parameters.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Jobs bounds the worker pool for sweep fan-out (<= 0 means
	// GOMAXPROCS, 1 forces serial). Every cell derives its randomness
	// from stable identifiers, so results are identical for any value.
	Jobs int
}

// DefaultConfig returns the full-fidelity configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// Result is one experiment's output.
type Result struct {
	// ID is the experiment ID.
	ID string
	// Tables are the rendered artifacts.
	Tables []*tabular.Table
	// Metrics exposes headline numbers for benchmarks and EXPERIMENTS.md
	// (name -> value).
	Metrics map[string]float64
}

// Metric records a headline number.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Render draws all tables.
func (r *Result) Render() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedMetrics returns metric names in order.
func (r *Result) SortedMetrics() []string {
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Experiment is one registered runner.
type Experiment struct {
	// ID is the registry key (fig13, tab04, ...).
	ID string
	// Title describes the paper artifact.
	Title string
	// Paper summarizes what the paper reports (the shape target).
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) (*Result, error)
}

// registry holds all experiments in registration order.
var registry []Experiment

// register adds an experiment at init time.
func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every experiment in registration order.
func All() []Experiment {
	return append([]Experiment(nil), registry...)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (use one of %v)", id, IDs())
}

// IDs lists registered experiment IDs.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	return out
}
