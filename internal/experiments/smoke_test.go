package experiments

import "testing"

func TestFig13Smoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	res, err := runFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	for _, m := range res.SortedMetrics() {
		t.Logf("%s = %v", m, res.Metrics[m])
	}
}

func TestFig14Smoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	res, err := runFig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
}

func TestMotivationSmoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"fig03a", "fig03b", "fig04", "fig05", "fig08"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.Render())
	}
}

func TestEfficiencySmoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"fig15", "fig16", "tab04", "fig17"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.Render())
	}
}

func TestAccuracySmoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"fig11", "fig12", "fig18", "fig19", "fig20", "acc-bench"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.Render())
	}
}

func TestCaseStudySmoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"fig21", "fig22", "tab05", "casestudy"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.Render())
	}
}

func TestAblationSmoke(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"ablation-control", "ablation-drop"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Log("\n" + res.Render())
	}
}

func TestHotswapAndPTWrite(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	e, err := ByID("ablation-hotswap")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	m := res.Metrics
	if !(m["exist_ops"] < m["hot_ops"] && m["hot_ops"] < m["cold_ops"]) {
		t.Fatalf("expected EXIST < hot < cold MSR ops: %v", m)
	}
	if m["hot_ops"]*2.5 > m["cold_ops"] {
		t.Fatalf("hot switching should cut per-swap ops substantially: %v", m)
	}
}
