package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// TestParallelDeterminism verifies the harness's core contract: a sweep
// experiment produces byte-identical tables and identical metrics whether
// its cells run serially or on many workers.
func TestParallelDeterminism(t *testing.T) {
	e, err := ByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(jobs int) *Result {
		res, err := e.Run(Config{Quick: true, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return res
	}
	serial := runWith(1)
	par := runWith(8)
	if got, want := par.Render(), serial.Render(); got != want {
		t.Errorf("rendered tables differ between jobs=1 and jobs=8:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if got, want := len(par.Metrics), len(serial.Metrics); got != want {
		t.Fatalf("metric count differs: jobs=8 has %d, jobs=1 has %d", got, want)
	}
	for name, want := range serial.Metrics {
		if got, ok := par.Metrics[name]; !ok || got != want {
			t.Errorf("metric %s: jobs=8 %v, jobs=1 %v", name, got, want)
		}
	}
}

// TestNodeParallelDeterminism pins the node-parallel path's contract: the
// resilience experiment — whose fault levels fan out across workers AND
// whose clusters advance per-node engines on goroutines when Jobs > 1 —
// must render byte-identically with exactly equal metrics for every
// combination of jobs and GOMAXPROCS. This is the property that lets CI
// diff parallel stdout against serial golden output.
func TestNodeParallelDeterminism(t *testing.T) {
	e, err := ByID("resilience")
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(jobs, procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := e.Run(Config{Quick: true, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d procs=%d: %v", jobs, procs, err)
		}
		return res
	}
	ref := runWith(1, 1)
	for _, tc := range []struct{ jobs, procs int }{
		{1, 4}, {4, 1}, {4, 4},
	} {
		t.Run(fmt.Sprintf("jobs=%d,procs=%d", tc.jobs, tc.procs), func(t *testing.T) {
			got := runWith(tc.jobs, tc.procs)
			if got.Render() != ref.Render() {
				t.Errorf("rendered output differs from jobs=1,procs=1:\n--- ref ---\n%s\n--- got ---\n%s",
					ref.Render(), got.Render())
			}
			if len(got.Metrics) != len(ref.Metrics) {
				t.Fatalf("metric count %d, want %d", len(got.Metrics), len(ref.Metrics))
			}
			for name, want := range ref.Metrics {
				if v, ok := got.Metrics[name]; !ok || v != want {
					t.Errorf("metric %s: got %v, want exactly %v", name, v, want)
				}
			}
		})
	}
}

// TestRunAllOrderAndErrors checks that RunAll returns reports in input
// order and isolates failures to their own report.
func TestRunAllOrderAndErrors(t *testing.T) {
	ids := []string{"fig11", "no-such-exp", "tab05"}
	reports := RunAll(Config{Quick: true, Seed: 1, Jobs: 4}, ids)
	if len(reports) != len(ids) {
		t.Fatalf("got %d reports, want %d", len(reports), len(ids))
	}
	for i, id := range ids {
		if reports[i].ID != id {
			t.Fatalf("report %d is %q, want %q", i, reports[i].ID, id)
		}
	}
	if reports[1].Err == nil {
		t.Error("unknown ID did not produce an error report")
	}
	for _, i := range []int{0, 2} {
		if reports[i].Err != nil {
			t.Errorf("%s failed: %v", reports[i].ID, reports[i].Err)
		}
		if reports[i].Result == nil {
			t.Errorf("%s has no result", reports[i].ID)
		}
	}
}

// TestRepeatedRunDeterminism runs a representative experiment subset twice
// on fresh engines with the same seed and requires byte-identical rendered
// output and identical metrics. This is the property that lets golden
// stdout diffs gate engine fast-path rewrites; fig14 covers walker-exact
// tracing, fig18 the analytic efficiency path, tab03 the tabular summary
// pipeline.
func TestRepeatedRunDeterminism(t *testing.T) {
	for _, id := range []string{"fig14", "fig18", "tab03"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func() *Result {
				res, err := e.Run(Config{Quick: true, Seed: 1, Jobs: 2})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			first := run()
			second := run()
			if got, want := second.Render(), first.Render(); got != want {
				t.Errorf("rendered output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", want, got)
			}
			if got, want := len(second.Metrics), len(first.Metrics); got != want {
				t.Fatalf("metric count differs: second run has %d, first has %d", got, want)
			}
			for name, want := range first.Metrics {
				if got, ok := second.Metrics[name]; !ok || got != want {
					t.Errorf("metric %s: second run %v, first run %v", name, got, want)
				}
			}
		})
	}
}
