package experiments

import (
	"fmt"
	"math"
	"sort"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/faults"
	"exist/internal/parallel"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "resilience",
		Title: "Resilience: graceful trace degradation under injected faults",
		Paper: "robustness extension: at 10% session loss every request terminates and >=80% land with (partial) coverage",
		Run:   runResilience,
	})
}

// resilienceRun is one cluster run's outcome at a given fault level.
type resilienceRun struct {
	requests  int
	terminal  int
	covered   int // terminal with at least one session landed
	degraded  int
	completed int
	coverage  float64 // mean CoverageFraction
	accuracy  float64 // decoded histogram vs fault-free reference
	resamples int64
	retries   int64
}

// runResilienceLevel runs the standard request mix against a cluster with
// the given fault config and scores it against ref (the fault-free
// decoded histogram; nil to just collect it).
func runResilienceLevel(cfg Config, fc faults.Config, ref map[string]float64) (resilienceRun, map[string]float64, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = cfg.Seed
	ccfg.Nodes = 8
	ccfg.CoresPerNode = 4
	ccfg.Jobs = parallel.Workers(cfg.Jobs)
	if cfg.Quick {
		ccfg.Nodes = 6
	}
	if fc != (faults.Config{}) {
		ccfg.Faults = faults.New(fc)
	}
	c := cluster.New(ccfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		return resilienceRun{}, nil, err
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: cfg.Seed + 5}); err != nil {
		return resilienceRun{}, nil, err
	}

	// A steady stream of requests alternating the two RCO purposes.
	// Profiling samples a subset of instances, leaving healthy spares the
	// re-sampler can recover onto; anomaly diagnosis traces every
	// instance, so a lost session has nowhere to go and the request must
	// degrade to partial coverage instead of failing.
	n := 20
	if cfg.Quick {
		n = 8
	}
	var reqs []*cluster.TraceRequest
	for i := 0; i < n; i++ {
		purpose := coverage.PurposeProfiling
		name := fmt.Sprintf("prof-%d", i)
		if i%2 == 1 {
			purpose = coverage.PurposeAnomaly
			name = fmt.Sprintf("diag-%d", i)
		}
		at := simtime.Time(i) * simtime.Time(500*simtime.Millisecond)
		c.Eng.Schedule(at, func(simtime.Time) {
			r, err := c.Request(name, cluster.TraceRequestSpec{
				App:     "Agent",
				Purpose: purpose,
				Period:  200 * simtime.Millisecond,
			})
			if err == nil {
				reqs = append(reqs, r)
			}
		})
	}
	// Generous horizon: deadlines guarantee termination well before it.
	c.Run(simtime.Time(n)*simtime.Time(500*simtime.Millisecond) + simtime.Time(15*simtime.Second))

	run := resilienceRun{requests: len(reqs)}
	var covSum float64
	for _, r := range reqs {
		if r.Phase.Terminal() {
			run.terminal++
		}
		if r.Phase.Terminal() && len(r.SessionKeys) > 0 {
			run.covered++
		}
		switch r.Phase {
		case cluster.PhaseDegraded:
			run.degraded++
		case cluster.PhaseCompleted:
			run.completed++
		}
		covSum += r.CoverageFraction()
	}
	if len(reqs) > 0 {
		run.coverage = covSum / float64(len(reqs))
	}
	run.resamples = c.Mgmt.Resamples
	run.retries = c.Mgmt.Retries

	hist := c.ODPS.AggregateApp("Agent")
	if ref == nil {
		run.accuracy = 1
	} else {
		run.accuracy = histMatch(ref, hist)
	}
	return run, hist, nil
}

// histMatch is the distribution-overlap accuracy of a decoded function
// histogram against a reference (string-keyed WeightMatch).
func histMatch(ref, got map[string]float64) float64 {
	// All accumulation walks sorted keys: float addition is not associative,
	// and map order would otherwise wobble the score's last ulp across runs.
	refKeys := sortedHistKeys(ref)
	gotKeys := sortedHistKeys(got)
	var refTotal, gotTotal float64
	for _, k := range refKeys {
		refTotal += ref[k]
	}
	for _, k := range gotKeys {
		gotTotal += got[k]
	}
	if refTotal == 0 && gotTotal == 0 {
		return 1
	}
	if refTotal == 0 || gotTotal == 0 {
		return 0
	}
	var err float64
	for _, k := range refKeys {
		err += math.Abs(ref[k]/refTotal - got[k]/gotTotal)
	}
	for _, k := range gotKeys {
		if _, ok := ref[k]; !ok {
			err += got[k] / gotTotal
		}
	}
	return (2 - err) / 2
}

// sortedHistKeys returns a histogram's keys in ascending order.
func sortedHistKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runResilience(cfg Config) (*Result, error) {
	res := &Result{ID: "resilience"}

	// Sweep 1: session-loss rate. The acceptance bar sits at 10%: every
	// request terminal, >=80% with coverage, accuracy falling smoothly.
	lossRates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	if cfg.Quick {
		lossRates = []float64{0, 0.10, 0.30}
	}
	t1 := &tabular.Table{
		Title: "Graceful degradation vs injected session-loss rate (corruption riding along at loss/2)",
		Header: []string{"loss rate", "terminal", "with coverage", "completed", "degraded",
			"mean coverage", "accuracy", "resamples"},
	}
	// The fault-free level runs first: its decoded histogram is the
	// accuracy reference every other level scores against. The faulted
	// levels (and the mixed-fault stress below) only depend on that
	// reference, so they fan out across the worker pool; results are
	// harvested in input order, keeping the output byte-identical to the
	// serial sweep.
	refRun, ref, err := runResilienceLevel(cfg, faults.Config{}, nil)
	if err != nil {
		return nil, err
	}
	levelCfgs := make([]faults.Config, 0, len(lossRates))
	for _, rate := range lossRates[1:] {
		levelCfgs = append(levelCfgs, faults.Config{
			Seed:            cfg.Seed + 77,
			SessionLossProb: rate,
			CorruptProb:     rate / 2,
			TruncateProb:    rate / 2,
		})
	}
	mixedFc := faults.Config{
		Seed:            cfg.Seed + 177,
		PutFailProb:     0.15,
		InsertFailProb:  0.15,
		SessionLossProb: 0.10,
		CorruptProb:     0.05,
		TruncateProb:    0.05,
		StallProb:       0.10,
		CrashMTBF:       4 * simtime.Second,
		CrashDowntime:   1 * simtime.Second,
	}
	levelCfgs = append(levelCfgs, mixedFc)
	faulted, err := parallel.MapErr(len(levelCfgs), cfg.Jobs, func(i int) (resilienceRun, error) {
		run, _, err := runResilienceLevel(cfg, levelCfgs[i], ref)
		return run, err
	})
	if err != nil {
		return nil, err
	}
	for li, rate := range lossRates {
		run := refRun
		if li > 0 {
			run = faulted[li-1]
		}
		t1.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d/%d", run.terminal, run.requests),
			fmt.Sprintf("%d/%d", run.covered, run.requests),
			fmt.Sprintf("%d", run.completed),
			fmt.Sprintf("%d", run.degraded),
			fmt.Sprintf("%.2f", run.coverage),
			fmt.Sprintf("%.3f", run.accuracy),
			fmt.Sprintf("%d", run.resamples),
		)
		tag := fmt.Sprintf("loss%.0f", rate*100)
		res.Metric("terminal_frac_"+tag, frac(run.terminal, run.requests))
		res.Metric("covered_frac_"+tag, frac(run.covered, run.requests))
		res.Metric("accuracy_"+tag, run.accuracy)
		res.Metric("coverage_"+tag, run.coverage)
	}
	t1.Notes = append(t1.Notes,
		"accuracy: decoded function-histogram overlap vs the fault-free run",
		"acceptance: at 10% loss all requests terminal, >=80% with coverage, accuracy degrades smoothly")
	res.Tables = append(res.Tables, t1)

	// Sweep 2: the full fault soup — crashes, store errors, stalls — to
	// show the control plane machinery (leases, retries, deadlines)
	// holding the line rather than a single fault type. It already ran as
	// the last fanned-out level above.
	run := faulted[len(faulted)-1]
	t2 := &tabular.Table{
		Title:  "Mixed-fault stress (crashes + store errors + stalls + 10% loss): control-plane counters",
		Header: []string{"counter", "value"},
	}
	t2.AddRow("requests terminal", fmt.Sprintf("%d/%d", run.terminal, run.requests))
	t2.AddRow("requests with coverage", fmt.Sprintf("%d/%d", run.covered, run.requests))
	t2.AddRow("mean coverage fraction", fmt.Sprintf("%.2f", run.coverage))
	t2.AddRow("decoded accuracy", fmt.Sprintf("%.3f", run.accuracy))
	t2.AddRow("store retries", fmt.Sprintf("%d", run.retries))
	t2.AddRow("sessions re-sampled", fmt.Sprintf("%d", run.resamples))
	t2.Notes = append(t2.Notes,
		"every fault decision is seeded and keyed by stable identifiers: reruns inject the identical schedule")
	res.Tables = append(res.Tables, t2)
	res.Metric("terminal_frac_mixed", frac(run.terminal, run.requests))
	res.Metric("covered_frac_mixed", frac(run.covered, run.requests))
	res.Metric("retries_mixed", float64(run.retries))
	return res, nil
}

// frac returns a/b as a fraction (0 when b is 0).
func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
