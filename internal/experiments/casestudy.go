package experiments

import (
	"fmt"
	"sort"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/decode"
	"exist/internal/ipt"
	"exist/internal/kernel"
	"exist/internal/memalloc"
	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/trace"
	"exist/internal/workload"
	"exist/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "fig21",
		Title: "Figure 21: costly-function profiles of typical applications (case study)",
		Paper: "ML-based apps differ from traditional ones, e.g. Recommend is KERNEL_IRQ- and mutex-heavy",
		Run:   runFig21,
	})
	register(Experiment{
		ID:    "fig22",
		Title: "Figure 22: memory-access width analysis (case study)",
		Paper: "ML-based apps show 25-70% quad-width (8-byte) accesses",
		Run:   runFig22,
	})
	register(Experiment{
		ID:    "tab05",
		Title: "Table 5: functionality comparison with other tracing tools",
		Paper: "EXIST uniquely combines instruction/user tracing, no intrusion, continuity, and usability",
		Run:   runTab05,
	})
	register(Experiment{
		ID:    "casestudy",
		Title: "Section 5.4: diagnosing a blocking synchronous-logging anomaly with EXIST",
		Paper: "a file_write consuming seconds blocks co-located threads on a logging mutex",
		Run:   runCaseStudy,
	})
}

// caseStudyDecode traces one case-study app with EXIST and decodes it.
func caseStudyDecode(cfg Config, p workload.Profile, seed uint64) (*decode.Result, *binary.Program, error) {
	prog := p.Synthesize(cfg.Seed ^ 0xCA5E)
	period := durQuick(cfg, 200*simtime.Millisecond, 500*simtime.Millisecond)
	sess, err := traceWindow(cfg, p, prog, period, 0, seed, false, 100*simtime.Millisecond)
	if err != nil {
		return nil, nil, err
	}
	return decode.Decode(sess, prog), prog, nil
}

// categoryGroups defines the three panels of Figure 21.
var categoryGroups = []struct {
	name string
	cats []binary.FuncCategory
}{
	{"Memory Operations", []binary.FuncCategory{
		binary.CatMemJE, binary.CatMemTC, binary.CatMemAlloc, binary.CatMemFree,
		binary.CatMemCopy, binary.CatMemSet, binary.CatMemCmp, binary.CatMemMove}},
	{"Synchronizations", []binary.FuncCategory{
		binary.CatSyncAtomic, binary.CatSyncSpinlock, binary.CatSyncMutex, binary.CatSyncCAS}},
	{"Kernel Operations", []binary.FuncCategory{
		binary.CatKernelSche, binary.CatKernelIRQ, binary.CatKernelNet}},
}

func runFig21(cfg Config) (*Result, error) {
	apps := workload.CaseStudyApps()
	res := &Result{ID: "fig21"}
	decoded, err := parallel.MapErr(len(apps), cfg.Jobs, func(ai int) (*decode.Result, error) {
		rec, _, err := caseStudyDecode(cfg, apps[ai], uint64(2100+ai*7))
		return rec, err
	})
	if err != nil {
		return nil, err
	}
	results := make(map[string]*decode.Result, len(apps))
	for ai, app := range apps {
		results[app.Name] = decoded[ai]
	}
	for _, group := range categoryGroups {
		t := &tabular.Table{
			Title:  "Figure 21 (" + group.name + "): share of costly leaf-function hits",
			Header: append([]string{"app"}, catNames(group.cats)...),
		}
		for _, app := range apps {
			rec := results[app.Name]
			var total int64
			for _, c := range group.cats {
				total += rec.CatHits[c]
			}
			row := []string{app.Name}
			for _, c := range group.cats {
				frac := 0.0
				if total > 0 {
					frac = float64(rec.CatHits[c]) / float64(total)
				}
				row = append(row, fmt.Sprintf("%.0f%%", frac*100))
			}
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	// Headline check: Recommend is IRQ-heavy among kernel operations.
	rec := results["Recommend"]
	kernTotal := rec.CatHits[binary.CatKernelSche] + rec.CatHits[binary.CatKernelIRQ] + rec.CatHits[binary.CatKernelNet]
	if kernTotal > 0 {
		res.Metric("recommend_irq_share", float64(rec.CatHits[binary.CatKernelIRQ])/float64(kernTotal))
	}
	res.Tables[len(res.Tables)-1].Notes = append(res.Tables[len(res.Tables)-1].Notes,
		"paper: heavily multi-threaded Recommend shows rescheduling interrupts followed by mutex synchronization")
	return res, nil
}

func catNames(cats []binary.FuncCategory) []string {
	out := make([]string, 0, len(cats))
	for _, c := range cats {
		out = append(out, c.String())
	}
	return out
}

func runFig22(cfg Config) (*Result, error) {
	apps := workload.CaseStudyApps()
	res := &Result{ID: "fig22"}
	// One trace+decode per app, shared by every memory-class panel (the
	// per-app seed never depended on the class).
	decoded, err := parallel.MapErr(len(apps), cfg.Jobs, func(ai int) (*decode.Result, error) {
		rec, _, err := caseStudyDecode(cfg, apps[ai], uint64(2200+ai*7))
		return rec, err
	})
	if err != nil {
		return nil, err
	}
	for cls := 0; cls < binary.NumMemClasses; cls++ {
		t := &tabular.Table{
			Title:  fmt.Sprintf("Figure 22 (%s): access width distribution", binary.MemClass(cls)),
			Header: []string{"app", "1B", "2B", "4B", "8B"},
		}
		for ai, app := range apps {
			rec := decoded[ai]
			var total int64
			for w := 0; w < 4; w++ {
				total += rec.MemOps[cls][w]
			}
			row := []string{app.Name}
			for w := 0; w < 4; w++ {
				frac := 0.0
				if total > 0 {
					frac = float64(rec.MemOps[cls][w]) / float64(total)
				}
				row = append(row, fmt.Sprintf("%.0f%%", frac*100))
			}
			t.AddRow(row...)
			if cls == int(binary.MemReadOnly) && total > 0 {
				res.Metric("ro8_"+app.Name, float64(rec.MemOps[cls][3])/float64(total))
			}
		}
		if cls == binary.NumMemClasses-1 {
			t.Notes = append(t.Notes,
				"paper: ML-based applications (Prediction/Matching/Recommend) have significantly more 8-byte accesses")
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

func runTab05(cfg Config) (*Result, error) {
	res := &Result{ID: "tab05"}
	t := &tabular.Table{
		Title:  "Table 5: functionality comparison with other tracing tools",
		Header: []string{"property", "eBPF", "dTrace", "sTrace", "Hubble[68]", "Argus[88]", "EXIST"},
	}
	rows := [][]string{
		{"InstTrace", "yes", "yes", "no", "yes", "no", "yes"},
		{"UserTrace", "no", "yes", "no", "yes", "yes", "yes"},
		{"NoIntrusion", "yes", "no", "yes", "no", "no", "yes"},
		{"Continuity", "no", "no", "no", "yes", "yes", "yes"},
		{"Usability", "no", "no", "yes", "yes", "yes", "yes"},
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"EXIST captures user-level instruction-granularity traces continuously, with no binary intrusion")
	res.Tables = append(res.Tables, t)
	res.Metric("properties_all_yes", 5)
	return res, nil
}

// runCaseStudy reproduces the §5.4 anomaly diagnosis: a Recommend worker
// whose logging thread writes logs synchronously and blocks on disk for
// seconds, stalling sibling threads on the logging mutex. EXIST's bounded
// window plus the five-tuple sidecar exposes the chronology that metrics
// alone cannot explain.
func runCaseStudy(cfg Config) (*Result, error) {
	rec := workload.CaseStudyApps()[4] // Recommend
	prog := rec.Synthesize(cfg.Seed ^ 0xD1A6)

	// This node's log disk is degraded: synchronous writes stall for
	// ~300 ms (the paper's incident saw 3.7 s — longer than any tracing
	// window; a shorter stall lets several blocking episodes fall inside
	// one window so the trace itself shows the pattern).
	tbl := kernel.DefaultSyscallTable()
	tbl[kernel.SysFileWriteSlow].BlockMean = 280 * simtime.Millisecond
	rt := node.Provision(node.Spec{
		Cores:     8,
		Timeslice: 500 * simtime.Microsecond,
		Seed:      cfg.Seed ^ 0x5417,
		Syscalls:  tbl,
		Workload:  rec,
		Threads:   4,
		Walker:    true,
		Scale:     trace.SpaceScale,
		Prog:      prog,
	})
	m, proc := rt.Machine, rt.Proc

	// The culprit: a synchronous logging thread in the same process. Its
	// writes block on disk for hundreds of milliseconds; siblings then
	// pile up on the logging mutex (futex-heavy behaviour).
	logWeights := make([]float64, int(kernel.NumSyscallClasses))
	logWeights[kernel.SysFileWriteSlow] = 1
	// The logger executes the same (scaled) binary as its siblings; its
	// distinguishing behaviour is the paced synchronous write.
	// The logger spawns before housekeeping so thread IDs (and thus the
	// scheduler's realization) match the original hand-built sequence.
	logger := sched.NewWalkerExec(prog, xrand.Split(m.Cfg.Seed, "logger"), m.Cfg.Cost, trace.SpaceScale).
		WithPacing(110*simtime.Millisecond, logWeights)
	logThread := m.SpawnThread(proc, logger)
	node.AddHousekeeping(m, m.Cfg.Seed+91)
	// Data-flow extension (§6.1): syscall classes enter the trace stream
	// as PTWRITE operands, so the blocking call is identifiable from the
	// trace itself rather than from external instrumentation.
	m.EmitPTWrites = true

	// Per-thread syscall tally — the analysis input EXIST's decoded
	// traces plus sidecar provide in production.
	type tally struct{ counts map[kernel.SyscallClass]int64 }
	tallies := map[int]*tally{}
	m.SyscallHooks = append(m.SyscallHooks, func(ev sched.SyscallEvent) simtime.Duration {
		if ev.Thread.Proc == proc {
			tl := tallies[ev.Thread.TID]
			if tl == nil {
				tl = &tally{counts: map[kernel.SyscallClass]int64{}}
				tallies[ev.Thread.TID] = tl
			}
			tl.counts[ev.Class]++
		}
		return 0
	})

	// EXIST is triggered on demand when abnormal metrics are detected
	// (§3.1): the first long blocking write produces the response-time
	// spike, monitoring flags it, and the tracing window opens while the
	// anomaly is still unfolding.
	ctrl := rt.Controller()
	ccfg := core.DefaultConfig()
	ccfg.Period = durQuick(cfg, 600*simtime.Millisecond, 1500*simtime.Millisecond)
	ccfg.Scale = trace.SpaceScale
	ccfg.Ctl = ipt.DefaultCtl() | ipt.CtlPTWEn
	// Anomaly diagnosis traces all involved entities (§3.4): no core
	// sampling, so the mostly-idle logging thread's core is covered too —
	// and the full 1 GB node budget.
	ccfg.Mem = memalloc.Config{Budget: 1 << 30, PerCoreMin: 4 << 20, PerCoreMax: 128 << 20, SampleRatio: 1}
	ccfg.Seed = m.Cfg.Seed
	var sess *core.Session
	var traceErr error
	triggered := false
	m.SyscallHooks = append(m.SyscallHooks, func(ev sched.SyscallEvent) simtime.Duration {
		if triggered || ev.Thread != logThread || ev.Class != kernel.SysFileWriteSlow {
			return 0
		}
		triggered = true
		// Metrics pipelines take tens of milliseconds to flag the spike.
		m.Eng.After(20*simtime.Millisecond, func(simtime.Time) {
			sess, traceErr = ctrl.Trace(proc, ccfg)
		})
		return 0
	})
	m.Run(4 * simtime.Second)
	if traceErr != nil {
		return nil, traceErr
	}
	if sess == nil {
		return nil, fmt.Errorf("casestudy: anomaly never triggered")
	}
	sres, err := sess.Result()
	if err != nil {
		return nil, err
	}

	// Diagnosis from the five-tuple sidecar: the largest scheduled-out
	// gap per thread inside the window.
	type gap struct {
		tid  int32
		dur  simtime.Duration
		from simtime.Time
	}
	lastOut := map[int32]simtime.Time{}
	maxGap := map[int32]gap{}
	records := append([]kernel.SwitchRecord(nil), sres.Switches.Records...)
	sort.Slice(records, func(i, j int) bool { return records[i].TS < records[j].TS })
	for _, r := range records {
		switch r.Op {
		case kernel.OpOut:
			lastOut[r.TID] = r.TS
		case kernel.OpIn:
			if out, ok := lastOut[r.TID]; ok {
				if d := r.TS - out; d > maxGap[r.TID].dur {
					maxGap[r.TID] = gap{tid: r.TID, dur: d, from: out}
				}
				delete(lastOut, r.TID)
			}
		}
	}
	// A thread that scheduled out and never returned is still stuck when
	// the window closes — the strongest anomaly signal (the paper's
	// blocking write lasted 3.7 s, far beyond any window).
	for tid, out := range lastOut {
		if d := sres.End - out; d > maxGap[tid].dur {
			maxGap[tid] = gap{tid: tid, dur: d, from: out}
		}
	}
	// A target thread with no sidecar records at all was blocked for the
	// entire window — it left the CPU before tracing started and never
	// came back (the paper's 3.7 s write dwarfs any window).
	seen := map[int32]bool{}
	for _, r := range records {
		seen[r.TID] = true
	}
	for _, th := range proc.Threads {
		if !seen[int32(th.TID)] {
			maxGap[int32(th.TID)] = gap{tid: int32(th.TID), dur: sres.End - sres.Start, from: sres.Start}
		}
	}
	var culprit gap
	for _, g := range maxGap {
		if g.dur > culprit.dur {
			culprit = g
		}
	}

	// Decoded PTWRITE operands attribute the blocking syscall to the
	// culprit thread directly from the trace.
	rec2 := decode.Decode(sres, prog)
	var culpritSlowWrites, anySlowWrites int64
	for _, ptw := range rec2.PTWrites {
		if kernel.SyscallClass(ptw.Val) == kernel.SysFileWriteSlow {
			anySlowWrites++
			if ptw.TID == culprit.tid {
				culpritSlowWrites++
			}
		}
	}
	_ = anySlowWrites

	res := &Result{ID: "casestudy"}
	t := &tabular.Table{
		Title:  "Section 5.4 case study: diagnosing the Recommend anomaly with EXIST",
		Header: []string{"evidence", "finding"},
	}
	t.AddRow("traced window", fmt.Sprintf("%v starting at %v", sres.Duration(), sres.Start))
	t.AddRow("five-tuple records", fmt.Sprintf("%d", len(records)))
	t.AddRow("largest scheduled-out gap", fmt.Sprintf("thread %d blocked %v (from %v)",
		culprit.tid, culprit.dur, culprit.from))
	if tl := tallies[int(culprit.tid)]; tl != nil {
		t.AddRow("blocking syscall", fmt.Sprintf("%s x%d",
			m.Syscall(kernel.SysFileWriteSlow).Name, tl.counts[kernel.SysFileWriteSlow]))
	}
	if culpritSlowWrites > 0 {
		t.AddRow("PTWRITE evidence in trace", fmt.Sprintf("%d sync-log writes attributed to thread %d",
			culpritSlowWrites, culprit.tid))
	} else {
		t.AddRow("PTWRITE evidence in trace",
			"none in-window: the blocking write outlives the whole window (as the paper's 3.7 s write would)")
	}
	var futexers int
	for tid, tl := range tallies {
		if tid != int(culprit.tid) && tl.counts[kernel.SysFutex] > 0 {
			futexers++
		}
	}
	t.AddRow("sibling threads waiting on the logging mutex", fmt.Sprintf("%d (futex activity)", futexers))
	t.AddRow("diagnosis", "synchronous logging blocks on disk I/O and serializes co-located threads")
	t.AddRow("remediation", "isolate the log disk or make logging asynchronous")
	t.Notes = append(t.Notes,
		"paper: a file_write consuming 3.7 s plus mutex-wait syscalls explained the response-time and thread-count anomaly")

	isLogger := culprit.tid == int32(logThread.TID)
	res.Metric("culprit_is_logger", boolMetric(isLogger))
	res.Metric("ptw_evidence", float64(culpritSlowWrites))
	res.Metric("ptw_any", float64(anySlowWrites))
	res.Metric("ptw_total", float64(len(rec2.PTWrites)))
	res.Metric("culprit_gap_ms", culprit.dur.Millis())
	res.Tables = append(res.Tables, t)
	return res, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
