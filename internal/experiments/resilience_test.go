package experiments

import "testing"

// TestResilienceAcceptance pins the robustness acceptance bar: at a 10%
// injected session-loss rate every TraceRequest reaches a terminal phase,
// at least 80% of requests land with (possibly partial) coverage, and
// decoded accuracy falls smoothly with the fault rate rather than
// collapsing.
func TestResilienceAcceptance(t *testing.T) {
	e, err := ByID("resilience")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())

	m := res.Metrics
	if m["terminal_frac_loss10"] != 1 {
		t.Errorf("terminal fraction at 10%% loss = %v, want 1 (no hangs)", m["terminal_frac_loss10"])
	}
	if m["covered_frac_loss10"] < 0.8 {
		t.Errorf("covered fraction at 10%% loss = %v, want >= 0.8", m["covered_frac_loss10"])
	}
	if m["terminal_frac_mixed"] != 1 {
		t.Errorf("terminal fraction under mixed faults = %v, want 1", m["terminal_frac_mixed"])
	}
	// Smooth degradation: accuracy ordered with fault rate, no cliff.
	a0, a10, a30 := m["accuracy_loss0"], m["accuracy_loss10"], m["accuracy_loss30"]
	if a0 < 0.999 {
		t.Errorf("fault-free accuracy = %v", a0)
	}
	const tol = 0.03
	if a10 > a0+tol || a30 > a10+tol {
		t.Errorf("accuracy not degrading with fault rate: %v / %v / %v", a0, a10, a30)
	}
	if a30 < 0.5 {
		t.Errorf("accuracy collapsed at 30%% loss: %v", a30)
	}
	// Coverage shrinks as losses exceed what re-sampling can recover.
	if m["coverage_loss30"] >= m["coverage_loss0"] {
		t.Errorf("coverage did not degrade: %v vs %v", m["coverage_loss30"], m["coverage_loss0"])
	}
}
