package experiments

import (
	"fmt"

	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/simtime"
	"exist/internal/workload"
)

// SchemeKind selects a tracing scheme in comparison sweeps. It is a thin
// view over the tracer registry: Backend returns the registered name the
// node runtime instantiates, so adding a backend means registering it in
// package tracer and listing it here.
type SchemeKind int

// The comparison schemes of Table 2.
const (
	SchemeOracle SchemeKind = iota
	SchemeEXIST
	SchemeStaSam
	SchemeEBPF
	SchemeNHT
)

// String returns the table name.
func (k SchemeKind) String() string {
	switch k {
	case SchemeOracle:
		return "Oracle"
	case SchemeEXIST:
		return "EXIST"
	case SchemeStaSam:
		return "StaSam"
	case SchemeEBPF:
		return "eBPF"
	case SchemeNHT:
		return "NHT"
	default:
		return "?"
	}
}

// Backend returns the tracer-registry name the scheme resolves to.
func (k SchemeKind) Backend() string { return k.String() }

// ComparisonSchemes is the standard sweep order.
var ComparisonSchemes = []SchemeKind{SchemeOracle, SchemeEXIST, SchemeStaSam, SchemeEBPF, SchemeNHT}

// measure runs one workload under one scheme on the standard measurement
// substrate: spec.Seed is the per-run perturbation (folded into cfg.Seed
// here), the timeslice is fixed at 1 ms so round-robin quantization stays
// well below the per-mille effects being measured, and node supplies the
// 8-core / 2 s defaults.
//
// The machine seed must NOT depend on the scheme: overhead comparisons
// are paired, so every scheme must see the identical workload realization
// (same syscall draws, same block durations). Per-thread RNG streams make
// the realization robust to the small timing shifts the schemes
// themselves introduce.
func measure(cfg Config, p workload.Profile, scheme SchemeKind, spec node.Spec) (node.Result, error) {
	spec.Workload = p
	spec.Backend = scheme.Backend()
	spec.Seed = cfg.Seed ^ spec.Seed
	spec.Timeslice = 1 * simtime.Millisecond
	return node.Run(spec)
}

// coRunners pairs co-located profiles with optional core pins under the
// measurement convention's seed offsets: the i-th co-runner installs at
// machine seed + 101·i.
func coRunners(ps []workload.Profile, cores [][]int) []node.CoRunner {
	out := make([]node.CoRunner, len(ps))
	for i, p := range ps {
		out[i] = node.CoRunner{Profile: p, SeedOffset: uint64(i) * 101}
		if cores != nil && i < len(cores) {
			out[i].Cores = cores[i]
		}
	}
	return out
}

// sweepSchemes runs a workload under every comparison scheme with a shared
// spec and returns results indexed by scheme. Schemes run concurrently
// (each cell builds its own machine; seeds never depend on run order).
func sweepSchemes(cfg Config, p workload.Profile, spec node.Spec) (map[SchemeKind]node.Result, error) {
	results, err := parallel.MapErr(len(ComparisonSchemes), cfg.Jobs, func(i int) (node.Result, error) {
		s := ComparisonSchemes[i]
		r, err := measure(cfg, p, s, spec)
		if err != nil {
			return r, fmt.Errorf("%s under %s: %w", p.Name, s, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[SchemeKind]node.Result, len(ComparisonSchemes))
	for i, s := range ComparisonSchemes {
		out[s] = results[i]
	}
	return out, nil
}

// durQuick picks a duration based on Quick mode.
func durQuick(cfg Config, quick, full simtime.Duration) simtime.Duration {
	if cfg.Quick {
		return quick
	}
	return full
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// ratio formats an improvement factor.
func ratio(v float64) string { return fmt.Sprintf("%.1fx", v) }
