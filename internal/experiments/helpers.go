package experiments

import (
	"fmt"

	"exist/internal/baselines"
	"exist/internal/core"
	"exist/internal/memalloc"
	"exist/internal/parallel"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/trace"
	"exist/internal/workload"
)

// SchemeKind selects a tracing scheme in comparison sweeps.
type SchemeKind int

// The comparison schemes of Table 2.
const (
	SchemeOracle SchemeKind = iota
	SchemeEXIST
	SchemeStaSam
	SchemeEBPF
	SchemeNHT
)

// String returns the table name.
func (k SchemeKind) String() string {
	switch k {
	case SchemeOracle:
		return "Oracle"
	case SchemeEXIST:
		return "EXIST"
	case SchemeStaSam:
		return "StaSam"
	case SchemeEBPF:
		return "eBPF"
	case SchemeNHT:
		return "NHT"
	default:
		return "?"
	}
}

// ComparisonSchemes is the standard sweep order.
var ComparisonSchemes = []SchemeKind{SchemeOracle, SchemeEXIST, SchemeStaSam, SchemeEBPF, SchemeNHT}

// nodeOpts parameterizes one node-level measurement run.
type nodeOpts struct {
	// Cores sizes the machine.
	Cores int
	// HT enables hyperthread pairing.
	HT bool
	// Dur is the measured window.
	Dur simtime.Duration
	// CoRunners are co-located workloads sharing the machine.
	CoRunners []workload.Profile
	// CoRunnerCores optionally pins co-runners (nil: share all cores).
	CoRunnerCores [][]int
	// TargetCores optionally pins the target (nil: profile default).
	TargetCores []int
	// Walker selects branch-exact execution at Scale.
	Walker bool
	Scale  float64
	// MemBudget bounds EXIST's buffers (0: a compact default that keeps
	// efficiency runs cheap; space experiments pass the paper's 500 MB).
	MemBudget int64
	// Threads overrides the profile thread count (0: profile default).
	Threads int
	// Seed perturbs the run.
	Seed uint64
	// KeepSession asks for the EXIST session payload.
	KeepSession bool
	// CollectSwitchPeriods enables Figure 8 sampling.
	CollectSwitchPeriods bool
}

// nodeResult is one run's measurements.
type nodeResult struct {
	Machine  *sched.Machine
	Proc     *sched.Process
	Stats    sched.ThreadStats
	CPI      float64
	UtilFrac float64
	SpaceMB  float64
	MSROps   int64
	Session  *trace.Session
	EXIST    *core.Session
	NHT      *baselines.NHT
}

// Overhead returns the fractional cycle-throughput loss vs a baseline run.
func (r nodeResult) Overhead(base nodeResult) float64 {
	if r.Stats.Cycles == 0 {
		return 0
	}
	return float64(base.Stats.Cycles)/float64(r.Stats.Cycles) - 1
}

// Inflation returns the service-time inflation vs a baseline run: the
// on-CPU wall time (user + charged kernel) per unit of retired work. For
// I/O-heavy services this is the right overhead metric — blocking slack
// hides tracing costs from raw cycle throughput, but every request still
// takes proportionally longer on-CPU, which is what queueing amplifies.
func (r nodeResult) Inflation(base nodeResult) float64 {
	per := func(x nodeResult) float64 {
		if x.Stats.Cycles == 0 {
			return 0
		}
		return float64(x.Stats.CPUTime+x.Stats.KernelTime) / float64(x.Stats.Cycles)
	}
	b := per(base)
	if b == 0 {
		return 0
	}
	return per(r)/b - 1
}

// runNode executes one workload under one scheme and measures it.
func runNode(cfg Config, p workload.Profile, scheme SchemeKind, opts nodeOpts) (nodeResult, error) {
	if opts.Cores == 0 {
		opts.Cores = 8
	}
	if opts.Dur == 0 {
		opts.Dur = 2 * simtime.Second
	}
	mcfg := sched.DefaultConfig()
	mcfg.Cores = opts.Cores
	mcfg.HTSiblings = opts.HT
	// The seed must NOT depend on the scheme: overhead comparisons are
	// paired, so every scheme must see the identical workload realization
	// (same syscall draws, same block durations). Per-thread RNG streams
	// make the realization robust to the small timing shifts the schemes
	// themselves introduce.
	mcfg.Seed = cfg.Seed ^ opts.Seed
	mcfg.CollectSwitchPeriods = opts.CollectSwitchPeriods
	// A fine timeslice keeps round-robin quantization well below the
	// per-mille effects being measured.
	mcfg.Timeslice = 1 * simtime.Millisecond
	m := sched.NewMachine(mcfg)

	install := workload.InstallOpts{
		Walker:  opts.Walker,
		Scale:   opts.Scale,
		Allowed: opts.TargetCores,
		Seed:    mcfg.Seed,
	}
	tp := p
	if opts.Threads > 0 {
		tp.Threads = opts.Threads
	}
	target := tp.Install(m, install)
	for i, co := range opts.CoRunners {
		coOpt := workload.InstallOpts{Seed: mcfg.Seed + uint64(i)*101}
		if opts.CoRunnerCores != nil && i < len(opts.CoRunnerCores) {
			coOpt.Allowed = opts.CoRunnerCores[i]
		}
		co.Install(m, coOpt)
	}

	res := nodeResult{Machine: m, Proc: target}
	scale := 1.0
	if opts.Walker {
		scale = opts.Scale
		if scale <= 0 {
			scale = 1e-4
		}
	}

	var existSess *core.Session
	var schemeImpl baselines.Scheme
	switch scheme {
	case SchemeOracle:
	case SchemeEXIST:
		ctrl := core.NewController(m)
		c := core.DefaultConfig()
		c.Period = opts.Dur // "tracing systems turned on for the entire experiments"
		c.Scale = scale
		c.Seed = mcfg.Seed
		if opts.MemBudget > 0 {
			c.Mem = memalloc.Config{Budget: opts.MemBudget, PerCoreMin: 4 << 20, PerCoreMax: 128 << 20}
		} else if !opts.Walker {
			// Full-rate analytic runs fill buffers fast; cap the memory
			// the measurement itself allocates unless space is the point.
			c.Mem = memalloc.Config{Budget: 64 << 20, PerCoreMin: 2 << 20, PerCoreMax: 16 << 20}
		}
		s, err := ctrl.Trace(target, c)
		if err != nil {
			return res, fmt.Errorf("EXIST trace: %w", err)
		}
		existSess = s
	case SchemeStaSam:
		schemeImpl = baselines.NewStaSam()
	case SchemeEBPF:
		schemeImpl = baselines.NewEBPF()
	case SchemeNHT:
		n := baselines.NewNHT(scale)
		res.NHT = n
		schemeImpl = n
	}
	if schemeImpl != nil {
		if err := schemeImpl.Attach(m, target); err != nil {
			return res, fmt.Errorf("%s attach: %w", schemeImpl.Name(), err)
		}
	}

	m.Run(opts.Dur)
	if schemeImpl != nil {
		schemeImpl.Stop(m.Eng.Now())
		res.SpaceMB = schemeImpl.SpaceMB()
	}
	if existSess != nil {
		sess, err := existSess.Result()
		if err != nil {
			return res, fmt.Errorf("EXIST result: %w", err)
		}
		res.EXIST = existSess
		res.SpaceMB = sess.SpaceMB()
		res.MSROps = existSess.Stats.MSROps
		if opts.KeepSession {
			res.Session = sess
		}
	}
	if res.NHT != nil {
		res.MSROps = res.NHT.MSROps()
		if opts.KeepSession {
			res.Session = res.NHT.Session(p.Name)
		}
	}

	res.Stats = target.Stats()
	res.CPI = target.CPI(m.Cfg.Cost)
	capacity := float64(opts.Dur) * float64(opts.Cores)
	res.UtilFrac = (float64(m.TotalBusyNS()) + float64(m.TotalKernelNS())) / capacity
	return res, nil
}

// sweepSchemes runs a workload under every comparison scheme with shared
// options and returns results indexed by scheme. Schemes run concurrently
// (each runNode builds its own machine; seeds never depend on run order).
func sweepSchemes(cfg Config, p workload.Profile, opts nodeOpts) (map[SchemeKind]nodeResult, error) {
	results, err := parallel.MapErr(len(ComparisonSchemes), cfg.Jobs, func(i int) (nodeResult, error) {
		s := ComparisonSchemes[i]
		r, err := runNode(cfg, p, s, opts)
		if err != nil {
			return r, fmt.Errorf("%s under %s: %w", p.Name, s, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[SchemeKind]nodeResult, len(ComparisonSchemes))
	for i, s := range ComparisonSchemes {
		out[s] = results[i]
	}
	return out, nil
}

// durQuick picks a duration based on Quick mode.
func durQuick(cfg Config, quick, full simtime.Duration) simtime.Duration {
	if cfg.Quick {
		return quick
	}
	return full
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// ratio formats an improvement factor.
func ratio(v float64) string { return fmt.Sprintf("%.1fx", v) }
