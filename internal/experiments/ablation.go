package experiments

import (
	"fmt"

	"exist/internal/binary"
	"exist/internal/core"
	"exist/internal/decode"
	"exist/internal/memalloc"
	"exist/internal/metrics"
	"exist/internal/node"
	"exist/internal/sched"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/trace"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation-control",
		Title: "Ablation: O(#cores) control (OTC) vs conventional per-thread buffer control",
		Paper: "design claim of §3.2: control operations drop from O(#switches) to O(#cores)",
		Run:   runAblationControl,
	})
	register(Experiment{
		ID:    "ablation-hotswap",
		Title: "Ablation: hypothetical hot-switching hardware (§6.1) under per-thread control",
		Paper: "discussion claim: hot switching would allow cheaper software-friendly abstractions",
		Run:   runAblationHotswap,
	})
	register(Experiment{
		ID:    "ablation-drop",
		Title: "Ablation: compulsory drop (ToPA STOP) vs conventional ring buffer",
		Paper: "design claim of §3.3: STOP keeps the data nearest the anomaly trigger",
		Run:   runAblationDrop,
	})
}

func runAblationControl(cfg Config) (*Result, error) {
	mc, err := workload.ByName("mc")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)

	run := func(mode core.BufferMode, hot bool) (ops, swaps, switches int64, cycles int64, err error) {
		rt := node.Provision(node.Spec{
			Cores:     8,
			Timeslice: 1 * simtime.Millisecond,
			Seed:      cfg.Seed ^ 0xAB1,
			Workload:  mc,
		})
		m, proc := rt.Machine, rt.Proc
		ctrl := rt.Controller()
		ccfg := core.DefaultConfig()
		ccfg.Period = dur
		ccfg.Buffers = mode
		ccfg.HotSwap = hot
		ccfg.Seed = m.Cfg.Seed
		ccfg.Mem = memalloc.Config{Budget: 64 << 20, PerCoreMin: 2 << 20, PerCoreMax: 16 << 20}
		sess, err := ctrl.Trace(proc, ccfg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		m.Run(dur + 10*simtime.Millisecond)
		return sess.Stats.MSROps, sess.Stats.BufferSwaps, m.Stats.Switches, proc.Stats().Cycles, nil
	}

	perCoreOps, _, sw1, cyc1, err := run(core.PerCore, false)
	if err != nil {
		return nil, err
	}
	perThreadOps, swaps, sw2, cyc2, err := run(core.PerThread, false)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "ablation-control"}
	t := &tabular.Table{
		Title:  "Ablation: control operations under per-core (OTC) vs per-thread buffers",
		Header: []string{"mode", "MSR ops", "buffer swaps", "context switches", "workload cycles"},
	}
	t.AddRowf("per-core (EXIST)", perCoreOps, int64(0), sw1, cyc1)
	t.AddRowf("per-thread (conventional)", perThreadOps, swaps, sw2, cyc2)
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-thread control issues %.0fx the MSR operations", float64(perThreadOps)/float64(max64(perCoreOps, 1))),
		"the paper's CDF (Figure 8) makes the same point: most entities switch within 1 ms, so per-switch control is ~1000x per-second control")
	res.Metric("msr_ops_per_core_mode", float64(perCoreOps))
	res.Metric("msr_ops_per_thread_mode", float64(perThreadOps))
	res.Metric("throughput_penalty", float64(cyc1)/float64(max64(cyc2, 1))-1)
	res.Tables = append(res.Tables, t)
	return res, nil
}

// runAblationHotswap quantifies the §6.1 hot-switching what-if: how much
// of the conventional per-thread design's cost is purely the
// disable/reprogram/enable dance that shipping hardware mandates.
func runAblationHotswap(cfg Config) (*Result, error) {
	mc, err := workload.ByName("mc")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)
	run := func(mode core.BufferMode, hot bool) (ops int64, cycles int64, err error) {
		rt := node.Provision(node.Spec{
			Cores:     8,
			Timeslice: 1 * simtime.Millisecond,
			Seed:      cfg.Seed ^ 0xAB7,
			Workload:  mc,
		})
		m, proc := rt.Machine, rt.Proc
		ctrl := rt.Controller()
		ccfg := core.DefaultConfig()
		ccfg.Period = dur
		ccfg.Buffers = mode
		ccfg.HotSwap = hot
		ccfg.Seed = m.Cfg.Seed
		ccfg.Mem = memalloc.Config{Budget: 64 << 20, PerCoreMin: 2 << 20, PerCoreMax: 16 << 20}
		sess, err := ctrl.Trace(proc, ccfg)
		if err != nil {
			return 0, 0, err
		}
		m.Run(dur + 10*simtime.Millisecond)
		return sess.Stats.MSROps, proc.Stats().Cycles, nil
	}
	coldOps, coldCyc, err := run(core.PerThread, false)
	if err != nil {
		return nil, err
	}
	hotOps, hotCyc, err := run(core.PerThread, true)
	if err != nil {
		return nil, err
	}
	existOps, existCyc, err := run(core.PerCore, false)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "ablation-hotswap"}
	t := &tabular.Table{
		Title:  "Ablation: per-thread buffer control with hypothetical hot switching (§6.1)",
		Header: []string{"design", "MSR ops", "workload cycles"},
	}
	t.AddRowf("per-thread, shipping hardware (disable/enable)", coldOps, coldCyc)
	t.AddRowf("per-thread, hot switching (what-if)", hotOps, hotCyc)
	t.AddRowf("per-core (EXIST, shipping hardware)", existOps, existCyc)
	t.Notes = append(t.Notes,
		"hot switching would recover much of the per-thread design's cost — but O(#cores) control needs no new hardware")
	res.Metric("cold_ops", float64(coldOps))
	res.Metric("hot_ops", float64(hotOps))
	res.Metric("exist_ops", float64(existOps))
	res.Metric("hot_recovery", float64(hotCyc-coldCyc)/float64(max64(existCyc-coldCyc, 1)))
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runAblationDrop(cfg Config) (*Result, error) {
	s1, err := workload.ByName("Search1")
	if err != nil {
		return nil, err
	}
	period := 300 * simtime.Millisecond

	// The anomaly fires at the window start (that is what triggers
	// tracing). With buffers far smaller than the window's trace volume,
	// the STOP policy retains the prefix nearest the trigger; a ring
	// retains only the suffix.
	run := func(drop core.DropPolicy) (firstHalf, secondHalf float64, err error) {
		prog := s1.Synthesize(cfg.Seed ^ 0xAB2)
		rt := node.Provision(node.Spec{
			Cores:        8,
			Timeslice:    500 * simtime.Microsecond,
			Seed:         cfg.Seed ^ 0xAB3,
			Workload:     s1,
			Walker:       true,
			Scale:        trace.SpaceScale,
			Prog:         prog,
			Housekeeping: true,
		})
		m, proc := rt.Machine, rt.Proc

		gtFirst := trace.NewGroundTruth(prog, 0, 0)
		gtSecond := trace.NewGroundTruth(prog, 0, 0)
		m.Listener = func(th *sched.Thread, now simtime.Time, ev binary.BranchEvent) {
			if th.Proc != proc {
				return
			}
			gtFirst.Record(int32(th.TID), now, ev)
			gtSecond.Record(int32(th.TID), now, ev)
		}
		m.Run(100 * simtime.Millisecond)
		ctrl := rt.Controller()
		ccfg := core.DefaultConfig()
		ccfg.Period = period
		ccfg.Scale = trace.SpaceScale
		ccfg.Seed = m.Cfg.Seed
		ccfg.Drop = drop
		// Budget roughly half of the window's volume so the tail cannot fit.
		ccfg.Mem = memalloc.Config{Budget: 160 << 20, PerCoreMin: 2 << 20, PerCoreMax: 24 << 20}
		sess, err := ctrl.Trace(proc, ccfg)
		if err != nil {
			return 0, 0, err
		}
		mid := sess.Start + period/2
		gtFirst.Start, gtFirst.End = sess.Start, mid
		gtSecond.Start, gtSecond.End = mid, sess.Start+period
		m.Run(sess.Start + period + 10*simtime.Millisecond)
		sres, err := sess.Result()
		if err != nil {
			return 0, 0, err
		}
		rec := decode.Decode(sres, prog)
		a := metrics.PathAccuracy(gtFirst.ByThread, rec.ByThread)
		b := metrics.PathAccuracy(gtSecond.ByThread, rec.ByThread)
		return a.Accuracy, b.Accuracy, nil
	}

	stopFirst, stopSecond, err := run(core.DropStop)
	if err != nil {
		return nil, err
	}
	ringFirst, ringSecond, err := run(core.DropRing)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "ablation-drop"}
	t := &tabular.Table{
		Title:  "Ablation: which half of an overflowing window survives, by drop policy",
		Header: []string{"policy", "first half (nearest anomaly)", "second half"},
	}
	t.AddRow("compulsory drop / STOP (EXIST)", pct(stopFirst), pct(stopSecond))
	t.AddRow("ring buffer (conventional)", pct(ringFirst), pct(ringSecond))
	t.Notes = append(t.Notes,
		"tracing is triggered by the anomaly, so the window prefix is the evidence; STOP preserves it, a ring overwrites it")
	res.Metric("stop_first_half", stopFirst)
	res.Metric("ring_first_half", ringFirst)
	res.Tables = append(res.Tables, t)
	return res, nil
}
