package experiments

import (
	"reflect"
	"testing"

	"exist/internal/node"
	"exist/internal/workload"
)

// TestFigureSpecsMatchFrozenLiterals pins the compiled per-figure node
// arrangements to the hard-coded node.Spec literals the motivation
// experiments used before the placements moved into scenario documents.
// The experiments overwrite Dur (quick/full mode) and measure() supplies
// Workload/Backend/Seed/Timeslice, so the comparison covers everything a
// document controls.
func TestFigureSpecsMatchFrozenLiterals(t *testing.T) {
	byName := func(name string) workload.Profile {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		return p
	}
	om, xz, ms, mc := byName("om"), byName("xz"), byName("ms"), byName("mc")
	cores := []int{0, 1, 2, 3}

	frozen := map[string]struct {
		app  workload.Profile
		spec node.Spec
	}{
		"fig03a": {om, node.Spec{
			Workload: om, Cores: 8, TargetCores: cores, Seed: 301, Threads: 4,
			CoRunners: []node.CoRunner{{Profile: xz, Cores: cores, SeedOffset: 0}},
		}},
		"fig04": {om, node.Spec{
			Workload: om, Cores: 8, TargetCores: cores, Seed: 401, Threads: 4,
			CoRunners: []node.CoRunner{
				{Profile: xz, Cores: cores, SeedOffset: 0},
				{Profile: ms, Cores: cores, SeedOffset: 101},
			},
		}},
		"fig05": {ms, node.Spec{
			Workload: ms, Cores: 16, TargetCores: cores, Seed: 501, Threads: 4,
			CoRunners: []node.CoRunner{{Profile: om, SeedOffset: 0}},
		}},
		"fig08": {mc, node.Spec{
			Workload: mc, Cores: 8, Seed: 801, CollectSwitchPeriods: true,
			CoRunners: []node.CoRunner{{Profile: ms, SeedOffset: 0}},
		}},
	}
	for name, want := range frozen {
		app, ns, err := figureSpec(name)
		if err != nil {
			t.Fatalf("figureSpec(%q): %v", name, err)
		}
		if !reflect.DeepEqual(app, want.app) {
			t.Errorf("%s: app profile differs from frozen literal", name)
		}
		if !reflect.DeepEqual(ns, want.spec) {
			t.Errorf("%s: compiled node spec differs from frozen literal:\n got %+v\nwant %+v", name, ns, want.spec)
		}
	}
}

// TestFigureSpecUnknown keeps the loader's error path honest.
func TestFigureSpecUnknown(t *testing.T) {
	if _, _, err := figureSpec("fig99"); err == nil {
		t.Fatal("expected error for unknown figure scenario")
	}
}
