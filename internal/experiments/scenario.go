package experiments

import (
	"fmt"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/parallel"
	"exist/internal/service"
	"exist/internal/simtime"
	"exist/internal/spec"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "scenario",
		Title: "Scenario DSL: declarative traffic compiled end to end",
		Paper: "systems extension: one spec drives node overhead, open-loop SLO attainment and cluster trace coverage",
		Run:   runScenario,
	})
}

// clientOutcome is one traffic class's result in the traced run.
type clientOutcome struct {
	id        string
	class     string
	completed int
	p99       float64
	sloMS     float64
	attain    float64 // fraction of completed requests within sloMS (latency class)
}

// scenarioClusterRun is the optional distributed phase's outcome.
type scenarioClusterRun struct {
	requests int
	terminal int
	covered  int
	coverage float64
}

// scenarioRun is one compiled document driven end to end.
type scenarioRun struct {
	name     string
	arrivals int
	overhead float64 // EXIST node overhead measured on the placement
	thpt     float64
	avail    float64 // completed / (completed + dropped) in the traced run
	p99Base  float64
	p99      float64
	clients  []clientOutcome
	cluster  *scenarioClusterRun
}

// runScenarioDoc drives one scenario document through every phase it
// declares: a paired Oracle/EXIST node run on its placement (overhead), an
// open-loop service run over its compiled arrival schedule with that
// overhead applied (availability, per-class SLO attainment), and a cluster
// phase issuing trace requests under its fault config (coverage). All
// randomness keys off cfg.Seed and the document, so the run is identical
// at any parallelism.
func runScenarioDoc(cfg Config, doc *spec.Document) (*scenarioRun, error) {
	sc := doc.Scenario
	if sc == nil {
		return nil, fmt.Errorf("%s: document has no scenario section", doc.Src)
	}
	cs, err := compileScenario(doc)
	if err != nil {
		return nil, err
	}
	name := doc.Name
	if name == "" {
		name = doc.Src
	}
	run := &scenarioRun{name: name}
	seed := cfg.Seed ^ doc.Seed

	// Phase 1: node overhead. The placement runs paired under Oracle and
	// EXIST (same machine seed, same workload realization); the cycle gap
	// is the tracing overhead the traffic phase then charges the chain.
	if sc.Node != nil && sc.App != "" {
		ns := cs.node
		ns.Dur = durQuick(cfg, 300*simtime.Millisecond, 1*simtime.Second)
		base, err := measure(cfg, cs.app, SchemeOracle, ns)
		if err != nil {
			return nil, err
		}
		traced, err := measure(cfg, cs.app, SchemeEXIST, ns)
		if err != nil {
			return nil, err
		}
		if traced.Stats.Cycles > 0 {
			if ov := float64(base.Stats.Cycles)/float64(traced.Stats.Cycles) - 1; ov > 0 {
				run.overhead = ov
			}
		}
	}

	// Phase 2: traffic. Quick mode truncates the window; the schedule is
	// compiled at the truncated duration, so it stays a pure function of
	// (document, seed, quick).
	scT := *sc
	if cfg.Quick && scT.DurationS > 10 {
		scT.DurationS = 10
	}
	arr, err := scT.Arrivals(seed, 1.0/service.DeploymentWidth)
	if err != nil {
		return nil, err
	}
	run.arrivals = len(arr)
	if len(arr) > 0 {
		sa := make([]service.Arrival, len(arr))
		for i, a := range arr {
			sa[i] = service.Arrival{At: a.At, Client: a.Client}
		}
		chain := service.ComposePostChain(seed + 101)
		dur := scT.Dur()
		baseRes := service.RunSchedule(chain, sa, dur, len(scT.Clients), nil)
		var ov []service.Overhead
		if run.overhead > 0 {
			ov = []service.Overhead{{Tier: 1, Frac: run.overhead}}
		}
		tracedRes := service.RunSchedule(chain, sa, dur, len(scT.Clients), ov)
		run.thpt = tracedRes.ThroughputRPS
		run.p99Base = baseRes.Summary.P99
		run.p99 = tracedRes.Summary.P99
		if total := tracedRes.Completed + tracedRes.Dropped; total > 0 {
			run.avail = float64(tracedRes.Completed) / float64(total)
		}
		for ci, c := range scT.Clients {
			out := clientOutcome{id: c.ID, class: c.SLOClass, sloMS: c.SLOMs}
			if out.class == "" {
				out.class = "besteffort"
			}
			rts := tracedRes.ByClient[ci]
			out.completed = len(rts)
			if len(rts) > 0 {
				out.p99 = pctOf(rts, 0.99)
				if c.SLOClass == "latency" {
					within := 0
					for _, rt := range rts {
						if rt <= c.SLOMs {
							within++
						}
					}
					out.attain = float64(within) / float64(len(rts))
				}
			}
			run.clients = append(run.clients, out)
		}
	}

	// Phase 3: cluster. The document's cluster/faults sections configure a
	// distributed run issuing trace requests against the scenario app.
	if sc.Cluster != nil && sc.App != "" {
		cr, err := runScenarioCluster(cfg, cs, sc, seed)
		if err != nil {
			return nil, err
		}
		run.cluster = cr
	}
	return run, nil
}

// runScenarioCluster issues alternating profiling/anomaly trace requests
// against a cluster sized by the document and reports termination and
// coverage, resilience-style.
func runScenarioCluster(cfg Config, cs *compiledScenario, sc *spec.Scenario, seed uint64) (*scenarioClusterRun, error) {
	ccfg := cluster.ConfigFromSpec(sc.Cluster, sc.Faults, seed)
	ccfg.Jobs = parallel.Workers(cfg.Jobs)
	c := cluster.New(ccfg)
	if err := c.Deploy(cs.app, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: seed + 5}); err != nil {
		return nil, err
	}
	n := sc.Cluster.Requests
	if n <= 0 {
		n = 6
	}
	if cfg.Quick && n > 4 {
		n = 4
	}
	var reqs []*cluster.TraceRequest
	for i := 0; i < n; i++ {
		purpose := coverage.PurposeProfiling
		reqName := fmt.Sprintf("scn-prof-%d", i)
		if i%2 == 1 {
			purpose = coverage.PurposeAnomaly
			reqName = fmt.Sprintf("scn-diag-%d", i)
		}
		at := simtime.Time(i) * simtime.Time(500*simtime.Millisecond)
		c.Eng.Schedule(at, func(simtime.Time) {
			r, err := c.Request(reqName, cluster.TraceRequestSpec{
				App:     cs.app.Name,
				Purpose: purpose,
				Period:  200 * simtime.Millisecond,
			})
			if err == nil {
				reqs = append(reqs, r)
			}
		})
	}
	c.Run(simtime.Time(n)*simtime.Time(500*simtime.Millisecond) + simtime.Time(15*simtime.Second))

	out := &scenarioClusterRun{requests: len(reqs)}
	var covSum float64
	for _, r := range reqs {
		if r.Phase.Terminal() {
			out.terminal++
			if len(r.SessionKeys) > 0 {
				out.covered++
			}
		}
		covSum += r.CoverageFraction()
	}
	if len(reqs) > 0 {
		out.coverage = covSum / float64(len(reqs))
	}
	return out, nil
}

// pctOf returns the p-th percentile of a copy of xs.
func pctOf(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	insertionSortF(s)
	if len(s) == 0 {
		return 0
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// insertionSortF sorts a small float slice in place without pulling the
// sort package's interface machinery into the hot path. Traffic-phase
// slices are short enough that simplicity wins.
func insertionSortF(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// buildScenarioResult renders one or more scenario runs into tables.
func buildScenarioResult(id string, runs []*scenarioRun) *Result {
	res := &Result{ID: id}
	summary := &tabular.Table{
		Title: "Scenario DSL: compiled traffic, node overhead and availability",
		Header: []string{"scenario", "arrivals", "EXIST node overhead", "thpt r/s",
			"availability", "p99 ms (base)", "p99 ms (traced)"},
	}
	perClient := &tabular.Table{
		Title:  "Per-client outcome under tracing (SLO attainment judged per traffic class)",
		Header: []string{"scenario", "client", "class", "completed", "p99 ms", "slo ms", "attainment"},
	}
	clusterT := &tabular.Table{
		Title:  "Cluster phase: trace-request termination and coverage under the document's fault config",
		Header: []string{"scenario", "requests", "terminal", "with coverage", "mean coverage"},
	}
	haveCluster := false
	for _, run := range runs {
		summary.AddRow(run.name,
			fmt.Sprintf("%d", run.arrivals),
			pct(run.overhead),
			fmt.Sprintf("%.0f", run.thpt),
			fmt.Sprintf("%.4f", run.avail),
			fmt.Sprintf("%.1f", run.p99Base),
			fmt.Sprintf("%.1f", run.p99))
		res.Metric(run.name+"_availability", run.avail)
		res.Metric(run.name+"_overhead", run.overhead)
		res.Metric(run.name+"_arrivals", float64(run.arrivals))
		for _, c := range run.clients {
			attain := "-"
			if c.class == "latency" {
				attain = fmt.Sprintf("%.3f", c.attain)
				res.Metric(run.name+"_slo_"+c.id, c.attain)
			}
			slo := "-"
			if c.sloMS > 0 {
				slo = fmt.Sprintf("%.0f", c.sloMS)
			}
			perClient.AddRow(run.name, c.id, c.class,
				fmt.Sprintf("%d", c.completed), fmt.Sprintf("%.1f", c.p99), slo, attain)
		}
		if cr := run.cluster; cr != nil {
			haveCluster = true
			clusterT.AddRow(run.name,
				fmt.Sprintf("%d", cr.requests),
				fmt.Sprintf("%d/%d", cr.terminal, cr.requests),
				fmt.Sprintf("%d/%d", cr.covered, cr.requests),
				fmt.Sprintf("%.2f", cr.coverage))
			res.Metric(run.name+"_coverage", cr.coverage)
		}
	}
	summary.Notes = append(summary.Notes,
		"every run compiles from a scenario document: arrivals, placement, faults and cluster sizing all come from the spec",
		"the traffic phase charges the chain the node overhead measured on the document's own placement")
	res.Tables = append(res.Tables, summary, perClient)
	if haveCluster {
		res.Tables = append(res.Tables, clusterT)
	}
	return res
}

// runScenario drives every bundled scenario. The documents fan out across
// the worker pool and are harvested in name order, keeping output
// byte-identical to a serial run.
func runScenario(cfg Config) (*Result, error) {
	names := spec.BuiltinNames()
	runs, err := parallel.MapErr(len(names), cfg.Jobs, func(i int) (*scenarioRun, error) {
		doc, err := spec.LoadBuiltin(names[i])
		if err != nil {
			return nil, err
		}
		return runScenarioDoc(cfg, doc)
	})
	if err != nil {
		return nil, err
	}
	return buildScenarioResult("scenario", runs), nil
}

// RunSpec runs a user-supplied document through the same pipeline as the
// bundled scenario experiment (existbench -spec). Profile-only documents
// (no scenario section) render their compiled profiles instead.
func RunSpec(cfg Config, doc *spec.Document) (*Result, error) {
	if doc.Scenario == nil {
		cs, err := compileScenario(doc)
		if err != nil {
			return nil, err
		}
		res := &Result{ID: "spec"}
		t := &tabular.Table{
			Title:  "Compiled workload profiles",
			Header: []string{"name", "class", "mode", "threads", "description"},
		}
		for _, p := range doc.Profiles {
			if p.Abstract {
				continue
			}
			cp, ok := cs.profiles[p.Name]
			if !ok {
				continue
			}
			t.AddRow(cp.Name, cp.Class.String(), cp.Mode.String(),
				fmt.Sprintf("%d", cp.Threads), cp.Desc)
		}
		res.Tables = append(res.Tables, t)
		return res, nil
	}
	run, err := runScenarioDoc(cfg, doc)
	if err != nil {
		return nil, err
	}
	return buildScenarioResult("spec", []*scenarioRun{run}), nil
}
