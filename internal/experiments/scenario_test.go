package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"exist/internal/spec"
)

// TestScenarioDeterminismGrid pins the scenario experiment's contract:
// the bundled documents — generated diurnal traffic, a flash crowd with
// cluster fault injection, and a replayed CSV trace — must render
// byte-identically with exactly equal metrics for every combination of
// jobs and GOMAXPROCS. Scenario compilation keys all randomness off the
// document and seed, never off scheduling.
func TestScenarioDeterminismGrid(t *testing.T) {
	e, err := ByID("scenario")
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(jobs, procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := e.Run(Config{Quick: true, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d procs=%d: %v", jobs, procs, err)
		}
		return res
	}
	ref := runWith(1, 1)
	for _, tc := range []struct{ jobs, procs int }{
		{1, 4}, {4, 1}, {4, 4},
	} {
		t.Run(fmt.Sprintf("jobs=%d,procs=%d", tc.jobs, tc.procs), func(t *testing.T) {
			got := runWith(tc.jobs, tc.procs)
			if got.Render() != ref.Render() {
				t.Errorf("rendered output differs from jobs=1,procs=1:\n--- ref ---\n%s\n--- got ---\n%s",
					ref.Render(), got.Render())
			}
			if len(got.Metrics) != len(ref.Metrics) {
				t.Fatalf("metric count %d, want %d", len(got.Metrics), len(ref.Metrics))
			}
			for name, want := range ref.Metrics {
				if v, ok := got.Metrics[name]; !ok || v != want {
					t.Errorf("metric %s: got %v, want exactly %v", name, v, want)
				}
			}
		})
	}
}

// TestScenarioCoversAllPhases checks the bundled runs actually exercise
// every phase the DSL declares: traffic everywhere, cluster coverage for
// the documents with a cluster section, replay arrivals for the trace.
func TestScenarioCoversAllPhases(t *testing.T) {
	e, err := ByID("scenario")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Config{Quick: true, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"diurnal_arrivals", "diurnal_availability", "diurnal_coverage", "diurnal_slo_web",
		"flash-crowd_arrivals", "flash-crowd_coverage", "flash-crowd_slo_api",
		"replay_arrivals", "replay_availability",
	} {
		if _, ok := res.Metrics[m]; !ok {
			t.Errorf("missing metric %s", m)
		}
	}
	if got := res.Metrics["replay_arrivals"]; got != 242 {
		t.Errorf("replay_arrivals = %v, want the bundled trace's 242 rows", got)
	}
	if got := res.Metrics["diurnal_availability"]; got <= 0 {
		t.Errorf("diurnal_availability = %v, want > 0", got)
	}
}

// TestRunSpecUserDocument drives RunSpec with an in-memory user document
// the way existbench -spec does, including a scenario-defined profile
// derived from a built-in base.
func TestRunSpecUserDocument(t *testing.T) {
	const userSpec = `
version: 1
name: user-test
seed: 9
profiles:
  - name: hotcache
    base: mc
    desc: cache variant with more threads
    threads: 6
scenario:
  duration_s: 3
  aggregate_rate: 8000
  app: hotcache
  clients:
    - id: rt
      rate_fraction: 1.0
      slo_class: latency
      slo_ms: 50
      arrival: {process: poisson}
  node:
    cores: 8
    seed: 5
`
	doc, err := spec.Parse("user-test.yaml", []byte(userSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpec(Config{Quick: true, Seed: 1, Jobs: 2}, doc)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "user-test") {
		t.Errorf("rendered output does not name the document:\n%s", out)
	}
	if _, ok := res.Metrics["user-test_slo_rt"]; !ok {
		t.Errorf("missing SLO metric for scenario-defined client; have %v", res.SortedMetrics())
	}
	// Same document, same seed: byte-identical output.
	res2, err := RunSpec(Config{Quick: true, Seed: 1, Jobs: 4}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Render() != out {
		t.Error("RunSpec output differs between jobs=2 and jobs=4")
	}
}

// TestRunSpecProfileOnly renders compiled profiles for documents without
// a scenario section.
func TestRunSpecProfileOnly(t *testing.T) {
	doc, err := spec.Parse("profiles.yaml", []byte(`
version: 1
profiles:
  - name: tweaked
    base: pb
    desc: protobuf variant
    threads: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpec(Config{Quick: true, Seed: 1}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Render(); !strings.Contains(out, "tweaked") {
		t.Errorf("profile table missing compiled profile:\n%s", out)
	}
}
