package experiments

import (
	"fmt"

	"exist/internal/metrics"
	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/service"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: normalized slowdown on SPEC-like compute benchmarks",
		Paper: "EXIST 0.4-1.5% per benchmark; 3.5x/4.4x/6.6x lower overhead than StaSam/eBPF/NHT",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: normalized throughput on online benchmarks (mc/ng/ms)",
		Paper: "EXIST ~1.1% loss; 6.4x/7.3x/12.2x lower overhead than StaSam/eBPF/NHT",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "tab03",
		Title: "Table 3: time-efficiency comparison with published SOTA results",
		Paper: "EXIST 0.9%/1.5% (compute avg/worst), 1.1%/1.6% (online avg/worst)",
		Run:   runTab03,
	})
}

// computeOverheads measures per-benchmark slowdowns for all schemes on the
// SPEC profiles, co-locating each benchmark with a filler (the shared
// datacenter setting).
func computeOverheads(cfg Config) (map[string]map[SchemeKind]float64, []workload.Profile, error) {
	specs := workload.SPEC()
	filler, err := workload.ByName("xz")
	if err != nil {
		return nil, nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)
	rows, err := parallel.MapErr(len(specs), cfg.Jobs, func(i int) (map[SchemeKind]float64, error) {
		p := specs[i]
		cores := p.CoresWanted
		if cores < 1 {
			cores = 1
		}
		spec := node.Spec{
			Cores: cores * 2,
			Dur:   dur,
			Seed:  uint64(len(p.Name))*31 + 7,
		}
		// Co-locate the filler on the same cores as the target (Figure
		// 3a's shared-pod setting).
		tc := make([]int, cores)
		for i := range tc {
			tc[i] = i
		}
		spec.TargetCores = tc
		spec.CoRunners = coRunners([]workload.Profile{filler}, [][]int{tc})

		results, err := sweepSchemes(cfg, p, spec)
		if err != nil {
			return nil, err
		}
		base := results[SchemeOracle]
		row := make(map[SchemeKind]float64, len(ComparisonSchemes))
		for _, s := range ComparisonSchemes {
			row[s] = results[s].Overhead(base)
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]map[SchemeKind]float64, len(specs))
	for i, p := range specs {
		out[p.Name] = rows[i]
	}
	return out, specs, nil
}

func runFig13(cfg Config) (*Result, error) {
	overheads, specs, err := computeOverheads(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig13"}
	t := &tabular.Table{
		Title:  "Figure 13: execution slowdown of tracing SPEC-like benchmarks (normalized to Oracle)",
		Header: []string{"bench", "EXIST", "StaSam", "eBPF", "NHT"},
	}
	avg := map[SchemeKind]float64{}
	for _, p := range specs {
		row := overheads[p.Name]
		t.AddRow(p.Name, pct(row[SchemeEXIST]), pct(row[SchemeStaSam]), pct(row[SchemeEBPF]), pct(row[SchemeNHT]))
		for s, v := range row {
			avg[s] += v / float64(len(specs))
		}
	}
	t.AddRow("Avg.", pct(avg[SchemeEXIST]), pct(avg[SchemeStaSam]), pct(avg[SchemeEBPF]), pct(avg[SchemeNHT]))
	if avg[SchemeEXIST] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"overhead reduction vs EXIST: StaSam %s, eBPF %s, NHT %s (paper: 3.5x, 4.4x, 6.6x)",
			ratio(avg[SchemeStaSam]/avg[SchemeEXIST]),
			ratio(avg[SchemeEBPF]/avg[SchemeEXIST]),
			ratio(avg[SchemeNHT]/avg[SchemeEXIST])))
	}
	t.Notes = append(t.Notes, "paper: EXIST slowdown ranges 0.4%-1.5% across the suite")
	res.Tables = append(res.Tables, t)
	res.Metric("exist_avg_overhead", avg[SchemeEXIST])
	res.Metric("stasam_factor", avg[SchemeStaSam]/avg[SchemeEXIST])
	res.Metric("ebpf_factor", avg[SchemeEBPF]/avg[SchemeEXIST])
	res.Metric("nht_factor", avg[SchemeNHT]/avg[SchemeEXIST])
	worst := 0.0
	for _, p := range specs {
		if v := overheads[p.Name][SchemeEXIST]; v > worst {
			worst = v
		}
	}
	res.Metric("exist_worst_overhead", worst)
	return res, nil
}

// onlineNodeOverheads measures each online benchmark's node-level
// overhead per scheme (stage 1 of Figure 14).
func onlineNodeOverheads(cfg Config) (map[string]map[SchemeKind]float64, error) {
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)
	benches := workload.OnlineBenchmarks()
	rows, err := parallel.MapErr(len(benches), cfg.Jobs, func(i int) (map[SchemeKind]float64, error) {
		results, err := sweepSchemes(cfg, benches[i], node.Spec{Cores: 8, Dur: dur, Seed: 17})
		if err != nil {
			return nil, err
		}
		base := results[SchemeOracle]
		row := make(map[SchemeKind]float64)
		for _, s := range ComparisonSchemes {
			row[s] = results[s].Inflation(base)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[SchemeKind]float64, len(benches))
	for i, p := range benches {
		out[p.Name] = rows[i]
	}
	return out, nil
}

// schemeServiceOverhead maps a scheme's node-level overhead to its
// service-level disturbance: the measured inflation applies to every tier
// of the traced benchmark (the whole serving path runs in the traced
// process), and interrupt/haul-driven schemes add occasional worker
// stalls, which is how "tracing disturbances cause cascaded slowdowns of
// subsequent queries".
func schemeServiceOverhead(s SchemeKind, frac float64, tiers int) []service.Overhead {
	var spikeProb float64
	var spike simtime.Duration
	switch s {
	case SchemeStaSam:
		spikeProb, spike = 0.01, 2*simtime.Millisecond
	case SchemeEBPF:
		spikeProb, spike = 0.015, 2*simtime.Millisecond
	case SchemeNHT:
		spikeProb, spike = 0.03, 3*simtime.Millisecond
	case SchemeEXIST:
		// Bounded windows and no hauling: no stall spikes.
	}
	out := make([]service.Overhead, 0, tiers)
	for i := 0; i < tiers; i++ {
		out = append(out, service.Overhead{Tier: i, Frac: frac, SpikeProb: spikeProb, Spike: spike})
	}
	return out
}

func runFig14(cfg Config) (*Result, error) {
	nodeOver, err := onlineNodeOverheads(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig14"}
	t := &tabular.Table{
		Title:  "Figure 14: normalized closed-loop throughput of online benchmarks",
		Header: []string{"bench", "EXIST", "StaSam", "eBPF", "NHT"},
	}
	dur := durQuick(cfg, 8*simtime.Second, 20*simtime.Second)
	reps := 3
	if !cfg.Quick {
		reps = 6
	}
	avgLoss := map[SchemeKind]float64{}
	names := []string{"mc", "ng", "ms"}
	closedThpt := func(bi int, ov []service.Overhead) float64 {
		// Each rep seeds from (bi, rep), so reps can run concurrently; the
		// serial in-order sum keeps float accumulation identical.
		thpts := parallel.Map(reps, cfg.Jobs, func(rep int) float64 {
			spec := service.ComposePostChain(cfg.Seed + uint64(bi) + uint64(rep)*1013)
			return service.RunClosedLoop(spec, 48, dur, ov).ThroughputRPS
		})
		var sum float64
		for _, t := range thpts {
			sum += t
		}
		return sum / float64(reps)
	}
	for bi, name := range names {
		nTiers := len(service.ComposePostChain(0).Tiers)
		base := closedThpt(bi, nil)
		row := []string{name}
		for _, s := range []SchemeKind{SchemeEXIST, SchemeStaSam, SchemeEBPF, SchemeNHT} {
			ov := schemeServiceOverhead(s, nodeOver[name][s], nTiers)
			norm := closedThpt(bi, ov) / base
			avgLoss[s] += (1 - norm) / float64(len(names))
			row = append(row, tabular.FormatFloat(norm))
		}
		t.AddRow(row...)
	}
	t.AddRow("Avg. loss", pct(avgLoss[SchemeEXIST]), pct(avgLoss[SchemeStaSam]),
		pct(avgLoss[SchemeEBPF]), pct(avgLoss[SchemeNHT]))
	if avgLoss[SchemeEXIST] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"throughput-loss reduction vs EXIST: StaSam %s, eBPF %s, NHT %s (paper: 6.4x, 7.3x, 12.2x)",
			ratio(avgLoss[SchemeStaSam]/avgLoss[SchemeEXIST]),
			ratio(avgLoss[SchemeEBPF]/avgLoss[SchemeEXIST]),
			ratio(avgLoss[SchemeNHT]/avgLoss[SchemeEXIST])))
	}
	t.Notes = append(t.Notes,
		"online benchmarks are more tracing-sensitive than compute: disturbances cascade into queued requests")
	res.Tables = append(res.Tables, t)
	res.Metric("exist_avg_loss", avgLoss[SchemeEXIST])
	res.Metric("nht_factor", safeDiv(avgLoss[SchemeNHT], avgLoss[SchemeEXIST]))
	res.Metric("stasam_factor", safeDiv(avgLoss[SchemeStaSam], avgLoss[SchemeEXIST]))
	res.Metric("ebpf_factor", safeDiv(avgLoss[SchemeEBPF], avgLoss[SchemeEXIST]))
	return res, nil
}

// sotaRow is one published comparison point of Table 3.
type sotaRow struct {
	name, kind, bench string
	avg, worst        float64 // percent
}

// publishedSOTA are the Table 3 numbers quoted from the cited papers, as
// the paper itself does (those systems are not publicly reproducible).
var publishedSOTA = []sotaRow{
	{"REPT[28]", "hardware tracing", "online", 5.35, 9.68},
	{"FlowGuard[60]", "hardware tracing", "compute", 3.79, 30},
	{"Upgradvisor[21]", "hardware tracing", "compute", 6.4, 16},
	{"JPortal[102]", "hardware tracing", "online", 11.3, 16.5},
	{"Log20[98]", "instrumentation", "online", -0.2, 0.9},
	{"Hubble[68]", "instrumentation", "compute", 5, 25},
	{"DMon[50]", "instrumentation", "online", 1.36, 4.92},
	{"Argus[88]", "instrumentation", "online", 3.36, 5},
}

func runTab03(cfg Config) (*Result, error) {
	compute, specs, err := computeOverheads(cfg)
	if err != nil {
		return nil, err
	}
	online, err := onlineNodeOverheads(cfg)
	if err != nil {
		return nil, err
	}
	var cAvg, cWorst, oAvg, oWorst float64
	for _, p := range specs {
		v := compute[p.Name][SchemeEXIST]
		cAvg += v / float64(len(specs))
		if v > cWorst {
			cWorst = v
		}
	}
	for _, row := range online {
		v := row[SchemeEXIST]
		oAvg += v / float64(len(online))
		if v > oWorst {
			oWorst = v
		}
	}

	res := &Result{ID: "tab03"}
	t := &tabular.Table{
		Title:  "Table 3: time-efficiency comparison with SOTA (c=compute, o=online; SOTA values as published)",
		Header: []string{"scheme", "kind", "bench", "average", "worst"},
	}
	for _, r := range publishedSOTA {
		t.AddRow(r.name, r.kind, r.bench, fmt.Sprintf("%.2f%%", r.avg), fmt.Sprintf("%.2f%%", r.worst))
	}
	t.AddRow("EXIST (ours)", "hardware tracing", "compute", pct(cAvg), pct(cWorst))
	t.AddRow("EXIST (ours)", "hardware tracing", "online", pct(oAvg), pct(oWorst))
	t.Notes = append(t.Notes, "paper: EXIST 0.9%/1.5% on compute and 1.1%/1.6% on online (avg/worst)")
	res.Tables = append(res.Tables, t)
	res.Metric("exist_compute_avg", cAvg)
	res.Metric("exist_compute_worst", cWorst)
	res.Metric("exist_online_avg", oAvg)
	res.Metric("exist_online_worst", oWorst)
	return res, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// metricsGuard keeps the metrics import used by sibling files.
var _ = metrics.Mean
