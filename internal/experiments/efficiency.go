package experiments

import (
	"fmt"

	"exist/internal/cluster"
	"exist/internal/core"
	"exist/internal/coverage"
	"exist/internal/node"
	"exist/internal/parallel"
	"exist/internal/service"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: tracing overhead on cloud applications (CPI and utilization)",
		Paper: "EXIST ~1.1% utilization increase and ~2.2% CPI overhead; overall per-app overhead 1.3-3.2%",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Figure 16: end-to-end response time of Search1 under tracing schemes",
		Paper: "EXIST p99 slowdown 0.9-2.7% vs 3-59% for baselines; gap widens with load",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "tab04",
		Title: "Table 4: space efficiency (MB per 0.5 s window)",
		Paper: "EXIST ~55 MB on SPEC, bounded by budget on online; NHT time-proportional and larger",
		Run:   runTab04,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Figure 17: startup and cluster-orchestration overheads",
		Paper: "0.05-core insmod spike; RCO needs <3e-3 cores and ~40 MB for ten nodes; <1 permille at scale",
		Run:   runFig17,
	})
}

func runFig15(cfg Config) (*Result, error) {
	apps := workload.CloudApps()
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)
	res := &Result{ID: "fig15"}
	t := &tabular.Table{
		Title:  "Figure 15: tracing overhead on cloud applications (CPI overhead at low/high load, CPU-utilization increase)",
		Header: []string{"app", "scheme", "CPI ovh (low)", "CPI ovh (high)", "util increase (pts)"},
	}
	schemes := []SchemeKind{SchemeEXIST, SchemeStaSam, SchemeEBPF, SchemeNHT}
	type appOut struct {
		rows         [][]string
		existCPIHigh float64
		existUtilPts float64
	}
	// Each (app, scheme, thread-count) cell seeds from the app index alone
	// (paired comparisons need identical workload realizations), so the
	// whole grid fans out; rows are assembled in app order below.
	outs, err := parallel.MapErr(len(apps), cfg.Jobs, func(ai int) (appOut, error) {
		app := apps[ai]
		lowThreads := app.Threads / 4
		if lowThreads < 1 {
			lowThreads = 1
		}
		type pair struct{ cpi, util float64 }
		type cell struct {
			scheme  SchemeKind
			threads int
		}
		cells := []cell{{SchemeOracle, lowThreads}, {SchemeOracle, app.Threads}}
		for _, s := range schemes {
			cells = append(cells, cell{s, lowThreads}, cell{s, app.Threads})
		}
		pairs, err := parallel.MapErr(len(cells), cfg.Jobs, func(ci int) (pair, error) {
			r, err := measure(cfg, app, cells[ci].scheme, node.Spec{
				Cores: 8, Dur: dur, Seed: 1500 + uint64(ai), Threads: cells[ci].threads,
			})
			if err != nil {
				return pair{}, err
			}
			return pair{cpi: r.CPI, util: r.UtilFrac}, nil
		})
		if err != nil {
			return appOut{}, err
		}
		baseLow, baseHigh := pairs[0], pairs[1]
		var out appOut
		for si, s := range schemes {
			low, high := pairs[2+2*si], pairs[3+2*si]
			cpiLow := low.cpi/baseLow.cpi - 1
			cpiHigh := high.cpi/baseHigh.cpi - 1
			utilPts := (high.util - baseHigh.util) * 100
			out.rows = append(out.rows, []string{
				app.Name, s.String(), pct(cpiLow), pct(cpiHigh), fmt.Sprintf("%.2f", utilPts),
			})
			if s == SchemeEXIST {
				out.existCPIHigh = cpiHigh
				out.existUtilPts = utilPts
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var existUtilSum, existCnt float64
	for ai, app := range apps {
		for _, row := range outs[ai].rows {
			t.AddRow(row...)
		}
		existUtilSum += outs[ai].existUtilPts
		existCnt++
		res.Metric("exist_cpi_high_"+app.Name, outs[ai].existCPIHigh)
	}
	t.Notes = append(t.Notes,
		"paper: EXIST induces ~1.1% average utilization increase (2.4x/2.8x/12.2x better than baselines)",
		"CPU-set Search1 shows the smallest EXIST overhead (bounded scheduling; maximal per-core buffers)")
	res.Metric("exist_avg_util_pts", existUtilSum/existCnt)
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig16(cfg Config) (*Result, error) {
	s1, err := workload.ByName("Search1")
	if err != nil {
		return nil, err
	}
	dur := durQuick(cfg, 500*simtime.Millisecond, 2*simtime.Second)
	sweep, err := sweepSchemes(cfg, s1, node.Spec{Cores: 8, Dur: dur, Seed: 1600})
	if err != nil {
		return nil, err
	}
	base := sweep[SchemeOracle]

	res := &Result{ID: "fig16"}
	t := &tabular.Table{
		Title:  "Figure 16: end-to-end p99 response time (ms) tracing Search1, and slowdown vs Oracle",
		Header: []string{"load", "Oracle", "EXIST", "StaSam", "eBPF", "NHT"},
	}
	reps := 3
	if !cfg.Quick {
		reps = 8
	}
	svcDur := durQuick(cfg, 4*simtime.Second, 15*simtime.Second)
	loads := []float64{1e2, 1e3, 1e4}
	for _, load := range loads {
		// Search1 is deployed on the ten-node evaluation cluster, so the
		// cluster-wide load spreads over its instances (Load=1e4 drives
		// one instance near saturation, as the paper's Figure 16 shows).
		rate := load / 11
		d := svcDur
		if want := simtime.Duration(float64(minRequests(cfg)) / rate * float64(simtime.Second)); want > d {
			d = want
		}
		oracleSum := avgSummariesRate(cfg, rate, d, reps, nil)
		row := []string{fmt.Sprintf("Load=%.0e", load), fmt.Sprintf("%.1f", oracleSum.P99)}
		for _, s := range []SchemeKind{SchemeEXIST, SchemeStaSam, SchemeEBPF, SchemeNHT} {
			frac := sweep[s].Inflation(base)
			ov := schemeServiceOverheadSingleTier(s, frac)
			sum := avgSummariesRate(cfg, rate, d, reps, ov)
			slow := sum.P99/oracleSum.P99 - 1
			row = append(row, fmt.Sprintf("%.1f (%s)", sum.P99, pct(slow)))
			if s == SchemeEXIST && load == 1e4 {
				res.Metric("exist_p99_slowdown_1e4", slow)
			}
			if s == SchemeNHT && load == 1e4 {
				res.Metric("nht_p99_slowdown_1e4", slow)
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: EXIST 0.9/1.5/2.7% p99 slowdown at loads 1e2/1e3/1e4; NHT reaches 19-59%",
		"single-point tracing overhead amplifies end-to-end through tens of RPCs per request")
	res.Tables = append(res.Tables, t)
	return res, nil
}

// schemeServiceOverheadSingleTier maps node overhead onto the traced
// service's tier only (Figure 16 traces just Search1 within the chain).
func schemeServiceOverheadSingleTier(s SchemeKind, frac float64) []service.Overhead {
	ov := schemeServiceOverhead(s, frac, 2)
	return ov[1:2]
}

func runTab04(cfg Config) (*Result, error) {
	// 0.5 s windows, 4 threads on 4 cores (the paper's Table 4 setup).
	dur := 500 * simtime.Millisecond
	workloads := workload.SPEC()
	workloads = append(workloads, workload.OnlineBenchmarks()...)

	res := &Result{ID: "tab04"}
	t := &tabular.Table{
		Title:  "Table 4: space efficiency in MB for a 0.5 s window (4 cores)",
		Header: []string{"workload", "StaSam", "eBPF", "NHT", "EXIST"},
	}
	agent, err := workload.ByName("Agent")
	if err != nil {
		return nil, err
	}
	schemes := []SchemeKind{SchemeStaSam, SchemeEBPF, SchemeNHT, SchemeEXIST}
	type wOut struct {
		skip           bool
		row            []string
		existMB, nhtMB float64
	}
	outs, err := parallel.MapErr(len(workloads), cfg.Jobs, func(wi int) (wOut, error) {
		p := workloads[wi]
		if cfg.Quick && wi%3 != 0 && p.Class == workload.Compute {
			return wOut{skip: true}, nil // sample the suite in quick mode
		}
		// The profile's own thread count runs on four cores, with the
		// node agent co-located: NHT's unfiltered tracers capture the
		// co-runner too, while EXIST's CR3 filter excludes it.
		rs, err := parallel.MapErr(len(schemes), cfg.Jobs, func(si int) (node.Result, error) {
			return measure(cfg, p, schemes[si], node.Spec{
				Cores: 4, Dur: dur, Seed: 1700 + uint64(wi),
				TargetCores: []int{0, 1, 2, 3},
				CoRunners:   coRunners([]workload.Profile{agent}, [][]int{{0, 1, 2, 3}}),
				MemBudget:   500 << 20,
			})
		})
		if err != nil {
			return wOut{}, err
		}
		o := wOut{row: []string{p.Name}}
		for si, s := range schemes {
			o.row = append(o.row, fmt.Sprintf("%.1f", rs[si].SpaceMB))
			switch s {
			case SchemeEXIST:
				o.existMB = rs[si].SpaceMB
			case SchemeNHT:
				o.nhtMB = rs[si].SpaceMB
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, p := range workloads {
		if outs[wi].skip {
			continue
		}
		t.AddRow(outs[wi].row...)
		res.Metric("exist_mb_"+p.Name, outs[wi].existMB)
		res.Metric("nht_mb_"+p.Name, outs[wi].nhtMB)
	}
	t.Notes = append(t.Notes,
		"StaSam stores sampled stacks and eBPF stores sys_enter records: small but non-chronological/instruction-blind",
		"NHT covers all cores continuously (time-proportional); EXIST keeps traces within the memory budget via per-core caps and compulsory drop",
		"paper: e.g. om — StaSam 4.6, eBPF 0.2, NHT 72.1, EXIST 54.9 MB")
	res.Tables = append(res.Tables, t)
	return res, nil
}

func runFig17(cfg Config) (*Result, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.Seed = cfg.Seed
	ccfg.Jobs = parallel.Workers(cfg.Jobs)
	if cfg.Quick {
		ccfg.Nodes = 4
		ccfg.CoresPerNode = 4
	}
	c := cluster.New(ccfg)
	agent, err := workload.ByName("Agent")
	if err != nil {
		return nil, err
	}
	if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	// Periodic tracing: a request every second, as in the paper's
	// periodical tracing scenario.
	total := durQuick(cfg, 3*simtime.Second, 10*simtime.Second)
	for i := simtime.Duration(0); i < total/simtime.Second; i++ {
		name := fmt.Sprintf("periodic-%d", i)
		i := i
		c.Eng.Schedule(simtime.Time(i)*simtime.Second, func(simtime.Time) {
			_, _ = c.Request(name, cluster.TraceRequestSpec{
				App:     "Agent",
				Purpose: coverage.PurposeProfiling,
				Period:  200 * simtime.Millisecond,
			})
		})
	}
	c.Run(simtime.Time(total))

	res := &Result{ID: "fig17"}
	t := &tabular.Table{
		Title:  "Figure 17: EXIST startup and orchestration overheads",
		Header: []string{"component", "value"},
	}
	t.AddRow("insmod startup cost (one-time, per node)", core.InsmodCost.String())
	mgmtCores := c.ManagementCores()
	t.AddRow(fmt.Sprintf("RCO management CPU (%d nodes)", ccfg.Nodes), fmt.Sprintf("%.2e cores", mgmtCores))
	t.AddRow("RCO management memory", fmt.Sprintf("%.0f MB", c.Mgmt.MemMB))
	// Report v1-equivalent volume: the figure tracks how much trace data
	// the deployment produced, independent of the wire encoding shipping
	// it (Uploads.WireBytes is the compressed v2 volume actually stored).
	t.AddRow("trace sessions uploaded", fmt.Sprintf("%d (%.1f KB)", c.OSS.Puts(), float64(c.Uploads.V1Bytes)/1024))
	// Extrapolate to a thousand-node cluster: management grows with
	// active requests, giving per-node cost.
	perNode := mgmtCores / float64(ccfg.Nodes)
	thousand := perNode * 1000
	permille := thousand / 1000 * 1000 // cores per thousand cores of capacity... expressed in permille of one core per node
	t.AddRow("extrapolated management for 1000 nodes", fmt.Sprintf("%.2e cores (%.3f permille/node)", thousand, permille))
	t.Notes = append(t.Notes,
		"paper: <3e-3 cores and ~40 MB for the ten-node cluster; <1 permille management overhead at thousand-node scale")
	res.Metric("mgmt_cores", mgmtCores)
	res.Metric("oss_puts", float64(c.OSS.Puts()))
	res.Tables = append(res.Tables, t)
	return res, nil
}
