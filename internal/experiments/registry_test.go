package experiments

import (
	"testing"

	"exist/internal/tracer"
)

// Every scheme the experiment tables sweep must resolve through the tracer
// registry: SchemeKind is a thin view over registry names, and a rename on
// either side would silently break the sweeps.
func TestComparisonSchemesResolve(t *testing.T) {
	if len(ComparisonSchemes) == 0 {
		t.Fatal("no comparison schemes defined")
	}
	for _, s := range ComparisonSchemes {
		name := s.Backend()
		if name != s.String() {
			t.Errorf("SchemeKind %v: Backend() %q != String() %q", int(s), name, s.String())
		}
		b, err := tracer.New(name, tracer.Options{})
		if err != nil {
			t.Errorf("scheme %q does not resolve in the tracer registry: %v", name, err)
			continue
		}
		if b.Name() != name {
			t.Errorf("scheme %q resolves to backend named %q", name, b.Name())
		}
	}
}
