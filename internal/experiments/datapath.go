package experiments

import (
	"bytes"
	"fmt"

	"exist/internal/cluster"
	"exist/internal/coverage"
	"exist/internal/hotbench"
	"exist/internal/parallel"
	"exist/internal/simtime"
	"exist/internal/tabular"
	"exist/internal/trace"
	"exist/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "datapath",
		Title: "Data path: v2 wire format compression and batched uploads",
		Paper: "efficiency story (section 4): trace volume shipped off-node must stay small; compressed session encoding plus PUT batching",
		Run:   runDatapath,
	})
}

// runDatapath measures the wire-format win on the shared hotbench
// fixtures (deterministic tracer output, no wall clock anywhere) and
// demonstrates upload batching on a small cluster. Sizes and ratios are
// exact byte counts, so the table is reproducible to the digit.
func runDatapath(cfg Config) (*Result, error) {
	res := &Result{ID: "datapath"}

	// Wire-format sizes on the tracer-output fixtures.
	budget := int64(4_000_000)
	if cfg.Quick {
		budget = 1_000_000
	}
	t := &tabular.Table{
		Title:  "Session wire-format sizes (hotbench fixtures)",
		Header: []string{"fixture", "v1 bytes", "v2 raw", "v2 packed", "packed ratio"},
	}
	var totalV1, totalPacked int64
	for _, seed := range []uint64{1, 2} {
		prog := hotbench.Program(seed)
		s := hotbench.Session(prog, seed, budget)
		v1 := s.MarshalV1()
		raw := s.MarshalMode(trace.EncodeRaw)
		packed := s.Marshal()
		// Every encoding must reproduce the session exactly.
		for _, blob := range [][]byte{v1, raw, packed} {
			got, err := trace.UnmarshalSession(blob)
			if err != nil {
				return nil, fmt.Errorf("fixture %d roundtrip: %w", seed, err)
			}
			for i := range s.Cores {
				if !bytes.Equal(got.Cores[i].Data, s.Cores[i].Data) {
					return nil, fmt.Errorf("fixture %d core %d data mismatch", seed, i)
				}
			}
		}
		ratio := float64(len(v1)) / float64(len(packed))
		t.AddRow(fmt.Sprintf("hot-%d", seed),
			fmt.Sprintf("%d", len(v1)), fmt.Sprintf("%d", len(raw)),
			fmt.Sprintf("%d", len(packed)), fmt.Sprintf("%.2fx", ratio))
		totalV1 += int64(len(v1))
		totalPacked += int64(len(packed))
	}
	t.Notes = append(t.Notes,
		"v2 packed: varint/delta + target dictionary + fused CYC/TIP ops; v2 raw trades size for zero-copy decode",
		"target: >=3x smaller than the uncompressed v1 dump")
	res.Tables = append(res.Tables, t)

	// Batched uploads on a live cluster: same deployment run with one
	// PUT per session and with four sessions per PUT.
	runCluster := func(batch int) (*cluster.Cluster, error) {
		ccfg := cluster.DefaultConfig()
		ccfg.Seed = cfg.Seed
		ccfg.Nodes = 6
		ccfg.CoresPerNode = 4
		ccfg.Jobs = parallel.Workers(cfg.Jobs)
		ccfg.UploadBatch = batch
		c := cluster.New(ccfg)
		agent, err := workload.ByName("Agent")
		if err != nil {
			return nil, err
		}
		if err := c.Deploy(agent, nil, workload.InstallOpts{Walker: true, Scale: 1e-4, Seed: cfg.Seed + 5}); err != nil {
			return nil, err
		}
		if _, err := c.Request("dp", cluster.TraceRequestSpec{
			App: "Agent", Purpose: coverage.PurposeAnomaly, Period: 200 * simtime.Millisecond,
		}); err != nil {
			return nil, err
		}
		c.Run(5 * simtime.Second)
		return c, nil
	}
	single, err := runCluster(0)
	if err != nil {
		return nil, err
	}
	batched, err := runCluster(4)
	if err != nil {
		return nil, err
	}
	bt := &tabular.Table{
		Title:  "Upload batching (6-node cluster, one anomaly request)",
		Header: []string{"mode", "sessions", "PUTs", "wire KB", "v1-equiv KB"},
	}
	for _, row := range []struct {
		name string
		c    *cluster.Cluster
	}{{"1 session/PUT", single}, {"4 sessions/PUT", batched}} {
		u := row.c.Uploads
		bt.AddRow(row.name, fmt.Sprintf("%d", u.Sessions), fmt.Sprintf("%d", u.Batches),
			fmt.Sprintf("%.1f", float64(u.WireBytes)/1024), fmt.Sprintf("%.1f", float64(u.V1Bytes)/1024))
	}
	bt.Notes = append(bt.Notes,
		"batching amortizes per-PUT overhead; batches retry as a unit and degrade per the resilience semantics")
	res.Tables = append(res.Tables, bt)

	if single.Uploads.Sessions != batched.Uploads.Sessions {
		return nil, fmt.Errorf("batching changed landed sessions: %d vs %d",
			single.Uploads.Sessions, batched.Uploads.Sessions)
	}

	res.Metric("packed_ratio", float64(totalV1)/float64(totalPacked))
	res.Metric("wire_bytes_per_session", float64(single.Uploads.WireBytes)/float64(single.Uploads.Sessions))
	res.Metric("puts_single", float64(single.Uploads.Batches))
	res.Metric("puts_batched", float64(batched.Uploads.Batches))
	return res, nil
}
