package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact from the DESIGN.md index must be registered.
	want := []string{
		"fig03a", "fig03b", "fig04", "fig05", "fig08", "fig11", "fig12",
		"fig13", "fig14", "tab03", "fig15", "fig16", "tab04", "fig17",
		"fig18", "fig19", "fig20", "acc-bench",
		"fig21", "fig22", "tab05", "casestudy",
		"ablation-control", "ablation-drop",
	}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(All()), len(want))
	}
}

func TestRegistryUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByIDUnknown(t *testing.T) {
	_, err := ByID("nope")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("ByID error = %v", err)
	}
}

func TestResultMetrics(t *testing.T) {
	r := &Result{ID: "x"}
	r.Metric("b", 2)
	r.Metric("a", 1)
	names := r.SortedMetrics()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("SortedMetrics = %v", names)
	}
	if r.Metrics["b"] != 2 {
		t.Fatalf("metrics map = %v", r.Metrics)
	}
}

func TestSchemeKindStrings(t *testing.T) {
	want := map[SchemeKind]string{
		SchemeOracle: "Oracle", SchemeEXIST: "EXIST", SchemeStaSam: "StaSam",
		SchemeEBPF: "eBPF", SchemeNHT: "NHT", SchemeKind(99): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("SchemeKind(%d) = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestHeadlineShapes asserts the reproduction's central claims hold in
// quick mode: EXIST is per-mille-class and beats every baseline by the
// paper's ordering.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shapes need the fig13 sweep")
	}
	cfg := Config{Quick: true, Seed: 1}
	res, err := runFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m["exist_avg_overhead"] > 0.02 {
		t.Errorf("EXIST average overhead %.4f not per-mille class", m["exist_avg_overhead"])
	}
	if !(m["nht_factor"] > m["ebpf_factor"] && m["ebpf_factor"] > m["stasam_factor"] && m["stasam_factor"] > 1.5) {
		t.Errorf("baseline ordering broken: StaSam %.1fx, eBPF %.1fx, NHT %.1fx",
			m["stasam_factor"], m["ebpf_factor"], m["nht_factor"])
	}
}
